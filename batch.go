// Batched probing: the system-wide execution model for multi-key lookups.
//
// Decision-support operations rarely probe one key: an indexed nested-loop
// join probes once per outer row (§2.2), an IN-list selection once per list
// element.  Descending a group of independent probes through the directory in
// lockstep overlaps their cache misses (memory-level parallelism) and reuses
// cache-resident upper levels across the group — the §8 direction of
// exploiting cache behaviour across whole operations rather than single
// lookups.  Batched results are bit-identical to the scalar methods; only the
// memory-access schedule changes.
//
// BatchIndex and BatchOrderedIndex are the batch counterparts of Index and
// OrderedIndex.  The CSS-trees (uint32 and generic) implement them natively
// with the lockstep kernel of internal/csstree; AsBatch/AsBatchOrdered adapt
// any other method through a scalar loop, so every Kind can be driven through
// the same batched call sites.  Positions are int32 (the paper's 4-byte RID,
// Table 1), which keeps result buffers at half the size of []int and lets one
// buffer be reused across batches.

package cssidx

import (
	"cssidx/internal/binsearch"
	"cssidx/internal/sortu32"
)

// BatchIndex is the batched counterpart of Index: one call answers a whole
// probe batch.  Results are bit-identical to calling the scalar method per
// probe.
type BatchIndex interface {
	Index
	// SearchBatch stores Search(probes[i]) into out[i] for every probe;
	// len(out) must equal len(probes).
	SearchBatch(probes []Key, out []int32)
}

// BatchOrderedIndex adds the batched order-based lookups.
type BatchOrderedIndex interface {
	OrderedIndex
	BatchIndex
	// LowerBoundBatch stores LowerBound(probes[i]) into out[i];
	// len(out) must equal len(probes).
	LowerBoundBatch(probes []Key, out []int32)
	// EqualRangeBatch stores EqualRange(probes[i]) into (first[i], last[i]);
	// all three slices must have equal length.
	EqualRangeBatch(probes []Key, first, last []int32)
}

// DefaultBatchSize is the probe chunk size the higher layers (mmdb joins and
// IN-lists, the bench harness) use when none is configured: large enough to
// amortise the batch setup and keep many independent misses in flight, small
// enough that probe and result buffers stay cache-resident.
const DefaultBatchSize = 512

// AsBatch returns idx's native batched form when it has one, and otherwise
// wraps idx so SearchBatch runs the scalar Search per probe.  Either way the
// result answers batches for every Kind.
func AsBatch(idx Index) BatchIndex {
	if b, ok := idx.(BatchIndex); ok {
		return b
	}
	if ord, ok := idx.(OrderedIndex); ok {
		return scalarBatchOrdered{ord}
	}
	return scalarBatch{idx}
}

// AsBatchOrdered returns idx's native batched ordered form when it has one,
// and otherwise wraps the scalar methods.
func AsBatchOrdered(idx OrderedIndex) BatchOrderedIndex {
	if b, ok := idx.(BatchOrderedIndex); ok {
		return b
	}
	return scalarBatchOrdered{idx}
}

// scalarBatch adapts a scalar Index (hash) to BatchIndex.
type scalarBatch struct{ Index }

func (s scalarBatch) SearchBatch(probes []Key, out []int32) {
	checkBatchLen(len(probes), len(out))
	for i, p := range probes {
		out[i] = int32(s.Index.Search(p))
	}
}

// scalarBatchOrdered adapts a scalar OrderedIndex to BatchOrderedIndex.
type scalarBatchOrdered struct{ OrderedIndex }

func (s scalarBatchOrdered) SearchBatch(probes []Key, out []int32) {
	checkBatchLen(len(probes), len(out))
	for i, p := range probes {
		out[i] = int32(s.OrderedIndex.Search(p))
	}
}

func (s scalarBatchOrdered) LowerBoundBatch(probes []Key, out []int32) {
	checkBatchLen(len(probes), len(out))
	for i, p := range probes {
		out[i] = int32(s.OrderedIndex.LowerBound(p))
	}
}

func (s scalarBatchOrdered) EqualRangeBatch(probes []Key, first, last []int32) {
	checkBatchLen(len(probes), len(first))
	checkBatchLen(len(probes), len(last))
	for i, p := range probes {
		f, l := s.OrderedIndex.EqualRange(p)
		first[i], last[i] = int32(f), int32(l)
	}
}

func checkBatchLen(probes, out int) {
	if probes != out {
		panic("cssidx: probes/results length mismatch")
	}
}

// --- sort-probes-first schedule ---------------------------------------------

// SortedBatch wraps a BatchOrderedIndex with the sort-probes-first schedule:
// each batch is radix-sorted by key and deduplicated before the lockstep
// descent, and results scatter back to input order.  Sorted probes walk
// neighbouring root-to-leaf paths (each directory node is touched once per
// batch) and repeated probes descend once — the probe-scheduling payoff of
// skewed workloads, where a handful of hot keys dominate the stream.
// Results stay bit-identical to the scalar methods.
//
// A SortedBatch reuses internal scratch buffers across calls and is
// therefore NOT safe for concurrent use; give each goroutine its own.
type SortedBatch struct {
	b BatchOrderedIndex

	sorted []Key
	perm   []uint32
	runIdx []int32
	res    []int32
	resL   []int32
	tmpK   []uint32
	tmpV   []uint32
}

// NewSortedBatch wraps idx (made batchable with AsBatchOrdered if needed)
// with the sort-probes-first schedule.
func NewSortedBatch(idx OrderedIndex) *SortedBatch {
	return &SortedBatch{b: AsBatchOrdered(idx)}
}

// Name identifies the underlying method.
func (s *SortedBatch) Name() string { return s.b.Name() }

// SpaceBytes returns the underlying structure's space.
func (s *SortedBatch) SpaceBytes() int { return s.b.SpaceBytes() }

// Search is the scalar passthrough.
func (s *SortedBatch) Search(key Key) int { return s.b.Search(key) }

// LowerBound is the scalar passthrough.
func (s *SortedBatch) LowerBound(key Key) int { return s.b.LowerBound(key) }

// EqualRange is the scalar passthrough.
func (s *SortedBatch) EqualRange(key Key) (first, last int) { return s.b.EqualRange(key) }

// plan sorts and dedups a batch: after it, sorted[:uq] holds the distinct
// probes ascending, and probe i's answer is at unique slot runIdx[j] where
// perm[j] == i.
func (s *SortedBatch) plan(probes []Key) (uq int) {
	n := len(probes)
	if cap(s.sorted) < n {
		s.sorted = make([]Key, n)
		s.perm = make([]uint32, n)
		s.runIdx = make([]int32, n)
		s.res = make([]int32, n)
		s.resL = make([]int32, n)
		s.tmpK = make([]uint32, n)
		s.tmpV = make([]uint32, n)
	}
	s.sorted = s.sorted[:n]
	copy(s.sorted, probes)
	for i := range s.perm[:n] {
		s.perm[i] = uint32(i)
	}
	sortu32.SortPairsScratch(s.sorted, s.perm[:n], s.tmpK, s.tmpV)
	for j := 0; j < n; j++ {
		if uq > 0 && s.sorted[j] == s.sorted[uq-1] {
			s.runIdx[j] = int32(uq - 1)
			continue
		}
		s.sorted[uq] = s.sorted[j]
		s.runIdx[j] = int32(uq)
		uq++
	}
	return uq
}

// SearchBatch answers the batch with the sorted schedule.
func (s *SortedBatch) SearchBatch(probes []Key, out []int32) {
	checkBatchLen(len(probes), len(out))
	uq := s.plan(probes)
	s.b.SearchBatch(s.sorted[:uq], s.res[:uq])
	for j := range probes {
		out[s.perm[j]] = s.res[s.runIdx[j]]
	}
}

// LowerBoundBatch answers the batch with the sorted schedule.
func (s *SortedBatch) LowerBoundBatch(probes []Key, out []int32) {
	checkBatchLen(len(probes), len(out))
	uq := s.plan(probes)
	s.b.LowerBoundBatch(s.sorted[:uq], s.res[:uq])
	for j := range probes {
		out[s.perm[j]] = s.res[s.runIdx[j]]
	}
}

// EqualRangeBatch answers the batch with the sorted schedule.
func (s *SortedBatch) EqualRangeBatch(probes []Key, first, last []int32) {
	checkBatchLen(len(probes), len(first))
	checkBatchLen(len(probes), len(last))
	uq := s.plan(probes)
	s.b.EqualRangeBatch(s.sorted[:uq], s.res[:uq], s.resL[:uq])
	for j := range probes {
		first[s.perm[j]] = s.res[s.runIdx[j]]
		last[s.perm[j]] = s.resL[s.runIdx[j]]
	}
}

// --- native batch methods of the uint32 CSS-trees ---------------------------

func (x fullCSS) SearchBatch(probes []Key, out []int32)     { x.t.SearchBatch(probes, out) }
func (x fullCSS) LowerBoundBatch(probes []Key, out []int32) { x.t.LowerBoundBatch(probes, out) }
func (x fullCSS) EqualRangeBatch(probes []Key, first, last []int32) {
	x.t.EqualRangeBatch(probes, first, last)
}

func (x levelCSS) SearchBatch(probes []Key, out []int32)     { x.t.SearchBatch(probes, out) }
func (x levelCSS) LowerBoundBatch(probes []Key, out []int32) { x.t.LowerBoundBatch(probes, out) }
func (x levelCSS) EqualRangeBatch(probes []Key, first, last []int32) {
	x.t.EqualRangeBatch(probes, first, last)
}

// --- generic CSS-tree batch descent -----------------------------------------

// genericBatchWidth mirrors the lockstep width of internal/csstree: wide
// enough to keep a full complement of independent node reads in flight per
// level, small enough to keep the group state in registers/L1.  It equals
// binsearch.GroupWidth so uint32-keyed groups can use the multi-probe
// node kernel.
const genericBatchWidth = binsearch.GroupWidth

// lowerBoundU32 is the scalar uint32 descent through the dispatched
// node-search kernels — the tail path of lowerBoundBatchU32.
func (t *Generic[K]) lowerBoundU32(key uint32) int {
	g := &t.g
	if g.Internal == 0 {
		return binsearch.LowerBound(t.keysU32, key)
	}
	m, fan, routing := g.M, g.Fanout, t.routing
	d := 0
	for d <= g.LNode {
		base := d * m
		j := binsearch.NodeLowerBound(t.dirU32[base:base+routing], routing, key)
		d = d*fan + 1 + j
	}
	lo, hi := g.LeafRange(d)
	return lo + binsearch.NodeLowerBound(t.keysU32[lo:hi], hi-lo, key)
}

// lowerBoundBatchU32 is the uint32 fast path of LowerBoundBatch: the same
// lockstep descent, but every node visit goes through the dispatched
// kernels of internal/binsearch (SIMD/SWAR/scalar ladder), and a pass
// whose group shares one node collapses into the multi-probe kernel —
// exactly the execution model of the native uint32 CSS-trees.
func (t *Generic[K]) lowerBoundBatchU32(probes []uint32, out []int32) {
	g := &t.g
	if g.Internal == 0 {
		for i, p := range probes {
			out[i] = int32(binsearch.LowerBound(t.keysU32, p))
		}
		return
	}
	m, fan, lNode, routing := g.M, g.Fanout, g.LNode, t.routing
	dir, keys := t.dirU32, t.keysU32
	var nodes [genericBatchWidth]int32
	var ks [genericBatchWidth]int32
	i := 0
	for ; i+genericBatchWidth <= len(probes); i += genericBatchWidth {
		group := probes[i : i+genericBatchWidth]
		for j := range nodes {
			nodes[j] = 0
		}
		for pass := 0; pass < g.Depth-1; pass++ {
			if binsearch.GroupOnOneNode(&nodes) {
				d := int(nodes[0])
				base := d * m
				binsearch.NodeLowerBound16(dir[base:base+routing], routing, group, ks[:])
				for j := 0; j < genericBatchWidth; j++ {
					nodes[j] = int32(d*fan + 1 + int(ks[j]))
				}
				continue
			}
			for j := 0; j < genericBatchWidth; j++ {
				d := int(nodes[j])
				base := d * m
				k := binsearch.NodeLowerBound(dir[base:base+routing], routing, group[j])
				nodes[j] = int32(d*fan + 1 + k)
			}
		}
		for j := 0; j < genericBatchWidth; j++ {
			d := int(nodes[j])
			if d > lNode {
				continue
			}
			base := d * m
			k := binsearch.NodeLowerBound(dir[base:base+routing], routing, group[j])
			nodes[j] = int32(d*fan + 1 + k)
		}
		for j := 0; j < genericBatchWidth; j++ {
			lo, hi := g.LeafRange(int(nodes[j]))
			out[i+j] = int32(lo + binsearch.NodeLowerBound(keys[lo:hi], hi-lo, group[j]))
		}
	}
	for ; i < len(probes); i++ {
		out[i] = int32(t.lowerBoundU32(probes[i]))
	}
}

// LowerBoundBatch computes LowerBound for every probe into out
// (len(out) must equal len(probes)), descending the group in lockstep.
// uint32 keys route through the dispatched node-search kernels.
func (t *Generic[K]) LowerBoundBatch(probes []K, out []int32) {
	checkBatchLen(len(probes), len(out))
	if t.keysU32 != nil {
		if pu, ok := any(probes).([]uint32); ok {
			t.lowerBoundBatchU32(pu, out)
			return
		}
	}
	g := &t.g
	if g.Internal == 0 {
		for i, p := range probes {
			out[i] = int32(t.LowerBound(p))
		}
		return
	}
	m, fan, lNode, routing := g.M, g.Fanout, g.LNode, t.routing
	var nodes [genericBatchWidth]int32
	i := 0
	for ; i+genericBatchWidth <= len(probes); i += genericBatchWidth {
		group := probes[i : i+genericBatchWidth]
		for j := range nodes {
			nodes[j] = 0
		}
		// Leaves exist only on the two deepest levels, so the first Depth-1
		// passes are internal for every probe — no depth checks needed (see
		// the internal/csstree lockstep kernels).
		for pass := 0; pass < g.Depth-1; pass++ {
			for j := 0; j < genericBatchWidth; j++ {
				d := int(nodes[j])
				base := d * m
				k := lowerBoundG(t.dir[base:base+routing], group[j])
				nodes[j] = int32(d*fan + 1 + k)
			}
		}
		for j := 0; j < genericBatchWidth; j++ {
			d := int(nodes[j])
			if d > lNode {
				continue
			}
			base := d * m
			k := lowerBoundG(t.dir[base:base+routing], group[j])
			nodes[j] = int32(d*fan + 1 + k)
		}
		for j := 0; j < genericBatchWidth; j++ {
			lo, hi := g.LeafRange(int(nodes[j]))
			out[i+j] = int32(lo + lowerBoundG(t.keys[lo:hi], group[j]))
		}
	}
	for ; i < len(probes); i++ {
		out[i] = int32(t.LowerBound(probes[i]))
	}
}

// SearchBatch computes Search for every probe into out: the position of the
// leftmost occurrence, or -1 if absent.
func (t *Generic[K]) SearchBatch(probes []K, out []int32) {
	t.LowerBoundBatch(probes, out)
	n := int32(len(t.keys))
	for i, p := range probes {
		if lb := out[i]; lb >= n || t.keys[lb] != p {
			out[i] = -1
		}
	}
}

// EqualRangeBatch computes EqualRange for every probe into (first, last).
func (t *Generic[K]) EqualRangeBatch(probes []K, first, last []int32) {
	checkBatchLen(len(probes), len(last))
	t.LowerBoundBatch(probes, first)
	n := int32(len(t.keys))
	for i, p := range probes {
		end := first[i]
		for end < n && t.keys[end] == p {
			end++
		}
		last[i] = end
	}
}
