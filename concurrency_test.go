package cssidx_test

import (
	"sync"
	"testing"

	"cssidx"
	"cssidx/internal/workload"
)

// TestConcurrentLookups hammers every index from many goroutines.  All
// structures are immutable after build, so concurrent readers need no
// locking — run with -race to verify (the repository's test suite always
// is, in CI terms: `go test -race ./...`).
func TestConcurrentLookups(t *testing.T) {
	g := workload.New(170)
	keys := g.SortedDistinct(50000)
	probes := g.Lookups(keys, 10000)
	for _, kind := range cssidx.Kinds() {
		idx := cssidx.New(kind, keys, cssidx.Options{})
		t.Run(kind.String(), func(t *testing.T) {
			var wg sync.WaitGroup
			errs := make(chan string, 8)
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(probes); i += 8 {
						k := probes[i]
						got := idx.Search(k)
						if got < 0 || keys[got] != k {
							select {
							case errs <- kind.String():
							default:
							}
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			if e, bad := <-errs; bad {
				t.Fatalf("%s returned a wrong answer under concurrency", e)
			}
		})
	}
}

// TestConcurrentRangeQueries exercises ordered access concurrently.
func TestConcurrentRangeQueries(t *testing.T) {
	g := workload.New(171)
	keys := g.SortedDistinct(50000)
	idx := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)
	var wg sync.WaitGroup
	fail := make(chan struct{}, 1)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				lo := keys[(w*997+i*13)%len(keys)]
				first := idx.LowerBound(lo)
				if first >= len(keys) || keys[first] != lo {
					select {
					case fail <- struct{}{}:
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case <-fail:
		t.Fatal("concurrent range query returned a wrong bound")
	default:
	}
}

// BenchmarkParallelLookups measures lookup scaling across GOMAXPROCS —
// read-only indexes should scale linearly since there is no shared mutable
// state.
func BenchmarkParallelLookups(b *testing.B) {
	g := workload.New(172)
	keys := g.SortedUniform(5_000_000)
	probes := g.Lookups(keys, 100_000)
	idx := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		s := 0
		for pb.Next() {
			s += idx.Search(probes[i%len(probes)])
			i++
		}
		benchSink += s
	})
}
