package cssidx_test

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"cssidx"
	"cssidx/internal/workload"
)

func TestGenericUint64Exhaustive(t *testing.T) {
	for _, m := range []int{2, 4, 8, 16} {
		for n := 0; n <= 130; n++ {
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = uint64(3*i + 5)
			}
			full := cssidx.NewGenericFull(keys, m)
			level := cssidx.NewGenericLevel(keys, m)
			for probe := uint64(0); probe <= uint64(3*n+8); probe++ {
				want := sort.Search(n, func(i int) bool { return keys[i] >= probe })
				if got := full.LowerBound(probe); got != want {
					t.Fatalf("full m=%d n=%d: LowerBound(%d)=%d, want %d", m, n, probe, got, want)
				}
				if got := level.LowerBound(probe); got != want {
					t.Fatalf("level m=%d n=%d: LowerBound(%d)=%d, want %d", m, n, probe, got, want)
				}
			}
		}
	}
}

func TestGenericStringKeys(t *testing.T) {
	words := []string{
		"ant", "bee", "cat", "dog", "eel", "fox", "gnu", "hen",
		"ibis", "jay", "kite", "lark", "mole", "newt", "owl", "pig",
		"quail", "rat", "swan", "toad", "urchin", "vole", "wasp", "yak",
	}
	tr := cssidx.NewGenericFull(words, 4)
	for i, w := range words {
		if got := tr.Search(w); got != i {
			t.Errorf("Search(%q)=%d, want %d", w, got, i)
		}
	}
	if got := tr.Search("zebra"); got != -1 {
		t.Errorf("Search(zebra)=%d", got)
	}
	if got := tr.LowerBound("catfish"); got != 3 {
		t.Errorf("LowerBound(catfish)=%d, want 3 (dog)", got)
	}
	if got := tr.LowerBound(""); got != 0 {
		t.Errorf("LowerBound(\"\")=%d", got)
	}
}

func TestGenericFloatKeys(t *testing.T) {
	keys := []float64{-3.5, -1.0, 0.0, 0.25, 2.75, 1e9}
	tr := cssidx.NewGenericLevel(keys, 2)
	for i, k := range keys {
		if got := tr.Search(k); got != i {
			t.Errorf("Search(%v)=%d, want %d", k, got, i)
		}
	}
	if got := tr.LowerBound(0.1); got != 3 {
		t.Errorf("LowerBound(0.1)=%d, want 3", got)
	}
	if got := tr.Search(3.14); got != -1 {
		t.Errorf("Search(3.14)=%d", got)
	}
}

func TestGenericDuplicatesLeftmost(t *testing.T) {
	keys := make([]int64, 500)
	for i := range keys {
		keys[i] = int64(i / 50) // runs of 50
	}
	for _, m := range []int{4, 8} {
		tr := cssidx.NewGenericFull(keys, m)
		for v := int64(0); v < 10; v++ {
			if got := tr.Search(v); got != int(v)*50 {
				t.Errorf("m=%d: Search(%d)=%d, want %d", m, v, got, v*50)
			}
			f, l := tr.EqualRange(v)
			if f != int(v)*50 || l != int(v+1)*50 {
				t.Errorf("m=%d: EqualRange(%d)=[%d,%d)", m, v, f, l)
			}
		}
	}
}

func TestGenericMatchesSpecialised(t *testing.T) {
	g := workload.New(130)
	keys := g.SortedWithDuplicates(30000, 4)
	spec := cssidx.NewLevelCSS(keys, 64)
	gen := cssidx.NewGenericLevel(keys, 16)
	probes := append(g.Lookups(keys, 3000), g.Misses(keys, 3000)...)
	for _, k := range probes {
		if a, b := spec.LowerBound(k), gen.LowerBound(k); a != b {
			t.Fatalf("specialised %d vs generic %d for key %d", a, b, k)
		}
	}
}

func TestGenericQuickProperty(t *testing.T) {
	f := func(raw []int16, probe int16) bool {
		keys := make([]int16, len(raw))
		copy(keys, raw)
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		want := sort.Search(len(keys), func(i int) bool { return keys[i] >= probe })
		return cssidx.NewGenericFull(keys, 4).LowerBound(probe) == want &&
			cssidx.NewGenericLevel(keys, 4).LowerBound(probe) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestGenericLevelRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	cssidx.NewGenericLevel([]int{1, 2, 3}, 6)
}

// record is a fat row type for RecordTree tests: the key is buried inside.
type record struct {
	Pad  [3]uint64
	Key  uint32
	Name string
}

func TestRecordTreeIndexesInPlace(t *testing.T) {
	g := workload.New(131)
	keys := g.SortedWithDuplicates(20000, 3)
	recs := make([]record, len(keys))
	for i, k := range keys {
		recs[i] = record{Key: k, Name: fmt.Sprintf("row-%d", i)}
	}
	tr := cssidx.NewRecordTree(len(recs), func(i int) uint32 { return recs[i].Key }, 16)
	probes := append(g.Lookups(keys, 2000), g.Misses(keys, 2000)...)
	for _, k := range probes {
		want := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
		if got := tr.LowerBound(k); got != want {
			t.Fatalf("LowerBound(%d)=%d, want %d", k, got, want)
		}
	}
	// Search lands on the record itself.
	k := keys[777]
	i := tr.Search(k)
	if i < 0 || recs[i].Key != k {
		t.Fatalf("Search(%d)=%d", k, i)
	}
}

func TestRecordTreeStringKeyExtractor(t *testing.T) {
	names := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	tr := cssidx.NewRecordTree(len(names), func(i int) string { return names[i] }, 2)
	for i, n := range names {
		if got := tr.Search(n); got != i {
			t.Errorf("Search(%q)=%d, want %d", n, got, i)
		}
	}
	if got := tr.Search("mallory"); got != -1 {
		t.Errorf("Search(mallory)=%d", got)
	}
	f, l := tr.EqualRange("carol")
	if f != 2 || l != 3 {
		t.Errorf("EqualRange(carol)=[%d,%d)", f, l)
	}
}

func TestRecordTreeEmptyAndTiny(t *testing.T) {
	tr := cssidx.NewRecordTree(0, func(int) int { panic("no records") }, 8)
	if got := tr.LowerBound(5); got != 0 {
		t.Errorf("empty: %d", got)
	}
	one := []int{42}
	tr2 := cssidx.NewRecordTree(1, func(i int) int { return one[i] }, 8)
	if got := tr2.Search(42); got != 0 {
		t.Errorf("single: %d", got)
	}
	if tr2.Levels() < 1 {
		t.Error("levels must count the leaf")
	}
}

func TestGenericLevelsAndDirectory(t *testing.T) {
	g := workload.New(132)
	keys64 := make([]uint64, 100000)
	for i, k := range g.SortedDistinct(100000) {
		keys64[i] = uint64(k) << 10
	}
	// 8-byte keys on a 64-byte line → m=8 is the cache-line node.
	tr := cssidx.NewGenericFull(keys64, 8)
	if tr.Levels() < 4 {
		t.Errorf("levels=%d, implausibly shallow for 12500 leaves at fanout 9", tr.Levels())
	}
	if tr.DirectoryLen() == 0 {
		t.Error("directory empty")
	}
}
