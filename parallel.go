// Parallel batch execution: the worker-pool engine over the lockstep
// kernels.  One large probe batch is split into contiguous sub-batches, each
// descends the tree with the existing lockstep kernel on its own worker, and
// results land directly in the caller's output slice — workers write
// disjoint spans, so scatter is free and the hot path allocates nothing per
// batch beyond the worker goroutines.
//
// The lockstep kernel extracts memory-level parallelism *within* one core
// (a group of independent node reads in flight per level); the engine
// multiplies that by the number of cores.  Both compose because the paper's
// trees are immutable directories over immutable arrays: workers share
// read-only state and nothing else.
//
// Sequential fallback: batches smaller than ~2×MinBatchPerWorker run on the
// calling goroutine through the exact same kernel, so small batches pay no
// scheduling cost and results are bit-identical at every size.

package cssidx

import (
	"cmp"

	"cssidx/internal/parallel"
)

// ParallelOptions tunes the parallel batch engine.  The zero value is the
// recommended default: GOMAXPROCS workers with ADAPTIVE span sizing — the
// engine times a 4096-probe prefix of the first large batch on the calling
// goroutine, derives the smallest per-worker span whose work still dwarfs
// the goroutine handoff from the measured per-probe cost, and caches the
// value for the index's lifetime.  Hot-cache indexes (fast probes) get
// bigger spans than DRAM-missing ones, exactly as the cost asymmetry
// demands; results are bit-identical either way.  BatchCalibration reports
// the chosen value.
type ParallelOptions struct {
	// Workers is the maximum number of concurrent workers; 0 picks
	// GOMAXPROCS, 1 forces the sequential path.
	Workers int
	// MinBatchPerWorker is the minimum number of probes that justifies an
	// extra worker; batches smaller than 2× this run sequentially.
	// 0 means adaptive: derived from the measured per-probe cost of the
	// first large batch (see BatchTuning).
	MinBatchPerWorker int
}

// BatchTuning is implemented by the engines whose worker spans are sized
// adaptively (NewParallel, NewGenericParallel, ShardedIndex).
type BatchTuning interface {
	// BatchCalibration returns the calibrated MinBatchPerWorker and the
	// measured per-probe cost; ok is false before the first large batch
	// (or when MinBatchPerWorker was pinned explicitly).
	BatchCalibration() (minPerWorker int, perProbeNs float64, ok bool)
}

// engine converts to the internal scheduler's options.
func (o ParallelOptions) engine() parallel.Options {
	return parallel.Options{Workers: o.Workers, MinBatchPerWorker: o.MinBatchPerWorker}
}

// NewParallel wraps idx with the parallel batch engine: the returned index
// answers SearchBatch/LowerBoundBatch/EqualRangeBatch by fanning the batch
// across workers (native lockstep kernels per sub-batch when idx has them,
// scalar loops otherwise) and falls back to one worker for small batches.
// Results are bit-identical to the scalar methods at every batch size.
//
// idx's batch methods must be safe for concurrent calls on disjoint probe
// spans; every index built by this package qualifies except *SortedBatch,
// which carries per-call scratch.  NewParallel therefore rejects a
// *SortedBatch outright — compose the other way, NewSortedBatch(NewParallel(
// idx, opts)): sorting stays on the caller and the descent underneath fans
// out.  ShardedIndex's sorted schedule is parallel-safe as-is.
func NewParallel(idx OrderedIndex, opts ParallelOptions) BatchOrderedIndex {
	if _, ok := idx.(*SortedBatch); ok {
		panic("cssidx: NewParallel over a SortedBatch races on its scratch; use NewSortedBatch(NewParallel(idx, opts)) instead")
	}
	p := &parallelBatch{b: AsBatchOrdered(idx), opts: opts.engine()}
	p.opts.Tuner = &p.tuner
	return p
}

// parallelBatch is the engine over any BatchOrderedIndex.
type parallelBatch struct {
	b     BatchOrderedIndex
	opts  parallel.Options
	tuner parallel.Tuner
}

// BatchCalibration reports the adaptive span the engine measured.
func (p *parallelBatch) BatchCalibration() (int, float64, bool) {
	return p.tuner.Calibration()
}

func (p *parallelBatch) Name() string       { return p.b.Name() }
func (p *parallelBatch) SpaceBytes() int    { return p.b.SpaceBytes() }
func (p *parallelBatch) Search(key Key) int { return p.b.Search(key) }
func (p *parallelBatch) LowerBound(key Key) int {
	return p.b.LowerBound(key)
}
func (p *parallelBatch) EqualRange(key Key) (first, last int) { return p.b.EqualRange(key) }

// SearchBatch answers the batch across workers; each worker runs the
// underlying lockstep kernel on its contiguous sub-batch.
func (p *parallelBatch) SearchBatch(probes []Key, out []int32) {
	checkBatchLen(len(probes), len(out))
	parallel.Run(len(probes), p.opts, func(lo, hi int) {
		p.b.SearchBatch(probes[lo:hi], out[lo:hi])
	})
}

// LowerBoundBatch answers the batch across workers.
func (p *parallelBatch) LowerBoundBatch(probes []Key, out []int32) {
	checkBatchLen(len(probes), len(out))
	parallel.Run(len(probes), p.opts, func(lo, hi int) {
		p.b.LowerBoundBatch(probes[lo:hi], out[lo:hi])
	})
}

// EqualRangeBatch answers the batch across workers.
func (p *parallelBatch) EqualRangeBatch(probes []Key, first, last []int32) {
	checkBatchLen(len(probes), len(first))
	checkBatchLen(len(probes), len(last))
	parallel.Run(len(probes), p.opts, func(lo, hi int) {
		p.b.EqualRangeBatch(probes[lo:hi], first[lo:hi], last[lo:hi])
	})
}

// GenericParallel is the parallel batch engine over a Generic CSS-tree: the
// typed counterpart of NewParallel for key types other than uint32.
type GenericParallel[K cmp.Ordered] struct {
	t     *Generic[K]
	opts  parallel.Options
	tuner parallel.Tuner
}

// NewGenericParallel wraps a Generic tree with the parallel batch engine.
func NewGenericParallel[K cmp.Ordered](t *Generic[K], opts ParallelOptions) *GenericParallel[K] {
	p := &GenericParallel[K]{t: t, opts: opts.engine()}
	p.opts.Tuner = &p.tuner
	return p
}

// BatchCalibration reports the adaptive span the engine measured.
func (p *GenericParallel[K]) BatchCalibration() (int, float64, bool) {
	return p.tuner.Calibration()
}

// SearchBatch answers the batch across workers (see NewParallel).
func (p *GenericParallel[K]) SearchBatch(probes []K, out []int32) {
	checkBatchLen(len(probes), len(out))
	parallel.Run(len(probes), p.opts, func(lo, hi int) {
		p.t.SearchBatch(probes[lo:hi], out[lo:hi])
	})
}

// LowerBoundBatch answers the batch across workers.
func (p *GenericParallel[K]) LowerBoundBatch(probes []K, out []int32) {
	checkBatchLen(len(probes), len(out))
	parallel.Run(len(probes), p.opts, func(lo, hi int) {
		p.t.LowerBoundBatch(probes[lo:hi], out[lo:hi])
	})
}

// EqualRangeBatch answers the batch across workers.
func (p *GenericParallel[K]) EqualRangeBatch(probes []K, first, last []int32) {
	checkBatchLen(len(probes), len(first))
	checkBatchLen(len(probes), len(last))
	parallel.Run(len(probes), p.opts, func(lo, hi int) {
		p.t.EqualRangeBatch(probes[lo:hi], first[lo:hi], last[lo:hi])
	})
}
