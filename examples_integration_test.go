package cssidx_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example binary end to end, checking
// the output landmarks each one prints.  Skipped under -short (each example
// generates real data sets).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples in -short mode")
	}
	cases := []struct {
		dir   string
		args  []string
		wants []string
	}{
		{
			dir:   "./examples/quickstart",
			wants: []string{"built level CSS-tree", "lookups agree with binary search"},
		},
		{
			dir:   "./examples/olap",
			wants: []string{"Q1:", "Q2:", "join produced", "domain"},
		},
		{
			dir:   "./examples/spacetime",
			args:  []string{"-n", "100000", "-lookups", "5000"},
			wants: []string{"stepped frontier", "hash table", "binary search"},
		},
		{
			dir:   "./examples/batchupdate",
			wants: []string{"day 0:", "day 3:", "index rebuild"},
		},
		{
			dir:   "./examples/sharded",
			wants: []string{"built sharded index", "epoch swaps", "lookups agree with binary search"},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.dir, "./examples/"), func(t *testing.T) {
			out, err := exec.Command("go", append([]string{"run", c.dir}, c.args...)...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", c.dir, err, out)
			}
			for _, want := range c.wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q:\n%s", c.dir, want, out)
				}
			}
		})
	}
}
