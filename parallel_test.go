package cssidx_test

// Differential proofs for the parallel batch engine: every batch method of
// every wrapped kind, at worker counts and batch sizes straddling the
// sequential-fallback threshold, must be bit-identical to the scalar loop.
// Workers are forced above GOMAXPROCS so true interleaving happens even on
// one core (the -race CI leg then checks the memory model, and the
// GOMAXPROCS=8 leg real concurrency).

import (
	"testing"

	"cssidx"
	"cssidx/internal/workload"
)

// parallelOptsUnderTest force the engine on at small sizes.
var parallelOptsUnderTest = []cssidx.ParallelOptions{
	{},                                      // default: engine decides
	{Workers: 1},                            // forced sequential
	{Workers: 4, MinBatchPerWorker: 64},     // forced parallel, fine spans
	{Workers: 3, MinBatchPerWorker: 1},      // odd worker count, tiny spans
	{Workers: 16, MinBatchPerWorker: 1024},  // more workers than work
	{Workers: 2, MinBatchPerWorker: 100000}, // fallback via min-batch
}

func TestNewParallelMatchesScalarEveryKind(t *testing.T) {
	g := workload.New(31)
	keys := g.SortedWithDuplicates(20000, 3)
	probes := append(g.Lookups(keys, 3000), g.Misses(keys, 1500)...)
	probes = append(probes, 0, ^uint32(0))

	for _, kind := range cssidx.Kinds() {
		idx := cssidx.New(kind, keys, cssidx.Options{})
		ord, ok := idx.(cssidx.OrderedIndex)
		if !ok {
			continue // hash: no ordered surface; covered via AsBatch elsewhere
		}
		for oi, opts := range parallelOptsUnderTest {
			par := cssidx.NewParallel(ord, opts)
			out := make([]int32, len(probes))
			first := make([]int32, len(probes))
			last := make([]int32, len(probes))

			par.SearchBatch(probes, out)
			for i, p := range probes {
				if want := int32(ord.Search(p)); out[i] != want {
					t.Fatalf("%s opts#%d SearchBatch[%d]=%d want %d (key %d)", idx.Name(), oi, i, out[i], want, p)
				}
			}
			par.LowerBoundBatch(probes, out)
			for i, p := range probes {
				if want := int32(ord.LowerBound(p)); out[i] != want {
					t.Fatalf("%s opts#%d LowerBoundBatch[%d]=%d want %d (key %d)", idx.Name(), oi, i, out[i], want, p)
				}
			}
			par.EqualRangeBatch(probes, first, last)
			for i, p := range probes {
				wf, wl := ord.EqualRange(p)
				if first[i] != int32(wf) || last[i] != int32(wl) {
					t.Fatalf("%s opts#%d EqualRangeBatch[%d]=[%d,%d) want [%d,%d)", idx.Name(), oi, i, first[i], last[i], wf, wl)
				}
			}
		}
	}
}

func TestNewParallelEmptyAndTinyBatches(t *testing.T) {
	g := workload.New(32)
	keys := g.SortedDistinct(1000)
	idx := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)
	par := cssidx.NewParallel(idx, cssidx.ParallelOptions{Workers: 4, MinBatchPerWorker: 1})
	par.SearchBatch(nil, nil)
	out := make([]int32, 1)
	par.SearchBatch([]uint32{keys[7]}, out)
	if out[0] != 7 {
		t.Errorf("single-probe batch: got %d, want 7", out[0])
	}
}

func TestNewParallelLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	keys := workload.New(33).SortedDistinct(100)
	cssidx.NewParallel(cssidx.NewLevelCSS(keys, 64), cssidx.ParallelOptions{}).
		SearchBatch(make([]uint32, 4), make([]int32, 3))
}

// TestNewParallelRejectsSortedBatch pins the composition rule: SortedBatch
// carries per-call scratch, so the engine must refuse to fan it out (the
// safe composition is NewSortedBatch(NewParallel(idx, opts))).
func TestNewParallelRejectsSortedBatch(t *testing.T) {
	keys := workload.New(37).SortedDistinct(1000)
	idx := cssidx.NewLevelCSS(keys, 64)
	defer func() {
		if recover() == nil {
			t.Error("NewParallel over a SortedBatch did not panic")
		}
	}()
	cssidx.NewParallel(cssidx.NewSortedBatch(idx), cssidx.ParallelOptions{})
}

// TestSortedOverParallelComposition exercises the safe composition the panic
// message points at.
func TestSortedOverParallelComposition(t *testing.T) {
	g := workload.New(38)
	keys := g.SortedWithDuplicates(10000, 3)
	idx := cssidx.NewLevelCSS(keys, 64)
	sb := cssidx.NewSortedBatch(cssidx.NewParallel(idx, cssidx.ParallelOptions{Workers: 4, MinBatchPerWorker: 32}))
	probes := g.ZipfLookups(keys, 3000, 1.2)
	out := make([]int32, len(probes))
	sb.SearchBatch(probes, out)
	for i, p := range probes {
		if want := int32(idx.Search(p)); out[i] != want {
			t.Fatalf("sorted-over-parallel SearchBatch[%d]=%d want %d", i, out[i], want)
		}
	}
}

func TestGenericParallelMatchesScalar(t *testing.T) {
	g := workload.New(34)
	u := g.SortedWithDuplicates(8000, 2)
	keys := make([]uint64, len(u))
	for i, v := range u {
		keys[i] = uint64(v) << 3
	}
	tr := cssidx.NewGenericLevel(keys, 8)
	probes := make([]uint64, 0, 4000)
	for _, p := range g.Lookups(u, 2000) {
		probes = append(probes, uint64(p)<<3)
	}
	for _, p := range g.Misses(u, 2000) {
		probes = append(probes, uint64(p)<<3|1)
	}
	for _, opts := range []cssidx.ParallelOptions{{}, {Workers: 4, MinBatchPerWorker: 32}} {
		par := cssidx.NewGenericParallel(tr, opts)
		out := make([]int32, len(probes))
		first := make([]int32, len(probes))
		last := make([]int32, len(probes))
		par.SearchBatch(probes, out)
		par.EqualRangeBatch(probes, first, last)
		lb := make([]int32, len(probes))
		par.LowerBoundBatch(probes, lb)
		for i, p := range probes {
			if want := int32(tr.Search(p)); out[i] != want {
				t.Fatalf("GenericParallel SearchBatch[%d]=%d want %d", i, out[i], want)
			}
			if want := int32(tr.LowerBound(p)); lb[i] != want {
				t.Fatalf("GenericParallel LowerBoundBatch[%d]=%d want %d", i, lb[i], want)
			}
			wf, wl := tr.EqualRange(p)
			if first[i] != int32(wf) || last[i] != int32(wl) {
				t.Fatalf("GenericParallel EqualRangeBatch[%d]=[%d,%d) want [%d,%d)", i, first[i], last[i], wf, wl)
			}
		}
	}
}

// TestShardedParallelSchedulesMatchScalar drives every schedule × worker
// configuration of the sharded batch surface against the scalar methods.
func TestShardedParallelSchedulesMatchScalar(t *testing.T) {
	g := workload.New(35)
	keys := g.SortedWithDuplicates(30000, 4)
	// Uniform and heavily duplicated probe streams: the Auto schedule must
	// give identical results whichever branch it picks.
	streams := map[string][]uint32{
		"uniform": append(g.Lookups(keys, 4000), g.Misses(keys, 1000)...),
		"skewed":  g.ZipfLookups(keys, 5000, 1.3),
	}
	for name, probes := range streams {
		for _, sched := range []cssidx.BatchSchedule{cssidx.ScheduleAuto, cssidx.ScheduleInputOrder, cssidx.ScheduleSorted} {
			for _, par := range []cssidx.ParallelOptions{{Workers: 1}, {Workers: 4, MinBatchPerWorker: 128}} {
				idx := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{
					Shards: 5, Schedule: sched, Parallel: par,
				})
				v := idx.Snapshot()
				out := make([]int32, len(probes))
				first := make([]int32, len(probes))
				last := make([]int32, len(probes))
				v.SearchBatch(probes, out)
				v.EqualRangeBatch(probes, first, last)
				lb := make([]int32, len(probes))
				v.LowerBoundBatch(probes, lb)
				for i, p := range probes {
					if want := int32(v.Search(p)); out[i] != want {
						t.Fatalf("%s sched=%v par=%+v SearchBatch[%d]=%d want %d", name, sched, par, i, out[i], want)
					}
					if want := int32(v.LowerBound(p)); lb[i] != want {
						t.Fatalf("%s sched=%v par=%+v LowerBoundBatch[%d]=%d want %d", name, sched, par, i, lb[i], want)
					}
					wf, wl := v.EqualRange(p)
					if first[i] != int32(wf) || last[i] != int32(wl) {
						t.Fatalf("%s sched=%v par=%+v EqualRangeBatch[%d] mismatch", name, sched, par, i)
					}
				}
				idx.Close()
			}
		}
	}
}

// TestShardedSortBatchesOverrideStillSorted pins the manual override: the
// legacy flag must force the sorted schedule regardless of Schedule.
func TestShardedSortBatchesOverrideStillSorted(t *testing.T) {
	g := workload.New(36)
	keys := g.SortedDistinct(5000)
	idx := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{
		Shards: 3, SortBatches: true, Schedule: cssidx.ScheduleInputOrder,
	})
	defer idx.Close()
	probes := g.Lookups(keys, 1000)
	out := make([]int32, len(probes))
	idx.SearchBatch(probes, out)
	for i, p := range probes {
		if want := int32(idx.Search(p)); out[i] != want {
			t.Fatalf("override SearchBatch[%d]=%d want %d", i, out[i], want)
		}
	}
}
