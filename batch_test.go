package cssidx_test

import (
	"sort"
	"testing"

	"cssidx"
	"cssidx/internal/workload"
)

// TestEveryKindAnswersBatches drives every method through the batch surface
// and checks bit-identical agreement with its own scalar methods.
func TestEveryKindAnswersBatches(t *testing.T) {
	g := workload.New(31)
	keys := g.SortedWithDuplicates(20000, 3)
	probes := append(g.Lookups(keys, 2000), g.Misses(keys, 1000)...)
	probes = append(probes, 0, ^uint32(0))
	out := make([]int32, len(probes))
	first := make([]int32, len(probes))
	last := make([]int32, len(probes))
	for _, kind := range cssidx.Kinds() {
		idx := cssidx.New(kind, keys, cssidx.Options{})
		b := cssidx.AsBatch(idx)
		b.SearchBatch(probes, out)
		for i, p := range probes {
			if int(out[i]) != idx.Search(p) {
				t.Fatalf("%s: SearchBatch[%d]=%d, scalar=%d (key %d)", kind, i, out[i], idx.Search(p), p)
			}
		}
		ord, ok := idx.(cssidx.OrderedIndex)
		if !ok {
			continue
		}
		bo := cssidx.AsBatchOrdered(ord)
		bo.LowerBoundBatch(probes, out)
		bo.EqualRangeBatch(probes, first, last)
		for i, p := range probes {
			if int(out[i]) != ord.LowerBound(p) {
				t.Fatalf("%s: LowerBoundBatch[%d]=%d, scalar=%d (key %d)", kind, i, out[i], ord.LowerBound(p), p)
			}
			wf, wl := ord.EqualRange(p)
			if int(first[i]) != wf || int(last[i]) != wl {
				t.Fatalf("%s: EqualRangeBatch[%d]=[%d,%d), scalar=[%d,%d)", kind, i, first[i], last[i], wf, wl)
			}
		}
	}
}

// TestSortedBatchSchedule checks the sort-probes-first schedule (radix sort
// + dedup) returns bit-identical results through all three batch methods,
// including batches dominated by repeated keys.
func TestSortedBatchSchedule(t *testing.T) {
	g := workload.New(32)
	keys := g.SortedWithDuplicates(20000, 3)
	probes := append(g.Lookups(keys, 1500), g.Misses(keys, 700)...)
	// A hot-key burst: the dedup path must fan one descent out to all copies.
	hot := keys[len(keys)/2]
	for i := 0; i < 200; i++ {
		probes = append(probes, hot)
	}
	probes = append(probes, 0, ^uint32(0))
	for _, kind := range []cssidx.Kind{cssidx.KindLevelCSS, cssidx.KindFullCSS, cssidx.KindBinarySearch} {
		ord := cssidx.New(kind, keys, cssidx.Options{}).(cssidx.OrderedIndex)
		sb := cssidx.NewSortedBatch(ord)
		out := make([]int32, len(probes))
		first := make([]int32, len(probes))
		last := make([]int32, len(probes))
		sb.SearchBatch(probes, out)
		for i, p := range probes {
			if int(out[i]) != ord.Search(p) {
				t.Fatalf("%s: sorted SearchBatch[%d]=%d, scalar=%d (key %d)", kind, i, out[i], ord.Search(p), p)
			}
		}
		sb.LowerBoundBatch(probes, out)
		sb.EqualRangeBatch(probes, first, last)
		for i, p := range probes {
			if int(out[i]) != ord.LowerBound(p) {
				t.Fatalf("%s: sorted LowerBoundBatch[%d]=%d, scalar=%d (key %d)", kind, i, out[i], ord.LowerBound(p), p)
			}
			wf, wl := ord.EqualRange(p)
			if int(first[i]) != wf || int(last[i]) != wl {
				t.Fatalf("%s: sorted EqualRangeBatch[%d]=[%d,%d), scalar=[%d,%d)", kind, i, first[i], last[i], wf, wl)
			}
		}
	}
}

// TestCSSKindsBatchNatively asserts the CSS-trees expose the lockstep kernel
// directly rather than through the scalar adapter.
func TestCSSKindsBatchNatively(t *testing.T) {
	keys := []uint32{1, 2, 3}
	for _, kind := range []cssidx.Kind{cssidx.KindFullCSS, cssidx.KindLevelCSS} {
		idx := cssidx.New(kind, keys, cssidx.Options{})
		if _, ok := idx.(cssidx.BatchOrderedIndex); !ok {
			t.Errorf("%s does not implement BatchOrderedIndex natively", kind)
		}
	}
}

// TestGenericBatch checks the generic lockstep descent on a non-uint32 key
// type against the scalar generic methods and a sort.SearchStrings oracle.
func TestGenericBatch(t *testing.T) {
	words := []string{"ant", "bee", "cat", "cat", "dog", "eel", "fox", "gnu", "hen", "ibis", "jay",
		"kite", "lark", "mole", "newt", "owl", "pig", "quail", "ram", "swan", "toad", "vole", "wren"}
	for _, m := range []int{2, 4, 8} {
		full := cssidx.NewGenericFull(words, m)
		level := cssidx.NewGenericLevel(words, m)
		probes := append([]string{"", "aardvark", "cat", "dot", "wren", "zebra"}, words...)
		out := make([]int32, len(probes))
		first := make([]int32, len(probes))
		last := make([]int32, len(probes))
		for _, tr := range []*cssidx.Generic[string]{full, level} {
			tr.LowerBoundBatch(probes, out)
			tr.EqualRangeBatch(probes, first, last)
			for i, p := range probes {
				want := sort.SearchStrings(words, p)
				if int(out[i]) != want || tr.LowerBound(p) != want {
					t.Fatalf("m=%d: LowerBoundBatch[%d]=%d scalar=%d want %d (%q)",
						m, i, out[i], tr.LowerBound(p), want, p)
				}
				wf, wl := tr.EqualRange(p)
				if int(first[i]) != wf || int(last[i]) != wl {
					t.Fatalf("m=%d: EqualRangeBatch[%d]=[%d,%d) want [%d,%d)", m, i, first[i], last[i], wf, wl)
				}
			}
			tr.SearchBatch(probes, out)
			for i, p := range probes {
				if int(out[i]) != tr.Search(p) {
					t.Fatalf("m=%d: SearchBatch[%d]=%d scalar=%d (%q)", m, i, out[i], tr.Search(p), p)
				}
			}
		}
	}
}

func TestBatchLengthMismatchPanics(t *testing.T) {
	idx := cssidx.AsBatchOrdered(cssidx.NewBinarySearch([]uint32{1, 2, 3}))
	defer func() {
		if recover() == nil {
			t.Error("expected panic on probes/out length mismatch")
		}
	}()
	idx.SearchBatch(make([]uint32, 4), make([]int32, 3))
}
