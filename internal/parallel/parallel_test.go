package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersFor(t *testing.T) {
	cases := []struct {
		opts  Options
		total int
		want  int
	}{
		{Options{Workers: 4, MinBatchPerWorker: 100}, 0, 1},
		{Options{Workers: 4, MinBatchPerWorker: 100}, 99, 1},
		{Options{Workers: 4, MinBatchPerWorker: 100}, 199, 1},
		{Options{Workers: 4, MinBatchPerWorker: 100}, 200, 2},
		{Options{Workers: 4, MinBatchPerWorker: 100}, 399, 3},
		{Options{Workers: 4, MinBatchPerWorker: 100}, 400, 4},
		{Options{Workers: 4, MinBatchPerWorker: 100}, 1 << 20, 4},
		{Options{Workers: 1, MinBatchPerWorker: 1}, 1 << 20, 1},
	}
	for _, c := range cases {
		if got := c.opts.WorkersFor(c.total); got != c.want {
			t.Errorf("WorkersFor(%+v, %d) = %d, want %d", c.opts, c.total, got, c.want)
		}
	}
	// Zero options scale with GOMAXPROCS but never exceed total/default.
	w := Options{}.WorkersFor(1 << 30)
	if max := runtime.GOMAXPROCS(0); w != max {
		t.Errorf("zero options on huge batch: %d workers, want GOMAXPROCS=%d", w, max)
	}
	if w := (Options{}).WorkersFor(DefaultMinPerWorker); w != 1 {
		t.Errorf("batch of one min-span should stay sequential, got %d workers", w)
	}
}

// TestRunCoversExactly verifies the spans partition [0, n) with no overlap
// and no gap, across worker counts and sizes including the fallback.
func TestRunCoversExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 9} {
		for _, n := range []int{0, 1, 5, 1000, 4096, 100_001} {
			seen := make([]int32, n)
			Run(n, Options{Workers: workers, MinBatchPerWorker: 1}, func(lo, hi int) {
				if lo > hi || lo < 0 || hi > n {
					t.Errorf("bad span [%d,%d) for n=%d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestRunSequentialFallbackSingleCall(t *testing.T) {
	calls := 0
	Run(100, Options{Workers: 8, MinBatchPerWorker: 1000}, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Errorf("fallback span [%d,%d), want [0,100)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("fallback made %d calls, want 1", calls)
	}
	Run(0, Options{}, func(lo, hi int) { t.Error("body called for n=0") })
}

func TestDoRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, tasks := range []int{0, 1, 3, 57} {
			seen := make([]int32, tasks)
			Do(tasks, 1<<20, Options{Workers: workers, MinBatchPerWorker: 1}, func(task int) {
				atomic.AddInt32(&seen[task], 1)
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d tasks=%d: task %d ran %d times", workers, tasks, i, c)
				}
			}
		}
	}
}

func TestDoSequentialOrder(t *testing.T) {
	var order []int
	Do(5, 10, Options{Workers: 1}, func(task int) { order = append(order, task) })
	for i, task := range order {
		if task != i {
			t.Fatalf("sequential Do out of order: %v", order)
		}
	}
}
