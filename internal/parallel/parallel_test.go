package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersFor(t *testing.T) {
	cases := []struct {
		opts  Options
		total int
		want  int
	}{
		{Options{Workers: 4, MinBatchPerWorker: 100}, 0, 1},
		{Options{Workers: 4, MinBatchPerWorker: 100}, 99, 1},
		{Options{Workers: 4, MinBatchPerWorker: 100}, 199, 1},
		{Options{Workers: 4, MinBatchPerWorker: 100}, 200, 2},
		{Options{Workers: 4, MinBatchPerWorker: 100}, 399, 3},
		{Options{Workers: 4, MinBatchPerWorker: 100}, 400, 4},
		{Options{Workers: 4, MinBatchPerWorker: 100}, 1 << 20, 4},
		{Options{Workers: 1, MinBatchPerWorker: 1}, 1 << 20, 1},
	}
	for _, c := range cases {
		if got := c.opts.WorkersFor(c.total); got != c.want {
			t.Errorf("WorkersFor(%+v, %d) = %d, want %d", c.opts, c.total, got, c.want)
		}
	}
	// Zero options scale with GOMAXPROCS but never exceed total/default.
	w := Options{}.WorkersFor(1 << 30)
	if max := runtime.GOMAXPROCS(0); w != max {
		t.Errorf("zero options on huge batch: %d workers, want GOMAXPROCS=%d", w, max)
	}
	if w := (Options{}).WorkersFor(DefaultMinPerWorker); w != 1 {
		t.Errorf("batch of one min-span should stay sequential, got %d workers", w)
	}
}

// TestRunCoversExactly verifies the spans partition [0, n) with no overlap
// and no gap, across worker counts and sizes including the fallback.
func TestRunCoversExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 9} {
		for _, n := range []int{0, 1, 5, 1000, 4096, 100_001} {
			seen := make([]int32, n)
			Run(n, Options{Workers: workers, MinBatchPerWorker: 1}, func(lo, hi int) {
				if lo > hi || lo < 0 || hi > n {
					t.Errorf("bad span [%d,%d) for n=%d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestRunSequentialFallbackSingleCall(t *testing.T) {
	calls := 0
	Run(100, Options{Workers: 8, MinBatchPerWorker: 1000}, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Errorf("fallback span [%d,%d), want [0,100)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("fallback made %d calls, want 1", calls)
	}
	Run(0, Options{}, func(lo, hi int) { t.Error("body called for n=0") })
}

func TestDoRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, tasks := range []int{0, 1, 3, 57} {
			seen := make([]int32, tasks)
			Do(tasks, 1<<20, Options{Workers: workers, MinBatchPerWorker: 1}, func(task int) {
				atomic.AddInt32(&seen[task], 1)
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d tasks=%d: task %d ran %d times", workers, tasks, i, c)
				}
			}
		}
	}
}

func TestDoSequentialOrder(t *testing.T) {
	var order []int
	Do(5, 10, Options{Workers: 1}, func(task int) { order = append(order, task) })
	for i, task := range order {
		if task != i {
			t.Fatalf("sequential Do out of order: %v", order)
		}
	}
}

func TestMinForCostClamps(t *testing.T) {
	if got := MinForCost(0); got != DefaultMinPerWorker {
		t.Fatalf("MinForCost(0) = %d, want default %d", got, DefaultMinPerWorker)
	}
	if got := MinForCost(1000); got != minAdaptiveSpan {
		t.Fatalf("slow probes should clamp to %d, got %d", minAdaptiveSpan, got)
	}
	if got := MinForCost(0.01); got != maxAdaptiveSpan {
		t.Fatalf("instant probes should clamp to %d, got %d", maxAdaptiveSpan, got)
	}
	// 50ns per probe → spanBudget/50 = 1000 probes.
	if got := MinForCost(50); got != 1000 {
		t.Fatalf("MinForCost(50) = %d, want 1000", got)
	}
}

func TestTunerCalibratesOnFirstLargeRun(t *testing.T) {
	var tu Tuner
	opts := Options{Workers: 4, Tuner: &tu}
	// Small run: no calibration.
	covered := make([]bool, 100)
	Run(100, opts, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i] = true
		}
	})
	if tu.Min() != 0 {
		t.Fatalf("small run calibrated: min=%d", tu.Min())
	}
	// Large run: calibrates once, still covers [0, n) exactly once.
	n := 3*calibSpan + 17
	var hits = make([]int32, n)
	Run(n, opts, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	if tu.Min() == 0 {
		t.Fatal("large run did not calibrate")
	}
	if tu.PerProbeNs() < 0 {
		t.Fatalf("negative per-probe cost %v", tu.PerProbeNs())
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d covered %d times", i, h)
		}
	}
	// The cached value resolves into later option sets.
	if ro, calibrate := opts.Resolved(); calibrate || ro.MinBatchPerWorker != tu.Min() {
		t.Fatalf("Resolved() = (%+v, %v), want cached min %d", ro, calibrate, tu.Min())
	}
	// Explicit MinBatchPerWorker wins over the tuner.
	pinned := Options{MinBatchPerWorker: 9999, Tuner: &tu}
	if ro, _ := pinned.Resolved(); ro.MinBatchPerWorker != 9999 {
		t.Fatalf("explicit span overridden: %d", ro.MinBatchPerWorker)
	}
	// WithoutTuner strips it.
	if o := opts.WithoutTuner(); o.Tuner != nil {
		t.Fatal("WithoutTuner kept the tuner")
	}
}

func TestTunerObserveInvalidatesOnGrowth(t *testing.T) {
	var tu Tuner
	// Before calibration Observe is a no-op.
	tu.Observe(10_000)
	if tu.Min() != 0 {
		t.Fatalf("Observe calibrated from nothing: min=%d", tu.Min())
	}
	tu.Note(1000, 50*time.Microsecond)
	want := tu.Min()
	if want == 0 {
		t.Fatal("Note did not calibrate")
	}
	// Stable index size keeps the calibration.
	for i := 0; i < 100; i++ {
		tu.Observe(10_000)
	}
	if tu.Min() != want {
		t.Fatalf("stable size invalidated calibration: min=%d, want %d", tu.Min(), want)
	}
	// Sub-2× growth keeps it too.
	tu.Observe(19_999)
	if tu.Min() != want {
		t.Fatal("sub-2x growth invalidated calibration")
	}
	// Doubling since the calibration-time size invalidates it.
	tu.Observe(20_000)
	if tu.Min() != 0 {
		t.Fatalf("2x growth kept stale calibration: min=%d", tu.Min())
	}
	// A fresh Note re-arms against the new size baseline.
	tu.Note(1000, 50*time.Microsecond)
	tu.Observe(20_000)
	tu.Observe(39_999)
	if tu.Min() == 0 {
		t.Fatal("recalibrated span dropped below the new 2x threshold")
	}
	tu.Observe(40_000)
	if tu.Min() != 0 {
		t.Fatal("2x growth after recalibration kept stale span")
	}
}

func TestTunerObserveInvalidatesAfterManyBatches(t *testing.T) {
	var tu Tuner
	tu.Note(1000, 50*time.Microsecond)
	for i := 0; i < recalibrateEvery-1; i++ {
		tu.Observe(5000)
		if tu.Min() == 0 {
			t.Fatalf("calibration dropped early at batch %d", i)
		}
	}
	tu.Observe(5000)
	if tu.Min() != 0 {
		t.Fatalf("calibration outlived %d batches", recalibrateEvery)
	}
}

func TestTunerResolvesInDo(t *testing.T) {
	var tu Tuner
	tu.Note(1000, 50*time.Microsecond) // 50ns/probe → min 1000
	opts := Options{Workers: 8, Tuner: &tu}
	var ran atomic.Int64
	Do(4, 100_000, opts, func(task int) { ran.Add(1) })
	if ran.Load() != 4 {
		t.Fatalf("Do ran %d tasks, want 4", ran.Load())
	}
	if got := opts.WorkersFor(3000); got != 3 {
		t.Fatalf("WorkersFor(3000) with calibrated min 1000 = %d, want 3", got)
	}
}
