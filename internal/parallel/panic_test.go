package parallel

import (
	"strings"
	"sync/atomic"
	"testing"
)

// catch runs f and returns the recovered panic value (nil = no panic).
func catch(f func()) (v any) {
	defer func() { v = recover() }()
	f()
	return nil
}

func panicWorkerOpts() Options {
	return Options{Workers: 4, MinBatchPerWorker: 1}
}

func TestRunWorkerPanicReachesCaller(t *testing.T) {
	var ran atomic.Int64
	v := catch(func() {
		Run(8, panicWorkerOpts(), func(lo, hi int) {
			if lo == 0 { // worker 0 = the caller
				panic("boom in span")
			}
			ran.Add(1)
		})
	})
	wp, ok := v.(*WorkerPanic)
	if !ok {
		t.Fatalf("recovered %T (%v), want *WorkerPanic", v, v)
	}
	if wp.Value != "boom in span" {
		t.Fatalf("Value = %v", wp.Value)
	}
	if !strings.Contains(string(wp.Stack), "TestRunWorkerPanicReachesCaller") {
		t.Fatalf("stack does not show the panicking body:\n%s", wp.Stack)
	}
	if !strings.Contains(wp.Error(), "boom in span") {
		t.Fatalf("Error() = %q", wp.Error())
	}
	// The other workers' spans still completed: panic isolation, not
	// panic amplification.
	if ran.Load() != 3 {
		t.Fatalf("%d spans ran, want 3", ran.Load())
	}
}

func TestRunSpawnedWorkerPanicReachesCaller(t *testing.T) {
	v := catch(func() {
		Run(8, panicWorkerOpts(), func(lo, hi int) {
			if lo != 0 { // a spawned worker, not the caller
				panic(lo)
			}
		})
	})
	wp, ok := v.(*WorkerPanic)
	if !ok {
		t.Fatalf("recovered %T (%v), want *WorkerPanic", v, v)
	}
	if _, ok := wp.Value.(int); !ok {
		t.Fatalf("Value = %v, want a span offset", wp.Value)
	}
}

func TestRunSequentialPanicUnwrapped(t *testing.T) {
	v := catch(func() {
		Run(8, Options{Workers: 1}, func(lo, hi int) { panic("plain") })
	})
	if v != "plain" {
		t.Fatalf("sequential panic = %v (%T), want unwrapped string", v, v)
	}
}

func TestDoPanicCancelsRemainingTasks(t *testing.T) {
	const tasks = 100000
	var ran atomic.Int64
	v := catch(func() {
		Do(tasks, tasks, panicWorkerOpts(), func(task int) {
			if task == 0 {
				panic("first task")
			}
			ran.Add(1)
		})
	})
	wp, ok := v.(*WorkerPanic)
	if !ok {
		t.Fatalf("recovered %T (%v), want *WorkerPanic", v, v)
	}
	if wp.Value != "first task" {
		t.Fatalf("Value = %v", wp.Value)
	}
	// In-flight tasks finish but the undrawn bulk is cancelled.
	if n := ran.Load(); n >= tasks-1 {
		t.Fatalf("all %d tasks ran despite the panic", n)
	}
}

func TestNestedWorkerPanicNotDoubleWrapped(t *testing.T) {
	v := catch(func() {
		Run(8, panicWorkerOpts(), func(lo, hi int) {
			if lo == 0 {
				Do(4, 4, panicWorkerOpts(), func(task int) {
					if task == 0 {
						panic("inner")
					}
				})
			}
		})
	})
	wp, ok := v.(*WorkerPanic)
	if !ok {
		t.Fatalf("recovered %T (%v), want *WorkerPanic", v, v)
	}
	if wp.Value != "inner" {
		t.Fatalf("Value = %v, want the innermost panic value (no nesting)", wp.Value)
	}
}

func TestRunNoPanicNoOverheadPath(t *testing.T) {
	// Happy path still covers the span exactly (guards against the trap
	// swallowing anything but panics).
	var sum atomic.Int64
	Run(100, panicWorkerOpts(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	})
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
}
