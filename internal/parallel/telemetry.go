package parallel

// Telemetry for the worker pool: per-worker handoff latency (spawn to
// first instruction) versus busy time, and the adaptive tuner's latest
// calibration.  Worker timing brackets with telemetry.Now, so while
// collection is off each spawned worker pays two atomic loads — nothing
// next to the goroutine handoff itself.

import "cssidx/internal/telemetry"

var (
	histWaitNs = telemetry.H("parallel_worker_wait_ns")
	histRunNs  = telemetry.H("parallel_worker_run_ns")

	ctrCalibrations = telemetry.C("parallel_calibrations_total")
	// The derived span and the per-probe cost behind it (picoseconds, so
	// sub-nanosecond probe costs survive the integer gauge).
	gTunerMin     = telemetry.G("parallel_tuner_min_per_worker")
	gTunerProbePs = telemetry.G("parallel_tuner_per_probe_ps")
)

// noteCalibration publishes a tuner measurement to the registry.
func noteCalibration(minPerWorker int, perProbeNs float64) {
	if !telemetry.Enabled() {
		return
	}
	ctrCalibrations.Inc()
	gTunerMin.Set(int64(minPerWorker))
	gTunerProbePs.Set(int64(perProbeNs * 1000))
}
