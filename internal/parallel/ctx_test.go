package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCtxCompletesWithLiveContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sum atomic.Int64
	if err := RunCtx(ctx, 100_000, Options{Workers: 4, MinBatchPerWorker: 1}, func(lo, hi int) {
		sum.Add(int64(hi - lo))
	}); err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	if sum.Load() != 100_000 {
		t.Fatalf("covered %d rows, want 100000", sum.Load())
	}
}

func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := RunCtx(ctx, 1000, Options{}, func(lo, hi int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if ran {
		t.Fatal("body ran under a pre-cancelled context")
	}
}

// TestRunCtxStopsMidSpan cancels from inside the body and verifies workers
// stop at the next checkpoint instead of finishing their partitions.
func TestRunCtxStopsMidSpan(t *testing.T) {
	const n = 1 << 20
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var rows atomic.Int64
	err := RunCtx(ctx, n, Options{Workers: 4, MinBatchPerWorker: 1, CheckpointStride: 1024}, func(lo, hi int) {
		rows.Add(int64(hi - lo))
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	// Each of the 4 workers runs its first chunk (1024 rows) before it can
	// observe the flag; everything beyond a couple of chunks per worker
	// means checkpoints are not being honored.
	if got := rows.Load(); got > 4*2*1024 {
		t.Fatalf("processed %d rows after cancel, want <= %d", got, 4*2*1024)
	}
}

func TestRunCtxSequentialHonorsCancel(t *testing.T) {
	const n = 1 << 20
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var rows int64
	err := RunCtx(ctx, n, Options{Workers: 1, CheckpointStride: 4096}, func(lo, hi int) {
		rows += int64(hi - lo)
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if rows != 4096 {
		t.Fatalf("sequential path processed %d rows, want one 4096 chunk", rows)
	}
}

func TestRunCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	err := RunCtx(ctx, 1000, Options{}, func(lo, hi int) {})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestRunCtxPanicCancelsSiblings verifies governance-aware panic isolation:
// one worker's panic trips the shared flag, so siblings stop at their next
// checkpoint instead of running their partitions to completion.
func TestRunCtxPanicCancelsSiblings(t *testing.T) {
	const n = 1 << 22
	var rows atomic.Int64
	var panicked atomic.Bool
	defer func() {
		v := recover()
		wp, ok := v.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %v, want *WorkerPanic", v)
		}
		if wp.Value != "boom" {
			t.Fatalf("panic value = %v, want boom", wp.Value)
		}
		// Siblings must have stopped near their first checkpoints: well
		// under the full n rows.
		if got := rows.Load(); got > n/4 {
			t.Fatalf("siblings processed %d of %d rows after panic", got, n)
		}
	}()
	RunCtx(context.Background(), n, Options{Workers: 4, MinBatchPerWorker: 1, CheckpointStride: 512}, func(lo, hi int) {
		if panicked.CompareAndSwap(false, true) {
			panic("boom")
		}
		rows.Add(int64(hi - lo))
	})
	t.Fatal("RunCtx returned instead of re-panicking")
}

// TestRunPanicStillDrains pins the legacy contract: without a context,
// panic isolation still re-panics a single WorkerPanic after join.
func TestRunPanicStillDrains(t *testing.T) {
	defer func() {
		if _, ok := recover().(*WorkerPanic); !ok {
			t.Fatal("want *WorkerPanic")
		}
	}()
	Run(1<<20, Options{Workers: 4, MinBatchPerWorker: 1}, func(lo, hi int) {
		panic("legacy")
	})
}

func TestDoCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := DoCtx(ctx, 100, 1<<20, Options{}, func(task int) {
		t.Error("task ran under a pre-cancelled context")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func TestDoCtxStopsHandingOutTasks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var tasks atomic.Int64
	err := DoCtx(ctx, 1000, 1<<22, Options{Workers: 4, MinBatchPerWorker: 1}, func(task int) {
		tasks.Add(1)
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	// Each worker may have been mid-draw when the flag flipped: a handful
	// of tasks is fine, hundreds is not.
	if got := tasks.Load(); got > 16 {
		t.Fatalf("ran %d tasks after cancel", got)
	}
}

func TestDoCtxSequentialHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var tasks int
	err := DoCtx(ctx, 1000, 10, Options{}, func(task int) {
		tasks++
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if tasks != 1 {
		t.Fatalf("sequential path ran %d tasks, want 1", tasks)
	}
}

func TestDoCtxCompletes(t *testing.T) {
	var tasks atomic.Int64
	if err := DoCtx(context.Background(), 257, 1<<20, Options{Workers: 4, MinBatchPerWorker: 1}, func(task int) {
		tasks.Add(1)
	}); err != nil {
		t.Fatalf("DoCtx: %v", err)
	}
	if tasks.Load() != 257 {
		t.Fatalf("ran %d tasks, want 257", tasks.Load())
	}
}
