// Package parallel is the worker-pool scheduler behind the batched execution
// engine: it splits one large probe batch across GOMAXPROCS-level workers so
// that several lockstep descents run concurrently, multiplying the
// memory-level parallelism each kernel already extracts within a core by the
// number of cores.  The paper's arithmetic traversal makes this composition
// clean — workers share nothing but the immutable directory and disjoint
// spans of the probe/result arrays, so no synchronisation is needed beyond
// the final join.
//
// The scheduler is deliberately small: contiguous spans for flat batches
// (Run), an atomic work counter for irregular task lists such as per-shard
// probe runs (Do), and a sequential fallback whenever the batch is too small
// to amortise goroutine handoff.  Nothing here allocates per probe; the only
// per-batch allocations are the worker goroutines themselves.
package parallel

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"cssidx/internal/telemetry"
)

// WorkerPanic carries a panic out of a pool worker to the calling
// goroutine: Run and Do recover panics on their spawned workers, let the
// surviving workers drain (Do stops handing out further tasks), and then
// re-panic exactly once on the caller with the first panic's value and
// its original stack.  Without this, a panicking worker would kill the
// whole process from a goroutine nobody can defer around — with it, a
// server calling the batch engine can recover at its request boundary
// and keep serving.
//
// On the sequential path (one worker) body runs on the calling
// goroutine and a panic propagates unwrapped, stack intact.
type WorkerPanic struct {
	Value any    // the value the worker's body panicked with
	Stack []byte // the worker's stack at the point of the panic
}

func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("parallel: worker panicked: %v\n\nworker stack:\n%s", p.Value, p.Stack)
}

// panicTrap collects the first panic across a batch's workers.
type panicTrap struct {
	once    sync.Once
	tripped atomic.Bool
	val     any
	stack   []byte
}

// protect runs f, diverting a panic into the trap (first one wins).
func (p *panicTrap) protect(f func()) {
	defer func() {
		if v := recover(); v != nil {
			// Trip the flag before the (slow) stack capture so Do stops
			// handing out tasks immediately.
			p.tripped.Store(true)
			p.once.Do(func() {
				p.val = v
				p.stack = debug.Stack()
			})
		}
	}()
	f()
}

// rethrow re-panics on the caller once every worker has joined.  A
// WorkerPanic that crossed one pool boundary already (nested Run/Do) is
// passed through rather than double-wrapped.
func (p *panicTrap) rethrow() {
	if !p.tripped.Load() {
		return
	}
	if wp, ok := p.val.(*WorkerPanic); ok {
		panic(wp)
	}
	panic(&WorkerPanic{Value: p.val, Stack: p.stack})
}

// DefaultMinPerWorker is the smallest work size (in probes) worth handing to
// an extra worker.  Below roughly this many probes per core the goroutine
// wake/join overhead (~µs) rivals the descent time itself, so smaller
// batches run on the calling goroutine.
const DefaultMinPerWorker = 2048

// DefaultCheckpointStride is the number of work items a worker processes
// between looks at the batch's shared cancel flag.  One atomic load per
// this many rows is invisible in the profile, yet bounds how far a worker
// can run past a cancellation, a sibling's panic, or an expired deadline.
const DefaultCheckpointStride = 65536

// Options tunes the engine.  The zero value is the recommended default:
// GOMAXPROCS workers with the small-batch sequential fallback.
type Options struct {
	// Workers is the maximum number of concurrent workers; 0 picks
	// GOMAXPROCS, 1 forces the sequential path.
	Workers int
	// MinBatchPerWorker is the minimum work size per worker; a batch
	// smaller than 2× this runs sequentially, and larger batches use at
	// most total/MinBatchPerWorker workers.  0 means DefaultMinPerWorker,
	// or the Tuner's measured value when one is attached.
	MinBatchPerWorker int
	// Tuner, when non-nil and MinBatchPerWorker is 0, replaces the static
	// default with a per-probe-cost-derived span: the first large enough
	// Run times a calibration prefix on the calling goroutine, and every
	// later batch uses the derived MinBatchPerWorker.  One Tuner per index:
	// per-probe cost is a property of the structure being probed (hot-cache
	// probes need bigger spans than DRAM-missing ones).
	Tuner *Tuner
	// CheckpointStride is the number of rows a Run/RunCtx worker processes
	// between looks at the shared cancel flag (sibling panic, context
	// done); 0 means DefaultCheckpointStride.
	CheckpointStride int
}

// --- adaptive worker sizing --------------------------------------------------

// calibSpan is the probe prefix timed once to measure per-probe cost: large
// enough to average out timer granularity and warm-up, small enough that
// the one-shot sequential prefix is invisible in the first batch.
const calibSpan = 4096

// spanBudgetNs is the work (in ns) a worker's span should carry so the
// goroutine handoff (~µs wake + join) stays a few percent of it.
const spanBudgetNs = 50_000

// Calibration bounds: spans below minAdaptiveSpan thrash on handoff even
// for slow probes; spans above maxAdaptiveSpan stop helping balance.
const (
	minAdaptiveSpan = 256
	maxAdaptiveSpan = 65536
)

// MinForCost derives MinBatchPerWorker from a measured per-probe cost:
// enough probes that a worker's span is worth spanBudgetNs, clamped to
// [minAdaptiveSpan, maxAdaptiveSpan].
func MinForCost(perProbeNs float64) int {
	if perProbeNs <= 0 {
		return DefaultMinPerWorker
	}
	m := int(spanBudgetNs / perProbeNs)
	if m < minAdaptiveSpan {
		return minAdaptiveSpan
	}
	if m > maxAdaptiveSpan {
		return maxAdaptiveSpan
	}
	return m
}

// Tuner caches a measured per-probe cost and the MinBatchPerWorker derived
// from it.  All methods are safe for concurrent use; if two first batches
// race the calibration, the later measurement wins — both are valid
// samples of the same index.
//
// A calibration is not permanent: per-probe cost is a property of the
// structure's size and cache residency, so batch surfaces call Observe
// with the index's current size, and once the index has doubled since the
// measurement — or recalibrateEvery batches have used it — the cached span
// is invalidated and the next large Run re-measures.
type Tuner struct {
	min     atomic.Int64  // derived MinBatchPerWorker; 0 = not yet calibrated
	perNs   atomic.Uint64 // math.Float64bits of the measured per-probe ns
	size    atomic.Int64  // index size at calibration (0 = unrecorded)
	batches atomic.Int64  // batches served since calibration
}

// recalibrateEvery bounds a calibration's lifetime in batches even when
// the index never doubles: drift in machine state (frequency scaling,
// co-tenants) is re-measured about every this many batches.
const recalibrateEvery = 4096

// Note records a calibration measurement and returns the derived span.
func (t *Tuner) Note(probes int, elapsed time.Duration) int {
	per := float64(elapsed.Nanoseconds()) / float64(probes)
	m := MinForCost(per)
	t.perNs.Store(math.Float64bits(per))
	t.size.Store(0)
	t.batches.Store(0)
	t.min.Store(int64(m))
	noteCalibration(m, per)
	return m
}

// Observe notes one batch served over an index of n keys and invalidates a
// stale calibration: when the index has at least doubled since the span
// was measured (epoch-swap growth, delta folds), or recalibrateEvery
// batches have run on it, the cached span is cleared so the next large Run
// recalibrates.  Cost: two or three atomic ops; safe from any goroutine.
func (t *Tuner) Observe(n int) {
	if t.min.Load() == 0 || n <= 0 {
		return
	}
	sz := t.size.Load()
	if sz == 0 {
		// First batch after a calibration records the size it was measured
		// at (the calibration itself has no size in scope).
		if !t.size.CompareAndSwap(0, int64(n)) {
			sz = t.size.Load()
		} else {
			sz = int64(n)
		}
	}
	if int64(n) >= 2*sz || t.batches.Add(1) >= recalibrateEvery {
		t.min.Store(0)
		t.size.Store(0)
		t.batches.Store(0)
	}
}

// Min returns the calibrated MinBatchPerWorker, or 0 before calibration.
func (t *Tuner) Min() int { return int(t.min.Load()) }

// Calibration reports the derived span and the per-probe cost behind it;
// ok is false before any batch was large enough to calibrate.  This is the
// single implementation behind every index's BatchCalibration method.
func (t *Tuner) Calibration() (minPerWorker int, perProbeNs float64, ok bool) {
	if m := t.Min(); m != 0 {
		return m, t.PerProbeNs(), true
	}
	return 0, 0, false
}

// PerProbeNs returns the measured per-probe cost, or 0 before calibration.
func (t *Tuner) PerProbeNs() float64 { return math.Float64frombits(t.perNs.Load()) }

// Resolved fills MinBatchPerWorker from the tuner cache when the caller
// left it adaptive, and reports whether a calibration run is still needed.
func (o Options) Resolved() (Options, bool) {
	if o.Tuner == nil || o.MinBatchPerWorker != 0 {
		return o, false
	}
	if m := o.Tuner.Min(); m != 0 {
		o.MinBatchPerWorker = m
		return o, false
	}
	return o, true
}

// WithoutTuner strips the tuner: for cheap auxiliary passes (result
// scatter) that must neither calibrate the tuner with a non-probe cost nor
// inherit a probe-derived span.
func (o Options) WithoutTuner() Options {
	o.Tuner = nil
	return o
}

// WorkersFor returns the number of workers the options grant a batch of
// `total` work items: at least 1, at most Workers, scaled down so every
// worker gets MinBatchPerWorker items.
func (o Options) WorkersFor(total int) int {
	o, _ = o.Resolved()
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	min := o.MinBatchPerWorker
	if min <= 0 {
		min = DefaultMinPerWorker
	}
	if by := total / min; w > by {
		w = by
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Span returns the t-th of w contiguous spans partitioning [0, n): callers
// that stage per-span outputs (a buffer per worker) use it with Do so their
// split agrees with Run's.
func Span(n, w, t int) (lo, hi int) {
	return t * n / w, (t + 1) * n / w
}

// Run executes body over the half-open span [0, n) split into one contiguous
// sub-span per worker (the spans partition [0, n) exactly, in order).  With
// one worker — small n, Workers 1, or GOMAXPROCS 1 — body(0, n) runs on the
// calling goroutine with no scheduling at all.  body must be safe to call
// concurrently on disjoint spans.
//
// When opts carries an uncalibrated Tuner (and no explicit
// MinBatchPerWorker), the first large enough Run times a calibSpan prefix
// on the calling goroutine — real work, not a rehearsal — derives
// MinBatchPerWorker from the measured per-probe cost, and fans the
// remainder out under the derived value.  Every later Run resolves the
// cached value with no measurement.
//
// A panic in any worker is recovered, the other workers stop at their
// next checkpoint (see Options.CheckpointStride), and Run re-panics once
// on the caller with a *WorkerPanic holding the first panic's value and
// original stack.
func Run(n int, opts Options, body func(lo, hi int)) {
	runCtx(nil, nil, n, opts, body)
}

// RunCtx is Run bound to a context: workers consult a shared cancel flag
// (context done, or a sibling's panic) at their partition boundary and
// every CheckpointStride rows within it, so a cancelled or expired batch
// stops within one stride per worker instead of running the partition to
// completion.  The spans already processed are complete and in order;
// spans past the cancellation point may be untouched — callers treat a
// non-nil return (context.Canceled or context.DeadlineExceeded) as an
// abort and discard partial output.  A worker panic still wins over
// cancellation and re-panics as *WorkerPanic.
func RunCtx(ctx context.Context, n int, opts Options, body func(lo, hi int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return runCtx(ctx, ctx.Done(), n, opts, body)
}

func runCtx(ctx context.Context, done <-chan struct{}, n int, opts Options, body func(lo, hi int)) error {
	ctxErr := func() error {
		if done == nil {
			return nil
		}
		select {
		case <-done:
			return ctx.Err()
		default:
			return nil
		}
	}
	if err := ctxErr(); err != nil {
		return err
	}
	opts, calibrate := opts.Resolved()
	lo := 0
	if calibrate && n >= 2*calibSpan {
		start := time.Now()
		body(0, calibSpan)
		opts.MinBatchPerWorker = opts.Tuner.Note(calibSpan, time.Since(start))
		lo = calibSpan
	}
	total := n - lo
	w := opts.WorkersFor(total)
	stride := opts.CheckpointStride
	if stride <= 0 {
		stride = DefaultCheckpointStride
	}
	var trap panicTrap
	// halted is the shared cancel flag every worker consults at chunk
	// boundaries: a sibling's panic or the context ending stops the batch.
	halted := func() bool {
		if trap.tripped.Load() {
			return true
		}
		if done != nil {
			select {
			case <-done:
				return true
			default:
			}
		}
		return false
	}
	// runSpan walks one worker's span in checkpoint-stride chunks.  The
	// first chunk always runs (an admitted worker makes progress), later
	// chunks are skipped once the batch is halted.
	runSpan := func(slo, shi int) {
		for c := slo; c < shi; {
			if c > slo && halted() {
				return
			}
			e := c + stride
			if e > shi {
				e = shi
			}
			body(c, e)
			c = e
		}
	}
	if w == 1 {
		if total > 0 {
			// Sequential path: body runs on the calling goroutine and a
			// panic propagates unwrapped, stack intact, as before.
			runSpan(lo, n)
		}
		return ctxErr()
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	spawn := telemetry.Now()
	for i := 1; i < w; i++ {
		slo, shi := Span(total, w, i)
		go func() {
			defer wg.Done()
			histWaitNs.Since(spawn)
			wstart := telemetry.Now()
			trap.protect(func() { runSpan(lo+slo, lo+shi) })
			histRunNs.Since(wstart)
		}()
	}
	wstart := telemetry.Now() // bracket worker 0 like the spawned workers
	trap.protect(func() { runSpan(lo, lo+total/w) })
	histRunNs.Since(wstart)
	wg.Wait()
	trap.rethrow()
	return ctxErr()
}

// Do executes body(task) for every task in [0, tasks), distributing tasks to
// workers through an atomic counter so uneven task sizes balance themselves
// (a worker that drew a small task immediately draws the next).  total is
// the combined work size across tasks and drives the worker count and the
// sequential fallback; body must be safe to call concurrently for distinct
// tasks.
//
// A panic in any task is recovered, no further tasks are handed out
// (tasks already running finish), and Do re-panics once on the caller
// with a *WorkerPanic holding the first panic's value and original
// stack.
func Do(tasks int, total int, opts Options, body func(task int)) {
	doCtx(nil, nil, tasks, total, opts, body)
}

// DoCtx is Do bound to a context: workers stop drawing tasks once the
// context is done (the task boundary is the checkpoint — tasks are the
// irregular-work analogue of RunCtx's strides; a long task should bound
// itself with a governor.Checkpoint).  Tasks already drawn finish; tasks
// never drawn are skipped, and DoCtx returns context.Canceled or
// context.DeadlineExceeded so the caller discards partial output.  A
// worker panic still wins and re-panics as *WorkerPanic.
func DoCtx(ctx context.Context, tasks int, total int, opts Options, body func(task int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return doCtx(ctx, ctx.Done(), tasks, total, opts, body)
}

func doCtx(ctx context.Context, done <-chan struct{}, tasks int, total int, opts Options, body func(task int)) error {
	ctxErr := func() error {
		if done == nil {
			return nil
		}
		select {
		case <-done:
			return ctx.Err()
		default:
			return nil
		}
	}
	if tasks == 0 {
		return ctxErr()
	}
	if err := ctxErr(); err != nil {
		return err
	}
	// Irregular task lists calibrate nowhere (no probe prefix to time), but
	// they resolve a Tuner another surface already calibrated.
	opts, _ = opts.Resolved()
	w := opts.WorkersFor(total)
	if w > tasks {
		w = tasks
	}
	if w == 1 {
		for t := 0; t < tasks; t++ {
			if t > 0 {
				if err := ctxErr(); err != nil {
					return err
				}
			}
			body(t)
		}
		return ctxErr()
	}
	var trap panicTrap
	var next atomic.Int64
	work := func() {
		// A sibling's panic or the context ending cancels the undrawn tasks.
		for !trap.tripped.Load() {
			if done != nil {
				select {
				case <-done:
					return
				default:
				}
			}
			t := int(next.Add(1)) - 1
			if t >= tasks {
				return
			}
			trap.protect(func() { body(t) })
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	spawn := telemetry.Now()
	for i := 1; i < w; i++ {
		go func() {
			defer wg.Done()
			histWaitNs.Since(spawn)
			wstart := telemetry.Now()
			work()
			histRunNs.Since(wstart)
		}()
	}
	wstart := telemetry.Now() // bracket worker 0 like the spawned workers
	work()
	histRunNs.Since(wstart)
	wg.Wait()
	trap.rethrow()
	return ctxErr()
}
