// Package parallel is the worker-pool scheduler behind the batched execution
// engine: it splits one large probe batch across GOMAXPROCS-level workers so
// that several lockstep descents run concurrently, multiplying the
// memory-level parallelism each kernel already extracts within a core by the
// number of cores.  The paper's arithmetic traversal makes this composition
// clean — workers share nothing but the immutable directory and disjoint
// spans of the probe/result arrays, so no synchronisation is needed beyond
// the final join.
//
// The scheduler is deliberately small: contiguous spans for flat batches
// (Run), an atomic work counter for irregular task lists such as per-shard
// probe runs (Do), and a sequential fallback whenever the batch is too small
// to amortise goroutine handoff.  Nothing here allocates per probe; the only
// per-batch allocations are the worker goroutines themselves.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultMinPerWorker is the smallest work size (in probes) worth handing to
// an extra worker.  Below roughly this many probes per core the goroutine
// wake/join overhead (~µs) rivals the descent time itself, so smaller
// batches run on the calling goroutine.
const DefaultMinPerWorker = 2048

// Options tunes the engine.  The zero value is the recommended default:
// GOMAXPROCS workers with the small-batch sequential fallback.
type Options struct {
	// Workers is the maximum number of concurrent workers; 0 picks
	// GOMAXPROCS, 1 forces the sequential path.
	Workers int
	// MinBatchPerWorker is the minimum work size per worker; a batch
	// smaller than 2× this runs sequentially, and larger batches use at
	// most total/MinBatchPerWorker workers.  0 means DefaultMinPerWorker.
	MinBatchPerWorker int
}

// WorkersFor returns the number of workers the options grant a batch of
// `total` work items: at least 1, at most Workers, scaled down so every
// worker gets MinBatchPerWorker items.
func (o Options) WorkersFor(total int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	min := o.MinBatchPerWorker
	if min <= 0 {
		min = DefaultMinPerWorker
	}
	if by := total / min; w > by {
		w = by
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Span returns the t-th of w contiguous spans partitioning [0, n): callers
// that stage per-span outputs (a buffer per worker) use it with Do so their
// split agrees with Run's.
func Span(n, w, t int) (lo, hi int) {
	return t * n / w, (t + 1) * n / w
}

// Run executes body over the half-open span [0, n) split into one contiguous
// sub-span per worker (the spans partition [0, n) exactly, in order).  With
// one worker — small n, Workers 1, or GOMAXPROCS 1 — body(0, n) runs on the
// calling goroutine with no scheduling at all.  body must be safe to call
// concurrently on disjoint spans.
func Run(n int, opts Options, body func(lo, hi int)) {
	w := opts.WorkersFor(n)
	if w == 1 {
		if n > 0 {
			body(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for i := 1; i < w; i++ {
		lo, hi := Span(n, w, i)
		go func() {
			defer wg.Done()
			body(lo, hi)
		}()
	}
	body(0, n/w) // the caller is worker 0
	wg.Wait()
}

// Do executes body(task) for every task in [0, tasks), distributing tasks to
// workers through an atomic counter so uneven task sizes balance themselves
// (a worker that drew a small task immediately draws the next).  total is
// the combined work size across tasks and drives the worker count and the
// sequential fallback; body must be safe to call concurrently for distinct
// tasks.
func Do(tasks int, total int, opts Options, body func(task int)) {
	if tasks == 0 {
		return
	}
	w := opts.WorkersFor(total)
	if w > tasks {
		w = tasks
	}
	if w == 1 {
		for t := 0; t < tasks; t++ {
			body(t)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			t := int(next.Add(1)) - 1
			if t >= tasks {
				return
			}
			body(t)
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for i := 1; i < w; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}
