package crashtest

import (
	"testing"
)

// stride picks how densely the crash matrix samples the op schedule:
// every op normally, every 5th under -short.
func stride(t *testing.T) int {
	if testing.Short() {
		return 5
	}
	return 1
}

func TestShardedCrashMatrix(t *testing.T) {
	for _, pol := range Policies() {
		pol := pol
		t.Run(pol.Mode.String(), func(t *testing.T) {
			t.Parallel()
			points, err := Run(newShardScript(), pol, 42, stride(t))
			if err != nil {
				t.Fatal(err)
			}
			if points == 0 {
				t.Fatal("no crash points exercised")
			}
			t.Logf("verified %d crash points", points)
		})
	}
}

func TestTableCrashMatrix(t *testing.T) {
	for _, pol := range Policies() {
		pol := pol
		t.Run(pol.Mode.String(), func(t *testing.T) {
			t.Parallel()
			points, err := Run(newTableScript(), pol, 99, stride(t))
			if err != nil {
				t.Fatal(err)
			}
			if points == 0 {
				t.Fatal("no crash points exercised")
			}
			t.Logf("verified %d crash points", points)
		})
	}
}
