package crashtest

import (
	"fmt"
	"sort"

	"cssidx"
	"cssidx/internal/failfs"
	"cssidx/internal/mmdb"
	"cssidx/internal/wal"
)

// --- sharded-index workload --------------------------------------------------

const (
	opInsert = iota
	opDelete
	opCheckpoint
)

type shardOp struct {
	kind int
	keys []uint32
}

// shardScript drives a DurableSharded: interleaved insert and delete
// batches with a mid-stream checkpoint, so crash points land inside
// appends, syncs, the snapshot save, the log truncation, and the
// directory commits around them.
type shardScript struct {
	ops []shardOp
}

func newShardScript() *shardScript {
	return &shardScript{ops: []shardOp{
		{opInsert, []uint32{10, 30, 20, 40, 50}},
		{opInsert, []uint32{15, 25, 35}},
		{opDelete, []uint32{30, 99}}, // 99 absent: multiset no-op
		{opInsert, []uint32{30, 30}}, // duplicate keys
		{opCheckpoint, nil},
		{opInsert, []uint32{5, 45}},
		{opDelete, []uint32{10}},
		{opInsert, []uint32{60}},
	}}
}

func shardOpts() cssidx.ShardedOptions[uint32] {
	return cssidx.ShardedOptions[uint32]{Shards: 2}
}

func (s *shardScript) play(fsys *failfs.Mem, pol wal.Policy) (outcome, error) {
	var out outcome
	x, err := cssidx.OpenWAL(fsys, "db", "idx", shardOpts(), pol)
	if err != nil {
		return out, err
	}
	defer x.Close() // post-crash the log close fails; the rebuilder still stops
	for _, op := range s.ops {
		switch op.kind {
		case opInsert, opDelete:
			out.inFlight = true
			if op.kind == opInsert {
				err = x.Insert(op.keys...)
			} else {
				err = x.Delete(op.keys...)
			}
			if err != nil {
				return out, err
			}
			out.inFlight = false
			out.acked++
			if d := x.SyncedSeq(); d > out.durable {
				out.durable = d
			}
		case opCheckpoint:
			if err := x.Checkpoint(); err != nil {
				return out, err
			}
			// A completed checkpoint makes everything absorbed durable,
			// whatever the policy.
			if d := x.LastSeq(); d > out.durable {
				out.durable = d
			}
		}
	}
	if err := x.Close(); err != nil {
		return out, err
	}
	// Clean close syncs the log: every acked batch is now promised.
	out.durable = out.acked
	return out, nil
}

// oracleKeys replays the first k mutation batches into a plain multiset
// and returns its sorted contents.
func (s *shardScript) oracleKeys(k uint64) []uint32 {
	count := map[uint32]int{}
	var applied uint64
	for _, op := range s.ops {
		if op.kind == opCheckpoint {
			continue
		}
		if applied == k {
			break
		}
		applied++
		for _, key := range op.keys {
			if op.kind == opInsert {
				count[key]++
			} else if count[key] > 0 {
				count[key]--
			}
		}
	}
	var keys []uint32
	for key, n := range count {
		for i := 0; i < n; i++ {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func (s *shardScript) verify(fsys *failfs.Mem, pol wal.Policy, out outcome) error {
	x, err := cssidx.OpenWAL(fsys, "db", "idx", shardOpts(), pol)
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	defer x.Close()
	k := x.LastSeq()
	if err := checkPrefix(k, out); err != nil {
		return err
	}

	want := s.oracleKeys(k)
	oracle := cssidx.NewSharded(want, shardOpts())
	defer oracle.Close()

	if x.Len() != len(want) {
		return fmt.Errorf("recovered %d keys, oracle has %d", x.Len(), len(want))
	}
	// Full ordered scan: the recovered sorted view must be the oracle's.
	i := 0
	var scanErr error
	x.Ascend(0, ^uint32(0), func(pos int, key uint32) bool {
		if i >= len(want) || key != want[i] || pos != i {
			scanErr = fmt.Errorf("scan[%d] = (pos %d, key %d), want (pos %d, key %d)", i, pos, key, i, want[i])
			return false
		}
		i++
		return true
	})
	if scanErr != nil {
		return scanErr
	}

	// Point, lower-bound, equal-range and batch probes, bit-identical.
	probes := []uint32{0, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 60, 99, 1 << 31}
	for _, p := range probes {
		if g, w := x.Search(p), oracle.Search(p); g != w {
			return fmt.Errorf("Search(%d) = %d, oracle %d", p, g, w)
		}
		if g, w := x.LowerBound(p), oracle.LowerBound(p); g != w {
			return fmt.Errorf("LowerBound(%d) = %d, oracle %d", p, g, w)
		}
		gf, gl := x.EqualRange(p)
		wf, wl := oracle.EqualRange(p)
		if gf != wf || gl != wl {
			return fmt.Errorf("EqualRange(%d) = [%d,%d), oracle [%d,%d)", p, gf, gl, wf, wl)
		}
	}
	got := make([]int32, len(probes))
	wantPos := make([]int32, len(probes))
	x.SearchBatch(probes, got)
	oracle.SearchBatch(probes, wantPos)
	for i := range probes {
		if got[i] != wantPos[i] {
			return fmt.Errorf("SearchBatch[%d]=%d, oracle %d", i, got[i], wantPos[i])
		}
	}

	// The recovered store must still accept writes.
	if err := x.Insert(777); err != nil {
		return fmt.Errorf("post-recovery insert: %w", err)
	}
	x.ShardedIndex.Sync()
	if x.Search(777) < 0 {
		return fmt.Errorf("post-recovery insert not visible")
	}
	return nil
}

// --- mmdb table workload -----------------------------------------------------

// tableScript drives a DurableTable: a schema-defining first batch, more
// appends (sized to cross the delta/fold thresholds both ways), a
// mid-stream checkpoint, then verification across every read surface —
// column values, point/range/IN selects, an aggregate count and a join.
type tableScript struct {
	batches []map[string][]uint32 // nil entry = checkpoint
}

func newTableScript() *tableScript {
	return &tableScript{batches: []map[string][]uint32{
		{"k": {3, 1, 4, 1, 5}, "v": {10, 20, 30, 40, 50}},
		{"k": {9, 2, 6}, "v": {60, 70, 80}},
		nil, // checkpoint
		{"k": {5, 3}, "v": {90, 100}},
		{"k": {8}, "v": {110}},
	}}
}

func (s *tableScript) play(fsys *failfs.Mem, pol wal.Policy) (outcome, error) {
	var out outcome
	d, err := mmdb.OpenDurable(fsys, "db", "t", pol)
	if err != nil {
		return out, err
	}
	for _, batch := range s.batches {
		if batch == nil {
			if err := d.Checkpoint(); err != nil {
				return out, err
			}
			if f := d.LastSeq(); f > out.durable {
				out.durable = f
			}
			continue
		}
		out.inFlight = true
		if err := d.AppendRows(batch); err != nil {
			return out, err
		}
		out.inFlight = false
		out.acked++
		if f := d.SyncedSeq(); f > out.durable {
			out.durable = f
		}
	}
	if err := d.Close(); err != nil {
		return out, err
	}
	out.durable = out.acked
	return out, nil
}

// oracleRows replays the first k batches into plain column slices.
func (s *tableScript) oracleRows(k uint64) (ks, vs []uint32) {
	var applied uint64
	for _, batch := range s.batches {
		if batch == nil {
			continue
		}
		if applied == k {
			break
		}
		applied++
		ks = append(ks, batch["k"]...)
		vs = append(vs, batch["v"]...)
	}
	return ks, vs
}

func (s *tableScript) verify(fsys *failfs.Mem, pol wal.Policy, out outcome) error {
	d, err := mmdb.OpenDurable(fsys, "db", "t", pol)
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	defer d.Close()
	k := d.LastSeq()
	if err := checkPrefix(k, out); err != nil {
		return err
	}
	wantK, wantV := s.oracleRows(k)

	if d.Rows() != len(wantK) {
		return fmt.Errorf("recovered %d rows, oracle has %d", d.Rows(), len(wantK))
	}
	if k == 0 {
		// Nothing recovered; the store must still accept a schema batch.
		if err := d.AppendRows(map[string][]uint32{"k": {1}, "v": {2}}); err != nil {
			return fmt.Errorf("post-recovery schema append: %w", err)
		}
		return nil
	}
	for col, want := range map[string][]uint32{"k": wantK, "v": wantV} {
		c, ok := d.Column(col)
		if !ok {
			return fmt.Errorf("column %s missing", col)
		}
		for i, w := range want {
			if g := c.Value(i); g != w {
				return fmt.Errorf("%s[%d] = %d, oracle %d", col, i, g, w)
			}
		}
	}

	// Build the same index on both tables and compare every surface.
	oracle := mmdb.NewTable("t")
	if err := oracle.AddColumn("k", wantK); err != nil {
		return err
	}
	if err := oracle.AddColumn("v", wantV); err != nil {
		return err
	}
	gix, err := d.BuildIndex("k", cssidx.KindFullCSS, cssidx.Options{})
	if err != nil {
		return err
	}
	wix, err := oracle.BuildIndex("k", cssidx.KindFullCSS, cssidx.Options{})
	if err != nil {
		return err
	}
	for probe := uint32(0); probe <= 10; probe++ { // point
		if err := equalRIDs(
			fmt.Sprintf("SelectEqual(%d)", probe),
			gix.SelectEqual(probe), wix.SelectEqual(probe)); err != nil {
			return err
		}
	}
	for _, r := range [][2]uint32{{0, 4}, {2, 6}, {5, 5}, {7, 100}} { // range
		g, err := gix.SelectRange(r[0], r[1])
		if err != nil {
			return err
		}
		w, err := wix.SelectRange(r[0], r[1])
		if err != nil {
			return err
		}
		if err := equalRIDs(fmt.Sprintf("SelectRange(%d,%d)", r[0], r[1]), g, w); err != nil {
			return err
		}
		gc, err := gix.CountRange(r[0], r[1]) // aggregate
		if err != nil {
			return err
		}
		wc, err := wix.CountRange(r[0], r[1])
		if err != nil {
			return err
		}
		if gc != wc {
			return fmt.Errorf("CountRange(%d,%d) = %d, oracle %d", r[0], r[1], gc, wc)
		}
	}
	in := []uint32{1, 3, 5, 9, 42} // IN
	if err := equalRIDs("SelectIn", gix.SelectIn(in), wix.SelectIn(in)); err != nil {
		return err
	}
	// Join the recovered table against the oracle's index and vice
	// versa: pair counts must agree with the oracle⋈oracle join.
	gj, err := mmdb.Join(d.Table, "k", wix, nil)
	if err != nil {
		return err
	}
	wj, err := mmdb.Join(oracle, "k", gix, nil)
	if err != nil {
		return err
	}
	if gj != wj {
		return fmt.Errorf("join pair count %d, oracle %d", gj, wj)
	}

	// The recovered table must still accept writes.
	next := map[string][]uint32{"k": {123}, "v": {456}}
	if err := d.AppendRows(next); err != nil {
		return fmt.Errorf("post-recovery append: %w", err)
	}
	c, _ := d.Column("k")
	if c.Value(d.Rows()-1) != 123 {
		return fmt.Errorf("post-recovery append not visible")
	}
	return nil
}

func equalRIDs(what string, got, want []uint32) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: %d rids, oracle %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("%s: rid[%d] = %d, oracle %d", what, i, got[i], want[i])
		}
	}
	return nil
}
