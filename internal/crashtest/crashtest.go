// Package crashtest proves the durability subsystem's crash guarantee by
// brute force: for a matrix of workloads × fsync policies it simulates a
// whole-process crash at EVERY filesystem operation the workload
// performs, reopens the store from the surviving bytes, and verifies the
// recovered state against an in-memory oracle.
//
// The verified invariants, at every crash point:
//
//   - every batch the durability policy promised (synced to the log or
//     covered by a completed checkpoint) is present;
//   - the recovered state is an exact prefix of the acknowledged batch
//     sequence — no partial batch, no reordering, no resurrection of
//     unacknowledged data beyond the single in-flight record;
//   - every query surface (point, range, IN, batch probes, join,
//     aggregate) answers bit-identically to a fresh oracle built from
//     that same prefix;
//   - the reopened store accepts and serves new writes.
//
// A workload that passes under the failfs crash model — nothing durable
// until synced, torn unsynced tails — recovers on any real filesystem
// that honors fsync.
package crashtest

import (
	"errors"
	"fmt"

	"cssidx/internal/failfs"
	"cssidx/internal/wal"
)

// Policies is the fsync-policy axis of the matrix.  GroupBytes stands in
// for GroupCommit: the same ack-before-sync window, but byte-triggered,
// so the filesystem op schedule is deterministic (no timer goroutine).
func Policies() []wal.Policy {
	return []wal.Policy{wal.Always(), wal.GroupBytes(256), wal.None()}
}

// outcome is what a workload run reports for verification: batches are
// numbered 1..acked in log-sequence order.
type outcome struct {
	acked   uint64 // mutation batches acknowledged (== highest acked seq)
	durable uint64 // highest seq the store promised durable at any point
	// inFlight marks a crash in the middle of logging batch acked+1: it
	// was never acknowledged, but its record may have reached the log
	// whole, so recovery may legitimately include it.
	inFlight bool
}

// checkPrefix applies the prefix rule to the recovered batch count.
func checkPrefix(lastSeq uint64, out outcome) error {
	if lastSeq < out.durable {
		return fmt.Errorf("recovered through seq %d, durability floor is %d", lastSeq, out.durable)
	}
	max := out.acked
	if out.inFlight {
		max++
	}
	if lastSeq > max {
		return fmt.Errorf("recovered through seq %d, only %d batches were even started", lastSeq, max)
	}
	return nil
}

// script is one workload of the matrix; see shardScript and tableScript.
type script interface {
	// play runs the workload to completion or to the crash.
	play(fsys *failfs.Mem, pol wal.Policy) (outcome, error)
	// verify reopens the store after the crash and checks every
	// invariant against the acknowledged prefix.
	verify(fsys *failfs.Mem, pol wal.Policy, out outcome) error
}

// Run exhaustively crash-tests one script under one policy: a rehearsal
// run with no faults enumerates the op schedule, then the script is
// replayed with a crash at every stride-th filesystem op (stride 1 =
// every op), reopened and verified each time.  Returns the number of
// crash points exercised.
func Run(s script, pol wal.Policy, seed int64, stride int) (int, error) {
	// Rehearsal: no faults; counts the ops and checks the happy path.
	fsys := failfs.NewMem(seed)
	out, err := s.play(fsys, pol)
	if err != nil {
		return 0, fmt.Errorf("rehearsal: %w", err)
	}
	if err := s.verify(fsys, pol, out); err != nil {
		return 0, fmt.Errorf("rehearsal verify: %w", err)
	}
	total := fsys.OpCount()
	trace := fsys.Trace()

	points := 0
	for n := 0; n < total; n += stride {
		fsys := failfs.NewMem(seed + int64(n)*7919)
		fsys.SetCrashAt(n)
		out, err := s.play(fsys, pol)
		if err != nil && !errors.Is(err, failfs.ErrCrashed) {
			return points, fmt.Errorf("crash@%d (%s): workload failed with a non-crash error: %w", n, trace[n], err)
		}
		if err == nil && fsys.Downed() {
			return points, fmt.Errorf("crash@%d (%s): workload swallowed the crash", n, trace[n])
		}
		fsys.Crash()
		if err := s.verify(fsys, pol, out); err != nil {
			return points, fmt.Errorf("crash@%d (%s): %w", n, trace[n], err)
		}
		points++
	}
	return points, nil
}
