package bench

// runBatch is the batched-probing experiment (an extension, not a paper
// artifact): the §2.2 observation that decision-support probes arrive in
// bulk, measured.  It compares the scalar probe loop against the lockstep
// batch descent at batch sizes 1/8/64/512 on uniform and Zipf-skewed probe
// streams, then repeats the comparison for the sharded serving layer (both
// batch schedules) and for the indexed nested-loop join end to end.
//
// The shape target: batch size 1 costs slightly more than scalar (the batch
// plumbing with none of the overlap), and from batch size ≥ 64 the lockstep
// descent wins on both distributions — the out-of-order core overlaps the
// group's cache misses where the scalar loop serialises them.  The sorted
// schedule pays off most on skewed batches, which touch each directory node
// once after sorting.

import (
	"fmt"
	"io"

	"cssidx"
	"cssidx/internal/mmdb"
	"cssidx/internal/workload"
)

// batchSizes are the probe group sizes the experiment sweeps.
var batchSizes = []int{1, 8, 64, 512}

// measureScalarLB times the scalar lower-bound loop, min over repeats.
func measureScalarLB(idx cssidx.OrderedIndex, probes []uint32, repeats int) float64 {
	return Measure(func() {
		s := 0
		for _, p := range probes {
			s += idx.LowerBound(p)
		}
		Sink += s
	}, repeats)
}

// lowerBounder is any batch surface the experiment times (single trees,
// sorted schedules, sharded indexes).
type lowerBounder interface {
	LowerBoundBatch(probes []uint32, out []int32)
}

// measureBatchedLB times the whole probe stream through LowerBoundBatch in
// chunks of bs, min over repeats.
func measureBatchedLB(idx lowerBounder, probes []uint32, bs, repeats int) float64 {
	out := make([]int32, bs)
	return Measure(func() {
		s := int32(0)
		for base := 0; base < len(probes); base += bs {
			end := base + bs
			if end > len(probes) {
				end = len(probes)
			}
			chunk := probes[base:end]
			idx.LowerBoundBatch(chunk, out[:len(chunk)])
			s += out[0]
		}
		Sink += int(s)
	}, repeats)
}

func runBatch(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	g := workload.New(cfg.Seed)
	// The paper's primary array size (§6.1): large enough that directories
	// and leaves live beyond the caches, which is the regime batching is for.
	n := 10_000_000
	if cfg.Quick {
		n = 100_000
	}
	keys := g.SortedUniform(n)
	level := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)
	batched := cssidx.AsBatchOrdered(level)

	// The Zipf stream samples ranks over a *shuffled* copy of the keys: hot
	// keys scatter across the key domain (hot products are not the
	// alphabetically-first products), so hot probes exercise distinct
	// root-to-leaf paths instead of one cache-resident corner of the tree.
	dists := []struct {
		name   string
		probes []uint32
	}{
		{"uniform", g.Lookups(keys, cfg.Lookups)},
		{"zipf s=1.2", g.ZipfLookups(g.Shuffled(keys), cfg.Lookups, 1.2)},
	}

	fmt.Fprintf(w, "batched probing: level CSS-tree over n=%d keys, %d probes per cell\n", n, cfg.Lookups)
	fmt.Fprintf(w, "sorted = sort-probes-first schedule (radix sort + dedup per batch)\n\n")
	t := newTable(w)
	t.row("workload", "schedule", "Mprobes/s", "vs scalar")
	recordCell := func(workload, schedule, surface string, bs int, sec float64, probeCount int) {
		cfg.record(Record{
			Experiment: "batch",
			Params: map[string]any{
				"workload": workload, "schedule": schedule, "surface": surface,
				"batch": bs, "n": n,
			},
			Metric: "throughput", Value: float64(probeCount) / sec / 1e6, Unit: "Mprobes/s",
		})
	}
	for _, d := range dists {
		scalar := measureScalarLB(level, d.probes, cfg.Repeats)
		mps := func(sec float64) string { return fmt.Sprintf("%.2f", float64(len(d.probes))/sec/1e6) }
		t.row(d.name, "scalar", mps(scalar), "1.00x")
		recordCell(d.name, "scalar", "levelcss", 1, scalar, len(d.probes))
		for _, bs := range batchSizes {
			sec := measureBatchedLB(batched, d.probes, bs, cfg.Repeats)
			t.row(d.name, fmt.Sprintf("batch %d", bs), mps(sec), fmt.Sprintf("%.2fx", scalar/sec))
			recordCell(d.name, "input-order", "levelcss", bs, sec, len(d.probes))
		}
		for _, bs := range []int{64, 512} {
			sec := measureBatchedLB(cssidx.NewSortedBatch(level), d.probes, bs, cfg.Repeats)
			t.row(d.name, fmt.Sprintf("batch %d sorted", bs), mps(sec), fmt.Sprintf("%.2fx", scalar/sec))
			recordCell(d.name, "sorted", "levelcss", bs, sec, len(d.probes))
		}
	}
	t.flush()

	fmt.Fprintf(w, "\nsharded serving (4 shards), batch 512, input-order vs sorted schedule\n\n")
	ts := newTable(w)
	ts.row("workload", "schedule", "Mprobes/s", "vs scalar")
	for _, d := range dists {
		for _, sorted := range []bool{false, true} {
			idx := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{Shards: 4, SortBatches: sorted})
			scalarSec := Measure(func() {
				s := 0
				for _, p := range d.probes {
					s += idx.LowerBound(p)
				}
				Sink += s
			}, cfg.Repeats)
			batchSec := measureBatchedLB(idx, d.probes, 512, cfg.Repeats)
			sched := "batch 512"
			if sorted {
				sched = "batch 512 sorted"
			}
			ts.row(d.name, sched,
				fmt.Sprintf("%.2f", float64(len(d.probes))/batchSec/1e6),
				fmt.Sprintf("%.2fx", scalarSec/batchSec))
			schedule := "input-order"
			if sorted {
				schedule = "sorted"
			}
			recordCell(d.name, schedule, "sharded", 512, batchSec, len(d.probes))
			idx.Close()
		}
	}
	ts.flush()

	// End-to-end: the §2.2 indexed nested-loop join, scalar vs batched probes.
	joinInner := n / 10
	joinOuter := cfg.Lookups
	innerKeys := g.SortedUniform(joinInner)
	outerVals := g.Lookups(innerKeys, joinOuter)
	inner := mmdb.NewTable("inner")
	if err := inner.AddColumn("k", innerKeys); err != nil {
		return err
	}
	outer := mmdb.NewTable("outer")
	if err := outer.AddColumn("k", outerVals); err != nil {
		return err
	}
	ix, err := inner.BuildIndex("k", cssidx.KindLevelCSS, cssidx.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nindexed nested-loop join: %d outer rows probing %d inner keys\n\n", joinOuter, joinInner)
	tj := newTable(w)
	tj.row("schedule", "Mprobes/s", "vs scalar")
	var scalarJoin float64
	for _, bs := range []int{1, 64, 512} {
		sec := Measure(func() {
			c, err := mmdb.JoinBatch(outer, "k", ix, bs, nil)
			if err != nil {
				panic(err)
			}
			Sink += c
		}, cfg.Repeats)
		if bs == 1 {
			scalarJoin = sec
			tj.row("scalar (batch 1)", fmt.Sprintf("%.2f", float64(joinOuter)/sec/1e6), "1.00x")
			recordCell("uniform", "scalar", "join", bs, sec, joinOuter)
			continue
		}
		tj.row(fmt.Sprintf("batch %d", bs),
			fmt.Sprintf("%.2f", float64(joinOuter)/sec/1e6),
			fmt.Sprintf("%.2fx", scalarJoin/sec))
		recordCell("uniform", "input-order", "join", bs, sec, joinOuter)
	}
	tj.flush()
	fmt.Fprintln(w, "\nshape target: on uniform probes the input-order lockstep wins from batch")
	fmt.Fprintln(w, "size ≥ 8 (overlapped independent misses); on skewed probes the scalar loop's")
	fmt.Fprintln(w, "branch predictor already overlaps the hot paths, and the batch needs the")
	fmt.Fprintln(w, "sorted schedule — radix sort groups duplicates so each distinct key descends")
	fmt.Fprintln(w, "once — to win at batch 512; the batched join beats the scalar join throughout")
	return nil
}
