package bench

// runShard is the sharded-serving throughput experiment (an extension, not
// a paper artifact): it measures aggregate queries/sec from GOMAXPROCS
// reader goroutines against a ShardedIndex, varying the shard count (1, 4,
// 16) and the lookup distribution (uniform vs Zipf-skewed), both in steady
// state and while a writer continuously pushes batches through the
// background epoch-swap rebuilder.  This is the §2.3 rebuild cycle under
// concurrent load: the number the ROADMAP's "heavy traffic" target cares
// about is how little the rebuild churn costs the readers.
//
// Skewed runs pass the Zipf sample to the skew-aware splitter, so the
// sharding adapts: hot ranges get more, smaller shards whose rebuilds are
// cheaper and whose trees are shallower.

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cssidx"
	"cssidx/internal/workload"
)

// shardServeResult is one measured serving configuration.
type shardServeResult struct {
	qps   float64
	swaps uint64
}

// serveSharded runs `readers` goroutines over probes for dur, optionally
// with a concurrent writer churning batches of churnBatch keys (insert,
// sync, delete, sync — the index size stays stable).  Returns aggregate
// lookups/sec and the number of epoch-swaps published during the window.
func serveSharded(idx *cssidx.ShardedIndex[uint32], probes []uint32, readers int, dur time.Duration, churnBatch int, g *workload.Gen) shardServeResult {
	epoch0 := uint64(0)
	for _, e := range idx.Epochs() {
		epoch0 += e
	}
	stop := make(chan struct{})
	var ops atomic.Int64
	var sink atomic.Int64 // defeats dead-code elimination of the hot loop
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			i := off
			local, s := int64(0), 0
			for {
				select {
				case <-stop:
					ops.Add(local)
					sink.Add(int64(s))
					return
				default:
				}
				// An inner burst keeps the stop-poll off the hot path.
				for b := 0; b < 512; b++ {
					s += idx.Search(probes[i%len(probes)])
					i++
				}
				local += 512
			}
		}(r * 1031)
	}
	var churn []uint32
	if churnBatch > 0 {
		churn = g.Lookups(probes, churnBatch)
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Paced like a real ingest loop (batch, publish, breathe) rather
			// than a tight loop, so on small CPU counts the scheduler doesn't
			// turn "concurrent rebuilds" into "no reader timeslices".
			tick := time.NewTicker(dur / 50)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				idx.Insert(churn...)
				idx.Sync()
				idx.Delete(churn...)
				idx.Sync()
			}
		}()
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	Sink += int(sink.Load())
	epoch1 := uint64(0)
	for _, e := range idx.Epochs() {
		epoch1 += e
	}
	return shardServeResult{
		qps:   float64(ops.Load()) / dur.Seconds(),
		swaps: epoch1 - epoch0,
	}
}

func runShard(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	g := workload.New(cfg.Seed)
	n := 2_000_000
	dur := 400 * time.Millisecond
	if cfg.Quick {
		n = 100_000
		dur = 100 * time.Millisecond
	}
	keys := g.SortedUniform(n)
	readers := runtime.GOMAXPROCS(0)
	if readers < 2 {
		readers = 2
	}

	dists := []struct {
		name   string
		probes []uint32
		skewed bool
	}{
		{"uniform", g.Lookups(keys, cfg.Lookups), false},
		{"zipf s=1.3", g.ZipfLookups(keys, cfg.Lookups, 1.3), true},
	}

	fmt.Fprintf(w, "sharded serving throughput: n=%d keys, %d reader goroutines, %v per cell\n", n, readers, dur)
	fmt.Fprintf(w, "churn = writer loop of %d-key insert+delete batches through epoch-swap rebuilds\n\n", 1000)
	t := newTable(w)
	t.row("workload", "shards", "steady qps", "qps during rebuilds", "swaps", "retained")
	for _, d := range dists {
		for _, ns := range []int{1, 4, 16} {
			opts := cssidx.ShardedOptions[uint32]{Shards: ns}
			if d.skewed {
				opts.SkewSample = d.probes
			}
			idx := cssidx.NewSharded(keys, opts)
			steady := serveSharded(idx, d.probes, readers, dur, 0, g)
			churn := serveSharded(idx, d.probes, readers, dur, 1000, g)
			retained := 0.0
			if steady.qps > 0 {
				retained = 100 * churn.qps / steady.qps
			}
			t.row(d.name, fmt.Sprintf("%d", idx.ShardCount()),
				fmt.Sprintf("%.2fM", steady.qps/1e6),
				fmt.Sprintf("%.2fM", churn.qps/1e6),
				fmt.Sprintf("%d", churn.swaps),
				fmt.Sprintf("%.0f%%", retained))
			for _, cell := range []struct {
				phase string
				res   shardServeResult
			}{{"steady", steady}, {"churn", churn}} {
				cfg.record(Record{
					Experiment: "shard",
					Params: map[string]any{
						"workload": d.name, "shards": idx.ShardCount(),
						"phase": cell.phase, "readers": readers, "n": n,
					},
					Metric: "throughput", Value: cell.res.qps / 1e6, Unit: "Mlookups/s",
				})
			}
			cfg.record(Record{
				Experiment: "shard",
				Params:     map[string]any{"workload": d.name, "shards": idx.ShardCount(), "phase": "churn", "readers": readers, "n": n},
				Metric:     "epoch_swaps", Value: float64(churn.swaps),
			})
			idx.Close()
		}
	}
	t.flush()
	fmt.Fprintln(w, "\nshape target: qps during rebuilds stays close to steady qps (readers are")
	fmt.Fprintln(w, "lock-free); more shards shrink each rebuild so churn costs less; skew-aware")
	fmt.Fprintln(w, "splitting keeps Zipf traffic balanced across shards")
	return nil
}
