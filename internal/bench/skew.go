package bench

import (
	"fmt"
	"io"

	"cssidx/internal/cachesim"
	"cssidx/internal/mem"
	"cssidx/internal/simidx"
	"cssidx/internal/workload"
)

// runSkew is an extension experiment (not a numbered paper artifact): it
// quantifies the three skew-sensitivity claims the paper makes in passing.
//
//  1. §6.3: "interpolation search performs well only for data sets that
//     behave linearly … performs even worse on non-uniform data."
//  2. §3.5: "skewed data can seriously affect the performance of hash
//     indices" with a cheap low-order-bit hash function.
//  3. §5.1: "if a bunch of searches are performed in sequence, the top
//     level nodes will stay in the cache.  Since CSS-trees have fewer
//     levels than all the other methods, it will gain the most benefit
//     from a warm cache" — measured with Zipf-skewed lookups.
func runSkew(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	machine := machineFor(cfg)
	g := workload.New(cfg.Seed)
	n := 2_000_000
	if cfg.Quick {
		n = 200_000
	}

	// (1) Interpolation search vs binary search across distributions.
	fmt.Fprintf(w, "interpolation vs binary search by key distribution (n=%d, simulated on %s)\n", n, machine.Name)
	t := newTable(w)
	t.row("distribution", "interp cmps/lkp", "binary cmps/lkp", "interp time", "binary time")
	for _, d := range []struct {
		name string
		gen  func(int) []uint32
	}{
		{"linear", g.SortedLinear},
		{"uniform", g.SortedUniform},
		{"skewed", g.SortedSkewed},
	} {
		keys := d.gen(n)
		probes := g.Lookups(keys, cfg.Lookups)
		ir := simidx.Run(simidx.NewInterpolationSearch(keys, cachesim.NewAddrAlloc()), machine, probes)
		br := simidx.Run(simidx.NewBinarySearch(keys, cachesim.NewAddrAlloc()), machine, probes)
		t.row(d.name,
			fmt.Sprintf("%.1f", float64(ir.Cmps)/float64(ir.Lookups)),
			fmt.Sprintf("%.1f", float64(br.Cmps)/float64(br.Lookups)),
			secs(ir.Seconds), secs(br.Seconds))
		cfg.record(Record{Experiment: "skew", Params: map[string]any{"section": "interp-vs-binary", "distribution": d.name, "method": "interpolation"}, Metric: "lookup_time", Value: ir.Seconds, Unit: "s"})
		cfg.record(Record{Experiment: "skew", Params: map[string]any{"section": "interp-vs-binary", "distribution": d.name, "method": "binary"}, Metric: "lookup_time", Value: br.Seconds, Unit: "s"})
	}
	t.flush()
	fmt.Fprintln(w, "shape target: interp ≪ binary on linear keys, advantage shrinking/inverting with skew")
	fmt.Fprintln(w)

	// (2) Hash chains under value clustering with the low-order-bit hash.
	fmt.Fprintf(w, "hash chain lengths, low-order-bit hash, dir=2^16 (n=%d)\n", n)
	t = newTable(w)
	t.row("key pattern", "avg chain (buckets)", "max chain", "simulated time")
	dir := 1 << 16
	uniform := g.SortedUniform(n)
	clustered := make([]uint32, n)
	for i := range clustered {
		clustered[i] = uint32(i * dir) // identical low bits: every key collides
	}
	for _, d := range []struct {
		name string
		keys []uint32
	}{
		{"uniform", uniform},
		{"stride-2^16 (adversarial)", clustered},
	} {
		sim := simidx.NewHash(d.keys, dir, mem.CacheLine, cachesim.NewAddrAlloc())
		probes := g.Lookups(d.keys, cfg.Lookups)
		res := simidx.Run(sim, machine, probes)
		avg, max := hashChainStats(d.keys, dir)
		t.row(d.name, fmt.Sprintf("%.2f", avg), fmt.Sprintf("%d", max), secs(res.Seconds))
		cfg.record(Record{Experiment: "skew", Params: map[string]any{"section": "hash-chains", "pattern": d.name}, Metric: "avg_chain", Value: avg, Unit: "buckets"})
		cfg.record(Record{Experiment: "skew", Params: map[string]any{"section": "hash-chains", "pattern": d.name}, Metric: "lookup_time", Value: res.Seconds, Unit: "s"})
	}
	t.flush()
	fmt.Fprintln(w, "shape target: clustered keys explode chain lengths and lookup time (§3.5)")
	fmt.Fprintln(w)

	// (3) Warm-cache benefit under Zipf-skewed lookups.
	fmt.Fprintf(w, "uniform vs Zipf lookups (s=1.3), n=%d, simulated on %s\n", n, machine.Name)
	t = newTable(w)
	t.row("method", "uniform time", "zipf time", "speedup")
	keys := uniform
	uniProbes := g.Lookups(keys, cfg.Lookups)
	zipfProbes := g.ZipfLookups(keys, cfg.Lookups, 1.3)
	for _, s := range []func() simidx.Sim{
		func() simidx.Sim { return simidx.NewBinarySearch(keys, cachesim.NewAddrAlloc()) },
		func() simidx.Sim { return simidx.NewTTree(keys, 7, cachesim.NewAddrAlloc()) },
		func() simidx.Sim { return simidx.NewBPlusTree(keys, 16, cachesim.NewAddrAlloc()) },
		func() simidx.Sim { return simidx.NewFullCSS(keys, 16, cachesim.NewAddrAlloc()) },
	} {
		uni := simidx.Run(s(), machine, uniProbes)
		zipf := simidx.Run(s(), machine, zipfProbes)
		t.row(uni.Sim, secs(uni.Seconds), secs(zipf.Seconds),
			fmt.Sprintf("%.2fx", uni.Seconds/zipf.Seconds))
		cfg.record(Record{Experiment: "skew", Params: map[string]any{"section": "warm-cache", "method": uni.Sim, "workload": "uniform"}, Metric: "lookup_time", Value: uni.Seconds, Unit: "s"})
		cfg.record(Record{Experiment: "skew", Params: map[string]any{"section": "warm-cache", "method": uni.Sim, "workload": "zipf s=1.3"}, Metric: "lookup_time", Value: zipf.Seconds, Unit: "s"})
	}
	t.flush()
	fmt.Fprintln(w, "shape target: every method gains from hot keys; CSS-trees reach the floor fastest (§5.1)")
	return nil
}

// hashChainStats computes average/max chain length in buckets for a
// hypothetical build, without keeping the table.
func hashChainStats(keys []uint32, dir int) (avg float64, max int) {
	const pairsPerBucket = (mem.CacheLine/4 - 2) / 2
	counts := make([]int, dir)
	mask := uint32(dir - 1)
	for _, k := range keys {
		counts[k&mask]++
	}
	total := 0
	for _, c := range counts {
		buckets := 1
		if c > pairsPerBucket {
			buckets = (c + pairsPerBucket - 1) / pairsPerBucket
		}
		total += buckets
		if buckets > max {
			max = buckets
		}
	}
	return float64(total) / float64(dir), max
}
