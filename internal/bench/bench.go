// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§6, §7).  Each experiment is registered
// under the paper's artifact id (table1, fig5 … fig14) and prints the same
// rows/series the paper reports.
//
// Two measurement modes back the lookup-time experiments:
//
//   - simulated: address traces (internal/simidx) against the paper's exact
//     cache configurations (internal/cachesim), with the §5.1 cost model —
//     deterministic, machine-independent, directly comparable to the paper's
//     Ultra Sparc II / Pentium II curves;
//   - host: wall-clock timing of the real implementations on the current
//     CPU, following the paper's protocol (pre-generated random matching
//     keys, repeated runs, minimum reported).
//
// The shapes that must reproduce are listed in DESIGN.md; EXPERIMENTS.md
// records paper-vs-measured values.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"
)

// Config controls an experiment run.
type Config struct {
	Seed    int64  // workload seed (default 1)
	Lookups int    // lookups per measurement (default 100000, the paper's count)
	Machine string // "ultra" (default) or "pc" for simulated experiments
	Quick   bool   // shrink data sizes for smoke runs / CI
	Repeats int    // wall-clock repetitions, minimum reported (default 3; paper used 5)

	// Recorder, when non-nil, collects machine-readable measurements from
	// experiments that emit them (cssbench -json), alongside their table
	// output.
	Recorder *Recorder
}

// Record is one machine-readable measurement of an experiment cell: the
// experiment id, the parameters identifying the cell, and one metric value.
type Record struct {
	Experiment string         `json:"experiment"`
	Params     map[string]any `json:"params,omitempty"`
	Metric     string         `json:"metric"`
	Value      float64        `json:"value"`
	Unit       string         `json:"unit,omitempty"`
}

// Recorder accumulates Records; safe for concurrent Add.
type Recorder struct {
	mu      sync.Mutex
	records []Record
	context map[string]any
}

// Add appends one record.
func (r *Recorder) Add(rec Record) {
	r.mu.Lock()
	r.records = append(r.records, rec)
	r.mu.Unlock()
}

// SetContext attaches one environment fact to the emitted JSON document
// (alongside the built-in go version / GOMAXPROCS): experiments use it for
// run-wide measurements that are not a cell — the node-search kernel the
// dispatch selected, the calibrated MinBatchPerWorker.
func (r *Recorder) SetContext(key string, v any) {
	r.mu.Lock()
	if r.context == nil {
		r.context = map[string]any{}
	}
	r.context[key] = v
	r.mu.Unlock()
}

// Context returns a copy of the attached context.
func (r *Recorder) Context() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.context))
	for k, v := range r.context {
		out[k] = v
	}
	return out
}

// Records returns the accumulated records in insertion order.
func (r *Recorder) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Record(nil), r.records...)
}

// record is the experiments' no-op-when-unset emission helper.
func (c Config) record(rec Record) {
	if c.Recorder != nil {
		c.Recorder.Add(rec)
	}
}

// WriteJSON writes the records as one indented JSON document with enough
// environment context (Go version, GOMAXPROCS) to compare baselines across
// machines and commits.
func (r *Recorder) WriteJSON(w io.Writer) error {
	doc := struct {
		GoVersion  string         `json:"go_version"`
		GOMAXPROCS int            `json:"gomaxprocs"`
		NumCPU     int            `json:"num_cpu"`
		Context    map[string]any `json:"context,omitempty"`
		Records    []Record       `json:"records"`
	}{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Context:    r.Context(),
		Records:    r.Records(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Lookups == 0 {
		c.Lookups = 100000
	}
	if c.Machine == "" {
		c.Machine = "ultra"
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	return c
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config, w io.Writer) error
}

// Experiments returns all experiments in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: parameters and their typical values", runTable1},
		{"fig5", "Figure 5: comparison and cache-access ratio, level vs full CSS-trees", runFig5},
		{"fig6", "Figure 6: time analysis (branching, levels, comparisons, cache misses)", runFig6},
		{"fig7", "Figure 7: space analysis (indirect and direct)", runFig7},
		{"fig8", "Figure 8: space under typical configuration, varying n", runFig8},
		{"fig9", "Figure 9: building time for CSS-trees", runFig9},
		{"fig10", "Figure 10: search time varying array size (Ultra Sparc II)", runFig10},
		{"fig11", "Figure 11: search time varying array size (Pentium II)", runFig11},
		{"fig12", "Figure 12: search time varying node size (Ultra Sparc II)", runFig12},
		{"fig13", "Figure 13: search time varying node size (Pentium II)", runFig13},
		{"fig14", "Figure 2/14: space/time trade-offs and the stepped frontier", runFig14},
		{"skew", "Extension: skew sensitivity (interpolation, hash chains, Zipf warm cache)", runSkew},
		{"shard", "Extension: sharded serving throughput under concurrent epoch-swap rebuilds", runShard},
		{"batch", "Extension: batched lockstep probing vs scalar (batch size, skew, join)", runBatch},
		{"parallel", "Extension: parallel batch engine (batch size × workers × skew, branch-free nodes)", runParallel},
		{"nodesearch", "Extension: node-search kernel ablation (scalar/swar/simd × node size × skew)", runNodeSearch},
		{"reuse", "Extension: epoch-aware result cache (hit rate × skew × append rate)", runReuse},
		{"ingest", "Extension: append cliff — delta-layer absorbs vs rebuild-per-batch (appends/s, read tax)", runIngest},
		{"durability", "Extension: WAL overhead per fsync policy (appends/s off/group/always, recovery vs log size)", runDurability},
		{"telemetry", "Extension: metrics collection overhead, enabled vs disabled (parallel + sharded batch legs)", runTelemetry},
		{"latency", "Extension: per-surface query latency p50/p90/p99 from the mmdb_query_ns histograms", runLatency},
		{"governor", "Extension: query-governance overhead — legacy vs background-ctx vs fully governed legs", runGovernor},
	}
}

// Lookup finds an experiment by id ("fig2" aliases fig14).
func Lookup(id string) (Experiment, bool) {
	if id == "fig2" {
		id = "fig14"
	}
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Sink defeats dead-code elimination in timing loops; its value is
// meaningless.
var Sink int

// MeasureLookups times the whole probe sequence through search, repeating
// per the paper's protocol and returning the minimum seconds.
func MeasureLookups(search func(uint32) int, probes []uint32, repeats int) float64 {
	if repeats < 1 {
		repeats = 1
	}
	best := 0.0
	for r := 0; r < repeats; r++ {
		s := 0
		start := time.Now()
		for _, k := range probes {
			s += search(k)
		}
		elapsed := time.Since(start).Seconds()
		Sink += s
		if r == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best
}

// Measure times an arbitrary step, repeating and returning the minimum
// seconds (used for build-time experiments).
func Measure(step func(), repeats int) float64 {
	if repeats < 1 {
		repeats = 1
	}
	best := 0.0
	for r := 0; r < repeats; r++ {
		start := time.Now()
		step()
		elapsed := time.Since(start).Seconds()
		if r == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best
}

// table accumulates aligned rows for paper-style output.
type table struct {
	tw *tabwriter.Writer
}

func newTable(w io.Writer) *table {
	return &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		fmt.Fprint(t.tw, c)
	}
	fmt.Fprintln(t.tw)
}

func (t *table) flush() { t.tw.Flush() }

// secs formats seconds the way the paper's y-axes read.
func secs(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-4:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.4fs", s)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// mb formats bytes in the paper's decimal megabytes.
func mb(b float64) string {
	return fmt.Sprintf("%.2f MB", b/1e6)
}
