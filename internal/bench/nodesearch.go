package bench

// runNodeSearch is the node-search kernel ablation: the dispatch tiers of
// internal/binsearch (scalar branch-free ladder / SWAR counting / AVX2
// vector) measured per node visit across node sizes and probe
// distributions, the 16-wide multi-probe kernel against the single-probe
// baseline, and the tiers under a full tree-descent batch — the
// machine-readable record (BENCH_nodesearch.json) behind the "True SIMD
// node search" ROADMAP item.
//
// Shape target: on AVX2 hosts the simd tier never loses to the bflb
// scalar ladder and the multi-probe kernel answers a 16-slot node visit
// several times faster than the scalar baseline (the lockstep engine's
// unit of work); the swar tier is the portable fallback and is expected
// to trail the ladder on hot nodes — it exists for architectures without
// a vector kernel and for the ablation itself.

import (
	"fmt"
	"io"

	"cssidx"
	"cssidx/internal/binsearch"
	"cssidx/internal/workload"
)

// nodeSearchSizes are the specialised node sizes the trees use: full-tree
// slots (2ᵗ) and level-tree routing windows (2ᵗ−1).
var nodeSearchSizes = []int{7, 8, 15, 16, 31, 32, 63, 64}

// nodeSearchKernels returns the tiers available on this host.
func nodeSearchKernels() []binsearch.Kernel {
	ks := []binsearch.Kernel{binsearch.KernelScalar, binsearch.KernelSWAR}
	if binsearch.KernelAvailable(binsearch.KernelSIMD) {
		ks = append(ks, binsearch.KernelSIMD)
	}
	return ks
}

func runNodeSearch(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	g := workload.New(cfg.Seed)
	prev := binsearch.ActiveKernel()
	defer binsearch.SetKernel(prev)

	iters := 1 << 21
	if cfg.Quick {
		iters = 1 << 16
	}

	if cfg.Recorder != nil {
		cfg.Recorder.SetContext("nodesearch_default_kernel", binsearch.ActiveKernel().String())
		cfg.Recorder.SetContext("nodesearch_simd_available", binsearch.KernelAvailable(binsearch.KernelSIMD))
	}
	fmt.Fprintf(w, "node-search kernel ablation: default dispatch %q, simd available %v\n\n",
		binsearch.ActiveKernel(), binsearch.KernelAvailable(binsearch.KernelSIMD))

	// --- single-probe dispatch: tier × node size × distribution ------------
	fmt.Fprintln(w, "single-probe NodeLowerBound (ns per node visit; speedup vs the scalar bflb ladder)")
	t := newTable(w)
	t.row("node slots", "workload", "scalar ns", "swar ns", "simd ns", "best speedup")
	for _, m := range nodeSearchSizes {
		nodeKeys := g.SortedDistinct(m)
		dists := []struct {
			name   string
			probes []uint32
		}{
			{"uniform", append(g.Lookups(nodeKeys, 4096), g.Misses(nodeKeys, 4096)...)},
			{"zipf s=1.2", g.ZipfLookups(g.Shuffled(nodeKeys), 8192, 1.2)},
		}
		for _, d := range dists {
			perTier := map[binsearch.Kernel]float64{}
			for _, kern := range nodeSearchKernels() {
				binsearch.SetKernel(kern)
				sec := Measure(func() {
					s := 0
					for i := 0; i < iters; i++ {
						s += binsearch.NodeLowerBound(nodeKeys, m, d.probes[i&8191])
					}
					Sink += s
				}, cfg.Repeats)
				perTier[kern] = sec / float64(iters) * 1e9
				cfg.record(Record{
					Experiment: "nodesearch",
					Params: map[string]any{
						"surface": "single", "node_slots": m,
						"workload": d.name, "kernel": kern.String(),
					},
					Metric: "per_visit", Value: perTier[kern], Unit: "ns",
				})
			}
			simdCell := "-"
			best := perTier[binsearch.KernelScalar]
			if v, ok := perTier[binsearch.KernelSIMD]; ok {
				simdCell = fmt.Sprintf("%.2f", v)
				if v < best {
					best = v
				}
			}
			if v := perTier[binsearch.KernelSWAR]; v < best {
				best = v
			}
			t.row(fmt.Sprintf("%d", m), d.name,
				fmt.Sprintf("%.2f", perTier[binsearch.KernelScalar]),
				fmt.Sprintf("%.2f", perTier[binsearch.KernelSWAR]),
				simdCell,
				fmt.Sprintf("%.2fx", perTier[binsearch.KernelScalar]/best))
		}
	}
	t.flush()

	// --- multi-probe kernel: one node, a 16-wide lockstep group ------------
	// The lockstep engine's unit of work: every group shares the root node,
	// and sorted schedules share nodes deep into the directory.  The scalar
	// baseline is 16 independent bflb calls.
	fmt.Fprintln(w, "\n16-wide multi-probe kernel vs 16 scalar calls (ns per probe-node visit)")
	tm := newTable(w)
	tm.row("node slots", "workload", "scalar ns", "multi ns", "speedup")
	for _, m := range nodeSearchSizes {
		nodeKeys := g.SortedDistinct(m)
		dists := []struct {
			name   string
			probes []uint32
		}{
			{"uniform", append(g.Lookups(nodeKeys, 4096), g.Misses(nodeKeys, 4096)...)},
			{"zipf s=1.2", g.ZipfLookups(g.Shuffled(nodeKeys), 8192, 1.2)},
		}
		for _, d := range dists {
			group := d.probes[:16]
			out := make([]int32, 16)
			gIters := iters / 16
			binsearch.SetKernel(binsearch.KernelScalar)
			scalar := Measure(func() {
				s := 0
				for i := 0; i < gIters; i++ {
					for j := 0; j < 16; j++ {
						s += binsearch.NodeLowerBound(nodeKeys, m, group[j])
					}
				}
				Sink += s
			}, cfg.Repeats)
			binsearch.SetKernel(prev) // best available tier drives the multi kernel
			multi := Measure(func() {
				for i := 0; i < gIters; i++ {
					binsearch.NodeLowerBound16(nodeKeys, m, group, out)
				}
				Sink += int(out[0])
			}, cfg.Repeats)
			visits := float64(gIters) * 16
			scalarNs := scalar / visits * 1e9
			multiNs := multi / visits * 1e9
			tm.row(fmt.Sprintf("%d", m), d.name,
				fmt.Sprintf("%.2f", scalarNs), fmt.Sprintf("%.2f", multiNs),
				fmt.Sprintf("%.2fx", scalarNs/multiNs))
			// The baseline is 16 independent scalar calls, labelled
			// distinctly from the multi kernel's tier so the two records
			// stay distinguishable even when the active tier IS scalar
			// (non-AVX2 hosts, CSSIDX_NODESEARCH=scalar).
			cfg.record(Record{
				Experiment: "nodesearch",
				Params: map[string]any{
					"surface": "multi16", "node_slots": m,
					"workload": d.name, "kernel": "scalar-calls",
				},
				Metric: "per_visit", Value: scalarNs, Unit: "ns",
			})
			cfg.record(Record{
				Experiment: "nodesearch",
				Params: map[string]any{
					"surface": "multi16", "node_slots": m,
					"workload": d.name, "kernel": "multi-" + binsearch.ActiveKernel().String(),
				},
				Metric: "per_visit", Value: multiNs, Unit: "ns",
			})
		}
	}
	tm.flush()

	// --- tree-level: the tiers under a full lockstep batch descent ---------
	n := 1_000_000
	if cfg.Quick {
		n = 100_000
	}
	keys := g.SortedUniform(n)
	level := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)
	batched := cssidx.AsBatchOrdered(level)
	probes := g.Lookups(keys, cfg.Lookups)
	out := make([]int32, len(probes))
	fmt.Fprintf(w, "\nlevel CSS-tree LowerBoundBatch over n=%d keys, %d uniform probes, per tier\n", n, len(probes))
	tt := newTable(w)
	tt.row("kernel", "Mprobes/s", "vs scalar")
	var scalarSec float64
	for _, kern := range nodeSearchKernels() {
		binsearch.SetKernel(kern)
		sec := Measure(func() {
			batched.LowerBoundBatch(probes, out)
			Sink += int(out[0])
		}, cfg.Repeats)
		if kern == binsearch.KernelScalar {
			scalarSec = sec
		}
		tt.row(kern.String(),
			fmt.Sprintf("%.2f", float64(len(probes))/sec/1e6),
			fmt.Sprintf("%.2fx", scalarSec/sec))
		cfg.record(Record{
			Experiment: "nodesearch",
			Params:     map[string]any{"surface": "tree-batch", "n": n, "kernel": kern.String()},
			Metric:     "throughput", Value: float64(len(probes)) / sec / 1e6, Unit: "Mprobes/s",
		})
	}
	tt.flush()

	fmt.Fprintln(w, "\nshape target: simd never loses to the scalar ladder; the multi-probe kernel")
	fmt.Fprintln(w, "answers a 16-slot visit several times faster than 16 scalar calls (the batch")
	fmt.Fprintln(w, "engine's hot case); swar is the portable non-vector fallback")
	return nil
}
