package bench

// runParallel is the parallel-execution-engine experiment (an extension
// beyond the paper, following its §8 direction): the lockstep batch kernel
// measured under the worker-pool scheduler across batch size × workers ×
// probe distribution, plus the branch-free vs scalar node-search ablation
// the kernels are built on.
//
// The shape target: one worker matches the plain lockstep kernel (the engine
// adds no overhead before it forks); at ≥64k-probe batches throughput scales
// with workers up to the core count (each worker keeps its own complement of
// independent misses in flight); small batches are immune to worker settings
// (the sequential fallback).  Branch-free node search is never slower than
// the scalar unrolled search and wins clearly on random probes, where the
// scalar version mispredicts roughly every other halving step.
//
// Every cell lands in cfg.Recorder (cssbench -json) so the perf trajectory
// is machine-readable across commits: see BENCH_parallel.json.

import (
	"fmt"
	"io"
	"runtime"

	"cssidx"
	"cssidx/internal/binsearch"
	"cssidx/internal/workload"
)

// parallelBatchSizes sweeps from "fallback" through "worth one core" to
// "worth every core".
var parallelBatchSizes = []int{512, 4096, 65536, 262144}

// parallelWorkerCounts sweeps the engine; 0 = GOMAXPROCS.
var parallelWorkerCounts = []int{1, 2, 4, 8}

func runParallel(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	g := workload.New(cfg.Seed)
	n := 10_000_000
	if cfg.Quick {
		n = 200_000
	}
	// -lookups bounds the probe stream as in every experiment; batch sizes
	// beyond it are skipped, so the committed baseline uses -lookups 524288
	// to cover the whole sweep.
	probeCount := cfg.Lookups
	keys := g.SortedUniform(n)
	level := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)
	seq := cssidx.AsBatchOrdered(level)

	dists := []struct {
		name   string
		probes []uint32
	}{
		{"uniform", g.Lookups(keys, probeCount)},
		{"zipf s=1.2", g.ZipfLookups(g.Shuffled(keys), probeCount, 1.2)},
	}

	fmt.Fprintf(w, "parallel batch engine: level CSS-tree over n=%d keys, %d probes per cell, GOMAXPROCS=%d\n\n",
		n, probeCount, runtime.GOMAXPROCS(0))
	t := newTable(w)
	t.row("workload", "batch", "workers", "Mprobes/s", "vs 1 worker")
	for _, d := range dists {
		for _, bs := range parallelBatchSizes {
			if bs > len(d.probes) {
				continue
			}
			var oneWorker float64
			for _, workers := range parallelWorkerCounts {
				par := cssidx.NewParallel(level, cssidx.ParallelOptions{Workers: workers})
				sec := measureBatchedLB(par, d.probes, bs, cfg.Repeats)
				mps := float64(len(d.probes)) / sec / 1e6
				if workers == 1 {
					oneWorker = sec
				}
				t.row(d.name, fmt.Sprintf("%d", bs), fmt.Sprintf("%d", workers),
					fmt.Sprintf("%.2f", mps), fmt.Sprintf("%.2fx", oneWorker/sec))
				cfg.record(Record{
					Experiment: "parallel",
					Params: map[string]any{
						"workload": d.name, "batch": bs, "workers": workers,
						"n": n, "surface": "LowerBoundBatch",
					},
					Metric: "throughput", Value: mps, Unit: "Mprobes/s",
				})
			}
		}
		// The sequential lockstep kernel is the baseline the engine must
		// not regress: one worker above should match this row.
		baseBS := 65536
		if baseBS > len(d.probes) {
			baseBS = len(d.probes)
		}
		sec := measureBatchedLB(seq, d.probes, baseBS, cfg.Repeats)
		mps := float64(len(d.probes)) / sec / 1e6
		t.row(d.name, fmt.Sprintf("%d", baseBS), "lockstep (no engine)", fmt.Sprintf("%.2f", mps), "-")
		cfg.record(Record{
			Experiment: "parallel",
			Params:     map[string]any{"workload": d.name, "batch": baseBS, "workers": 0, "n": n, "surface": "lockstep-baseline"},
			Metric:     "throughput", Value: mps, Unit: "Mprobes/s",
		})
	}
	t.flush()

	// Sharded serving under the engine: per-shard runs across workers.
	fmt.Fprintf(w, "\nsharded serving (4 shards, auto schedule), batch 65536, workers sweep\n\n")
	ts := newTable(w)
	ts.row("workload", "workers", "Mprobes/s")
	for _, d := range dists {
		for _, workers := range parallelWorkerCounts {
			idx := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{
				Shards:   4,
				Parallel: cssidx.ParallelOptions{Workers: workers},
			})
			bs := 65536
			if bs > len(d.probes) {
				bs = len(d.probes)
			}
			sec := measureBatchedLB(idx, d.probes, bs, cfg.Repeats)
			mps := float64(len(d.probes)) / sec / 1e6
			ts.row(d.name, fmt.Sprintf("%d", workers), fmt.Sprintf("%.2f", mps))
			cfg.record(Record{
				Experiment: "parallel",
				Params:     map[string]any{"workload": d.name, "batch": bs, "workers": workers, "n": n, "surface": "sharded"},
				Metric:     "throughput", Value: mps, Unit: "Mprobes/s",
			})
			idx.Close()
		}
	}
	ts.flush()

	// Branch-free vs scalar node search: the per-node ablation under the
	// kernels.  Random in-cache probes make the scalar version mispredict.
	fmt.Fprintf(w, "\nbranch-free vs scalar node search (uniform random probes, in-cache node)\n\n")
	tn := newTable(w)
	tn.row("node slots", "scalar Mops/s", "branch-free Mops/s", "speedup")
	for _, m := range []int{15, 16, 31, 32} {
		nodeKeys := g.SortedDistinct(m)
		nodeProbes := append(g.Lookups(nodeKeys, 4096), g.Misses(nodeKeys, 4096)...)
		iters := 1 << 20
		if cfg.Quick {
			iters = 1 << 16
		}
		scalar := Measure(func() {
			s := 0
			for i := 0; i < iters; i++ {
				s += binsearch.NodeLowerBoundScalar(nodeKeys, m, nodeProbes[i&8191])
			}
			Sink += s
		}, cfg.Repeats)
		bf := Measure(func() {
			s := 0
			for i := 0; i < iters; i++ {
				s += binsearch.NodeLowerBound(nodeKeys, m, nodeProbes[i&8191])
			}
			Sink += s
		}, cfg.Repeats)
		tn.row(fmt.Sprintf("%d", m),
			fmt.Sprintf("%.1f", float64(iters)/scalar/1e6),
			fmt.Sprintf("%.1f", float64(iters)/bf/1e6),
			fmt.Sprintf("%.2fx", scalar/bf))
		cfg.record(Record{
			Experiment: "parallel",
			Params:     map[string]any{"node_slots": m, "surface": "node-search-scalar"},
			Metric:     "throughput", Value: float64(iters) / scalar / 1e6, Unit: "Mops/s",
		})
		cfg.record(Record{
			Experiment: "parallel",
			Params:     map[string]any{"node_slots": m, "surface": "node-search-branch-free"},
			Metric:     "throughput", Value: float64(iters) / bf / 1e6, Unit: "Mops/s",
		})
	}
	tn.flush()

	fmt.Fprintln(w, "\nshape target: one worker matches the bare lockstep kernel; ≥64k batches")
	fmt.Fprintln(w, "scale with workers up to the core count; 512-probe batches are immune to the")
	fmt.Fprintln(w, "worker knob (sequential fallback); branch-free node search never loses to the")
	fmt.Fprintln(w, "scalar unrolled search and wins big on mispredicting probe streams")
	return nil
}
