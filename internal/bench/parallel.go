package bench

// runParallel is the parallel-execution-engine experiment (an extension
// beyond the paper, following its §8 direction): the lockstep batch kernel
// measured under the worker-pool scheduler across batch size × workers ×
// probe distribution, plus the branch-free vs scalar node-search ablation
// the kernels are built on.
//
// The shape target: one worker matches the plain lockstep kernel (the engine
// adds no overhead before it forks); at ≥64k-probe batches throughput scales
// with workers up to the core count (each worker keeps its own complement of
// independent misses in flight); small batches are immune to worker settings
// (the sequential fallback).  Branch-free node search is never slower than
// the scalar unrolled search and wins clearly on random probes, where the
// scalar version mispredicts roughly every other halving step.
//
// Every cell lands in cfg.Recorder (cssbench -json) so the perf trajectory
// is machine-readable across commits: see BENCH_parallel.json.

import (
	"fmt"
	"io"
	"runtime"

	"cssidx"
	"cssidx/internal/binsearch"
	"cssidx/internal/parallel"
	"cssidx/internal/sortu32"
	"cssidx/internal/workload"
)

// parallelBatchSizes sweeps from "fallback" through "worth one core" to
// "worth every core".
var parallelBatchSizes = []int{512, 4096, 65536, 262144}

// parallelWorkerCounts sweeps the engine; 0 = GOMAXPROCS.
var parallelWorkerCounts = []int{1, 2, 4, 8}

func runParallel(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	g := workload.New(cfg.Seed)
	n := 10_000_000
	if cfg.Quick {
		n = 200_000
	}
	// -lookups bounds the probe stream as in every experiment; batch sizes
	// beyond it are skipped, so the committed baseline uses -lookups 524288
	// to cover the whole sweep.
	probeCount := cfg.Lookups
	keys := g.SortedUniform(n)
	level := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)
	seq := cssidx.AsBatchOrdered(level)

	dists := []struct {
		name   string
		probes []uint32
	}{
		{"uniform", g.Lookups(keys, probeCount)},
		{"zipf s=1.2", g.ZipfLookups(g.Shuffled(keys), probeCount, 1.2)},
	}

	fmt.Fprintf(w, "parallel batch engine: level CSS-tree over n=%d keys, %d probes per cell, GOMAXPROCS=%d\n\n",
		n, probeCount, runtime.GOMAXPROCS(0))
	t := newTable(w)
	t.row("workload", "batch", "workers", "Mprobes/s", "vs 1 worker")
	for _, d := range dists {
		for _, bs := range parallelBatchSizes {
			if bs > len(d.probes) {
				continue
			}
			var oneWorker float64
			for _, workers := range parallelWorkerCounts {
				par := cssidx.NewParallel(level, cssidx.ParallelOptions{Workers: workers})
				sec := measureBatchedLB(par, d.probes, bs, cfg.Repeats)
				mps := float64(len(d.probes)) / sec / 1e6
				if workers == 1 {
					oneWorker = sec
				}
				t.row(d.name, fmt.Sprintf("%d", bs), fmt.Sprintf("%d", workers),
					fmt.Sprintf("%.2f", mps), fmt.Sprintf("%.2fx", oneWorker/sec))
				cfg.record(Record{
					Experiment: "parallel",
					Params: map[string]any{
						"workload": d.name, "batch": bs, "workers": workers,
						"n": n, "surface": "LowerBoundBatch",
					},
					Metric: "throughput", Value: mps, Unit: "Mprobes/s",
				})
			}
		}
		// The sequential lockstep kernel is the baseline the engine must
		// not regress: one worker above should match this row.
		baseBS := 65536
		if baseBS > len(d.probes) {
			baseBS = len(d.probes)
		}
		sec := measureBatchedLB(seq, d.probes, baseBS, cfg.Repeats)
		mps := float64(len(d.probes)) / sec / 1e6
		t.row(d.name, fmt.Sprintf("%d", baseBS), "lockstep (no engine)", fmt.Sprintf("%.2f", mps), "-")
		cfg.record(Record{
			Experiment: "parallel",
			Params:     map[string]any{"workload": d.name, "batch": baseBS, "workers": 0, "n": n, "surface": "lockstep-baseline"},
			Metric:     "throughput", Value: mps, Unit: "Mprobes/s",
		})
	}
	t.flush()

	// Adaptive worker sizing: a fresh engine calibrates MinBatchPerWorker
	// from its first large batch; surface the value it derives for this
	// index's measured per-probe cost.
	adaptive := cssidx.NewParallel(level, cssidx.ParallelOptions{})
	calibBS := min(65536, len(dists[0].probes))
	calibOut := make([]int32, calibBS)
	adaptive.LowerBoundBatch(dists[0].probes[:calibBS], calibOut)
	if tun, ok := adaptive.(cssidx.BatchTuning); ok {
		if mbw, perNs, calibrated := tun.BatchCalibration(); calibrated {
			fmt.Fprintf(w, "\nadaptive worker sizing: measured %.1f ns/probe -> MinBatchPerWorker %d\n", perNs, mbw)
			if cfg.Recorder != nil {
				cfg.Recorder.SetContext("calibrated_min_batch_per_worker", mbw)
				cfg.Recorder.SetContext("calibrated_per_probe_ns", perNs)
			}
			cfg.record(Record{
				Experiment: "parallel",
				Params:     map[string]any{"surface": "calibration", "n": n},
				Metric:     "min_batch_per_worker", Value: float64(mbw), Unit: "probes",
			})
		}
	}

	// Sharded serving under the engine: per-shard runs across workers.  The
	// index runs ScheduleAuto; every record carries the schedule the batch
	// actually resolved to, not just the requested "auto".
	fmt.Fprintf(w, "\nsharded serving (4 shards, auto schedule), batch 65536, workers sweep\n\n")
	ts := newTable(w)
	ts.row("workload", "workers", "resolved schedule", "Mprobes/s")
	for _, d := range dists {
		for _, workers := range parallelWorkerCounts {
			idx := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{
				Shards:   4,
				Parallel: cssidx.ParallelOptions{Workers: workers},
			})
			bs := 65536
			if bs > len(d.probes) {
				bs = len(d.probes)
			}
			// Auto resolves per chunk; resolve every chunk the measurement
			// will run so the record reflects what actually descended (one
			// cell's chunks can legitimately split between schedules).
			sortedChunks, inputChunks := 0, 0
			for lo := 0; lo < len(d.probes); lo += bs {
				hi := min(lo+bs, len(d.probes))
				if idx.ResolveSchedule(d.probes[lo:hi]) == cssidx.ScheduleSorted {
					sortedChunks++
				} else {
					inputChunks++
				}
			}
			resolved := "input-order"
			switch {
			case inputChunks == 0:
				resolved = "sorted"
			case sortedChunks > 0:
				resolved = "mixed"
			}
			sec := measureBatchedLB(idx, d.probes, bs, cfg.Repeats)
			mps := float64(len(d.probes)) / sec / 1e6
			ts.row(d.name, fmt.Sprintf("%d", workers), resolved, fmt.Sprintf("%.2f", mps))
			cfg.record(Record{
				Experiment: "parallel",
				Params: map[string]any{
					"workload": d.name, "batch": bs, "workers": workers, "n": n,
					"surface": "sharded", "schedule_requested": "auto",
					"schedule_resolved": resolved,
					"chunks_sorted":     sortedChunks, "chunks_input": inputChunks,
				},
				Metric: "throughput", Value: mps, Unit: "Mprobes/s",
			})
			idx.Close()
		}
	}
	ts.flush()

	// Key-ordered schedule sort phase: the parallel MSB-radix partition vs
	// the worker count, on a 1M-probe batch — the serial fraction the
	// ROADMAP flagged for skewed streams.  (On a single-vCPU runner the
	// worker columns flatten; the partition itself still wins by skipping
	// radix passes per bucket — both effects land in the records.)
	sortN := 1 << 20
	if cfg.Quick {
		sortN = 1 << 15
	}
	fmt.Fprintf(w, "\nkey-ordered schedule sort phase: parallel radix partition, %d probes\n\n", sortN)
	tsort := newTable(w)
	tsort.row("workload", "workers", "Mkeys/s", "vs sequential")
	for _, d := range dists {
		src := make([]uint32, sortN)
		for i := range src {
			src[i] = d.probes[i%len(d.probes)]
		}
		keysBuf := make([]uint32, sortN)
		valsBuf := make([]uint32, sortN)
		tmpK := make([]uint32, sortN)
		tmpV := make([]uint32, sortN)
		var seqSec float64
		for _, workers := range parallelWorkerCounts {
			opts := parallel.Options{Workers: workers}
			hist := make([]int32, sortu32.HistLen(sortN, opts))
			sec := Measure(func() {
				copy(keysBuf, src)
				for i := range valsBuf {
					valsBuf[i] = uint32(i)
				}
				sortu32.SortPairsParallel(keysBuf, valsBuf, tmpK, tmpV, hist, opts)
			}, cfg.Repeats)
			if workers == 1 {
				seqSec = sec
			}
			mks := float64(sortN) / sec / 1e6
			tsort.row(d.name, fmt.Sprintf("%d", workers), fmt.Sprintf("%.2f", mks), fmt.Sprintf("%.2fx", seqSec/sec))
			cfg.record(Record{
				Experiment: "parallel",
				Params:     map[string]any{"workload": d.name, "workers": workers, "n": sortN, "surface": "sort-phase"},
				Metric:     "throughput", Value: mks, Unit: "Mkeys/s",
			})
		}
	}
	tsort.flush()

	// Dispatched vs branchy-scalar node search: the per-node ablation under
	// the kernels (random in-cache probes mispredict the branchy version;
	// the dispatched tier is whatever binsearch selected at init — see the
	// `nodesearch` experiment for the full scalar/swar/simd ablation).
	fmt.Fprintf(w, "\ndispatched (%s) vs branchy scalar node search (uniform random probes, in-cache node)\n\n",
		binsearch.ActiveKernel())
	tn := newTable(w)
	tn.row("node slots", "scalar Mops/s", "dispatched Mops/s", "speedup")
	for _, m := range []int{15, 16, 31, 32} {
		nodeKeys := g.SortedDistinct(m)
		nodeProbes := append(g.Lookups(nodeKeys, 4096), g.Misses(nodeKeys, 4096)...)
		iters := 1 << 20
		if cfg.Quick {
			iters = 1 << 16
		}
		scalar := Measure(func() {
			s := 0
			for i := 0; i < iters; i++ {
				s += binsearch.NodeLowerBoundScalar(nodeKeys, m, nodeProbes[i&8191])
			}
			Sink += s
		}, cfg.Repeats)
		bf := Measure(func() {
			s := 0
			for i := 0; i < iters; i++ {
				s += binsearch.NodeLowerBound(nodeKeys, m, nodeProbes[i&8191])
			}
			Sink += s
		}, cfg.Repeats)
		tn.row(fmt.Sprintf("%d", m),
			fmt.Sprintf("%.1f", float64(iters)/scalar/1e6),
			fmt.Sprintf("%.1f", float64(iters)/bf/1e6),
			fmt.Sprintf("%.2fx", scalar/bf))
		cfg.record(Record{
			Experiment: "parallel",
			Params:     map[string]any{"node_slots": m, "surface": "node-search-scalar"},
			Metric:     "throughput", Value: float64(iters) / scalar / 1e6, Unit: "Mops/s",
		})
		cfg.record(Record{
			Experiment: "parallel",
			Params:     map[string]any{"node_slots": m, "surface": "node-search-branch-free"},
			Metric:     "throughput", Value: float64(iters) / bf / 1e6, Unit: "Mops/s",
		})
	}
	tn.flush()

	fmt.Fprintln(w, "\nshape target: one worker matches the bare lockstep kernel; ≥64k batches")
	fmt.Fprintln(w, "scale with workers up to the core count; 512-probe batches are immune to the")
	fmt.Fprintln(w, "worker knob (sequential fallback); branch-free node search never loses to the")
	fmt.Fprintln(w, "scalar unrolled search and wins big on mispredicting probe streams")
	return nil
}
