package bench

// runIngest measures the append cliff and the delta layer that removes it
// (an extension beyond the paper; the paper's §2.3 position is
// rebuild-per-batch).  A table with a sorted index and a sharded index
// ingests a stream of fixed-size append batches twice: once with the delta
// layer absorbing batches as sorted runs (size-tiered folds amortise the
// rebuilds), once with AppendPolicy.Disabled forcing the full §2.3 rebuild
// on every batch.  Sustained appends/s is the cliff metric; a read pass
// over the delta-carrying table against a just-folded twin prices what the
// merged base ∪ delta reads cost.
//
// The shape target — and the PR's acceptance bar: at small batches the
// delta path sustains ≥5× the rebuild-per-batch append rate, while range
// reads served base ∪ delta stay within 1.5× of the pure-immutable reads.

import (
	"fmt"
	"io"
	"time"

	"cssidx"
	"cssidx/internal/mmdb"
	"cssidx/internal/workload"
)

// ingestTable builds the experiment's table: an indexed key column, a
// sharded key column, and a measure column, over baseRows rows.
func ingestTable(g *workload.Gen, dict []uint32, baseRows int, pol mmdb.AppendPolicy) (*mmdb.Table, *mmdb.ShardedIndex, error) {
	tab := mmdb.NewTable("ingest")
	tab.SetAppendPolicy(pol)
	for _, c := range []string{"k", "s", "v"} {
		if err := tab.AddColumn(c, g.Lookups(dict, baseRows)); err != nil {
			return nil, nil, err
		}
	}
	if _, err := tab.BuildIndex("k", cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
		return nil, nil, err
	}
	sh, err := tab.BuildShardedIndex("s", 4)
	if err != nil {
		return nil, nil, err
	}
	return tab, sh, nil
}

// ingestBatches pre-generates the append stream so generation cost never
// lands inside the timed region.
func ingestBatches(g *workload.Gen, dict []uint32, batch, count int) []map[string][]uint32 {
	out := make([]map[string][]uint32, count)
	for i := range out {
		out[i] = map[string][]uint32{
			"k": g.Lookups(dict, batch),
			"s": g.Lookups(dict, batch),
			"v": g.Lookups(dict, batch),
		}
	}
	return out
}

// measureRangeReads times q mid-selectivity range selections against the
// indexed column, returning steady-state seconds per query: the pass runs
// repeats times and reports the minimum (the paper's protocol), so one-time
// work — the delta table's first read builds its merged overlay — lands in
// the first pass, not the figure.
func measureRangeReads(tab *mmdb.Table, dict []uint32, g *workload.Gen, q, repeats int) (float64, error) {
	los := g.Lookups(dict, q)
	const width = 1 << 24 // ~0.4% of the uint32 key space
	var err error
	best := Measure(func() {
		for _, lo := range los {
			rids, _, qerr := tab.SelectRange("k", lo, lo+width)
			if qerr != nil {
				err = qerr
				return
			}
			Sink += len(rids)
		}
	}, repeats)
	if err != nil {
		return 0, err
	}
	return best / float64(q), nil
}

func runIngest(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	g := workload.New(cfg.Seed)
	baseRows, totalAppend, readQ := 200_000, 16_384, 400
	if cfg.Quick {
		baseRows, totalAppend, readQ = 50_000, 4_096, 150
	}
	dict := g.SortedUniform(4096)
	batchSizes := []int{64, 256, 1024, 4096}

	fmt.Fprintf(w, "append stream of %d rows onto a %d-row base (sorted + sharded index), per batch size\n",
		totalAppend, baseRows)
	t := newTable(w)
	t.row("batch", "delta appends/s", "rebuild appends/s", "speedup", "delta read", "folded read", "read ratio")
	for _, batch := range batchSizes {
		count := totalAppend / batch
		var rates [2]float64
		var tabs [2]*mmdb.Table
		for mi, pol := range []mmdb.AppendPolicy{
			{},               // delta layer on, default tiering
			{Disabled: true}, // rebuild per batch
		} {
			tab, sh, err := ingestTable(g, dict, baseRows, pol)
			if err != nil {
				return err
			}
			defer sh.Close()
			batches := ingestBatches(g, dict, batch, count)
			start := time.Now()
			for _, b := range batches {
				if err := tab.AppendRows(b); err != nil {
					return err
				}
			}
			elapsed := time.Since(start).Seconds()
			rates[mi] = float64(count*batch) / elapsed
			tabs[mi] = tab
		}
		// Read price of the outstanding delta: the delta table still holds
		// absorbed runs (unless the tier folded them all); the disabled
		// table is pure immutable state — the 1.5× bar from the issue.
		deltaRead, err := measureRangeReads(tabs[0], dict, g, readQ, cfg.Repeats)
		if err != nil {
			return err
		}
		foldedRead, err := measureRangeReads(tabs[1], dict, g, readQ, cfg.Repeats)
		if err != nil {
			return err
		}
		speedup := rates[0] / rates[1]
		ratio := deltaRead / foldedRead
		t.row(fmt.Sprintf("%d", batch),
			fmt.Sprintf("%.0f", rates[0]), fmt.Sprintf("%.0f", rates[1]),
			fmt.Sprintf("%.1fx", speedup),
			secs(deltaRead), secs(foldedRead), fmt.Sprintf("%.2fx", ratio))
		cfg.record(Record{Experiment: "ingest", Params: map[string]any{"mode": "delta", "batch": batch, "base": baseRows}, Metric: "appends_per_s", Value: rates[0]})
		cfg.record(Record{Experiment: "ingest", Params: map[string]any{"mode": "rebuild", "batch": batch, "base": baseRows}, Metric: "appends_per_s", Value: rates[1]})
		cfg.record(Record{Experiment: "ingest", Params: map[string]any{"batch": batch, "base": baseRows}, Metric: "append_speedup", Value: speedup, Unit: "x"})
		cfg.record(Record{Experiment: "ingest", Params: map[string]any{"mode": "delta", "batch": batch, "base": baseRows}, Metric: "range_read_time", Value: deltaRead, Unit: "s"})
		cfg.record(Record{Experiment: "ingest", Params: map[string]any{"mode": "rebuild", "batch": batch, "base": baseRows}, Metric: "range_read_time", Value: foldedRead, Unit: "s"})
		cfg.record(Record{Experiment: "ingest", Params: map[string]any{"batch": batch, "base": baseRows}, Metric: "read_ratio", Value: ratio, Unit: "x"})
	}
	t.flush()
	fmt.Fprintln(w, "\nshape target: ≥5x sustained appends/s at small batches (the cliff flattened);")
	fmt.Fprintln(w, "base ∪ delta range reads within 1.5x of the pure-immutable twin")
	return nil
}
