package bench

// runReuse is the semantic result-cache experiment (an extension beyond
// the paper, following "Revisiting Reuse in Main Memory Database Systems"
// and "Don't Trash your Intermediate Results, Cache 'em"): decision-support
// traffic repeats itself, so a stream of multi-predicate selections drawn
// from a fixed template pool is replayed against the mmdb layer with the
// qcache result cache on and off, sweeping the pool skew (uniform vs Zipf
// θ=0.9 vs θ=1.2), the append rate (0 vs 8 invalidating AppendRows batches
// spread through the stream), and the cache byte budget (roomy vs tight
// enough that CLOCK must choose).  Appends are excluded from the timing on
// both sides; they cost the same either way and the question is the query
// stream.
//
// The shape target — and the PR's acceptance bar: on a repeated Zipf
// θ≥0.9 stream with no appends, cache-on is ≥5× cache-off (a hit is one
// fingerprint lookup and a small copy; a miss is two index probes, two RID
// materialisations, two radix sorts and a merge intersection).  Appends
// drop the hit rate (every batch moves the generation token) but the
// cached side must stay ahead; the tight budget shows skew structure —
// the hotter the pool, the more of the traffic CLOCK keeps resident.
//
// A second block measures the recycler's intermediate-reuse classes,
// which need overlap rather than repetition: a shifting range window
// (every query a new fingerprint, stitched from the previous window plus
// one gap probe), IN-list subsets replayed from a cached superset, and a
// repeated GroupAggregate that PatchAppend carries across absorbed
// appends.  These streams interleave absorbed AppendRows batches and
// time them IN the stream — the append path is where the classes earn
// their keep: the uncached side re-pays the O(n) merged-overlay build on
// the first indexed range read after every absorb, while the cached side
// patches its entries and probes only the gaps.  Bars: shift ≥2×,
// group-agg ≥5×.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"cssidx"
	"cssidx/internal/mmdb"
	"cssidx/internal/qcache"
	"cssidx/internal/workload"
)

// reuseDists are the template-pool skews; theta 0 draws uniformly.
var reuseDists = []struct {
	name  string
	theta float64
}{
	{"uniform", 0},
	{"zipf θ=0.9", 0.9},
	{"zipf θ=1.2", 1.2},
}

// powerLawPicks draws q template indices in [0, p) from a power law with
// exponent theta (theta 0 = uniform), via an inverse-CDF table over
// uniform draws from g — exact for every theta, unlike rand.Zipf which
// needs s > 1.  Hot ranks are shuffled across the pool so "hot" does not
// mean "numerically first".
func powerLawPicks(g *workload.Gen, p, q int, theta float64) []int {
	cum := make([]float64, p)
	total := 0.0
	for i := 0; i < p; i++ {
		total += math.Pow(float64(i+1), -theta)
		cum[i] = total
	}
	perm := make([]uint32, p)
	for i := range perm {
		perm[i] = uint32(i)
	}
	perm = g.Shuffled(perm)
	// Uniform draws: sample members of an identity slice.
	const res = 1 << 16
	ids := make([]uint32, res)
	for i := range ids {
		ids[i] = uint32(i)
	}
	draws := g.Lookups(ids, q)
	picks := make([]int, q)
	for i, d := range draws {
		u := (float64(d) + 0.5) / res * total
		rank := sort.SearchFloat64s(cum, u)
		if rank >= p {
			rank = p - 1
		}
		picks[i] = int(perm[rank])
	}
	return picks
}

// satAdd is a saturating uint32 add for template upper bounds.
func satAdd(v, w uint32) uint32 {
	if v > math.MaxUint32-w {
		return math.MaxUint32
	}
	return v + w
}

func runReuse(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	g := workload.New(cfg.Seed)
	n := 1_000_000
	pool := 200
	if cfg.Quick {
		n = 100_000
		pool = 50
	}
	queries := cfg.Lookups / 20
	if queries < 4*pool {
		queries = 4 * pool
	}
	const appendBatches = 8
	// ~0.5% selectivity per conjunct: misses do real extraction work while
	// one conjunct run stays a few tens of KB in the cache.
	width := uint32(workload.MaxKey / 200)

	// Two independent predicate columns, values in random row order.
	aVals := g.Shuffled(g.SortedUniform(n))
	bVals := g.Shuffled(g.SortedUniform(n))
	type template struct{ preds []mmdb.RangePred }
	templates := make([]template, pool)
	aLos := g.Lookups(aVals, pool)
	bLos := g.Lookups(bVals, pool)
	for i := range templates {
		templates[i] = template{preds: []mmdb.RangePred{
			{Col: "a", Lo: aLos[i], Hi: satAdd(aLos[i], width)},
			{Col: "b", Lo: bLos[i], Hi: satAdd(bLos[i], width)},
		}}
	}
	// Identical invalidating batches for the cached and uncached sides.
	batches := make([]map[string][]uint32, appendBatches)
	for i := range batches {
		batches[i] = map[string][]uint32{
			"a": g.Lookups(aVals, 500),
			"b": g.Lookups(bVals, 500),
		}
	}

	build := func(opts mmdb.CacheOptions) (*mmdb.Table, error) {
		tab := mmdb.NewTable("fact")
		if err := tab.AddColumn("a", aVals); err != nil {
			return nil, err
		}
		if err := tab.AddColumn("b", bVals); err != nil {
			return nil, err
		}
		if _, err := tab.BuildIndex("a", cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
			return nil, err
		}
		if _, err := tab.BuildIndex("b", cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
			return nil, err
		}
		tab.EnableCache(opts)
		return tab, nil
	}

	// runStream replays the picks, appending a batch every appendEvery
	// queries (0 = never); only query time is accumulated.
	runStream := func(tab *mmdb.Table, picks []int, appends int) (float64, error) {
		appendEvery := 0
		if appends > 0 {
			appendEvery = len(picks) / (appends + 1)
		}
		total := 0.0
		nextBatch := 0
		start := time.Now()
		for qi, pick := range picks {
			if appendEvery > 0 && qi > 0 && qi%appendEvery == 0 && nextBatch < appends {
				total += time.Since(start).Seconds()
				if err := tab.AppendRows(batches[nextBatch]); err != nil {
					return 0, err
				}
				nextBatch++
				start = time.Now()
			}
			rids, _, err := tab.SelectWhere(templates[pick].preds)
			if err != nil {
				return 0, err
			}
			Sink += len(rids)
		}
		total += time.Since(start).Seconds()
		return total, nil
	}

	type cell struct {
		budget string
		opts   mmdb.CacheOptions
		apps   int
	}
	cells := []cell{
		{"off", mmdb.CacheOptions{Disabled: true}, 0},
		{"64MB", mmdb.CacheOptions{}, 0},
		{"4MB", mmdb.CacheOptions{MaxBytes: 4 << 20}, 0},
		{"off", mmdb.CacheOptions{Disabled: true}, appendBatches},
		{"64MB", mmdb.CacheOptions{}, appendBatches},
	}

	fmt.Fprintf(w, "result-cache reuse: %d queries over a pool of %d 2-predicate templates, n=%d rows\n", queries, pool, n)
	fmt.Fprintf(w, "appends = AppendRows batches (500 rows) spread through the stream, each moving the\n")
	fmt.Fprintf(w, "generation token (full invalidation); append time excluded on both sides\n\n")
	t := newTable(w)
	t.row("workload", "appends", "cache", "qps", "hit rate", "vs off")
	for _, d := range reuseDists {
		picks := powerLawPicks(g, pool, queries, d.theta)
		baseline := map[int]float64{} // appends -> cache-off seconds
		for _, c := range cells {
			tab, err := build(c.opts)
			if err != nil {
				return err
			}
			before := tab.CacheStats()
			sec, err := runStream(tab, picks, c.apps)
			if err != nil {
				return err
			}
			after := tab.CacheStats()
			qps := float64(queries) / sec
			if c.budget == "off" {
				baseline[c.apps] = sec
			}
			hits := after.Hits - before.Hits
			misses := after.Misses - before.Misses
			hitRate := 0.0
			if hits+misses > 0 {
				hitRate = float64(hits) / float64(hits+misses)
			}
			hitCell, speedCell := "-", "1.00x"
			speedup := 1.0
			if c.budget != "off" {
				hitCell = fmt.Sprintf("%.0f%%", 100*hitRate)
				speedup = baseline[c.apps] / sec
				speedCell = fmt.Sprintf("%.2fx", speedup)
			}
			t.row(d.name, fmt.Sprintf("%d", c.apps), c.budget,
				fmt.Sprintf("%.0f", qps), hitCell, speedCell)
			rec := Record{
				Experiment: "reuse",
				Params: map[string]any{
					"workload": d.name, "appends": c.apps, "cache": c.budget,
					"n": n, "pool": pool, "queries": queries,
				},
				Metric: "throughput", Value: qps, Unit: "queries/s",
			}
			cfg.record(rec)
			if c.budget != "off" {
				cfg.record(Record{Experiment: "reuse", Params: rec.Params, Metric: "hit_rate", Value: hitRate})
				cfg.record(Record{Experiment: "reuse", Params: rec.Params, Metric: "speedup", Value: speedup, Unit: "x"})
			}
		}
	}
	t.flush()
	fmt.Fprintln(w, "\nshape target: with no appends every repeated template hits and the cached stream")
	fmt.Fprintln(w, "runs ≥5× the uncached one on the Zipf pools (the acceptance bar); the tight budget")
	fmt.Fprintln(w, "holds that hit rate because CLOCK sheds the bulky per-conjunct runs and keeps the")
	fmt.Fprintln(w, "tiny full-query results (benefit per byte); appends cut the hit rate — every batch")
	fmt.Fprintln(w, "moves the generation token — with recovery tracking the skew (hotter pools rewarm")
	fmt.Fprintln(w, "faster), and the cache must stay ahead of off throughout")

	return runRecycler(cfg, w, g, n, aVals, bVals)
}

// runRecycler is the intermediate-reuse block of the reuse experiment: three
// streams where no (or almost no) query repeats a fingerprint exactly, so
// exact-match caching is useless and the recycler classes — range stitching,
// IN-subset replay, GroupAggregate patching — carry the reuse.  Appends are
// absorbed (never folded) and their time is INCLUDED in the stream timing;
// patch-vs-overlay-rebuild under absorbs is the comparison being made.
func runRecycler(cfg Config, w io.Writer, g *workload.Gen, n int, aVals, bVals []uint32) error {
	// Group column over a small domain plus a free-range measure column.
	gdom := make([]uint32, 256)
	for i := range gdom {
		gdom[i] = uint32(i)
	}
	gVals := g.Lookups(gdom, n)
	mVals := g.Shuffled(g.SortedUniform(n))

	shiftQ, insubQ, aggQ := 384, 256, 48
	if cfg.Quick {
		shiftQ, insubQ, aggQ = 128, 96, 16
	}
	// ~0.2% selectivity window marching by an eighth of its width: 7/8 of
	// every query is the previous query.  Narrow windows keep cached runs
	// small (PatchAppend rewrites resident runs on every absorb) while the
	// uncached side's overlay rebuild stays O(n) regardless of width.
	width := uint32(workload.MaxKey / 500)
	step := width / 8

	// Identical absorbed batches for both sides of every stream.
	const streamBatch = 500
	sbatches := make([]map[string][]uint32, 16)
	for i := range sbatches {
		sbatches[i] = map[string][]uint32{
			"a": g.Lookups(aVals, streamBatch),
			"b": g.Lookups(bVals, streamBatch),
			"g": g.Lookups(gdom, streamBatch),
			"m": g.Lookups(mVals, streamBatch),
		}
	}

	// Parent IN-lists; the stream replays rotating ~60% windows of them.
	// Lists are a couple of hundred keys — the break-even needs the replayed
	// probes to be worth skipping, and WorkersFor must stay 1 so the compute
	// path admits grouped entries.
	const parents, parentLen = 8, 200
	parentVals := g.Lookups(bVals, parents*parentLen)

	build := func(opts mmdb.CacheOptions) (*mmdb.Table, error) {
		tab := mmdb.NewTable("stream")
		cols := []struct {
			name string
			vals []uint32
		}{{"a", aVals}, {"b", bVals}, {"g", gVals}, {"m", mVals}}
		for _, c := range cols {
			if err := tab.AddColumn(c.name, c.vals); err != nil {
				return nil, err
			}
		}
		for _, col := range []string{"a", "b"} {
			if _, err := tab.BuildIndex(col, cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
				return nil, err
			}
		}
		// Absorb every batch into the delta layer; a fold would drop the
		// cache and rebuild the base, which is a different experiment
		// (ingest).
		tab.SetAppendPolicy(mmdb.AppendPolicy{MinFoldRows: 1 << 30})
		tab.EnableCache(opts)
		return tab, nil
	}

	// absorb lands batch number k (0-based) into the table.
	absorb := func(tab *mmdb.Table, k int) error {
		return tab.AppendRows(sbatches[k%len(sbatches)])
	}

	runShift := func(tab *mmdb.Table) error {
		lo := uint32(0)
		for qi := 0; qi < shiftQ; qi++ {
			if qi > 0 && qi%8 == 0 {
				if err := absorb(tab, qi/8-1); err != nil {
					return err
				}
			}
			rids, _, err := tab.SelectRange("a", lo, satAdd(lo, width))
			if err != nil {
				return err
			}
			Sink += len(rids)
			lo += step
			if lo > workload.MaxKey-width {
				lo = 0
			}
		}
		return nil
	}

	runInsub := func(tab *mmdb.Table) error {
		for qi := 0; qi < insubQ; qi++ {
			if qi > 0 && qi%32 == 0 {
				if err := absorb(tab, qi/32-1); err != nil {
					return err
				}
			}
			p := qi % parents
			list := parentVals[p*parentLen : (p+1)*parentLen]
			if qi >= parents {
				// Subset replay: a rotating window over the parent list.
				k := parentLen * 3 / 5
				start := (qi * 7) % (parentLen - k)
				list = list[start : start+k]
			}
			rids, _, err := tab.SelectIn("b", list)
			if err != nil {
				return err
			}
			Sink += len(rids)
		}
		return nil
	}

	runAgg := func(tab *mmdb.Table) error {
		for qi := 0; qi < aggQ; qi++ {
			if qi > 0 && qi%8 == 0 {
				if err := absorb(tab, qi/8-1); err != nil {
					return err
				}
			}
			rows, err := mmdb.GroupAggregate(tab, "g", "m", nil)
			if err != nil {
				return err
			}
			Sink += len(rows)
		}
		return nil
	}

	streams := []struct {
		name    string
		bar     string
		queries int
		run     func(*mmdb.Table) error
	}{
		{"shift", "≥2x", shiftQ, runShift},
		{"in-subset", "-", insubQ, runInsub},
		{"group-agg", "≥5x", aggQ, runAgg},
	}

	fmt.Fprintf(w, "\nrecycler streams: overlapping (not repeating) work under absorbed appends,\n")
	fmt.Fprintf(w, "append time included in the stream on both sides\n\n")
	t := newTable(w)
	t.row("stream", "queries", "cache", "secs", "qps", "reuse hits", "vs off", "bar")
	kinds := map[string]any{}
	for _, st := range streams {
		var offSec float64
		// The cached side runs under a deliberately tight budget: the
		// marching window leaves superseded-by-nothing fragments behind it,
		// and CLOCK shedding them caps the resident set PatchAppend rewrites
		// on every absorb — the recent windows stitching feeds on stay warm.
		for _, budget := range []string{"off", "2MB"} {
			opts := mmdb.CacheOptions{Disabled: true}
			if budget != "off" {
				opts = mmdb.CacheOptions{MaxBytes: 2 << 20}
			}
			// Streams are stateful (appends land in the table), so each
			// repeat replays against a fresh build; minimum reported, per the
			// paper's protocol.
			var sec float64
			var s qcache.Stats
			for r := 0; r < cfg.Repeats; r++ {
				tab, err := build(opts)
				if err != nil {
					return err
				}
				start := time.Now()
				if err := st.run(tab); err != nil {
					return err
				}
				if el := time.Since(start).Seconds(); r == 0 || el < sec {
					sec = el
				}
				s = tab.CacheStats()
			}
			qps := float64(st.queries) / sec
			reuseCell, speedCell, barCell := "-", "1.00x", "-"
			speedup := 1.0
			if budget == "off" {
				offSec = sec
			} else {
				speedup = offSec / sec
				speedCell = fmt.Sprintf("%.2fx", speedup)
				barCell = st.bar
				reuseCell = fmt.Sprintf("st=%d/g%d sub=%d sup=%d/k%d agg=%d",
					s.StitchedHits, s.GapProbes, s.SubsetHits, s.SupersetHits, s.MissingKeyProbes, s.AggregateHits)
				kinds[st.name] = map[string]int64{
					"stitched_hits": s.StitchedHits, "gap_probes": s.GapProbes,
					"subset_hits": s.SubsetHits, "superset_hits": s.SupersetHits,
					"missing_key_probes": s.MissingKeyProbes,
					"aggregate_hits":     s.AggregateHits, "patches": s.Patches,
				}
			}
			t.row(st.name, fmt.Sprintf("%d", st.queries), budget,
				secs(sec), fmt.Sprintf("%.0f", qps), reuseCell, speedCell, barCell)
			rec := Record{
				Experiment: "reuse",
				Params: map[string]any{
					"stream": st.name, "cache": budget, "queries": st.queries, "n": n,
				},
				Metric: "throughput", Value: qps, Unit: "queries/s",
			}
			cfg.record(rec)
			if budget != "off" {
				cfg.record(Record{Experiment: "reuse", Params: rec.Params, Metric: "speedup", Value: speedup, Unit: "x"})
			}
		}
	}
	t.flush()
	if cfg.Recorder != nil {
		cfg.Recorder.SetContext("reuse_hit_kinds", kinds)
	}
	fmt.Fprintln(w, "\nshape target: shift stitches every window after the first (one gap probe per")
	fmt.Fprintln(w, "query) and dodges the merged-overlay rebuild the uncached side pays after every")
	fmt.Fprintln(w, "absorb — ≥2× (the acceptance bar); in-subset replays cached superset groups and")
	fmt.Fprintln(w, "is informational (no bar): against cheap indexed point probes replay is about")
	fmt.Fprintln(w, "break-even — its win needs expensive probes or scan-priced recomputes;")
	fmt.Fprintln(w, "group-agg recomputes only the first query — PatchAppend folds each absorbed")
	fmt.Fprintln(w, "batch's (group, measure) pairs into the cached rows — ≥5× (the acceptance bar)")
	return nil
}
