package bench

// runReuse is the semantic result-cache experiment (an extension beyond
// the paper, following "Revisiting Reuse in Main Memory Database Systems"
// and "Don't Trash your Intermediate Results, Cache 'em"): decision-support
// traffic repeats itself, so a stream of multi-predicate selections drawn
// from a fixed template pool is replayed against the mmdb layer with the
// qcache result cache on and off, sweeping the pool skew (uniform vs Zipf
// θ=0.9 vs θ=1.2), the append rate (0 vs 8 invalidating AppendRows batches
// spread through the stream), and the cache byte budget (roomy vs tight
// enough that CLOCK must choose).  Appends are excluded from the timing on
// both sides; they cost the same either way and the question is the query
// stream.
//
// The shape target — and the PR's acceptance bar: on a repeated Zipf
// θ≥0.9 stream with no appends, cache-on is ≥5× cache-off (a hit is one
// fingerprint lookup and a small copy; a miss is two index probes, two RID
// materialisations, two radix sorts and a merge intersection).  Appends
// drop the hit rate (every batch moves the generation token) but the
// cached side must stay ahead; the tight budget shows skew structure —
// the hotter the pool, the more of the traffic CLOCK keeps resident.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"cssidx"
	"cssidx/internal/mmdb"
	"cssidx/internal/workload"
)

// reuseDists are the template-pool skews; theta 0 draws uniformly.
var reuseDists = []struct {
	name  string
	theta float64
}{
	{"uniform", 0},
	{"zipf θ=0.9", 0.9},
	{"zipf θ=1.2", 1.2},
}

// powerLawPicks draws q template indices in [0, p) from a power law with
// exponent theta (theta 0 = uniform), via an inverse-CDF table over
// uniform draws from g — exact for every theta, unlike rand.Zipf which
// needs s > 1.  Hot ranks are shuffled across the pool so "hot" does not
// mean "numerically first".
func powerLawPicks(g *workload.Gen, p, q int, theta float64) []int {
	cum := make([]float64, p)
	total := 0.0
	for i := 0; i < p; i++ {
		total += math.Pow(float64(i+1), -theta)
		cum[i] = total
	}
	perm := make([]uint32, p)
	for i := range perm {
		perm[i] = uint32(i)
	}
	perm = g.Shuffled(perm)
	// Uniform draws: sample members of an identity slice.
	const res = 1 << 16
	ids := make([]uint32, res)
	for i := range ids {
		ids[i] = uint32(i)
	}
	draws := g.Lookups(ids, q)
	picks := make([]int, q)
	for i, d := range draws {
		u := (float64(d) + 0.5) / res * total
		rank := sort.SearchFloat64s(cum, u)
		if rank >= p {
			rank = p - 1
		}
		picks[i] = int(perm[rank])
	}
	return picks
}

// satAdd is a saturating uint32 add for template upper bounds.
func satAdd(v, w uint32) uint32 {
	if v > math.MaxUint32-w {
		return math.MaxUint32
	}
	return v + w
}

func runReuse(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	g := workload.New(cfg.Seed)
	n := 1_000_000
	pool := 200
	if cfg.Quick {
		n = 100_000
		pool = 50
	}
	queries := cfg.Lookups / 20
	if queries < 4*pool {
		queries = 4 * pool
	}
	const appendBatches = 8
	// ~0.5% selectivity per conjunct: misses do real extraction work while
	// one conjunct run stays a few tens of KB in the cache.
	width := uint32(workload.MaxKey / 200)

	// Two independent predicate columns, values in random row order.
	aVals := g.Shuffled(g.SortedUniform(n))
	bVals := g.Shuffled(g.SortedUniform(n))
	type template struct{ preds []mmdb.RangePred }
	templates := make([]template, pool)
	aLos := g.Lookups(aVals, pool)
	bLos := g.Lookups(bVals, pool)
	for i := range templates {
		templates[i] = template{preds: []mmdb.RangePred{
			{Col: "a", Lo: aLos[i], Hi: satAdd(aLos[i], width)},
			{Col: "b", Lo: bLos[i], Hi: satAdd(bLos[i], width)},
		}}
	}
	// Identical invalidating batches for the cached and uncached sides.
	batches := make([]map[string][]uint32, appendBatches)
	for i := range batches {
		batches[i] = map[string][]uint32{
			"a": g.Lookups(aVals, 500),
			"b": g.Lookups(bVals, 500),
		}
	}

	build := func(opts mmdb.CacheOptions) (*mmdb.Table, error) {
		tab := mmdb.NewTable("fact")
		if err := tab.AddColumn("a", aVals); err != nil {
			return nil, err
		}
		if err := tab.AddColumn("b", bVals); err != nil {
			return nil, err
		}
		if _, err := tab.BuildIndex("a", cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
			return nil, err
		}
		if _, err := tab.BuildIndex("b", cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
			return nil, err
		}
		tab.EnableCache(opts)
		return tab, nil
	}

	// runStream replays the picks, appending a batch every appendEvery
	// queries (0 = never); only query time is accumulated.
	runStream := func(tab *mmdb.Table, picks []int, appends int) (float64, error) {
		appendEvery := 0
		if appends > 0 {
			appendEvery = len(picks) / (appends + 1)
		}
		total := 0.0
		nextBatch := 0
		start := time.Now()
		for qi, pick := range picks {
			if appendEvery > 0 && qi > 0 && qi%appendEvery == 0 && nextBatch < appends {
				total += time.Since(start).Seconds()
				if err := tab.AppendRows(batches[nextBatch]); err != nil {
					return 0, err
				}
				nextBatch++
				start = time.Now()
			}
			rids, _, err := tab.SelectWhere(templates[pick].preds)
			if err != nil {
				return 0, err
			}
			Sink += len(rids)
		}
		total += time.Since(start).Seconds()
		return total, nil
	}

	type cell struct {
		budget string
		opts   mmdb.CacheOptions
		apps   int
	}
	cells := []cell{
		{"off", mmdb.CacheOptions{Disabled: true}, 0},
		{"64MB", mmdb.CacheOptions{}, 0},
		{"4MB", mmdb.CacheOptions{MaxBytes: 4 << 20}, 0},
		{"off", mmdb.CacheOptions{Disabled: true}, appendBatches},
		{"64MB", mmdb.CacheOptions{}, appendBatches},
	}

	fmt.Fprintf(w, "result-cache reuse: %d queries over a pool of %d 2-predicate templates, n=%d rows\n", queries, pool, n)
	fmt.Fprintf(w, "appends = AppendRows batches (500 rows) spread through the stream, each moving the\n")
	fmt.Fprintf(w, "generation token (full invalidation); append time excluded on both sides\n\n")
	t := newTable(w)
	t.row("workload", "appends", "cache", "qps", "hit rate", "vs off")
	for _, d := range reuseDists {
		picks := powerLawPicks(g, pool, queries, d.theta)
		baseline := map[int]float64{} // appends -> cache-off seconds
		for _, c := range cells {
			tab, err := build(c.opts)
			if err != nil {
				return err
			}
			before := tab.CacheStats()
			sec, err := runStream(tab, picks, c.apps)
			if err != nil {
				return err
			}
			after := tab.CacheStats()
			qps := float64(queries) / sec
			if c.budget == "off" {
				baseline[c.apps] = sec
			}
			hits := after.Hits - before.Hits
			misses := after.Misses - before.Misses
			hitRate := 0.0
			if hits+misses > 0 {
				hitRate = float64(hits) / float64(hits+misses)
			}
			hitCell, speedCell := "-", "1.00x"
			speedup := 1.0
			if c.budget != "off" {
				hitCell = fmt.Sprintf("%.0f%%", 100*hitRate)
				speedup = baseline[c.apps] / sec
				speedCell = fmt.Sprintf("%.2fx", speedup)
			}
			t.row(d.name, fmt.Sprintf("%d", c.apps), c.budget,
				fmt.Sprintf("%.0f", qps), hitCell, speedCell)
			rec := Record{
				Experiment: "reuse",
				Params: map[string]any{
					"workload": d.name, "appends": c.apps, "cache": c.budget,
					"n": n, "pool": pool, "queries": queries,
				},
				Metric: "throughput", Value: qps, Unit: "queries/s",
			}
			cfg.record(rec)
			if c.budget != "off" {
				cfg.record(Record{Experiment: "reuse", Params: rec.Params, Metric: "hit_rate", Value: hitRate})
				cfg.record(Record{Experiment: "reuse", Params: rec.Params, Metric: "speedup", Value: speedup, Unit: "x"})
			}
		}
	}
	t.flush()
	fmt.Fprintln(w, "\nshape target: with no appends every repeated template hits and the cached stream")
	fmt.Fprintln(w, "runs ≥5× the uncached one on the Zipf pools (the acceptance bar); the tight budget")
	fmt.Fprintln(w, "holds that hit rate because CLOCK sheds the bulky per-conjunct runs and keeps the")
	fmt.Fprintln(w, "tiny full-query results (benefit per byte); appends cut the hit rate — every batch")
	fmt.Fprintln(w, "moves the generation token — with recovery tracking the skew (hotter pools rewarm")
	fmt.Fprintln(w, "faster), and the cache must stay ahead of off throughout")
	return nil
}
