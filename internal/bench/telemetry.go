package bench

// Telemetry experiments (extensions beyond the paper):
//
// runTelemetry proves the observability layer's cost contract: the same
// parallel-batch leg the `parallel` experiment sweeps, measured with
// collection off and on.  Disabled, every hook is a single atomic load,
// so the two legs must be within measurement noise of each other — the
// committed BENCH_telemetry.json pins the overhead below 2%.
//
// runLatency turns the per-surface query histograms into a report: a
// mixed mmdb workload (range, IN-list, conjunction, aggregate, join)
// runs with collection on, and the mmdb_query_ns{surface=...} summaries
// print p50/p90/p99 per surface — the numbers a /metrics scrape of a
// serving process would show.

import (
	"fmt"
	"io"
	"math"

	"cssidx"
	"cssidx/internal/mmdb"
	"cssidx/internal/telemetry"
	"cssidx/internal/workload"
)

// restoreTelemetry snapshots the global switch and returns a func that
// puts it back — experiments must not leak an Enable into later ones.
func restoreTelemetry() func() {
	was := telemetry.Enabled()
	return func() {
		if was {
			telemetry.Enable()
		} else {
			telemetry.Disable()
		}
	}
}

func runTelemetry(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	defer restoreTelemetry()()
	g := workload.New(cfg.Seed)
	n := 10_000_000
	if cfg.Quick {
		n = 200_000
	}
	keys := g.SortedUniform(n)
	probes := g.Lookups(keys, cfg.Lookups)
	bs := 65536
	if bs > len(probes) {
		bs = len(probes)
	}

	legs := []struct {
		surface string
		idx     lowerBounder
		close   func()
	}{}
	level := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)
	par := cssidx.NewParallel(level, cssidx.ParallelOptions{})
	legs = append(legs, struct {
		surface string
		idx     lowerBounder
		close   func()
	}{"parallel", par, nil})
	sharded := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{Shards: 4})
	legs = append(legs, struct {
		surface string
		idx     lowerBounder
		close   func()
	}{"sharded", sharded, sharded.Close})

	fmt.Fprintf(w, "telemetry overhead: LowerBoundBatch over n=%d keys, %d probes, batch %d, min of %d\n\n",
		n, len(probes), bs, cfg.Repeats)
	t := newTable(w)
	t.row("surface", "disabled Mprobes/s", "enabled Mprobes/s", "overhead")
	for _, leg := range legs {
		// Interleave the legs repeat-by-repeat so frequency drift and cache
		// warmth hit both equally, then take the min of each; sequential
		// off-then-on blocks showed ±3% swings in either direction.
		telemetry.Disable()
		measureBatchedLB(leg.idx, probes, bs, 1) // warmup
		offSec, onSec := math.Inf(1), math.Inf(1)
		for r := 0; r < cfg.Repeats; r++ {
			telemetry.Disable()
			if s := measureBatchedLB(leg.idx, probes, bs, 1); s < offSec {
				offSec = s
			}
			telemetry.Enable()
			if s := measureBatchedLB(leg.idx, probes, bs, 1); s < onSec {
				onSec = s
			}
		}
		telemetry.Disable()
		offMps := float64(len(probes)) / offSec / 1e6
		onMps := float64(len(probes)) / onSec / 1e6
		overhead := (onSec/offSec - 1) * 100
		t.row(leg.surface,
			fmt.Sprintf("%.2f", offMps), fmt.Sprintf("%.2f", onMps),
			fmt.Sprintf("%+.2f%%", overhead))
		for _, rec := range []Record{
			{Experiment: "telemetry",
				Params: map[string]any{"surface": leg.surface, "n": n, "batch": bs, "collection": "disabled"},
				Metric: "throughput", Value: offMps, Unit: "Mprobes/s"},
			{Experiment: "telemetry",
				Params: map[string]any{"surface": leg.surface, "n": n, "batch": bs, "collection": "enabled"},
				Metric: "throughput", Value: onMps, Unit: "Mprobes/s"},
			{Experiment: "telemetry",
				Params: map[string]any{"surface": leg.surface, "n": n, "batch": bs},
				Metric: "overhead", Value: overhead, Unit: "pct"},
		} {
			cfg.record(rec)
		}
		if leg.close != nil {
			leg.close()
		}
	}
	t.flush()
	return nil
}

// latencySurfaces orders the per-surface histogram report.
var latencySurfaces = []string{"range", "in", "where", "agg", "join"}

func runLatency(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	defer restoreTelemetry()()
	telemetry.Enable()
	g := workload.New(cfg.Seed)
	n := 2_000_000
	if cfg.Quick {
		n = 100_000
	}
	keys := g.SortedWithDuplicates(n, 2)
	groups := make([]uint32, len(keys))
	for i, k := range keys {
		groups[i] = k % 64
	}
	tab := mmdb.NewTable("bench")
	if err := tab.AddColumn("k", keys); err != nil {
		return err
	}
	if err := tab.AddColumn("g", groups); err != nil {
		return err
	}
	ix, err := tab.BuildIndex("k", cssidx.KindLevelCSS, cssidx.Options{})
	if err != nil {
		return err
	}
	tab.EnableCache(mmdb.CacheOptions{})
	outer := mmdb.NewTable("outer")
	if err := outer.AddColumn("k", g.Lookups(keys, 4096)); err != nil {
		return err
	}
	outer.EnableCache(mmdb.CacheOptions{})

	// Observed counts are deltas against whatever the process already
	// recorded; quantiles below are cumulative per surface (this is the
	// only experiment populating mmdb_query_ns).
	before := make(map[string]uint64, len(latencySurfaces))
	for _, s := range latencySurfaces {
		before[s] = telemetry.H(`mmdb_query_ns{surface="` + s + `"}`).Count()
	}

	iters := cfg.Lookups / 100
	if iters < 64 {
		iters = 64
	}
	points := g.Lookups(keys, iters)
	width := keys[len(keys)-1] / 256
	for i := 0; i < iters; i++ {
		p := points[i]
		if _, _, err := tab.SelectRange("k", p, p+width); err != nil {
			return err
		}
		if _, _, err := tab.SelectIn("k", points[i:min(i+8, iters)]); err != nil {
			return err
		}
		if _, _, err := tab.SelectWhere([]mmdb.RangePred{
			{Col: "k", Lo: p, Hi: p + width},
			{Col: "g", Lo: 0, Hi: 31},
		}); err != nil {
			return err
		}
		if i%16 == 0 {
			if _, err := mmdb.GroupAggregate(tab, "g", "k", nil); err != nil {
				return err
			}
		}
		if i%64 == 0 {
			if _, err := mmdb.JoinWith(outer, "k", ix, mmdb.JoinOptions{}, nil); err != nil {
				return err
			}
		}
	}

	fmt.Fprintf(w, "per-surface query latency: mixed workload over n=%d rows (cache on), %d iterations\n\n", n, iters)
	t := newTable(w)
	t.row("surface", "queries", "p50", "p90", "p99")
	for _, s := range latencySurfaces {
		h := telemetry.H(`mmdb_query_ns{surface="` + s + `"}`)
		qs := h.Quantiles(0.5, 0.9, 0.99)
		count := h.Count() - before[s]
		t.row(s, fmt.Sprintf("%d", count),
			secs(qs[0]/1e9), secs(qs[1]/1e9), secs(qs[2]/1e9))
		for qi, qname := range []string{"p50", "p90", "p99"} {
			cfg.record(Record{
				Experiment: "latency",
				Params:     map[string]any{"surface": s, "n": n, "queries": count},
				Metric:     qname, Value: qs[qi], Unit: "ns",
			})
		}
	}
	t.flush()
	return nil
}
