package bench

// runDurability prices the write-ahead log (internal/wal) against the bare
// in-memory append path.  The same append stream lands on a plain table
// (WAL off — PR 6's delta layer, nothing survives a crash) and on durable
// tables under each fsync policy: GroupCommit acknowledges from the OS
// buffer and fsyncs on an interval, Always fsyncs every batch before
// acknowledging.  Sustained appends/s is the overhead metric; the issue's
// acceptance bar is GroupCommit within 1.5× of WAL-off.
//
// The second table prices recovery: logs of growing size (no checkpoint,
// so replay covers the whole stream) are reopened and the wall-clock from
// Open to a query-ready table is reported against the log's byte size —
// the shape target is linear, since replay is one sequential checksummed
// scan feeding the delta layer.

import (
	"fmt"
	"io"
	"os"
	"time"

	"cssidx/internal/failfs"
	"cssidx/internal/mmdb"
	"cssidx/internal/wal"
	"cssidx/internal/workload"
)

// durBatches pre-generates the append stream (two uint32 columns) so
// generation cost never lands inside the timed region.
func durBatches(g *workload.Gen, dict []uint32, batch, count int) []map[string][]uint32 {
	out := make([]map[string][]uint32, count)
	for i := range out {
		out[i] = map[string][]uint32{
			"k": g.Lookups(dict, batch),
			"v": g.Lookups(dict, batch),
		}
	}
	return out
}

// appendAll drives the stream through one append function and returns
// sustained appends/s.
func appendAll(batches []map[string][]uint32, batch int, apply func(map[string][]uint32) error) (float64, error) {
	start := time.Now()
	for _, b := range batches {
		if err := apply(b); err != nil {
			return 0, err
		}
	}
	return float64(len(batches)*batch) / time.Since(start).Seconds(), nil
}

func runDurability(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	g := workload.New(cfg.Seed)
	batch, totalAppend := 256, 16_384
	if cfg.Quick {
		totalAppend = 4_096
	}
	dict := g.SortedUniform(4096)
	count := totalAppend / batch

	root, err := os.MkdirTemp("", "cssx-durability-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	// --- WAL overhead per fsync policy -----------------------------------
	fmt.Fprintf(w, "append stream of %d rows in batches of %d, WAL off vs each fsync policy\n",
		totalAppend, batch)
	t := newTable(w)
	t.row("policy", "appends/s", "vs WAL off", "durable when")
	policies := []struct {
		name, durable string
		pol           wal.Policy
	}{
		{"off", "never (memory only)", wal.Policy{}},
		{"none", "clean close / checkpoint", wal.None()},
		{"group(2ms)", "≤2ms after ack", wal.GroupCommit(2 * time.Millisecond)},
		{"always", "before ack", wal.Always()},
	}
	var offRate float64
	for i, p := range policies {
		batches := durBatches(g, dict, batch, count)
		var rate float64
		if p.name == "off" {
			// The plain table's first batch defines the schema via AddColumn,
			// exactly as the durable open path does when replaying batch 1.
			tab := mmdb.NewTable("durability")
			rate, err = appendAll(batches, batch, func(b map[string][]uint32) error {
				if tab.Rows() == 0 {
					for name, vals := range b {
						if err := tab.AddColumn(name, vals); err != nil {
							return err
						}
					}
					return nil
				}
				return tab.AppendRows(b)
			})
		} else {
			var d *mmdb.DurableTable
			d, err = mmdb.OpenDurable(failfs.OS, fmt.Sprintf("%s/pol%d", root, i), "t", p.pol)
			if err != nil {
				return err
			}
			rate, err = appendAll(batches, batch, d.AppendRows)
			if cerr := d.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return err
		}
		ratio := 1.0
		if p.name == "off" {
			offRate = rate
		} else {
			ratio = offRate / rate
		}
		t.row(p.name, fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.2fx", ratio), p.durable)
		cfg.record(Record{Experiment: "durability", Params: map[string]any{"policy": p.name, "batch": batch}, Metric: "appends_per_s", Value: rate})
		if p.name != "off" {
			cfg.record(Record{Experiment: "durability", Params: map[string]any{"policy": p.name, "batch": batch}, Metric: "wal_overhead", Value: ratio, Unit: "x"})
		}
	}
	t.flush()

	// --- recovery time vs log size ----------------------------------------
	rowCounts := []int{4_096, 16_384, 65_536}
	if cfg.Quick {
		rowCounts = []int{1_024, 4_096, 16_384}
	}
	fmt.Fprintf(w, "\nrecovery: reopen time vs log size (no checkpoint, full replay)\n")
	t = newTable(w)
	t.row("logged rows", "log size", "recovery", "rows/s replayed")
	for _, rows := range rowCounts {
		dir := fmt.Sprintf("%s/rec%d", root, rows)
		d, err := mmdb.OpenDurable(failfs.OS, dir, "t", wal.None())
		if err != nil {
			return err
		}
		for _, b := range durBatches(g, dict, batch, rows/batch) {
			if err := d.AppendRows(b); err != nil {
				return err
			}
		}
		logBytes := d.LogSize()
		if err := d.Close(); err != nil {
			return err
		}
		rec := Measure(func() {
			r, err := mmdb.OpenDurable(failfs.OS, dir, "t", wal.None())
			if err != nil {
				panic(err) // rehearsed open; only environment failure lands here
			}
			Sink += r.Rows()
			if err := r.Close(); err != nil {
				panic(err)
			}
		}, cfg.Repeats)
		t.row(fmt.Sprintf("%d", rows), mb(float64(logBytes)), secs(rec),
			fmt.Sprintf("%.0f", float64(rows)/rec))
		cfg.record(Record{Experiment: "durability", Params: map[string]any{"rows": rows, "log_bytes": logBytes}, Metric: "recovery_time", Value: rec, Unit: "s"})
	}
	t.flush()
	fmt.Fprintln(w, "\nshape target: group-commit appends/s within 1.5x of WAL off (the acceptance bar);")
	fmt.Fprintln(w, "always pays an fsync per batch; recovery linear in log size")
	return nil
}
