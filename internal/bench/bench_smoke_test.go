package bench

import (
	"bytes"
	"strings"
	"testing"
)

// quickCfg keeps smoke runs small: tiny data, few lookups, one repeat.
func quickCfg() Config {
	return Config{Seed: 1, Lookups: 2000, Quick: true, Repeats: 1}
}

func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments in -short mode")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(quickCfg(), &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestLookupAliases(t *testing.T) {
	if _, ok := Lookup("fig2"); !ok {
		t.Error("fig2 alias missing")
	}
	if _, ok := Lookup("fig14"); !ok {
		t.Error("fig14 missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown id found")
	}
	for _, e := range Experiments() {
		if got, ok := Lookup(e.ID); !ok || got.ID != e.ID {
			t.Errorf("Lookup(%s) failed", e.ID)
		}
		if e.Title == "" {
			t.Errorf("%s untitled", e.ID)
		}
	}
}

func TestTable1Content(t *testing.T) {
	var buf bytes.Buffer
	if err := runTable1(quickCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"R (record identifier)", "10000000", "64 bytes", "1.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig7ContainsPaperValues(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig7(quickCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The headline numbers of Figure 7 at n=10⁷.
	for _, want := range []string{"2.50 MB", "48.00 MB", "T-trees", "N"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureLookupsReturnsPositive(t *testing.T) {
	probes := make([]uint32, 1000)
	s := MeasureLookups(func(k uint32) int { return int(k) }, probes, 2)
	if s < 0 {
		t.Errorf("negative time %v", s)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed != 1 || c.Lookups != 100000 || c.Machine != "ultra" || c.Repeats != 3 {
		t.Errorf("defaults wrong: %+v", c)
	}
	c2 := Config{Machine: "pc", Lookups: 5}.withDefaults()
	if c2.Machine != "pc" || c2.Lookups != 5 {
		t.Errorf("overrides lost: %+v", c2)
	}
}

func TestSecsFormatting(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{5e-5, "50.0µs"},
		{0.25, "0.2500s"},
		{2.5, "2.500s"},
	}
	for _, c := range cases {
		if got := secs(c.in); got != c.want {
			t.Errorf("secs(%v)=%q, want %q", c.in, got, c.want)
		}
	}
}

func TestAscendingKeysStrictlyAscending(t *testing.T) {
	keys := ascendingKeys(100000, 7)
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("not ascending at %d", i)
		}
	}
}
