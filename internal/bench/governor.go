package bench

// Governance experiment (extension beyond the paper):
//
// runGovernor proves the query-governance cost contract: the same mmdb
// workload measured three ways per surface —
//
//	legacy      the non-Ctx surfaces, no governance plumbing at all
//	background  the *Ctx surfaces under context.Background(): the
//	            governor handle resolves to nil and every checkpoint
//	            is a pointer test — the committed BENCH_governor.json
//	            pins this leg within 2% of legacy
//	governed    the *Ctx surfaces under a live (never-tripping) budget
//	            and deadline with the admission controller attached:
//	            what a fully governed query actually pays
//
// The result cache stays off so the legs time execution, not cache hits.

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"cssidx"
	"cssidx/internal/governor"
	"cssidx/internal/mmdb"
	"cssidx/internal/workload"
)

func runGovernor(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	g := workload.New(cfg.Seed)
	n := 2_000_000
	iters := 2048
	if cfg.Quick {
		n = 100_000
		iters = 256
	}
	keys := g.SortedWithDuplicates(n, 2)
	groups := make([]uint32, len(keys))
	for i, k := range keys {
		groups[i] = k % 64
	}
	tab := mmdb.NewTable("bench")
	if err := tab.AddColumn("k", keys); err != nil {
		return err
	}
	if err := tab.AddColumn("g", groups); err != nil {
		return err
	}
	if _, err := tab.BuildIndex("k", cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
		return err
	}
	// Ungoverned queries pass admission for free, so attaching the
	// controller up front leaves the legacy and background legs untouched.
	tab.EnableGovernor(governor.Options{MaxConcurrent: 8, MaxQueue: 8, MaxBytesInFlight: 1 << 30})

	points := g.Lookups(keys, iters)
	inPts := g.Lookups(keys, iters*8) // 8-value IN lists, iters of them
	// Narrow ranges (~n/8192 rows each): the legs differ only in per-query
	// plumbing, so small results keep the measurement on the plumbing
	// instead of bulk rid materialisation, which is identical code.
	width := keys[len(keys)-1] / 8192
	aggIters := 8 // aggregates sweep the whole table; a few suffice
	if cfg.Quick {
		aggIters = 4
	}

	surfaces := []struct {
		name  string
		count int // queries per leg run
		run   func(ctx context.Context) error
	}{
		{"range", iters, func(ctx context.Context) error {
			for _, p := range points {
				var err error
				if ctx == nil {
					_, _, err = tab.SelectRange("k", p, p+width)
				} else {
					_, _, err = tab.SelectRangeCtx(ctx, "k", p, p+width, nil)
				}
				if err != nil {
					return err
				}
			}
			return nil
		}},
		{"in", iters, func(ctx context.Context) error {
			for i := 0; i+8 <= len(inPts); i += 8 {
				vals := inPts[i : i+8]
				var err error
				if ctx == nil {
					_, _, err = tab.SelectIn("k", vals)
				} else {
					_, _, err = tab.SelectInCtx(ctx, "k", vals, nil)
				}
				if err != nil {
					return err
				}
			}
			return nil
		}},
		{"agg", aggIters, func(ctx context.Context) error {
			for i := 0; i < aggIters; i++ {
				var err error
				if ctx == nil {
					_, err = mmdb.GroupAggregate(tab, "g", "k", nil)
				} else {
					_, err = mmdb.GroupAggregateCtx(ctx, tab, "g", "k", nil, nil)
				}
				if err != nil {
					return err
				}
			}
			return nil
		}},
	}

	// governedCtx builds the live-governance context: a deadline and
	// budget far too generous to trip, so the legs time the plumbing,
	// never an abort.
	governedCtx := func() (context.Context, context.CancelFunc) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
		return governor.WithBudget(ctx, 1<<40), cancel
	}

	fmt.Fprintf(w, "governance overhead: mmdb workload over n=%d rows (range/in %d queries, agg %d), min of %d\n\n",
		n, iters, aggIters, cfg.Repeats)
	t := newTable(w)
	t.row("surface", "legacy q/s", "background q/s", "governed q/s", "bg overhead", "gov overhead")
	for _, s := range surfaces {
		legs := []struct {
			name string
			run  func() error
		}{
			{"legacy", func() error { return s.run(nil) }},
			{"background", func() error { return s.run(context.Background()) }},
			{"governed", func() error {
				ctx, cancel := governedCtx()
				defer cancel()
				return s.run(ctx)
			}},
		}
		// Interleave the legs repeat-by-repeat (the telemetry experiment's
		// protocol) so frequency drift and cache warmth hit all three
		// equally, then take each leg's minimum.
		best := make([]float64, len(legs))
		for i := range best {
			best[i] = math.Inf(1)
		}
		for _, l := range legs { // warmup
			if err := l.run(); err != nil {
				return fmt.Errorf("governor %s %s: %w", s.name, l.name, err)
			}
		}
		for r := 0; r < cfg.Repeats; r++ {
			for i, l := range legs {
				// A collection boundary before each timed run keeps one
				// leg's garbage from billing the next leg's clock —
				// single-core runs showed 2× swings without it.
				runtime.GC()
				start := time.Now()
				if err := l.run(); err != nil {
					return fmt.Errorf("governor %s %s: %w", s.name, l.name, err)
				}
				if sec := time.Since(start).Seconds(); sec < best[i] {
					best[i] = sec
				}
			}
		}
		qps := func(sec float64) float64 { return float64(s.count) / sec }
		bgOver := (best[1]/best[0] - 1) * 100
		govOver := (best[2]/best[0] - 1) * 100
		t.row(s.name,
			fmt.Sprintf("%.0f", qps(best[0])),
			fmt.Sprintf("%.0f", qps(best[1])),
			fmt.Sprintf("%.0f", qps(best[2])),
			fmt.Sprintf("%+.2f%%", bgOver),
			fmt.Sprintf("%+.2f%%", govOver))
		for i, l := range legs {
			cfg.record(Record{Experiment: "governor",
				Params: map[string]any{"surface": s.name, "n": n, "leg": l.name},
				Metric: "throughput", Value: qps(best[i]), Unit: "queries/s"})
		}
		cfg.record(Record{Experiment: "governor",
			Params: map[string]any{"surface": s.name, "n": n, "leg": "background"},
			Metric: "overhead", Value: bgOver, Unit: "pct"})
		cfg.record(Record{Experiment: "governor",
			Params: map[string]any{"surface": s.name, "n": n, "leg": "governed"},
			Metric: "overhead", Value: govOver, Unit: "pct"})
	}
	t.flush()
	fmt.Fprintln(w, "\ncontract: the background leg — Ctx surfaces, no governance attached — stays")
	fmt.Fprintln(w, "within noise of legacy (≤2% pinned in BENCH_governor.json); governed pays the")
	fmt.Fprintln(w, "admission gate and budget checkpoints, the price of an interruptible query")
	return nil
}
