package bench

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"cssidx"
	"cssidx/internal/analytic"
	"cssidx/internal/cachesim"
	"cssidx/internal/csstree"
	"cssidx/internal/mem"
	"cssidx/internal/simidx"
	"cssidx/internal/workload"
)

// machineFor maps the config's machine name to a cache preset.
func machineFor(cfg Config) *cachesim.Machine {
	if cfg.Machine == "pc" {
		return cachesim.PentiumII()
	}
	return cachesim.UltraSparcII()
}

// --- table1 ------------------------------------------------------------------

func runTable1(cfg Config, w io.Writer) error {
	p := analytic.DefaultParams()
	t := newTable(w)
	t.row("Parameter", "Typical Value")
	for _, row := range []struct {
		label, param, unit string
		value              float64
	}{
		{"R (record identifier)", "R", "bytes", float64(p.R)},
		{"K (key)", "K", "bytes", float64(p.K)},
		{"P (child pointer)", "P", "bytes", float64(p.P)},
		{"n (records)", "n", "", float64(p.N)},
		{"h (hash fudge factor)", "h", "", p.H},
		{"c (cache line)", "c", "bytes", float64(p.C)},
		{"s (node size in cache lines)", "s", "", float64(p.S)},
	} {
		cell := strconv.FormatFloat(row.value, 'f', -1, 64)
		if row.unit != "" {
			cell += " " + row.unit
		}
		t.row(row.label, cell)
		cfg.record(Record{
			Experiment: "table1",
			Params:     map[string]any{"param": row.param},
			Metric:     "value", Value: row.value, Unit: row.unit,
		})
	}
	t.flush()
	return nil
}

// --- fig5 ---------------------------------------------------------------------

func runFig5(cfg Config, w io.Writer) error {
	t := newTable(w)
	t.row("m", "comparison ratio (level/full)", "cache access ratio (level/full)")
	for _, r := range analytic.LevelFullRatios(60) {
		if r.M%4 != 0 {
			continue
		}
		t.row(fmt.Sprintf("%d", r.M), fmt.Sprintf("%.4f", r.Comparison), fmt.Sprintf("%.4f", r.CacheAcc))
		cfg.record(Record{Experiment: "fig5", Params: map[string]any{"m": r.M, "ratio": "comparison"}, Metric: "level_over_full", Value: r.Comparison})
		cfg.record(Record{Experiment: "fig5", Params: map[string]any{"m": r.M, "ratio": "cache-access"}, Metric: "level_over_full", Value: r.CacheAcc})
	}
	t.flush()
	return nil
}

// --- fig6 ---------------------------------------------------------------------

func runFig6(cfg Config, w io.Writer) error {
	p := analytic.DefaultParams()
	rows := analytic.TimeModel(p)
	fmt.Fprintf(w, "typical values: n=%d, m=%d slots/node, node=%d bytes\n\n", p.N, p.M(), p.S*p.C)
	t := newTable(w)
	t.row("method", "branching", "levels", "cmps/internal", "cmps/leaf", "total cmps", "cache misses")
	for _, r := range rows {
		t.row(r.Method.String(),
			fmt.Sprintf("%.0f", r.Branching),
			fmt.Sprintf("%.2f", r.Levels),
			fmt.Sprintf("%.2f", r.CmpsInternal),
			fmt.Sprintf("%.2f", r.CmpsLeaf),
			fmt.Sprintf("%.2f", r.TotalCmps),
			fmt.Sprintf("%.2f", r.CacheMisses))
		cfg.record(Record{Experiment: "fig6", Params: map[string]any{"method": r.Method.String()}, Metric: "total_cmps", Value: r.TotalCmps})
		cfg.record(Record{Experiment: "fig6", Params: map[string]any{"method": r.Method.String()}, Metric: "cache_misses", Value: r.CacheMisses})
	}
	t.flush()
	return nil
}

// --- fig7 ---------------------------------------------------------------------

func runFig7(cfg Config, w io.Writer) error {
	p := analytic.DefaultParams()
	t := newTable(w)
	t.row("method", "space (indirect)", "space (direct)", "RID-ordered access")
	for _, m := range analytic.Methods() {
		ordered := "Y"
		if !analytic.SupportsRIDOrder(m) {
			ordered = "N"
		}
		t.row(m.String(), mb(analytic.SpaceIndirect(m, p)), mb(analytic.SpaceDirect(m, p)), ordered)
		cfg.record(Record{Experiment: "fig7", Params: map[string]any{"method": m.String(), "mode": "indirect"}, Metric: "space", Value: analytic.SpaceIndirect(m, p), Unit: "bytes"})
		cfg.record(Record{Experiment: "fig7", Params: map[string]any{"method": m.String(), "mode": "direct"}, Metric: "space", Value: analytic.SpaceDirect(m, p), Unit: "bytes"})
	}
	t.flush()
	return nil
}

// --- fig8 ---------------------------------------------------------------------

func runFig8(cfg Config, w io.Writer) error {
	p := analytic.DefaultParams()
	for _, mode := range []string{"indirect", "direct"} {
		fmt.Fprintf(w, "(%s)\n", mode)
		t := newTable(w)
		header := []string{"n"}
		for _, m := range analytic.Methods() {
			header = append(header, m.String())
		}
		t.row(header...)
		for n := 10_000_000; n <= 90_000_000; n += 20_000_000 {
			pp := p
			pp.N = n
			cells := []string{fmt.Sprintf("%.0e", float64(n))}
			for _, m := range analytic.Methods() {
				var v float64
				if mode == "indirect" {
					v = analytic.SpaceIndirect(m, pp)
				} else {
					v = analytic.SpaceDirect(m, pp)
				}
				cells = append(cells, mb(v))
				cfg.record(Record{Experiment: "fig8", Params: map[string]any{"method": m.String(), "mode": mode, "n": n}, Metric: "space", Value: v, Unit: "bytes"})
			}
			t.row(cells...)
		}
		t.flush()
		fmt.Fprintln(w)
	}
	return nil
}

// --- fig9 ---------------------------------------------------------------------

// ascendingKeys generates n strictly ascending keys in O(n) without sorting;
// key distribution is irrelevant to build time.
func ascendingKeys(n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint32, n)
	cur := uint32(0)
	for i := range keys {
		cur += 1 + uint32(rng.Intn(120))
		keys[i] = cur
	}
	return keys
}

func runFig9(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	sizes := []int{1_000_000, 5_000_000, 10_000_000, 15_000_000, 20_000_000, 25_000_000}
	if cfg.Quick {
		sizes = []int{200_000, 500_000, 1_000_000, 2_000_000}
	}
	t := newTable(w)
	t.row("size of sorted array", "full CSS-tree build", "level CSS-tree build", "full keys/s", "level keys/s")
	for _, n := range sizes {
		keys := ascendingKeys(n, cfg.Seed)
		full := Measure(func() {
			tr := csstree.BuildFull(keys, 16)
			Sink += tr.SpaceBytes()
		}, cfg.Repeats)
		level := Measure(func() {
			tr := csstree.BuildLevel(keys, 16)
			Sink += tr.SpaceBytes()
		}, cfg.Repeats)
		t.row(fmt.Sprintf("%d", n), secs(full), secs(level),
			fmt.Sprintf("%.1fM", float64(n)/full/1e6),
			fmt.Sprintf("%.1fM", float64(n)/level/1e6))
		cfg.record(Record{Experiment: "fig9", Params: map[string]any{"variant": "full", "n": n}, Metric: "build_time", Value: full, Unit: "s"})
		cfg.record(Record{Experiment: "fig9", Params: map[string]any{"variant": "level", "n": n}, Metric: "build_time", Value: level, Unit: "s"})
	}
	t.flush()
	fmt.Fprintln(w, "\nshape target (paper): linear in n; 25M keys < 1s; level builds faster than full")
	return nil
}

// --- fig10/fig11: vary array size ------------------------------------------------

// simMethods constructs every method's simulated index in the paper's legend
// order.  nodeSlots is the tree node size in 4-byte slots.
func simMethods(keys []uint32, nodeSlots int, hashDir int) []simidx.Sim {
	ttreeCap := (nodeSlots*4 - 8) / 8
	if ttreeCap < 2 {
		ttreeCap = 2
	}
	return []simidx.Sim{
		simidx.NewBinarySearch(keys, cachesim.NewAddrAlloc()),
		simidx.NewBST(keys, cachesim.NewAddrAlloc()),
		simidx.NewInterpolationSearch(keys, cachesim.NewAddrAlloc()),
		simidx.NewTTree(keys, ttreeCap, cachesim.NewAddrAlloc()),
		simidx.NewBPlusTree(keys, evenSlots(nodeSlots), cachesim.NewAddrAlloc()),
		simidx.NewFullCSS(keys, nodeSlots, cachesim.NewAddrAlloc()),
		simidx.NewLevelCSS(keys, mem.NextPow2(nodeSlots), cachesim.NewAddrAlloc()),
		simidx.NewHash(keys, hashDir, mem.CacheLine, cachesim.NewAddrAlloc()),
	}
}

// evenSlots rounds slots up to the even count B+-trees need.
func evenSlots(s int) int {
	if s%2 == 1 {
		return s + 1
	}
	return s
}

// hostMethods constructs every method's real index for wall-clock timing.
func hostMethods(keys []uint32, nodeBytes int, hashDir int) []cssidx.Index {
	return []cssidx.Index{
		cssidx.NewBinarySearch(keys),
		cssidx.NewBST(keys),
		cssidx.NewInterpolation(keys),
		cssidx.NewTTree(keys, nodeBytes),
		cssidx.NewBPlusTree(keys, nodeBytes),
		cssidx.NewFullCSS(keys, nodeBytes),
		cssidx.NewLevelCSS(keys, nodeBytes),
		cssidx.NewHash(keys, hashDir),
	}
}

func varyArraySizes(cfg Config) []int {
	if cfg.Quick {
		return []int{100, 1000, 10_000, 100_000}
	}
	return []int{100, 1000, 10_000, 100_000, 1_000_000, 10_000_000}
}

func runVaryArray(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	machine := machineFor(cfg)
	id := "fig10"
	if cfg.Machine == "pc" {
		id = "fig11"
	}
	g := workload.New(cfg.Seed)

	for _, nodeSlots := range []int{8, 16} {
		fmt.Fprintf(w, "simulated on %s, %d integers per node, %d lookups\n", machine.Name, nodeSlots, cfg.Lookups)
		t := newTable(w)
		t.row("array size", "binary", "tree bin", "interp", "T-tree", "B+-tree", "full CSS", "level CSS", "hash")
		for _, n := range varyArraySizes(cfg) {
			keys := g.SortedUniform(n)
			probes := g.Lookups(keys, cfg.Lookups)
			cells := []string{fmt.Sprintf("%d", n)}
			for _, s := range simMethods(keys, nodeSlots, cssidx.DefaultHashDirSize(n)) {
				res := simidx.Run(s, machine, probes)
				cells = append(cells, secs(res.Seconds))
				cfg.record(Record{Experiment: id, Params: map[string]any{
					"method": s.Name(), "n": n, "node_slots": nodeSlots, "mode": "simulated",
				}, Metric: "lookup_time", Value: res.Seconds, Unit: "s"})
			}
			t.row(cells...)
		}
		t.flush()
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "host wall-clock, 64-byte nodes, %d lookups (min of %d runs)\n", cfg.Lookups, cfg.Repeats)
	t := newTable(w)
	t.row("array size", "binary", "tree bin", "interp", "T-tree", "B+-tree", "full CSS", "level CSS", "hash")
	for _, n := range varyArraySizes(cfg) {
		keys := g.SortedUniform(n)
		probes := g.Lookups(keys, cfg.Lookups)
		cells := []string{fmt.Sprintf("%d", n)}
		for _, idx := range hostMethods(keys, 64, cssidx.DefaultHashDirSize(n)) {
			sec := MeasureLookups(idx.Search, probes, cfg.Repeats)
			cells = append(cells, secs(sec))
			cfg.record(Record{Experiment: id, Params: map[string]any{
				"method": idx.Name(), "n": n, "mode": "host",
			}, Metric: "lookup_time", Value: sec, Unit: "s"})
		}
		t.row(cells...)
	}
	t.flush()
	fmt.Fprintln(w, "\nshape target (paper): all methods converge in-cache; at large n CSS-trees beat")
	fmt.Fprintln(w, "binary search and T-trees by >2x, B+-trees sit between, hash is fastest at ~20x the space")
	return nil
}

func runFig10(cfg Config, w io.Writer) error {
	cfg.Machine = "ultra"
	return runVaryArray(cfg, w)
}

func runFig11(cfg Config, w io.Writer) error {
	cfg.Machine = "pc"
	return runVaryArray(cfg, w)
}

// --- fig12/fig13: vary node size --------------------------------------------------

func runVaryNode(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	machine := machineFor(cfg)
	id := "fig12"
	if cfg.Machine == "pc" {
		id = "fig13"
	}
	g := workload.New(cfg.Seed)
	rows := []int{5_000_000, 10_000_000}
	if cfg.Quick {
		rows = []int{500_000, 1_000_000}
	}
	entries := []int{4, 8, 16, 24, 32, 48, 64, 96, 128}

	for _, n := range rows {
		keys := g.SortedUniform(n)
		probes := g.Lookups(keys, cfg.Lookups)
		fmt.Fprintf(w, "simulated on %s, %d rows, %d lookups\n", machine.Name, n, cfg.Lookups)
		t := newTable(w)
		t.row("entries/node", "T-tree", "B+-tree", "full CSS", "level CSS")
		for _, e := range entries {
			cells := []string{fmt.Sprintf("%d", e)}
			rec := func(method string, sec float64) {
				cfg.record(Record{Experiment: id, Params: map[string]any{
					"method": method, "n": n, "entries": e,
				}, Metric: "lookup_time", Value: sec, Unit: "s"})
			}
			// T-tree: e 4-byte slots → (4e−8)/8 pairs.
			if cap := (4*e - 8) / 8; cap >= 2 {
				res := simidx.Run(simidx.NewTTree(keys, cap, cachesim.NewAddrAlloc()), machine, probes)
				cells = append(cells, secs(res.Seconds))
				rec("T-tree", res.Seconds)
			} else {
				cells = append(cells, "-")
			}
			if e%2 == 0 {
				res := simidx.Run(simidx.NewBPlusTree(keys, e, cachesim.NewAddrAlloc()), machine, probes)
				cells = append(cells, secs(res.Seconds))
				rec("B+-tree", res.Seconds)
			} else {
				cells = append(cells, "-")
			}
			res := simidx.Run(simidx.NewFullCSS(keys, e, cachesim.NewAddrAlloc()), machine, probes)
			cells = append(cells, secs(res.Seconds))
			rec("full CSS", res.Seconds)
			if mem.IsPow2(e) {
				res := simidx.Run(simidx.NewLevelCSS(keys, e, cachesim.NewAddrAlloc()), machine, probes)
				cells = append(cells, secs(res.Seconds))
				rec("level CSS", res.Seconds)
			} else {
				cells = append(cells, "-")
			}
			t.row(cells...)
		}
		t.flush()
		fmt.Fprintln(w)
	}

	// Hash directory sweep (the hash points of Figure 12).
	n := rows[0]
	keys := g.SortedUniform(n)
	probes := g.Lookups(keys, cfg.Lookups)
	fmt.Fprintf(w, "hash directory sweep, %d rows (simulated on %s)\n", n, machine.Name)
	dirs := []int{1 << 18, 1 << 19, 1 << 20, 1 << 21, 1 << 22, 1 << 23}
	if cfg.Quick {
		dirs = []int{1 << 12, 1 << 14, 1 << 16, 1 << 18}
	}
	t := newTable(w)
	t.row("directory size", "time", "space")
	for _, d := range dirs {
		sim := simidx.NewHash(keys, d, mem.CacheLine, cachesim.NewAddrAlloc())
		res := simidx.Run(sim, machine, probes)
		t.row(fmt.Sprintf("2^%d", mem.Log2(d)), secs(res.Seconds), mb(float64(sim.SpaceBytes())))
		cfg.record(Record{Experiment: id, Params: map[string]any{
			"method": "hash", "n": n, "dir": d,
		}, Metric: "lookup_time", Value: res.Seconds, Unit: "s"})
	}
	t.flush()
	fmt.Fprintln(w, "\nshape target (paper): CSS minimum at the cache-line node size; bumps at")
	fmt.Fprintln(w, "non-multiple node sizes; T-trees flat and slow; larger hash directories buy time with space")
	return nil
}

func runFig12(cfg Config, w io.Writer) error {
	cfg.Machine = "ultra"
	return runVaryNode(cfg, w)
}

func runFig13(cfg Config, w io.Writer) error {
	cfg.Machine = "pc"
	return runVaryNode(cfg, w)
}

// --- fig14 (= fig2): space/time trade-offs ------------------------------------------

func runFig14(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	g := workload.New(cfg.Seed)
	n := 5_000_000
	if cfg.Quick {
		n = 200_000
	}
	keys := g.SortedUniform(n)
	probes := g.Lookups(keys, cfg.Lookups)

	var points []analytic.Point
	label := func(m analytic.Method, lbl string, space int, t float64) {
		points = append(points, analytic.Point{Method: m, Label: lbl, Space: float64(space), Time: t})
		cfg.record(Record{Experiment: "fig14", Params: map[string]any{
			"method": m.String(), "config": lbl, "space_bytes": space,
		}, Metric: "lookup_time", Value: t, Unit: "s"})
	}

	label(analytic.BinarySearch, "", 0,
		MeasureLookups(cssidx.NewBinarySearch(keys).Search, probes, cfg.Repeats))

	nodeBytes := []int{32, 64, 128, 256, 512}
	for _, nb := range nodeBytes {
		tt := cssidx.NewTTree(keys, nb)
		label(analytic.TTree, fmt.Sprintf("%dB node", nb), tt.SpaceBytes(),
			MeasureLookups(tt.Search, probes, cfg.Repeats))
		bp := cssidx.NewBPlusTree(keys, nb)
		label(analytic.BPlusTree, fmt.Sprintf("%dB node", nb), bp.SpaceBytes(),
			MeasureLookups(bp.Search, probes, cfg.Repeats))
		fc := cssidx.NewFullCSS(keys, nb)
		label(analytic.FullCSS, fmt.Sprintf("%dB node", nb), fc.SpaceBytes(),
			MeasureLookups(fc.Search, probes, cfg.Repeats))
		lc := cssidx.NewLevelCSS(keys, nb)
		label(analytic.LevelCSS, fmt.Sprintf("%dB node", nb), lc.SpaceBytes(),
			MeasureLookups(lc.Search, probes, cfg.Repeats))
	}
	hashDirs := []int{1 << 18, 1 << 19, 1 << 20, 1 << 21, 1 << 22}
	if cfg.Quick {
		hashDirs = []int{1 << 12, 1 << 14, 1 << 16}
	}
	for _, d := range hashDirs {
		hx := cssidx.NewHash(keys, d)
		// Direct accounting: hashing still needs an ordered RID list for
		// ordered access (Figure 7), so add n·R.
		label(analytic.Hash, fmt.Sprintf("dir 2^%d", mem.Log2(d)), hx.SpaceBytes()+4*n,
			MeasureLookups(hx.Search, probes, cfg.Repeats))
	}

	frontier := analytic.Frontier(points)
	onFrontier := map[string]bool{}
	for _, p := range frontier {
		onFrontier[p.Method.String()+p.Label] = true
	}

	fmt.Fprintf(w, "host wall-clock, n=%d, %d lookups (min of %d runs); * = on the stepped frontier\n",
		n, cfg.Lookups, cfg.Repeats)
	t := newTable(w)
	t.row("method", "config", "space", "time", "frontier")
	for _, p := range points {
		mark := ""
		if onFrontier[p.Method.String()+p.Label] {
			mark = "*"
		}
		t.row(p.Method.String(), p.Label, mb(p.Space), secs(p.Time), mark)
	}
	t.flush()
	fmt.Fprintln(w, "\nshape target (paper): T-trees and B+-trees dominated by CSS-trees; frontier runs")
	fmt.Fprintln(w, "binary search → CSS-trees → hash, trading space for time")
	return nil
}
