// Package bptree implements the search-optimised, main-memory B+-tree the
// paper benchmarks against CSS-trees (§3.4, §6.2).
//
// Matching the paper's implementation choices:
//
//   - Nodes are a fixed number of 4-byte slots (typically one cache line).
//   - In internal nodes each key is physically adjacent to a child pointer
//     ("we forced each key and child pointer to be adjacent to each other").
//     With one more pointer than keys, a node of S slots holds ⌊(S−1)/2⌋
//     keys — the branching factor is about half a CSS-tree's, which is
//     exactly why the paper's B+-tree needs more levels, and hence more
//     cache misses, for the same node size.
//   - Record pointers live in leaf nodes only; leaves hold ⟨key,RID⟩ pairs.
//   - The tree is bulk-loaded 100% full from a sorted array and rebuilt on
//     batch updates ("in an OLAP environment, we can use all the slots in a
//     B+-tree node and rebuild the tree when batch updates arrive").
//
// Child references are 4-byte arena offsets rather than machine pointers,
// which keeps the structure GC-transparent and reproduces the paper's
// 4-byte pointer size (P in Table 1).
package bptree

import (
	"fmt"

	"cssidx/internal/mem"
)

// Tree is a bulk-loaded, read-only B+-tree over 4-byte keys.
// Build one with Build; the zero value is an empty tree.
type Tree struct {
	inner    []uint32 // internal nodes, `slots` each; layout [c0,k0,c1,k1,…,c_f(,pad)]
	leaves   []uint32 // leaf nodes, `slots` each; layout [k0,r0,k1,r1,…]
	levelOff []int    // slot offset of each internal level, root level first
	slots    int      // S: 4-byte slots per node
	fanout   int      // children per internal node = ⌊(S−1)/2⌋ + 1
	pairs    int      // ⟨key,RID⟩ pairs per leaf = S/2
	nLeaf    int      // number of leaf nodes
	n        int      // number of keys
}

// Build constructs a B+-tree over the sorted slice keys with the given node
// size in 4-byte slots (slots=16 → 64-byte nodes).  RIDs are the positions
// in keys, so lookups return sorted-array indexes like the other methods.
// slots must be even and ≥ 4.
func Build(keys []uint32, slots int) *Tree {
	if slots < 4 || slots%2 != 0 {
		panic(fmt.Sprintf("bptree: node slots %d must be even and ≥ 4", slots))
	}
	t := &Tree{
		slots:  slots,
		fanout: (slots-1)/2 + 1,
		pairs:  slots / 2,
		n:      len(keys),
	}
	if len(keys) == 0 {
		return t
	}

	// Leaves: pack pairs left to right, 100% full except the last, whose
	// spare slots replicate the final pair so in-leaf search needs no count.
	t.nLeaf = mem.CeilDiv(len(keys), t.pairs)
	t.leaves = mem.AlignedU32(t.nLeaf*slots, mem.CacheLine)
	for i := 0; i < t.nLeaf*t.pairs; i++ {
		src := i
		if src >= len(keys) {
			src = len(keys) - 1
		}
		base := (i/t.pairs)*slots + 2*(i%t.pairs)
		t.leaves[base] = keys[src]
		t.leaves[base+1] = uint32(src)
	}

	// Internal levels, bottom-up.  childMax[i] is the largest key in child
	// i's subtree; the separator left-adjacent to a child pointer is that
	// child's subtree max, which with leftmost-≥ node search routes
	// duplicates to their first occurrence.
	childMax := make([]uint32, t.nLeaf)
	for i := range childMax {
		end := (i + 1) * t.pairs
		if end > len(keys) {
			end = len(keys)
		}
		childMax[i] = keys[end-1]
	}
	var arenas [][]uint32 // bottom-up
	childCount := t.nLeaf
	for childCount > 1 {
		parentCount := mem.CeilDiv(childCount, t.fanout)
		arena := mem.AlignedU32(parentCount*slots, mem.CacheLine)
		maxes := make([]uint32, parentCount)
		for p := 0; p < parentCount; p++ {
			first := p * t.fanout
			last := first + t.fanout
			if last > childCount {
				last = childCount
			}
			base := p * slots
			for j := 0; j < t.fanout; j++ {
				c := first + j
				if c >= last {
					c = last - 1 // pad short nodes with the final child
				}
				arena[base+2*j] = uint32(c)
				if j < t.fanout-1 {
					arena[base+2*j+1] = childMax[c]
				}
			}
			maxes[p] = childMax[last-1]
		}
		arenas = append(arenas, arena)
		childMax = maxes
		childCount = parentCount
	}

	// Concatenate levels top-down (root level first) and record offsets.
	total := 0
	for _, a := range arenas {
		total += len(a)
	}
	t.inner = mem.AlignedU32(total, mem.CacheLine)
	t.levelOff = make([]int, len(arenas))
	off := 0
	for i := len(arenas) - 1; i >= 0; i-- {
		t.levelOff[len(arenas)-1-i] = off
		copy(t.inner[off:], arenas[i])
		off += len(arenas[i])
	}
	return t
}

// Search returns the RID (sorted-array index) of the leftmost occurrence of
// key and true, or 0,false if absent.
func (t *Tree) Search(key uint32) (uint32, bool) {
	i := t.LowerBound(key)
	if i < t.n && t.leafKey(i) == key {
		return uint32(i), true
	}
	return 0, false
}

// LowerBound returns the smallest global pair index i whose key is ≥ key,
// or n.  Pair indexes equal sorted-array indexes because leaves are packed
// full in key order.
func (t *Tree) LowerBound(key uint32) int {
	if t.n == 0 {
		return 0
	}
	node := 0
	for _, off := range t.levelOff {
		base := off + node*t.slots
		j := t.branch(base, key)
		node = int(t.inner[base+2*j])
	}
	// node is a leaf number; find the leftmost pair ≥ key within it.
	lo, hi := 0, t.pairs
	base := node * t.slots
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.leaves[base+2*mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := node*t.pairs + lo
	if i > t.n {
		// Ran past the real data into the last leaf's padding (or past a
		// full leaf whose successors don't exist): everything is < key.
		i = t.n
	}
	return i
}

// leafKey reads the key of global pair index i.
func (t *Tree) leafKey(i int) uint32 {
	return t.leaves[(i/t.pairs)*t.slots+2*(i%t.pairs)]
}

// branch finds the child branch within the internal node at slot offset
// base: the leftmost separator ≥ key (binary search over fanout−1
// separators in the interleaved layout).
func (t *Tree) branch(base int, key uint32) int {
	lo, hi := 0, t.fanout-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.inner[base+2*mid+1] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// EqualRange returns [first,last) of pair indexes holding key.
func (t *Tree) EqualRange(key uint32) (first, last int) {
	first = t.LowerBound(key)
	last = first
	for last < t.n && t.leafKey(last) == key {
		last++
	}
	return first, last
}

// SpaceBytes returns the total size of internal and leaf arenas — unlike
// CSS-trees the leaves duplicate the keys and RIDs, which is where the
// paper's nK(P+K)/(sc−P−K) overhead comes from.
func (t *Tree) SpaceBytes() int {
	return mem.SliceBytes(t.inner) + mem.SliceBytes(t.leaves)
}

// InnerBytes returns the internal-node arena size only.
func (t *Tree) InnerBytes() int { return mem.SliceBytes(t.inner) }

// Levels returns the number of node levels a search traverses, counting the
// leaf level.
func (t *Tree) Levels() int { return len(t.levelOff) + 1 }

// Fanout returns the branching factor.
func (t *Tree) Fanout() int { return t.fanout }

// Inner returns the internal-node arena (read-only), for the cache simulator.
func (t *Tree) Inner() []uint32 { return t.inner }

// LeafArena returns the leaf-node arena (read-only), for the cache simulator.
func (t *Tree) LeafArena() []uint32 { return t.leaves }

// LevelOffsets returns the slot offset of each internal level, root first,
// for the cache simulator.
func (t *Tree) LevelOffsets() []int { return t.levelOff }

// Slots returns the node size in uint32 slots.
func (t *Tree) Slots() int { return t.slots }

// Pairs returns the ⟨key,RID⟩ pairs per leaf.
func (t *Tree) Pairs() int { return t.pairs }

// Len returns the number of indexed keys.
func (t *Tree) Len() int { return t.n }

// String describes the tree for diagnostics.
func (t *Tree) String() string {
	return fmt.Sprintf("B+-tree{n=%d slots=%d fanout=%d levels=%d space=%s}",
		t.n, t.slots, t.fanout, t.Levels(), mem.Bytes(t.SpaceBytes()))
}
