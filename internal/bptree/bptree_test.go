package bptree

import (
	"sort"
	"testing"
	"testing/quick"

	"cssidx/internal/workload"
)

func refLowerBound(a []uint32, key uint32) int {
	return sort.Search(len(a), func(i int) bool { return a[i] >= key })
}

func TestExhaustiveSmallArrays(t *testing.T) {
	for _, slots := range []int{4, 6, 8, 16} {
		for n := 0; n <= 130; n++ {
			keys := make([]uint32, n)
			for i := range keys {
				keys[i] = uint32(3*i + 5)
			}
			tr := Build(keys, slots)
			probes := []uint32{0, ^uint32(0)}
			for _, k := range keys {
				probes = append(probes, k, k-1, k+1)
			}
			for _, p := range probes {
				want := refLowerBound(keys, p)
				if got := tr.LowerBound(p); got != want {
					t.Fatalf("slots=%d n=%d: LowerBound(%d)=%d, want %d", slots, n, p, got, want)
				}
			}
		}
	}
}

func TestSearchFoundAndMissing(t *testing.T) {
	g := workload.New(40)
	keys := g.SortedDistinct(20000)
	for _, slots := range []int{8, 16, 32, 64, 128} {
		tr := Build(keys, slots)
		for _, k := range g.Lookups(keys, 2000) {
			rid, ok := tr.Search(k)
			if !ok || keys[rid] != k {
				t.Fatalf("slots=%d: Search(%d)=(%d,%v)", slots, k, rid, ok)
			}
		}
		for _, k := range g.Misses(keys, 2000) {
			if _, ok := tr.Search(k); ok {
				t.Fatalf("slots=%d: found absent key %d", slots, k)
			}
		}
	}
}

func TestLeftmostDuplicate(t *testing.T) {
	g := workload.New(41)
	keys := g.SortedWithDuplicates(30000, 8)
	tr := Build(keys, 16)
	for _, k := range g.Lookups(keys, 3000) {
		rid, ok := tr.Search(k)
		want := refLowerBound(keys, k)
		if !ok || int(rid) != want {
			t.Fatalf("Search(%d)=(%d,%v), want leftmost %d", k, rid, ok, want)
		}
	}
}

func TestEqualRange(t *testing.T) {
	g := workload.New(42)
	keys := g.SortedWithDuplicates(5000, 4)
	tr := Build(keys, 16)
	probes := append(g.Lookups(keys, 500), g.Misses(keys, 500)...)
	for _, k := range probes {
		f, l := tr.EqualRange(k)
		wantF := refLowerBound(keys, k)
		wantL := sort.Search(len(keys), func(i int) bool { return keys[i] > k })
		if f != wantF || l != wantL {
			t.Fatalf("EqualRange(%d)=[%d,%d), want [%d,%d)", k, f, l, wantF, wantL)
		}
	}
}

func TestFanoutIsHalfCSS(t *testing.T) {
	// §3.4: "for any given node size, only half of the space can be used to
	// store keys".  16 slots → 7 keys, 8 children.
	tr := Build([]uint32{1, 2, 3}, 16)
	if tr.Fanout() != 8 {
		t.Errorf("fanout=%d, want 8", tr.Fanout())
	}
	tr = Build([]uint32{1, 2, 3}, 8)
	if tr.Fanout() != 4 {
		t.Errorf("fanout=%d, want 4", tr.Fanout())
	}
}

func TestLevelsDeeperThanCSSFanout(t *testing.T) {
	g := workload.New(43)
	keys := g.SortedDistinct(100000)
	tr := Build(keys, 16)
	// 100000/8 = 12500 leaves; fanout 8: 8⁴=4096 < 12500 ≤ 8⁵ → 5 internal
	// levels + leaf = 6.
	if tr.Levels() != 6 {
		t.Errorf("levels=%d, want 6", tr.Levels())
	}
}

func TestQuickProperty(t *testing.T) {
	f := func(raw []uint16, probe uint16) bool {
		keys := make([]uint32, len(raw))
		for i, v := range raw {
			keys[i] = uint32(v)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		tr := Build(keys, 8)
		return tr.LowerBound(uint32(probe)) == refLowerBound(keys, uint32(probe))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	tr := Build(nil, 16)
	if _, ok := tr.Search(5); ok {
		t.Error("found key in empty tree")
	}
	if got := tr.LowerBound(5); got != 0 {
		t.Errorf("empty LowerBound=%d", got)
	}
	tr = Build([]uint32{42}, 16)
	if rid, ok := tr.Search(42); !ok || rid != 0 {
		t.Errorf("single: (%d,%v)", rid, ok)
	}
	if _, ok := tr.Search(41); ok {
		t.Error("single: found absent")
	}
}

func TestBuildPanicsOnBadSlots(t *testing.T) {
	for _, slots := range []int{0, 2, 3, 7, 15} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("slots=%d: expected panic", slots)
				}
			}()
			Build([]uint32{1}, slots)
		}()
	}
}

func TestSpaceLargerThanCSSDirectory(t *testing.T) {
	// §5.2 / Figure 7: B+-trees use more space than CSS-tree directories
	// because leaves duplicate keys and RIDs.
	g := workload.New(44)
	keys := g.SortedDistinct(100000)
	tr := Build(keys, 16)
	// Leaves alone are ≥ 2 slots per key = 8 bytes/key.
	if tr.SpaceBytes() < 8*len(keys) {
		t.Errorf("space %d implausibly small", tr.SpaceBytes())
	}
	if tr.InnerBytes() >= tr.SpaceBytes() {
		t.Error("inner arena not smaller than total")
	}
}

func TestBoundaryKeys(t *testing.T) {
	keys := []uint32{0, 0, 1, ^uint32(0) - 1, ^uint32(0), ^uint32(0)}
	tr := Build(keys, 4)
	if rid, ok := tr.Search(0); !ok || rid != 0 {
		t.Errorf("Search(0)=(%d,%v)", rid, ok)
	}
	if rid, ok := tr.Search(^uint32(0)); !ok || rid != 4 {
		t.Errorf("Search(max)=(%d,%v)", rid, ok)
	}
	if got := tr.LowerBound(2); got != 3 {
		t.Errorf("LowerBound(2)=%d", got)
	}
}

func TestLargeRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("large build in -short mode")
	}
	g := workload.New(45)
	keys := g.SortedDistinct(500000)
	tr := Build(keys, 16)
	probes := append(g.Lookups(keys, 10000), g.Misses(keys, 10000)...)
	for _, k := range probes {
		if got, want := tr.LowerBound(k), refLowerBound(keys, k); got != want {
			t.Fatalf("LowerBound(%d)=%d, want %d", k, got, want)
		}
	}
}
