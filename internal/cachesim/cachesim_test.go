package cachesim

import (
	"testing"
)

// tiny returns a machine with one small, fully analysable level.
func tiny(capacity, line, assoc int) *Machine {
	return &Machine{
		Name:    "tiny",
		ClockHz: 1e6,
		Levels: []Level{
			{Name: "L1", Capacity: capacity, Line: line, Assoc: assoc, MissPenalty: 10},
		},
		CmpCycles:  1,
		MoveCycles: 1,
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := New(tiny(1024, 64, 1))
	h.Access(0, 4)
	h.Access(4, 4) // same line
	s := h.Stats()
	if s.Misses[0] != 1 || s.Hits[0] != 1 {
		t.Errorf("misses=%d hits=%d, want 1/1", s.Misses[0], s.Hits[0])
	}
}

func TestAccessSpanningLines(t *testing.T) {
	h := New(tiny(1024, 64, 1))
	h.Access(60, 8) // crosses the 64-byte boundary
	s := h.Stats()
	if s.Accesses != 2 || s.Misses[0] != 2 {
		t.Errorf("accesses=%d misses=%d, want 2/2", s.Accesses, s.Misses[0])
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// capacity 1024, line 64, direct mapped → 16 sets.  Addresses 0 and
	// 1024 map to set 0 and evict each other every time.
	h := New(tiny(1024, 64, 1))
	for i := 0; i < 10; i++ {
		h.Access(0, 4)
		h.Access(1024, 4)
	}
	s := h.Stats()
	if s.Hits[0] != 0 {
		t.Errorf("conflict pair should never hit, got %d hits", s.Hits[0])
	}
	if s.Misses[0] != 20 {
		t.Errorf("misses=%d, want 20", s.Misses[0])
	}
}

func TestAssociativityResolvesConflict(t *testing.T) {
	// Same addresses with 2-way associativity coexist in one set.
	h := New(tiny(1024, 64, 2))
	for i := 0; i < 10; i++ {
		h.Access(0, 4)
		h.Access(1024, 4)
	}
	s := h.Stats()
	if s.Misses[0] != 2 {
		t.Errorf("misses=%d, want 2 cold misses", s.Misses[0])
	}
	if s.Hits[0] != 18 {
		t.Errorf("hits=%d, want 18", s.Hits[0])
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// 2-way set: touch A, B (set full), then A again (A most recent), then
	// C (evicts B), then A must still hit and B must miss.
	h := New(tiny(128, 64, 2)) // 1 set of 2 ways
	A, B, C := uint64(0), uint64(64), uint64(128)
	h.Access(A, 4)
	h.Access(B, 4)
	h.Access(A, 4) // refresh A
	h.Access(C, 4) // evicts B (LRU)
	h.Reset()
	h.Access(A, 4)
	if h.Stats().Hits[0] != 1 {
		t.Error("A should still be cached")
	}
	h.Access(B, 4)
	if h.Stats().Misses[0] != 1 {
		t.Error("B should have been evicted")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	// Sequentially touching a region smaller than the cache twice: second
	// pass is all hits.
	h := New(tiny(4096, 64, 1))
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			h.Reset()
		}
		for a := uint64(0); a < 4096; a += 64 {
			h.Access(a, 4)
		}
	}
	s := h.Stats()
	if s.Misses[0] != 0 {
		t.Errorf("warm pass misses=%d, want 0", s.Misses[0])
	}
	if s.Hits[0] != 64 {
		t.Errorf("warm pass hits=%d, want 64", s.Hits[0])
	}
}

func TestTwoLevelPropagation(t *testing.T) {
	m := &Machine{
		Name:    "2L",
		ClockHz: 1e6,
		Levels: []Level{
			{Name: "L1", Capacity: 128, Line: 32, Assoc: 1, MissPenalty: 5},
			{Name: "L2", Capacity: 4096, Line: 32, Assoc: 1, MissPenalty: 50},
		},
	}
	h := New(m)
	// Touch 16 distinct lines: L1 (4 lines) thrashes, L2 (128 lines) holds all.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 16*32; a += 32 {
			h.Access(a, 4)
		}
	}
	s := h.Stats()
	if s.Misses[1] != 16 {
		t.Errorf("L2 misses=%d, want 16 cold only", s.Misses[1])
	}
	if s.Misses[0] != 32 {
		t.Errorf("L1 misses=%d, want 32 (thrash both passes)", s.Misses[0])
	}
	// Penalty: 32*5 + 16*50 = 960.
	if got := s.PenaltyCycles(m); got != 960 {
		t.Errorf("penalty=%v, want 960", got)
	}
}

func TestPaperMachinePresets(t *testing.T) {
	u := UltraSparcII()
	if u.Levels[0].Sets() != 16<<10/32 {
		t.Errorf("ultra L1 sets=%d", u.Levels[0].Sets())
	}
	if u.Levels[1].Line != 64 || u.Levels[1].Assoc != 1 {
		t.Error("ultra L2 config wrong")
	}
	p := PentiumII()
	if p.Levels[0].Assoc != 4 || p.Levels[1].Capacity != 512<<10 {
		t.Error("pentium config wrong")
	}
	if p.Levels[1].Line != 32 {
		t.Error("pentium L2 line must be 32B per §6.1")
	}
	// The paper's premise: an L2 miss costs an order of magnitude more than
	// a comparison.
	if u.Levels[1].MissPenalty < 10*u.CmpCycles {
		t.Error("ultra L2 penalty implausibly small")
	}
}

func TestModernServerPreset(t *testing.T) {
	m := ModernServer()
	if len(m.Levels) != 3 {
		t.Fatalf("modern machine has %d levels, want 3", len(m.Levels))
	}
	if m.Levels[2].Capacity < 100<<20 {
		t.Error("modern L3 should be huge — that is its whole point")
	}
	// Penalties must grow down the hierarchy.
	for i := 1; i < len(m.Levels); i++ {
		if m.Levels[i].MissPenalty <= m.Levels[i-1].MissPenalty {
			t.Errorf("penalty not increasing at level %d", i)
		}
	}
	// The hierarchy must actually instantiate.
	h := New(m)
	h.Access(0, 4)
	if h.Stats().Misses[2] != 1 {
		t.Error("cold access should miss all three levels")
	}
}

func TestAddrAlloc(t *testing.T) {
	a := NewAddrAlloc()
	x := a.Alloc(100, 64)
	y := a.Alloc(10, 64)
	if x%64 != 0 || y%64 != 0 {
		t.Error("allocations not aligned")
	}
	if y < x+100 {
		t.Error("allocations overlap")
	}
	z := a.Alloc(4, 4096)
	if z%4096 != 0 {
		t.Error("page alignment violated")
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	for _, m := range []*Machine{
		{Levels: []Level{{Capacity: 100, Line: 48, Assoc: 1}}},
		{Levels: []Level{{Capacity: 100, Line: 32, Assoc: 3}}},
		{Levels: []Level{{Capacity: 64, Line: 32, Assoc: 0}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			New(m)
		}()
	}
}

func TestZeroSizeAccessIgnored(t *testing.T) {
	h := New(tiny(1024, 64, 1))
	h.Access(0, 0)
	if h.Stats().Accesses != 0 {
		t.Error("zero-size access counted")
	}
}
