// Package cachesim simulates a multi-level set-associative cache hierarchy
// with LRU replacement, parameterised exactly like the paper describes a
// cache: ⟨capacity, block size, associativity⟩ (§3.1, §6.1).
//
// The paper's evaluation hardware no longer exists; this simulator stands in
// for it.  Driven by the address traces of internal/simidx it reproduces the
// cache-miss behaviour that the paper's wall-clock measurements reflect: the
// miss counts depend only on the access pattern and the cache geometry, not
// on the host CPU, so the figures regenerate deterministically on any
// machine.  Presets cover both machines in §6.1:
//
//	Ultra Sparc II: L1 ⟨16 KB, 32 B, 1-way⟩, L2 ⟨1 MB, 64 B, 1-way⟩, 296 MHz
//	Pentium II:     L1 ⟨16 KB, 32 B, 4-way⟩, L2 ⟨512 KB, 32 B, 4-way⟩, 333 MHz
package cachesim

import "fmt"

// Level parameterises one cache level.
type Level struct {
	Name        string
	Capacity    int     // bytes
	Line        int     // block size in bytes (power of two)
	Assoc       int     // ways per set (1 = direct-mapped)
	MissPenalty float64 // extra CPU cycles when this level misses
}

// Sets returns the number of sets of the level.
func (l Level) Sets() int { return l.Capacity / (l.Line * l.Assoc) }

// Machine is a cache hierarchy plus the CPU cost constants the §5.1 time
// model needs to turn event counts into seconds.
type Machine struct {
	Name       string
	ClockHz    float64
	Levels     []Level
	CmpCycles  float64 // one key comparison (register-resident)
	MoveCycles float64 // computing/following one child reference (D or A in §5.1)
}

// UltraSparcII returns the paper's primary evaluation machine.
// Miss penalties follow the paper's observation that "the miss penalty for
// the second level of cache is larger than that of the on-chip cache" and
// that a miss costs an order of magnitude more than a unit computation.
func UltraSparcII() *Machine {
	return &Machine{
		Name:    "Ultra Sparc II (296 MHz)",
		ClockHz: 296e6,
		Levels: []Level{
			{Name: "L1", Capacity: 16 << 10, Line: 32, Assoc: 1, MissPenalty: 6},
			{Name: "L2", Capacity: 1 << 20, Line: 64, Assoc: 1, MissPenalty: 60},
		},
		CmpCycles:  2,
		MoveCycles: 4,
	}
}

// PentiumII returns the paper's second evaluation machine.
func PentiumII() *Machine {
	return &Machine{
		Name:    "Pentium II (333 MHz)",
		ClockHz: 333e6,
		Levels: []Level{
			{Name: "L1", Capacity: 16 << 10, Line: 32, Assoc: 4, MissPenalty: 6},
			{Name: "L2", Capacity: 512 << 10, Line: 32, Assoc: 4, MissPenalty: 45},
		},
		CmpCycles:  2,
		MoveCycles: 4,
	}
}

// ModernServer returns a 2020s server-class hierarchy (three levels, a
// multi-hundred-megabyte L3).  It is not from the paper: it exists to
// demonstrate the paper's own thesis in reverse — when a giant cheap cache
// absorbs the working set, the miss penalty that powers the CSS-tree
// advantage shrinks, and the method gaps compress exactly as the host
// wall-clock measurements in EXPERIMENTS.md show.
func ModernServer() *Machine {
	return &Machine{
		Name:    "modern server (2.1 GHz, 256 MB L3)",
		ClockHz: 2.1e9,
		Levels: []Level{
			{Name: "L1", Capacity: 48 << 10, Line: 64, Assoc: 12, MissPenalty: 4},
			{Name: "L2", Capacity: 2 << 20, Line: 64, Assoc: 16, MissPenalty: 12},
			{Name: "L3", Capacity: 256 << 20, Line: 64, Assoc: 16, MissPenalty: 40},
		},
		CmpCycles:  1,
		MoveCycles: 1,
	}
}

// Hierarchy is a running instance of a machine's caches.
type Hierarchy struct {
	levels []levelState
	stats  Stats
}

type levelState struct {
	cfg      Level
	lineBits uint
	sets     int
	// tags[set*assoc+way]; ways ordered most- to least-recently used.
	tags  []uint64
	valid []bool
}

// Stats accumulates hierarchy activity.
type Stats struct {
	Accesses int64
	Hits     []int64 // per level
	Misses   []int64 // per level; Misses[last] are memory accesses
}

// New builds a cold hierarchy for the machine.
func New(m *Machine) *Hierarchy {
	h := &Hierarchy{
		levels: make([]levelState, len(m.Levels)),
		stats: Stats{
			Hits:   make([]int64, len(m.Levels)),
			Misses: make([]int64, len(m.Levels)),
		},
	}
	for i, cfg := range m.Levels {
		if cfg.Line <= 0 || cfg.Line&(cfg.Line-1) != 0 {
			panic(fmt.Sprintf("cachesim: line size %d not a power of two", cfg.Line))
		}
		if cfg.Assoc < 1 || cfg.Capacity%(cfg.Line*cfg.Assoc) != 0 {
			panic(fmt.Sprintf("cachesim: level %q capacity/assoc mismatch", cfg.Name))
		}
		s := levelState{cfg: cfg, sets: cfg.Sets()}
		for 1<<s.lineBits < cfg.Line {
			s.lineBits++
		}
		s.tags = make([]uint64, s.sets*cfg.Assoc)
		s.valid = make([]bool, s.sets*cfg.Assoc)
		h.levels[i] = s
	}
	return h
}

// Access touches size bytes at addr: every cache line spanned is looked up
// in L1; misses propagate to the next level, with LRU replacement at each.
func (h *Hierarchy) Access(addr uint64, size int) {
	if size <= 0 {
		return
	}
	first := h.levels[0]
	start := addr >> first.lineBits
	end := (addr + uint64(size) - 1) >> first.lineBits
	for lineAddr := start << first.lineBits; ; lineAddr += uint64(first.cfg.Line) {
		h.accessLine(lineAddr)
		if lineAddr>>first.lineBits >= end {
			break
		}
	}
}

// accessLine pushes one L1-line-sized reference through the hierarchy.
func (h *Hierarchy) accessLine(addr uint64) {
	h.stats.Accesses++
	for i := range h.levels {
		if h.levels[i].touch(addr) {
			h.stats.Hits[i]++
			return
		}
		h.stats.Misses[i]++
	}
}

// touch looks the address up in one level, refreshing LRU order; on miss it
// installs the line (evicting the LRU way) and reports false.
func (s *levelState) touch(addr uint64) bool {
	tag := addr >> s.lineBits
	set := int(tag % uint64(s.sets))
	base := set * s.cfg.Assoc
	for w := 0; w < s.cfg.Assoc; w++ {
		if s.valid[base+w] && s.tags[base+w] == tag {
			// Move to front (most recently used).
			for ; w > 0; w-- {
				s.tags[base+w] = s.tags[base+w-1]
				s.valid[base+w] = s.valid[base+w-1]
			}
			s.tags[base] = tag
			s.valid[base] = true
			return true
		}
	}
	// Miss: evict the last way.
	for w := s.cfg.Assoc - 1; w > 0; w-- {
		s.tags[base+w] = s.tags[base+w-1]
		s.valid[base+w] = s.valid[base+w-1]
	}
	s.tags[base] = tag
	s.valid[base] = true
	return false
}

// Stats returns a copy of the accumulated counters.
func (h *Hierarchy) Stats() Stats {
	out := h.stats
	out.Hits = append([]int64(nil), h.stats.Hits...)
	out.Misses = append([]int64(nil), h.stats.Misses...)
	return out
}

// Reset clears counters but keeps cache contents (for measuring a warm
// steady state after a warm-up pass).
func (h *Hierarchy) Reset() {
	h.stats.Accesses = 0
	for i := range h.stats.Hits {
		h.stats.Hits[i] = 0
		h.stats.Misses[i] = 0
	}
}

// PenaltyCycles converts the recorded misses into stall cycles on machine m.
func (s Stats) PenaltyCycles(m *Machine) float64 {
	total := 0.0
	for i, lvl := range m.Levels {
		if i < len(s.Misses) {
			total += float64(s.Misses[i]) * lvl.MissPenalty
		}
	}
	return total
}

// AddrAlloc hands out non-overlapping, aligned virtual address ranges so
// simulated structures occupy distinct memory, the way separate allocations
// would on the real machine.
type AddrAlloc struct{ next uint64 }

// NewAddrAlloc starts allocating at a non-zero base.
func NewAddrAlloc() *AddrAlloc { return &AddrAlloc{next: 1 << 20} }

// Alloc reserves size bytes aligned to align (power of two) and returns the
// base address.
func (a *AddrAlloc) Alloc(size int, align int) uint64 {
	if align <= 0 || align&(align-1) != 0 {
		panic("cachesim: bad alignment")
	}
	mask := uint64(align - 1)
	a.next = (a.next + mask) &^ mask
	base := a.next
	a.next += uint64(size)
	return base
}
