package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestTraceNilSafe: every method on a nil Trace/Span is a no-op.
func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	sp := tr.Root()
	sp = sp.Child("x").AttrInt("n", 1).Attr("s", "v").AttrBool("b", true).SetDur(time.Second)
	sp.End()
	tr.Finish()
	if tr.String() != "" || sp.Name() != "" || sp.Dur() != 0 || sp.Find("x") != nil || sp.AttrValue("n") != "" {
		t.Fatal("nil trace leaked state")
	}
}

// TestTraceFind: spans are discoverable by name with their attributes.
func TestTraceFind(t *testing.T) {
	tr := NewTrace("q")
	tr.Root().Child("plan").AttrInt("est_rows", 42)
	tr.Finish()
	if got := tr.Root().Find("plan").AttrValue("est_rows"); got != "42" {
		t.Fatalf("est_rows = %q", got)
	}
}

// TestExplainGolden renders a hand-built trace (fixed durations — no
// clock reads reach the output) against the checked-in golden tree.
func TestExplainGolden(t *testing.T) {
	tr := NewTrace("SelectRange")
	root := tr.Root()
	root.Attr("table", "orders").Attr("col", "amount").AttrInt("lo", 100).AttrInt("hi", 900)
	root.SetDur(1234 * time.Microsecond)

	plan := root.Child("plan")
	plan.AttrBool("use_index", true).AttrInt("est_rows", 5000).Attr("why", "selectivity 0.5% below scan break-even")
	plan.SetDur(2 * time.Microsecond)

	cache := root.Child("cache")
	cache.Attr("outcome", "stitched").AttrInt("gap_probes", 2)
	cache.SetDur(87 * time.Nanosecond)

	exec := root.Child("execute")
	exec.Attr("path", "sharded").AttrInt("shards_touched", 3).AttrInt("delta_runs", 1).AttrInt("workers", 4).AttrInt("rows", 4980)
	exec.SetDur(1100 * time.Microsecond)
	probe := exec.Child("gap-probe")
	probe.AttrInt("gaps", 2).SetDur(90 * time.Microsecond)
	admit := root.Child("admit")
	admit.AttrInt("bytes", 19920).AttrBool("admitted", true)
	admit.SetDur(3 * time.Microsecond)

	got := tr.String()
	golden := filepath.Join("testdata", "explain.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("explain tree mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
