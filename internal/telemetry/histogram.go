package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram buckets: exact below 16, then log-linear — 16 linear
// sub-buckets per power-of-two octave — up to the full uint64 range.
// Quantiles interpolate within a bucket, so the relative error of any
// reported quantile is bounded by the sub-bucket width, ~1/16 ≈ 6%.
const (
	histLinear  = 16 // values < 16 get exact buckets
	histSubBits = 4  // 16 sub-buckets per octave
	histBuckets = histLinear + (64-histSubBits-1)*histLinear + histLinear
)

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < histLinear {
		return int(v)
	}
	exp := bits.Len64(v) // ≥ 5 here
	return histLinear + (exp-5)*histLinear + int((v>>(exp-5))&(histLinear-1))
}

// bucketLow returns the smallest value mapping to bucket i — the inverse
// of bucketOf on bucket lower bounds.
func bucketLow(i int) uint64 {
	if i < histLinear {
		return uint64(i)
	}
	oct := (i - histLinear) / histLinear
	sub := (i - histLinear) % histLinear
	return uint64(histLinear+sub) << oct
}

// bucketHigh returns the exclusive upper bound of bucket i as a float
// (the top bucket's bound exceeds uint64).
func bucketHigh(i int) float64 {
	if i+1 < histBuckets {
		return float64(bucketLow(i + 1))
	}
	return math.Ldexp(1, 64)
}

// Histogram is a fixed-size log-linear histogram of uint64 samples
// (typically nanoseconds).  Observe is allocation-free and gated on the
// global switch; Quantile/Count/Sum read a live snapshot of the buckets.
type Histogram struct {
	name    string
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Name returns the histogram's registered metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records one sample when telemetry is enabled.
func (h *Histogram) Observe(v uint64) {
	if !enabled.Load() {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Since records the nanoseconds elapsed from a start obtained via Now.
// A zero start (telemetry was disabled at the Now call) records nothing,
// so an enable racing a bracketed stage never records a garbage duration.
func (h *Histogram) Since(start time.Time) {
	if start.IsZero() || !enabled.Load() {
		return
	}
	h.Observe(uint64(time.Since(start)))
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the recorded samples,
// interpolated within the landing bucket; 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return quantileOf(&counts, total, q)
}

// Quantiles returns several quantiles from one bucket snapshot — what the
// exporters use so p50/p90/p99 of one scrape agree on the sample set.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileOf(&counts, total, q)
	}
	return out
}

// quantileOf walks a bucket snapshot to the target rank and interpolates
// linearly inside the landing bucket.
func quantileOf(counts *[histBuckets]uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range counts {
		n := float64(counts[i])
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := float64(bucketLow(i)), bucketHigh(i)
			frac := (rank - cum) / n
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	// Rank landed past the last non-empty bucket (q == 1 with rounding):
	// return that bucket's upper bound.
	for i := histBuckets - 1; i >= 0; i-- {
		if counts[i] != 0 {
			return bucketHigh(i)
		}
	}
	return 0
}
