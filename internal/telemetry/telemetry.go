// Package telemetry is the engine-wide observability layer: a
// zero-dependency metrics registry (counters, gauges, log-linear latency
// histograms) plus a per-query trace facility rendered as an EXPLAIN
// ANALYZE-style tree.
//
// The package is built for a cache-conscious engine, so the telemetry is
// cache-conscious too:
//
//   - Counters are sharded across padded per-core cells, so concurrent
//     batch workers incrementing the same counter never bounce one cache
//     line between cores.
//   - Collection is disabled by default.  Every hot-path operation
//     (Counter.Add, Histogram.Observe, Now) begins with a single atomic
//     load of the global switch and returns immediately when telemetry is
//     off — no clock reads, no stores, no allocation.
//   - Nothing on the record path allocates: counters and histograms are
//     fixed arrays of atomics, created once and looked up by package-level
//     variable, never per operation.
//
// Metric names follow the Prometheus data model with inline labels:
// "wal_fsync_ns", "shard_probes_total{shard=\"3\"}".  One process-wide
// Default registry aggregates every layer; Handler / Mux expose it over
// HTTP in Prometheus text and expvar-style JSON, with pprof wired in.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// enabled is the global collection switch.  The hot path pays exactly one
// atomic load to consult it.
var enabled atomic.Bool

// Enable turns collection on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns collection off; counters keep their accumulated values.
func Disable() { enabled.Store(false) }

// Enabled reports whether collection is on.  Instrumentation sites that
// need a timestamp should use Now instead, which folds the check into the
// clock read.
func Enabled() bool { return enabled.Load() }

// Now returns the current time when telemetry is enabled and the zero
// Time otherwise, so instrumentation can bracket a stage with
//
//	start := telemetry.Now()
//	... work ...
//	hist.Since(start)
//
// and pay only the single atomic load when collection is off.
func Now() time.Time {
	if !enabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// cellCount is the number of padded counter cells (a power of two).  16
// covers the worker counts the parallel engine deploys.
const cellCount = 16

// paddedCell is one counter cell padded out to its own cache lines, so two
// cells never share a line (64-byte lines; 128 guards against adjacent-line
// prefetching).
type paddedCell struct {
	n atomic.Uint64
	_ [120]byte
}

// cellIndex picks this goroutine's counter cell by hashing the address of
// a stack local: goroutine stacks are spread across the address space, so
// concurrent workers land on different cells with high probability, and a
// given goroutine keeps hitting the same (already-owned) line within a
// batch.
func cellIndex() int {
	var x byte
	p := uintptr(unsafe.Pointer(&x))
	return int(((p >> 6) * 0x9E3779B97F4A7C15) >> 58 & (cellCount - 1))
}

// Counter is a monotonically increasing counter sharded across padded
// per-core cells.  Add/Inc are allocation-free and contention-free on the
// hot path; Value sums the cells (reads may be slightly stale under
// concurrent writers, as with any statistical counter).
type Counter struct {
	name  string
	cells [cellCount]paddedCell
}

// Name returns the counter's registered metric name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n when telemetry is enabled.
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	c.cells[cellIndex()].n.Add(n)
}

// Inc increments the counter by one when telemetry is enabled.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the cells.
func (c *Counter) Value() uint64 {
	var n uint64
	for i := range c.cells {
		n += c.cells[i].n.Load()
	}
	return n
}

// Gauge is an instantaneous integer value (queue depth, bytes held).
// Unlike Counter it is not gated on the global switch: gauges are set from
// slow paths (calibrations, admissions) where the store is already cheap,
// and keeping them live means scrapes see state even when hot-path
// collection is off.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the gauge's registered metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value loads the value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeFunc is a read-on-scrape metric: fn is evaluated at export time,
// so layers with their own internally consistent counters (e.g. the
// result cache's StatsSnapshot) surface them without double bookkeeping.
type GaugeFunc struct {
	name string
	fn   func() float64
}

// Name returns the metric name the function is registered under.
func (g *GaugeFunc) Name() string { return g.name }

// Value evaluates the function.
func (g *GaugeFunc) Value() float64 { return g.fn() }

// Registry holds one process's metrics.  Lookups are GetOrCreate-style so
// independent packages (and repeated constructions of the same structure)
// share series by name; all methods are safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	order []string // registration order, for stable export
	cs    map[string]*Counter
	gs    map[string]*Gauge
	fs    map[string]*GaugeFunc
	hs    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		cs: map[string]*Counter{},
		gs: map[string]*Gauge{},
		fs: map[string]*GaugeFunc{},
		hs: map[string]*Histogram{},
	}
}

// Default is the process-wide registry every instrumented layer registers
// into, and the one Handler / Mux expose.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.cs[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.cs[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gs[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gs[name] = g
	r.order = append(r.order, name)
	return g
}

// RegisterFunc registers (or replaces) a read-on-scrape metric.
func (r *Registry) RegisterFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.fs[name]; !ok {
		r.order = append(r.order, name)
	}
	r.fs[name] = &GaugeFunc{name: name, fn: fn}
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hs[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	r.hs[name] = h
	r.order = append(r.order, name)
	return h
}

// Value returns the current value of the named counter, gauge, or
// read-on-scrape metric; ok is false when no such scalar series exists
// (histograms are not scalars — use Histogram().Quantile).
func (r *Registry) Value(name string) (float64, bool) {
	r.mu.Lock()
	c, cok := r.cs[name]
	g, gok := r.gs[name]
	f, fok := r.fs[name]
	r.mu.Unlock()
	switch {
	case cok:
		return float64(c.Value()), true
	case gok:
		return float64(g.Value()), true
	case fok:
		return f.Value(), true
	}
	return 0, false
}

// snapshot copies the series lists for export without holding the lock
// while values are read (GaugeFuncs may take other locks).  The maps are
// copied, not aliased: registration can race with a scrape (e.g. a layer
// registering its metrics after the -metrics server is already serving),
// and exporting from the live maps would be a concurrent map read/write.
func (r *Registry) snapshot() (order []string, cs map[string]*Counter, gs map[string]*Gauge, fs map[string]*GaugeFunc, hs map[string]*Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	order = append([]string(nil), r.order...)
	cs = make(map[string]*Counter, len(r.cs))
	for k, v := range r.cs {
		cs[k] = v
	}
	gs = make(map[string]*Gauge, len(r.gs))
	for k, v := range r.gs {
		gs[k] = v
	}
	fs = make(map[string]*GaugeFunc, len(r.fs))
	for k, v := range r.fs {
		fs[k] = v
	}
	hs = make(map[string]*Histogram, len(r.hs))
	for k, v := range r.hs {
		hs[k] = v
	}
	return order, cs, gs, fs, hs
}

// C returns a counter in the Default registry — the shorthand every
// instrumented package uses for its package-level metric variables.
func C(name string) *Counter { return Default.Counter(name) }

// G returns a gauge in the Default registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns a histogram in the Default registry.
func H(name string) *Histogram { return Default.Histogram(name) }
