package telemetry

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Trace records one query's execution as a tree of timed spans with
// attributes — plan choice, access path, cache outcome, shards touched —
// and renders it EXPLAIN ANALYZE-style.
//
// Traces are per-query and opt-in: a surface takes a *Trace (or a *Span of
// one) and every method is safe on a nil receiver, so untraced queries
// thread nil through the same code path at the cost of a pointer test.
// A Trace is built by one goroutine; it is not safe for concurrent spans.
type Trace struct {
	root *Span
}

// NewTrace starts a trace whose root span has the given name (the query's
// surface, e.g. "SelectRange").
func NewTrace(name string) *Trace {
	return &Trace{root: &Span{name: name, start: time.Now()}}
}

// Root returns the root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span, fixing the query's total duration.
func (t *Trace) Finish() {
	if t != nil {
		t.root.End()
	}
}

// String renders the trace as an EXPLAIN ANALYZE-style tree.
func (t *Trace) String() string {
	if t == nil || t.root == nil {
		return ""
	}
	var b strings.Builder
	t.root.render(&b, "", "")
	return b.String()
}

// Attr is one key=value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Span is one stage of a traced query: a name, a duration, attributes,
// and child stages.  All methods are nil-safe.
type Span struct {
	name     string
	attrs    []Attr
	dur      time.Duration
	timed    bool // dur was set (End/SetDur); untimed spans render without a time
	children []*Span
	start    time.Time
}

// Child opens a sub-stage under s and returns it (nil on a nil receiver).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.children = append(s.children, c)
	return c
}

// End fixes the span's duration at time-since-creation.
func (s *Span) End() {
	if s != nil {
		s.dur = time.Since(s.start)
		s.timed = true
	}
}

// SetDur fixes the span's duration explicitly (tests, replayed traces).
func (s *Span) SetDur(d time.Duration) *Span {
	if s != nil {
		s.dur = d
		s.timed = true
	}
	return s
}

// Attr annotates the span with a string value.
func (s *Span) Attr(key, value string) *Span {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	return s
}

// AttrInt annotates the span with an integer value without boxing.
func (s *Span) AttrInt(key string, v int) *Span {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.Itoa(v)})
	}
	return s
}

// AttrBool annotates the span with a boolean value.
func (s *Span) AttrBool(key string, v bool) *Span {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.FormatBool(v)})
	}
	return s
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Dur returns the span's recorded duration (0 on nil or untimed).
func (s *Span) Dur() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// Find returns the first child span (depth-first) with the given name, or
// nil — what tests use to assert on a recorded trace.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.name == name {
		return s
	}
	for _, c := range s.children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// AttrValue returns the span's value for key ("" when absent).
func (s *Span) AttrValue(key string) string {
	if s == nil {
		return ""
	}
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// render writes the span line and recurses with box-drawing guides:
//
//	SelectRange  (time=1.2ms)  lo=10 hi=90
//	├─ plan  use_index=true est_rows=100
//	└─ execute  (time=1.1ms)  path=index rows=97
func (s *Span) render(b *strings.Builder, prefix, childPrefix string) {
	b.WriteString(prefix)
	b.WriteString(s.name)
	if s.timed {
		fmt.Fprintf(b, "  (time=%s)", fmtDur(s.dur))
	}
	for _, a := range s.attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value)
	}
	b.WriteByte('\n')
	for i, c := range s.children {
		if i == len(s.children)-1 {
			c.render(b, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			c.render(b, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// fmtDur formats a duration with stable precision for trace output.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
