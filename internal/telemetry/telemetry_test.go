package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrent: the sharded cells must not lose increments.
func TestCounterConcurrent(t *testing.T) {
	Enable()
	defer Disable()
	c := NewRegistry().Counter("concurrent_total")
	const workers, perWorker = 8, 100_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestDisabledGate: while disabled, Add is a no-op and Now returns zero.
func TestDisabledGate(t *testing.T) {
	Disable()
	c := NewRegistry().Counter("gated_total")
	c.Add(7)
	if c.Value() != 0 {
		t.Fatalf("disabled counter advanced to %d", c.Value())
	}
	if !Now().IsZero() {
		t.Fatal("Now() not zero while disabled")
	}
	Enable()
	defer Disable()
	c.Add(7)
	if c.Value() != 7 {
		t.Fatalf("enabled counter = %d, want 7", c.Value())
	}
	if Now().IsZero() {
		t.Fatal("Now() zero while enabled")
	}
}

// TestRegistryLookupAndValue: GetOrCreate identity, scalar Value reads.
func TestRegistryLookupAndValue(t *testing.T) {
	Enable()
	defer Disable()
	r := NewRegistry()
	if r.Counter("a_total") != r.Counter("a_total") {
		t.Fatal("counter lookup not idempotent")
	}
	r.Counter("a_total").Add(3)
	r.Gauge("b").Set(-5)
	r.RegisterFunc("c", func() float64 { return 2.5 })
	for name, want := range map[string]float64{"a_total": 3, "b": -5, "c": 2.5} {
		got, ok := r.Value(name)
		if !ok || got != want {
			t.Fatalf("Value(%q) = %v, %v; want %v, true", name, got, ok, want)
		}
	}
	if _, ok := r.Value("missing"); ok {
		t.Fatal("Value of missing series reported ok")
	}
}

// TestPrometheusExport: the emitted text validates, carries # TYPE lines,
// and includes histogram quantile/sum/count series.
func TestPrometheusExport(t *testing.T) {
	Enable()
	defer Disable()
	r := NewRegistry()
	r.Counter(`ops_total{op="read"}`).Add(2)
	r.Counter(`ops_total{op="write"}`).Add(3)
	r.Gauge("depth").Set(4)
	r.RegisterFunc("ratio", func() float64 { return 0.25 })
	h := r.Histogram("lat_ns")
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ops_total counter",
		`ops_total{op="read"} 2`,
		`ops_total{op="write"} 3`,
		"# TYPE depth gauge",
		"# TYPE lat_ns summary",
		`lat_ns{quantile="0.5"}`,
		"lat_ns_sum ",
		"lat_ns_count 1000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if err := ValidatePrometheus(b.Bytes()); err != nil {
		t.Fatalf("own output does not validate: %v", err)
	}
}

// TestValidatePrometheusRejects: malformed expositions are caught.
func TestValidatePrometheusRejects(t *testing.T) {
	for _, bad := range []string{
		"no_type_line 1\n",
		"# TYPE x counter\nx notanumber\n",
		"# TYPE x counter\nx{unclosed 1\n",
		"# TYPE x counter\n1starts_with_digit 2\n",
	} {
		if err := ValidatePrometheus([]byte(bad)); err == nil {
			t.Errorf("ValidatePrometheus accepted %q", bad)
		}
	}
}

// TestJSONExportAndSummary: the JSON document parses and histograms carry
// count/p50/p99 fields.
func TestJSONExportAndSummary(t *testing.T) {
	Enable()
	defer Disable()
	r := NewRegistry()
	r.Counter("n_total").Add(5)
	h := r.Histogram("d_ns")
	h.Observe(100)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("json output does not parse: %v", err)
	}
	if doc["n_total"].(float64) != 5 {
		t.Fatalf("n_total = %v", doc["n_total"])
	}
	hist := doc["d_ns"].(map[string]any)
	if hist["count"].(float64) != 1 {
		t.Fatalf("d_ns count = %v", hist["count"])
	}
	sum := r.Summary()
	if _, ok := sum["n_total"]; !ok {
		t.Fatal("Summary missing n_total")
	}
}

// TestMuxEndpoints: /metrics serves valid Prometheus text, /metrics.json
// valid JSON, and the pprof index responds.
func TestMuxEndpoints(t *testing.T) {
	Enable()
	defer Disable()
	r := NewRegistry()
	r.Counter("served_total").Inc()
	srv := httptest.NewServer(r.Mux())
	defer srv.Close()
	get := func(path string) []byte {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return b.Bytes()
	}
	if err := ValidatePrometheus(get("/metrics")); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(get("/metrics.json"), &doc); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if !bytes.Contains(get("/debug/pprof/"), []byte("pprof")) {
		t.Fatal("/debug/pprof/ index did not render")
	}
}
