package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// exportQuantiles are the summary quantiles both exporters publish for
// every histogram.
var exportQuantiles = []float64{0.5, 0.9, 0.99}

// baseName splits an inline-labelled metric name into its base name and
// the label body (without braces): "a_total{op=\"x\"}" → ("a_total",
// `op="x"`).
func baseName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// withLabel appends one label to an inline-labelled name's label body.
func withLabel(name, k, v string) string {
	base, labels := baseName(name)
	if labels != "" {
		labels += ","
	}
	return fmt.Sprintf("%s{%s%s=%q}", base, labels, k, v)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as summaries with p50/p90/p99 quantile samples plus _sum and
// _count.  Series are ordered by name so scrapes are diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	order, cs, gs, fs, hs := r.snapshot()
	sort.Strings(order)
	bw := bufio.NewWriter(w)
	typed := map[string]bool{} // base names that already emitted # TYPE
	emitType := func(name, typ string) {
		base, _ := baseName(name)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(bw, "# TYPE %s %s\n", base, typ)
		}
	}
	for _, name := range order {
		switch {
		case cs[name] != nil:
			emitType(name, "counter")
			fmt.Fprintf(bw, "%s %d\n", name, cs[name].Value())
		case gs[name] != nil:
			emitType(name, "gauge")
			fmt.Fprintf(bw, "%s %d\n", name, gs[name].Value())
		case fs[name] != nil:
			emitType(name, "gauge")
			fmt.Fprintf(bw, "%s %s\n", name, fmtFloat(fs[name].Value()))
		case hs[name] != nil:
			h := hs[name]
			emitType(name, "summary")
			qv := h.Quantiles(exportQuantiles...)
			for i, q := range exportQuantiles {
				fmt.Fprintf(bw, "%s %s\n", withLabel(name, "quantile", fmtFloat(q)), fmtFloat(qv[i]))
			}
			base, labels := baseName(name)
			suffix := ""
			if labels != "" {
				suffix = "{" + labels + "}"
			}
			fmt.Fprintf(bw, "%s_sum%s %d\n", base, suffix, h.Sum())
			fmt.Fprintf(bw, "%s_count%s %d\n", base, suffix, h.Count())
		}
	}
	return bw.Flush()
}

// fmtFloat formats a float the way Prometheus text expects (no exponent
// for common magnitudes, integral values without a trailing ".0").
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// histSummary is the JSON shape of one histogram.
type histSummary struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// WriteJSON writes the registry as one expvar-style JSON object: metric
// name → value, histograms as {count, sum, p50, p90, p99} objects.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Summary())
}

// Summary returns the registry as a plain map — what WriteJSON emits and
// what bench recorders embed as their `telemetry` context block.
func (r *Registry) Summary() map[string]any {
	order, cs, gs, fs, hs := r.snapshot()
	sort.Strings(order)
	out := make(map[string]any, len(order))
	for _, name := range order {
		switch {
		case cs[name] != nil:
			out[name] = cs[name].Value()
		case gs[name] != nil:
			out[name] = gs[name].Value()
		case fs[name] != nil:
			out[name] = fs[name].Value()
		case hs[name] != nil:
			h := hs[name]
			qv := h.Quantiles(exportQuantiles...)
			out[name] = histSummary{Count: h.Count(), Sum: h.Sum(), P50: qv[0], P90: qv[1], P99: qv[2]}
		}
	}
	return out
}

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// JSONHandler serves the registry as expvar-style JSON.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	})
}

// Mux returns the observability endpoint: /metrics (Prometheus text),
// /metrics.json (expvar-style JSON), and the pprof suite under
// /debug/pprof/ — everything a scrape target or a profiling session
// needs, on stdlib net/http alone.
func (r *Registry) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/metrics.json", r.JSONHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ValidatePrometheus checks that b parses as Prometheus text exposition:
// every line is a comment, blank, or `name[{labels}] value`, with every
// sample's base name declared by a preceding # TYPE line.  Used by the CI
// scrape job and the endpoint tests.
func ValidatePrometheus(b []byte) error {
	typed := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(b))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				typed[fields[2]] = true
			}
			continue
		}
		name, value, err := splitSample(line)
		if err != nil {
			return fmt.Errorf("telemetry: line %d: %w", lineNo, err)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("telemetry: line %d: bad value %q", lineNo, value)
		}
		base, _ := baseName(name)
		trimmed := strings.TrimSuffix(strings.TrimSuffix(base, "_sum"), "_count")
		if !typed[base] && !typed[trimmed] {
			return fmt.Errorf("telemetry: line %d: sample %s has no # TYPE", lineNo, name)
		}
	}
	return sc.Err()
}

// splitSample splits one sample line into its series name (including any
// label body) and value, validating the name charset and label syntax.
func splitSample(line string) (name, value string, err error) {
	i := strings.LastIndexByte(line, ' ')
	if i <= 0 || i == len(line)-1 {
		return "", "", fmt.Errorf("malformed sample %q", line)
	}
	name, value = line[:i], line[i+1:]
	base, labels := baseName(name)
	if base == "" || !validMetricName(base) {
		return "", "", fmt.Errorf("bad metric name %q", name)
	}
	if strings.ContainsAny(base, "{}") {
		return "", "", fmt.Errorf("unbalanced braces in %q", name)
	}
	if labels == "" && strings.ContainsAny(name, "{}") {
		return "", "", fmt.Errorf("unbalanced braces in %q", name)
	}
	return name, value, nil
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(s) > 0
}
