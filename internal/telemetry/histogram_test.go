package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestBucketRoundTrip: every bucket's lower bound maps back to that
// bucket, and bucket boundaries are monotonically increasing.
func TestBucketRoundTrip(t *testing.T) {
	prev := uint64(0)
	for i := 0; i < histBuckets; i++ {
		lo := bucketLow(i)
		if i > 0 && lo <= prev {
			t.Fatalf("bucket %d: low %d not > previous %d", i, lo, prev)
		}
		if got := bucketOf(lo); got != i {
			t.Fatalf("bucketOf(bucketLow(%d)=%d) = %d", i, lo, got)
		}
		prev = lo
	}
	// Spot-check values inside buckets.
	for _, v := range []uint64{0, 1, 15, 16, 17, 31, 32, 100, 1023, 1 << 20, 1<<40 + 12345, math.MaxUint64} {
		i := bucketOf(v)
		if lo := bucketLow(i); v < lo {
			t.Fatalf("value %d below its bucket %d low %d", v, i, lo)
		}
		if i+1 < histBuckets {
			if hi := bucketLow(i + 1); v >= hi {
				t.Fatalf("value %d at or above next bucket low %d", v, hi)
			}
		}
	}
}

// TestQuantileExactSmall: values below histLinear land in exact buckets,
// so quantiles of small samples are exact (up to in-bucket interpolation
// of width 1).
func TestQuantileExactSmall(t *testing.T) {
	Enable()
	defer Disable()
	h := NewRegistry().Histogram("small")
	for v := uint64(0); v < 10; v++ {
		h.Observe(v)
	}
	if got := h.Quantile(1); got < 9 || got > 10 {
		t.Fatalf("p100 of 0..9 = %v, want in [9,10]", got)
	}
	if got := h.Quantile(0); got > 1 {
		t.Fatalf("p0 of 0..9 = %v, want ≤ 1", got)
	}
}

// TestQuantileOracle compares histogram quantiles against the exact
// order statistics of the same sample set: the log-linear layout bounds
// relative error by the sub-bucket width (1/16), plus interpolation
// slack — assert within 10%.
func TestQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := map[string]func() uint64{
		"uniform":   func() uint64 { return uint64(rng.Int63n(1_000_000)) },
		"exp":       func() uint64 { return uint64(rng.ExpFloat64() * 50_000) },
		"lognormal": func() uint64 { return uint64(math.Exp(rng.NormFloat64()*2 + 10)) },
	}
	Enable()
	defer Disable()
	for name, gen := range distributions {
		t.Run(name, func(t *testing.T) {
			h := NewRegistry().Histogram("oracle_" + name)
			const n = 50_000
			samples := make([]uint64, n)
			for i := range samples {
				samples[i] = gen()
				h.Observe(samples[i])
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
				exact := float64(samples[int(q*float64(n-1))])
				got := h.Quantile(q)
				if exact == 0 {
					continue
				}
				if rel := math.Abs(got-exact) / exact; rel > 0.10 {
					t.Errorf("q=%v: histogram %v vs exact %v (rel err %.3f)", q, got, exact, rel)
				}
			}
			if h.Count() != n {
				t.Fatalf("count = %d, want %d", h.Count(), n)
			}
		})
	}
}

// TestHistogramDisabled: observations while disabled record nothing.
func TestHistogramDisabled(t *testing.T) {
	Disable()
	h := NewRegistry().Histogram("off")
	h.Observe(123)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("disabled histogram recorded: count=%d sum=%d", h.Count(), h.Sum())
	}
}
