package telemetry_test

// Cross-subsystem race stress: one registry (the package default), every
// producer the engine has hammering it at once — sharded batch probes
// from reader goroutines, epoch swaps from a writer, WAL group commits,
// parallel fan-out worker brackets — while a scraper renders the
// Prometheus text and JSON summaries mid-flight.  The package's own
// tests cover each primitive in isolation; this one exists to fail
// under -race if any two subsystems' hooks ever share unsynchronized
// state.  (An external test package so it can import the subsystems
// that themselves import telemetry.)

import (
	"bytes"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"cssidx"
	"cssidx/internal/parallel"
	"cssidx/internal/telemetry"
	"cssidx/internal/wal"
)

func TestRegistryCrossSubsystemStress(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()

	const nKeys = 50_000
	keys := make([]uint32, nKeys)
	for i := range keys {
		keys[i] = uint32(i) * 7
	}
	idx := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{Shards: 4})
	defer idx.Close()

	log, _, err := wal.Open(nil, filepath.Join(t.TempDir(), "stress.wal"), wal.GroupBytes(4096))
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	defer log.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Each producer runs at least minIters times before honoring stop: on a
	// single-proc box a wall-clock window alone can end before a late
	// goroutine was ever scheduled, and the final counter asserts would
	// then see zeros.
	spin := func(minIters int, body func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				if i >= minIters {
					select {
					case <-stop:
						return
					default:
					}
				}
				body()
			}
		}()
	}

	// Readers: per-shard probe counters and batch counters.
	for r := 0; r < 3; r++ {
		seed := uint32(r + 1)
		probes := make([]uint32, 2048)
		out := make([]int32, len(probes))
		for i := range probes {
			probes[i] = (seed * 2654435761) + uint32(i)*1123%(nKeys*7)
		}
		spin(50, func() { idx.LowerBoundBatch(probes, out) })
	}

	// Writer: absorb/fold counters and the epoch-swap histogram.
	next := uint32(nKeys * 7)
	spin(5, func() {
		batch := make([]uint32, 64)
		for i := range batch {
			next += 3
			batch[i] = next
		}
		idx.Insert(batch...)
		idx.Sync()
		idx.Delete(batch...)
		idx.Sync()
	})

	// WAL: append/bytes counters, fsync and group-commit histograms.
	payload := bytes.Repeat([]byte("t"), 128)
	walN := 0
	spin(128, func() {
		if _, err := log.Append(payload); err != nil {
			t.Errorf("wal.Append: %v", err)
			return
		}
		if walN++; walN%32 == 0 {
			if err := log.Sync(); err != nil {
				t.Errorf("wal.Sync: %v", err)
			}
		}
	})

	// Parallel fan-out: worker wait/run histograms even on one CPU.
	sink := make([]uint64, 8192)
	spin(20, func() {
		parallel.Run(len(sink), parallel.Options{Workers: 4, MinBatchPerWorker: 512}, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sink[i]++
			}
		})
	})

	// Scraper: renders must see a consistent registry mid-write.
	spin(5, func() {
		var b bytes.Buffer
		if err := telemetry.Default.WritePrometheus(&b); err != nil {
			t.Errorf("WritePrometheus: %v", err)
			return
		}
		if err := telemetry.ValidatePrometheus(b.Bytes()); err != nil {
			t.Errorf("scrape does not parse: %v", err)
		}
		_ = telemetry.Default.Summary()
	})

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	for _, name := range []string{
		"shard_batch_probes_total",
		"wal_appends_total",
		"wal_bytes_logged_total",
	} {
		if v, ok := telemetry.Default.Value(name); !ok || v == 0 {
			t.Errorf("%s = %v after stress, want > 0", name, v)
		}
	}
	if telemetry.H("wal_group_commit_records").Count() == 0 {
		t.Error("wal_group_commit_records histogram empty after stress")
	}
	if telemetry.H("parallel_worker_run_ns").Count() == 0 {
		t.Error("parallel_worker_run_ns histogram empty after stress")
	}
}

// TestRegistryRegisterDuringScrape registers brand-new series while
// scrapes render concurrently: the engine does exactly this when a layer
// registers its metrics after the -metrics HTTP server is already
// serving.  Fails under -race if export ever reads the live series maps
// instead of a locked copy.
func TestRegistryRegisterDuringScrape(t *testing.T) {
	reg := telemetry.NewRegistry()
	stop := make(chan struct{})
	var registrar, scrapers sync.WaitGroup

	registrar.Add(1)
	go func() {
		defer registrar.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Cap distinct names so scrape cost stays bounded; wrapped
			// iterations keep writing through the same GetOrCreate and
			// RegisterFunc paths, which is where the map writes race.
			n := strconv.Itoa(i % 512)
			reg.Counter("stress_counter_" + n).Inc()
			reg.Gauge("stress_gauge_" + n).Set(int64(i))
			reg.Histogram("stress_hist_" + n).Observe(uint64(i))
			reg.RegisterFunc("stress_func_"+n, func() float64 { return float64(i) })
		}
	}()

	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 200; i++ {
				var b bytes.Buffer
				if err := reg.WritePrometheus(&b); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				if err := telemetry.ValidatePrometheus(b.Bytes()); err != nil {
					t.Errorf("scrape does not parse: %v", err)
					return
				}
				b.Reset()
				if err := reg.WriteJSON(&b); err != nil {
					t.Errorf("WriteJSON: %v", err)
					return
				}
				_ = reg.Summary()
			}
		}()
	}

	// The scrapers bound the test; the registrar runs until they finish.
	scrapers.Wait()
	close(stop)
	registrar.Wait()
}
