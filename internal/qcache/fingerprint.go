package qcache

// Canonical query fingerprints.  A cache entry is addressed by a Key — a
// comparable value identifying *what* was asked (table, column, predicate
// kind, normalized bounds or value-set hash) — and validated by a Token
// identifying *which state* it was answered against (table generation or
// frozen index epoch).  Keys deliberately exclude the token: the common
// dashboard pattern asks the same question across many epochs, and keeping
// the question stable lets a stale entry be detected (and its slot reused)
// the moment the same question arrives under a fresh token.

// Kind classifies the query surface a fingerprint came from.  Two surfaces
// never share entries even when their parameters collide.
type Kind uint8

const (
	// KindRange is a one-column range selection (lo ≤ col ≤ hi), with
	// Lo/Hi the raw closed value bounds as asked.  Raw values — not
	// domain IDs — because with a delta layer the frozen dictionary no
	// longer ranks every live value, so IDs are not canonical across an
	// absorbed append while the raw bounds are.
	KindRange Kind = 1 + iota
	// KindIn is an IN-list selection; Hash fingerprints the deduplicated
	// value list in first-occurrence order (result order depends on it).
	KindIn
	// KindWhere is a conjunction of range predicates; Hash fingerprints
	// the (column, loID, hiID) triples in predicate order.
	KindWhere
	// KindJoin is an indexed nested-loop join result; Hash fingerprints
	// the inner index identity.
	KindJoin
	// KindAgg is a grouped aggregation: Col is the group-by column and
	// Hash fingerprints the measure column plus the source-RID set (a
	// marker distinguishes the nil all-rows source from an explicit one).
	KindAgg
)

// Layer tags which invalidation domain an entry lives in: LayerTable
// entries are stamped with the owning table's generation (bumped by every
// AppendRows), LayerEpoch entries with a frozen sharded-index epoch.  The
// two layers answer the same questions against different snapshots of the
// data, so they must never share entries.
type Layer uint8

const (
	LayerTable Layer = iota
	LayerEpoch
)

// Token is the validity stamp of an entry: the (table generation,
// index/shard epoch) pair the result was computed under.  A lookup hits
// only when the caller's current token is identical — the epoch-swap
// serving layer hands the cache its invalidation signal for free.
type Token struct {
	Gen   uint64
	Epoch uint64
}

// Key is the canonical fingerprint of one query.  It is a comparable
// struct, used directly as the stripe map key.
type Key struct {
	Table string
	Col   string
	Kind  Kind
	Layer Layer
	// Lo, Hi are the raw closed value bounds of a range query; zero for
	// the other kinds.
	Lo, Hi uint32
	// Hash fingerprints the kind-specific parameters (IN-list values,
	// predicate list, join inner identity); zero for plain ranges.
	Hash uint64
	// N is a collision guard alongside Hash: the value count, predicate
	// count, or zero.
	N uint32
}

// FNV-1a, the same fingerprint primitive the snapshot checksums use.
const (
	HashSeed    = 14695981039346656037 // FNV-1a offset basis
	hashPrime64 = 1099511628211
)

// HashString folds a string into a running FNV-1a hash.
func HashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * hashPrime64
	}
	h = (h ^ 0xff) * hashPrime64 // terminator: "ab","c" ≠ "a","bc"
	return h
}

// HashU32 folds one uint32 into a running FNV-1a hash.
func HashU32(h uint64, v uint32) uint64 {
	for i := 0; i < 4; i++ {
		h = (h ^ (uint64(v) & 0xff)) * hashPrime64
		v >>= 8
	}
	return h
}

// HashU32s folds a uint32 slice into a running FNV-1a hash.
func HashU32s(h uint64, vs []uint32) uint64 {
	for _, v := range vs {
		h = HashU32(h, v)
	}
	return h
}

// colKey addresses the per-column containment candidate list inside a
// stripe: every cached range run for one (table, column, layer) triple.
type colKey struct {
	table string
	col   string
	layer Layer
}

// stripeFor routes a key to its lock stripe.  Only the identity fields
// (table, column, kind, layer) participate, so all range entries of one
// column land in one stripe and containment scans need a single lock.
func (c *Cache) stripeFor(k Key) *stripe {
	h := HashString(HashString(HashSeed, k.Table), k.Col)
	h = HashU32(h, uint32(k.Kind)<<8|uint32(k.Layer))
	return &c.stripes[h&c.stripeMask]
}
