package qcache

import (
	"fmt"
	"testing"
)

// ident inserts a range run over the identity table (value v lives at RID v)
// so assembled results are trivially checkable.
func ident(c *Cache, tok Token, lo, hi uint32) {
	c.InsertRange(rangeKey("t", "a", lo, hi), tok, seq(lo, hi-lo+1), seq(lo, hi-lo+1), 10)
}

func TestStitchRangeSegmentsAndGaps(t *testing.T) {
	c := New(admitAll(Options{}))
	tok := Token{Gen: 1}
	ident(c, tok, 10, 19)
	ident(c, tok, 30, 39)

	sp, ok := c.StitchRange(rangeKey("t", "a", 12, 35), tok)
	if !ok {
		t.Fatal("no stitch plan over two overlapping runs")
	}
	if len(sp.Segments) != 2 || len(sp.Gaps) != 1 {
		t.Fatalf("plan shape: %d segments, %d gaps", len(sp.Segments), len(sp.Gaps))
	}
	s0, s1, g := sp.Segments[0], sp.Segments[1], sp.Gaps[0]
	if s0.Lo != 12 || s0.Hi != 19 || s1.Lo != 30 || s1.Hi != 35 {
		t.Fatalf("segment bounds: [%d,%d] [%d,%d]", s0.Lo, s0.Hi, s1.Lo, s1.Hi)
	}
	if g.Lo != 20 || g.Hi != 29 {
		t.Fatalf("gap bounds: [%d,%d]", g.Lo, g.Hi)
	}
	if fmt.Sprint(s0.Keys) != fmt.Sprint(seq(12, 8)) || fmt.Sprint(s1.RIDs) != fmt.Sprint(seq(30, 6)) {
		t.Fatalf("segment payloads: %v / %v", s0.Keys, s1.RIDs)
	}
	if sp.CachedRows != 8+6 {
		t.Fatalf("CachedRows %d, want 14", sp.CachedRows)
	}
}

func TestStitchRangeAdjacentRunsNoGap(t *testing.T) {
	c := New(admitAll(Options{}))
	tok := Token{Gen: 1}
	ident(c, tok, 10, 19)
	ident(c, tok, 20, 29)
	sp, ok := c.StitchRange(rangeKey("t", "a", 10, 29), tok)
	if !ok || len(sp.Gaps) != 0 || len(sp.Segments) != 2 {
		t.Fatalf("adjacent runs: ok=%v %+v", ok, sp)
	}
}

func TestStitchRangeHeadAndTailGaps(t *testing.T) {
	c := New(admitAll(Options{}))
	tok := Token{Gen: 1}
	ident(c, tok, 20, 29)
	sp, ok := c.StitchRange(rangeKey("t", "a", 15, 35), tok)
	if !ok || len(sp.Segments) != 1 || len(sp.Gaps) != 2 {
		t.Fatalf("head/tail plan: ok=%v %+v", ok, sp)
	}
	if sp.Gaps[0] != (RangeGap{15, 19}) || sp.Gaps[1] != (RangeGap{30, 35}) {
		t.Fatalf("gaps %+v", sp.Gaps)
	}
}

func TestStitchRangeRefusals(t *testing.T) {
	c := New(admitAll(Options{}))
	tok := Token{Gen: 1}
	ident(c, tok, 50, 59)
	// No overlap at all: recompute, not stitch.
	if _, ok := c.StitchRange(rangeKey("t", "a", 10, 20), tok); ok {
		t.Fatal("stitch planned with zero overlapping runs")
	}
	// A run under another token must not contribute.
	if _, ok := c.StitchRange(rangeKey("t", "a", 50, 59), Token{Gen: 2}); ok {
		t.Fatal("stitch planned from a stale-token run")
	}
	// Inverted request.
	if _, ok := c.StitchRange(rangeKey("t", "a", 9, 5), tok); ok {
		t.Fatal("stitch planned for an inverted range")
	}
	// Disabled and nil caches.
	if _, ok := New(Options{Disabled: true}).StitchRange(rangeKey("t", "a", 50, 59), tok); ok {
		t.Fatal("disabled cache planned a stitch")
	}
	var nilc *Cache
	if _, ok := nilc.StitchRange(rangeKey("t", "a", 50, 59), tok); ok {
		t.Fatal("nil cache planned a stitch")
	}
}

// TestStitchAdmissionSupersedes locks in the convergence mechanism: a run
// covering existing same-token runs replaces them in the interval map, so a
// shifting dashboard ends with one covering run instead of fragments.
func TestStitchAdmissionSupersedes(t *testing.T) {
	c := New(admitAll(Options{}))
	tok := Token{Gen: 1}
	ident(c, tok, 10, 19)
	ident(c, tok, 30, 39)
	// A run of a different token is out of supersede's reach.
	c.InsertRange(rangeKey("t", "a", 12, 15), Token{Gen: 2}, seq(12, 4), seq(12, 4), 10)
	if s := c.Stats(); s.Entries != 3 {
		t.Fatalf("precondition: %d entries", s.Entries)
	}
	ident(c, tok, 5, 45) // covers both same-token runs
	if s := c.Stats(); s.Entries != 2 {
		t.Fatalf("supersede left %d entries, want 2 (covering + foreign token)", s.Entries)
	}
	// The covering run answers what the dropped fragments did.
	if got, ok := c.LookupRange(rangeKey("t", "a", 11, 18), tok); !ok || len(got) != 8 {
		t.Fatalf("containment after supersede: ok=%v got=%v", ok, got)
	}
}

func TestLookupInReuseSubsetAndSuperset(t *testing.T) {
	c := New(admitAll(Options{}))
	tok := Token{Gen: 1}
	k := Key{Table: "t", Col: "a", Kind: KindIn, Hash: 1, N: 3}
	// Values in first-occurrence order 17, 5, 40; 40 matches no rows.
	c.InsertIn(k, tok, []uint32{17, 5, 40}, []uint32{0, 2, 3, 3}, []uint32{8, 9, 3}, 10)

	// Subset replay in a different order: groups come back per query order.
	qk := Key{Table: "t", Col: "a", Kind: KindIn, Hash: 2, N: 2}
	c.Lookup(qk, tok) // the exact miss reuse trades back
	r, ok := c.LookupInReuse(qk, tok, []uint32{5, 17})
	if !ok || len(r.Missing) != 0 {
		t.Fatalf("subset not covered: ok=%v %+v", ok, r)
	}
	if fmt.Sprint(r.Groups) != fmt.Sprint([][]uint32{{3}, {8, 9}}) {
		t.Fatalf("subset groups %v", r.Groups)
	}
	if s := c.Stats(); s.SubsetHits != 1 {
		t.Fatalf("subset hit not counted: %+v", s)
	}

	// A cached-empty group is covered (non-nil), not missing.
	r, ok = c.LookupInReuse(qk, tok, []uint32{40, 99})
	if !ok {
		t.Fatal("partial coverage not reported")
	}
	if r.Groups[0] == nil || len(r.Groups[0]) != 0 {
		t.Fatalf("cached-empty group misreported: %v", r.Groups[0])
	}
	if fmt.Sprint(r.Missing) != fmt.Sprint([]uint32{99}) {
		t.Fatalf("missing %v", r.Missing)
	}

	// Wrong token: nothing reusable.
	if _, ok := c.LookupInReuse(qk, Token{Gen: 9}, []uint32{5}); ok {
		t.Fatal("reuse from a stale-token entry")
	}
	// Ungrouped entries (nil goff) are not reuse candidates.
	c2 := New(admitAll(Options{}))
	c2.InsertIn(k, tok, []uint32{17, 5}, nil, []uint32{8, 9}, 10)
	if _, ok := c2.LookupInReuse(qk, tok, []uint32{5}); ok {
		t.Fatal("reuse from an ungrouped entry")
	}
}

func TestInsertInRejectsMalformedGroups(t *testing.T) {
	c := New(admitAll(Options{}))
	tok := Token{Gen: 1}
	k := Key{Table: "t", Col: "a", Kind: KindIn, Hash: 3, N: 2}
	c.InsertIn(k, tok, []uint32{5, 17}, []uint32{0, 1}, []uint32{8, 9}, 10) // len(goff) != len(distinct)+1
	if _, ok := c.Lookup(k, tok); ok {
		t.Fatal("malformed grouped entry admitted")
	}
	if s := c.Stats(); s.Rejects != 1 {
		t.Fatalf("reject not counted: %+v", s)
	}
}

func TestLookupAggRoundTrip(t *testing.T) {
	c := New(admitAll(Options{}))
	tok := Token{Gen: 1}
	k := Key{Table: "t", Col: "g", Kind: KindAgg, Hash: 7}
	rows := []AggRow{{Value: 3, Count: 2, Sum: 30, Min: 10, Max: 20}, {Value: 9, Count: 1, Sum: 5, Min: 5, Max: 5}}
	c.InsertAgg(k, tok, "m", true, rows, 10)
	got, ok := c.LookupAgg(k, tok)
	if !ok || fmt.Sprint(got) != fmt.Sprint(rows) {
		t.Fatalf("agg round trip: ok=%v got=%v", ok, got)
	}
	// The hit returns a copy: mutating it must not reach the cache.
	got[0].Count = 999
	again, _ := c.LookupAgg(k, tok)
	if again[0].Count != 2 {
		t.Fatal("cached aggregate mutated through a hit")
	}
	if s := c.Stats(); s.AggregateHits != 2 {
		t.Fatalf("agg hits %d, want 2", s.AggregateHits)
	}
	if _, ok := c.LookupAgg(k, Token{Gen: 2}); ok {
		t.Fatal("agg hit across tokens")
	}
}

// FuzzStitch drives StitchRange with random overlapping run sets over the
// identity table and checks the assembled answer against the sorted-slice
// oracle: segments and gaps must tile the request exactly, and cached
// segments plus oracle-filled gaps must reproduce seq(lo, hi-lo+1).
func FuzzStitch(f *testing.F) {
	f.Add([]byte{10, 9, 30, 9, 12, 23})
	f.Add([]byte{0, 255, 0, 0, 5, 100})
	f.Add([]byte{20, 4, 25, 4, 30, 4, 18, 22})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		c := New(admitAll(Options{}))
		tok := Token{Gen: 1}
		// Last two bytes are the query; the rest insert runs pairwise.
		qlo := uint32(data[len(data)-2])
		qhi := qlo + uint32(data[len(data)-1])%64
		for i := 0; i+1 < len(data)-2; i += 2 {
			lo := uint32(data[i])
			hi := lo + uint32(data[i+1])%64
			ident(c, tok, lo, hi)
		}
		k := rangeKey("t", "a", qlo, qhi)
		sp, ok := c.StitchRange(k, tok)
		if !ok {
			return
		}
		// Segments and gaps must tile [qlo, qhi] exactly, in order.
		cur := qlo
		si, gi := 0, 0
		var keys, rids []uint32
		for si < len(sp.Segments) || gi < len(sp.Gaps) {
			if gi >= len(sp.Gaps) || (si < len(sp.Segments) && sp.Segments[si].Lo < sp.Gaps[gi].Lo) {
				s := sp.Segments[si]
				if s.Lo != cur {
					t.Fatalf("segment starts at %d, cursor %d", s.Lo, cur)
				}
				keys = append(keys, s.Keys...)
				rids = append(rids, s.RIDs...)
				cur = s.Hi + 1
				si++
				continue
			}
			g := sp.Gaps[gi]
			if g.Lo != cur {
				t.Fatalf("gap starts at %d, cursor %d", g.Lo, cur)
			}
			keys = append(keys, seq(g.Lo, g.Hi-g.Lo+1)...)
			rids = append(rids, seq(g.Lo, g.Hi-g.Lo+1)...)
			cur = g.Hi + 1
			gi++
		}
		if cur != qhi+1 {
			t.Fatalf("tiling stops at %d, want %d", cur, qhi+1)
		}
		want := seq(qlo, qhi-qlo+1)
		if fmt.Sprint(keys) != fmt.Sprint(want) || fmt.Sprint(rids) != fmt.Sprint(want) {
			t.Fatalf("assembled [%d,%d]: keys=%v rids=%v", qlo, qhi, keys, rids)
		}
	})
}
