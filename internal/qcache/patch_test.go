package qcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func patchFor(old, new Token, startRID uint32, cols map[string][]uint32) AppendPatch {
	return AppendPatch{
		Table: "t", Layer: LayerTable,
		OldTok: old, NewTok: new,
		StartRID: startRID, Cols: cols,
	}
}

func TestPatchRetokensNonIntersectingRange(t *testing.T) {
	c := New(admitAll(Options{}))
	old, new := Token{Gen: 1, Epoch: 1}, Token{Gen: 1, Epoch: 2}
	c.InsertRange(rangeKey("t", "a", 10, 19), old, seq(10, 10), seq(100, 10), 10)

	// Appended values all miss [10, 19]: the entry survives untouched.
	c.PatchAppend(patchFor(old, new, 500, map[string][]uint32{"a": {3, 42, 99}}))
	got, ok := c.Lookup(rangeKey("t", "a", 10, 19), new)
	if !ok || len(got) != 10 || got[0] != 100 {
		t.Fatalf("retokened entry lost: ok=%v got=%v", ok, got)
	}
	// The old token no longer hits.
	if _, ok := c.Lookup(rangeKey("t", "a", 10, 19), old); ok {
		t.Fatal("old token still served after patch")
	}
	// Containment reuse keeps working on the carried entry.
	if got, ok := c.LookupRange(rangeKey("t", "a", 12, 14), new); !ok || len(got) != 3 {
		t.Fatalf("containment on retokened entry: ok=%v got=%v", ok, got)
	}
	if s := c.Stats(); s.Patches != 1 {
		t.Fatalf("patches %d, want 1", s.Patches)
	}
}

func TestPatchMergesIntersectingRange(t *testing.T) {
	c := New(admitAll(Options{}))
	old, new := Token{Gen: 1, Epoch: 1}, Token{Gen: 1, Epoch: 2}
	// keys 10,12,14,16 at rids 100..103.
	c.InsertRange(rangeKey("t", "a", 10, 16), old, []uint32{10, 12, 14, 16}, seq(100, 4), 10)

	// Appended rows (rid 500: a=13) (501: a=99) (502: a=10) (503: a=11):
	// three qualify, one misses.
	c.PatchAppend(patchFor(old, new, 500, map[string][]uint32{"a": {13, 99, 10, 11}}))
	got, ok := c.Lookup(rangeKey("t", "a", 10, 16), new)
	if !ok {
		t.Fatal("merged entry missing under new token")
	}
	// Value order with appended RIDs after resident ones on equal values:
	// 10(100) 10(502) 11(503) 12(101) 13(500) 14(102) 16(103).
	want := []uint32{100, 502, 503, 101, 500, 102, 103}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merged rids %v, want %v", got, want)
	}
	// The merged key run serves subranges that include appended values.
	if got, ok := c.LookupRange(rangeKey("t", "a", 11, 13), new); !ok || fmt.Sprint(got) != fmt.Sprint([]uint32{503, 101, 500}) {
		t.Fatalf("containment over merged run: ok=%v got=%v", ok, got)
	}
}

func TestPatchAppendsToRowOrderRange(t *testing.T) {
	c := New(admitAll(Options{}))
	old, new := Token{Gen: 1, Epoch: 1}, Token{Gen: 1, Epoch: 2}
	// Scan-path entry: row-order rids, no key run.
	c.InsertRange(rangeKey("t", "a", 10, 19), old, nil, []uint32{4, 7, 9}, 10)
	c.PatchAppend(patchFor(old, new, 500, map[string][]uint32{"a": {15, 3, 12}}))
	got, ok := c.Lookup(rangeKey("t", "a", 10, 19), new)
	if !ok || fmt.Sprint(got) != fmt.Sprint([]uint32{4, 7, 9, 500, 502}) {
		t.Fatalf("row-order patch: ok=%v got=%v", ok, got)
	}
}

func TestPatchInList(t *testing.T) {
	c := New(admitAll(Options{}))
	old, new := Token{Gen: 1, Epoch: 1}, Token{Gen: 1, Epoch: 2}
	k := Key{Table: "t", Col: "a", Kind: KindIn, Hash: 7, N: 3}
	c.InsertIn(k, old, []uint32{5, 17, 40}, nil, []uint32{1, 2, 3}, 10)

	// Appended values miss the list: carried over.
	c.PatchAppend(patchFor(old, new, 500, map[string][]uint32{"a": {6, 39}}))
	if got, ok := c.Lookup(k, new); !ok || len(got) != 3 {
		t.Fatalf("IN entry not carried: ok=%v got=%v", ok, got)
	}
	// Appended value hits the list: dropped (mid-result splice impossible).
	newer := Token{Gen: 1, Epoch: 3}
	c.PatchAppend(patchFor(new, newer, 502, map[string][]uint32{"a": {17}}))
	if _, ok := c.Lookup(k, newer); ok {
		t.Fatal("intersecting IN entry served after patch")
	}
	// A plain Insert (no value payload) cannot be patched: dropped.
	c.Insert(k, newer, []uint32{1}, 10)
	last := Token{Gen: 1, Epoch: 4}
	c.PatchAppend(patchFor(newer, last, 503, map[string][]uint32{"a": {6}}))
	if _, ok := c.Lookup(k, last); ok {
		t.Fatal("payload-free IN entry survived a patch")
	}
}

func TestPatchGroupedInSplice(t *testing.T) {
	c := New(admitAll(Options{}))
	old, new := Token{Gen: 1, Epoch: 1}, Token{Gen: 1, Epoch: 2}
	k := Key{Table: "t", Col: "a", Kind: KindIn, Hash: 9, N: 3}
	// First-occurrence order 17, 5, 40: groups {1, 2}, {3}, {} (40 empty).
	c.InsertIn(k, old, []uint32{17, 5, 40}, []uint32{0, 2, 3, 3}, []uint32{1, 2, 3}, 10)

	// Appended rows (500: a=5) (501: a=40) (502: a=7): two hit the list and
	// splice into their groups instead of dropping the entry.
	c.PatchAppend(patchFor(old, new, 500, map[string][]uint32{"a": {5, 40, 7}}))
	got, ok := c.Lookup(k, new)
	if !ok || fmt.Sprint(got) != fmt.Sprint([]uint32{1, 2, 3, 500, 501}) {
		t.Fatalf("grouped splice: ok=%v got=%v", ok, got)
	}
	// The patched entry still answers subset replays with the new rows.
	qk := Key{Table: "t", Col: "a", Kind: KindIn, Hash: 10, N: 1}
	r, ok := c.LookupInReuse(qk, new, []uint32{5})
	if !ok || len(r.Missing) != 0 || fmt.Sprint(r.Groups[0]) != fmt.Sprint([]uint32{3, 500}) {
		t.Fatalf("subset after splice: ok=%v %+v", ok, r)
	}
	// A batch with no listed value carries the entry untouched.
	newer := Token{Gen: 1, Epoch: 3}
	c.PatchAppend(patchFor(new, newer, 503, map[string][]uint32{"a": {6, 39}}))
	if got, ok := c.Lookup(k, newer); !ok || len(got) != 5 {
		t.Fatalf("grouped carry: ok=%v got=%v", ok, got)
	}
}

func TestPatchAggregates(t *testing.T) {
	c := New(admitAll(Options{}))
	old, new := Token{Gen: 1, Epoch: 1}, Token{Gen: 1, Epoch: 2}
	rows := []AggRow{{Value: 5, Count: 2, Sum: 30, Min: 10, Max: 20}}
	ka := Key{Table: "t", Col: "g", Kind: KindAgg, Hash: 1}
	c.InsertAgg(ka, old, "m", true, rows, 10)
	// Appended rows (g=5, m=7) and (g=9, m=100): group 5 extends, group 9
	// appears — exactly what recomputing over base ∪ delta would yield.
	c.PatchAppend(patchFor(old, new, 500, map[string][]uint32{"g": {5, 9}, "m": {7, 100}}))
	got, ok := c.LookupAgg(ka, new)
	want := []AggRow{
		{Value: 5, Count: 3, Sum: 37, Min: 7, Max: 20},
		{Value: 9, Count: 1, Sum: 100, Min: 100, Max: 100},
	}
	if !ok || fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("agg merge: ok=%v got=%v want=%v", ok, got, want)
	}

	// An explicit-RID aggregate is retokened unchanged: appends never mutate
	// the rows it was computed over.
	ke := Key{Table: "t", Col: "g", Kind: KindAgg, Hash: 2, N: 3}
	c.InsertAgg(ke, new, "m", false, rows, 10)
	newer := Token{Gen: 1, Epoch: 3}
	c.PatchAppend(patchFor(new, newer, 502, map[string][]uint32{"g": {5}, "m": {1}}))
	if got, ok := c.LookupAgg(ke, newer); !ok || fmt.Sprint(got) != fmt.Sprint(rows) {
		t.Fatalf("explicit-RID agg retoken: ok=%v got=%v", ok, got)
	}

	// A batch missing the measure column cannot extend an all-rows
	// aggregate: dropped.
	last := Token{Gen: 1, Epoch: 4}
	c.PatchAppend(patchFor(newer, last, 503, map[string][]uint32{"g": {5}}))
	if _, ok := c.LookupAgg(ka, last); ok {
		t.Fatal("all-rows aggregate survived a batch missing its measure column")
	}
}

func TestPatchWhereConjunction(t *testing.T) {
	c := New(admitAll(Options{}))
	old, new := Token{Gen: 1, Epoch: 1}, Token{Gen: 1, Epoch: 2}
	k := Key{Table: "t", Kind: KindWhere, Hash: 11, N: 2}
	preds := []PredBound{{Col: "a", Lo: 10, Hi: 20}, {Col: "b", Lo: 0, Hi: 5}}
	c.InsertWhere(k, old, preds, []uint32{8, 9}, 10)

	// Rows (500: a=15,b=3 → qualifies) (501: a=15,b=9 → fails b)
	// (502: a=25,b=1 → fails a).
	c.PatchAppend(patchFor(old, new, 500, map[string][]uint32{
		"a": {15, 15, 25},
		"b": {3, 9, 1},
	}))
	got, ok := c.Lookup(k, new)
	if !ok || fmt.Sprint(got) != fmt.Sprint([]uint32{8, 9, 500}) {
		t.Fatalf("where patch: ok=%v got=%v", ok, got)
	}
	// A batch missing one conjunct column drops the entry.
	newer := Token{Gen: 1, Epoch: 3}
	c.PatchAppend(patchFor(new, newer, 503, map[string][]uint32{"a": {15}}))
	if _, ok := c.Lookup(k, newer); ok {
		t.Fatal("where entry survived a batch missing a conjunct column")
	}
}

func TestPatchDropsJoinsAndStragglers(t *testing.T) {
	c := New(admitAll(Options{}))
	old, new := Token{Gen: 1, Epoch: 5}, Token{Gen: 1, Epoch: 6}
	jk := Key{Table: "t", Col: "k", Kind: KindJoin, Hash: 3}
	c.InsertPair(jk, old, []uint32{1}, []uint32{2}, 10)
	// A straggler entry from two epochs ago, and a fresher one from a racing
	// insert that must be left alone.
	sk := rangeKey("t", "a", 0, 9)
	c.InsertRange(sk, Token{Gen: 1, Epoch: 4}, seq(0, 10), seq(0, 10), 10)
	fk := rangeKey("t", "b", 0, 9)
	c.InsertRange(fk, Token{Gen: 1, Epoch: 7}, seq(0, 10), seq(0, 10), 10)

	c.PatchAppend(patchFor(old, new, 500, map[string][]uint32{"a": {100}, "b": {100}, "k": {100}}))
	if _, _, ok := c.LookupPair(jk, new); ok {
		t.Fatal("join entry survived an append patch")
	}
	if _, ok := c.Lookup(sk, Token{Gen: 1, Epoch: 4}); ok {
		t.Fatal("straggler entry survived the sweep")
	}
	if _, ok := c.Lookup(fk, Token{Gen: 1, Epoch: 7}); !ok {
		t.Fatal("patch removed an entry fresher than OldTok")
	}
}

func TestPatchScopesByColumnAndTable(t *testing.T) {
	c := New(admitAll(Options{}))
	old, new := Token{Epoch: 1}, Token{Epoch: 2}
	ka := rangeKey("t", "a", 0, 9)
	kb := rangeKey("t", "b", 0, 9)
	ko := rangeKey("other", "a", 0, 9)
	c.InsertRange(ka, old, seq(0, 10), seq(0, 10), 10)
	c.InsertRange(kb, old, seq(0, 10), seq(0, 10), 10)
	c.InsertRange(ko, old, seq(0, 10), seq(0, 10), 10)

	p := patchFor(old, new, 500, map[string][]uint32{"a": {100}})
	p.Col = "a"
	c.PatchAppend(p)
	if _, ok := c.Lookup(ka, new); !ok {
		t.Fatal("scoped column not patched")
	}
	if _, ok := c.Lookup(kb, old); !ok {
		t.Fatal("column outside the scope was touched")
	}
	if _, ok := c.Lookup(ko, old); !ok {
		t.Fatal("other table was touched")
	}
}

func TestPatchByteAccounting(t *testing.T) {
	c := New(admitAll(Options{Stripes: 1}))
	old, new := Token{Epoch: 1}, Token{Epoch: 2}
	c.InsertRange(rangeKey("t", "a", 0, 99), old, seq(0, 50), seq(100, 50), 10)
	before := c.Stats()
	c.PatchAppend(patchFor(old, new, 500, map[string][]uint32{"a": {5, 7}}))
	after := c.Stats()
	if after.Entries != before.Entries {
		t.Fatalf("entry count moved: %d → %d", before.Entries, after.Entries)
	}
	if want := before.Bytes + 2*8; after.Bytes != want {
		t.Fatalf("bytes %d after merging 2 pairs, want %d", after.Bytes, want)
	}
}

// TestPatchConcurrentWithLookups races PatchAppend sweeps against lookups
// and inserts; run with -race.  Lookups must only ever see a fully old or
// fully new entry for their token, never a torn payload.
func TestPatchConcurrentWithLookups(t *testing.T) {
	c := New(admitAll(Options{Stripes: 4}))
	k := rangeKey("t", "a", 0, 1000)
	c.InsertRange(k, Token{Epoch: 0}, seq(0, 100), seq(0, 100), 10)
	// Grouped-IN and aggregate entries ride the same sweeps so the reuse
	// lookups below race real patch targets ("a" doubles as the measure
	// column — the patch batches only carry that column).
	c.InsertIn(Key{Table: "t", Col: "a", Kind: KindIn, Hash: 97, N: 2},
		Token{Epoch: 0}, []uint32{5, 31}, []uint32{0, 1, 2}, []uint32{11, 12}, 10)
	c.InsertAgg(Key{Table: "t", Col: "a", Kind: KindAgg, Hash: 98},
		Token{Epoch: 0}, "a", true, []AggRow{{Value: 5, Count: 1, Sum: 2, Min: 2, Max: 2}}, 10)
	var wg sync.WaitGroup
	var cur atomic.Uint64 // last fully published epoch; readers never run ahead
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tok := Token{Epoch: cur.Load()}
				if got, ok := c.Lookup(k, tok); ok && len(got) < 100 {
					panic("torn payload observed")
				}
				c.LookupRange(rangeKey("t", "a", 3, 7), tok)
				// The reuse surfaces walk the same interval map and grouped
				// lists the patch sweep relinks; -race guards the walk.
				if sp, ok := c.StitchRange(rangeKey("t", "a", 3, 1500), tok); ok {
					n := 0
					for _, s := range sp.Segments {
						n += len(s.RIDs)
					}
					if n != sp.CachedRows {
						panic("stitch plan disagrees with its own segments")
					}
				}
				c.LookupInReuse(Key{Table: "t", Col: "a", Kind: KindIn, Hash: 99, N: 1}, tok, []uint32{uint32(7)})
				c.LookupAgg(Key{Table: "t", Col: "a", Kind: KindAgg, Hash: 98}, tok)
			}
		}()
	}
	for epoch := uint64(0); epoch < 64; epoch++ {
		c.PatchAppend(patchFor(Token{Epoch: epoch}, Token{Epoch: epoch + 1},
			uint32(100+epoch), map[string][]uint32{"a": {uint32(epoch * 31 % 2000)}}))
		cur.Store(epoch + 1)
	}
	close(stop)
	wg.Wait()
	if got, ok := c.Lookup(k, Token{Epoch: 64}); !ok || len(got) < 100 {
		t.Fatalf("entry lost after 64 patch sweeps: ok=%v len=%d", ok, len(got))
	}
}
