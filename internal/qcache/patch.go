package qcache

// Delta revalidation.  When a table absorbs an append batch into its delta
// layer instead of rebuilding, the previously cached results are not all
// garbage: a range whose bounds miss every appended value is still the
// exact answer under the new epoch, and a range that does intersect can be
// fixed by merging in the few qualifying rows — recomputing it would walk
// the whole index to rediscover everything it already holds.  PatchAppend
// is that sweep: one pass over the affected (table, layer) entries that
// carries each one across the epoch individually instead of the old
// drop-the-table invalidation, so an append-heavy stream stops paying a
// full cache rebuild per batch.
//
// Per kind:
//
//   - KindRange with a key run: qualifying appended (value, RID) pairs are
//     merged into the run.  Appended RIDs all exceed resident RIDs, so the
//     merged payload is exactly what recomputing against base ∪ delta
//     would produce.
//   - KindRange in row order (nil key run): qualifying RIDs are appended —
//     row order is ascending-RID order and appended RIDs are larger.
//   - KindIn with group offsets (index-path results): qualifying appended
//     rows are spliced into their value groups — appended RIDs exceed all
//     resident ones, so appending at a group's end preserves the
//     ascending-RID-within-value order a recompute would produce.
//   - KindIn without groups (scan/parallel path): carried over when no
//     appended value is in the list; a hit inside a value group would have
//     to splice mid-result, which needs offsets the entry does not keep,
//     so it drops.
//   - KindWhere with conjunct bounds: appended rows are qualified against
//     the whole conjunction and the survivors appended.
//   - KindAgg over all rows: the appended (group, measure) pairs fold into
//     the sorted group list — aggregates commute, so the merge equals a
//     recompute.  Over an explicit RID set the entry is retokened
//     unchanged: appends never mutate existing rows.
//   - KindJoin: dropped — a join result can grow with any appended inner
//     or outer row and the entry cannot tell.
//
// Entries are immutable after insert (readers copy payloads outside the
// stripe lock), so a patch REPLACES the entry rather than editing it; the
// old entry becomes a dead ring husk exactly as invalidation leaves one.

import "sort"

// PredBound is one conjunct of a cached KindWhere entry: the raw closed
// bounds its rows satisfy on one column.
type PredBound struct {
	Col    string
	Lo, Hi uint32
}

// AppendPatch describes one absorbed append batch to revalidate against.
type AppendPatch struct {
	Table string
	Layer Layer
	// Col restricts the sweep to one column's entries; "" sweeps every
	// column of the layer.  Epoch-layer callers patch per indexed column.
	Col string
	// OldTok is the token the surviving entries currently carry; NewTok is
	// the token they carry after the patch.  Entries with tokens older than
	// OldTok are removed (stragglers), newer ones are left alone.
	OldTok, NewTok Token
	// StartRID is the row ID of the first appended row: appended row i has
	// RID StartRID+i.
	StartRID uint32
	// Cols holds the appended raw values per column, row-aligned.  A kind
	// that needs a column missing here drops its entries instead.
	Cols map[string][]uint32
}

// PatchAppend revalidates the cached results of one (table, layer) across
// an absorbed append: every entry stamped OldTok is retokened, extended,
// or dropped per its kind (see the package comment above); entries with
// provably older tokens are dropped.  Safe to call concurrently with
// lookups and inserts — the sweep holds one stripe lock at a time.
func (c *Cache) PatchAppend(p AppendPatch) {
	if !c.Enabled() {
		return
	}
	// Sort each batch column's (value, RID) pairs once up front: patchOne
	// then finds an entry's qualifying rows by binary search instead of
	// scanning the whole batch per entry, so a sweep over many resident
	// entries costs O(entries·log batch + qualifying), not O(entries·batch).
	// Stable sort keeps equal values in append order, i.e. ascending RID —
	// the invariant every splice below relies on.
	sorted := make(map[string]sortedBatch, len(p.Cols))
	for col, vals := range p.Cols {
		sk := append([]uint32(nil), vals...)
		sr := make([]uint32, len(vals))
		for i := range sr {
			sr[i] = p.StartRID + uint32(i)
		}
		sortPairs(sk, sr)
		sorted[col] = sortedBatch{keys: sk, rids: sr}
	}
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		// Collect first: patching replaces map entries mid-iteration.
		var sweep []*entry
		for k, e := range st.m {
			if k.Table == p.Table && k.Layer == p.Layer && (p.Col == "" || k.Col == p.Col) {
				sweep = append(sweep, e)
			}
		}
		for _, e := range sweep {
			if e.dead {
				continue // superseded by an earlier patch's link this sweep
			}
			switch {
			case e.tok == p.OldTok:
				if st.patchOne(e, p, sorted, c) {
					st.stats.Patches++
				} else {
					st.remove(e, c)
					st.stats.Invalidations++
				}
			case olderOrEqual(e.tok, p.OldTok):
				st.remove(e, c)
				st.stats.Invalidations++
			}
		}
		if len(st.ring) > 4*st.live+64 {
			st.compactRing()
		}
		st.mu.Unlock()
	}
}

// sortedBatch is one batch column's (value, RID) pairs sorted by value —
// equal values keep append order, so RIDs ascend within a value.
type sortedBatch struct {
	keys, rids []uint32
}

// patchOne builds the entry's successor under NewTok and swaps it in, or
// reports false when the entry cannot be carried across the append.  The
// caller holds the stripe lock and removes the entry on false; sorted holds
// the batch columns presorted by value (see PatchAppend).
func (st *stripe) patchOne(e *entry, p AppendPatch, sorted map[string]sortedBatch, c *Cache) bool {
	ne := &entry{key: e.key, tok: p.NewTok, lo: e.lo, hi: e.hi, cost: e.cost, ref: e.ref}
	switch e.key.Kind {
	case KindRange:
		sb, ok := sorted[e.key.Col]
		if !ok {
			return false
		}
		f := sort.Search(len(sb.keys), func(i int) bool { return sb.keys[i] >= e.lo })
		l := sort.Search(len(sb.keys), func(i int) bool { return sb.keys[i] > e.hi })
		qKeys, qRids := sb.keys[f:l], sb.rids[f:l]
		switch {
		case len(qKeys) == 0:
			// No appended row lands in the bounds: same answer, new epoch.
			ne.keys, ne.rids = e.keys, e.rids
		case e.keys != nil:
			ne.keys, ne.rids = mergePairs(e.keys, e.rids, qKeys, qRids)
		default:
			// Row-order entry: qualifying RIDs append in ascending-RID
			// order, which the value sort scrambled.
			qr := append([]uint32(nil), qRids...)
			sort.Slice(qr, func(i, j int) bool { return qr[i] < qr[j] })
			ne.rids = concatU32(e.rids, qr)
		}
	case KindIn:
		sb, ok := sorted[e.key.Col]
		if !ok || e.vals == nil {
			return false
		}
		if e.goff != nil {
			// Grouped entry: splice qualifying appended rows into their
			// value groups.  adds[g] collects group g's new RIDs in append
			// order — ascending, and above every resident RID.
			var adds map[uint32][]uint32
			total := 0
			for pos, v := range e.vals {
				f := sort.Search(len(sb.keys), func(j int) bool { return sb.keys[j] >= v })
				for j := f; j < len(sb.keys) && sb.keys[j] == v; j++ {
					if adds == nil {
						adds = make(map[uint32][]uint32)
					}
					g := e.s2g[pos]
					adds[g] = append(adds[g], sb.rids[j])
					total++
				}
			}
			ne.vals, ne.s2g, ne.vmap = e.vals, e.s2g, e.vmap
			if total == 0 {
				ne.rids, ne.goff = e.rids, e.goff
				break
			}
			groups := len(e.goff) - 1
			rids := make([]uint32, 0, len(e.rids)+total)
			goff := make([]uint32, groups+1)
			for g := 0; g < groups; g++ {
				goff[g] = uint32(len(rids))
				rids = append(rids, e.rids[e.goff[g]:e.goff[g+1]]...)
				rids = append(rids, adds[uint32(g)]...)
			}
			goff[groups] = uint32(len(rids))
			ne.rids, ne.goff = rids, goff
			break
		}
		for _, v := range e.vals {
			j := sort.Search(len(sb.keys), func(i int) bool { return sb.keys[i] >= v })
			if j < len(sb.keys) && sb.keys[j] == v {
				return false
			}
		}
		ne.vals, ne.rids = e.vals, e.rids
	case KindWhere:
		if len(e.preds) == 0 {
			return false
		}
		n := -1
		for _, pb := range e.preds {
			col, ok := p.Cols[pb.Col]
			if !ok {
				return false
			}
			n = len(col)
		}
		var qRids []uint32
	rows:
		for i := 0; i < n; i++ {
			for _, pb := range e.preds {
				if v := p.Cols[pb.Col][i]; v < pb.Lo || v > pb.Hi {
					continue rows
				}
			}
			qRids = append(qRids, p.StartRID+uint32(i))
		}
		ne.preds = e.preds
		if len(qRids) == 0 {
			ne.rids = e.rids
		} else {
			ne.rids = concatU32(e.rids, qRids)
		}
	case KindAgg:
		ne.aggMeasure, ne.aggAll = e.aggMeasure, e.aggAll
		if !e.aggAll {
			// Explicit source rows: appended rows are not among them and
			// existing rows never change, so the result carries as-is.
			ne.aggs = e.aggs
			break
		}
		gvals, ok := p.Cols[e.key.Col]
		mvals, ok2 := p.Cols[e.aggMeasure]
		if !ok || !ok2 {
			return false
		}
		ne.aggs = mergeAggAppend(e.aggs, gvals, mvals)
	default: // KindJoin and anything unrecognised
		return false
	}
	ne.bytes = payloadBytes(ne)
	st.remove(e, c)
	if !st.evictFor(ne.bytes, c) {
		return false
	}
	st.m[ne.key] = ne
	st.link(ne, c)
	st.ring = append(st.ring, ne)
	st.bytes += ne.bytes
	st.live++
	st.stats.Entries++
	st.stats.Bytes += ne.bytes
	return true
}

// sortPairs sorts (keys, rids) in tandem by key, stably — both slices are
// generated in ascending-RID order, so stability yields (key, RID) order.
func sortPairs(keys, rids []uint32) {
	sort.Stable(pairsByKey{keys, rids})
}

type pairsByKey struct{ k, r []uint32 }

func (p pairsByKey) Len() int           { return len(p.k) }
func (p pairsByKey) Less(i, j int) bool { return p.k[i] < p.k[j] }
func (p pairsByKey) Swap(i, j int) {
	p.k[i], p.k[j] = p.k[j], p.k[i]
	p.r[i], p.r[j] = p.r[j], p.r[i]
}

// mergePairs merges two (key, RID) pair runs each sorted by (key, RID)
// into a fresh pair of slices; a-pairs win ties, which is (key, RID) order
// whenever every b-RID exceeds every a-RID (the append invariant).
func mergePairs(ak, ar, bk, br []uint32) (keys, rids []uint32) {
	keys = make([]uint32, 0, len(ak)+len(bk))
	rids = make([]uint32, 0, len(ar)+len(br))
	i, j := 0, 0
	for i < len(ak) && j < len(bk) {
		if ak[i] <= bk[j] {
			keys, rids = append(keys, ak[i]), append(rids, ar[i])
			i++
		} else {
			keys, rids = append(keys, bk[j]), append(rids, br[j])
			j++
		}
	}
	keys = append(append(keys, ak[i:]...), bk[j:]...)
	rids = append(append(rids, ar[i:]...), br[j:]...)
	return keys, rids
}

// concatU32 returns a fresh a ++ b.
func concatU32(a, b []uint32) []uint32 {
	return append(append(make([]uint32, 0, len(a)+len(b)), a...), b...)
}

// mergeAggAppend folds the appended rows' (group value, measure) pairs
// into a value-sorted aggregate slice, producing a fresh slice — exactly
// what recomputing the whole-table aggregate over base ∪ delta yields,
// because COUNT/SUM/MIN/MAX commute with row order.
func mergeAggAppend(aggs []AggRow, gvals, mvals []uint32) []AggRow {
	// Aggregate the batch by group value first (batches are small).
	gv := append([]uint32(nil), gvals...)
	mv := append([]uint32(nil), mvals...)
	sortPairs(gv, mv)
	delta := make([]AggRow, 0, len(gv))
	for i := 0; i < len(gv); {
		r := AggRow{Value: gv[i], Count: 1, Sum: uint64(mv[i]), Min: mv[i], Max: mv[i]}
		for i++; i < len(gv) && gv[i] == r.Value; i++ {
			v := mv[i]
			if v < r.Min {
				r.Min = v
			}
			if v > r.Max {
				r.Max = v
			}
			r.Count++
			r.Sum += uint64(v)
		}
		delta = append(delta, r)
	}
	out := make([]AggRow, 0, len(aggs)+len(delta))
	i, j := 0, 0
	for i < len(aggs) && j < len(delta) {
		switch {
		case aggs[i].Value < delta[j].Value:
			out = append(out, aggs[i])
			i++
		case aggs[i].Value > delta[j].Value:
			out = append(out, delta[j])
			j++
		default:
			r := aggs[i]
			d := delta[j]
			if d.Min < r.Min {
				r.Min = d.Min
			}
			if d.Max > r.Max {
				r.Max = d.Max
			}
			r.Count += d.Count
			r.Sum += d.Sum
			out = append(out, r)
			i, j = i+1, j+1
		}
	}
	out = append(append(out, aggs[i:]...), delta[j:]...)
	return out
}
