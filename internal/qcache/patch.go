package qcache

// Delta revalidation.  When a table absorbs an append batch into its delta
// layer instead of rebuilding, the previously cached results are not all
// garbage: a range whose bounds miss every appended value is still the
// exact answer under the new epoch, and a range that does intersect can be
// fixed by merging in the few qualifying rows — recomputing it would walk
// the whole index to rediscover everything it already holds.  PatchAppend
// is that sweep: one pass over the affected (table, layer) entries that
// carries each one across the epoch individually instead of the old
// drop-the-table invalidation, so an append-heavy stream stops paying a
// full cache rebuild per batch.
//
// Per kind:
//
//   - KindRange with a key run: qualifying appended (value, RID) pairs are
//     merged into the run.  Appended RIDs all exceed resident RIDs, so the
//     merged payload is exactly what recomputing against base ∪ delta
//     would produce.
//   - KindRange in row order (nil key run): qualifying RIDs are appended —
//     row order is ascending-RID order and appended RIDs are larger.
//   - KindIn: carried over when no appended value is in the list; a hit
//     inside a value group would have to splice mid-result, which needs
//     per-position values the entry does not keep, so it drops.
//   - KindWhere with conjunct bounds: appended rows are qualified against
//     the whole conjunction and the survivors appended.
//   - KindJoin: dropped — a join result can grow with any appended inner
//     or outer row and the entry cannot tell.
//
// Entries are immutable after insert (readers copy payloads outside the
// stripe lock), so a patch REPLACES the entry rather than editing it; the
// old entry becomes a dead ring husk exactly as invalidation leaves one.

import "sort"

// PredBound is one conjunct of a cached KindWhere entry: the raw closed
// bounds its rows satisfy on one column.
type PredBound struct {
	Col    string
	Lo, Hi uint32
}

// AppendPatch describes one absorbed append batch to revalidate against.
type AppendPatch struct {
	Table string
	Layer Layer
	// Col restricts the sweep to one column's entries; "" sweeps every
	// column of the layer.  Epoch-layer callers patch per indexed column.
	Col string
	// OldTok is the token the surviving entries currently carry; NewTok is
	// the token they carry after the patch.  Entries with tokens older than
	// OldTok are removed (stragglers), newer ones are left alone.
	OldTok, NewTok Token
	// StartRID is the row ID of the first appended row: appended row i has
	// RID StartRID+i.
	StartRID uint32
	// Cols holds the appended raw values per column, row-aligned.  A kind
	// that needs a column missing here drops its entries instead.
	Cols map[string][]uint32
}

// PatchAppend revalidates the cached results of one (table, layer) across
// an absorbed append: every entry stamped OldTok is retokened, extended,
// or dropped per its kind (see the package comment above); entries with
// provably older tokens are dropped.  Safe to call concurrently with
// lookups and inserts — the sweep holds one stripe lock at a time.
func (c *Cache) PatchAppend(p AppendPatch) {
	if !c.Enabled() {
		return
	}
	var patched, dropped int64
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		// Collect first: patching replaces map entries mid-iteration.
		var sweep []*entry
		for k, e := range st.m {
			if k.Table == p.Table && k.Layer == p.Layer && (p.Col == "" || k.Col == p.Col) {
				sweep = append(sweep, e)
			}
		}
		for _, e := range sweep {
			switch {
			case e.tok == p.OldTok:
				if st.patchOne(e, p, c) {
					patched++
				} else {
					st.remove(e, c)
					dropped++
				}
			case olderOrEqual(e.tok, p.OldTok):
				st.remove(e, c)
				dropped++
			}
		}
		if len(st.ring) > 4*st.live+64 {
			st.compactRing()
		}
		st.mu.Unlock()
	}
	c.stats.patches.Add(patched)
	c.stats.invalidations.Add(dropped)
}

// patchOne builds the entry's successor under NewTok and swaps it in, or
// reports false when the entry cannot be carried across the append.  The
// caller holds the stripe lock and removes the entry on false.
func (st *stripe) patchOne(e *entry, p AppendPatch, c *Cache) bool {
	ne := &entry{key: e.key, tok: p.NewTok, lo: e.lo, hi: e.hi, cost: e.cost, ref: e.ref}
	switch e.key.Kind {
	case KindRange:
		vals, ok := p.Cols[e.key.Col]
		if !ok {
			return false
		}
		var qKeys, qRids []uint32
		for i, v := range vals {
			if v >= e.lo && v <= e.hi {
				qKeys = append(qKeys, v)
				qRids = append(qRids, p.StartRID+uint32(i))
			}
		}
		switch {
		case len(qKeys) == 0:
			// No appended row lands in the bounds: same answer, new epoch.
			ne.keys, ne.rids = e.keys, e.rids
		case e.keys != nil:
			sortPairs(qKeys, qRids)
			ne.keys, ne.rids = mergePairs(e.keys, e.rids, qKeys, qRids)
		default:
			ne.rids = concatU32(e.rids, qRids)
		}
	case KindIn:
		vals, ok := p.Cols[e.key.Col]
		if !ok || e.vals == nil {
			return false
		}
		for _, v := range vals {
			i := sort.Search(len(e.vals), func(j int) bool { return e.vals[j] >= v })
			if i < len(e.vals) && e.vals[i] == v {
				return false
			}
		}
		ne.vals, ne.rids = e.vals, e.rids
	case KindWhere:
		if len(e.preds) == 0 {
			return false
		}
		n := -1
		for _, pb := range e.preds {
			col, ok := p.Cols[pb.Col]
			if !ok {
				return false
			}
			n = len(col)
		}
		var qRids []uint32
	rows:
		for i := 0; i < n; i++ {
			for _, pb := range e.preds {
				if v := p.Cols[pb.Col][i]; v < pb.Lo || v > pb.Hi {
					continue rows
				}
			}
			qRids = append(qRids, p.StartRID+uint32(i))
		}
		ne.preds = e.preds
		if len(qRids) == 0 {
			ne.rids = e.rids
		} else {
			ne.rids = concatU32(e.rids, qRids)
		}
	default: // KindJoin and anything unrecognised
		return false
	}
	ne.bytes = payloadBytes(ne)
	st.remove(e, c)
	if !st.evictFor(ne.bytes, c) {
		return false
	}
	st.m[ne.key] = ne
	if ne.keys != nil {
		ck := colKey{table: ne.key.Table, col: ne.key.Col, layer: ne.key.Layer}
		st.ranges[ck] = append(st.ranges[ck], ne)
	}
	st.ring = append(st.ring, ne)
	st.bytes += ne.bytes
	st.live++
	c.stats.entries.Add(1)
	c.stats.bytes.Add(ne.bytes)
	return true
}

// sortPairs sorts (keys, rids) in tandem by key, stably — both slices are
// generated in ascending-RID order, so stability yields (key, RID) order.
func sortPairs(keys, rids []uint32) {
	sort.Stable(pairsByKey{keys, rids})
}

type pairsByKey struct{ k, r []uint32 }

func (p pairsByKey) Len() int           { return len(p.k) }
func (p pairsByKey) Less(i, j int) bool { return p.k[i] < p.k[j] }
func (p pairsByKey) Swap(i, j int) {
	p.k[i], p.k[j] = p.k[j], p.k[i]
	p.r[i], p.r[j] = p.r[j], p.r[i]
}

// mergePairs merges two (key, RID) pair runs each sorted by (key, RID)
// into a fresh pair of slices; a-pairs win ties, which is (key, RID) order
// whenever every b-RID exceeds every a-RID (the append invariant).
func mergePairs(ak, ar, bk, br []uint32) (keys, rids []uint32) {
	keys = make([]uint32, 0, len(ak)+len(bk))
	rids = make([]uint32, 0, len(ar)+len(br))
	i, j := 0, 0
	for i < len(ak) && j < len(bk) {
		if ak[i] <= bk[j] {
			keys, rids = append(keys, ak[i]), append(rids, ar[i])
			i++
		} else {
			keys, rids = append(keys, bk[j]), append(rids, br[j])
			j++
		}
	}
	keys = append(append(keys, ak[i:]...), bk[j:]...)
	rids = append(append(rids, ar[i:]...), br[j:]...)
	return keys, rids
}

// concatU32 returns a fresh a ++ b.
func concatU32(a, b []uint32) []uint32 {
	return append(append(make([]uint32, 0, len(a)+len(b)), a...), b...)
}
