// Package qcache is an epoch-aware, cost-conscious semantic result cache
// for the mmdb execution engine.  Decision-support traffic repeats itself —
// the same range, IN-list and join sub-results recur across dashboards and
// Zipf-skewed probe streams — and in a main-memory system recomputing them
// burns exactly the cycles the paper's cache-conscious indexes fight to
// save.  The cache closes that loop: RID-slice results are stored under a
// canonical query fingerprint (fingerprint.go) and stamped with the
// (table generation, index/shard epoch) token they were computed against,
// so the epoch-swap serving layer's rebuild counter doubles as the
// invalidation signal.  No reader ever blocks on invalidation: a stale
// entry is simply a token mismatch at its next access.
//
// Concurrency: the cache is lock-striped.  A fingerprint's identity fields
// route it to one of a power-of-two number of stripes, each an independent
// (map, CLOCK ring, byte budget, counter cells) quad behind its own mutex;
// StatsSnapshot sums the stripe-local counters one stripe at a time, so a
// snapshot never observes half an update.  All result slices are copied on
// insert and on hit, so callers may mutate what they pass in and what they
// get back.
//
// Admission and eviction are benefit-based.  An entry is admitted only
// when its estimated recompute cost (the caller passes the max of the
// measured elapsed time and the planner's cost-model estimate) clears
// Options.MinCostNs and its bytes fit the stripe's share of the budget;
// expensive entries start with an extra CLOCK life.  Eviction is a
// CLOCK sweep — scan-resistant because entries enter cold (ref 0) and
// only observed hits warm them — so one pass of never-repeated queries
// cannot flush the working set of a hot dashboard.
//
// Beyond exact replay, the cache is an intermediate-reuse engine (the
// recycler): partially overlapping work is salvaged instead of recomputed.
// Three reuse classes (stitch.go):
//
//   - Containment and stitching for ranges.  A cached closed [lo, hi] run
//     stores its sorted raw key values next to the RIDs, so any subrange
//     under the same token is answered by two binary searches and a slice
//     copy.  When no single run covers the request, StitchRange walks the
//     per-column ordered interval map (range entries sorted by lo) and
//     greedily assembles maximal cached segments plus the uncovered gaps;
//     the caller probes only the gaps, concatenates in value order, and
//     admits the stitched run — so hot dashboards converge to one covering
//     run (admission drops same-token entries the new run fully covers).
//   - IN-list subset/superset reuse.  Index-path IN entries record per-value
//     group offsets, so a query whose value list is a subset of a cached one
//     replays by concatenating the cached groups, and a near-superset probes
//     only the missing values and splices them in.
//   - GroupAggregate caching (KindAgg).  Grouped-aggregation results are
//     cached whole and carried across absorbed appends by merging the
//     appended rows' group deltas into the sorted group list.
//
// Whether a stitch or superset fill beats recomputing is the caller's call:
// the cache only reports what it holds (segments, gaps, groups, missing
// values), and mmdb's cost model prices the gap probes against a fresh
// computation before committing (NoteStitch/NoteInFill then settle the
// hit/miss accounting).
//
// Appends that the table absorbs into its delta layer (rather than folding
// into a rebuilt run) do not invalidate wholesale: PatchAppend (patch.go)
// sweeps the affected table/layer and carries each entry across the epoch
// individually — retokened untouched when the appended batch cannot change
// its answer, merged with the qualifying appended rows when it can (range
// runs merge pairs, grouped IN entries splice rows into their value groups,
// whole-table aggregates fold in the appended groups), and dropped only
// when neither is possible.
package qcache

import (
	"sort"
	"sync"
)

// Options configures New.
type Options struct {
	// MaxBytes is the byte budget for cached result payloads (RID runs,
	// key runs, join pairs).  0 means DefaultMaxBytes.
	MaxBytes int64
	// MinCostNs is the admission floor: results whose estimated recompute
	// cost is below it are not worth a cache slot.  0 means
	// DefaultMinCostNs; negative admits everything.
	MinCostNs int64
	// Stripes is the lock-stripe count, rounded up to a power of two.
	// 0 means 16.
	Stripes int
	// Disabled makes every operation a no-op (the cache still answers
	// Stats with zeros), so callers can keep one code path.
	Disabled bool
}

// Default budget and admission floor.
const (
	DefaultMaxBytes  = 64 << 20 // 64 MiB of cached results
	DefaultMinCostNs = 1000     // don't cache queries cheaper than ~1µs
)

// entry is one cached result.  Entries are immutable after insertion
// except for the CLOCK bookkeeping, which is only touched under the
// stripe lock.
type entry struct {
	key Key
	tok Token

	// Range payload: keys is the sorted raw-value run aligned with rids
	// (nil for exact-only entries), and lo/hi the covered closed value
	// bounds.
	lo, hi uint32
	keys   []uint32

	rids []uint32
	// inner is the second column of a join-pair result (rids holds the
	// outer RIDs); nil for every other kind.
	inner []uint32
	// vals is the sorted deduplicated value list of an IN entry and preds
	// the conjunct bounds of a where entry: the payloads PatchAppend needs
	// to decide whether an absorbed append intersects the entry.  nil
	// means the entry cannot be patched and drops on append instead.
	vals  []uint32
	preds []PredBound
	// goff are an index-path IN entry's group offsets: the rows of the
	// i-th listed value (first-occurrence order) are rids[goff[i]:goff[i+1]],
	// and s2g maps each sorted position in vals back to its group index.
	// nil goff marks an ungrouped entry (scan/parallel path): exact reuse
	// only, no subset replay, carry-or-drop on append.
	goff []uint32
	s2g  []uint32
	// vmap maps each listed value of a grouped IN entry to its group
	// index: the subset-replay scan probes it instead of binary-searching
	// vals, so scoring a candidate costs O(query) map hits.  Shared, never
	// mutated — patches carry it to their successor entry.
	vmap map[uint32]uint32
	// aggs is a cached GroupAggregate result sorted by group value, with
	// aggMeasure the measure column it aggregates and aggAll marking a
	// whole-table (nil RID) source — the only kind PatchAppend can extend.
	aggs       []AggRow
	aggMeasure string
	aggAll     bool

	cost  int64 // estimated recompute cost, ns
	bytes int64
	ref   int8 // CLOCK lives: hits warm it, the hand cools it
	dead  bool // removed from the map; husk awaiting ring reap
}

// stripe is one independently locked cache partition.
type stripe struct {
	mu sync.Mutex
	m  map[Key]*entry
	// ranges holds, per column, the range entries carrying a key run —
	// ordered by (lo, hi) so it doubles as the interval map containment
	// and stitch lookups walk.
	ranges map[colKey][]*entry
	// ins holds, per column, the grouped IN entries — the subset/superset
	// reuse candidates.
	ins   map[colKey][]*entry
	ring  []*entry // CLOCK ring (insertion order, holes marked dead)
	hand  int
	bytes int64
	live  int
	// stats are this stripe's counter cells: plain int64s touched only
	// under mu, summed once per stripe by StatsSnapshot.
	stats Stats
}

// Cache is a concurrent, cost-aware query-result cache.  A nil *Cache is
// valid and behaves as permanently disabled, so holders need no nil checks.
type Cache struct {
	opts       Options
	stripeMask uint64
	budget     int64 // per-stripe byte budget
	stripes    []stripe
}

// New builds a cache.  See Options for defaults.
func New(opts Options) *Cache {
	if opts.MaxBytes == 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.MinCostNs == 0 {
		opts.MinCostNs = DefaultMinCostNs
	}
	n := opts.Stripes
	if n <= 0 {
		n = 16
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	c := &Cache{
		opts:       opts,
		stripeMask: uint64(pow - 1),
		budget:     opts.MaxBytes / int64(pow),
		stripes:    make([]stripe, pow),
	}
	for i := range c.stripes {
		c.stripes[i].m = make(map[Key]*entry)
		c.stripes[i].ranges = make(map[colKey][]*entry)
		c.stripes[i].ins = make(map[colKey][]*entry)
	}
	return c
}

// Enabled reports whether operations can have any effect.
func (c *Cache) Enabled() bool { return c != nil && !c.opts.Disabled }

// MinCostNs returns the admission floor (0 for a disabled cache), so
// callers can skip cost bookkeeping that could never be admitted.
func (c *Cache) MinCostNs() int64 {
	if !c.Enabled() {
		return 0
	}
	return c.opts.MinCostNs
}

// MaxEntryBytes returns the largest payload admission can accept (half a
// stripe's budget share; 0 for a disabled cache), so callers producing
// large results can skip staging work that would only be rejected.
func (c *Cache) MaxEntryBytes() int64 {
	if !c.Enabled() {
		return 0
	}
	return c.budget / 2
}

// Lookup returns a copy of the RIDs cached under exactly this fingerprint
// and token.  A token mismatch invalidates the stale entry in place.
func (c *Cache) Lookup(k Key, tok Token) ([]uint32, bool) {
	e := c.get(k, tok)
	if e == nil {
		return nil, false
	}
	return append([]uint32(nil), e.rids...), true
}

// LookupPair returns copies of a cached join-pair result (outer RIDs,
// inner RIDs).
func (c *Cache) LookupPair(k Key, tok Token) (outer, inner []uint32, ok bool) {
	e := c.get(k, tok)
	if e == nil {
		return nil, nil, false
	}
	return append([]uint32(nil), e.rids...), append([]uint32(nil), e.inner...), true
}

// LookupPairCount returns the size of a cached join-pair result without
// copying the pairs — the count-only join's O(1) hit path.
func (c *Cache) LookupPairCount(k Key, tok Token) (int, bool) {
	e := c.get(k, tok)
	if e == nil {
		return 0, false
	}
	return len(e.rids), true
}

// olderOrEqual reports whether token a is not newer than b.  Both token
// components are monotonic counters (generations only ever increment,
// epoch uids are globally unique and increasing), so a ≤ b component-wise
// means a's state is provably no fresher than b's.
func olderOrEqual(a, b Token) bool { return a.Gen <= b.Gen && a.Epoch <= b.Epoch }

// lookupLocked is the shared exact-match step: it returns the entry with
// its ref warmed, or nil after reaping a provably stale entry (counted as
// an invalidation).  A mismatching entry with a NEWER token is left
// alone: a straggler reader still holding a pre-swap snapshot must not
// evict the current epoch's entries out from under the readers they
// serve.  The caller holds the stripe lock and settles the hit/miss
// accounting for the outcome it commits to.  The returned entry is only
// read — entries are immutable after insert — so callers may copy the
// payload out after unlocking.
func (st *stripe) lookupLocked(k Key, tok Token, c *Cache) *entry {
	e, ok := st.m[k]
	if ok && e.tok == tok {
		if e.ref < 3 {
			e.ref++
		}
		return e
	}
	if ok && olderOrEqual(e.tok, tok) {
		// Same question, older state: the epoch moved on under this entry.
		st.remove(e, c)
		st.stats.Invalidations++
	}
	return nil
}

// get is the exact-match path with hit/miss accounting settled under the
// stripe lock.
func (c *Cache) get(k Key, tok Token) *entry {
	if !c.Enabled() {
		return nil
	}
	st := c.stripeFor(k)
	st.mu.Lock()
	e := st.lookupLocked(k, tok, c)
	if e != nil {
		st.stats.Hits++
	} else {
		st.stats.Misses++
	}
	st.mu.Unlock()
	return e
}

// HitKind classifies how LookupRangeKind answered, for tracing and
// EXPLAIN-style output.
type HitKind uint8

const (
	HitMiss      HitKind = iota // not answered from cache
	HitExact                    // same fingerprint, same token
	HitContained                // sliced from a covering cached run
)

// String names the hit kind the way EXPLAIN output spells it.
func (h HitKind) String() string {
	switch h {
	case HitExact:
		return "hit"
	case HitContained:
		return "contained"
	default:
		return "miss"
	}
}

// LookupRange answers a range fingerprint (k.Kind must be KindRange),
// first by exact match, then by containment: any valid cached run on the
// same column whose closed value bounds cover [k.Lo, k.Hi] yields the
// answer by two binary searches and a slice copy.
func (c *Cache) LookupRange(k Key, tok Token) ([]uint32, bool) {
	rids, kind := c.LookupRangeKind(k, tok)
	return rids, kind != HitMiss
}

// LookupRangeKind is LookupRange reporting how the answer was found —
// the tracer's variant; the accounting is identical.
func (c *Cache) LookupRangeKind(k Key, tok Token) ([]uint32, HitKind) {
	if !c.Enabled() {
		return nil, HitMiss
	}
	// One lock acquisition answers exact match, containment, and the
	// accounting: exactly one of hit / contained-hit / miss is counted,
	// under the same lock a StatsSnapshot sums this stripe with.
	st := c.stripeFor(k)
	st.mu.Lock()
	if e := st.lookupLocked(k, tok, c); e != nil {
		st.stats.Hits++
		st.mu.Unlock()
		return append([]uint32(nil), e.rids...), HitExact
	}
	// An inverted key ([Lo, Hi] with Lo > Hi) is an empty range; refusing
	// containment keeps the slice arithmetic below in bounds.
	if k.Lo <= k.Hi {
		ck := colKey{table: k.Table, col: k.Col, layer: k.Layer}
		for _, e := range st.ranges[ck] {
			if e.lo > k.Lo {
				break // interval map is ordered by lo: nothing further can cover
			}
			if e.dead || e.tok != tok || e.hi < k.Hi {
				continue
			}
			first := sort.Search(len(e.keys), func(i int) bool { return e.keys[i] >= k.Lo })
			last := sort.Search(len(e.keys), func(i int) bool { return e.keys[i] > k.Hi })
			out := append([]uint32(nil), e.rids[first:last]...)
			if e.ref < 3 {
				e.ref++
			}
			st.stats.Hits++
			st.stats.ContainedHits++
			st.mu.Unlock()
			return out, HitContained
		}
	}
	st.stats.Misses++
	st.mu.Unlock()
	return nil, HitMiss
}

// Insert caches a result under the fingerprint and token.  The slice is
// copied; admission may reject (cost floor, oversized, or unevictable
// pressure).
func (c *Cache) Insert(k Key, tok Token, rids []uint32, costNs int64) {
	c.insert(&entry{key: k, tok: tok, rids: rids, cost: costNs})
}

// InsertRange caches a range result together with its sorted raw key run
// (keys[i] is the raw column value at rids[i]; nil disables containment
// reuse for this entry, e.g. scan-path results in row order).  k.Lo/k.Hi
// must be the closed raw value bounds the run covers.
func (c *Cache) InsertRange(k Key, tok Token, keys, rids []uint32, costNs int64) {
	c.insert(&entry{key: k, tok: tok, lo: k.Lo, hi: k.Hi, keys: keys, rids: rids, cost: costNs})
}

// InsertIn caches an IN-list result.  distinct is the deduplicated value
// list in first-occurrence order (the order the result groups follow); the
// cache keeps a sorted copy so PatchAppend can qualify absorbed appends
// against the entry.  A non-nil goff records the group offsets of an
// index-path result (distinct[i]'s rows are rids[goff[i]:goff[i+1]]),
// enabling subset/superset reuse and per-group append splicing; nil goff
// degrades to exact reuse with carry-or-drop patching (scan-path results
// are in row order and cannot be partitioned per value).
func (c *Cache) InsertIn(k Key, tok Token, distinct, goff, rids []uint32, costNs int64) {
	if !c.Enabled() {
		return
	}
	if len(distinct) == 0 {
		c.insert(&entry{key: k, tok: tok, rids: rids, cost: costNs})
		return
	}
	e := &entry{key: k, tok: tok, rids: rids, cost: costNs}
	e.vals = append([]uint32(nil), distinct...)
	sort.Slice(e.vals, func(i, j int) bool { return e.vals[i] < e.vals[j] })
	if goff != nil {
		if len(goff) != len(distinct)+1 {
			c.countReject(k)
			return // malformed group offsets: refuse rather than mis-slice
		}
		e.goff = goff
		// s2g maps sorted-value positions back to first-occurrence groups;
		// vmap answers "which group holds value v" in one hash probe.
		e.s2g = make([]uint32, len(distinct))
		e.vmap = make(map[uint32]uint32, len(distinct))
		for g, v := range distinct {
			p := sort.Search(len(e.vals), func(i int) bool { return e.vals[i] >= v })
			e.s2g[p] = uint32(g)
			e.vmap[v] = uint32(g)
		}
	}
	c.insert(e)
}

// InsertAgg caches a grouped-aggregation result (rows sorted by group
// value, as GroupAggregate produces).  measureCol names the aggregated
// column and allRows marks a whole-table source — the only kind
// PatchAppend can extend with absorbed appends; explicit-RID sources are
// retokened unchanged (appends never mutate existing rows).
func (c *Cache) InsertAgg(k Key, tok Token, measureCol string, allRows bool, rows []AggRow, costNs int64) {
	c.insert(&entry{key: k, tok: tok, aggs: rows, aggMeasure: measureCol, aggAll: allRows, cost: costNs})
}

// InsertWhere caches a conjunction result together with its conjunct
// bounds (raw closed bounds per column), which lets PatchAppend qualify
// appended rows against the whole predicate and extend the entry in place.
// A nil preds degrades to Insert: exact reuse only.
func (c *Cache) InsertWhere(k Key, tok Token, preds []PredBound, rids []uint32, costNs int64) {
	c.insert(&entry{key: k, tok: tok, preds: preds, rids: rids, cost: costNs})
}

// InsertPair caches a join-pair result (outer[i] joined inner[i]).
func (c *Cache) InsertPair(k Key, tok Token, outer, inner []uint32, costNs int64) {
	c.insert(&entry{key: k, tok: tok, rids: outer, inner: inner, cost: costNs})
}

// entryOverheadBytes charges each entry for its struct, map slot and ring
// slot, so byte accounting stays honest for tiny results.
const entryOverheadBytes = 160

// EntryBytesForPairs returns the bytes a join-pair result of count pairs
// would be charged, so producers can pair it with MaxEntryBytes and skip
// staging results admission would reject.
func EntryBytesForPairs(count int) int64 { return entryOverheadBytes + 8*int64(count) }

// payloadBytes charges an entry for its payload slices plus the fixed
// overhead; shared between insert admission and PatchAppend re-accounting.
func payloadBytes(e *entry) int64 {
	b := entryOverheadBytes + 4*int64(len(e.rids)+len(e.keys)+len(e.inner)+len(e.vals)+len(e.goff)+len(e.s2g))
	b += 16 * int64(len(e.vmap)) // ~bucket cost of the value→group hash
	b += 32*int64(len(e.aggs)) + int64(len(e.aggMeasure))
	for _, p := range e.preds {
		b += 24 + int64(len(p.Col))
	}
	return b
}

func (c *Cache) insert(e *entry) {
	if !c.Enabled() {
		return
	}
	if c.opts.MinCostNs >= 0 && e.cost < c.opts.MinCostNs {
		c.countReject(e.key)
		return
	}
	e.bytes = payloadBytes(e)
	if e.bytes > c.budget/2 {
		// One result must never monopolise a stripe.
		c.countReject(e.key)
		return
	}
	// Copy the payload before taking the lock; callers own their slices.
	e.rids = append([]uint32(nil), e.rids...)
	e.keys = append([]uint32(nil), e.keys...)
	e.inner = append([]uint32(nil), e.inner...)
	e.vals = append([]uint32(nil), e.vals...)
	e.preds = append([]PredBound(nil), e.preds...)
	e.goff = append([]uint32(nil), e.goff...)
	e.s2g = append([]uint32(nil), e.s2g...)
	e.aggs = append([]AggRow(nil), e.aggs...)
	// Expensive results get one extra CLOCK life up front: benefit-based
	// admission's counterpart on the eviction side.
	if c.opts.MinCostNs > 0 && e.cost >= 8*c.opts.MinCostNs {
		e.ref = 1
	}

	st := c.stripeFor(e.key)
	st.mu.Lock()
	if old, ok := st.m[e.key]; ok {
		if old.tok != e.tok && !olderOrEqual(old.tok, e.tok) {
			// The resident entry is fresher: a straggler's late result
			// must not clobber the current epoch's.
			st.stats.Rejects++
			st.mu.Unlock()
			return
		}
		st.remove(old, c) // replace: same question, same-or-older state
	}
	if !st.evictFor(e.bytes, c) {
		st.stats.Rejects++
		st.mu.Unlock()
		return
	}
	st.m[e.key] = e
	st.link(e, c)
	st.ring = append(st.ring, e)
	st.bytes += e.bytes
	st.live++
	st.stats.Inserts++
	st.stats.Entries++
	st.stats.Bytes += e.bytes
	// Bound the husk build-up when invalidation outpaces eviction.
	if len(st.ring) > 4*st.live+64 {
		st.compactRing()
	}
	st.mu.Unlock()
}

// countReject counts one admission rejection on the key's stripe — the
// pre-lock reject paths (cost floor, oversize, malformed offsets) route
// here so every counter update stays under a stripe lock.
func (c *Cache) countReject(k Key) {
	st := c.stripeFor(k)
	st.mu.Lock()
	st.stats.Rejects++
	st.mu.Unlock()
}

// DropTable removes every entry of one table — the eager half of
// generation invalidation, called by AppendRows after it publishes the
// rebuilt state.  Readers of other stripes are untouched; readers of the
// same stripe wait only for the sweep of that stripe.  Entries inserted
// by in-flight readers still holding the old state are caught lazily by
// their token at next access.
func (c *Cache) DropTable(table string) {
	if !c.Enabled() {
		return
	}
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		for k, e := range st.m {
			if k.Table == table {
				st.remove(e, c)
				st.stats.Invalidations++
			}
		}
		st.mu.Unlock()
	}
}

// link adds an entry to the per-column reuse lists: range runs splice into
// the lo-ordered interval map, grouped IN entries append to the candidate
// list.  A new range run also supersedes same-token entries it fully
// covers — containment answers every query they could, so keeping them
// only bloats the interval walk; this is how a shifting dashboard's
// stitched runs converge instead of accumulating.  Caller holds the
// stripe lock.
func (st *stripe) link(e *entry, c *Cache) {
	if e.keys != nil {
		ck := colKey{table: e.key.Table, col: e.key.Col, layer: e.key.Layer}
		list := st.ranges[ck]
		for i := 0; i < len(list); {
			x := list[i]
			if x != e && x.tok == e.tok && x.lo >= e.lo && x.hi <= e.hi {
				st.remove(x, c) // splices list in place
				list = st.ranges[ck]
				continue
			}
			i++
		}
		i := sort.Search(len(list), func(j int) bool {
			return list[j].lo > e.lo || (list[j].lo == e.lo && list[j].hi >= e.hi)
		})
		list = append(list, nil)
		copy(list[i+1:], list[i:])
		list[i] = e
		st.ranges[ck] = list
	}
	if e.goff != nil {
		ck := colKey{table: e.key.Table, col: e.key.Col, layer: e.key.Layer}
		st.ins[ck] = append(st.ins[ck], e)
	}
}

// remove unlinks an entry from the map and reuse lists, marks its ring
// slot dead, and adjusts the residency accounting.  The interval map
// splice preserves order.  Caller holds the stripe lock.
func (st *stripe) remove(e *entry, c *Cache) {
	if e.dead {
		return
	}
	delete(st.m, e.key)
	if e.keys != nil {
		ck := colKey{table: e.key.Table, col: e.key.Col, layer: e.key.Layer}
		list := st.ranges[ck]
		for i, x := range list {
			if x == e {
				copy(list[i:], list[i+1:])
				list[len(list)-1] = nil
				st.ranges[ck] = list[:len(list)-1]
				break
			}
		}
		if len(st.ranges[ck]) == 0 {
			delete(st.ranges, ck)
		}
	}
	if e.goff != nil {
		ck := colKey{table: e.key.Table, col: e.key.Col, layer: e.key.Layer}
		list := st.ins[ck]
		for i, x := range list {
			if x == e {
				list[i] = list[len(list)-1]
				list[len(list)-1] = nil
				st.ins[ck] = list[:len(list)-1]
				break
			}
		}
		if len(st.ins[ck]) == 0 {
			delete(st.ins, ck)
		}
	}
	e.dead = true
	st.bytes -= e.bytes
	st.live--
	st.stats.Entries--
	st.stats.Bytes -= e.bytes
}

// compactRing filters dead husks out of the CLOCK ring.
func (st *stripe) compactRing() {
	live := st.ring[:0]
	for _, e := range st.ring {
		if !e.dead {
			live = append(live, e)
		}
	}
	for i := len(live); i < len(st.ring); i++ {
		st.ring[i] = nil
	}
	st.ring = live
	st.hand = 0
}
