package qcache

// Intermediate reuse: answering a query from cached results that only
// partially overlap it.  The cache side is pure mechanism — StitchRange,
// LookupInReuse and LookupAgg report what is reusable (cached segments and
// uncovered gaps, cached value groups and missing values, whole aggregate
// slices) and the execution engine decides whether filling the holes beats
// recomputing (its cost model knows probe and gather prices; the cache
// does not).  When the caller commits to a partial answer it settles the
// accounting with NoteStitch/NoteInFill, trading the exact-lookup miss it
// already counted for a hit of the right kind.
//
// All returned slices alias immutable cache memory (entries are never
// edited after insert — patches replace them), so they are safe to read
// without the stripe lock but must be copied before mutation.

import "sort"

// RangeSegment is one cached piece of a stitch plan: the (value, RID)
// pairs covering the closed value interval [Lo, Hi], sliced from an
// immutable cached run.
type RangeSegment struct {
	Lo, Hi uint32
	Keys   []uint32
	RIDs   []uint32
}

// RangeGap is an uncovered closed value interval the caller must probe.
type RangeGap struct{ Lo, Hi uint32 }

// StitchPlan decomposes a requested range into cached segments and
// uncovered gaps.  Both lists are ascending and disjoint, and together
// they tile the request exactly, so the answer is the in-order
// concatenation of segment pairs and gap probe results.
type StitchPlan struct {
	Segments []RangeSegment
	Gaps     []RangeGap
	// CachedRows is the total pair count across Segments — the copy-cost
	// input to the caller's stitch-vs-recompute break-even.
	CachedRows int
}

// StitchRange plans answering the range fingerprint k (Kind KindRange,
// closed bounds k.Lo/k.Hi) from the overlapping cached runs of the same
// column and token.  It walks the lo-ordered interval map greedily,
// picking at each uncovered point the valid run reaching furthest right.
// ok is false when no cached run overlaps the request at all (a plan that
// is all gap is a recompute, not a stitch).  The caller should first try
// LookupRange: a single fully-covering run is the cheaper containment
// path and never reaches here.
func (c *Cache) StitchRange(k Key, tok Token) (*StitchPlan, bool) {
	if !c.Enabled() || k.Lo > k.Hi {
		return nil, false
	}
	st := c.stripeFor(k)
	ck := colKey{table: k.Table, col: k.Col, layer: k.Layer}
	st.mu.Lock()
	defer st.mu.Unlock()
	list := st.ranges[ck]
	if len(list) == 0 {
		return nil, false
	}
	plan := &StitchPlan{}
	cur := k.Lo
	i := 0
	for {
		// Among runs starting at or before cur, pick the one reaching
		// furthest right.  Runs passed over here can never cover a later
		// cur (it only grows past their hi), so the scan is one pass.
		var best *entry
		for ; i < len(list) && list[i].lo <= cur; i++ {
			if e := list[i]; e.tok == tok && e.hi >= cur && (best == nil || e.hi > best.hi) {
				best = e
			}
		}
		if best == nil {
			// Gap from cur to the next valid run's start (or the end).
			if i >= len(list) || list[i].lo > k.Hi {
				plan.Gaps = append(plan.Gaps, RangeGap{Lo: cur, Hi: k.Hi})
				break
			}
			if list[i].tok != tok {
				i++
				continue
			}
			plan.Gaps = append(plan.Gaps, RangeGap{Lo: cur, Hi: list[i].lo - 1})
			cur = list[i].lo
			continue
		}
		segHi := best.hi
		if segHi > k.Hi {
			segHi = k.Hi
		}
		first := sort.Search(len(best.keys), func(j int) bool { return best.keys[j] >= cur })
		last := sort.Search(len(best.keys), func(j int) bool { return best.keys[j] > segHi })
		plan.Segments = append(plan.Segments, RangeSegment{
			Lo: cur, Hi: segHi,
			Keys: best.keys[first:last], RIDs: best.rids[first:last],
		})
		plan.CachedRows += last - first
		if best.ref < 3 {
			best.ref++
		}
		if segHi == k.Hi {
			break
		}
		cur = segHi + 1 // segHi < k.Hi, so this cannot wrap
	}
	if len(plan.Segments) == 0 {
		return nil, false
	}
	return plan, true
}

// NoteStitch settles the accounting after the caller commits to a stitch
// plan for fingerprint k: the exact-lookup miss already counted becomes a
// stitched hit, and the gap probes it cost are recorded.  The whole trade
// happens under k's stripe lock, so a concurrent StatsSnapshot sees it
// entirely or not at all.
func (c *Cache) NoteStitch(k Key, gaps int) {
	if !c.Enabled() {
		return
	}
	st := c.stripeFor(k)
	st.mu.Lock()
	st.stats.Misses--
	st.stats.Hits++
	st.stats.StitchedHits++
	st.stats.GapProbes += int64(gaps)
	st.mu.Unlock()
}

// InReuse describes how an IN-list can be assembled from the best cached
// grouped entry: Groups[i] holds the cached rows of the i-th query value
// (in the query's first-occurrence order; empty but non-nil when the
// entry knows the value matches no rows), and a nil Groups[i] means the
// value is absent from the cached list and must be probed — those values
// repeat in Missing, in query order.
type InReuse struct {
	Groups  [][]uint32
	Missing []uint32
}

// emptyGroup distinguishes "cached as empty" from "unknown, probe it".
var emptyGroup = []uint32{}

// LookupInReuse answers an IN fingerprint from the grouped IN entries of
// the same column and token.  distinct must be the deduplicated query
// values in first-occurrence order (the order the result concatenates
// groups in).  A full subset match is complete — no probes needed — and is
// counted as a subset hit here; a partial match returns the covered groups
// plus the missing values and counts nothing until the caller commits with
// NoteInFill.  The entry covering the most query values wins.
func (c *Cache) LookupInReuse(k Key, tok Token, distinct []uint32) (*InReuse, bool) {
	if !c.Enabled() || len(distinct) == 0 {
		return nil, false
	}
	st := c.stripeFor(k)
	ck := colKey{table: k.Table, col: k.Col, layer: k.Layer}
	st.mu.Lock()
	defer st.mu.Unlock()
	cands := st.ins[ck]
	var best *entry
	bestCovered := 0
	// Phase 1: a full-subset source.  The check is boolean, so a wrong
	// candidate is dismissed at its first missing value — usually one map
	// probe — instead of being scored against the whole query.
scan:
	for _, e := range cands {
		if e.tok != tok || e.vmap == nil || len(e.vals) < len(distinct) {
			continue
		}
		for _, v := range distinct {
			if _, ok := e.vmap[v]; !ok {
				continue scan
			}
		}
		best, bestCovered = e, len(distinct)
		break
	}
	// Phase 2: no full cover, so score for the best partial — worth the
	// full scan only now, because the caller's fill path is about to pay
	// for index probes anyway.  An entry one fifth shorter than the query
	// cannot reach the ~80% coverage a fill needs; skip it.
	if best == nil {
		for _, e := range cands {
			if e.tok != tok || e.vmap == nil || 5*len(e.vals) < 4*len(distinct) {
				continue
			}
			covered := 0
			for _, v := range distinct {
				if _, ok := e.vmap[v]; ok {
					covered++
				}
			}
			if covered > bestCovered {
				best, bestCovered = e, covered
			}
		}
	}
	if best == nil {
		return nil, false
	}
	r := &InReuse{Groups: make([][]uint32, len(distinct))}
	for i, v := range distinct {
		if g, ok := best.vmap[v]; ok {
			grp := best.rids[best.goff[g]:best.goff[g+1]]
			if grp == nil {
				grp = emptyGroup
			}
			r.Groups[i] = grp
		} else {
			r.Missing = append(r.Missing, v)
		}
	}
	if best.ref < 3 {
		best.ref++
	}
	if len(r.Missing) == 0 {
		// A complete replay: settle the exact-lookup miss now, still under
		// the stripe lock held since entry.
		st.stats.Misses--
		st.stats.Hits++
		st.stats.SubsetHits++
	}
	return r, true
}

// NoteInFill settles the accounting after the caller commits to a
// superset fill for fingerprint k: the exact-lookup miss becomes a
// superset hit, and the missing-key probes it cost are recorded — all
// under k's stripe lock so the trade is never half-visible.
func (c *Cache) NoteInFill(k Key, missing int) {
	if !c.Enabled() {
		return
	}
	st := c.stripeFor(k)
	st.mu.Lock()
	st.stats.Misses--
	st.stats.Hits++
	st.stats.SupersetHits++
	st.stats.MissingKeyProbes += int64(missing)
	st.mu.Unlock()
}

// AggRow is one group of a cached grouped-aggregation result: the group's
// raw value and the COUNT/SUM/MIN/MAX of the measure column within it.
// mmdb's GroupRow is an alias of this type so results cache without
// conversion.
type AggRow struct {
	Value uint32
	Count int64
	Sum   uint64
	Min   uint32
	Max   uint32
}

// LookupAgg returns a copy of the grouped-aggregation result cached under
// exactly this fingerprint and token.
func (c *Cache) LookupAgg(k Key, tok Token) ([]AggRow, bool) {
	if !c.Enabled() {
		return nil, false
	}
	st := c.stripeFor(k)
	st.mu.Lock()
	e := st.lookupLocked(k, tok, c)
	if e == nil {
		st.stats.Misses++
		st.mu.Unlock()
		return nil, false
	}
	st.stats.Hits++
	st.stats.AggregateHits++
	st.mu.Unlock()
	return append([]AggRow(nil), e.aggs...), true
}
