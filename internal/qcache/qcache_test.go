package qcache

import (
	"fmt"
	"sync"
	"testing"
)

// admitAll admits every result regardless of cost.
func admitAll(opts Options) Options {
	opts.MinCostNs = -1
	return opts
}

func rangeKey(table, col string, lo, hi uint32) Key {
	return Key{Table: table, Col: col, Kind: KindRange, Lo: lo, Hi: hi}
}

func seq(lo, n uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = lo + uint32(i)
	}
	return out
}

func TestExactHitMissAndCopy(t *testing.T) {
	c := New(admitAll(Options{}))
	k := rangeKey("t", "a", 5, 9)
	tok := Token{Gen: 1}
	if _, ok := c.Lookup(k, tok); ok {
		t.Fatal("hit on empty cache")
	}
	rids := []uint32{3, 1, 4}
	c.Insert(k, tok, rids, 10)
	rids[0] = 99 // caller mutates after insert; cached copy must not see it
	got, ok := c.Lookup(k, tok)
	if !ok {
		t.Fatal("miss after insert")
	}
	if got[0] != 3 || got[1] != 1 || got[2] != 4 {
		t.Fatalf("got %v, want [3 1 4]", got)
	}
	got[1] = 77 // mutating a hit must not corrupt the cache
	again, _ := c.Lookup(k, tok)
	if again[1] != 1 {
		t.Fatalf("cached copy corrupted: %v", again)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestTokenMismatchInvalidates(t *testing.T) {
	c := New(admitAll(Options{}))
	k := rangeKey("t", "a", 0, 4)
	c.Insert(k, Token{Gen: 1}, seq(0, 4), 10)
	if _, ok := c.Lookup(k, Token{Gen: 2}); ok {
		t.Fatal("stale token must miss")
	}
	s := c.Stats()
	if s.Invalidations != 1 || s.Entries != 0 {
		t.Fatalf("stats %+v", s)
	}
	// The old token cannot resurrect the dropped entry.
	if _, ok := c.Lookup(k, Token{Gen: 1}); ok {
		t.Fatal("invalidated entry served")
	}
}

func TestStragglerDoesNotEvictFresh(t *testing.T) {
	c := New(admitAll(Options{}))
	k := rangeKey("t", "a", 0, 4)
	fresh := Token{Epoch: 6}
	stale := Token{Epoch: 5}
	c.Insert(k, fresh, seq(10, 4), 10)
	// A reader still holding the pre-swap epoch must miss without
	// evicting the current epoch's entry...
	if _, ok := c.Lookup(k, stale); ok {
		t.Fatal("stale token hit the fresh entry")
	}
	if got, ok := c.Lookup(k, fresh); !ok || got[0] != 10 {
		t.Fatal("fresh entry evicted by a straggler lookup")
	}
	// ...and its late insert must not clobber it either.
	c.Insert(k, stale, seq(99, 4), 10)
	if got, ok := c.Lookup(k, fresh); !ok || got[0] != 10 {
		t.Fatal("straggler insert clobbered the fresh entry")
	}
	if _, ok := c.Lookup(k, stale); ok {
		t.Fatal("rejected stale insert is being served")
	}
}

func TestContainmentReuse(t *testing.T) {
	c := New(admitAll(Options{}))
	tok := Token{Gen: 1}
	// Cached run covers closed values [10, 19]: keys 10..19, rids 100..109.
	keys := seq(10, 10)
	rids := seq(100, 10)
	c.InsertRange(rangeKey("t", "a", 10, 19), tok, keys, rids, 10)

	got, ok := c.LookupRange(rangeKey("t", "a", 13, 16), tok)
	if !ok {
		t.Fatal("contained subrange missed")
	}
	want := []uint32{103, 104, 105, 106}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	// Point subrange within coverage: closed bounds include the value.
	if got, ok := c.LookupRange(rangeKey("t", "a", 15, 15), tok); !ok || len(got) != 1 || got[0] != 105 {
		t.Fatalf("point subrange: ok=%v got=%v", ok, got)
	}
	// Not contained: extends past the cached run.
	if _, ok := c.LookupRange(rangeKey("t", "a", 15, 25), tok); ok {
		t.Fatal("non-contained range hit")
	}
	// Wrong token: no containment across epochs.
	if _, ok := c.LookupRange(rangeKey("t", "a", 13, 16), Token{Gen: 2}); ok {
		t.Fatal("containment across tokens")
	}
	s := c.Stats()
	if s.ContainedHits != 2 {
		t.Fatalf("contained hits %d, want 2", s.ContainedHits)
	}
}

func TestExactOnlyEntriesSkipContainment(t *testing.T) {
	c := New(admitAll(Options{}))
	tok := Token{Gen: 1}
	// nil key run = scan-path result; exact reuse only.
	c.InsertRange(rangeKey("t", "a", 10, 20), tok, nil, seq(0, 5), 10)
	if _, ok := c.Lookup(rangeKey("t", "a", 10, 20), tok); !ok {
		t.Fatal("exact lookup must still hit")
	}
	if _, ok := c.LookupRange(rangeKey("t", "a", 12, 14), tok); ok {
		t.Fatal("containment over an exact-only entry")
	}
}

func TestAdmissionCostFloor(t *testing.T) {
	c := New(Options{MinCostNs: 100})
	k := rangeKey("t", "a", 0, 1)
	c.Insert(k, Token{Gen: 1}, seq(0, 4), 99) // below the floor
	if _, ok := c.Lookup(k, Token{Gen: 1}); ok {
		t.Fatal("sub-floor result admitted")
	}
	c.Insert(k, Token{Gen: 1}, seq(0, 4), 100)
	if _, ok := c.Lookup(k, Token{Gen: 1}); !ok {
		t.Fatal("at-floor result rejected")
	}
	if s := c.Stats(); s.Rejects != 1 {
		t.Fatalf("rejects %d, want 1", s.Rejects)
	}
}

func TestEvictionUnderBudget(t *testing.T) {
	// One stripe so the budget applies to every insert.
	c := New(admitAll(Options{MaxBytes: 64 << 10, Stripes: 1}))
	tok := Token{Gen: 1}
	for i := 0; i < 100; i++ {
		// ~4KiB each: the stripe holds well under 16.
		c.Insert(Key{Table: "t", Col: "a", Kind: KindIn, Hash: uint64(i)}, tok, seq(0, 1000), 10)
	}
	s := c.Stats()
	if s.Bytes > 64<<10 {
		t.Fatalf("bytes %d exceed budget", s.Bytes)
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
	if s.Entries == 0 {
		t.Fatal("cache emptied itself")
	}
}

func TestOversizedResultRejected(t *testing.T) {
	c := New(admitAll(Options{MaxBytes: 16 << 10, Stripes: 1}))
	c.Insert(rangeKey("t", "a", 0, 1), Token{Gen: 1}, seq(0, 10000), 10) // 40KB > budget/2
	if s := c.Stats(); s.Entries != 0 || s.Rejects != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestScanResistance(t *testing.T) {
	c := New(admitAll(Options{MaxBytes: 32 << 10, Stripes: 1}))
	tok := Token{Gen: 1}
	hot := Key{Table: "t", Col: "a", Kind: KindIn, Hash: 0xbeef}
	c.Insert(hot, tok, seq(0, 500), 10)
	for i := 0; i < 4; i++ { // warm it well past one CLOCK life
		c.Lookup(hot, tok)
	}
	// A scan of one-shot queries big enough to churn the stripe twice.
	for i := 0; i < 40; i++ {
		c.Insert(Key{Table: "t", Col: "a", Kind: KindIn, Hash: uint64(i)}, tok, seq(0, 500), 10)
	}
	if _, ok := c.Lookup(hot, tok); !ok {
		t.Fatal("hot entry flushed by one cold scan")
	}
}

func TestDropTable(t *testing.T) {
	c := New(admitAll(Options{}))
	tok := Token{Gen: 1}
	c.Insert(rangeKey("t1", "a", 0, 1), tok, seq(0, 4), 10)
	c.Insert(rangeKey("t2", "a", 0, 1), tok, seq(0, 4), 10)
	c.DropTable("t1")
	if _, ok := c.Lookup(rangeKey("t1", "a", 0, 1), tok); ok {
		t.Fatal("dropped table served")
	}
	if _, ok := c.Lookup(rangeKey("t2", "a", 0, 1), tok); !ok {
		t.Fatal("other table dropped")
	}
	if s := c.Stats(); s.Invalidations != 1 {
		t.Fatalf("invalidations %d, want 1", s.Invalidations)
	}
}

func TestPairRoundTrip(t *testing.T) {
	c := New(admitAll(Options{}))
	k := Key{Table: "outer", Col: "k", Kind: KindJoin, Hash: 7}
	tok := Token{Gen: 1, Epoch: 3}
	c.InsertPair(k, tok, []uint32{1, 2}, []uint32{10, 20}, 10)
	a, b, ok := c.LookupPair(k, tok)
	if !ok || len(a) != 2 || len(b) != 2 || a[1] != 2 || b[1] != 20 {
		t.Fatalf("pair round-trip: ok=%v a=%v b=%v", ok, a, b)
	}
	if _, _, ok := c.LookupPair(k, Token{Gen: 1, Epoch: 4}); ok {
		t.Fatal("stale epoch pair served")
	}
}

func TestNilAndDisabled(t *testing.T) {
	var nilCache *Cache
	nilCache.Insert(rangeKey("t", "a", 0, 1), Token{}, seq(0, 4), 10)
	if _, ok := nilCache.Lookup(rangeKey("t", "a", 0, 1), Token{}); ok {
		t.Fatal("nil cache hit")
	}
	nilCache.DropTable("t")
	if s := nilCache.Stats(); s != (Stats{}) {
		t.Fatalf("nil stats %+v", s)
	}
	d := New(Options{Disabled: true})
	d.Insert(rangeKey("t", "a", 0, 1), Token{}, seq(0, 4), 1<<30)
	if _, ok := d.Lookup(rangeKey("t", "a", 0, 1), Token{}); ok {
		t.Fatal("disabled cache hit")
	}
}

// TestConcurrentChurn drives lookups, inserts, containment slices and
// drops from many goroutines; run under -race this is the cache's own
// data-race gate (the mmdb stress test covers the end-to-end story).
func TestConcurrentChurn(t *testing.T) {
	c := New(admitAll(Options{MaxBytes: 1 << 20, Stripes: 4}))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tok := Token{Gen: uint64(i / 100)}
				lo := uint32(i % 50)
				k := rangeKey("t", "a", lo, lo+10)
				switch (i + w) % 4 {
				case 0:
					c.InsertRange(k, tok, seq(lo, 10), seq(lo*10, 10), 10)
				case 1:
					c.Lookup(k, tok)
				case 2:
					c.LookupRange(rangeKey("t", "a", lo+2, lo+5), tok)
				default:
					if i%500 == 0 {
						c.DropTable("t")
					}
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.Entries < 0 || s.Bytes < 0 {
		t.Fatalf("accounting went negative: %+v", s)
	}
}
