package qcache

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestStatsSnapshotConsistent: a snapshot taken while workers settle
// miss-becomes-hit trades (NoteStitch) must never observe half a trade.
// Each worker iteration counts one miss and immediately settles it, so at
// any instant the un-settled misses number at most one per worker; a torn
// read of the trade would show Hits != StitchedHits or Misses outside
// [0, workers].  The old global-atomic counters failed exactly this way.
func TestStatsSnapshotConsistent(t *testing.T) {
	c := New(admitAll(Options{}))
	tok := Token{Gen: 1}
	const workers = 4
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := rangeKey("t", "a", uint32(100*w), uint32(100*w+9))
			for !stop.Load() {
				if _, ok := c.Lookup(k, tok); ok {
					t.Error("unexpected hit")
					return
				}
				c.NoteStitch(k, 2)
			}
		}(w)
	}
	for i := 0; i < 2000; i++ {
		s := c.StatsSnapshot()
		if s.Hits != s.StitchedHits {
			t.Fatalf("torn trade: Hits=%d StitchedHits=%d", s.Hits, s.StitchedHits)
		}
		if s.Misses < 0 || s.Misses > workers {
			t.Fatalf("Misses=%d outside [0,%d]", s.Misses, workers)
		}
		if s.GapProbes != 2*s.StitchedHits {
			t.Fatalf("GapProbes=%d, want %d", s.GapProbes, 2*s.StitchedHits)
		}
	}
	stop.Store(true)
	wg.Wait()
	s := c.StatsSnapshot()
	if s.Misses != 0 {
		t.Fatalf("settled state Misses=%d, want 0", s.Misses)
	}
}

// TestContainedHitCountsOnce: a containment hit settles inside one lock
// acquisition — exactly one Hit, one ContainedHit, zero Misses.
func TestContainedHitCountsOnce(t *testing.T) {
	c := New(admitAll(Options{}))
	tok := Token{Gen: 1}
	c.InsertRange(rangeKey("t", "a", 0, 99), tok, seq(0, 100), seq(0, 100), 10)
	if _, ok := c.LookupRange(rangeKey("t", "a", 10, 19), tok); !ok {
		t.Fatal("containment miss")
	}
	s := c.StatsSnapshot()
	if s.Hits != 1 || s.ContainedHits != 1 || s.Misses != 0 {
		t.Fatalf("stats %+v", s)
	}
}
