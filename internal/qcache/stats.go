package qcache

import "sync/atomic"

// counters are the cache's live atomics; Stats snapshots them.
type counters struct {
	hits          atomic.Int64
	misses        atomic.Int64
	contained     atomic.Int64
	inserts       atomic.Int64
	rejects       atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
	patches       atomic.Int64
	entries       atomic.Int64
	bytes         atomic.Int64
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups answered from the cache; ContainedHits is the
	// subset answered by slicing a covering range run rather than an
	// exact fingerprint match.
	Hits          int64
	ContainedHits int64
	Misses        int64
	// Inserts counts admitted entries; Rejects counts results that failed
	// admission (below the cost floor, oversized, or unevictable
	// pressure).
	Inserts int64
	Rejects int64
	// Evictions counts CLOCK victims; Invalidations counts entries
	// removed because their token went stale (lazily at access, eagerly
	// by DropTable, or dropped by a PatchAppend sweep).
	Evictions     int64
	Invalidations int64
	// Patches counts entries PatchAppend carried across an absorbed
	// append — retokened untouched or extended with the qualifying
	// appended rows — instead of dropping.
	Patches int64
	// Entries and Bytes are the current residency.
	Entries int64
	Bytes   int64
}

// Stats returns a snapshot of the counters.  A nil or disabled cache
// reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:          c.stats.hits.Load(),
		ContainedHits: c.stats.contained.Load(),
		Misses:        c.stats.misses.Load(),
		Inserts:       c.stats.inserts.Load(),
		Rejects:       c.stats.rejects.Load(),
		Evictions:     c.stats.evictions.Load(),
		Invalidations: c.stats.invalidations.Load(),
		Patches:       c.stats.patches.Load(),
		Entries:       c.stats.entries.Load(),
		Bytes:         c.stats.bytes.Load(),
	}
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
