package qcache

import "cssidx/internal/telemetry"

// Stats is a point-in-time snapshot of the cache counters.
//
// The counters live stripe-local: each stripe accumulates plain int64
// cells that are only ever touched under that stripe's mutex, so the hot
// path never bounces a shared counter cache line between stripes, and a
// snapshot that locks each stripe once (StatsSnapshot) can never observe
// a torn update — in particular it can never see one half of a
// miss-becomes-hit settlement (NoteStitch/NoteInFill), which the old
// global-atomic scheme allowed.
type Stats struct {
	// Hits counts lookups answered from the cache.  The hit-kind
	// breakdown below splits out the reuse classes that answered without
	// an exact fingerprint match; exact hits are the remainder.
	Hits int64
	// ContainedHits were answered by slicing a single covering range run.
	ContainedHits int64
	// StitchedHits were ranges assembled from one or more overlapping
	// cached runs plus GapProbes index probes of the uncovered gaps.
	StitchedHits int64
	GapProbes    int64
	// SubsetHits were IN-lists replayed by filtering a cached superset
	// list; SupersetHits were IN-lists completed by probing only their
	// MissingKeyProbes values absent from the best cached list.
	SubsetHits       int64
	SupersetHits     int64
	MissingKeyProbes int64
	// AggregateHits were GroupAggregate results served from cache.
	AggregateHits int64
	Misses        int64
	// Inserts counts admitted entries; Rejects counts results that failed
	// admission (below the cost floor, oversized, or unevictable
	// pressure).
	Inserts int64
	Rejects int64
	// Evictions counts CLOCK victims; Invalidations counts entries
	// removed because their token went stale (lazily at access, eagerly
	// by DropTable, or dropped by a PatchAppend sweep).
	Evictions     int64
	Invalidations int64
	// Patches counts entries PatchAppend carried across an absorbed
	// append — retokened untouched or extended with the qualifying
	// appended rows — instead of dropping.
	Patches int64
	// Entries and Bytes are the current residency.
	Entries int64
	Bytes   int64
}

// accumulate folds another snapshot (one stripe's cells) into s.
func (s *Stats) accumulate(o Stats) {
	s.Hits += o.Hits
	s.ContainedHits += o.ContainedHits
	s.StitchedHits += o.StitchedHits
	s.GapProbes += o.GapProbes
	s.SubsetHits += o.SubsetHits
	s.SupersetHits += o.SupersetHits
	s.MissingKeyProbes += o.MissingKeyProbes
	s.AggregateHits += o.AggregateHits
	s.Misses += o.Misses
	s.Inserts += o.Inserts
	s.Rejects += o.Rejects
	s.Evictions += o.Evictions
	s.Invalidations += o.Invalidations
	s.Patches += o.Patches
	s.Entries += o.Entries
	s.Bytes += o.Bytes
}

// StatsSnapshot returns a consistent snapshot of the counters: each
// stripe's cells are summed exactly once under that stripe's lock, so
// no in-flight update can be half-observed.  A nil or disabled cache
// reports zeros.
func (c *Cache) StatsSnapshot() Stats {
	if c == nil {
		return Stats{}
	}
	var s Stats
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		s.accumulate(st.stats)
		st.mu.Unlock()
	}
	return s
}

// Stats is StatsSnapshot under its historical name.
func (c *Cache) Stats() Stats { return c.StatsSnapshot() }

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// RegisterMetrics surfaces the cache's counters in a telemetry registry
// (nil means telemetry.Default) as read-on-scrape series: each scrape
// takes one consistent StatsSnapshot per metric, so no hot-path
// double-bookkeeping is added.  Call once per cache; re-registering
// replaces the previous cache's series.
func (c *Cache) RegisterMetrics(r *telemetry.Registry) {
	if r == nil {
		r = telemetry.Default
	}
	reg := func(name string, field func(Stats) int64) {
		r.RegisterFunc(name, func() float64 { return float64(field(c.StatsSnapshot())) })
	}
	reg("qcache_hits_total", func(s Stats) int64 { return s.Hits })
	reg("qcache_misses_total", func(s Stats) int64 { return s.Misses })
	reg("qcache_contained_hits_total", func(s Stats) int64 { return s.ContainedHits })
	reg("qcache_stitched_hits_total", func(s Stats) int64 { return s.StitchedHits })
	reg("qcache_gap_probes_total", func(s Stats) int64 { return s.GapProbes })
	reg("qcache_subset_hits_total", func(s Stats) int64 { return s.SubsetHits })
	reg("qcache_superset_hits_total", func(s Stats) int64 { return s.SupersetHits })
	reg("qcache_missing_key_probes_total", func(s Stats) int64 { return s.MissingKeyProbes })
	reg("qcache_agg_hits_total", func(s Stats) int64 { return s.AggregateHits })
	reg("qcache_inserts_total", func(s Stats) int64 { return s.Inserts })
	reg("qcache_rejects_total", func(s Stats) int64 { return s.Rejects })
	reg("qcache_evictions_total", func(s Stats) int64 { return s.Evictions })
	reg("qcache_invalidations_total", func(s Stats) int64 { return s.Invalidations })
	reg("qcache_patches_total", func(s Stats) int64 { return s.Patches })
	reg("qcache_entries", func(s Stats) int64 { return s.Entries })
	reg("qcache_bytes", func(s Stats) int64 { return s.Bytes })
	r.RegisterFunc("qcache_hit_rate", func() float64 { return c.StatsSnapshot().HitRate() })
	r.RegisterFunc("qcache_budget_bytes", func() float64 {
		if !c.Enabled() {
			return 0
		}
		return float64(c.opts.MaxBytes)
	})
	r.RegisterFunc("qcache_budget_pressure", func() float64 {
		if !c.Enabled() || c.opts.MaxBytes == 0 {
			return 0
		}
		return float64(c.StatsSnapshot().Bytes) / float64(c.opts.MaxBytes)
	})
}
