package qcache

import "sync/atomic"

// counters are the cache's live atomics; Stats snapshots them.
type counters struct {
	hits          atomic.Int64
	misses        atomic.Int64
	contained     atomic.Int64
	stitched      atomic.Int64
	gapProbes     atomic.Int64
	subset        atomic.Int64
	superset      atomic.Int64
	missProbes    atomic.Int64
	aggHits       atomic.Int64
	inserts       atomic.Int64
	rejects       atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
	patches       atomic.Int64
	entries       atomic.Int64
	bytes         atomic.Int64
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups answered from the cache.  The hit-kind
	// breakdown below splits out the reuse classes that answered without
	// an exact fingerprint match; exact hits are the remainder.
	Hits int64
	// ContainedHits were answered by slicing a single covering range run.
	ContainedHits int64
	// StitchedHits were ranges assembled from one or more overlapping
	// cached runs plus GapProbes index probes of the uncovered gaps.
	StitchedHits int64
	GapProbes    int64
	// SubsetHits were IN-lists replayed by filtering a cached superset
	// list; SupersetHits were IN-lists completed by probing only their
	// MissingKeyProbes values absent from the best cached list.
	SubsetHits       int64
	SupersetHits     int64
	MissingKeyProbes int64
	// AggregateHits were GroupAggregate results served from cache.
	AggregateHits int64
	Misses        int64
	// Inserts counts admitted entries; Rejects counts results that failed
	// admission (below the cost floor, oversized, or unevictable
	// pressure).
	Inserts int64
	Rejects int64
	// Evictions counts CLOCK victims; Invalidations counts entries
	// removed because their token went stale (lazily at access, eagerly
	// by DropTable, or dropped by a PatchAppend sweep).
	Evictions     int64
	Invalidations int64
	// Patches counts entries PatchAppend carried across an absorbed
	// append — retokened untouched or extended with the qualifying
	// appended rows — instead of dropping.
	Patches int64
	// Entries and Bytes are the current residency.
	Entries int64
	Bytes   int64
}

// Stats returns a snapshot of the counters.  A nil or disabled cache
// reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:             c.stats.hits.Load(),
		ContainedHits:    c.stats.contained.Load(),
		StitchedHits:     c.stats.stitched.Load(),
		GapProbes:        c.stats.gapProbes.Load(),
		SubsetHits:       c.stats.subset.Load(),
		SupersetHits:     c.stats.superset.Load(),
		MissingKeyProbes: c.stats.missProbes.Load(),
		AggregateHits:    c.stats.aggHits.Load(),
		Misses:           c.stats.misses.Load(),
		Inserts:          c.stats.inserts.Load(),
		Rejects:          c.stats.rejects.Load(),
		Evictions:        c.stats.evictions.Load(),
		Invalidations:    c.stats.invalidations.Load(),
		Patches:          c.stats.patches.Load(),
		Entries:          c.stats.entries.Load(),
		Bytes:            c.stats.bytes.Load(),
	}
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
