package qcache

// CLOCK eviction.  Each stripe keeps its entries on a ring with a sweeping
// hand: a hit warms an entry (ref up to 3), the hand cools it, and only a
// cold entry under the hand is evicted.  New entries enter cold, so a
// one-pass scan of never-repeated queries recycles its own slots instead
// of flushing the warmed working set — the scan resistance the paper's
// buffer-management ancestors (CLOCK, GCLOCK) bought for page caches,
// applied to query results.  Benefit feeds in twice: observed hit rate
// through the ref lives, and recompute cost through the extra life that
// admission grants expensive entries.

// evictFor frees room for `need` more bytes, evicting cold entries under
// the hand until the stripe fits its budget share again.  It returns false
// when the space cannot be freed (everything warm after a full cooling
// sweep bounds the work; in practice two passes always succeed because
// refs are capped).  Caller holds the stripe lock.
func (st *stripe) evictFor(need int64, c *Cache) bool {
	if st.bytes+need <= c.budget {
		return true
	}
	// Each live entry can absorb at most ref(≤3) cooling touches plus one
	// eviction; dead husks are reaped on sight without advancing the hand.
	for steps := 5*len(st.ring) + 1; steps > 0 && st.bytes+need > c.budget; steps-- {
		if len(st.ring) == 0 {
			break
		}
		if st.hand >= len(st.ring) {
			st.hand = 0
		}
		e := st.ring[st.hand]
		if e.dead {
			st.unring(st.hand)
			continue
		}
		if e.ref > 0 {
			e.ref--
			st.hand++
			continue
		}
		st.remove(e, c)
		st.unring(st.hand)
		st.stats.Evictions++
	}
	return st.bytes+need <= c.budget
}

// unring removes the ring slot at i by swapping in the last element; the
// hand stays put so the swapped-in entry is inspected next.
func (st *stripe) unring(i int) {
	last := len(st.ring) - 1
	st.ring[i] = st.ring[last]
	st.ring[last] = nil
	st.ring = st.ring[:last]
}
