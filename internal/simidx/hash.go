package simidx

import (
	"cssidx/internal/cachesim"
	"cssidx/internal/hashidx"
	"cssidx/internal/mem"
)

// Hash models chained bucket hashing: one bucket (= one cache line) per
// chain hop.  With a generous directory a lookup is a single miss — the
// time floor of Figures 10–14 — bought with the largest footprint of any
// method.
type Hash struct {
	t    *hashidx.Table
	base uint64
}

// NewHash builds the table and assigns simulated addresses.
func NewHash(keys []uint32, dirSize, bucketBytes int, alloc *cachesim.AddrAlloc) *Hash {
	t := hashidx.Build(keys, dirSize, bucketBytes)
	return &Hash{t: t, base: alloc.Alloc(t.SpaceBytes(), mem.CacheLine)}
}

// Name implements Sim.
func (s *Hash) Name() string { return "hash" }

// SpaceBytes implements Sim.
func (s *Hash) SpaceBytes() int { return s.t.SpaceBytes() }

// Probe replays Table.Search: hash, then walk the chain scanning pairs.
func (s *Hash) Probe(h *cachesim.Hierarchy, key uint32) ProbeResult {
	var pr ProbeResult
	pr.Index = -1
	buckets := s.t.RawBuckets()
	slots := s.t.SlotsPerBucket()
	if len(buckets) == 0 {
		return pr
	}
	b := int(key & uint32(s.t.DirSize()-1))
	pr.Moves++ // hash computation
	for {
		base := b * slots
		// The whole bucket is scanned as one line-sized unit.
		access(h, s.base+4*uint64(base), 4*slots)
		cnt := int(buckets[base])
		for i := 0; i < cnt; i++ {
			pr.Cmps++
			if buckets[base+2+2*i] == key {
				pr.Index = int(buckets[base+2+2*i+1])
				return pr
			}
		}
		next := buckets[base+1]
		if next == ^uint32(0) {
			return pr
		}
		b = int(next)
		pr.Moves++
	}
}

// RealSearch exposes the wrapped table's answer for equivalence tests.
func (s *Hash) RealSearch(key uint32) (uint32, bool) { return s.t.Search(key) }
