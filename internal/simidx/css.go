package simidx

import (
	"cssidx/internal/cachesim"
	"cssidx/internal/csstree"
	"cssidx/internal/mem"
)

// CSSTree models full and level CSS-tree lookups: one region for the
// directory, one for the sorted array; a node visit binary-searches slots
// within one (or s) cache line(s) and moves by arithmetic, never touching
// pointers.
type CSSTree struct {
	name    string
	dir     []uint32
	keys    []uint32
	g       csstree.Geometry
	routing int // routing keys per node: m (full) or m-1 (level)
	space   int
	dirBase uint64
	arrBase uint64

	// the real tree, kept so equivalence tests can compare answers cheaply
	lower func(uint32) int
}

// NewFullCSS builds a full CSS-tree and assigns simulated addresses.
func NewFullCSS(keys []uint32, m int, alloc *cachesim.AddrAlloc) *CSSTree {
	t := csstree.BuildFull(keys, m)
	return &CSSTree{
		name:    "full CSS-tree",
		dir:     t.Dir(),
		keys:    keys,
		g:       t.Geometry(),
		routing: m,
		space:   t.SpaceBytes(),
		dirBase: alloc.Alloc(t.SpaceBytes(), mem.CacheLine),
		arrBase: alloc.Alloc(4*len(keys), mem.CacheLine),
		lower:   t.LowerBound,
	}
}

// NewLevelCSS builds a level CSS-tree and assigns simulated addresses.
func NewLevelCSS(keys []uint32, m int, alloc *cachesim.AddrAlloc) *CSSTree {
	t := csstree.BuildLevel(keys, m)
	return &CSSTree{
		name:    "level CSS-tree",
		dir:     t.Dir(),
		keys:    keys,
		g:       t.Geometry(),
		routing: m - 1,
		space:   t.SpaceBytes(),
		dirBase: alloc.Alloc(t.SpaceBytes(), mem.CacheLine),
		arrBase: alloc.Alloc(4*len(keys), mem.CacheLine),
		lower:   t.LowerBound,
	}
}

// Name implements Sim.
func (s *CSSTree) Name() string { return s.name }

// SpaceBytes implements Sim.
func (s *CSSTree) SpaceBytes() int { return s.space }

// Probe replays Algorithm 4.2: descend the directory by offset arithmetic,
// then search the mapped leaf range of the sorted array.
func (s *CSSTree) Probe(h *cachesim.Hierarchy, key uint32) ProbeResult {
	var pr ProbeResult
	g := &s.g
	if g.Internal == 0 {
		i := s.searchRange(h, s.arrBase, s.keys, 0, len(s.keys), key, &pr)
		pr.Index = i
		return pr
	}
	m := g.M
	d := 0
	for d <= g.LNode {
		base := d * m
		j := s.searchRange(h, s.dirBase, s.dir, base, base+s.routing, key, &pr)
		d = d*g.Fanout + 1 + (j - base)
		pr.Moves++
	}
	lo, hi := g.LeafRange(d)
	pr.Index = s.searchRange(h, s.arrBase, s.keys, lo, hi, key, &pr)
	return pr
}

// searchRange binary-searches slice[lo:hi] for the leftmost slot ≥ key,
// reporting each touched slot at base+4·index, and returns the absolute slot
// index.  This is the access pattern of the hard-coded node searches.
func (s *CSSTree) searchRange(h *cachesim.Hierarchy, base uint64, slice []uint32, lo, hi int, key uint32, pr *ProbeResult) int {
	for hi-lo > tailScanMax {
		mid := int(uint(lo+hi) >> 1)
		access(h, base+4*uint64(mid), 4)
		pr.Cmps++
		if slice[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for lo < hi {
		access(h, base+4*uint64(lo), 4)
		pr.Cmps++
		if slice[lo] >= key {
			break
		}
		lo++
	}
	return lo
}

// RealLowerBound exposes the wrapped tree's answer for equivalence tests.
func (s *CSSTree) RealLowerBound(key uint32) int { return s.lower(key) }
