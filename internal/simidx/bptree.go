package simidx

import (
	"cssidx/internal/bptree"
	"cssidx/internal/cachesim"
	"cssidx/internal/mem"
)

// BPlusTree models the paper's B+-tree: interleaved key/child slots in
// internal nodes, ⟨key,RID⟩ pairs in leaves.  Compared with a CSS-tree of
// the same node size it visits ~log_{m/2} instead of log_{m+1} nodes — the
// extra misses the paper attributes to storing child pointers.
type BPlusTree struct {
	t         *bptree.Tree
	innerBase uint64
	leafBase  uint64
}

// NewBPlusTree builds the tree and assigns simulated addresses.
func NewBPlusTree(keys []uint32, slots int, alloc *cachesim.AddrAlloc) *BPlusTree {
	t := bptree.Build(keys, slots)
	return &BPlusTree{
		t:         t,
		innerBase: alloc.Alloc(t.InnerBytes(), mem.CacheLine),
		leafBase:  alloc.Alloc(t.SpaceBytes()-t.InnerBytes(), mem.CacheLine),
	}
}

// Name implements Sim.
func (s *BPlusTree) Name() string { return "B+-tree" }

// SpaceBytes implements Sim.
func (s *BPlusTree) SpaceBytes() int { return s.t.SpaceBytes() }

// Probe replays Tree.LowerBound with its interleaved-layout accesses.
func (s *BPlusTree) Probe(h *cachesim.Hierarchy, key uint32) ProbeResult {
	var pr ProbeResult
	t := s.t
	if t.Len() == 0 {
		return pr
	}
	inner := t.Inner()
	slots := t.Slots()
	node := 0
	for _, off := range t.LevelOffsets() {
		base := off + node*slots
		lo, hi := 0, t.Fanout()-1
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			access(h, s.innerBase+4*uint64(base+2*mid+1), 4)
			pr.Cmps++
			if inner[base+2*mid+1] < key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		access(h, s.innerBase+4*uint64(base+2*lo), 4) // read the child pointer
		node = int(inner[base+2*lo])
		pr.Moves++
	}
	leaves := t.LeafArena()
	base := node * slots
	lo, hi := 0, t.Pairs()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		access(h, s.leafBase+4*uint64(base+2*mid), 4)
		pr.Cmps++
		if leaves[base+2*mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := node*t.Pairs() + lo
	if i > t.Len() {
		i = t.Len()
	}
	if i < t.Len() {
		// Read the RID beside the matched key, as the real lookup returns it.
		access(h, s.leafBase+4*uint64(base+2*lo+1), 4)
	}
	pr.Index = i
	return pr
}

// RealLowerBound exposes the wrapped tree's answer for equivalence tests.
func (s *BPlusTree) RealLowerBound(key uint32) int { return s.t.LowerBound(key) }
