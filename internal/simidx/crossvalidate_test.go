package simidx

import (
	"math"
	"testing"

	"cssidx/internal/analytic"
	"cssidx/internal/cachesim"
	"cssidx/internal/workload"
)

// TestModelMatchesSimulationComparisons cross-validates §5.1's closed-form
// comparison counts against the instruction-level counts of the simulator —
// two independent implementations of the same analysis.
func TestModelMatchesSimulationComparisons(t *testing.T) {
	const n = 2_000_000
	g := workload.New(90)
	keys := g.SortedUniform(n)
	probes := g.Lookups(keys, 20000)
	m := cachesim.UltraSparcII()

	p := analytic.DefaultParams()
	p.N = n
	rows := map[analytic.Method]analytic.TimeRow{}
	for _, r := range analytic.TimeModel(p) {
		rows[r.Method] = r
	}

	check := func(method analytic.Method, sim Sim, tolerance float64) {
		t.Helper()
		res := Run(sim, m, probes)
		gotCmps := float64(res.Cmps) / float64(res.Lookups)
		want := rows[method].TotalCmps
		if math.Abs(gotCmps-want) > tolerance*want {
			t.Errorf("%v: simulated %.2f cmps/lookup, model predicts %.2f", method, gotCmps, want)
		}
	}
	// Binary search: the model is exact up to rounding of log2 n and the
	// sequential tail.
	check(analytic.BinarySearch, NewBinarySearch(keys, cachesim.NewAddrAlloc()), 0.15)
	// CSS-trees: within-node binary search costs a handful more comparisons
	// than the hard-coded ideal the model assumes.
	check(analytic.FullCSS, NewFullCSS(keys, 16, cachesim.NewAddrAlloc()), 0.25)
	check(analytic.LevelCSS, NewLevelCSS(keys, 16, cachesim.NewAddrAlloc()), 0.25)
	check(analytic.BPlusTree, NewBPlusTree(keys, 16, cachesim.NewAddrAlloc()), 0.25)
}

// TestModelMatchesSimulationMissOrdering checks that the §5.1 *ranking* of
// cache misses (CSS < B+ < T-tree ≈ binary) holds in simulation, and that
// warm-cache simulation never exceeds the model's cold-start upper bound.
func TestModelMatchesSimulationMissOrdering(t *testing.T) {
	const n = 2_000_000
	g := workload.New(91)
	keys := g.SortedUniform(n)
	probes := g.Lookups(keys, 20000)
	m := cachesim.UltraSparcII()

	p := analytic.DefaultParams()
	p.N = n
	model := map[analytic.Method]float64{}
	for _, r := range analytic.TimeModel(p) {
		model[r.Method] = r.CacheMisses
	}

	miss := func(s Sim) float64 { return Run(s, m, probes).MissesPerLookup(1) }
	simBinary := miss(NewBinarySearch(keys, cachesim.NewAddrAlloc()))
	simFull := miss(NewFullCSS(keys, 16, cachesim.NewAddrAlloc()))
	simBP := miss(NewBPlusTree(keys, 16, cachesim.NewAddrAlloc()))
	simTT := miss(NewTTree(keys, 7, cachesim.NewAddrAlloc()))

	// Ranking (the substance of Figure 6's last column).
	if !(simFull < simBP && simBP < simBinary) {
		t.Errorf("miss ranking violated: css=%.2f bp=%.2f binary=%.2f", simFull, simBP, simBinary)
	}
	if simTT < simBinary*0.5 {
		t.Errorf("T-tree misses %.2f far below binary %.2f; §3.3 says they are comparable", simTT, simBinary)
	}

	// Cold-start model is an upper bound on the warm simulated run.
	for method, sim := range map[analytic.Method]float64{
		analytic.BinarySearch: simBinary,
		analytic.FullCSS:      simFull,
		analytic.BPlusTree:    simBP,
	} {
		if sim > model[method]+1 {
			t.Errorf("%v: simulated %.2f misses/lookup exceeds cold-start model %.2f", method, sim, model[method])
		}
	}
}

// TestSimulatedCrossoverInCache reproduces Figure 10's left edge: below the
// cache size the methods bunch together; past it they spread by their miss
// profiles — the spread at 2M keys must be far wider than at 4k keys.
func TestSimulatedCrossoverInCache(t *testing.T) {
	g := workload.New(92)
	m := cachesim.UltraSparcII()
	spread := func(n int) float64 {
		keys := g.SortedUniform(n)
		probes := g.Lookups(keys, 20000)
		fast := Run(NewFullCSS(keys, 16, cachesim.NewAddrAlloc()), m, probes).Seconds
		slow := Run(NewBinarySearch(keys, cachesim.NewAddrAlloc()), m, probes).Seconds
		return slow / fast
	}
	small := spread(4000)
	large := spread(2_000_000)
	if large < small*1.5 {
		t.Errorf("spread should widen past cache size: small=%.2fx large=%.2fx", small, large)
	}
	if large < 2 {
		t.Errorf("at 2M keys CSS should beat binary by >2x (paper), got %.2fx", large)
	}
}

// TestModernCacheCompressesTheGap closes the loop on the host-vs-paper
// divergence recorded in EXPERIMENTS.md: on a simulated 2020s server whose
// L3 swallows the whole array, the CSS-vs-binary factor shrinks toward the
// host's measured ~1.5x, while on the paper's Ultra Sparc II it stays >2x.
// The CSS advantage is proportional to the miss penalty — the paper's
// thesis, demonstrated from both ends.
func TestModernCacheCompressesTheGap(t *testing.T) {
	const n = 2_000_000
	g := workload.New(93)
	keys := g.SortedUniform(n)
	probes := g.Lookups(keys, 20000)

	ratio := func(m *cachesim.Machine) float64 {
		bin := Run(NewBinarySearch(keys, cachesim.NewAddrAlloc()), m, probes).Seconds
		css := Run(NewFullCSS(keys, 16, cachesim.NewAddrAlloc()), m, probes).Seconds
		return bin / css
	}
	ultra := ratio(cachesim.UltraSparcII())
	modern := ratio(cachesim.ModernServer())
	if ultra < 2 {
		t.Errorf("ultra gap %.2fx, want >2x (the paper's result)", ultra)
	}
	if modern >= ultra-0.3 {
		t.Errorf("modern gap %.2fx should sit clearly below ultra's %.2fx", modern, ultra)
	}
}
