package simidx

import (
	"cssidx/internal/cachesim"
	"cssidx/internal/mem"
	"cssidx/internal/ttree"
)

// TTree models the improved T-tree with the paper's physical node layout:
// each node is one contiguous block [left, right, key₀ … key_{c−1},
// rid₀ … rid_{c−1}], with the child pointers adjacent to the smallest key
// (§6.2) so the descent touches a single 12-byte region per node.  The
// final candidate node is binary searched.
//
// The §3.3 prediction this model reproduces: node visits ≈ log₂(n/c), and
// each visit costs a cache miss regardless of node size, so T-trees track
// binary search rather than B+-/CSS-trees.
type TTree struct {
	t        *ttree.Tree
	keys     []uint32
	capacity int
	nodeSize int // bytes per node block
	base     uint64

	// Balanced-over-chunks shape, recomputed to mirror ttree.Build: node ids
	// are preorder, chunk(i) the chunk a node holds.
	left, right []int32
	chunk       []int32
	root        int32
}

// NewTTree builds the T-tree model over the sorted keys with the given node
// capacity in pairs.
func NewTTree(keys []uint32, capacity int, alloc *cachesim.AddrAlloc) *TTree {
	nChunks := 0
	if len(keys) > 0 {
		nChunks = mem.CeilDiv(len(keys), capacity)
	}
	s := &TTree{
		t:        ttree.Build(keys, capacity),
		keys:     keys,
		capacity: capacity,
		nodeSize: 8 + 8*capacity,
		root:     -1,
	}
	s.base = alloc.Alloc(nChunks*s.nodeSize, mem.CacheLine)
	if nChunks == 0 {
		return s
	}
	s.left = make([]int32, nChunks)
	s.right = make([]int32, nChunks)
	s.chunk = make([]int32, nChunks)
	next := int32(0)
	var build func(lo, hi int) int32
	build = func(lo, hi int) int32 {
		if lo >= hi {
			return -1
		}
		mid := (lo + hi) / 2
		id := next
		next++
		s.chunk[id] = int32(mid)
		s.left[id] = build(lo, mid)
		s.right[id] = build(mid+1, hi)
		return id
	}
	s.root = build(0, nChunks)
	return s
}

// Name implements Sim.
func (s *TTree) Name() string { return "T-tree" }

// SpaceBytes implements Sim.
func (s *TTree) SpaceBytes() int { return s.t.SpaceBytes() }

// chunkBounds returns the key range [lo,hi) of chunk c.
func (s *TTree) chunkBounds(c int32) (int, int) {
	lo := int(c) * s.capacity
	hi := lo + s.capacity
	if hi > len(s.keys) {
		hi = len(s.keys)
	}
	return lo, hi
}

// Probe replays the improved [LC86b] descent and final node search.
func (s *TTree) Probe(h *cachesim.Hierarchy, key uint32) ProbeResult {
	var pr ProbeResult
	candidate := int32(-1)
	cur := s.root
	for cur != -1 {
		// One access covers left, right and the adjacent smallest key.
		access(h, s.base+uint64(int(cur)*s.nodeSize), 12)
		pr.Cmps++
		pr.Moves++
		lo, _ := s.chunkBounds(s.chunk[cur])
		if key <= s.keys[lo] {
			cur = s.left[cur]
		} else {
			candidate = cur
			cur = s.right[cur]
		}
	}
	if candidate == -1 {
		pr.Index = 0
		return pr
	}
	lo, hi := s.chunkBounds(s.chunk[candidate])
	nodeBase := s.base + uint64(int(candidate)*s.nodeSize) + 8 // keys region
	a, b := 0, hi-lo
	for a < b {
		mid := int(uint(a+b) >> 1)
		access(h, nodeBase+4*uint64(mid), 4)
		pr.Cmps++
		if s.keys[lo+mid] < key {
			a = mid + 1
		} else {
			b = mid
		}
	}
	if lo+a < hi {
		// Read the record pointer next to the matched key.
		access(h, nodeBase+4*uint64(s.capacity)+4*uint64(a), 4)
	}
	pr.Index = lo + a
	return pr
}

// RealLowerBound exposes the wrapped tree's answer for equivalence tests.
func (s *TTree) RealLowerBound(key uint32) int { return s.t.LowerBound(key) }
