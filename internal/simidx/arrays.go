package simidx

import (
	"cssidx/internal/cachesim"
	"cssidx/internal/mem"
)

// tailScanMax mirrors internal/binsearch: below this range size the real
// code switches to a sequential scan.
const tailScanMax = 5

// BinarySearch models array binary search (§3.2): no extra structure; every
// probe of the halving loop touches a[mid], which for large arrays is a
// cache miss almost every time.
type BinarySearch struct {
	keys []uint32
	base uint64
}

// NewBinarySearch places the sorted array in simulated memory.
func NewBinarySearch(keys []uint32, alloc *cachesim.AddrAlloc) *BinarySearch {
	return &BinarySearch{keys: keys, base: alloc.Alloc(4*len(keys), mem.CacheLine)}
}

// Name implements Sim.
func (s *BinarySearch) Name() string { return "array binary search" }

// SpaceBytes implements Sim: binary search needs no space beyond the array.
func (s *BinarySearch) SpaceBytes() int { return 0 }

// Probe replays binsearch.LowerBound.
func (s *BinarySearch) Probe(h *cachesim.Hierarchy, key uint32) ProbeResult {
	var pr ProbeResult
	lo, hi := 0, len(s.keys)
	for hi-lo > tailScanMax {
		mid := int(uint(lo+hi) >> 1)
		access(h, s.base+4*uint64(mid), 4)
		pr.Cmps++
		pr.Moves++ // offset recalculation (A_b in §5.1)
		if s.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for lo < hi {
		access(h, s.base+4*uint64(lo), 4)
		pr.Cmps++
		if s.keys[lo] >= key {
			break
		}
		lo++
	}
	pr.Index = lo
	return pr
}

// InterpolationSearch models interpolation search (§1, §6.3): position
// estimates from the value distribution; near-random jumps on non-linear
// data give it binary-search-like (or worse) cache behaviour.
type InterpolationSearch struct {
	keys []uint32
	base uint64
}

// NewInterpolationSearch places the sorted array in simulated memory.
func NewInterpolationSearch(keys []uint32, alloc *cachesim.AddrAlloc) *InterpolationSearch {
	return &InterpolationSearch{keys: keys, base: alloc.Alloc(4*len(keys), mem.CacheLine)}
}

// Name implements Sim.
func (s *InterpolationSearch) Name() string { return "interpolation search" }

// SpaceBytes implements Sim.
func (s *InterpolationSearch) SpaceBytes() int { return 0 }

// Probe replays interp.LowerBound, including its bounded-probe fallback.
func (s *InterpolationSearch) Probe(h *cachesim.Hierarchy, key uint32) ProbeResult {
	const maxProbes = 64
	var pr ProbeResult
	a := s.keys
	n := len(a)
	if n == 0 {
		return pr
	}
	access(h, s.base, 4)
	pr.Cmps++
	if key <= a[0] {
		return pr
	}
	access(h, s.base+4*uint64(n-1), 4)
	pr.Cmps++
	if key > a[n-1] {
		pr.Index = n
		return pr
	}
	lo, hi := 0, n-1
	for probes := 0; hi-lo > tailScanMax; probes++ {
		var mid int
		if probes < maxProbes {
			span := uint64(a[hi]) - uint64(a[lo])
			if span == 0 {
				break
			}
			frac := uint64(key) - uint64(a[lo])
			mid = lo + int(frac*uint64(hi-lo)/span)
			if mid <= lo {
				mid = lo + 1
			} else if mid >= hi {
				mid = hi - 1
			}
			pr.Moves += 2 // interpolation arithmetic is pricier than a shift
		} else {
			mid = int(uint(lo+hi) >> 1)
			pr.Moves++
		}
		access(h, s.base+4*uint64(mid), 4)
		pr.Cmps++
		if a[mid] < key {
			lo = mid
		} else {
			hi = mid
		}
	}
	i := lo
	for ; i <= hi; i++ {
		access(h, s.base+4*uint64(i), 4)
		pr.Cmps++
		if a[i] >= key {
			pr.Index = i
			return pr
		}
	}
	pr.Index = hi + 1
	return pr
}
