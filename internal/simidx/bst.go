package simidx

import (
	"cssidx/internal/bst"
	"cssidx/internal/cachesim"
	"cssidx/internal/mem"
)

// BST models the pointer-based binary search tree ("tree binary search"):
// 16-byte nodes [key, rid, left, right] allocated in preorder; every node
// visit dereferences a pointer and risks a miss — the same miss count as
// array binary search plus dereference cost, which is why Figures 10–11
// show it at or below binary search.
type BST struct {
	t    *bst.Tree
	keys []uint32
	base uint64
	// preorder shape mirror of bst.Build
	left, right []int32
	key         []uint32
	rid         []uint32
	root        int32
}

// nodeBytes is the simulated node size: key+rid+left+right.
const bstNodeBytes = 16

// NewBST builds the model over the sorted keys.
func NewBST(keys []uint32, alloc *cachesim.AddrAlloc) *BST {
	s := &BST{
		t:    bst.Build(keys),
		keys: keys,
		base: alloc.Alloc(len(keys)*bstNodeBytes, mem.CacheLine),
		root: -1,
	}
	if len(keys) == 0 {
		return s
	}
	n := len(keys)
	s.left = make([]int32, n)
	s.right = make([]int32, n)
	s.key = make([]uint32, n)
	s.rid = make([]uint32, n)
	next := int32(0)
	var build func(lo, hi int) int32
	build = func(lo, hi int) int32 {
		if lo >= hi {
			return -1
		}
		mid := int(uint(lo+hi) >> 1)
		id := next
		next++
		s.key[id] = keys[mid]
		s.rid[id] = uint32(mid)
		s.left[id] = build(lo, mid)
		s.right[id] = build(mid+1, hi)
		return id
	}
	s.root = build(0, n)
	return s
}

// Name implements Sim.
func (s *BST) Name() string { return "tree binary search" }

// SpaceBytes implements Sim.
func (s *BST) SpaceBytes() int { return s.t.SpaceBytes() }

// Probe replays the lower-bound descent: one node access per level.
func (s *BST) Probe(h *cachesim.Hierarchy, key uint32) ProbeResult {
	var pr ProbeResult
	best := len(s.keys)
	cur := s.root
	for cur != -1 {
		access(h, s.base+uint64(cur)*bstNodeBytes, bstNodeBytes)
		pr.Cmps++
		pr.Moves++
		if s.key[cur] >= key {
			best = int(s.rid[cur])
			cur = s.left[cur]
		} else {
			cur = s.right[cur]
		}
	}
	pr.Index = best
	return pr
}

// RealLowerBound exposes the wrapped tree's answer for equivalence tests.
func (s *BST) RealLowerBound(key uint32) int { return s.t.LowerBound(key) }
