package simidx

import (
	"sort"
	"testing"

	"cssidx/internal/cachesim"
	"cssidx/internal/mem"
	"cssidx/internal/workload"
)

func refLowerBound(a []uint32, key uint32) int {
	return sort.Search(len(a), func(i int) bool { return a[i] >= key })
}

// orderedSims builds every ordered simulated index over keys.
func orderedSims(keys []uint32) map[string]Sim {
	alloc := cachesim.NewAddrAlloc()
	return map[string]Sim{
		"binary": NewBinarySearch(keys, alloc),
		"interp": NewInterpolationSearch(keys, alloc),
		"full":   NewFullCSS(keys, 16, alloc),
		"level":  NewLevelCSS(keys, 16, alloc),
		"bplus":  NewBPlusTree(keys, 16, alloc),
		"ttree":  NewTTree(keys, 7, alloc),
		"bst":    NewBST(keys, alloc),
	}
}

func TestSimsMatchReferenceLowerBound(t *testing.T) {
	g := workload.New(80)
	for _, n := range []int{0, 1, 5, 16, 17, 100, 1000, 12345} {
		keys := g.SortedDistinct(n)
		probes := append(g.Lookups(keys, 300), g.Misses(keys, 300)...)
		probes = append(probes, 0, ^uint32(0))
		for name, s := range orderedSims(keys) {
			for _, k := range probes {
				got := s.Probe(nil, k).Index
				want := refLowerBound(keys, k)
				if got != want {
					t.Fatalf("%s n=%d: Probe(%d).Index=%d, want %d", name, n, k, got, want)
				}
			}
		}
	}
}

func TestSimsMatchRealImplementations(t *testing.T) {
	g := workload.New(81)
	keys := g.SortedWithDuplicates(20000, 4)
	alloc := cachesim.NewAddrAlloc()
	probes := append(g.Lookups(keys, 2000), g.Misses(keys, 2000)...)

	full := NewFullCSS(keys, 16, alloc)
	level := NewLevelCSS(keys, 16, alloc)
	bp := NewBPlusTree(keys, 16, alloc)
	tt := NewTTree(keys, 7, alloc)
	b := NewBST(keys, alloc)
	for _, k := range probes {
		if got, want := full.Probe(nil, k).Index, full.RealLowerBound(k); got != want {
			t.Fatalf("full css: sim %d real %d (key %d)", got, want, k)
		}
		if got, want := level.Probe(nil, k).Index, level.RealLowerBound(k); got != want {
			t.Fatalf("level css: sim %d real %d (key %d)", got, want, k)
		}
		if got, want := bp.Probe(nil, k).Index, bp.RealLowerBound(k); got != want {
			t.Fatalf("b+tree: sim %d real %d (key %d)", got, want, k)
		}
		if got, want := tt.Probe(nil, k).Index, tt.RealLowerBound(k); got != want {
			t.Fatalf("t-tree: sim %d real %d (key %d)", got, want, k)
		}
		if got, want := b.Probe(nil, k).Index, b.RealLowerBound(k); got != want {
			t.Fatalf("bst: sim %d real %d (key %d)", got, want, k)
		}
	}
}

func TestHashSimMatchesReal(t *testing.T) {
	g := workload.New(82)
	keys := g.SortedDistinct(10000)
	alloc := cachesim.NewAddrAlloc()
	hs := NewHash(keys, 1<<12, mem.CacheLine, alloc)
	probes := append(g.Lookups(keys, 2000), g.Misses(keys, 2000)...)
	for _, k := range probes {
		pr := hs.Probe(nil, k)
		rid, ok := hs.RealSearch(k)
		if ok != (pr.Index >= 0) {
			t.Fatalf("hash sim found=%v real found=%v (key %d)", pr.Index >= 0, ok, k)
		}
		if ok && int(rid) != pr.Index {
			t.Fatalf("hash sim rid %d real %d", pr.Index, rid)
		}
	}
}

func TestCSSTreeFewerMissesThanBinarySearch(t *testing.T) {
	// The paper's core claim, in simulation: on a large array the CSS-tree
	// takes a fraction of binary search's cache misses per lookup.
	g := workload.New(83)
	keys := g.SortedDistinct(2_000_000)
	probes := g.Lookups(keys, 20000)
	m := cachesim.UltraSparcII()

	alloc := cachesim.NewAddrAlloc()
	binRes := Run(NewBinarySearch(keys, alloc), m, probes)
	cssRes := Run(NewFullCSS(keys, 16, cachesim.NewAddrAlloc()), m, probes)

	binMiss := binRes.MissesPerLookup(1)
	cssMiss := cssRes.MissesPerLookup(1)
	if cssMiss >= binMiss/2 {
		t.Errorf("L2 misses/lookup: css=%.2f binary=%.2f; want css < binary/2", cssMiss, binMiss)
	}
	if cssRes.Seconds >= binRes.Seconds/2 {
		t.Errorf("modelled time: css=%.3fs binary=%.3fs; paper says >2x faster", cssRes.Seconds, binRes.Seconds)
	}
}

func TestTTreeTracksBinarySearchMisses(t *testing.T) {
	// §3.3: "T-Trees do not provide any better cache behavior than binary
	// search" — per-lookup misses within ~35% of each other.
	g := workload.New(84)
	keys := g.SortedDistinct(2_000_000)
	probes := g.Lookups(keys, 20000)
	m := cachesim.UltraSparcII()
	binMiss := Run(NewBinarySearch(keys, cachesim.NewAddrAlloc()), m, probes).MissesPerLookup(1)
	ttMiss := Run(NewTTree(keys, 7, cachesim.NewAddrAlloc()), m, probes).MissesPerLookup(1)
	lo, hi := binMiss*0.5, binMiss*1.5
	if ttMiss < lo || ttMiss > hi {
		t.Errorf("T-tree L2 misses/lookup %.2f not within 50%% of binary search %.2f", ttMiss, binMiss)
	}
}

func TestBPlusBetweenCSSAndBinary(t *testing.T) {
	g := workload.New(85)
	keys := g.SortedDistinct(2_000_000)
	probes := g.Lookups(keys, 20000)
	m := cachesim.UltraSparcII()
	bin := Run(NewBinarySearch(keys, cachesim.NewAddrAlloc()), m, probes).Seconds
	bp := Run(NewBPlusTree(keys, 16, cachesim.NewAddrAlloc()), m, probes).Seconds
	css := Run(NewFullCSS(keys, 16, cachesim.NewAddrAlloc()), m, probes).Seconds
	if !(css < bp && bp < bin) {
		t.Errorf("want css < b+tree < binary, got css=%.3f bp=%.3f bin=%.3f", css, bp, bin)
	}
}

func TestHashFastestWithBigDirectory(t *testing.T) {
	g := workload.New(86)
	keys := g.SortedDistinct(1_000_000)
	probes := g.Lookups(keys, 20000)
	m := cachesim.UltraSparcII()
	cssSim := NewFullCSS(keys, 16, cachesim.NewAddrAlloc())
	hashSim := NewHash(keys, 1<<19, mem.CacheLine, cachesim.NewAddrAlloc())
	css := Run(cssSim, m, probes)
	hs := Run(hashSim, m, probes)
	if hs.Seconds >= css.Seconds {
		t.Errorf("hash %.3fs should beat css %.3fs", hs.Seconds, css.Seconds)
	}
	if hashSim.SpaceBytes() < 4*cssSim.SpaceBytes() {
		t.Errorf("hash space %d should dwarf css directory %d", hashSim.SpaceBytes(), cssSim.SpaceBytes())
	}
}

func TestSmallArrayAllMethodsConverge(t *testing.T) {
	// Figure 10: "when all the data can fit in cache, there is hardly any
	// difference among all the algorithms."  With n=1000 (4 KB) everything
	// is cache-resident; per-lookup time must be within one order of
	// magnitude across ordered methods.
	g := workload.New(87)
	keys := g.SortedDistinct(1000)
	probes := g.Lookups(keys, 20000)
	m := cachesim.UltraSparcII()
	times := map[string]float64{}
	for name, s := range orderedSims(keys) {
		times[name] = Run(s, m, probes).SecondsPerLookup()
	}
	min, max := times["binary"], times["binary"]
	for _, v := range times {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max > 10*min {
		t.Errorf("in-cache spread too wide: %v", times)
	}
}

func TestRunAccountsLookups(t *testing.T) {
	g := workload.New(88)
	keys := g.SortedDistinct(5000)
	probes := g.Lookups(keys, 777)
	res := Run(NewBinarySearch(keys, cachesim.NewAddrAlloc()), cachesim.UltraSparcII(), probes)
	if res.Lookups != 777 {
		t.Errorf("lookups=%d", res.Lookups)
	}
	if res.Cmps <= 0 || res.Seconds <= 0 {
		t.Errorf("empty accounting: %+v", res)
	}
	if res.String() == "" {
		t.Error("empty String()")
	}
}

func TestWarmCacheBenefitsCSSMost(t *testing.T) {
	// §5.1: "Since CSS-trees have fewer levels than all the other methods,
	// it will also gain the most benefit from a warm cache."  Repeated
	// lookups of one key: css should approach zero misses.
	g := workload.New(89)
	keys := g.SortedDistinct(1_000_000)
	m := cachesim.UltraSparcII()
	css := NewFullCSS(keys, 16, cachesim.NewAddrAlloc())
	h := cachesim.New(m)
	css.Probe(h, keys[500000])
	h.Reset()
	for i := 0; i < 100; i++ {
		css.Probe(h, keys[500000])
	}
	s := h.Stats()
	if s.Misses[1] != 0 {
		t.Errorf("warm repeated lookup still misses L2: %d", s.Misses[1])
	}
}
