package simidx_test

// Differential legs for the sharded delta layer: an index absorbing insert
// batches as delta runs must answer every surface — scalar, batch, ordered
// iteration — bit-identically to a fully rebuilt twin and to the sorted
// slice oracle, across interleaved appends, run merges, manual compactions
// and size-triggered folds.

import (
	"math"
	"slices"
	"testing"

	"cssidx"
	"cssidx/internal/workload"
)

// checkShardedState compares one live sharded index against the oracle on
// every read surface (scalar, batch, ascend), without rebuilding it.
func checkShardedState(t *testing.T, tag string, x *cssidx.ShardedIndex[uint32], o sliceOracle, probes []uint32) {
	t.Helper()
	for _, p := range probes {
		if got, want := x.Search(p), o.search(p); got != want {
			t.Fatalf("%s: Search(%d)=%d want %d", tag, p, got, want)
		}
		if got, want := x.LowerBound(p), o.lowerBound(p); got != want {
			t.Fatalf("%s: LowerBound(%d)=%d want %d", tag, p, got, want)
		}
		gf, gl := x.EqualRange(p)
		wf, wl := o.equalRange(p)
		if gf != wf || gl != wl {
			t.Fatalf("%s: EqualRange(%d)=[%d,%d) want [%d,%d)", tag, p, gf, gl, wf, wl)
		}
	}
	out := make([]int32, len(probes))
	first := make([]int32, len(probes))
	last := make([]int32, len(probes))
	x.SearchBatch(probes, out)
	x.EqualRangeBatch(probes, first, last)
	lb := make([]int32, len(probes))
	x.LowerBoundBatch(probes, lb)
	for i, p := range probes {
		if got, want := int(out[i]), o.search(p); got != want {
			t.Fatalf("%s: SearchBatch(%d)=%d want %d", tag, p, got, want)
		}
		if got, want := int(lb[i]), o.lowerBound(p); got != want {
			t.Fatalf("%s: LowerBoundBatch(%d)=%d want %d", tag, p, got, want)
		}
		wf, wl := o.equalRange(p)
		if int(first[i]) != wf || int(last[i]) != wl {
			t.Fatalf("%s: EqualRangeBatch(%d)=[%d,%d) want [%d,%d)", tag, p, first[i], last[i], wf, wl)
		}
	}
	if x.Len() != len(o.keys) {
		t.Fatalf("%s: Len=%d want %d", tag, x.Len(), len(o.keys))
	}
	i := 0
	x.Ascend(0, math.MaxUint32, func(pos int, key uint32) bool {
		if pos != i || key != o.keys[i] {
			t.Fatalf("%s: Ascend step %d gave (%d,%d), want (%d,%d)", tag, i, pos, key, i, o.keys[i])
		}
		i++
		return true
	})
	if i != len(o.keys) {
		t.Fatalf("%s: Ascend visited %d keys, want %d", tag, i, len(o.keys))
	}
}

// TestDifferentialDeltaVsFolded grows a delta-absorbing index and an
// always-fold twin through the same interleaved batch sequence — absorbs
// past the run-merge tier, deletes (which fold), a manual Compact, and a
// size-triggered fold — comparing both to the oracle after every step.
func TestDifferentialDeltaVsFolded(t *testing.T) {
	g := workload.New(91)
	keys := g.SortedWithDuplicates(5000, 3)
	live := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{
		Shards: 4,
		Delta:  cssidx.DeltaPolicy{MinFoldKeys: 1 << 20}, // absorb until told otherwise
	})
	defer live.Close()
	folded := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{
		Shards: 4,
		Delta:  cssidx.DeltaPolicy{Disabled: true},
	})
	defer folded.Close()

	ok := slices.Clone(keys)
	apply := func(ins, del []uint32) {
		live.Insert(ins...)
		folded.Insert(ins...)
		if len(del) > 0 {
			live.Delete(del...)
			folded.Delete(del...)
		}
		live.Sync()
		folded.Sync()
		ok = append(ok, ins...)
		slices.Sort(ok)
		for _, k := range del {
			if i, found := slices.BinarySearch(ok, k); found {
				ok = append(ok[:i], ok[i+1:]...)
			}
		}
	}
	check := func(tag string) {
		o := sliceOracle{keys: ok}
		probes := probeSet(ok, g)
		checkShardedState(t, tag+"/delta", live, o, probes)
		checkShardedState(t, tag+"/folded", folded, o, probes)
	}

	// Six insert-only rounds: enough runs per shard to cross the merge tier.
	for round := 0; round < 6; round++ {
		apply(append(g.Misses(ok, 70), g.Lookups(ok, 30)...), nil)
		check("absorb")
	}
	st := live.DeltaStats()
	if st.Appends == 0 || st.DeltaKeys == 0 {
		t.Fatalf("delta layer never engaged: %+v", st)
	}
	if st.RunMerges == 0 {
		t.Fatalf("run-merge tier never crossed: %+v", st)
	}

	// A delete batch folds the affected shards on both twins.
	apply(g.Misses(ok, 50), g.Lookups(ok, 80))
	check("delete-fold")

	// More absorbs, then a manual compaction: all runs fold, reads hold.
	apply(g.Misses(ok, 120), nil)
	check("re-absorb")
	live.Compact()
	if st := live.DeltaStats(); st.DeltaKeys != 0 || st.Runs != 0 {
		t.Fatalf("Compact left delta behind: %+v", st)
	}
	check("compacted")

	// Finally a size-triggered fold: tighten the policy via a big batch on
	// a fresh index is not possible in place, so verify the default policy
	// folds by itself on a small-base index.
	smallBase := g.SortedUniform(64)
	def := cssidx.NewSharded(smallBase, cssidx.ShardedOptions[uint32]{Shards: 2})
	defer def.Close()
	okd := slices.Clone(smallBase)
	big := g.Misses(okd, 2000) // ≥ MinFoldKeys and ≥ base/8 per shard
	def.Insert(big...)
	def.Sync()
	okd = append(okd, big...)
	slices.Sort(okd)
	if st := def.DeltaStats(); st.Folds == 0 {
		t.Fatalf("oversized batch did not trigger a fold: %+v", st)
	}
	checkShardedState(t, "size-fold", def, sliceOracle{keys: okd}, probeSet(okd, g))
}

// FuzzDifferentialDeltaAppends fuzzes append sequences through the delta
// layer.  Bytes decode as: byte 0 = initial key count (scaled), then pairs
// of (batch-size byte, seed byte) each driving one absorbed insert batch;
// the index is checked against the oracle after every batch and again
// after a final Compact.
func FuzzDifferentialDeltaAppends(f *testing.F) {
	f.Add([]byte{8, 3, 1, 5, 2, 0, 9})
	f.Add([]byte{0, 1, 1})
	f.Add([]byte{255, 16, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 64 {
			t.Skip()
		}
		g := workload.New(int64(data[0]) + 1)
		keys := g.SortedWithDuplicates(int(data[0])*8, 2)
		x := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{
			Shards: 3,
			Delta:  cssidx.DeltaPolicy{MinFoldKeys: 1 << 20},
		})
		defer x.Close()
		ok := slices.Clone(keys)
		for i := 1; i+1 < len(data); i += 2 {
			n := int(data[i])
			if n == 0 {
				continue
			}
			gb := workload.New(int64(data[i+1]) + 7)
			ins := gb.Misses(ok, n)
			x.Insert(ins...)
			x.Sync()
			ok = append(ok, ins...)
			slices.Sort(ok)
			checkShardedState(t, "fuzz-absorb", x, sliceOracle{keys: ok}, probeSet(ok, gb))
		}
		x.Compact()
		checkShardedState(t, "fuzz-compacted", x, sliceOracle{keys: ok}, probeSet(ok, g))
	})
}
