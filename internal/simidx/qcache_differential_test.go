package simidx_test

// Result-cache differential leg: the harness's adversarial key sets —
// empty, single-key, all-duplicates, uint32 extremes, node-boundary runs —
// are loaded into mmdb tables twice, one with the qcache result cache
// admitting everything and one with caching disabled, and every query
// surface must answer bit-identically on the fill pass AND the hit pass,
// before and after an invalidating AppendRows batch.  This extends the
// index-vs-oracle contract one layer up: caching is an execution detail
// that must never be observable in results.

import (
	"fmt"
	"testing"

	"cssidx"
	"cssidx/internal/mmdb"
	"cssidx/internal/workload"
)

func buildCachePairTables(t *testing.T, keys []uint32) (cached, plain *mmdb.Table) {
	t.Helper()
	build := func() *mmdb.Table {
		tab := mmdb.NewTable("t")
		if err := tab.AddColumn("k", keys); err != nil {
			t.Fatal(err)
		}
		if _, err := tab.BuildIndex("k", cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
			t.Fatal(err)
		}
		return tab
	}
	cached = build()
	cached.EnableCache(mmdb.CacheOptions{MinCostNs: -1})
	plain = build()
	return cached, plain
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cacheBattery compares every query surface across the cached/uncached
// pair, running each query twice on the cached side (fill, then hit).
func cacheBattery(t *testing.T, cached, plain *mmdb.Table, probes []uint32, tag string) {
	t.Helper()
	for i := 0; i+1 < len(probes); i += 2 {
		lo, hi := probes[i], probes[i+1]
		if lo > hi {
			lo, hi = hi, lo
		}
		want, _, err := plain.SelectRange("k", lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			got, _, err := cached.SelectRange("k", lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			if !equalU32(got, want) {
				t.Fatalf("%s SelectRange[%d,%d] pass %d: %v != %v", tag, lo, hi, pass, got, want)
			}
		}
		wantW, _, err := plain.SelectWhere([]mmdb.RangePred{{Col: "k", Lo: lo, Hi: hi}})
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			got, _, err := cached.SelectWhere([]mmdb.RangePred{{Col: "k", Lo: lo, Hi: hi}})
			if err != nil {
				t.Fatal(err)
			}
			if !equalU32(got, wantW) {
				t.Fatalf("%s SelectWhere[%d,%d] pass %d: %v != %v", tag, lo, hi, pass, got, wantW)
			}
		}
	}
	for size := 1; size <= len(probes); size *= 4 {
		list := probes[:size]
		want, _, err := plain.SelectIn("k", list)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			got, _, err := cached.SelectIn("k", list)
			if err != nil {
				t.Fatal(err)
			}
			if !equalU32(got, want) {
				t.Fatalf("%s SelectIn size %d pass %d: %v != %v", tag, size, pass, got, want)
			}
		}
	}
}

func TestQCacheDifferentialAdversarial(t *testing.T) {
	g := workload.New(77)
	sets := adversarialSets()
	sets["random-dups"] = g.Lookups(g.SortedUniform(512), 1024)
	for name, keys := range sets {
		t.Run(name, func(t *testing.T) {
			cached, plain := buildCachePairTables(t, keys)
			probes := probeSet(keys, g)
			if len(probes) > 256 {
				probes = probes[:256]
			}
			cacheBattery(t, cached, plain, probes, "gen1")
			// An invalidating batch: domains renumber, the generation
			// moves, and everything must still agree.
			batch := map[string][]uint32{"k": {0, 3, 42, ^uint32(0)}}
			if err := cached.AppendRows(batch); err != nil {
				t.Fatal(err)
			}
			if err := plain.AppendRows(batch); err != nil {
				t.Fatal(err)
			}
			cacheBattery(t, cached, plain, probes, "gen2")
			if s := cached.CacheStats(); s.Hits == 0 {
				t.Fatalf("%s: cache never hit: %+v", name, s)
			}
		})
	}
}

// TestQCacheDifferentialKinds runs the battery across every index method
// the table layer accepts, including hash (IN-lists through equality
// probes) — the cache must be invisible regardless of the access method
// underneath.
func TestQCacheDifferentialKinds(t *testing.T) {
	g := workload.New(78)
	keys := g.Lookups(g.SortedUniform(400), 900)
	kinds := []cssidx.Kind{
		cssidx.KindBinarySearch, cssidx.KindTTree, cssidx.KindBPlusTree,
		cssidx.KindFullCSS, cssidx.KindLevelCSS, cssidx.KindHash,
	}
	for _, kind := range kinds {
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			build := func() *mmdb.Table {
				tab := mmdb.NewTable("t")
				if err := tab.AddColumn("k", keys); err != nil {
					t.Fatal(err)
				}
				if _, err := tab.BuildIndex("k", kind, cssidx.Options{}); err != nil {
					t.Fatal(err)
				}
				return tab
			}
			cached := build()
			cached.EnableCache(mmdb.CacheOptions{MinCostNs: -1})
			plain := build()
			probes := probeSet(keys, g)[:64]
			cacheBattery(t, cached, plain, probes, "kinds")
		})
	}
}
