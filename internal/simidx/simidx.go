// Package simidx provides address-trace models of every index structure in
// this repository: each model performs a lookup while reporting the memory
// references the real implementation makes to a simulated cache hierarchy
// (internal/cachesim).
//
// This is the substitution for the paper's 1998 hardware: miss counts depend
// only on access patterns and cache geometry, so running these traces against
// the Ultra Sparc II and Pentium II presets regenerates Figures 10–13
// deterministically.  Lookup time is then estimated with the §5.1 cost
// model:
//
//	time = comparisons·cmp + level-moves·move + Σ missesᵢ·penaltyᵢ   (cycles)
//
// Every model returns the same lookup answer as the real implementation —
// the equivalence is enforced by tests — so a trace is a faithful replay,
// not a re-derivation.
package simidx

import (
	"fmt"

	"cssidx/internal/cachesim"
)

// ProbeResult reports one simulated lookup.
type ProbeResult struct {
	Index int // lower-bound index (ordered methods) or RID (hash); -1 = miss for hash
	Cmps  int // key comparisons performed
	Moves int // node-to-node transitions (pointer dereference or offset arithmetic)
}

// Sim is a simulated index: a structure with assigned virtual addresses
// whose Probe replays one lookup's memory references into h.
type Sim interface {
	Name() string
	// Probe simulates one lookup.  h may be nil to skip cache accounting
	// (used by the equivalence tests).
	Probe(h *cachesim.Hierarchy, key uint32) ProbeResult
	// SpaceBytes is the structure's footprint beyond the sorted RID list
	// (0 for binary and interpolation search).
	SpaceBytes() int
}

// Result aggregates a simulated run of many lookups.
type Result struct {
	Sim     string
	Machine string
	Lookups int
	Cmps    int64
	Moves   int64
	Stats   cachesim.Stats
	Seconds float64 // §5.1 model estimate for the whole run
}

// MissesPerLookup returns the average misses per lookup at cache level i.
func (r Result) MissesPerLookup(i int) float64 {
	if r.Lookups == 0 || i >= len(r.Stats.Misses) {
		return 0
	}
	return float64(r.Stats.Misses[i]) / float64(r.Lookups)
}

// SecondsPerLookup returns the modelled time per lookup.
func (r Result) SecondsPerLookup() float64 {
	if r.Lookups == 0 {
		return 0
	}
	return r.Seconds / float64(r.Lookups)
}

// String summarises the run.
func (r Result) String() string {
	return fmt.Sprintf("%s on %s: %d lookups, %.1f cmps/lookup, %.2f L2miss/lookup, %.3fs",
		r.Sim, r.Machine, r.Lookups, float64(r.Cmps)/float64(max(r.Lookups, 1)),
		r.MissesPerLookup(len(r.Stats.Misses)-1), r.Seconds)
}

// Run replays all probes through a cold hierarchy for machine m, exactly
// like the paper's protocol of timing a long sequence of random lookups
// (cold start, §5.1; the warm top levels emerge naturally across lookups).
func Run(s Sim, m *cachesim.Machine, probes []uint32) Result {
	h := cachesim.New(m)
	res := Result{Sim: s.Name(), Machine: m.Name, Lookups: len(probes)}
	for _, key := range probes {
		pr := s.Probe(h, key)
		res.Cmps += int64(pr.Cmps)
		res.Moves += int64(pr.Moves)
	}
	res.Stats = h.Stats()
	cycles := float64(res.Cmps)*m.CmpCycles +
		float64(res.Moves)*m.MoveCycles +
		res.Stats.PenaltyCycles(m)
	res.Seconds = cycles / m.ClockHz
	return res
}

// access reports a size-byte reference at addr when h is non-nil.
func access(h *cachesim.Hierarchy, addr uint64, size int) {
	if h != nil {
		h.Access(addr, size)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
