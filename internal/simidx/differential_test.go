package simidx_test

// Differential test harness: every index method in the repository — the
// real implementations behind the public API, the address-trace simulators
// of this package, and the new concurrent ShardedIndex — is driven against
// a sorted-slice oracle on random and adversarial key sets.  The sims are
// required by their package contract to return the same answers as the real
// structures; this harness enforces that contract and the public one from a
// single source of truth, extending the model-vs-simulation cross-checks of
// crossvalidate_test.go down to exact per-probe equality.

import (
	"math"
	"slices"
	"sort"
	"testing"

	"cssidx"
	"cssidx/internal/binsearch"
	"cssidx/internal/cachesim"
	"cssidx/internal/mem"
	"cssidx/internal/simidx"
	"cssidx/internal/workload"
)

// sliceOracle answers every query by definition on a sorted slice.
type sliceOracle struct{ keys []uint32 }

func (o sliceOracle) lowerBound(k uint32) int {
	return sort.Search(len(o.keys), func(i int) bool { return o.keys[i] >= k })
}
func (o sliceOracle) search(k uint32) int {
	if i := o.lowerBound(k); i < len(o.keys) && o.keys[i] == k {
		return i
	}
	return -1
}
func (o sliceOracle) equalRange(k uint32) (int, int) {
	first := o.lowerBound(k)
	last := first
	for last < len(o.keys) && o.keys[last] == k {
		last++
	}
	return first, last
}

// adversarialSets are the key sets that historically break index edge
// cases: empty, single key, all-duplicates, keys at the uint32 extremes,
// and runs straddling node boundaries.
func adversarialSets() map[string][]uint32 {
	allDup := make([]uint32, 100)
	for i := range allDup {
		allDup[i] = 42
	}
	runs := make([]uint32, 0, 96)
	for v := uint32(1); v <= 6; v++ {
		for i := 0; i < 16; i++ { // run length = node size
			runs = append(runs, v*1000)
		}
	}
	return map[string][]uint32{
		"empty":      {},
		"single":     {7},
		"single-max": {math.MaxUint32},
		"all-dup":    allDup,
		"extremes":   {0, 0, 1, 2, math.MaxUint32 - 1, math.MaxUint32, math.MaxUint32},
		"node-runs":  runs,
	}
}

// probeSet covers hits, misses, and the boundary values for a key set.
func probeSet(keys []uint32, g *workload.Gen) []uint32 {
	probes := []uint32{0, 1, 41, 42, 43, math.MaxUint32 - 1, math.MaxUint32}
	for _, k := range keys {
		probes = append(probes, k)
		if k > 0 {
			probes = append(probes, k-1)
		}
		if k < math.MaxUint32 {
			probes = append(probes, k+1)
		}
		if len(probes) > 3000 {
			break
		}
	}
	if len(keys) > 0 && g != nil {
		probes = append(probes, g.Lookups(keys, 500)...)
		probes = append(probes, g.Misses(keys, 200)...)
	}
	return probes
}

// checkIndex verifies one public-API index against the oracle, scalar and
// batched: every Kind must answer batches (natively or through the scalar
// adapter), ordered kinds additionally through the sort-probes-first
// schedule, all bit-identical to the oracle.
func checkIndex(t *testing.T, name string, idx cssidx.Index, o sliceOracle, probes []uint32) {
	t.Helper()
	ord, ordered := idx.(cssidx.OrderedIndex)
	for _, p := range probes {
		if got, want := idx.Search(p), o.search(p); got != want {
			t.Fatalf("%s: Search(%d)=%d want %d", name, p, got, want)
		}
		if !ordered {
			continue
		}
		if got, want := ord.LowerBound(p), o.lowerBound(p); got != want {
			t.Fatalf("%s: LowerBound(%d)=%d want %d", name, p, got, want)
		}
		gf, gl := ord.EqualRange(p)
		wf, wl := o.equalRange(p)
		if gf != wf || gl != wl {
			t.Fatalf("%s: EqualRange(%d)=[%d,%d) want [%d,%d)", name, p, gf, gl, wf, wl)
		}
	}
	checkBatcher(t, name+"/batch", batchSurface{b: cssidx.AsBatch(idx)}, ordered, o, probes)
	if ordered {
		checkBatcher(t, name+"/sorted-batch", batchSurface{b: cssidx.NewSortedBatch(ord)}, true, o, probes)
		// The parallel engine, forced on at tiny spans so the fan-out is
		// real even on one core, must stay bit-identical too.
		par := cssidx.NewParallel(ord, cssidx.ParallelOptions{Workers: 4, MinBatchPerWorker: 16})
		checkBatcher(t, name+"/parallel-batch", batchSurface{b: par}, true, o, probes)
	}
}

// batchSurface is the common face of AsBatch results and SortedBatch.
type batchSurface struct{ b cssidx.BatchIndex }

// checkBatcher verifies a batch surface against the oracle at several chunk
// sizes, including chunks that are not multiples of the lockstep width.
func checkBatcher(t *testing.T, name string, s batchSurface, ordered bool, o sliceOracle, probes []uint32) {
	t.Helper()
	bord, _ := s.b.(cssidx.BatchOrderedIndex)
	out := make([]int32, len(probes))
	first := make([]int32, len(probes))
	last := make([]int32, len(probes))
	for _, chunk := range []int{len(probes), 7, 64} {
		if chunk <= 0 {
			continue
		}
		for base := 0; base < len(probes); base += chunk {
			end := base + chunk
			if end > len(probes) {
				end = len(probes)
			}
			s.b.SearchBatch(probes[base:end], out[base:end])
			if ordered && bord != nil {
				bord.EqualRangeBatch(probes[base:end], first[base:end], last[base:end])
			}
		}
		for i, p := range probes {
			if got, want := int(out[i]), o.search(p); got != want {
				t.Fatalf("%s chunk=%d: SearchBatch(%d)=%d want %d", name, chunk, p, got, want)
			}
			if !ordered || bord == nil {
				continue
			}
			wf, wl := o.equalRange(p)
			if int(first[i]) != wf || int(last[i]) != wl {
				t.Fatalf("%s chunk=%d: EqualRangeBatch(%d)=[%d,%d) want [%d,%d)",
					name, chunk, p, first[i], last[i], wf, wl)
			}
		}
		if !ordered || bord == nil {
			continue
		}
		for base := 0; base < len(probes); base += chunk {
			end := base + chunk
			if end > len(probes) {
				end = len(probes)
			}
			bord.LowerBoundBatch(probes[base:end], out[base:end])
		}
		for i, p := range probes {
			if got, want := int(out[i]), o.lowerBound(p); got != want {
				t.Fatalf("%s chunk=%d: LowerBoundBatch(%d)=%d want %d", name, chunk, p, got, want)
			}
		}
	}
}

// checkSim verifies one simulated index against the oracle: Probe's Index
// field is the lower bound for ordered methods and the hit position (or -1)
// for hash.
func checkSim(t *testing.T, s simidx.Sim, o sliceOracle, probes []uint32) {
	t.Helper()
	_, isHash := s.(*simidx.Hash)
	for _, p := range probes {
		got := s.Probe(nil, p).Index
		if isHash {
			if want := o.search(p); got != want {
				t.Fatalf("sim %s: Probe(%d)=%d want %d", s.Name(), p, got, want)
			}
		} else if want := o.lowerBound(p); got != want {
			t.Fatalf("sim %s: Probe(%d)=%d want %d", s.Name(), p, got, want)
		}
	}
}

// checkSharded verifies the concurrent sharded index against the oracle,
// scalar and batched under both batch schedules.
func checkSharded(t *testing.T, keys []uint32, o sliceOracle, probes []uint32, shards int) {
	t.Helper()
	x := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{Shards: shards})
	defer x.Close()
	for _, p := range probes {
		if got, want := x.Search(p), o.search(p); got != want {
			t.Fatalf("sharded(%d): Search(%d)=%d want %d", shards, p, got, want)
		}
		if got, want := x.LowerBound(p), o.lowerBound(p); got != want {
			t.Fatalf("sharded(%d): LowerBound(%d)=%d want %d", shards, p, got, want)
		}
		gf, gl := x.EqualRange(p)
		wf, wl := o.equalRange(p)
		if gf != wf || gl != wl {
			t.Fatalf("sharded(%d): EqualRange(%d)=[%d,%d) want [%d,%d)", shards, p, gf, gl, wf, wl)
		}
	}
	checkShardedBatches(t, x, o, probes, shards, false)
	sorted := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{Shards: shards, SortBatches: true})
	defer sorted.Close()
	checkShardedBatches(t, sorted, o, probes, shards, true)
	par := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{
		Shards:   shards,
		Parallel: cssidx.ParallelOptions{Workers: 4, MinBatchPerWorker: 16},
	})
	defer par.Close()
	checkShardedBatches(t, par, o, probes, shards, false)
	// Ascend over the full range must replay the oracle slice exactly.
	i := 0
	x.Ascend(0, math.MaxUint32, func(pos int, key uint32) bool {
		if pos != i || key != o.keys[i] {
			t.Fatalf("sharded(%d): Ascend at %d got (%d,%d)", shards, i, pos, key)
		}
		i++
		return true
	})
	// MaxUint32 keys sit outside the half-open Ascend range; account for them.
	f, l := o.equalRange(math.MaxUint32)
	if i != len(o.keys)-(l-f) {
		t.Fatalf("sharded(%d): Ascend yielded %d keys, oracle has %d below max", shards, i, len(o.keys)-(l-f))
	}
}

// checkShardedBatches verifies the sharded batch surface (and the Snapshot's)
// against the oracle under one batch schedule.
func checkShardedBatches(t *testing.T, x *cssidx.ShardedIndex[uint32], o sliceOracle, probes []uint32, shards int, sorted bool) {
	t.Helper()
	out := make([]int32, len(probes))
	first := make([]int32, len(probes))
	last := make([]int32, len(probes))
	x.SearchBatch(probes, out)
	x.EqualRangeBatch(probes, first, last)
	for i, p := range probes {
		if got, want := int(out[i]), o.search(p); got != want {
			t.Fatalf("sharded(%d,sorted=%v): SearchBatch(%d)=%d want %d", shards, sorted, p, got, want)
		}
		wf, wl := o.equalRange(p)
		if int(first[i]) != wf || int(last[i]) != wl {
			t.Fatalf("sharded(%d,sorted=%v): EqualRangeBatch(%d)=[%d,%d) want [%d,%d)",
				shards, sorted, p, first[i], last[i], wf, wl)
		}
	}
	snap := x.Snapshot()
	snap.LowerBoundBatch(probes, out)
	for i, p := range probes {
		if got, want := int(out[i]), o.lowerBound(p); got != want {
			t.Fatalf("sharded(%d,sorted=%v): snapshot LowerBoundBatch(%d)=%d want %d", shards, sorted, p, got, want)
		}
	}
}

// checkEverything drives every method over one key set.
func checkEverything(t *testing.T, keys []uint32, g *workload.Gen) {
	t.Helper()
	o := sliceOracle{keys: keys}
	probes := probeSet(keys, g)
	n := len(keys)
	for _, kind := range cssidx.Kinds() {
		checkIndex(t, kind.String(), cssidx.New(kind, keys, cssidx.Options{}), o, probes)
	}
	ttCap := (16*4 - 8) / 8
	sims := []simidx.Sim{
		simidx.NewBinarySearch(keys, cachesim.NewAddrAlloc()),
		simidx.NewBST(keys, cachesim.NewAddrAlloc()),
		simidx.NewInterpolationSearch(keys, cachesim.NewAddrAlloc()),
		simidx.NewTTree(keys, ttCap, cachesim.NewAddrAlloc()),
		simidx.NewBPlusTree(keys, 16, cachesim.NewAddrAlloc()),
		simidx.NewFullCSS(keys, 16, cachesim.NewAddrAlloc()),
		simidx.NewLevelCSS(keys, 16, cachesim.NewAddrAlloc()),
		simidx.NewHash(keys, cssidx.DefaultHashDirSize(n), mem.CacheLine, cachesim.NewAddrAlloc()),
	}
	for _, s := range sims {
		checkSim(t, s, o, probes)
	}
	for _, shards := range []int{1, 4} {
		checkSharded(t, keys, o, probes, shards)
	}
}

func TestDifferentialAdversarial(t *testing.T) {
	for name, keys := range adversarialSets() {
		t.Run(name, func(t *testing.T) { checkEverything(t, keys, nil) })
	}
}

func TestDifferentialRandom(t *testing.T) {
	sizes := []int{100, 4097}
	if !testing.Short() {
		sizes = append(sizes, 60000)
	}
	for _, seed := range []int64{1, 2, 3} {
		g := workload.New(seed)
		for _, n := range sizes {
			for name, keys := range map[string][]uint32{
				"distinct": g.SortedDistinct(n),
				"dups":     g.SortedWithDuplicates(n, 4),
				"skewed":   g.SortedSkewed(n),
			} {
				t.Run(name, func(t *testing.T) { checkEverything(t, keys, g) })
			}
		}
	}
}

// TestDifferentialShardedMutations drives random Insert/Delete batches
// through the sharded index and a mirrored oracle, comparing after every
// Sync — the serving layer's §2.3 rebuild cycle against first principles.
func TestDifferentialShardedMutations(t *testing.T) {
	g := workload.New(77)
	keys := g.SortedWithDuplicates(4000, 3)
	x := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{Shards: 4})
	defer x.Close()
	ok := slices.Clone(keys)
	for round := 0; round < 15; round++ {
		ins := g.Misses(ok, 80)
		ins = append(ins, g.Lookups(ok, 40)...) // duplicate existing keys too
		var del []uint32
		del = append(del, g.Lookups(ok, 60)...)
		del = append(del, g.Misses(ok, 10)...) // deletes of absent keys: no-ops
		x.Insert(ins...)
		x.Delete(del...)
		x.Sync()
		ok = append(ok, ins...)
		slices.Sort(ok)
		for _, k := range del {
			if i, found := slices.BinarySearch(ok, k); found {
				ok = append(ok[:i], ok[i+1:]...)
			}
		}
		o := sliceOracle{keys: ok}
		probes := probeSet(ok, g)
		for _, p := range probes {
			if got, want := x.LowerBound(p), o.lowerBound(p); got != want {
				t.Fatalf("round %d: LowerBound(%d)=%d want %d", round, p, got, want)
			}
			if got, want := x.Search(p), o.search(p); got != want {
				t.Fatalf("round %d: Search(%d)=%d want %d", round, p, got, want)
			}
		}
		// The batch surface must track the mutated state identically.
		out := make([]int32, len(probes))
		x.LowerBoundBatch(probes, out)
		for i, p := range probes {
			if got, want := int(out[i]), o.lowerBound(p); got != want {
				t.Fatalf("round %d: LowerBoundBatch(%d)=%d want %d", round, p, got, want)
			}
		}
		if x.Len() != len(ok) {
			t.Fatalf("round %d: Len=%d want %d", round, x.Len(), len(ok))
		}
	}
}

// TestDifferentialShardedBatchUnderRebuilds probes batches concurrently with
// a writer churning epoch-swap rebuilds.  Each reader freezes a Snapshot and
// requires the batched answers to be bit-identical to the scalar answers on
// that same snapshot — the batch execution model's single-epoch guarantee,
// checked from first principles while epochs advance underneath.
func TestDifferentialShardedBatchUnderRebuilds(t *testing.T) {
	g := workload.New(78)
	keys := g.SortedWithDuplicates(6000, 2)
	x := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{Shards: 4})
	defer x.Close()
	probes := append(g.Lookups(keys, 400), g.Misses(keys, 200)...)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		churn := g.Misses(keys, 500)
		for {
			select {
			case <-stop:
				return
			default:
			}
			x.Insert(churn...)
			x.Sync()
			x.Delete(churn...)
			x.Sync()
		}
	}()

	out := make([]int32, len(probes))
	first := make([]int32, len(probes))
	last := make([]int32, len(probes))
	for round := 0; round < 60; round++ {
		snap := x.Snapshot()
		snap.SearchBatch(probes, out)
		snap.EqualRangeBatch(probes, first, last)
		for i, p := range probes {
			if got, want := int(out[i]), snap.Search(p); got != want {
				t.Fatalf("round %d: SearchBatch(%d)=%d, snapshot scalar=%d", round, p, got, want)
			}
			wf, wl := snap.EqualRange(p)
			if int(first[i]) != wf || int(last[i]) != wl {
				t.Fatalf("round %d: EqualRangeBatch(%d)=[%d,%d), snapshot scalar=[%d,%d)",
					round, p, first[i], last[i], wf, wl)
			}
		}
		// The live index's batch runs against one View too: its answers must
		// match some self-consistent state, which scalar spot checks confirm
		// via the keys the writer never touches.
		x.LowerBoundBatch(probes, out)
	}
	close(stop)
	<-done
}

// FuzzDifferentialLowerBound fuzzes arbitrary key sets and probes through
// the full method matrix.  Bytes decode as: first byte = probe count, the
// rest as little-endian uint32 keys.
func FuzzDifferentialLowerBound(f *testing.F) {
	f.Add([]byte{3, 1, 0, 0, 0, 1, 0, 0, 0, 255, 255, 255, 255})
	f.Add([]byte{0})
	f.Add([]byte{8, 42, 0, 0, 0, 42, 0, 0, 0, 42, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 4096 {
			t.Skip()
		}
		body := data[1:]
		keys := make([]uint32, 0, len(body)/4)
		for i := 0; i+4 <= len(body); i += 4 {
			k := uint32(body[i]) | uint32(body[i+1])<<8 | uint32(body[i+2])<<16 | uint32(body[i+3])<<24
			keys = append(keys, k)
		}
		slices.Sort(keys)
		o := sliceOracle{keys: keys}
		probes := probeSet(keys, nil)
		for _, kind := range cssidx.Kinds() {
			checkIndex(t, kind.String(), cssidx.New(kind, keys, cssidx.Options{}), o, probes)
		}
		checkSharded(t, keys, o, probes, 3)
	})
}

// TestDifferentialNodeSearchTiers runs the differential battery once per
// node-search dispatch tier the host can execute: the whole index surface —
// every method, batch kernels, sharded batches — must stay bit-identical to
// the oracle regardless of which kernel answers the node visits.  (CI also
// runs the full suite with CSSIDX_NODESEARCH pinned to each portable tier;
// this in-process sweep additionally covers the simd tier on AVX2 runners
// whatever the env says.)
func TestDifferentialNodeSearchTiers(t *testing.T) {
	prev := binsearch.ActiveKernel()
	defer binsearch.SetKernel(prev)
	g := workload.New(909)
	for _, kern := range []binsearch.Kernel{binsearch.KernelScalar, binsearch.KernelSWAR, binsearch.KernelSIMD} {
		if !binsearch.SetKernel(kern) {
			continue
		}
		t.Run(kern.String(), func(t *testing.T) {
			for name, keys := range adversarialSets() {
				t.Run(name, func(t *testing.T) { checkEverything(t, keys, nil) })
			}
			for _, n := range []int{100, 4097, 20000} {
				for name, keys := range map[string][]uint32{
					"distinct": g.SortedDistinct(n),
					"dups":     g.SortedWithDuplicates(n, 4),
				} {
					t.Run(name, func(t *testing.T) { checkEverything(t, keys, g) })
				}
			}
		})
	}
}
