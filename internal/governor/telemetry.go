package governor

import (
	"context"
	"errors"

	"cssidx/internal/telemetry"
)

// The governor_* series.  Counters follow the telemetry package's gating
// (one atomic load when collection is off); the gauges are live so a
// /metrics scrape sees queue depth and bytes in flight even with hot-path
// collection disabled.
var (
	ctrCancels      = telemetry.C("governor_cancels_total")
	ctrTimeouts     = telemetry.C("governor_timeouts_total")
	ctrBudgetAborts = telemetry.C("governor_budget_aborts_total")
	ctrSheds        = telemetry.C("governor_sheds_total")
	ctrAdmitted     = telemetry.C("governor_admitted_total")
	ctrQueuedTotal  = telemetry.C("governor_queued_total")

	gaugeQueueDepth    = telemetry.G("governor_queue_depth")
	gaugeBytesInFlight = telemetry.G("governor_bytes_in_flight")
	gaugeRunning       = telemetry.G("governor_running")
)

// NoteAbort classifies a governed abort into the governor_* counters.
// Query surfaces call it exactly once per failed query so the counters
// reconcile 1:1 with observed outcomes.  Sheds are counted inside the
// admission controller (where the decision is made), so ErrShed is
// deliberately not re-counted here; unknown errors count nothing.
func NoteAbort(err error) {
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		ctrCancels.Inc()
	case errors.Is(err, context.DeadlineExceeded):
		ctrTimeouts.Inc()
	case errors.Is(err, ErrBudgetExceeded):
		ctrBudgetAborts.Inc()
	}
}

// IsAbort reports whether err is one of the governor's typed aborts —
// cancellation, deadline, budget, or shed — as opposed to a real
// execution failure.  Callers use it to decide between "the governor
// stopped this on purpose" handling and ordinary error reporting.
func IsAbort(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrBudgetExceeded) ||
		errors.Is(err, ErrShed)
}
