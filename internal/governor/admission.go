package governor

import (
	"context"
	"fmt"
	"sync"
)

// Class ranks work for the admission controller's shed policy.  Under
// overload the controller degrades gracefully rather than uniformly:
// cache-miss aggregates (the most expensive, most recomputable work) are
// shed first and never queued; general selects queue up to the
// configured depth; point and cached lookups (the cheapest work, the
// interactive tail) queue with extra headroom and are woken first, so
// they are the last thing an overloaded engine stops serving.
type Class uint8

const (
	// ClassPoint is a point or cached lookup: highest priority, shed last.
	ClassPoint Class = iota
	// ClassSelect is a range/IN/WHERE/join compute.
	ClassSelect
	// ClassAggregate is a cache-miss aggregate: shed first under overload.
	ClassAggregate
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassPoint:
		return "point"
	case ClassSelect:
		return "select"
	case ClassAggregate:
		return "aggregate"
	}
	return "unknown"
}

// Options configures an admission controller.  Zero or negative values
// disable the corresponding limit.
type Options struct {
	// MaxConcurrent caps queries executing at once (the concurrency gate).
	MaxConcurrent int
	// MaxQueue caps waiters of ClassSelect; ClassPoint gets twice this
	// headroom, ClassAggregate none.  Beyond the cap, work is shed.
	MaxQueue int
	// MaxBytesInFlight is the watermark on the sum of admitted queries'
	// estimated bytes.  A query that would cross it waits (or is shed)
	// unless the engine is idle, in which case it is always admitted so
	// one huge query can never deadlock the gate.
	MaxBytesInFlight int64
}

// Admission is the engine-level admission controller: a concurrency
// gate plus a bytes-in-flight watermark with class-prioritized FIFO
// queues.  A nil *Admission admits everything for free.  Acquire blocks
// until admitted, the context ends, or the work is shed; every admit
// must be paired with Grant.Release.
type Admission struct {
	opts   Options
	mu     sync.Mutex
	run    int
	bytes  int64
	queued int
	queues [numClasses][]*waiter
}

type waiter struct {
	class Class
	bytes int64
	ready chan *Grant
}

// Grant is an admitted query's reservation; Release returns its
// capacity and wakes queued waiters in class-priority order.  Release
// is idempotent and nil-safe.
type Grant struct {
	a        *Admission
	bytes    int64
	released bool
	relMu    sync.Mutex
}

// NewAdmission returns a controller with the given limits.
func NewAdmission(opts Options) *Admission { return &Admission{opts: opts} }

func (a *Admission) admitLocked(est int64) bool {
	if a.opts.MaxConcurrent > 0 && a.run >= a.opts.MaxConcurrent {
		return false
	}
	if a.opts.MaxBytesInFlight > 0 && a.bytes+est > a.opts.MaxBytesInFlight && a.run > 0 {
		return false
	}
	return true
}

func (a *Admission) gaugesLocked() {
	gaugeQueueDepth.Set(int64(a.queued))
	gaugeBytesInFlight.Set(a.bytes)
	gaugeRunning.Set(int64(a.run))
}

// Acquire asks to run work of the given class touching an estimated
// estBytes of memory.  It returns immediately when capacity is free;
// under overload it sheds (ErrShed) or queues per the class policy, and
// a queued wait ends early with ctx's error if the context is done
// first.  The returned Grant is nil only when a is nil.
func (a *Admission) Acquire(ctx context.Context, class Class, estBytes int64) (*Grant, error) {
	if a == nil {
		return nil, nil
	}
	if estBytes < 0 {
		estBytes = 0
	}
	a.mu.Lock()
	if a.admitLocked(estBytes) {
		a.run++
		a.bytes += estBytes
		a.gaugesLocked()
		a.mu.Unlock()
		ctrAdmitted.Inc()
		return &Grant{a: a, bytes: estBytes}, nil
	}
	// Overloaded: shed or queue per class.
	limit := a.opts.MaxQueue
	if class == ClassPoint {
		limit *= 2
	}
	if class == ClassAggregate || a.queued >= limit {
		a.gaugesLocked()
		a.mu.Unlock()
		ctrSheds.Inc()
		return nil, fmt.Errorf("%w (%s)", ErrShed, class)
	}
	w := &waiter{class: class, bytes: estBytes, ready: make(chan *Grant, 1)}
	a.queues[class] = append(a.queues[class], w)
	a.queued++
	a.gaugesLocked()
	a.mu.Unlock()
	ctrQueuedTotal.Inc()

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case g := <-w.ready:
		ctrAdmitted.Inc()
		return g, nil
	case <-done:
		a.mu.Lock()
		if !a.removeLocked(w) {
			// A hand-off raced with the cancellation: the grant is in
			// (or headed for) the channel.  Take it and give it back so
			// no capacity leaks, then report the context's error.
			a.mu.Unlock()
			g := <-w.ready
			g.Release()
			return nil, ctx.Err()
		}
		a.queued--
		a.gaugesLocked()
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// removeLocked unlinks w from its class queue; false if already handed off.
func (a *Admission) removeLocked(w *waiter) bool {
	q := a.queues[w.class]
	for i, cand := range q {
		if cand == w {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			a.queues[w.class] = q[:len(q)-1]
			return true
		}
	}
	return false
}

// Release returns the grant's capacity and hands freed slots to queued
// waiters, points first.
func (g *Grant) Release() {
	if g == nil {
		return
	}
	g.relMu.Lock()
	if g.released {
		g.relMu.Unlock()
		return
	}
	g.released = true
	g.relMu.Unlock()
	a := g.a
	a.mu.Lock()
	a.run--
	a.bytes -= g.bytes
	for class := ClassPoint; class < numClasses; class++ {
		for len(a.queues[class]) > 0 && a.admitLocked(a.queues[class][0].bytes) {
			w := a.queues[class][0]
			a.queues[class][0] = nil
			a.queues[class] = a.queues[class][1:]
			a.queued--
			a.run++
			a.bytes += w.bytes
			w.ready <- &Grant{a: a, bytes: w.bytes}
		}
	}
	a.gaugesLocked()
	a.mu.Unlock()
}

// Stats is a point-in-time view of the controller, for tests and scrapes.
type Stats struct {
	Running       int
	Queued        int
	BytesInFlight int64
}

// Stats snapshots the controller state (zero for nil).
func (a *Admission) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{Running: a.run, Queued: a.queued, BytesInFlight: a.bytes}
}
