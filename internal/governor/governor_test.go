package governor

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestForUngovernedIsNil(t *testing.T) {
	if For(context.Background()) != nil {
		t.Fatal("Background context must yield nil Ctl")
	}
	if For(context.TODO()) != nil {
		t.Fatal("TODO context must yield nil Ctl")
	}
	if For(nil) != nil {
		t.Fatal("nil context must yield nil Ctl")
	}
	// Values alone (no cancel, no budget) stay ungoverned.
	ctx := context.WithValue(context.Background(), "k", "v") //nolint:staticcheck // deliberate plain key
	if For(ctx) != nil {
		t.Fatal("value-only context must yield nil Ctl")
	}
}

func TestNilSafety(t *testing.T) {
	var c *Ctl
	if c.Err() != nil || c.Charge(1) != nil || c.Stride() != DefaultStride || c.Budget() != nil {
		t.Fatal("nil Ctl methods must be zero-valued")
	}
	if c.Context() == nil {
		t.Fatal("nil Ctl context must be Background")
	}
	var cp *Checkpoint
	if cp != c.Checkpoint() {
		t.Fatal("nil Ctl checkpoint must be nil")
	}
	if cp.Tick() != nil || cp.TickN(10) != nil || cp.Flush() != nil {
		t.Fatal("nil Checkpoint methods must be nil")
	}
	cp.Charge(100) // must not panic
	var b *Budget
	if b.Charge(1) != nil || b.Err() != nil || b.Used() != 0 || b.Limit() != 0 {
		t.Fatal("nil Budget methods must be zero-valued")
	}
}

func TestBudgetCharge(t *testing.T) {
	b := NewBudget(100)
	if err := b.Charge(60); err != nil {
		t.Fatalf("under-limit charge: %v", err)
	}
	if err := b.Charge(41); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-limit charge: got %v, want ErrBudgetExceeded", err)
	}
	// Once tripped, stays tripped.
	if err := b.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("tripped budget Err: got %v", err)
	}
	if b.Used() != 101 {
		t.Fatalf("Used = %d, want 101", b.Used())
	}
	if NewBudget(0).Charge(1<<40) != nil {
		t.Fatal("limit 0 must be unlimited")
	}
}

func TestCtlCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := For(ctx)
	if c == nil {
		t.Fatal("cancellable context must be governed")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("pre-cancel Err: %v", err)
	}
	cancel()
	if err := c.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel Err: got %v", err)
	}
}

func TestCtlDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := For(ctx).Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline Err: got %v", err)
	}
}

func TestBudgetViaContext(t *testing.T) {
	ctx := WithBudget(context.Background(), 64)
	c := For(ctx)
	if c == nil {
		t.Fatal("budgeted context must be governed")
	}
	if ContextBudget(ctx) != c.Budget() {
		t.Fatal("ContextBudget must return the Ctl's budget")
	}
	if err := c.Charge(100); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-budget charge: got %v", err)
	}
	if err := c.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Err after trip: got %v", err)
	}
}

func TestCheckpointStride(t *testing.T) {
	ctx, cancel := context.WithCancel(WithStride(context.Background(), 10))
	c := For(ctx)
	if c.Stride() != 10 {
		t.Fatalf("Stride = %d, want 10", c.Stride())
	}
	cp := c.Checkpoint()
	cancel()
	// The first stride-1 ticks pass without checking; the stride-th must
	// observe the cancellation.
	for i := 0; i < 9; i++ {
		if err := cp.Tick(); err != nil {
			t.Fatalf("tick %d checked early: %v", i, err)
		}
	}
	if err := cp.Tick(); !errors.Is(err, context.Canceled) {
		t.Fatalf("stride tick: got %v, want Canceled", err)
	}
}

func TestCheckpointChargeFlush(t *testing.T) {
	ctx := WithBudget(WithStride(context.Background(), 1000), 50)
	c := For(ctx)
	cp := c.Checkpoint()
	cp.Charge(40)
	cp.Charge(40)
	// Pending charges flush at the stride boundary or explicit Flush.
	if c.Budget().Used() != 0 {
		t.Fatal("charges must stay pending until flush")
	}
	if err := cp.Flush(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("flush over budget: got %v", err)
	}
	if c.Budget().Used() != 80 {
		t.Fatalf("Used = %d, want 80", c.Budget().Used())
	}
}

func TestNoteAbortClassification(t *testing.T) {
	// NoteAbort must not panic on any input; counter values are covered by
	// the chaos harness reconciliation, which runs with telemetry enabled.
	NoteAbort(nil)
	NoteAbort(context.Canceled)
	NoteAbort(context.DeadlineExceeded)
	NoteAbort(ErrBudgetExceeded)
	NoteAbort(ErrShed)
	NoteAbort(errors.New("unrelated"))
}
