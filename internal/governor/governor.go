// Package governor is the engine's resource-governance layer: per-query
// cancellation and deadlines (via context.Context), per-query memory
// budgets charged at allocation sites, and an engine-level admission
// controller that queues or sheds work under overload.
//
// The package is designed around the same hot-path discipline as
// internal/telemetry: an ungoverned query (background context, no budget,
// no admission controller) must cost essentially nothing.  governor.For
// returns a nil *Ctl for such queries, and every method on *Ctl, *Budget,
// *Checkpoint, and *Admission is nil-safe, compiling down to a single
// pointer test on the ungoverned path.  Execution loops consult the
// governor through a Checkpoint, which amortizes even that pointer test
// down to once per stride rows.
//
// Abort taxonomy — every governed abort surfaces as exactly one of four
// typed errors, so callers (and the chaos harness) can classify without
// string matching:
//
//	context.Canceled        the caller gave up
//	context.DeadlineExceeded the deadline passed
//	ErrBudgetExceeded       the query out-grew its byte budget
//	ErrShed                 admission control refused the work under overload
package governor

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrBudgetExceeded is returned (wrapped, with the observed sizes) when a
// query charges its byte accountant past the configured limit.  Test with
// errors.Is.
var ErrBudgetExceeded = errors.New("governor: memory budget exceeded")

// ErrShed is returned when the admission controller refuses work under
// overload instead of queueing it.  Test with errors.Is.
var ErrShed = errors.New("governor: shed by admission control")

// DefaultStride is the number of rows a Checkpoint lets pass between
// cancellation/budget checks inside long scans and merges.  Large enough
// that the per-row cost is one decrement-and-branch, small enough that a
// cancelled query stops within tens of microseconds.
const DefaultStride = 32768

// Budget is a per-query byte accountant.  Execution charges it at
// allocation sites (result buffers, merge scratch, aggregate tables);
// the first charge that pushes usage past the limit makes every
// subsequent Err/Charge call fail with ErrBudgetExceeded.  A nil Budget
// or a non-positive limit means "unlimited".  Safe for concurrent use by
// parallel workers of one query.
type Budget struct {
	limit int64
	used  atomic.Int64
}

// NewBudget returns a budget of limit bytes; limit <= 0 means unlimited.
func NewBudget(limit int64) *Budget { return &Budget{limit: limit} }

// Charge adds n bytes to the account and returns ErrBudgetExceeded
// (wrapped with the sizes involved) if the account is now over limit.
// The charge is NOT rolled back on failure: once a query trips its
// budget every later check fails too, which is exactly what the abort
// paths rely on.
func (b *Budget) Charge(n int64) error {
	if b == nil || b.limit <= 0 {
		return nil
	}
	if used := b.used.Add(n); used > b.limit {
		return fmt.Errorf("%w: %d of %d bytes", ErrBudgetExceeded, used, b.limit)
	}
	return nil
}

// Err reports ErrBudgetExceeded if the account has already tripped.
func (b *Budget) Err() error {
	if b == nil || b.limit <= 0 {
		return nil
	}
	if used := b.used.Load(); used > b.limit {
		return fmt.Errorf("%w: %d of %d bytes", ErrBudgetExceeded, used, b.limit)
	}
	return nil
}

// Used returns the bytes charged so far.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Limit returns the configured limit (0 = unlimited).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

type ctxKey int

const (
	budgetKey ctxKey = iota
	strideKey
)

// WithBudget derives a context carrying a fresh byte budget of limit
// bytes.  Every query executed under the returned context shares the one
// account, so a multi-statement batch can be bounded as a unit.
func WithBudget(ctx context.Context, limit int64) context.Context {
	return context.WithValue(ctx, budgetKey, NewBudget(limit))
}

// WithStride derives a context overriding the row-stride between
// in-loop cancellation checks (DefaultStride otherwise).  Used by tests
// and the chaos harness to make cancellation windows tight.
func WithStride(ctx context.Context, rows int) context.Context {
	return context.WithValue(ctx, strideKey, rows)
}

// ContextBudget returns the budget carried by ctx, or nil.
func ContextBudget(ctx context.Context) *Budget {
	if ctx == nil {
		return nil
	}
	b, _ := ctx.Value(budgetKey).(*Budget)
	return b
}

// Ctl is the per-query governance handle threaded through execution
// internals.  It snapshots the context's done channel and budget once at
// the query surface so inner loops never re-walk the context value
// chain.  A nil *Ctl is the ungoverned query: every method returns the
// zero value after a single pointer test.
type Ctl struct {
	ctx    context.Context
	done   <-chan struct{}
	budget *Budget
	stride int

	// admitted marks that this query already holds an admission grant, so
	// a surface nested inside another (a WHERE conjunct probing a sharded
	// index, a join probing an inner table) never re-acquires — which
	// would deadlock a MaxConcurrent gate against itself.
	admitted atomic.Bool
}

// For builds the governance handle for ctx.  It returns nil — the
// zero-cost ungoverned path — when ctx carries neither a cancellation
// signal nor a budget (context.Background(), context.TODO(), nil).
func For(ctx context.Context) *Ctl {
	if ctx == nil {
		return nil
	}
	done := ctx.Done()
	budget := ContextBudget(ctx)
	if done == nil && budget == nil {
		return nil
	}
	stride := DefaultStride
	if s, ok := ctx.Value(strideKey).(int); ok && s > 0 {
		stride = s
	}
	return &Ctl{ctx: ctx, done: done, budget: budget, stride: stride}
}

// Context returns the query's context (context.Background for nil Ctl),
// for handing to layers that take a context directly.
func (c *Ctl) Context() context.Context {
	if c == nil {
		return context.Background()
	}
	return c.ctx
}

// Budget returns the query's byte budget, or nil.
func (c *Ctl) Budget() *Budget {
	if c == nil {
		return nil
	}
	return c.budget
}

// Stride returns the row-stride for in-loop checks.
func (c *Ctl) Stride() int {
	if c == nil {
		return DefaultStride
	}
	return c.stride
}

// EnterAdmission marks the query as holding an admission grant and
// reports whether this call took the mark: false means an enclosing
// surface already admitted the query, and the caller must not acquire
// again (nil Ctl — an ungoverned query — is never admitted and always
// returns false).
func (c *Ctl) EnterAdmission() bool {
	if c == nil {
		return false
	}
	return c.admitted.CompareAndSwap(false, true)
}

// ExitAdmission clears the admission mark; pair with a successful
// EnterAdmission when the grant is released.
func (c *Ctl) ExitAdmission() {
	if c != nil {
		c.admitted.Store(false)
	}
}

// Err is the non-blocking governance check: context.Canceled /
// context.DeadlineExceeded if the query's context is done,
// ErrBudgetExceeded if the budget has tripped, nil otherwise.
func (c *Ctl) Err() error {
	if c == nil {
		return nil
	}
	if c.done != nil {
		select {
		case <-c.done:
			return c.ctx.Err()
		default:
		}
	}
	return c.budget.Err()
}

// Charge adds n bytes to the query's budget (no-op without one).
func (c *Ctl) Charge(n int64) error {
	if c == nil {
		return nil
	}
	return c.budget.Charge(n)
}

// Checkpoint amortizes governance checks over a row loop.  Each worker
// goroutine takes its own Checkpoint (the struct is not safe for
// concurrent use; the underlying Ctl is).  Tick is called once per row
// or chunk and performs the real check every stride ticks; Charge
// accumulates byte deltas and flushes them to the shared budget at the
// same cadence, so parallel workers don't contend on the budget atomic
// per row.
type Checkpoint struct {
	ctl     *Ctl
	stride  int
	left    int
	pending int64
}

// Checkpoint returns a fresh per-goroutine checkpoint (nil for nil Ctl).
func (c *Ctl) Checkpoint() *Checkpoint {
	if c == nil {
		return nil
	}
	return &Checkpoint{ctl: c, stride: c.stride, left: c.stride}
}

// Tick counts one row; every stride rows it flushes pending byte
// charges and runs the full cancellation/budget check.
func (cp *Checkpoint) Tick() error {
	if cp == nil {
		return nil
	}
	cp.left--
	if cp.left > 0 {
		return nil
	}
	return cp.check()
}

// TickN counts n rows at once (for chunk-at-a-time loops).
func (cp *Checkpoint) TickN(n int) error {
	if cp == nil {
		return nil
	}
	cp.left -= n
	if cp.left > 0 {
		return nil
	}
	return cp.check()
}

// Charge accumulates n bytes against the query budget, flushed at the
// next stride boundary (or Flush).
func (cp *Checkpoint) Charge(n int64) {
	if cp == nil {
		return
	}
	cp.pending += n
}

// Flush pushes any pending byte charges to the shared budget and runs a
// full check immediately.  Call it when a worker finishes its span so
// accumulated charges are not lost.
func (cp *Checkpoint) Flush() error {
	if cp == nil {
		return nil
	}
	return cp.check()
}

func (cp *Checkpoint) check() error {
	cp.left = cp.stride
	if cp.pending != 0 {
		n := cp.pending
		cp.pending = 0
		if err := cp.ctl.Charge(n); err != nil {
			return err
		}
	}
	return cp.ctl.Err()
}
