package governor

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func mustAcquire(t *testing.T, a *Admission, class Class, bytes int64) *Grant {
	t.Helper()
	g, err := a.Acquire(context.Background(), class, bytes)
	if err != nil {
		t.Fatalf("Acquire(%s, %d): %v", class, bytes, err)
	}
	return g
}

func TestNilAdmissionAdmitsEverything(t *testing.T) {
	var a *Admission
	g, err := a.Acquire(context.Background(), ClassAggregate, 1<<40)
	if err != nil || g != nil {
		t.Fatalf("nil admission: got (%v, %v)", g, err)
	}
	g.Release() // nil-safe
	if a.Stats() != (Stats{}) {
		t.Fatal("nil admission stats must be zero")
	}
}

func TestConcurrencyGate(t *testing.T) {
	a := NewAdmission(Options{MaxConcurrent: 2, MaxQueue: 4})
	g1 := mustAcquire(t, a, ClassSelect, 0)
	g2 := mustAcquire(t, a, ClassSelect, 0)

	// Third select queues; it must be admitted when a slot frees.
	got := make(chan error, 1)
	go func() {
		g, err := a.Acquire(context.Background(), ClassSelect, 0)
		if err == nil {
			g.Release()
		}
		got <- err
	}()
	// Give the goroutine time to enqueue, then confirm it is waiting.
	deadline := time.Now().Add(time.Second)
	for a.Stats().Queued == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if q := a.Stats().Queued; q != 1 {
		t.Fatalf("Queued = %d, want 1", q)
	}
	g1.Release()
	if err := <-got; err != nil {
		t.Fatalf("queued select: %v", err)
	}
	g2.Release()
	if s := a.Stats(); s.Running != 0 || s.Queued != 0 {
		t.Fatalf("final stats: %+v", s)
	}
}

func TestAggregateShedsFirst(t *testing.T) {
	a := NewAdmission(Options{MaxConcurrent: 1, MaxQueue: 4})
	g := mustAcquire(t, a, ClassSelect, 0)
	defer g.Release()
	// Aggregates are never queued under overload.
	if _, err := a.Acquire(context.Background(), ClassAggregate, 0); !errors.Is(err, ErrShed) {
		t.Fatalf("aggregate under overload: got %v, want ErrShed", err)
	}
}

func TestQueueCapSheds(t *testing.T) {
	a := NewAdmission(Options{MaxConcurrent: 1, MaxQueue: 1})
	g := mustAcquire(t, a, ClassSelect, 0)
	defer g.Release()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		gq, err := a.Acquire(ctx, ClassSelect, 0)
		if err == nil {
			gq.Release()
		}
	}()
	deadline := time.Now().Add(time.Second)
	for a.Stats().Queued == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Queue is full for selects: the next select sheds...
	if _, err := a.Acquire(context.Background(), ClassSelect, 0); !errors.Is(err, ErrShed) {
		t.Fatalf("select past queue cap: got %v, want ErrShed", err)
	}
	// ...but a point lookup still has headroom (2x cap), so it queues;
	// cancel it to avoid waiting for capacity.
	pctx, pcancel := context.WithCancel(context.Background())
	pcancel()
	if _, err := a.Acquire(pctx, ClassPoint, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued point with cancelled ctx: got %v, want Canceled", err)
	}
	cancel()
	wg.Wait()
}

func TestPointWokenBeforeSelect(t *testing.T) {
	a := NewAdmission(Options{MaxConcurrent: 1, MaxQueue: 8})
	g := mustAcquire(t, a, ClassSelect, 0)

	order := make(chan Class, 2)
	var wg sync.WaitGroup
	enqueue := func(class Class) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gq, err := a.Acquire(context.Background(), class, 0)
			if err != nil {
				t.Errorf("Acquire(%s): %v", class, err)
				return
			}
			order <- class
			gq.Release()
		}()
		deadline := time.Now().Add(time.Second)
		want := a.Stats().Queued + 1
		for a.Stats().Queued < want && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	enqueue(ClassSelect) // queued first...
	enqueue(ClassPoint)  // ...but the point must be woken first
	g.Release()
	wg.Wait()
	if first := <-order; first != ClassPoint {
		t.Fatalf("first woken = %s, want point", first)
	}
}

func TestBytesWatermark(t *testing.T) {
	a := NewAdmission(Options{MaxConcurrent: 8, MaxQueue: 4, MaxBytesInFlight: 100})
	g1 := mustAcquire(t, a, ClassSelect, 80)
	// Over the watermark with work in flight: queue (cancel to observe).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.Acquire(ctx, ClassSelect, 50); !errors.Is(err, context.Canceled) {
		t.Fatalf("over-watermark acquire: got %v, want Canceled (queued)", err)
	}
	g1.Release()
	// An idle engine always admits, even a query bigger than the watermark:
	// one huge query must never deadlock the gate.
	gBig := mustAcquire(t, a, ClassSelect, 1<<30)
	gBig.Release()
	if s := a.Stats(); s.BytesInFlight != 0 {
		t.Fatalf("BytesInFlight = %d, want 0", s.BytesInFlight)
	}
}

func TestGrantReleaseIdempotent(t *testing.T) {
	a := NewAdmission(Options{MaxConcurrent: 1})
	g := mustAcquire(t, a, ClassPoint, 10)
	g.Release()
	g.Release()
	if s := a.Stats(); s.Running != 0 || s.BytesInFlight != 0 {
		t.Fatalf("double release corrupted stats: %+v", s)
	}
}

func TestCancelWhileQueuedLeavesNoResidue(t *testing.T) {
	a := NewAdmission(Options{MaxConcurrent: 1, MaxQueue: 8})
	g := mustAcquire(t, a, ClassSelect, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx, ClassSelect, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued wait past deadline: got %v", err)
	}
	if q := a.Stats().Queued; q != 0 {
		t.Fatalf("Queued after cancelled wait = %d, want 0", q)
	}
	g.Release()
	if s := a.Stats(); s.Running != 0 {
		t.Fatalf("Running = %d, want 0", s.Running)
	}
}

// TestAcquireReleaseStorm hammers the controller from many goroutines under
// the race detector.
func TestAcquireReleaseStorm(t *testing.T) {
	a := NewAdmission(Options{MaxConcurrent: 4, MaxQueue: 16, MaxBytesInFlight: 1 << 20})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			class := Class(i % int(numClasses))
			for j := 0; j < 50; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				g, err := a.Acquire(ctx, class, int64(i*100))
				if err == nil {
					g.Release()
				} else if !errors.Is(err, ErrShed) && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
					t.Errorf("unexpected acquire error: %v", err)
				}
				cancel()
			}
		}(i)
	}
	wg.Wait()
	if s := a.Stats(); s.Running != 0 || s.Queued != 0 || s.BytesInFlight != 0 {
		t.Fatalf("storm left residue: %+v", s)
	}
}
