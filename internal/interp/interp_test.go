package interp

import (
	"sort"
	"testing"
	"testing/quick"

	"cssidx/internal/workload"
)

func refLowerBound(a []uint32, key uint32) int {
	return sort.Search(len(a), func(i int) bool { return a[i] >= key })
}

func TestSearchBasic(t *testing.T) {
	a := []uint32{2, 4, 4, 4, 9, 11, 30}
	cases := []struct {
		key  uint32
		want int
	}{
		{2, 0}, {4, 1}, {9, 4}, {11, 5}, {30, 6},
		{1, -1}, {3, -1}, {10, -1}, {31, -1},
	}
	for _, c := range cases {
		if got := Search(a, c.key); got != c.want {
			t.Errorf("Search(%d)=%d, want %d", c.key, got, c.want)
		}
	}
}

func TestEmptyAndTiny(t *testing.T) {
	if got := Search(nil, 1); got != -1 {
		t.Errorf("empty: %d", got)
	}
	if got := LowerBound(nil, 1); got != 0 {
		t.Errorf("empty LowerBound: %d", got)
	}
	if got := Search([]uint32{3}, 3); got != 0 {
		t.Errorf("single: %d", got)
	}
	if got := Search([]uint32{3}, 4); got != -1 {
		t.Errorf("single miss: %d", got)
	}
}

func TestLowerBoundMatchesReferenceLinear(t *testing.T) {
	g := workload.New(20)
	a := g.SortedLinear(20000)
	probes := append(g.Lookups(a, 3000), g.Misses(a, 3000)...)
	for _, key := range probes {
		if got, want := LowerBound(a, key), refLowerBound(a, key); got != want {
			t.Fatalf("LowerBound(%d)=%d, want %d", key, got, want)
		}
	}
}

func TestLowerBoundMatchesReferenceSkewed(t *testing.T) {
	g := workload.New(21)
	a := g.SortedSkewed(20000)
	probes := append(g.Lookups(a, 3000), g.Misses(a, 3000)...)
	for _, key := range probes {
		if got, want := LowerBound(a, key), refLowerBound(a, key); got != want {
			t.Fatalf("LowerBound(%d)=%d, want %d", key, got, want)
		}
	}
}

func TestLowerBoundMatchesReferenceUniform(t *testing.T) {
	g := workload.New(22)
	a := g.SortedDistinct(20000)
	probes := append(g.Lookups(a, 3000), g.Misses(a, 3000)...)
	for _, key := range probes {
		if got, want := LowerBound(a, key), refLowerBound(a, key); got != want {
			t.Fatalf("LowerBound(%d)=%d, want %d", key, got, want)
		}
	}
}

func TestLowerBoundQuick(t *testing.T) {
	f := func(raw []uint16, key uint16) bool {
		a := make([]uint32, len(raw))
		for i, v := range raw {
			a[i] = uint32(v)
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		return LowerBound(a, uint32(key)) == refLowerBound(a, uint32(key))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestEqualRangeDuplicates(t *testing.T) {
	g := workload.New(23)
	a := g.SortedWithDuplicates(5000, 5)
	for _, key := range g.Lookups(a, 500) {
		first, last := EqualRange(a, key)
		if first >= last {
			t.Fatalf("EqualRange(%d) empty for present key", key)
		}
		if a[first] != key || a[last-1] != key {
			t.Fatalf("EqualRange(%d)=[%d,%d) wrong values", key, first, last)
		}
		if first > 0 && a[first-1] == key {
			t.Fatalf("EqualRange(%d) not leftmost", key)
		}
		if last < len(a) && a[last] == key {
			t.Fatalf("EqualRange(%d) not rightmost", key)
		}
	}
}

func TestAllEqualArray(t *testing.T) {
	a := make([]uint32, 100)
	for i := range a {
		a[i] = 7
	}
	if got := Search(a, 7); got != 0 {
		t.Errorf("all-equal leftmost = %d", got)
	}
	if got := Search(a, 6); got != -1 {
		t.Errorf("miss below = %d", got)
	}
	if got := Search(a, 8); got != -1 {
		t.Errorf("miss above = %d", got)
	}
}

func TestProbeCountLinearVsSkewed(t *testing.T) {
	// The paper's qualitative claim: interpolation converges very fast on
	// linear data, much slower on skewed data.
	g := workload.New(24)
	lin := g.SortedLinear(200000)
	skw := g.SortedSkewed(200000)

	avg := func(a []uint32, probes []uint32) float64 {
		total := 0
		for _, k := range probes {
			total += ProbeCount(a, k)
		}
		return float64(total) / float64(len(probes))
	}
	linAvg := avg(lin, g.Lookups(lin, 2000))
	skwAvg := avg(skw, g.Lookups(skw, 2000))
	if linAvg >= skwAvg {
		t.Errorf("expected linear data to need fewer probes: linear=%.2f skewed=%.2f", linAvg, skwAvg)
	}
	// log2(200000) ≈ 17.6; linear interpolation should be far below that.
	if linAvg > 10 {
		t.Errorf("interpolation on linear data too slow: %.2f probes", linAvg)
	}
}

func TestAdversarialTermination(t *testing.T) {
	// Extremely skewed: one huge outlier forces near-zero interpolation
	// steps; the maxProbes fallback must keep lookups fast and correct.
	a := make([]uint32, 100000)
	for i := range a {
		a[i] = uint32(i)
	}
	a[len(a)-1] = ^uint32(0)
	for _, key := range []uint32{0, 1, 50000, 99998, ^uint32(0), ^uint32(0) - 5} {
		got := LowerBound(a, key)
		want := refLowerBound(a, key)
		if got != want {
			t.Errorf("LowerBound(%d)=%d, want %d", key, got, want)
		}
	}
}
