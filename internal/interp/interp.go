// Package interp implements interpolation search over a sorted array of
// 4-byte keys.
//
// The paper's finding (§1, §6.3): interpolation search "performs well only
// for data sets that behave linearly. It doesn't perform very well on random
// data and performs even worse on non-uniform data" — each probe is cheap on
// locality only when the position estimate is accurate; on skewed data the
// estimates are wildly off and the search degrades past binary search.
// Like binary search it needs no space beyond the array.
package interp

// maxProbes bounds the interpolation phase before falling back to binary
// halving, so adversarially skewed data cannot make a lookup linear-time.
const maxProbes = 64

// seqScanMax mirrors the paper's §6.2 specialisation: below this range size
// a sequential scan wins.
const seqScanMax = 5

// Search returns the index of the leftmost occurrence of key in the sorted
// slice a, or -1 if absent.
func Search(a []uint32, key uint32) int {
	i := LowerBound(a, key)
	if i < len(a) && a[i] == key {
		return i
	}
	return -1
}

// LowerBound returns the smallest index i with a[i] >= key, or len(a).
// It interpolates the probe position from the key distribution across the
// current range, narrowing to [lo,hi] where a[lo] ≤ key ≤ a[hi].
func LowerBound(a []uint32, key uint32) int {
	n := len(a)
	if n == 0 {
		return 0
	}
	if key <= a[0] {
		return 0
	}
	if key > a[n-1] {
		return n
	}
	lo, hi := 0, n-1
	// Invariant: a[lo] < key (strictly; duplicates of key lie right of lo)
	// and key <= a[hi].
	for probes := 0; hi-lo > seqScanMax; probes++ {
		var mid int
		if probes < maxProbes {
			span := uint64(a[hi]) - uint64(a[lo])
			if span == 0 {
				break
			}
			frac := uint64(key) - uint64(a[lo])
			mid = lo + int(frac*uint64(hi-lo)/span)
			// Clamp inside the open interval so progress is guaranteed.
			if mid <= lo {
				mid = lo + 1
			} else if mid >= hi {
				mid = hi - 1
			}
		} else {
			mid = int(uint(lo+hi) >> 1)
		}
		if a[mid] < key {
			lo = mid
		} else {
			hi = mid
		}
	}
	for i := lo; i <= hi; i++ {
		if a[i] >= key {
			return i
		}
	}
	return hi + 1
}

// EqualRange returns the half-open range [first,last) of entries equal to
// key (duplicate handling per §3.6).
func EqualRange(a []uint32, key uint32) (first, last int) {
	first = LowerBound(a, key)
	last = first
	for last < len(a) && a[last] == key {
		last++
	}
	return first, last
}

// ProbeCount returns the number of position probes LowerBound makes for key —
// exposed for the experiments that show interpolation degrading on skewed
// data while binary search stays at log₂ n.
func ProbeCount(a []uint32, key uint32) int {
	n := len(a)
	if n == 0 || key <= a[0] || key > a[n-1] {
		return 1
	}
	lo, hi := 0, n-1
	count := 0
	for probes := 0; hi-lo > seqScanMax; probes++ {
		count++
		var mid int
		if probes < maxProbes {
			span := uint64(a[hi]) - uint64(a[lo])
			if span == 0 {
				break
			}
			frac := uint64(key) - uint64(a[lo])
			mid = lo + int(frac*uint64(hi-lo)/span)
			if mid <= lo {
				mid = lo + 1
			} else if mid >= hi {
				mid = hi - 1
			}
		} else {
			mid = int(uint(lo+hi) >> 1)
		}
		if a[mid] < key {
			lo = mid
		} else {
			hi = mid
		}
	}
	return count + (hi - lo)
}
