package shard

// Batched probing across shards.  A probe batch is partitioned by the shard
// boundaries, each shard's group descends its tree with the lockstep batch
// kernel (when the tree provides one), and results scatter back to input
// order with the shard's global offset applied.  The whole batch runs against
// ONE frozen View — a single snapshot epoch per shard — so a batch never
// mixes answers from different epochs even while rebuilds are publishing.
//
// The optional key-ordered schedule sorts the batch by probe key before the
// descent (results still scatter back to input order) and deduplicates it:
// repeated probes descend once and fan their result out.  Because shards are
// key ranges, sorting also groups probes by shard for free, and inside a
// shard consecutive probes then walk neighbouring root-to-leaf paths: a
// skewed batch touches each directory node once instead of bouncing randomly
// across the directory — random access turned near-sequential, the probe
// scheduling payoff of the skew literature.  uint32 batches sort with the
// radix pair-sort of internal/sortu32; other key types fall back to a
// comparison sort.

import (
	"cmp"
	"slices"
	"sort"

	"cssidx/internal/sortu32"
)

// BatchTree is the optional batch extension of Tree: shard trees that
// implement it (the uint32 CSS-trees, the generic CSS-tree) answer a whole
// probe group with one lockstep descent.
type BatchTree[K cmp.Ordered] interface {
	Tree[K]
	LowerBoundBatch(probes []K, out []int32)
}

// batchRun is a maximal run of grouped probes landing in one shard:
// gathered[lo:hi] all route to shard sid.
type batchRun struct {
	sid    int
	lo, hi int
}

// batchPlan partitions a probe batch by shard: the descent probes
// gathered[r.lo:r.hi] per run r, and position j of gathered answers the
// original probe perm[j] (expand == nil), or — in the key-ordered schedule,
// where gathered is sorted and deduplicated — original probe perm[j] takes
// gathered's answer at expand[j].
func (v *View[K]) batchPlan(probes []K, keyOrdered bool) (perm []int32, gathered []K, runs []batchRun, expand []int32) {
	n := len(probes)
	switch {
	case keyOrdered:
		perm, gathered = sortByKey(probes)
		// Dedup in place: repeated probes descend once, expand[j] maps each
		// sorted position to its unique slot.
		expand = make([]int32, n)
		uq := 0
		for j := 0; j < n; j++ {
			if uq > 0 && gathered[j] == gathered[uq-1] {
				expand[j] = int32(uq - 1)
				continue
			}
			gathered[uq] = gathered[j]
			expand[j] = int32(uq)
			uq++
		}
		gathered = gathered[:uq]
		// gathered is sorted, so shard runs end at each boundary's lower bound.
		for lo := 0; lo < uq; {
			sid := v.shardFor(gathered[lo])
			hi := uq
			if sid < len(v.bounds) {
				b := v.bounds[sid]
				hi = lo + sort.Search(uq-lo, func(j int) bool { return gathered[lo+j] >= b })
			}
			runs = append(runs, batchRun{sid: sid, lo: lo, hi: hi})
			lo = hi
		}
	case len(v.snaps) > 1:
		// Counting sort by shard keeps the within-shard probe order stable;
		// the prefix sums are the run boundaries.
		perm = make([]int32, n)
		sids := make([]int32, n)
		counts := make([]int32, len(v.snaps)+1)
		for i, p := range probes {
			s := int32(v.shardFor(p))
			sids[i] = s
			counts[s+1]++
		}
		for s := 1; s < len(counts); s++ {
			counts[s] += counts[s-1]
		}
		next := slices.Clone(counts)
		for i := range probes {
			s := sids[i]
			perm[next[s]] = int32(i)
			next[s]++
		}
		gathered = make([]K, n)
		for j, pi := range perm {
			gathered[j] = probes[pi]
		}
		for s := 0; s < len(v.snaps); s++ {
			if counts[s] < counts[s+1] {
				runs = append(runs, batchRun{sid: s, lo: int(counts[s]), hi: int(counts[s+1])})
			}
		}
	default:
		// One shard: the batch is one run in input order.
		perm = make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		gathered = probes
		if n > 0 {
			runs = []batchRun{{sid: 0, lo: 0, hi: n}}
		}
	}
	return perm, gathered, runs, expand
}

// sortByKey returns the key-sorted copy of probes and the permutation mapping
// sorted position j to its original index: radix pair-sort for uint32, a
// comparison sort for other key types.
func sortByKey[K cmp.Ordered](probes []K) (perm []int32, gathered []K) {
	n := len(probes)
	perm = make([]int32, n)
	if u, ok := any(probes).([]uint32); ok {
		gu := make([]uint32, n)
		pu := make([]uint32, n)
		copy(gu, u)
		for i := range pu {
			pu[i] = uint32(i)
		}
		sortu32.SortPairs(gu, pu)
		for i, p := range pu {
			perm[i] = int32(p)
		}
		gathered, _ = any(gu).([]K)
		return perm, gathered
	}
	for i := range perm {
		perm[i] = int32(i)
	}
	slices.SortFunc(perm, func(a, b int32) int { return cmp.Compare(probes[a], probes[b]) })
	gathered = make([]K, n)
	for j, pi := range perm {
		gathered[j] = probes[pi]
	}
	return perm, gathered
}

// treeLowerBoundBatch descends one shard's probe group: lockstep when the
// tree has the batch kernel, scalar per probe otherwise.
func treeLowerBoundBatch[K cmp.Ordered](t Tree[K], probes []K, out []int32) {
	if bt, ok := t.(BatchTree[K]); ok {
		bt.LowerBoundBatch(probes, out)
		return
	}
	for i, p := range probes {
		out[i] = int32(t.LowerBound(p))
	}
}

// scatter writes the per-gathered-position results back to input order.
func scatter(out, res, perm, expand []int32) {
	if expand == nil {
		for j, pi := range perm {
			out[pi] = res[j]
		}
		return
	}
	for j, pi := range perm {
		out[pi] = res[expand[j]]
	}
}

// LowerBoundBatch stores the global LowerBound of every probe into out
// (len(out) must equal len(probes)).  keyOrdered selects the sort-probes-
// first schedule; results are identical either way and bit-identical to the
// scalar LowerBound against this view.
func (v *View[K]) LowerBoundBatch(probes []K, out []int32, keyOrdered bool) {
	if len(out) != len(probes) {
		panic("shard: probes/out length mismatch")
	}
	if len(v.snaps) == 1 && !keyOrdered {
		// Single shard, input order: descend straight into out (offset 0).
		treeLowerBoundBatch(v.snaps[0].tree, probes, out)
		return
	}
	perm, gathered, runs, expand := v.batchPlan(probes, keyOrdered)
	res := make([]int32, len(gathered))
	for _, r := range runs {
		treeLowerBoundBatch(v.snaps[r.sid].tree, gathered[r.lo:r.hi], res[r.lo:r.hi])
		off := int32(v.offs[r.sid])
		for j := r.lo; j < r.hi; j++ {
			res[j] += off
		}
	}
	scatter(out, res, perm, expand)
}

// SearchBatch stores the global Search of every probe into out: the position
// of the leftmost occurrence, or -1 if absent.
func (v *View[K]) SearchBatch(probes []K, out []int32, keyOrdered bool) {
	if len(out) != len(probes) {
		panic("shard: probes/out length mismatch")
	}
	if len(v.snaps) == 1 && !keyOrdered {
		snap := v.snaps[0]
		treeLowerBoundBatch(snap.tree, probes, out)
		n := int32(len(snap.keys))
		for i, p := range probes {
			if lb := out[i]; lb >= n || snap.keys[lb] != p {
				out[i] = -1
			}
		}
		return
	}
	perm, gathered, runs, expand := v.batchPlan(probes, keyOrdered)
	res := make([]int32, len(gathered))
	for _, r := range runs {
		snap := v.snaps[r.sid]
		treeLowerBoundBatch(snap.tree, gathered[r.lo:r.hi], res[r.lo:r.hi])
		off := int32(v.offs[r.sid])
		n := int32(len(snap.keys))
		for j := r.lo; j < r.hi; j++ {
			if lb := res[j]; lb < n && snap.keys[lb] == gathered[j] {
				res[j] = off + lb
			} else {
				res[j] = -1
			}
		}
	}
	scatter(out, res, perm, expand)
}

// EqualRangeBatch stores the global EqualRange of every probe into
// (first[i], last[i]); all three slices must have equal length.  Duplicates
// of a key never straddle shards, so each range is exact.
func (v *View[K]) EqualRangeBatch(probes []K, first, last []int32, keyOrdered bool) {
	if len(first) != len(probes) || len(last) != len(probes) {
		panic("shard: probes/first/last length mismatch")
	}
	if len(v.snaps) == 1 && !keyOrdered {
		snap := v.snaps[0]
		treeLowerBoundBatch(snap.tree, probes, first)
		n := int32(len(snap.keys))
		for i, p := range probes {
			end := first[i]
			for end < n && snap.keys[end] == p {
				end++
			}
			last[i] = end
		}
		return
	}
	perm, gathered, runs, expand := v.batchPlan(probes, keyOrdered)
	resF := make([]int32, len(gathered))
	resL := make([]int32, len(gathered))
	for _, r := range runs {
		snap := v.snaps[r.sid]
		treeLowerBoundBatch(snap.tree, gathered[r.lo:r.hi], resF[r.lo:r.hi])
		off := int32(v.offs[r.sid])
		n := int32(len(snap.keys))
		for j := r.lo; j < r.hi; j++ {
			lb := resF[j]
			end := lb
			for end < n && snap.keys[end] == gathered[j] {
				end++
			}
			resF[j] = off + lb
			resL[j] = off + end
		}
	}
	scatter(first, resF, perm, expand)
	scatter(last, resL, perm, expand)
}

// SetBatchKeyOrder selects the sort-probes-first schedule for the Index-level
// batch methods (View-level calls take the schedule explicitly).  Set it
// before serving; it is not synchronised with concurrent readers.
func (x *Index[K]) SetBatchKeyOrder(on bool) { x.batchKeyOrder = on }

// LowerBoundBatch answers the whole batch against one frozen View, so every
// result reflects a single snapshot epoch per shard.
func (x *Index[K]) LowerBoundBatch(probes []K, out []int32) {
	x.View().LowerBoundBatch(probes, out, x.batchKeyOrder)
}

// SearchBatch answers the whole batch against one frozen View.
func (x *Index[K]) SearchBatch(probes []K, out []int32) {
	x.View().SearchBatch(probes, out, x.batchKeyOrder)
}

// EqualRangeBatch answers the whole batch against one frozen View.
func (x *Index[K]) EqualRangeBatch(probes []K, first, last []int32) {
	x.View().EqualRangeBatch(probes, first, last, x.batchKeyOrder)
}
