package shard

// Batched probing across shards.  A probe batch is partitioned by the shard
// boundaries, each shard's group descends its tree with the lockstep batch
// kernel (when the tree provides one), and results scatter back to input
// order with the shard's global offset applied.  The whole batch runs against
// ONE frozen View — a single snapshot epoch per shard — so a batch never
// mixes answers from different epochs even while rebuilds are publishing.
//
// Two execution dimensions sit on top of the partitioning:
//
// Schedule.  The key-ordered schedule sorts the batch by probe key before
// the descent (results still scatter back to input order) and deduplicates
// it: repeated probes descend once and fan their result out.  Because shards
// are key ranges, sorting also groups probes by shard for free, and inside a
// shard consecutive probes then walk neighbouring root-to-leaf paths: a
// skewed batch touches each directory node once instead of bouncing randomly
// across the directory.  ScheduleAuto picks input-order or key-ordered per
// batch from a sampled duplicate-density estimate — skew is a property of
// the probe stream, not of the index, so the batch itself is the right thing
// to inspect.  uint32 batches sort with the PARALLEL MSB-radix partition of
// internal/sortu32 (per-worker histogram + stable scatter + independent
// bucket sorts across the same pool the descent uses), so large skewed
// batches no longer pay a serial sort before the fan-out; other key types
// fall back to a comparison sort.
//
// Parallelism.  The per-shard probe runs are independent — disjoint probe
// spans, disjoint result spans, immutable snapshots — so they execute across
// the worker pool of internal/parallel, with large runs split into sub-spans
// so a single hot shard cannot serialise the batch.  All batch buffers come
// from a per-index sync.Pool (batchScratch), so steady-state batches
// allocate nothing but the worker goroutines.

import (
	"cmp"
	"slices"
	"sort"
	"time"

	"cssidx/internal/parallel"
	"cssidx/internal/sortu32"
)

// Schedule selects how a probe batch is ordered before the descent.
type Schedule uint8

const (
	// ScheduleAuto estimates each batch's duplicate density from a small
	// sample and picks ScheduleInput or ScheduleKeyOrdered per batch.
	ScheduleAuto Schedule = iota
	// ScheduleInput descends probes in input order (best for uniform,
	// low-duplicate streams: no sort cost, misses already overlap).
	ScheduleInput
	// ScheduleKeyOrdered radix-sorts and deduplicates each batch first
	// (best for skewed streams: hot keys descend once).
	ScheduleKeyOrdered
)

// String names the schedule for diagnostics and bench output.
func (s Schedule) String() string {
	switch s {
	case ScheduleAuto:
		return "auto"
	case ScheduleInput:
		return "input-order"
	case ScheduleKeyOrdered:
		return "key-ordered"
	default:
		return "Schedule(?)"
	}
}

// Adaptive-schedule sampling parameters: sampleSize probes are inspected per
// batch (strided across it); the key-ordered schedule is chosen when the
// sample holds at least dupThreshold duplicated values.  Batches below
// adaptiveMinBatch always run input-order — the sort cannot amortise.
const (
	adaptiveMinBatch = 128
	sampleSize       = 64
	dupThreshold     = 4 // ≥4/64 ≈ 6% sampled duplicates → sort pays
)

// chooseKeyOrder resolves a Schedule against a concrete batch.
func chooseKeyOrder[K cmp.Ordered](sched Schedule, probes []K) bool {
	switch sched {
	case ScheduleInput:
		return false
	case ScheduleKeyOrdered:
		return true
	}
	n := len(probes)
	if n < adaptiveMinBatch {
		return false
	}
	// Strided sample, insertion-sorted in a fixed buffer: no allocation,
	// ~sampleSize² ⁄ 4 comparisons — trivial next to n tree descents.
	var buf [sampleSize]K
	stride := n / sampleSize
	for i := 0; i < sampleSize; i++ {
		v := probes[i*stride]
		j := i
		for j > 0 && buf[j-1] > v {
			buf[j] = buf[j-1]
			j--
		}
		buf[j] = v
	}
	dups := 0
	for i := 1; i < sampleSize; i++ {
		if buf[i] == buf[i-1] {
			dups++
		}
	}
	return dups >= dupThreshold
}

// ResolveSchedule reports the concrete schedule a batch of these probes
// descends under: ScheduleAuto resolves per batch through the sampled
// duplicate-density estimate (exactly the decision the batch methods make),
// the manual schedules resolve to themselves.  Callers use it to surface
// the schedule that actually ran — timings tagged with the REQUESTED
// schedule mislead as soon as auto picks differently per batch.
func ResolveSchedule[K cmp.Ordered](s Schedule, probes []K) Schedule {
	if chooseKeyOrder(s, probes) {
		return ScheduleKeyOrdered
	}
	return ScheduleInput
}

// BatchTree is the optional batch extension of Tree: shard trees that
// implement it (the uint32 CSS-trees, the generic CSS-tree) answer a whole
// probe group with one lockstep descent.
type BatchTree[K cmp.Ordered] interface {
	Tree[K]
	LowerBoundBatch(probes []K, out []int32)
}

// batchRun is a maximal run of grouped probes landing in one shard:
// gathered[lo:hi] all route to shard sid.
type batchRun struct {
	sid    int
	lo, hi int
}

// batchScratch holds every buffer one batch execution needs; instances are
// pooled per Index so steady-state batches allocate nothing.
type batchScratch[K cmp.Ordered] struct {
	perm     []int32
	gathered []K
	expand   []int32
	res      []int32
	resL     []int32
	sids     []int32
	counts   []int32
	next     []int32
	tmpK     []uint32 // radix pair-sort scratch (uint32 keys only)
	tmpV     []uint32
	pu       []uint32 // radix pair-sort payload (uint32 keys only)
	hist     []int32  // parallel-partition histogram scratch (uint32 keys only)
	runs     []batchRun
	tasks    []batchRun
}

// grow sizes the scratch for a batch of n probes over nshards shards.
func (s *batchScratch[K]) grow(n, nshards int) {
	if cap(s.perm) < n {
		s.perm = make([]int32, n)
		s.gathered = make([]K, n)
		s.expand = make([]int32, n)
		s.res = make([]int32, n)
		s.resL = make([]int32, n)
		s.sids = make([]int32, n)
	}
	if cap(s.counts) < nshards+1 {
		s.counts = make([]int32, nshards+1)
		s.next = make([]int32, nshards+1)
	}
	s.counts = s.counts[:nshards+1]
	s.next = s.next[:nshards+1]
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.runs = s.runs[:0]
	s.tasks = s.tasks[:0]
}

// scratchFor draws a scratch from the view's pool (allocating the first
// time) and sizes it; release returns it.
func (v *View[K]) scratchFor(n int) *batchScratch[K] {
	var s *batchScratch[K]
	if v.pool != nil {
		s, _ = v.pool.Get().(*batchScratch[K])
	}
	if s == nil {
		s = &batchScratch[K]{}
	}
	s.grow(n, len(v.snaps))
	return s
}

func (v *View[K]) release(s *batchScratch[K]) {
	if v.pool != nil {
		v.pool.Put(s)
	}
}

// batchPlan partitions a probe batch by shard: the descent probes
// gathered[r.lo:r.hi] per run r, and position j of gathered answers the
// original probe perm[j] (expand == nil), or — in the key-ordered schedule,
// where gathered is sorted and deduplicated — original probe perm[j] takes
// gathered's answer at expand[j].  All returned slices alias s.
func (v *View[K]) batchPlan(probes []K, keyOrdered bool, s *batchScratch[K]) (perm []int32, gathered []K, runs []batchRun, expand []int32) {
	n := len(probes)
	switch {
	case keyOrdered:
		perm, gathered = v.sortByKey(probes, s)
		// Dedup in place: repeated probes descend once, expand[j] maps each
		// sorted position to its unique slot.
		expand = s.expand[:n]
		uq := 0
		for j := 0; j < n; j++ {
			if uq > 0 && gathered[j] == gathered[uq-1] {
				expand[j] = int32(uq - 1)
				continue
			}
			gathered[uq] = gathered[j]
			expand[j] = int32(uq)
			uq++
		}
		gathered = gathered[:uq]
		// gathered is sorted, so shard runs end at each boundary's lower bound.
		for lo := 0; lo < uq; {
			sid := v.shardFor(gathered[lo])
			hi := uq
			if sid < len(v.bounds) {
				b := v.bounds[sid]
				hi = lo + sort.Search(uq-lo, func(j int) bool { return gathered[lo+j] >= b })
			}
			s.runs = append(s.runs, batchRun{sid: sid, lo: lo, hi: hi})
			lo = hi
		}
	case len(v.snaps) > 1:
		// Counting sort by shard keeps the within-shard probe order stable;
		// the prefix sums are the run boundaries.
		perm = s.perm[:n]
		sids := s.sids[:n]
		counts := s.counts
		for i, p := range probes {
			sh := int32(v.shardFor(p))
			sids[i] = sh
			counts[sh+1]++
		}
		for sh := 1; sh < len(counts); sh++ {
			counts[sh] += counts[sh-1]
		}
		next := s.next
		copy(next, counts)
		for i := range probes {
			sh := sids[i]
			perm[next[sh]] = int32(i)
			next[sh]++
		}
		gathered = s.gathered[:n]
		for j, pi := range perm {
			gathered[j] = probes[pi]
		}
		for sh := 0; sh < len(v.snaps); sh++ {
			if counts[sh] < counts[sh+1] {
				s.runs = append(s.runs, batchRun{sid: sh, lo: int(counts[sh]), hi: int(counts[sh+1])})
			}
		}
	default:
		// One shard: the batch is one run in input order.
		perm = s.perm[:n]
		for i := range perm {
			perm[i] = int32(i)
		}
		gathered = probes
		if n > 0 {
			s.runs = append(s.runs, batchRun{sid: 0, lo: 0, hi: n})
		}
	}
	return perm, gathered, s.runs, expand
}

// sortByKey fills s.gathered with the key-sorted probes and s.perm with the
// permutation mapping sorted position j to its original index.  uint32 keys
// take the parallel MSB-radix partition of internal/sortu32 — the sort used
// to run whole on the calling goroutine, the key-ordered schedule's last
// serial fraction on skewed 1M+ batches; now it histogram/scatter/buckets
// across the view's worker pool.  Other key types fall back to a
// comparison sort.
func (v *View[K]) sortByKey(probes []K, s *batchScratch[K]) (perm []int32, gathered []K) {
	n := len(probes)
	perm = s.perm[:n]
	gathered = s.gathered[:n]
	if gu, ok := any(gathered).([]uint32); ok {
		u, _ := any(probes).([]uint32)
		copy(gu, u)
		if cap(s.tmpK) < n {
			s.tmpK = make([]uint32, n)
			s.tmpV = make([]uint32, n)
			s.pu = make([]uint32, n)
		}
		// The tuner is stripped for the same reason scatter strips it: a
		// sort item costs nothing like a probe, so the partition must not
		// inherit the probe-derived span (nor calibrate the tuner).
		sortOpts := v.par.WithoutTuner()
		if need := sortu32.HistLen(n, sortOpts); cap(s.hist) < need {
			s.hist = make([]int32, need)
		}
		pu := s.pu[:n]
		for i := range pu {
			pu[i] = uint32(i)
		}
		sortu32.SortPairsParallel(gu, pu, s.tmpK[:n], s.tmpV[:n], s.hist, sortOpts)
		for i, p := range pu {
			perm[i] = int32(p)
		}
		return perm, gathered
	}
	for i := range perm {
		perm[i] = int32(i)
	}
	slices.SortFunc(perm, func(a, b int32) int { return cmp.Compare(probes[a], probes[b]) })
	for j, pi := range perm {
		gathered[j] = probes[pi]
	}
	return perm, gathered
}

// treeLowerBoundBatch descends one shard's probe group: lockstep when the
// tree has the batch kernel, scalar per probe otherwise.
func treeLowerBoundBatch[K cmp.Ordered](t Tree[K], probes []K, out []int32) {
	if bt, ok := t.(BatchTree[K]); ok {
		bt.LowerBoundBatch(probes, out)
		return
	}
	for i, p := range probes {
		out[i] = int32(t.LowerBound(p))
	}
}

// addRunLowerBounds adds each delta run's lower-bound count per probe to
// the tree results, making them merged ranks.  A no-op without runs, so
// delta-free batches pay nothing; with runs the per-probe cost is a fence
// check or an O(log run) search per run.
func addRunLowerBounds[K cmp.Ordered](sn *snapshot[K], probes []K, res []int32) {
	for _, r := range sn.runs {
		for j, p := range probes {
			res[j] += int32(r.lowerBound(p))
		}
	}
}

// observeTuner notes one batch against the view's tuner so a calibration
// that predates significant index growth is re-measured (parallel.Observe).
func (v *View[K]) observeTuner() {
	if t := v.par.Tuner; t != nil {
		t.Observe(v.Len())
	}
}

// forRuns executes body over every run, splitting runs larger than span into
// sub-runs so one hot shard cannot serialise the batch, and distributing the
// resulting tasks across the worker pool.  body instances touch disjoint
// gathered/result spans, so they run concurrently without synchronisation.
//
// When the index's span tuner has not calibrated yet (a multi-shard index
// never hits the flat single-shard path that parallel.Run calibrates), the
// first large enough run executes on the calling goroutine, timed, and
// seeds the tuner — real work, not a rehearsal; the rest of the batch fans
// out under the derived MinBatchPerWorker.
func (v *View[K]) forRuns(runs []batchRun, total int, s *batchScratch[K], body func(r batchRun)) {
	opts := v.par
	if o, calibrate := opts.Resolved(); !calibrate {
		opts = o
	} else if len(runs) > 0 && runs[0].hi-runs[0].lo >= calibMinRun {
		// Time a BOUNDED prefix of the first run, not the whole run: a
		// skewed batch can put most of a 1M-probe batch in one shard, and
		// the calibration must not serialise it.
		r := runs[0]
		end := r.lo + calibMaxRun
		if end > r.hi {
			end = r.hi
		}
		start := time.Now()
		body(batchRun{sid: r.sid, lo: r.lo, hi: end})
		opts.Tuner.Note(end-r.lo, time.Since(start))
		opts, _ = opts.Resolved()
		if end == r.hi {
			runs = runs[1:]
		} else {
			runs[0].lo = end
		}
		total -= end - r.lo
	}
	w := opts.WorkersFor(total)
	if w == 1 {
		for _, r := range runs {
			body(r)
		}
		return
	}
	// Sub-span size: enough tasks for balance (~2 per worker) but never so
	// small that the lockstep kernel loses its group.
	span := (total + 2*w - 1) / (2 * w)
	if span < 256 {
		span = 256
	}
	tasks := s.tasks[:0]
	for _, r := range runs {
		for lo := r.lo; lo < r.hi; lo += span {
			hi := lo + span
			if hi > r.hi {
				hi = r.hi
			}
			tasks = append(tasks, batchRun{sid: r.sid, lo: lo, hi: hi})
		}
	}
	s.tasks = tasks
	parallel.Do(len(tasks), total, opts, func(t int) { body(tasks[t]) })
}

// calibMinRun is the smallest per-shard run worth timing for calibration
// (below it the timer reads mostly fixed batch overhead, not probe cost);
// calibMaxRun bounds the timed prefix so calibration never serialises a
// large run (it matches parallel.Run's calibration span).
const (
	calibMinRun = 1024
	calibMaxRun = 4096
)

// scatter writes the per-gathered-position results back to input order,
// across workers for large batches (every write lands at a distinct
// out[perm[j]], so spans of j are race-free).  The tuner is stripped: a
// scatter item costs nothing like a probe, so it must neither calibrate
// the tuner nor inherit the probe-derived span.
func (v *View[K]) scatter(out, res, perm, expand []int32) {
	parallel.Run(len(perm), v.par.WithoutTuner(), func(lo, hi int) {
		if expand == nil {
			for j := lo; j < hi; j++ {
				out[perm[j]] = res[j]
			}
			return
		}
		for j := lo; j < hi; j++ {
			out[perm[j]] = res[expand[j]]
		}
	})
}

// scatter2 is scatter for a result pair: one pass over perm/expand, one wave
// of workers, both outputs written together (the EqualRangeBatch case).
func (v *View[K]) scatter2(outA, resA, outB, resB, perm, expand []int32) {
	parallel.Run(len(perm), v.par.WithoutTuner(), func(lo, hi int) {
		if expand == nil {
			for j := lo; j < hi; j++ {
				pi := perm[j]
				outA[pi] = resA[j]
				outB[pi] = resB[j]
			}
			return
		}
		for j := lo; j < hi; j++ {
			pi, e := perm[j], expand[j]
			outA[pi] = resA[e]
			outB[pi] = resB[e]
		}
	})
}

// LowerBoundBatch stores the global LowerBound of every probe into out
// (len(out) must equal len(probes)).  The view's schedule picks the probe
// order (Schedule semantics above); results are identical under every
// schedule and worker count, and bit-identical to the scalar LowerBound
// against this view.
func (v *View[K]) LowerBoundBatch(probes []K, out []int32) {
	if len(out) != len(probes) {
		panic("shard: probes/out length mismatch")
	}
	v.observeTuner()
	keyOrdered := chooseKeyOrder(v.sched, probes)
	if len(v.snaps) == 1 && !keyOrdered {
		// Single shard, input order: descend straight into out (offset 0),
		// splitting the batch across workers.
		noteBatchSingle(len(probes))
		snap := v.snaps[0]
		parallel.Run(len(probes), v.par, func(lo, hi int) {
			treeLowerBoundBatch(snap.tree, probes[lo:hi], out[lo:hi])
			addRunLowerBounds(snap, probes[lo:hi], out[lo:hi])
		})
		return
	}
	s := v.scratchFor(len(probes))
	defer v.release(s)
	perm, gathered, runs, expand := v.batchPlan(probes, keyOrdered, s)
	noteBatchRuns(runs)
	res := s.res[:len(gathered)]
	v.forRuns(runs, len(gathered), s, func(r batchRun) {
		snap := v.snaps[r.sid]
		treeLowerBoundBatch(snap.tree, gathered[r.lo:r.hi], res[r.lo:r.hi])
		addRunLowerBounds(snap, gathered[r.lo:r.hi], res[r.lo:r.hi])
		off := int32(v.offs[r.sid])
		for j := r.lo; j < r.hi; j++ {
			res[j] += off
		}
	})
	v.scatter(out, res, perm, expand)
}

// SearchBatch stores the global Search of every probe into out: the position
// of the leftmost occurrence, or -1 if absent.
func (v *View[K]) SearchBatch(probes []K, out []int32) {
	if len(out) != len(probes) {
		panic("shard: probes/out length mismatch")
	}
	v.observeTuner()
	keyOrdered := chooseKeyOrder(v.sched, probes)
	if len(v.snaps) == 1 && !keyOrdered {
		noteBatchSingle(len(probes))
		snap := v.snaps[0]
		parallel.Run(len(probes), v.par, func(lo, hi int) {
			treeLowerBoundBatch(snap.tree, probes[lo:hi], out[lo:hi])
			searchResolve(snap, probes[lo:hi], out[lo:hi], 0)
		})
		return
	}
	s := v.scratchFor(len(probes))
	defer v.release(s)
	perm, gathered, runs, expand := v.batchPlan(probes, keyOrdered, s)
	noteBatchRuns(runs)
	res := s.res[:len(gathered)]
	v.forRuns(runs, len(gathered), s, func(r batchRun) {
		snap := v.snaps[r.sid]
		treeLowerBoundBatch(snap.tree, gathered[r.lo:r.hi], res[r.lo:r.hi])
		searchResolve(snap, gathered[r.lo:r.hi], res[r.lo:r.hi], int32(v.offs[r.sid]))
	})
	v.scatter(out, res, perm, expand)
}

// searchResolve turns the tree lower bounds in res into global Search
// results: merged leftmost rank plus the shard offset when the key is
// present in the base or any delta run, -1 otherwise.
func searchResolve[K cmp.Ordered](sn *snapshot[K], probes []K, res []int32, off int32) {
	n := int32(len(sn.keys))
	if len(sn.runs) == 0 {
		for j, p := range probes {
			if lb := res[j]; lb < n && sn.keys[lb] == p {
				res[j] = off + lb
			} else {
				res[j] = -1
			}
		}
		return
	}
	for j, p := range probes {
		lb := res[j]
		found := lb < n && sn.keys[lb] == p
		d := int32(0)
		for _, r := range sn.runs {
			d += int32(r.lowerBound(p))
			if !found {
				found = r.contains(p)
			}
		}
		if found {
			res[j] = off + lb + d
		} else {
			res[j] = -1
		}
	}
}

// EqualRangeBatch stores the global EqualRange of every probe into
// (first[i], last[i]); all three slices must have equal length.  Duplicates
// of a key never straddle shards, so each range is exact.
func (v *View[K]) EqualRangeBatch(probes []K, first, last []int32) {
	if len(first) != len(probes) || len(last) != len(probes) {
		panic("shard: probes/first/last length mismatch")
	}
	v.observeTuner()
	keyOrdered := chooseKeyOrder(v.sched, probes)
	if len(v.snaps) == 1 && !keyOrdered {
		noteBatchSingle(len(probes))
		snap := v.snaps[0]
		parallel.Run(len(probes), v.par, func(lo, hi int) {
			treeLowerBoundBatch(snap.tree, probes[lo:hi], first[lo:hi])
			equalRangeResolve(snap, probes[lo:hi], first[lo:hi], last[lo:hi], 0)
		})
		return
	}
	s := v.scratchFor(len(probes))
	defer v.release(s)
	perm, gathered, runs, expand := v.batchPlan(probes, keyOrdered, s)
	noteBatchRuns(runs)
	resF := s.res[:len(gathered)]
	resL := s.resL[:len(gathered)]
	v.forRuns(runs, len(gathered), s, func(r batchRun) {
		snap := v.snaps[r.sid]
		treeLowerBoundBatch(snap.tree, gathered[r.lo:r.hi], resF[r.lo:r.hi])
		equalRangeResolve(snap, gathered[r.lo:r.hi], resF[r.lo:r.hi], resL[r.lo:r.hi], int32(v.offs[r.sid]))
	})
	v.scatter2(first, resF, last, resL, perm, expand)
}

// equalRangeResolve extends the tree lower bounds in resF across each
// probe's duplicate run and adds the delta runs' contributions, producing
// global merged [first, last) ranges.
func equalRangeResolve[K cmp.Ordered](sn *snapshot[K], probes []K, resF, resL []int32, off int32) {
	n := int32(len(sn.keys))
	for j, p := range probes {
		lb := resF[j]
		end := lb
		for end < n && sn.keys[end] == p {
			end++
		}
		f, l := lb, end
		for _, r := range sn.runs {
			f += int32(r.lowerBound(p))
			l += int32(r.upperBound(p))
		}
		resF[j] = off + f
		resL[j] = off + l
	}
}

// SetBatchSchedule selects the probe schedule the Index-level and captured
// View batch methods use (default ScheduleAuto).  Set before serving; it is
// not synchronised with concurrent readers.
func (x *Index[K]) SetBatchSchedule(s Schedule) { x.sched = s }

// Schedule returns the configured batch schedule (ResolveSchedule maps it
// to the concrete schedule a given batch runs under).
func (x *Index[K]) Schedule() Schedule { return x.sched }

// SetBatchKeyOrder is the boolean forerunner of SetBatchSchedule, kept for
// callers predating ScheduleAuto: true forces the key-ordered schedule,
// false forces input order.
func (x *Index[K]) SetBatchKeyOrder(on bool) {
	if on {
		x.sched = ScheduleKeyOrdered
	} else {
		x.sched = ScheduleInput
	}
}

// SetParallel configures the worker pool for batch execution (zero value:
// GOMAXPROCS workers with adaptive per-worker spans — see parOpts).  Set
// before serving; it is not synchronised with concurrent readers.
func (x *Index[K]) SetParallel(o parallel.Options) { x.par = o }

// parOpts returns the worker-pool options a View serves batches under: the
// configured options with the index's span tuner attached, so the first
// large single-shard batch calibrates MinBatchPerWorker from this index's
// measured per-probe cost and every later batch (and View) reuses it.  An
// explicit MinBatchPerWorker or Tuner from SetParallel wins.
func (x *Index[K]) parOpts() parallel.Options {
	o := x.par
	if o.Tuner == nil {
		o.Tuner = &x.tuner
	}
	return o
}

// BatchCalibration reports the adaptive span the index measured: the
// derived MinBatchPerWorker and the per-probe cost behind it; ok is false
// before any batch was large enough to calibrate.
func (x *Index[K]) BatchCalibration() (minPerWorker int, perProbeNs float64, ok bool) {
	return x.tuner.Calibration()
}

// LowerBoundBatch answers the whole batch against one frozen View, so every
// result reflects a single snapshot epoch per shard.
func (x *Index[K]) LowerBoundBatch(probes []K, out []int32) {
	x.View().LowerBoundBatch(probes, out)
}

// SearchBatch answers the whole batch against one frozen View.
func (x *Index[K]) SearchBatch(probes []K, out []int32) {
	x.View().SearchBatch(probes, out)
}

// EqualRangeBatch answers the whole batch against one frozen View.
func (x *Index[K]) EqualRangeBatch(probes []K, first, last []int32) {
	x.View().EqualRangeBatch(probes, first, last)
}
