package shard

// Split-point planning.  Boundaries splits by key count — every shard gets
// the same share of the data.  WeightedBoundaries splits by *probe mass*,
// the skew-aware policy: given a sample of the lookup distribution (e.g. a
// Zipf stream from internal/workload), it places the cuts at sample
// quantiles, so a hot range is served by more, smaller shards whose trees
// are shallower and whose rebuilds are cheaper, while cold ranges share
// wide shards.

import (
	"cmp"
	"slices"
)

// Boundaries returns up to nshards-1 strictly ascending split keys that
// partition the sorted keys into ranges of (near-)equal count.  Duplicates
// never straddle a cut: a boundary value's whole run lands in the shard to
// the boundary's right.  Fewer boundaries (hence fewer shards) are returned
// when the data has too few distinct values to support nshards.
func Boundaries[K cmp.Ordered](sorted []K, nshards int) []K {
	if nshards < 2 || len(sorted) == 0 {
		return nil
	}
	var bounds []K
	for i := 1; i < nshards; i++ {
		cut := i * len(sorted) / nshards
		if cut <= 0 || cut >= len(sorted) {
			continue
		}
		b := sorted[cut]
		if len(bounds) == 0 || b > bounds[len(bounds)-1] {
			bounds = append(bounds, b)
		}
	}
	return bounds
}

// WeightedBoundaries returns up to nshards-1 strictly ascending split keys
// placed at quantiles of the probe sample, so each shard receives roughly
// equal lookup traffic.  An empty sample falls back to equal-count
// Boundaries over the data.
func WeightedBoundaries[K cmp.Ordered](sorted []K, sample []K, nshards int) []K {
	if nshards < 2 || len(sorted) == 0 {
		return nil
	}
	if len(sample) == 0 {
		return Boundaries(sorted, nshards)
	}
	ws := slices.Clone(sample)
	slices.Sort(ws)
	var bounds []K
	for i := 1; i < nshards; i++ {
		b := ws[i*len(ws)/nshards]
		if b <= sorted[0] {
			continue // a cut at or below the minimum key yields an empty shard
		}
		if len(bounds) == 0 || b > bounds[len(bounds)-1] {
			bounds = append(bounds, b)
		}
	}
	return bounds
}
