package shard

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"cssidx/internal/workload"
)

// oracle is the reference: a plain sorted slice with the obvious answers.
type oracle struct{ keys []uint32 }

func (o *oracle) lowerBound(k uint32) int {
	return sort.Search(len(o.keys), func(i int) bool { return o.keys[i] >= k })
}
func (o *oracle) search(k uint32) int {
	i := o.lowerBound(k)
	if i < len(o.keys) && o.keys[i] == k {
		return i
	}
	return -1
}
func (o *oracle) equalRange(k uint32) (int, int) {
	first := o.lowerBound(k)
	last := first
	for last < len(o.keys) && o.keys[last] == k {
		last++
	}
	return first, last
}
func (o *oracle) insert(ks ...uint32) {
	o.keys = append(o.keys, ks...)
	slices.Sort(o.keys)
}
func (o *oracle) delete(ks ...uint32) {
	for _, k := range ks {
		if i := o.search(k); i >= 0 {
			o.keys = append(o.keys[:i], o.keys[i+1:]...)
		}
	}
}

// checkAgainstOracle compares every read method on a set of probes.
func checkAgainstOracle(t *testing.T, x *Index[uint32], o *oracle, probes []uint32) {
	t.Helper()
	if got := x.Len(); got != len(o.keys) {
		t.Fatalf("Len=%d want %d", got, len(o.keys))
	}
	for _, p := range probes {
		if got, want := x.LowerBound(p), o.lowerBound(p); got != want {
			t.Fatalf("LowerBound(%d)=%d want %d", p, got, want)
		}
		if got, want := x.Search(p), o.search(p); got != want {
			t.Fatalf("Search(%d)=%d want %d", p, got, want)
		}
		gf, gl := x.EqualRange(p)
		wf, wl := o.equalRange(p)
		if gf != wf || gl != wl {
			t.Fatalf("EqualRange(%d)=[%d,%d) want [%d,%d)", p, gf, gl, wf, wl)
		}
	}
	// Full content via the merging iterator.
	v := x.View()
	it := v.RangeAll()
	for i, want := range o.keys {
		k, pos, ok := it.Next()
		if !ok || pos != i || k != want {
			t.Fatalf("iterator at %d: got (%d,%d,%v) want (%d,%d,true)", i, k, pos, ok, want, i)
		}
	}
	if _, _, ok := it.Next(); ok {
		t.Fatal("iterator yields past the end")
	}
}

func probesFor(keys []uint32, g *workload.Gen) []uint32 {
	probes := []uint32{0, 1, math.MaxUint32, math.MaxUint32 - 1}
	if len(keys) > 0 {
		probes = append(probes, keys[0], keys[len(keys)-1])
		probes = append(probes, g.Lookups(keys, 200)...)
		probes = append(probes, g.Misses(keys, 100)...)
	}
	return probes
}

func TestReadsMatchOracleAcrossShardCounts(t *testing.T) {
	g := workload.New(1)
	keys := g.SortedWithDuplicates(5000, 3)
	probes := probesFor(keys, g)
	for _, ns := range []int{1, 2, 4, 7, 16} {
		x := NewEqual(keys, ns, LevelCSSBuilder(16))
		checkAgainstOracle(t, x, &oracle{keys: slices.Clone(keys)}, probes)
		x.Close()
	}
}

func TestEmptyAndTiny(t *testing.T) {
	for _, keys := range [][]uint32{nil, {7}, {7, 7, 7}, {0, math.MaxUint32}} {
		x := NewEqual(keys, 4, LevelCSSBuilder(8))
		o := &oracle{keys: slices.Clone(keys)}
		checkAgainstOracle(t, x, o, []uint32{0, 6, 7, 8, math.MaxUint32})
		x.Close()
	}
}

func TestInsertDeleteMatchesOracle(t *testing.T) {
	g := workload.New(2)
	rng := rand.New(rand.NewSource(2))
	keys := g.SortedUniform(3000)
	x := NewEqual(keys, 4, LevelCSSBuilder(16))
	defer x.Close()
	o := &oracle{keys: slices.Clone(keys)}
	for round := 0; round < 20; round++ {
		ins := make([]uint32, 50)
		for i := range ins {
			ins[i] = uint32(rng.Int63n(math.MaxUint32))
		}
		// Delete a mix of present keys, just-inserted keys, and absent keys.
		del := append([]uint32{}, ins[:10]...)
		for i := 0; i < 20; i++ {
			del = append(del, o.keys[rng.Intn(len(o.keys))])
		}
		del = append(del, uint32(rng.Int63n(1<<20))) // likely absent
		x.Insert(ins...)
		x.Delete(del...)
		x.Sync()
		o.insert(ins...)
		o.delete(del...)
		checkAgainstOracle(t, x, o, probesFor(o.keys, g))
	}
	// Every shard that absorbed updates must have advanced its epoch.
	total := uint64(0)
	for _, e := range x.Epochs() {
		total += e - 1
	}
	if total == 0 {
		t.Fatal("no epoch-swaps published despite updates")
	}
}

func TestDuplicateBoundaryNeverStraddles(t *testing.T) {
	// A huge run of one value right at an equal-count cut: all duplicates
	// must land in one shard so EqualRange stays contiguous and correct.
	keys := make([]uint32, 0, 1000)
	for i := 0; i < 300; i++ {
		keys = append(keys, uint32(i))
	}
	for i := 0; i < 400; i++ {
		keys = append(keys, 500)
	}
	for i := 0; i < 300; i++ {
		keys = append(keys, uint32(1000+i))
	}
	x := NewEqual(keys, 4, LevelCSSBuilder(16))
	defer x.Close()
	first, last := x.EqualRange(500)
	if first != 300 || last != 700 {
		t.Fatalf("EqualRange(500)=[%d,%d) want [300,700)", first, last)
	}
}

func TestBoundariesEqualCount(t *testing.T) {
	g := workload.New(3)
	keys := g.SortedUniform(10000)
	b := Boundaries(keys, 8)
	if len(b) != 7 {
		t.Fatalf("got %d boundaries, want 7", len(b))
	}
	x := New(keys, b, LevelCSSBuilder(16))
	defer x.Close()
	v := x.View()
	for i := 0; i < x.ShardCount(); i++ {
		n := v.offs[i+1] - v.offs[i]
		if n < 10000/8-2 || n > 10000/8+2 {
			t.Fatalf("shard %d holds %d keys, want ~%d", i, n, 10000/8)
		}
	}
}

func TestWeightedBoundariesFollowSkew(t *testing.T) {
	g := workload.New(4)
	keys := g.SortedUniform(20000)
	// Zipf sample: most probes hit the low ranks (small key values here,
	// since ZipfLookups ranks by position).
	sample := g.ZipfLookups(keys, 50000, 1.2)
	b := WeightedBoundaries(keys, sample, 8)
	if len(b) == 0 {
		t.Fatal("no weighted boundaries")
	}
	x := New(keys, b, LevelCSSBuilder(16))
	defer x.Close()
	v := x.View()
	// The hot (first) shard must be smaller in keys than the cold (last):
	// equal probe mass concentrates cuts where traffic is.
	firstN := v.offs[1] - v.offs[0]
	lastN := v.offs[len(v.snaps)] - v.offs[len(v.snaps)-1]
	if firstN >= lastN {
		t.Fatalf("skew-aware split: hot shard %d keys, cold shard %d keys; want hot < cold", firstN, lastN)
	}
	// And the probe mass per shard should be far more even than the key mass.
	counts := make([]int, x.ShardCount())
	for _, p := range sample {
		counts[x.shardFor(p)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d receives no traffic", i)
		}
	}
}

func TestWeightedBoundariesEmptySampleFallsBack(t *testing.T) {
	g := workload.New(5)
	keys := g.SortedUniform(1000)
	if got, want := WeightedBoundaries(keys, nil, 4), Boundaries(keys, 4); !slices.Equal(got, want) {
		t.Fatalf("empty-sample fallback: got %v want %v", got, want)
	}
}

func TestViewIsFrozen(t *testing.T) {
	g := workload.New(6)
	keys := g.SortedUniform(2000)
	x := NewEqual(keys, 4, LevelCSSBuilder(16))
	defer x.Close()
	v := x.View()
	before := v.Len()
	x.Insert(g.Misses(keys, 500)...)
	x.Sync()
	if v.Len() != before {
		t.Fatalf("view length changed after updates: %d -> %d", before, v.Len())
	}
	if x.Len() != before+500 {
		t.Fatalf("index length %d, want %d", x.Len(), before+500)
	}
}

func TestCloseFlushesPending(t *testing.T) {
	g := workload.New(7)
	keys := g.SortedUniform(1000)
	x := NewEqual(keys, 4, LevelCSSBuilder(16))
	extra := g.Misses(keys, 100)
	x.Insert(extra...)
	x.Close()
	if x.Len() != 1100 {
		t.Fatalf("Close did not flush: Len=%d want 1100", x.Len())
	}
	for _, k := range extra {
		if x.Search(k) < 0 {
			t.Fatalf("key %d invisible after Close", k)
		}
	}
	x.Close() // idempotent
	x.Sync()  // no-op after Close, must not hang
}

func TestRangeIterSubrange(t *testing.T) {
	keys := []uint32{10, 20, 20, 30, 40, 50, 60, 70}
	x := NewEqual(keys, 3, LevelCSSBuilder(8))
	defer x.Close()
	v := x.View()
	var got []uint32
	for it := v.Range(20, 60); ; {
		k, pos, ok := it.Next()
		if !ok {
			break
		}
		if v.Key(pos) != k {
			t.Fatalf("pos/key mismatch at %d", pos)
		}
		got = append(got, k)
	}
	want := []uint32{20, 20, 30, 40, 50}
	if !slices.Equal(got, want) {
		t.Fatalf("Range(20,60)=%v want %v", got, want)
	}
	if it := v.Range(25, 25); it.Remaining() != 0 {
		t.Fatal("empty value range must yield nothing")
	}
}
