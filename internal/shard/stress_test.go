package shard

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"cssidx/internal/workload"
)

// TestConcurrentReadersDuringEpochSwaps is the race-detector stress test for
// the serving layer: ≥8 reader goroutines hammer Search/LowerBound/
// EqualRange/range scans while the background rebuilder publishes well over
// 100 epoch-swaps.  Run with -race.  It asserts:
//
//   - no torn reads: every snapshot a reader observes is internally
//     consistent — the key found at a returned position matches, bounds are
//     in range, EqualRange brackets are sane;
//   - monotonic epoch visibility: the epoch a reader observes for any given
//     shard never decreases.
func TestConcurrentReadersDuringEpochSwaps(t *testing.T) {
	const (
		readers   = 8
		rounds    = 40
		batchSize = 256
		minSwaps  = 100
	)
	g := workload.New(600)
	keys := g.SortedUniform(20000)
	x := NewEqual(keys, 4, LevelCSSBuilder(16))
	defer x.Close()

	stop := make(chan struct{})
	var reads atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan string, readers)
	fail := func(msg string) {
		select {
		case errc <- msg:
		default:
		}
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			lastEpoch := make([]uint64, x.ShardCount())
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := x.View()
				for s, e := range v.Epochs() {
					if e < lastEpoch[s] {
						fail("epoch went backwards")
						return
					}
					lastEpoch[s] = e
				}
				if v.Len() == 0 {
					continue
				}
				// Point reads against the frozen view: position/key must agree.
				for i := 0; i < 16; i++ {
					p := v.Key(rng.Intn(v.Len()))
					pos := v.Search(p)
					if pos < 0 || v.Key(pos) != p {
						fail("Search returned a position whose key mismatches")
						return
					}
					lb := v.LowerBound(p)
					if lb < 0 || lb > pos || v.Key(lb) != p {
						fail("LowerBound inconsistent with Search")
						return
					}
					first, last := v.EqualRange(p)
					if !(first <= pos && pos < last) || first != lb {
						fail("EqualRange does not bracket the key")
						return
					}
				}
				// Lock-free reads straight off the index (crossing epochs):
				// the key must be found wherever the live shard placed it.
				p := v.Key(rng.Intn(v.Len()))
				live := x.shards[x.shardFor(p)].cur.Load()
				if live.search(p) < 0 && v.Search(p) >= 0 {
					// p was deleted by a swap that raced us; that is legal —
					// but only if an epoch actually advanced for its shard.
					if live.epoch == v.Epochs()[x.shardFor(p)] {
						fail("key vanished without an epoch-swap")
						return
					}
				}
				// A short range scan over the frozen view must be sorted.
				lo := v.Key(rng.Intn(v.Len()))
				it := v.Range(lo, lo+1000)
				prev, havePrev := uint32(0), false
				for {
					k, _, ok := it.Next()
					if !ok {
						break
					}
					if havePrev && k < prev {
						fail("range scan out of order")
						return
					}
					prev, havePrev = k, true
				}
				reads.Add(1)
			}
		}(int64(r + 1))
	}

	// Writer: churn batches through every shard until well past minSwaps.
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < rounds; round++ {
		batch := make([]uint32, batchSize)
		for i := range batch {
			batch[i] = uint32(rng.Int63n(workload.MaxKey))
		}
		x.Insert(batch...)
		x.Sync()
		x.Delete(batch...)
		x.Sync()
	}
	close(stop)
	wg.Wait()

	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
	swaps := uint64(0)
	for _, e := range x.Epochs() {
		swaps += e - 1
	}
	if swaps < minSwaps {
		t.Fatalf("only %d epoch-swaps published, want ≥ %d", swaps, minSwaps)
	}
	if reads.Load() == 0 {
		t.Fatal("readers made no progress")
	}
	t.Logf("%d reader passes over %d epoch-swaps", reads.Load(), swaps)
}
