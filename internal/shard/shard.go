// Package shard is the concurrent serving layer over the paper's read-only
// indexes: it partitions the key space across N range shards, holds each
// shard's search tree behind an atomic pointer, and makes the §2.3 OLAP
// maintenance cycle — "absorb a batch of updates, then rebuild from scratch"
// — concurrent.
//
// Readers are lock-free: a lookup routes to its shard by the fixed range
// boundaries, loads that shard's current snapshot with a single atomic
// pointer load, and searches an immutable tree.  Writers never touch a
// published tree; Insert/Delete only append to a per-shard pending batch
// under a short mutex.  One background goroutine drains dirty shards,
// merges each batch into a freshly built sorted array, rebuilds the shard's
// tree, and publishes the result with an epoch-swap: a new snapshot whose
// epoch is one greater than the one it replaces.  A reader therefore always
// sees a complete, internally consistent (keys, tree, epoch) triple, and the
// epoch it observes for any shard never decreases.
//
// Sharding also bounds rebuild latency — only the shards a batch touches are
// rebuilt, each over 1/N of the data — and lets rebuilds of different shards
// proceed while readers keep serving, which is what the ROADMAP's
// heavy-traffic target needs from the paper's rebuild-don't-maintain
// position.  Boundaries and WeightedBoundaries choose the split points:
// equal-count by default, or skew-aware from a sample of the probe
// distribution so hot ranges get more (smaller) shards.
package shard

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"cssidx/internal/csstree"
	"cssidx/internal/parallel"
	"cssidx/internal/telemetry"
)

// Tree is the read-only search structure a shard publishes: the ordered
// subset of cssidx's OrderedIndex the serving layer needs.  Positions are
// local to the shard's sorted key slice.
type Tree[K cmp.Ordered] interface {
	Search(key K) int
	LowerBound(key K) int
	EqualRange(key K) (first, last int)
}

// Builder constructs a shard's tree over its sorted keys.  It is called on
// the background goroutine at every epoch-swap, so it must not retain or
// mutate shared state.
type Builder[K cmp.Ordered] func(sorted []K) Tree[K]

// LevelCSSBuilder returns a Builder producing the tuned uint32 level
// CSS-tree (§4.2) with m slots per node — the recommended tree for uint32
// shards.  m must be a power of two ≥ 2.
func LevelCSSBuilder(m int) Builder[uint32] {
	return func(sorted []uint32) Tree[uint32] {
		return csstree.BuildLevel(sorted, m)
	}
}

// snapshot is one published epoch of a shard: an immutable sorted base
// array with the tree over it, plus the delta runs not yet folded in
// (delta.go).  The logical content is the merged multiset base ∪ runs;
// positions are ranks in the merged order.  Snapshots are never mutated
// after publication.
type snapshot[K cmp.Ordered] struct {
	epoch uint64
	keys  []K
	tree  Tree[K]
	runs  []*deltaRun[K]
	total int // len(keys) + Σ len(run.keys)
}

// shardState is one range shard: the current snapshot plus the pending
// update batch the background goroutine has not yet absorbed.
type shardState[K cmp.Ordered] struct {
	cur atomic.Pointer[snapshot[K]]

	mu      sync.Mutex // guards the pending batches only
	insPend []K
	delPend []K
}

// Index is a sharded, concurrently servable index over a multiset of keys.
// Construct with New or NewEqual; Close releases the background rebuilder.
//
// Search, LowerBound and EqualRange return positions in the conceptual
// concatenation of all shard arrays in boundary order.  Each lookup reads a
// single shard's snapshot atomically; the per-shard offsets are gathered
// with independent atomic loads, so during concurrent rebuilds of *other*
// shards a global position reflects each shard's own latest epoch rather
// than one instant in time.  Use View for a frozen cross-shard snapshot.
type Index[K cmp.Ordered] struct {
	build  Builder[K]
	bounds []K // strictly ascending; shard i serves keys < bounds[i], last serves the rest
	shards []*shardState[K]

	// sched picks the batch probe schedule (SetBatchSchedule) and par the
	// worker pool for batch execution (SetParallel); set before serving.
	sched Schedule
	par   parallel.Options

	// tuner caches the one-shot measured per-probe cost behind the
	// adaptive MinBatchPerWorker (attached to every View's options unless
	// SetParallel pinned an explicit span or tuner).
	tuner parallel.Tuner

	// scratch pools batchScratch buffers across batch calls (and across the
	// Views that carry the pool), so steady-state batches allocate nothing.
	scratch sync.Pool

	// delta tunes the mutable delta layer (delta.go); the tiering counters
	// feed DeltaStats.
	delta        DeltaPolicy
	deltaAppends atomic.Uint64
	runMerges    atomic.Uint64
	folds        atomic.Uint64

	wake      chan struct{}
	syncs     chan chan struct{}
	compacts  chan chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds a sharded index over the sorted keys with the given split
// boundaries (strictly ascending; len(bounds)+1 shards).  Shard i holds the
// keys k with bounds[i-1] ≤ k < bounds[i]; duplicates of a boundary key all
// land in the shard to its right, so EqualRange never straddles shards.
// keys must be sorted ascending (duplicates allowed) and is not copied at
// build; after the first epoch-swap a shard owns a fresh array.
func New[K cmp.Ordered](keys []K, bounds []K, build Builder[K]) *Index[K] {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("shard: boundaries not strictly ascending at %d", i))
		}
	}
	x := &Index[K]{
		build:    build,
		bounds:   slices.Clone(bounds),
		shards:   make([]*shardState[K], len(bounds)+1),
		wake:     make(chan struct{}, 1),
		syncs:    make(chan chan struct{}),
		compacts: make(chan chan struct{}),
		done:     make(chan struct{}),
	}
	lo := 0
	for i := range x.shards {
		hi := len(keys)
		if i < len(bounds) {
			b := bounds[i]
			hi = lo + sort.Search(len(keys)-lo, func(j int) bool { return keys[lo+j] >= b })
		}
		part := keys[lo:hi]
		s := &shardState[K]{}
		s.cur.Store(&snapshot[K]{epoch: 1, keys: part, tree: build(part), total: len(part)})
		x.shards[i] = s
		lo = hi
	}
	x.wg.Add(1)
	go x.loop()
	return x
}

// NewEqual builds a sharded index with equal-count boundaries (Boundaries).
func NewEqual[K cmp.Ordered](keys []K, nshards int, build Builder[K]) *Index[K] {
	return New(keys, Boundaries(keys, nshards), build)
}

// Close flushes any pending batches, publishes their epoch-swaps, and stops
// the background rebuilder.  Close is idempotent; reads remain valid after
// Close, writes after Close are absorbed only by a later manual Sync (none
// runs), so finish writing first.
func (x *Index[K]) Close() {
	x.closeOnce.Do(func() {
		close(x.done)
		x.wg.Wait()
	})
}

// ShardCount returns the number of shards.
func (x *Index[K]) ShardCount() int { return len(x.shards) }

// Bounds returns the split boundaries (len = ShardCount()-1).
func (x *Index[K]) Bounds() []K { return slices.Clone(x.bounds) }

// Epochs returns each shard's current epoch.  A shard's epoch starts at 1
// and increments by exactly 1 per published rebuild, so Epochs-1 summed is
// the total number of epoch-swaps served.
func (x *Index[K]) Epochs() []uint64 {
	out := make([]uint64, len(x.shards))
	for i, s := range x.shards {
		out[i] = s.cur.Load().epoch
	}
	return out
}

// Len returns the total number of keys across shards (see the type comment
// for consistency during concurrent rebuilds).
func (x *Index[K]) Len() int {
	n := 0
	for _, s := range x.shards {
		n += s.cur.Load().len()
	}
	return n
}

// shardFor routes a key to its shard.
func (x *Index[K]) shardFor(key K) int {
	return sort.Search(len(x.bounds), func(i int) bool { return key < x.bounds[i] })
}

// offsetTo sums the lengths of shards before s (one atomic load each).
func (x *Index[K]) offsetTo(s int) int {
	off := 0
	for i := 0; i < s; i++ {
		off += x.shards[i].cur.Load().len()
	}
	return off
}

// Search returns the global position of the leftmost occurrence of key,
// or -1 if absent.
func (x *Index[K]) Search(key K) int {
	s := x.shardFor(key)
	noteProbe(s)
	snap := x.shards[s].cur.Load()
	i := snap.search(key)
	if i < 0 {
		return -1
	}
	return x.offsetTo(s) + i
}

// LowerBound returns the smallest global position whose key is ≥ key, or
// Len() if none is.
func (x *Index[K]) LowerBound(key K) int {
	s := x.shardFor(key)
	noteProbe(s)
	snap := x.shards[s].cur.Load()
	return x.offsetTo(s) + snap.lowerBound(key)
}

// EqualRange returns the half-open global position range [first,last) of
// occurrences of key.  Routing sends every duplicate of a key to one shard,
// so the range never spans shards.
func (x *Index[K]) EqualRange(key K) (first, last int) {
	s := x.shardFor(key)
	noteProbe(s)
	snap := x.shards[s].cur.Load()
	lo, hi := snap.equalRange(key)
	off := x.offsetTo(s)
	return off + lo, off + hi
}

// Insert enqueues keys for insertion.  The keys become visible after the
// background rebuilder publishes the affected shards' next epochs; call
// Sync to wait for that.
func (x *Index[K]) Insert(keys ...K) { x.enqueue(keys, true) }

// Delete enqueues keys for deletion with multiset semantics: each requested
// key removes at most one occurrence; absent keys are ignored.
func (x *Index[K]) Delete(keys ...K) { x.enqueue(keys, false) }

func (x *Index[K]) enqueue(keys []K, ins bool) {
	if len(keys) == 0 {
		return
	}
	buckets := make([][]K, len(x.shards))
	for _, k := range keys {
		s := x.shardFor(k)
		buckets[s] = append(buckets[s], k)
	}
	for i, b := range buckets {
		if len(b) == 0 {
			continue
		}
		s := x.shards[i]
		s.mu.Lock()
		if ins {
			s.insPend = append(s.insPend, b...)
		} else {
			s.delPend = append(s.delPend, b...)
		}
		s.mu.Unlock()
	}
	select {
	case x.wake <- struct{}{}:
	default:
	}
}

// Sync blocks until every update enqueued before the call has been absorbed
// and its epoch-swap published.  After Close, Sync returns immediately
// (Close already flushed).
func (x *Index[K]) Sync() {
	ack := make(chan struct{})
	select {
	case x.syncs <- ack:
		<-ack
	case <-x.done:
	}
}

// loop is the background rebuilder: it drains dirty shards on every wake or
// sync request and once more on Close.
func (x *Index[K]) loop() {
	defer x.wg.Done()
	for {
		select {
		case <-x.done:
			x.drain()
			return
		case ack := <-x.syncs:
			x.drain()
			close(ack)
		case ack := <-x.compacts:
			x.drain()
			x.compactAll()
			close(ack)
		case <-x.wake:
			x.drain()
		}
	}
}

// drain repeatedly sweeps the shards, absorbing and publishing any pending
// batches, until a full sweep finds nothing to do.  Insert-only batches go
// through the delta layer's tiering (absorb, delta.go); delete batches and
// disabled deltas fold the full §2.3 way.
func (x *Index[K]) drain() {
	for {
		dirty := false
		for _, s := range x.shards {
			s.mu.Lock()
			ins, del := s.insPend, s.delPend
			s.insPend, s.delPend = nil, nil
			s.mu.Unlock()
			if len(ins) == 0 && len(del) == 0 {
				continue
			}
			dirty = true
			old := s.cur.Load()
			start := telemetry.Now()
			if len(del) == 0 && !x.delta.Disabled && len(ins) > 0 {
				s.cur.Store(x.absorb(old, ins))
				ctrAbsorbs.Inc()
			} else {
				s.cur.Store(x.fold(old, ins, del))
				ctrFolds.Inc()
			}
			histSwapNs.Since(start)
		}
		if !dirty {
			return
		}
	}
}

// applyBatch merges the insert batch into the sorted base and removes one
// occurrence per delete key, returning a fresh sorted array.  base is only
// read; ins and del are consumed (sorted in place).
func applyBatch[K cmp.Ordered](base, ins, del []K) []K {
	slices.Sort(ins)
	slices.Sort(del)
	merged := make([]K, 0, len(base)+len(ins))
	i, j := 0, 0
	for i < len(base) && j < len(ins) {
		if base[i] <= ins[j] {
			merged = append(merged, base[i])
			i++
		} else {
			merged = append(merged, ins[j])
			j++
		}
	}
	merged = append(merged, base[i:]...)
	merged = append(merged, ins[j:]...)
	if len(del) == 0 {
		return merged
	}
	out := merged[:0]
	d := 0
	for _, k := range merged {
		for d < len(del) && del[d] < k {
			d++ // delete of an absent key: ignored
		}
		if d < len(del) && del[d] == k {
			d++ // remove this one occurrence
			continue
		}
		out = append(out, k)
	}
	return out
}
