package shard

// Telemetry for the serving layer.  Probe counters are labelled by shard
// position (clamped: shards past shardLabelMax pool into one overflow
// series) so a scrape shows the probe distribution across the range
// partition — the signal WeightedBoundaries acts on.  Epoch-swaps record
// both the event kind (absorb vs fold) and the rebuild duration.  All
// series live in telemetry.Default; while collection is off every hook
// costs one atomic load.

import (
	"strconv"

	"cssidx/internal/telemetry"
)

// shardLabelMax bounds the labelled probe series: shards 0..14 get their
// own counter, everything beyond pools into the "15+" overflow label.
// Indexes are expected to run a handful of shards (one per core region);
// the clamp keeps the registry finite when tests build very wide indexes.
const shardLabelMax = 15

var (
	shardProbeCtrs = func() [shardLabelMax + 1]*telemetry.Counter {
		var cs [shardLabelMax + 1]*telemetry.Counter
		for i := 0; i < shardLabelMax; i++ {
			cs[i] = telemetry.C(`shard_probes_total{shard="` + strconv.Itoa(i) + `"}`)
		}
		cs[shardLabelMax] = telemetry.C(`shard_probes_total{shard="` + strconv.Itoa(shardLabelMax) + `+"}`)
		return cs
	}()

	ctrBatchProbes = telemetry.C("shard_batch_probes_total")
	ctrAbsorbs     = telemetry.C("shard_absorbs_total")
	ctrFolds       = telemetry.C("shard_folds_total")
	histSwapNs     = telemetry.H("shard_epoch_swap_ns")
)

// noteProbe counts one single-key probe against shard sid.
func noteProbe(sid int) {
	if sid > shardLabelMax {
		sid = shardLabelMax
	}
	shardProbeCtrs[sid].Inc()
}

// noteBatchRuns counts a batch's probes into the per-shard series.  The
// enabled check keeps the disabled cost at one atomic load for the whole
// batch rather than one per run.
func noteBatchRuns(runs []batchRun) {
	if !telemetry.Enabled() {
		return
	}
	total := 0
	for _, r := range runs {
		n := r.hi - r.lo
		total += n
		sid := r.sid
		if sid > shardLabelMax {
			sid = shardLabelMax
		}
		shardProbeCtrs[sid].Add(uint64(n))
	}
	ctrBatchProbes.Add(uint64(total))
}

// noteBatchSingle counts a single-shard fast-path batch (no run list).
func noteBatchSingle(n int) {
	if !telemetry.Enabled() {
		return
	}
	shardProbeCtrs[0].Add(uint64(n))
	ctrBatchProbes.Add(uint64(n))
}
