package shard

// Frozen cross-shard views and the merging range iterator.  A View captures
// every shard's current snapshot with one atomic load each; the captured
// snapshots are immutable, so a View gives repeatable reads with stable
// global positions no matter how many epoch-swaps happen behind it — the
// serving layer's equivalent of a read transaction.

import (
	"cmp"
	"sort"
	"sync"

	"cssidx/internal/parallel"
)

// View is a frozen capture of all shards.  Each shard's snapshot is
// internally consistent; the set reflects each shard's latest epoch at
// capture time.  Views are cheap (no copying) and safe for concurrent use.
// A View inherits the Index's batch schedule and worker-pool options at
// capture; WithSchedule/WithParallel override them per View.
type View[K cmp.Ordered] struct {
	bounds []K
	snaps  []*snapshot[K]
	offs   []int // offs[i] = global start of shard i; offs[len(snaps)] = Len

	sched Schedule
	par   parallel.Options
	pool  *sync.Pool // batchScratch pool shared with the owning Index
}

// View captures the current snapshot of every shard.
func (x *Index[K]) View() *View[K] {
	v := &View[K]{
		bounds: x.bounds,
		snaps:  make([]*snapshot[K], len(x.shards)),
		offs:   make([]int, len(x.shards)+1),
		sched:  x.sched,
		par:    x.parOpts(),
		pool:   &x.scratch,
	}
	for i, s := range x.shards {
		v.snaps[i] = s.cur.Load()
		v.offs[i+1] = v.offs[i] + len(v.snaps[i].keys)
	}
	return v
}

// WithSchedule returns a copy of the view using the given batch schedule.
func (v *View[K]) WithSchedule(s Schedule) *View[K] {
	w := *v
	w.sched = s
	return &w
}

// WithParallel returns a copy of the view using the given worker options.
func (v *View[K]) WithParallel(o parallel.Options) *View[K] {
	w := *v
	w.par = o
	return &w
}

// Len returns the total number of keys in the view.
func (v *View[K]) Len() int { return v.offs[len(v.snaps)] }

// Epochs returns the epoch of each captured shard snapshot.
func (v *View[K]) Epochs() []uint64 {
	out := make([]uint64, len(v.snaps))
	for i, s := range v.snaps {
		out[i] = s.epoch
	}
	return out
}

// Key returns the key at a global position.
func (v *View[K]) Key(pos int) K {
	s := sort.Search(len(v.snaps), func(i int) bool { return v.offs[i+1] > pos })
	return v.snaps[s].keys[pos-v.offs[s]]
}

func (v *View[K]) shardFor(key K) int {
	return sort.Search(len(v.bounds), func(i int) bool { return key < v.bounds[i] })
}

// Search returns the global position of the leftmost occurrence of key, or -1.
func (v *View[K]) Search(key K) int {
	s := v.shardFor(key)
	i := v.snaps[s].tree.Search(key)
	if i < 0 {
		return -1
	}
	return v.offs[s] + i
}

// LowerBound returns the smallest global position with key ≥ key, or Len().
func (v *View[K]) LowerBound(key K) int {
	s := v.shardFor(key)
	return v.offs[s] + v.snaps[s].tree.LowerBound(key)
}

// EqualRange returns the half-open global position range equal to key.
func (v *View[K]) EqualRange(key K) (first, last int) {
	s := v.shardFor(key)
	lo, hi := v.snaps[s].tree.EqualRange(key)
	return v.offs[s] + lo, v.offs[s] + hi
}

// Range returns an iterator over the keys in the half-open value range
// [lo, hi), in ascending order with their global positions.
func (v *View[K]) Range(lo, hi K) *RangeIter[K] {
	start := v.LowerBound(lo)
	end := start
	if lo < hi {
		end = v.LowerBound(hi)
	}
	return v.rangeAt(start, end)
}

// RangeAll returns an iterator over every key in the view.
func (v *View[K]) RangeAll() *RangeIter[K] { return v.rangeAt(0, v.Len()) }

func (v *View[K]) rangeAt(start, end int) *RangeIter[K] {
	it := &RangeIter[K]{v: v, pos: start, end: end}
	it.shard = sort.Search(len(v.snaps), func(i int) bool { return v.offs[i+1] > start })
	return it
}

// RangeIter is a merging cross-shard iterator: it stitches the per-shard
// sorted snapshot arrays together in boundary order.  Because the shards
// range-partition the key space, the k-way merge of their streams
// degenerates to ordered concatenation — each shard's stream is exhausted
// before the next one's first key — so Next is a plain array walk with an
// occasional shard hop.
type RangeIter[K cmp.Ordered] struct {
	v     *View[K]
	shard int
	pos   int // global position of the next key
	end   int // global position to stop before
}

// Remaining returns the number of keys left to yield.
func (it *RangeIter[K]) Remaining() int { return it.end - it.pos }

// Next yields the next key and its global position, or ok=false at the end.
func (it *RangeIter[K]) Next() (key K, pos int, ok bool) {
	if it.pos >= it.end {
		return key, 0, false
	}
	v := it.v
	for it.pos >= v.offs[it.shard+1] { // hop empty or exhausted shards
		it.shard++
	}
	pos = it.pos
	key = v.snaps[it.shard].keys[pos-v.offs[it.shard]]
	it.pos++
	return key, pos, true
}
