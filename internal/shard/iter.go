package shard

// Frozen cross-shard views and the merging range iterator.  A View captures
// every shard's current snapshot with one atomic load each; the captured
// snapshots are immutable, so a View gives repeatable reads with stable
// global positions no matter how many epoch-swaps happen behind it — the
// serving layer's equivalent of a read transaction.

import (
	"cmp"
	"sort"
	"sync"

	"cssidx/internal/parallel"
)

// View is a frozen capture of all shards.  Each shard's snapshot is
// internally consistent; the set reflects each shard's latest epoch at
// capture time.  Views are cheap (no copying) and safe for concurrent use.
// A View inherits the Index's batch schedule and worker-pool options at
// capture; WithSchedule/WithParallel override them per View.
type View[K cmp.Ordered] struct {
	bounds []K
	snaps  []*snapshot[K]
	offs   []int // offs[i] = global start of shard i; offs[len(snaps)] = Len

	sched Schedule
	par   parallel.Options
	pool  *sync.Pool // batchScratch pool shared with the owning Index
}

// View captures the current snapshot of every shard.
func (x *Index[K]) View() *View[K] {
	v := &View[K]{
		bounds: x.bounds,
		snaps:  make([]*snapshot[K], len(x.shards)),
		offs:   make([]int, len(x.shards)+1),
		sched:  x.sched,
		par:    x.parOpts(),
		pool:   &x.scratch,
	}
	for i, s := range x.shards {
		v.snaps[i] = s.cur.Load()
		v.offs[i+1] = v.offs[i] + v.snaps[i].len()
	}
	return v
}

// WithSchedule returns a copy of the view using the given batch schedule.
func (v *View[K]) WithSchedule(s Schedule) *View[K] {
	w := *v
	w.sched = s
	return &w
}

// WithParallel returns a copy of the view using the given worker options.
func (v *View[K]) WithParallel(o parallel.Options) *View[K] {
	w := *v
	w.par = o
	return &w
}

// Len returns the total number of keys in the view.
func (v *View[K]) Len() int { return v.offs[len(v.snaps)] }

// Epochs returns the epoch of each captured shard snapshot.
func (v *View[K]) Epochs() []uint64 {
	out := make([]uint64, len(v.snaps))
	for i, s := range v.snaps {
		out[i] = s.epoch
	}
	return out
}

// Key returns the key at a global position: a direct array access when the
// shard carries no delta runs, a rank-select across base ∪ runs when it
// does.
func (v *View[K]) Key(pos int) K {
	s := sort.Search(len(v.snaps), func(i int) bool { return v.offs[i+1] > pos })
	sn := v.snaps[s]
	if len(sn.runs) == 0 {
		return sn.keys[pos-v.offs[s]]
	}
	return sn.selectKth(pos - v.offs[s])
}

func (v *View[K]) shardFor(key K) int {
	return sort.Search(len(v.bounds), func(i int) bool { return key < v.bounds[i] })
}

// Search returns the global position of the leftmost occurrence of key, or -1.
func (v *View[K]) Search(key K) int {
	s := v.shardFor(key)
	i := v.snaps[s].search(key)
	if i < 0 {
		return -1
	}
	return v.offs[s] + i
}

// LowerBound returns the smallest global position with key ≥ key, or Len().
func (v *View[K]) LowerBound(key K) int {
	s := v.shardFor(key)
	return v.offs[s] + v.snaps[s].lowerBound(key)
}

// EqualRange returns the half-open global position range equal to key.
func (v *View[K]) EqualRange(key K) (first, last int) {
	s := v.shardFor(key)
	lo, hi := v.snaps[s].equalRange(key)
	return v.offs[s] + lo, v.offs[s] + hi
}

// Range returns an iterator over the keys in the half-open value range
// [lo, hi), in ascending order with their global positions.
func (v *View[K]) Range(lo, hi K) *RangeIter[K] {
	start := v.LowerBound(lo)
	end := start
	if lo < hi {
		end = v.LowerBound(hi)
	}
	it := v.rangeAt(start, end)
	it.startKey, it.haveStart = lo, true
	return it
}

// RangeAll returns an iterator over every key in the view.
func (v *View[K]) RangeAll() *RangeIter[K] { return v.rangeAt(0, v.Len()) }

func (v *View[K]) rangeAt(start, end int) *RangeIter[K] {
	it := &RangeIter[K]{v: v, pos: start, end: end}
	it.shard = sort.Search(len(v.snaps), func(i int) bool { return v.offs[i+1] > start })
	return it
}

// RangeIter is a merging cross-shard iterator.  Because the shards
// range-partition the key space, the cross-shard merge degenerates to
// ordered concatenation; inside a shard the base array and its delta runs
// DO interleave, so the iterator keeps a small head-per-stream merge
// (base first on ties) — with no runs outstanding, Next degenerates to the
// plain array walk it was before the delta layer.
type RangeIter[K cmp.Ordered] struct {
	v     *View[K]
	shard int
	pos   int // global position of the next key
	end   int // global position to stop before

	// Merge state of the current shard: the composing arrays and a cursor
	// per array.  Rebuilt on every shard hop; nil until first use.
	streams   [][]K
	cursor    []int
	inShard   int  // shard the streams belong to
	started   bool // streams initialised at least once
	startKey  K    // value the iteration started at (set by Range):
	haveStart bool // positions the cursors mid-shard on the first shard
}

// Remaining returns the number of keys left to yield.
func (it *RangeIter[K]) Remaining() int { return it.end - it.pos }

// Next yields the next key and its global position, or ok=false at the end.
func (it *RangeIter[K]) Next() (key K, pos int, ok bool) {
	if it.pos >= it.end {
		return key, 0, false
	}
	v := it.v
	for it.pos >= v.offs[it.shard+1] { // hop empty or exhausted shards
		it.shard++
	}
	sn := v.snaps[it.shard]
	pos = it.pos
	it.pos++
	if len(sn.runs) == 0 {
		return sn.keys[pos-v.offs[it.shard]], pos, true
	}
	if !it.started || it.inShard != it.shard {
		it.initShard(sn, pos-v.offs[it.shard])
	}
	// Pick the smallest head; earliest stream (base first) wins ties.
	best := -1
	for i, a := range it.streams {
		c := it.cursor[i]
		if c >= len(a) {
			continue
		}
		if best < 0 || a[c] < it.streams[best][it.cursor[best]] {
			best = i
		}
	}
	key = it.streams[best][it.cursor[best]]
	it.cursor[best]++
	return key, pos, true
}

// initShard positions one cursor per composing array of the shard.  local
// is the merged rank to start at: 0 at a shard boundary, or — only on the
// iterator's first shard — the rank of startKey's lower bound, which every
// array realises as its own lower bound of startKey.
func (it *RangeIter[K]) initShard(sn *snapshot[K], local int) {
	it.streams = sn.arrays()
	it.cursor = make([]int, len(it.streams))
	if local != 0 {
		if !it.haveStart {
			panic("shard: range iterator started mid-shard without a start key")
		}
		it.cursor[0] = sn.tree.LowerBound(it.startKey)
		for i, r := range sn.runs {
			it.cursor[i+1] = r.lowerBound(it.startKey)
		}
	}
	it.inShard = it.shard
	it.started = true
}
