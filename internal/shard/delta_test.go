package shard

// Differential tests for the mutable delta layer: every read surface over a
// delta-carrying index must be bit-identical to the same reads over an index
// that folds every batch into a rebuilt run (the pre-delta behaviour), which
// in turn is checked against the plain sorted-slice oracle.  The delta layer
// is an internal representation change only — positions, iteration order,
// and batch results may not move.

import (
	"math"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"cssidx/internal/workload"
)

// foldEveryBatch is the pre-delta behaviour: no delta runs ever.
var foldEveryBatch = DeltaPolicy{Disabled: true}

// smallBatchPolicy keeps appends in delta runs long enough to exercise
// run accumulation, tier merges, and the fold threshold in small tests.
var smallBatchPolicy = DeltaPolicy{MaxRuns: 3, FoldDenominator: 4, MinFoldKeys: 64}

// checkDeltaDifferential compares a delta-carrying index against a
// fold-every-batch twin on every surface: scalar reads, positional access,
// iterators, and the three batch kernels.
func checkDeltaDifferential(t *testing.T, x, rebuilt *Index[uint32], probes []uint32) {
	t.Helper()
	if got, want := x.Len(), rebuilt.Len(); got != want {
		t.Fatalf("Len=%d rebuilt=%d", got, want)
	}
	for _, p := range probes {
		if got, want := x.Search(p), rebuilt.Search(p); got != want {
			t.Fatalf("Search(%d)=%d rebuilt=%d", p, got, want)
		}
		if got, want := x.LowerBound(p), rebuilt.LowerBound(p); got != want {
			t.Fatalf("LowerBound(%d)=%d rebuilt=%d", p, got, want)
		}
		gf, gl := x.EqualRange(p)
		wf, wl := rebuilt.EqualRange(p)
		if gf != wf || gl != wl {
			t.Fatalf("EqualRange(%d)=[%d,%d) rebuilt=[%d,%d)", p, gf, gl, wf, wl)
		}
	}
	v, rv := x.View(), rebuilt.View()
	// Positional access via rank-select.
	for pos := 0; pos < v.Len(); pos++ {
		if got, want := v.Key(pos), rv.Key(pos); got != want {
			t.Fatalf("Key(%d)=%d rebuilt=%d", pos, got, want)
		}
	}
	// Merging iterator, full and subrange.
	checkIterEqual(t, v.RangeAll(), rv.RangeAll())
	if v.Len() > 2 {
		lo, hi := v.Key(v.Len()/4), v.Key(3*v.Len()/4)
		checkIterEqual(t, v.Range(lo, hi), rv.Range(lo, hi))
	}
	// Batch kernels across probe orderings and the merged key stream.
	batchProbes := append(slices.Clone(probes), rv.snapKeys()...)
	n := len(batchProbes)
	gotLB, wantLB := make([]int32, n), make([]int32, n)
	v.LowerBoundBatch(batchProbes, gotLB)
	rv.LowerBoundBatch(batchProbes, wantLB)
	if !slices.Equal(gotLB, wantLB) {
		t.Fatalf("LowerBoundBatch diverges from rebuilt twin")
	}
	gotS, wantS := make([]int32, n), make([]int32, n)
	v.SearchBatch(batchProbes, gotS)
	rv.SearchBatch(batchProbes, wantS)
	if !slices.Equal(gotS, wantS) {
		t.Fatalf("SearchBatch diverges from rebuilt twin")
	}
	gotF, gotL := make([]int32, n), make([]int32, n)
	wantF, wantL := make([]int32, n), make([]int32, n)
	v.EqualRangeBatch(batchProbes, gotF, gotL)
	rv.EqualRangeBatch(batchProbes, wantF, wantL)
	if !slices.Equal(gotF, wantF) || !slices.Equal(gotL, wantL) {
		t.Fatalf("EqualRangeBatch diverges from rebuilt twin")
	}
}

func checkIterEqual(t *testing.T, got, want *RangeIter[uint32]) {
	t.Helper()
	for {
		gk, gp, gok := got.Next()
		wk, wp, wok := want.Next()
		if gok != wok || gk != wk || gp != wp {
			t.Fatalf("iterator diverges: got (%d,%d,%v) want (%d,%d,%v)", gk, gp, gok, wk, wp, wok)
		}
		if !gok {
			return
		}
	}
}

// snapKeys flattens the view's content for probe generation in tests.
func (v *View[K]) snapKeys() []K {
	var out []K
	for _, sn := range v.snaps {
		out = append(out, sn.mergedKeys()...)
	}
	return out
}

func TestDeltaDifferentialVsRebuilt(t *testing.T) {
	g := workload.New(7)
	rng := rand.New(rand.NewSource(7))
	keys := g.SortedWithDuplicates(4000, 3)
	for _, pol := range []DeltaPolicy{{}, smallBatchPolicy, {MaxRuns: 1, FoldDenominator: 16, MinFoldKeys: 1 << 20}} {
		x := NewEqual(keys, 4, LevelCSSBuilder(16))
		x.SetDeltaPolicy(pol)
		rebuilt := NewEqual(keys, 4, LevelCSSBuilder(16))
		rebuilt.SetDeltaPolicy(foldEveryBatch)
		o := &oracle{keys: slices.Clone(keys)}
		for round := 0; round < 24; round++ {
			switch {
			case round%11 == 10:
				// Occasional deletes: the delta layer routes any batch with
				// deletes through a full fold.
				del := []uint32{o.keys[rng.Intn(len(o.keys))], uint32(rng.Int63n(math.MaxUint32))}
				x.Delete(del...)
				rebuilt.Delete(del...)
				o.delete(del...)
			case round%7 == 6:
				x.Compact()
			default:
				ins := make([]uint32, 20+rng.Intn(60))
				for i := range ins {
					// Half collide with existing keys, half are fresh.
					if i%2 == 0 {
						ins[i] = o.keys[rng.Intn(len(o.keys))]
					} else {
						ins[i] = uint32(rng.Int63n(math.MaxUint32))
					}
				}
				x.Insert(ins...)
				rebuilt.Insert(ins...)
				o.insert(ins...)
			}
			x.Sync()
			rebuilt.Sync()
			probes := probesFor(o.keys, g)
			checkDeltaDifferential(t, x, rebuilt, probes)
			checkAgainstOracle(t, x, o, probes)
		}
		if x.DeltaStats().Appends == 0 && !pol.Disabled {
			t.Fatal("differential run never exercised the delta path")
		}
		x.Close()
		rebuilt.Close()
	}
}

func TestDeltaTierPolicy(t *testing.T) {
	g := workload.New(9)
	keys := g.SortedUniform(8000)
	x := NewEqual(keys, 2, LevelCSSBuilder(16))
	x.SetDeltaPolicy(DeltaPolicy{MaxRuns: 3, FoldDenominator: 8, MinFoldKeys: 1 << 20})
	defer x.Close()
	rng := rand.New(rand.NewSource(9))
	for batch := 0; batch < 12; batch++ {
		ins := make([]uint32, 16)
		for i := range ins {
			ins[i] = uint32(rng.Int63n(math.MaxUint32))
		}
		x.Insert(ins...)
		x.Sync()
		st := x.DeltaStats()
		// Tiering caps the per-shard run count: never above MaxRuns+1
		// transiently, and the stats aggregate across 2 shards.
		if st.Runs > 2*(3+1) {
			t.Fatalf("run count %d exceeds tier cap after batch %d", st.Runs, batch)
		}
	}
	st := x.DeltaStats()
	if st.Appends == 0 {
		t.Fatal("no delta appends recorded")
	}
	if st.RunMerges == 0 {
		t.Fatal("12 small batches over MaxRuns=3 never merged runs")
	}
	if st.Folds != 0 {
		t.Fatalf("fold threshold 1<<20 keys still folded %d times", st.Folds)
	}
	if st.DeltaKeys != 12*16 {
		t.Fatalf("DeltaKeys=%d want %d", st.DeltaKeys, 12*16)
	}
	if st.BaseKeys != 8000 {
		t.Fatalf("BaseKeys=%d want 8000", st.BaseKeys)
	}

	// Compact folds everything into the base runs.
	x.Compact()
	st = x.DeltaStats()
	if st.Runs != 0 || st.DeltaKeys != 0 {
		t.Fatalf("Compact left %d runs / %d delta keys", st.Runs, st.DeltaKeys)
	}
	if st.BaseKeys != 8000+12*16 {
		t.Fatalf("BaseKeys=%d after compact, want %d", st.BaseKeys, 8000+12*16)
	}
	if st.Folds == 0 {
		t.Fatal("Compact recorded no folds")
	}
	if got, want := x.Len(), 8000+12*16; got != want {
		t.Fatalf("Len=%d after compact, want %d", got, want)
	}
}

func TestDeltaFoldThreshold(t *testing.T) {
	g := workload.New(11)
	keys := g.SortedUniform(1000)
	x := NewEqual(keys, 1, LevelCSSBuilder(16))
	x.SetDeltaPolicy(DeltaPolicy{MaxRuns: 4, FoldDenominator: 4, MinFoldKeys: 64})
	defer x.Close()
	// 100 keys: below base/4 = 250, absorbed as a run.
	x.Insert(g.SortedUniform(100)...)
	x.Sync()
	if st := x.DeltaStats(); st.Folds != 0 || st.Runs != 1 {
		t.Fatalf("small batch should absorb: %+v", st)
	}
	// 200 more: cumulative 300 ≥ (1000+0)/4 — wait, threshold is against the
	// base; 300*4 = 1200 ≥ 1000, so this batch folds everything in.
	x.Insert(g.SortedUniform(200)...)
	x.Sync()
	if st := x.DeltaStats(); st.Folds != 1 || st.Runs != 0 || st.BaseKeys != 1300 {
		t.Fatalf("threshold crossing should fold: %+v", st)
	}
	// Deletes always fold, even when tiny.
	v := x.View()
	x.Insert(v.Key(0))
	x.Sync()
	if st := x.DeltaStats(); st.Runs != 1 {
		t.Fatalf("tiny insert should absorb: %+v", st)
	}
	x.Delete(v.Key(0))
	x.Sync()
	if st := x.DeltaStats(); st.Runs != 0 || st.Folds != 2 {
		t.Fatalf("delete should fold: %+v", st)
	}
}

func TestDeltaDisabledNeverAbsorbs(t *testing.T) {
	g := workload.New(13)
	x := NewEqual(g.SortedUniform(500), 2, LevelCSSBuilder(16))
	x.SetDeltaPolicy(foldEveryBatch)
	defer x.Close()
	for i := 0; i < 5; i++ {
		x.Insert(g.SortedUniform(10)...)
		x.Sync()
	}
	st := x.DeltaStats()
	if st.Appends != 0 || st.Runs != 0 || st.DeltaKeys != 0 {
		t.Fatalf("disabled policy still built delta runs: %+v", st)
	}
	if got, want := x.Len(), 550; got != want {
		t.Fatalf("Len=%d want %d", got, want)
	}
}

// TestConcurrentReadersDuringDeltaAbsorbs races scalar, positional, batch,
// and iterator readers against a writer doing small absorbing appends and
// periodic compactions.  Run with -race; correctness invariant per frozen
// View: monotone non-decreasing iteration, Key/LowerBound agreement, and
// batch results matching scalar results on the same View.
func TestConcurrentReadersDuringDeltaAbsorbs(t *testing.T) {
	g := workload.New(17)
	keys := g.SortedWithDuplicates(6000, 2)
	x := NewEqual(keys, 4, LevelCSSBuilder(16))
	x.SetDeltaPolicy(DeltaPolicy{MaxRuns: 3, FoldDenominator: 8, MinFoldKeys: 256})
	defer x.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	fail := func(msg string) {
		select {
		case errs <- msg:
		default:
		}
		stop.Store(true)
	}

	// Writer: absorbing appends with a Compact every few batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(18))
		for i := 0; i < 60 && !stop.Load(); i++ {
			ins := make([]uint32, 40)
			for j := range ins {
				ins[j] = uint32(rng.Int63n(math.MaxUint32))
			}
			x.Insert(ins...)
			x.Sync()
			if i%8 == 7 {
				x.Compact()
			}
		}
		stop.Store(true)
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				v := x.View()
				n := v.Len()
				if n == 0 {
					continue
				}
				// Iterator order and Key agreement over a random subrange.
				lo := uint32(rng.Int63n(math.MaxUint32))
				hi := lo + uint32(rng.Int63n(1<<28))
				it := v.Range(lo, hi)
				prev, first := uint32(0), true
				for {
					k, pos, ok := it.Next()
					if !ok {
						break
					}
					if !first && k < prev {
						fail("iterator went backwards under concurrent absorbs")
						return
					}
					if vk := v.Key(pos); vk != k {
						fail("Key(pos) disagrees with iterator")
						return
					}
					prev, first = k, false
				}
				// Batch vs scalar on the same frozen view.
				probes := make([]uint32, 64)
				for j := range probes {
					probes[j] = uint32(rng.Int63n(math.MaxUint32))
				}
				res := make([]int32, len(probes))
				v.LowerBoundBatch(probes, res)
				for j, p := range probes {
					if int(res[j]) != v.LowerBound(p) {
						fail("batch lower bound diverges from scalar on one view")
						return
					}
				}
			}
		}(int64(100 + r))
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if x.DeltaStats().Appends == 0 {
		t.Fatal("stress run never exercised the delta absorb path")
	}
}
