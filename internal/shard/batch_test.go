package shard_test

import (
	"sort"
	"testing"

	"cssidx/internal/parallel"
	"cssidx/internal/shard"
	"cssidx/internal/workload"
)

// batchOracle answers by definition on the sorted whole-key slice.
type batchOracle []uint32

func (o batchOracle) lowerBound(k uint32) int {
	return sort.Search(len(o), func(i int) bool { return o[i] >= k })
}
func (o batchOracle) search(k uint32) int {
	if i := o.lowerBound(k); i < len(o) && o[i] == k {
		return i
	}
	return -1
}
func (o batchOracle) equalRange(k uint32) (int, int) {
	f := o.lowerBound(k)
	l := f
	for l < len(o) && o[l] == k {
		l++
	}
	return f, l
}

func checkBatchAgainstOracle(t *testing.T, x *shard.Index[uint32], o batchOracle, probes []uint32) {
	t.Helper()
	out := make([]int32, len(probes))
	first := make([]int32, len(probes))
	last := make([]int32, len(probes))
	x.LowerBoundBatch(probes, out)
	for i, p := range probes {
		if int(out[i]) != o.lowerBound(p) {
			t.Fatalf("LowerBoundBatch[%d]=%d want %d (key %d)", i, out[i], o.lowerBound(p), p)
		}
	}
	x.SearchBatch(probes, out)
	for i, p := range probes {
		if int(out[i]) != o.search(p) {
			t.Fatalf("SearchBatch[%d]=%d want %d (key %d)", i, out[i], o.search(p), p)
		}
	}
	x.EqualRangeBatch(probes, first, last)
	for i, p := range probes {
		wf, wl := o.equalRange(p)
		if int(first[i]) != wf || int(last[i]) != wl {
			t.Fatalf("EqualRangeBatch[%d]=[%d,%d) want [%d,%d) (key %d)", i, first[i], last[i], wf, wl, p)
		}
	}
}

// TestBatchMatchesOracle drives both schedules over several shard counts and
// key shapes.
func TestBatchMatchesOracle(t *testing.T) {
	g := workload.New(91)
	for _, n := range []int{0, 1, 100, 5000} {
		keys := g.SortedWithDuplicates(n, 3)
		probes := append(g.Lookups(keys, 800), g.Misses(keys, 400)...)
		probes = append(probes, 0, ^uint32(0))
		if n == 0 {
			probes = []uint32{0, 5, ^uint32(0)}
		}
		for _, nshards := range []int{1, 3, 8} {
			for _, sched := range []shard.Schedule{shard.ScheduleAuto, shard.ScheduleInput, shard.ScheduleKeyOrdered} {
				for _, workers := range []int{1, 4} {
					x := shard.NewEqual(keys, nshards, shard.LevelCSSBuilder(16))
					x.SetBatchSchedule(sched)
					x.SetParallel(parallel.Options{Workers: workers, MinBatchPerWorker: 64})
					checkBatchAgainstOracle(t, x, batchOracle(keys), probes)
					x.Close()
				}
			}
		}
	}
}

// TestViewBatchSingleEpoch checks a batch against a frozen View is immune to
// epoch-swaps published mid-stream: the View's batched answers stay
// bit-identical to its own scalar answers even after updates land.
func TestViewBatchSingleEpoch(t *testing.T) {
	g := workload.New(92)
	keys := g.SortedDistinct(4000)
	x := shard.NewEqual(keys, 4, shard.LevelCSSBuilder(16))
	defer x.Close()
	v := x.View()
	probes := append(g.Lookups(keys, 500), g.Misses(keys, 200)...)
	x.Insert(g.Misses(keys, 300)...)
	x.Sync() // the live index moved on; v must not notice
	for _, sched := range []shard.Schedule{shard.ScheduleInput, shard.ScheduleKeyOrdered} {
		out := make([]int32, len(probes))
		v.WithSchedule(sched).LowerBoundBatch(probes, out)
		for i, p := range probes {
			if int(out[i]) != v.LowerBound(p) {
				t.Fatalf("view batch[%d]=%d, view scalar=%d (key %d)", i, out[i], v.LowerBound(p), p)
			}
		}
	}
}
