package shard

// The mutable delta layer under the epoch-swap cycle.  The paper's §2.3
// position — rebuild indexes from scratch after a batch of updates — is
// exactly right for large batches, but it makes small appends pay the full
// O(shard) merge + tree build no matter how few keys arrived: the append
// cliff.  The delta layer flattens the cliff the way in-memory LSM
// memtables do: a small insert batch is sorted into an immutable delta
// *run* (with min/max fences and a bloom filter) and published next to the
// unchanged base array and tree, so the epoch-swap costs O(batch log batch)
// instead of O(shard).  Reads serve the merged multiset base ∪ runs against
// one frozen snapshot — positions are ranks in the merged order, so every
// surface stays bit-identical to a fully rebuilt index.  A size-tiered
// schedule bounds read amplification: runs merge together past MaxRuns, and
// the whole delta folds into a fresh base (the original rebuild path) once
// it reaches 1/FoldDenominator of the base.  Deletes always fold — a
// tombstone layer would tax every read for a rare operation the OLAP cycle
// batches anyway.

import (
	"cmp"
	"slices"
	"sort"

	"cssidx/internal/bloom"
)

// DeltaPolicy tunes the delta layer's tiering.  The zero value means the
// defaults (enabled, 4 runs, fold at 1/8 of the base).
type DeltaPolicy struct {
	// Disabled restores the pre-delta behaviour: every batch folds into a
	// fresh base array and tree (the pure §2.3 cycle).
	Disabled bool
	// MaxRuns is the run count above which the runs merge into one
	// (read amplification bound).  0 means 4.
	MaxRuns int
	// FoldDenominator folds the delta into the base once
	// delta*FoldDenominator ≥ base.  0 means 8.
	FoldDenominator int
	// MinFoldKeys keeps tiny shards from folding on every batch: the delta
	// must also hold at least this many keys before a size-triggered fold.
	// 0 means 512.
	MinFoldKeys int
}

func (p DeltaPolicy) maxRuns() int {
	if p.MaxRuns <= 0 {
		return 4
	}
	return p.MaxRuns
}

func (p DeltaPolicy) foldDenom() int {
	if p.FoldDenominator <= 0 {
		return 8
	}
	return p.FoldDenominator
}

func (p DeltaPolicy) minFold() int {
	if p.MinFoldKeys <= 0 {
		return 512
	}
	return p.MinFoldKeys
}

// shouldFold reports whether a delta of deltaKeys over a base of baseKeys
// has reached the fold threshold.
func (p DeltaPolicy) shouldFold(deltaKeys, baseKeys int) bool {
	if p.Disabled {
		return true
	}
	return deltaKeys >= p.minFold() && deltaKeys*p.foldDenom() >= baseKeys
}

// DeltaStats snapshots the delta layer across all shards.
type DeltaStats struct {
	BaseKeys  int // keys in the immutable base arrays
	DeltaKeys int // keys in delta runs awaiting a fold
	Runs      int // delta runs across shards
	Appends   uint64
	RunMerges uint64
	Folds     uint64
}

// deltaRun is one immutable sorted insert batch: fences bound the key range
// (a probe outside [min,max] skips the run with two compares) and the bloom
// filter answers most absent membership probes without a binary search.
type deltaRun[K cmp.Ordered] struct {
	keys     []K
	min, max K
	filter   bloom.Filter[K]
}

func newDeltaRun[K cmp.Ordered](sorted []K) *deltaRun[K] {
	return &deltaRun[K]{
		keys:   sorted,
		min:    sorted[0],
		max:    sorted[len(sorted)-1],
		filter: bloom.Build(sorted),
	}
}

// lowerBound returns the number of run keys < key, fence-short-circuited.
func (r *deltaRun[K]) lowerBound(key K) int {
	if key <= r.min {
		return 0
	}
	if key > r.max {
		return len(r.keys)
	}
	return sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= key })
}

// upperBound returns the number of run keys ≤ key.
func (r *deltaRun[K]) upperBound(key K) int {
	if key < r.min {
		return 0
	}
	if key >= r.max {
		return len(r.keys)
	}
	return sort.Search(len(r.keys), func(i int) bool { return r.keys[i] > key })
}

// contains reports membership, bloom- and fence-filtered.
func (r *deltaRun[K]) contains(key K) bool {
	if key < r.min || key > r.max || !r.filter.May(key) {
		return false
	}
	lb := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= key })
	return lb < len(r.keys) && r.keys[lb] == key
}

// --- merged-snapshot read helpers -------------------------------------------
//
// A snapshot's logical content is the multiset base ∪ runs; positions are
// ranks in that merged order (ties resolve base first, then runs in run
// order — unobservable through keys, but fixed so counts compose).

// len returns the merged key count.
func (sn *snapshot[K]) len() int { return sn.total }

// lowerBound returns the merged rank of the smallest key ≥ key.
func (sn *snapshot[K]) lowerBound(key K) int {
	n := sn.tree.LowerBound(key)
	for _, r := range sn.runs {
		n += r.lowerBound(key)
	}
	return n
}

// search returns the merged rank of the leftmost occurrence of key, or -1.
func (sn *snapshot[K]) search(key K) int {
	base := sn.tree.Search(key)
	if len(sn.runs) == 0 {
		return base
	}
	d := 0
	hit := base >= 0
	for _, r := range sn.runs {
		d += r.lowerBound(key)
		hit = hit || r.contains(key)
	}
	if !hit {
		return -1
	}
	if base < 0 {
		base = sn.tree.LowerBound(key)
	}
	return base + d
}

// equalRange returns the merged half-open rank range of key.
func (sn *snapshot[K]) equalRange(key K) (first, last int) {
	first, last = sn.tree.EqualRange(key)
	for _, r := range sn.runs {
		first += r.lowerBound(key)
		last += r.upperBound(key)
	}
	return first, last
}

// arrays returns the sorted arrays composing the snapshot, base first.
func (sn *snapshot[K]) arrays() [][]K {
	out := make([][]K, 0, 1+len(sn.runs))
	out = append(out, sn.keys)
	for _, r := range sn.runs {
		out = append(out, r.keys)
	}
	return out
}

// selectKth returns the k-th smallest merged key (0-based rank-select).
// The k-th value v satisfies cntLess(v) ≤ k < cntLessEq(v) and is an
// element of some array, so each array is binary-searched for an element
// meeting the predicate — O(runs² · log²), fine for the cold Key path.
func (sn *snapshot[K]) selectKth(k int) K {
	arrays := sn.arrays()
	cntLess := func(v K) int {
		n := 0
		for _, a := range arrays {
			n += sort.Search(len(a), func(i int) bool { return a[i] >= v })
		}
		return n
	}
	cntLessEq := func(v K) int {
		n := 0
		for _, a := range arrays {
			n += sort.Search(len(a), func(i int) bool { return a[i] > v })
		}
		return n
	}
	for _, a := range arrays {
		j := sort.Search(len(a), func(i int) bool { return cntLessEq(a[i]) > k })
		if j < len(a) && cntLess(a[j]) <= k {
			return a[j]
		}
	}
	panic("shard: selectKth rank out of range")
}

// mergedKeys flattens the snapshot into one sorted array (fold input,
// snapshot serialization).  With no runs it returns the base array itself.
func (sn *snapshot[K]) mergedKeys() []K {
	if len(sn.runs) == 0 {
		return sn.keys
	}
	out := sn.keys
	for _, r := range sn.runs {
		out = mergeSorted(out, r.keys)
	}
	return out
}

// mergeSorted merges two sorted arrays (a's elements first on ties).
func mergeSorted[K cmp.Ordered](a, b []K) []K {
	out := make([]K, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// totalDelta sums the run sizes.
func totalDelta[K cmp.Ordered](runs []*deltaRun[K]) int {
	n := 0
	for _, r := range runs {
		n += len(r.keys)
	}
	return n
}

// absorb builds shard s's next snapshot from an insert-only batch under the
// tiering policy: publish a new run, merge the runs, or fold — whichever
// the thresholds pick.  Delete batches and disabled deltas fold (callers
// route them to fold directly).
func (x *Index[K]) absorb(old *snapshot[K], ins []K) *snapshot[K] {
	slices.Sort(ins)
	runs := make([]*deltaRun[K], 0, len(old.runs)+1)
	runs = append(runs, old.runs...)
	runs = append(runs, newDeltaRun(ins))
	delta := totalDelta(runs)
	if x.delta.shouldFold(delta, len(old.keys)) {
		return x.fold(old, ins, nil)
	}
	if len(runs) > x.delta.maxRuns() {
		merged := runs[0].keys
		for _, r := range runs[1:] {
			merged = mergeSorted(merged, r.keys)
		}
		runs = []*deltaRun[K]{newDeltaRun(merged)}
		x.runMerges.Add(1)
	}
	x.deltaAppends.Add(1)
	return &snapshot[K]{
		epoch: old.epoch + 1,
		keys:  old.keys,
		tree:  old.tree,
		runs:  runs,
		total: len(old.keys) + totalDelta(runs),
	}
}

// fold builds the next snapshot the pre-delta way: one merged sorted array
// (base ∪ runs ∪ ins, minus del) and a fresh tree over it.
func (x *Index[K]) fold(old *snapshot[K], ins, del []K) *snapshot[K] {
	keys := applyBatch(old.mergedKeys(), ins, del)
	x.folds.Add(1)
	return &snapshot[K]{epoch: old.epoch + 1, keys: keys, tree: x.build(keys), total: len(keys)}
}

// SetDeltaPolicy configures the delta layer (default: enabled with the
// DeltaPolicy zero-value thresholds).  Set before serving; it is read by
// the background rebuilder without synchronisation.
func (x *Index[K]) SetDeltaPolicy(p DeltaPolicy) { x.delta = p }

// DeltaPolicyConfigured returns the configured policy.
func (x *Index[K]) DeltaPolicyConfigured() DeltaPolicy { return x.delta }

// DeltaStats snapshots the delta layer across shards plus the lifetime
// tiering counters.
func (x *Index[K]) DeltaStats() DeltaStats {
	st := DeltaStats{
		Appends:   x.deltaAppends.Load(),
		RunMerges: x.runMerges.Load(),
		Folds:     x.folds.Load(),
	}
	for _, s := range x.shards {
		sn := s.cur.Load()
		st.BaseKeys += len(sn.keys)
		st.DeltaKeys += sn.total - len(sn.keys)
		st.Runs += len(sn.runs)
	}
	return st
}

// Compact folds every shard's outstanding delta runs into fresh base
// arrays and trees, after absorbing any pending batches, and blocks until
// the folds are published — the manual counterpart of the size-tiered
// fold.  After Close, Compact returns immediately.
func (x *Index[K]) Compact() {
	ack := make(chan struct{})
	select {
	case x.compacts <- ack:
		<-ack
	case <-x.done:
	}
}

// compactAll folds every shard that holds delta runs (background goroutine).
func (x *Index[K]) compactAll() {
	for _, s := range x.shards {
		old := s.cur.Load()
		if len(old.runs) == 0 {
			continue
		}
		s.cur.Store(x.fold(old, nil, nil))
	}
}
