package shard

// Serialization of a sharded index: the split boundaries plus each shard's
// sorted key array, captured from one frozen View.  Trees are NOT stored —
// the paper's position is that CSS directories rebuild cheaply from the
// sorted arrays (§5.2), so a restore re-runs the builder per shard and
// only the data that cannot be recomputed (boundaries, keys) travels.
// A checksum over the concatenated keys guards against corrupt or
// truncated snapshots restoring silently.
//
// Only uint32 key spaces are encodable: the on-disk format needs a fixed
// key width, and uint32 is the tuned fast path everywhere else too.

import (
	"encoding/binary"
	"fmt"
	"io"

	"cssidx/internal/qcache"
)

// Encoding constants.
const (
	shardEncMagic   = 0x43535348 // "CSSH"
	shardEncVersion = 1
)

// encChunk bounds the entries moved per read/write call: decoding
// allocates in chunk-sized steps that track bytes actually present, so a
// corrupt count in the header fails at EOF instead of ballooning memory,
// and encoding never stages more than one chunk of converted bytes.
const encChunk = 1 << 16

// readU32Chunked reads n little-endian uint32 values, appending to dst
// (which may be nil) chunk by chunk: peak extra memory is one chunk, and
// dst only grows as fast as r actually delivers bytes.
func readU32Chunked(r io.Reader, n uint64, dst []uint32) ([]uint32, error) {
	buf := make([]byte, 4*min(n, encChunk))
	for got := uint64(0); got < n; {
		step := min(n-got, encChunk)
		b := buf[:4*step]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for j := uint64(0); j < step; j++ {
			dst = append(dst, binary.LittleEndian.Uint32(b[4*j:]))
		}
		got += step
	}
	return dst, nil
}

// writeU32Chunked writes vals as little-endian uint32s through a bounded
// staging buffer (binary.Write would stage the whole slice at once).
func writeU32Chunked(w io.Writer, vals []uint32) error {
	buf := make([]byte, 4*min(uint64(len(vals)), encChunk))
	for off := 0; off < len(vals); off += encChunk {
		end := min(off+encChunk, len(vals))
		b := buf[:4*(end-off)]
		for j, v := range vals[off:end] {
			binary.LittleEndian.PutUint32(b[4*j:], v)
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// shardHeader is the fixed-size snapshot prefix.
type shardHeader struct {
	Magic    uint32
	Version  uint32
	Shards   uint32
	_        uint32 // alignment / reserved
	N        uint64 // total keys across shards
	KeysHash uint64
}

// hashKeys fingerprints the concatenated shard arrays with the shared
// FNV-1a primitive (internal/qcache).
func hashKeys(parts [][]uint32) uint64 {
	h := uint64(qcache.HashSeed)
	for _, keys := range parts {
		h = qcache.HashU32s(h, keys)
	}
	return h
}

// SaveU32 writes a restartable snapshot of the view's shard partition:
// boundaries, per-shard key counts, and each shard's sorted keys.  Capture
// the View first (Index.View) so the snapshot is one consistent cross-
// shard epoch set even while rebuilds keep publishing.
func SaveU32(w io.Writer, v *View[uint32]) error {
	parts := make([][]uint32, len(v.snaps))
	for i, s := range v.snaps {
		// mergedKeys flattens any delta runs the snapshot carries, so a
		// snapshot taken mid-delta still travels with every absorbed key.
		parts[i] = s.mergedKeys()
	}
	hd := shardHeader{
		Magic:    shardEncMagic,
		Version:  shardEncVersion,
		Shards:   uint32(len(parts)),
		N:        uint64(v.Len()),
		KeysHash: hashKeys(parts),
	}
	if err := binary.Write(w, binary.LittleEndian, hd); err != nil {
		return fmt.Errorf("shard: writing snapshot header: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, v.bounds); err != nil {
		return fmt.Errorf("shard: writing boundaries: %w", err)
	}
	lens := make([]uint64, len(parts))
	for i, keys := range parts {
		lens[i] = uint64(len(keys))
	}
	if err := binary.Write(w, binary.LittleEndian, lens); err != nil {
		return fmt.Errorf("shard: writing shard lengths: %w", err)
	}
	for _, keys := range parts {
		if err := writeU32Chunked(w, keys); err != nil {
			return fmt.Errorf("shard: writing shard keys: %w", err)
		}
	}
	return nil
}

// LoadU32 reads a snapshot written by SaveU32, returning the concatenated
// sorted keys and the split boundaries, validated (magic, version,
// checksum, boundary partition).  Rebuild the index with New(keys, bounds,
// builder) — each shard's tree is reconstructed from its array.
func LoadU32(r io.Reader) (keys, bounds []uint32, err error) {
	var hd shardHeader
	if err := binary.Read(r, binary.LittleEndian, &hd); err != nil {
		return nil, nil, fmt.Errorf("shard: reading snapshot header: %w", err)
	}
	if hd.Magic != shardEncMagic {
		return nil, nil, fmt.Errorf("shard: bad snapshot magic %#x", hd.Magic)
	}
	if hd.Version != shardEncVersion {
		return nil, nil, fmt.Errorf("shard: unsupported snapshot version %d", hd.Version)
	}
	if hd.Shards == 0 {
		return nil, nil, fmt.Errorf("shard: snapshot holds no shards")
	}
	// Sanity-cap the header counts before allocating from them, so a
	// corrupt header becomes an error instead of a multi-gigabyte
	// allocation.  Positions are int32 throughout the batch surfaces, so
	// more than MaxInt32 keys is unrepresentable anyway; the shard cap is
	// far above any real deployment (NewSharded defaults to ≤16).
	const maxShards = 1 << 20
	if hd.Shards > maxShards {
		return nil, nil, fmt.Errorf("shard: implausible shard count %d", hd.Shards)
	}
	if hd.N > 1<<31-1 {
		return nil, nil, fmt.Errorf("shard: implausible key count %d", hd.N)
	}
	bounds, err = readU32Chunked(r, uint64(hd.Shards-1), nil)
	if err != nil {
		return nil, nil, fmt.Errorf("shard: reading boundaries: %w", err)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, nil, fmt.Errorf("shard: snapshot boundaries not strictly ascending at %d", i)
		}
	}
	lens := make([]uint64, 0, min(uint64(hd.Shards), encChunk))
	var lenBuf [8]byte
	total := uint64(0)
	for i := uint32(0); i < hd.Shards; i++ {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return nil, nil, fmt.Errorf("shard: reading shard lengths: %w", err)
		}
		n := binary.LittleEndian.Uint64(lenBuf[:])
		total += n
		if total > hd.N {
			return nil, nil, fmt.Errorf("shard: shard lengths sum past header count %d", hd.N)
		}
		lens = append(lens, n)
	}
	if total != hd.N {
		return nil, nil, fmt.Errorf("shard: shard lengths sum to %d, header says %d", total, hd.N)
	}
	// Chunked decode: the key array grows only as fast as bytes arrive,
	// so hd.N (validated ≤ MaxInt32 but still attacker-chosen) cannot
	// force an allocation beyond ~2× the snapshot's real size.
	keys = make([]uint32, 0, min(total, encChunk))
	for i, n := range lens {
		if keys, err = readU32Chunked(r, n, keys); err != nil {
			return nil, nil, fmt.Errorf("shard: reading shard %d keys: %w", i, err)
		}
	}
	parts := make([][]uint32, hd.Shards)
	off := uint64(0)
	for i, n := range lens {
		parts[i] = keys[off : off+n]
		off += n
	}
	if hashKeys(parts) != hd.KeysHash {
		return nil, nil, fmt.Errorf("shard: snapshot checksum mismatch (corrupt or truncated)")
	}
	// The concatenation must be sorted and respect the boundaries, or the
	// rebuilt shards would disagree with the partition.
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return nil, nil, fmt.Errorf("shard: snapshot keys not sorted at %d", i)
		}
	}
	off = 0
	for i, n := range lens {
		if i > 0 && n > 0 && keys[off] < bounds[i-1] {
			return nil, nil, fmt.Errorf("shard: shard %d starts below its boundary", i)
		}
		if i < len(bounds) && n > 0 && keys[off+n-1] >= bounds[i] {
			return nil, nil, fmt.Errorf("shard: shard %d crosses its boundary", i)
		}
		off += n
	}
	return keys, bounds, nil
}
