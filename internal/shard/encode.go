package shard

// Serialization of a sharded index: the split boundaries plus each shard's
// sorted key array, captured from one frozen View.  Trees are NOT stored —
// the paper's position is that CSS directories rebuild cheaply from the
// sorted arrays (§5.2), so a restore re-runs the builder per shard and
// only the data that cannot be recomputed (boundaries, keys) travels.
// A checksum over the concatenated keys guards against corrupt or
// truncated snapshots restoring silently.
//
// Only uint32 key spaces are encodable: the on-disk format needs a fixed
// key width, and uint32 is the tuned fast path everywhere else too.

import (
	"encoding/binary"
	"fmt"
	"io"

	"cssidx/internal/qcache"
)

// Encoding constants.
const (
	shardEncMagic   = 0x43535348 // "CSSH"
	shardEncVersion = 1
)

// shardHeader is the fixed-size snapshot prefix.
type shardHeader struct {
	Magic    uint32
	Version  uint32
	Shards   uint32
	_        uint32 // alignment / reserved
	N        uint64 // total keys across shards
	KeysHash uint64
}

// hashKeys fingerprints the concatenated shard arrays with the shared
// FNV-1a primitive (internal/qcache).
func hashKeys(parts [][]uint32) uint64 {
	h := uint64(qcache.HashSeed)
	for _, keys := range parts {
		h = qcache.HashU32s(h, keys)
	}
	return h
}

// SaveU32 writes a restartable snapshot of the view's shard partition:
// boundaries, per-shard key counts, and each shard's sorted keys.  Capture
// the View first (Index.View) so the snapshot is one consistent cross-
// shard epoch set even while rebuilds keep publishing.
func SaveU32(w io.Writer, v *View[uint32]) error {
	parts := make([][]uint32, len(v.snaps))
	for i, s := range v.snaps {
		// mergedKeys flattens any delta runs the snapshot carries, so a
		// snapshot taken mid-delta still travels with every absorbed key.
		parts[i] = s.mergedKeys()
	}
	hd := shardHeader{
		Magic:    shardEncMagic,
		Version:  shardEncVersion,
		Shards:   uint32(len(parts)),
		N:        uint64(v.Len()),
		KeysHash: hashKeys(parts),
	}
	if err := binary.Write(w, binary.LittleEndian, hd); err != nil {
		return fmt.Errorf("shard: writing snapshot header: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, v.bounds); err != nil {
		return fmt.Errorf("shard: writing boundaries: %w", err)
	}
	lens := make([]uint64, len(parts))
	for i, keys := range parts {
		lens[i] = uint64(len(keys))
	}
	if err := binary.Write(w, binary.LittleEndian, lens); err != nil {
		return fmt.Errorf("shard: writing shard lengths: %w", err)
	}
	for _, keys := range parts {
		if err := binary.Write(w, binary.LittleEndian, keys); err != nil {
			return fmt.Errorf("shard: writing shard keys: %w", err)
		}
	}
	return nil
}

// LoadU32 reads a snapshot written by SaveU32, returning the concatenated
// sorted keys and the split boundaries, validated (magic, version,
// checksum, boundary partition).  Rebuild the index with New(keys, bounds,
// builder) — each shard's tree is reconstructed from its array.
func LoadU32(r io.Reader) (keys, bounds []uint32, err error) {
	var hd shardHeader
	if err := binary.Read(r, binary.LittleEndian, &hd); err != nil {
		return nil, nil, fmt.Errorf("shard: reading snapshot header: %w", err)
	}
	if hd.Magic != shardEncMagic {
		return nil, nil, fmt.Errorf("shard: bad snapshot magic %#x", hd.Magic)
	}
	if hd.Version != shardEncVersion {
		return nil, nil, fmt.Errorf("shard: unsupported snapshot version %d", hd.Version)
	}
	if hd.Shards == 0 {
		return nil, nil, fmt.Errorf("shard: snapshot holds no shards")
	}
	// Sanity-cap the header counts before allocating from them, so a
	// corrupt header becomes an error instead of a multi-gigabyte
	// allocation.  Positions are int32 throughout the batch surfaces, so
	// more than MaxInt32 keys is unrepresentable anyway; the shard cap is
	// far above any real deployment (NewSharded defaults to ≤16).
	const maxShards = 1 << 20
	if hd.Shards > maxShards {
		return nil, nil, fmt.Errorf("shard: implausible shard count %d", hd.Shards)
	}
	if hd.N > 1<<31-1 {
		return nil, nil, fmt.Errorf("shard: implausible key count %d", hd.N)
	}
	bounds = make([]uint32, hd.Shards-1)
	if err := binary.Read(r, binary.LittleEndian, bounds); err != nil {
		return nil, nil, fmt.Errorf("shard: reading boundaries: %w", err)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, nil, fmt.Errorf("shard: snapshot boundaries not strictly ascending at %d", i)
		}
	}
	lens := make([]uint64, hd.Shards)
	if err := binary.Read(r, binary.LittleEndian, lens); err != nil {
		return nil, nil, fmt.Errorf("shard: reading shard lengths: %w", err)
	}
	total := uint64(0)
	for _, n := range lens {
		total += n
	}
	if total != hd.N {
		return nil, nil, fmt.Errorf("shard: shard lengths sum to %d, header says %d", total, hd.N)
	}
	keys = make([]uint32, total)
	parts := make([][]uint32, hd.Shards)
	off := uint64(0)
	for i, n := range lens {
		parts[i] = keys[off : off+n]
		if err := binary.Read(r, binary.LittleEndian, parts[i]); err != nil {
			return nil, nil, fmt.Errorf("shard: reading shard %d keys: %w", i, err)
		}
		off += n
	}
	if hashKeys(parts) != hd.KeysHash {
		return nil, nil, fmt.Errorf("shard: snapshot checksum mismatch (corrupt or truncated)")
	}
	// The concatenation must be sorted and respect the boundaries, or the
	// rebuilt shards would disagree with the partition.
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return nil, nil, fmt.Errorf("shard: snapshot keys not sorted at %d", i)
		}
	}
	off = 0
	for i, n := range lens {
		if i > 0 && n > 0 && keys[off] < bounds[i-1] {
			return nil, nil, fmt.Errorf("shard: shard %d starts below its boundary", i)
		}
		if i < len(bounds) && n > 0 && keys[off+n-1] >= bounds[i] {
			return nil, nil, fmt.Errorf("shard: shard %d crosses its boundary", i)
		}
		off += n
	}
	return keys, bounds, nil
}
