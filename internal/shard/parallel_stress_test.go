package shard

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cssidx/internal/parallel"
	"cssidx/internal/workload"
)

// TestParallelBatchesDuringEpochSwaps is the race stress test for the
// parallel batch engine: reader goroutines drive batched probes — each batch
// itself fanned across the engine's worker pool, at every schedule — while
// the background rebuilder publishes epoch-swaps.  Run with -race.  Each
// batch is verified bit-identical to the scalar methods of the same frozen
// View, which is exactly the engine's correctness contract: one snapshot
// epoch per batch, regardless of workers, schedule, or concurrent rebuilds.
func TestParallelBatchesDuringEpochSwaps(t *testing.T) {
	const (
		readers   = 4
		rounds    = 25
		writeSize = 200
		probeSize = 2000
		minSwaps  = 50
	)
	g := workload.New(601)
	keys := g.SortedUniform(30000)
	x := NewEqual(keys, 4, LevelCSSBuilder(16))
	defer x.Close()
	// Force the pool on: more workers than cores, spans small enough that
	// every batch really fans out.
	x.SetParallel(parallel.Options{Workers: 4, MinBatchPerWorker: 128})

	stop := make(chan struct{})
	var batches atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan string, readers)
	fail := func(msg string) {
		select {
		case errc <- msg:
		default:
		}
	}
	scheds := []Schedule{ScheduleAuto, ScheduleInput, ScheduleKeyOrdered}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			probes := make([]uint32, probeSize)
			out := make([]int32, probeSize)
			first := make([]int32, probeSize)
			last := make([]int32, probeSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Mix of likely-hits and misses, with duplicate runs so the
				// Auto schedule flips between its branches across batches.
				hot := uint32(rng.Int63n(workload.MaxKey))
				for i := range probes {
					if rng.Intn(3) == 0 {
						probes[i] = hot
					} else {
						probes[i] = uint32(rng.Int63n(workload.MaxKey))
					}
				}
				v := x.View().WithSchedule(scheds[rng.Intn(len(scheds))])
				v.SearchBatch(probes, out)
				v.EqualRangeBatch(probes, first, last)
				// Spot-check against the same frozen view's scalar answers.
				for i := 0; i < 64; i++ {
					j := rng.Intn(probeSize)
					p := probes[j]
					if want := v.Search(p); int(out[j]) != want {
						fail("parallel SearchBatch diverged from scalar on one View")
						return
					}
					wf, wl := v.EqualRange(p)
					if int(first[j]) != wf || int(last[j]) != wl {
						fail("parallel EqualRangeBatch diverged from scalar on one View")
						return
					}
				}
				batches.Add(1)
			}
		}(int64(r + 1))
	}

	// Keep publishing swaps until the readers have verified real work —
	// delta absorbs make a round far cheaper than a reader batch, so a
	// fixed round count alone can finish before any batch completes.
	// Overtime rounds sleep so a spinning writer cannot starve the readers
	// on a small GOMAXPROCS.
	rng := rand.New(rand.NewSource(77))
	for round := 0; round < rounds || batches.Load() < int64(readers); round++ {
		if round >= rounds {
			time.Sleep(time.Millisecond)
		}
		batch := make([]uint32, writeSize)
		for i := range batch {
			batch[i] = uint32(rng.Int63n(workload.MaxKey))
		}
		x.Insert(batch...)
		x.Sync()
		x.Delete(batch...)
		x.Sync()
	}
	close(stop)
	wg.Wait()

	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
	swaps := uint64(0)
	for _, e := range x.Epochs() {
		swaps += e - 1
	}
	if swaps < minSwaps {
		t.Fatalf("only %d epoch-swaps published, want ≥ %d", swaps, minSwaps)
	}
	if batches.Load() == 0 {
		t.Fatal("readers completed no batches")
	}
	t.Logf("%d parallel batches verified over %d epoch-swaps", batches.Load(), swaps)
}

// TestAdaptiveScheduleChoice pins the duplicate-density estimator: a uniform
// batch stays input-order, a hot-key batch flips to key-ordered, and small
// batches never sort.
func TestAdaptiveScheduleChoice(t *testing.T) {
	g := workload.New(602)
	uniform := g.SortedDistinct(8192) // distinct values, shuffled below
	shuffled := make([]uint32, len(uniform))
	copy(shuffled, uniform)
	rng := rand.New(rand.NewSource(5))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	if chooseKeyOrder(ScheduleAuto, shuffled) {
		t.Error("uniform distinct batch chose the sorted schedule")
	}
	skewed := make([]uint32, 8192)
	for i := range skewed {
		skewed[i] = uint32(i % 7) // 7 hot values
	}
	if !chooseKeyOrder(ScheduleAuto, skewed) {
		t.Error("hot-key batch did not choose the sorted schedule")
	}
	tiny := skewed[:adaptiveMinBatch-1]
	if chooseKeyOrder(ScheduleAuto, tiny) {
		t.Error("sub-threshold batch chose the sorted schedule")
	}
	// Manual overrides ignore the estimate entirely.
	if chooseKeyOrder(ScheduleInput, skewed) {
		t.Error("ScheduleInput sorted anyway")
	}
	if !chooseKeyOrder(ScheduleKeyOrdered, shuffled) {
		t.Error("ScheduleKeyOrdered did not sort")
	}
}
