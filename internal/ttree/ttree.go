// Package ttree implements the T-tree of Lehman & Carey [LC86a] in the
// improved variant of [LC86b], the main-memory index the paper re-evaluates
// (§3.3, §6.2).
//
// A T-tree is a balanced binary tree whose nodes hold many adjacent
// ⟨key,RID⟩ pairs.  Search in the improved variant compares the probe with
// only the *smallest* key of each node while descending, remembering the
// last node whose minimum is below the probe, and binary-searches that
// single candidate node at the end — one comparison per node instead of two.
//
// The paper's §3.3 analysis, which this package lets you verify empirically:
// although a node holds m keys, each node visit uses just the boundary
// key(s), so a T-tree does the same log₂ n comparisons as binary search with
// essentially one cache miss per comparison — node size buys no cache
// benefit.  It also stores a record pointer per key plus two child pointers
// per node, giving it the largest footprint of all the tree methods
// (Figure 7).
//
// Following the paper we avoid parent pointers and, mirroring the "child
// pointers adjacent to the smallest key" layout trick, the per-node minimum
// and child links live in small parallel arrays so the descent touches one
// compact region per node.
package ttree

import (
	"fmt"

	"cssidx/internal/mem"
)

// nilNode marks an absent child.
const nilNode = int32(-1)

// Tree is a bulk-built, search-only T-tree.  Build one with Build.
type Tree struct {
	// Descent state, one entry per node: the smallest key plus both child
	// links — everything the improved search touches until the final node.
	minKey []uint32
	left   []int32
	right  []int32

	// Node contents: node i holds pairs [start[i], start[i]+count[i]) of the
	// indexed array, copied into the keys/rids arenas (the T-tree owns its
	// data; this is the space overhead of Figure 7).
	start []int32
	count []int32
	keys  []uint32
	rids  []uint32

	chunkNode []int32 // chunk number → node id
	capacity  int     // pairs per node
	root      int32
	n         int
}

// Build constructs a balanced T-tree over the sorted slice keys with the
// given node capacity in ⟨key,RID⟩ pairs ("entries per node" in the paper's
// Figures 12–13).  RIDs are positions in keys.  capacity ≥ 2.
func Build(keys []uint32, capacity int) *Tree {
	if capacity < 2 {
		panic(fmt.Sprintf("ttree: node capacity %d too small", capacity))
	}
	n := len(keys)
	t := &Tree{capacity: capacity, root: nilNode, n: n}
	if n == 0 {
		return t
	}
	chunks := mem.CeilDiv(n, capacity)
	t.minKey = make([]uint32, chunks)
	t.left = make([]int32, chunks)
	t.right = make([]int32, chunks)
	t.start = make([]int32, chunks)
	t.count = make([]int32, chunks)
	t.keys = mem.AlignedU32(chunks*capacity, mem.CacheLine)
	t.rids = make([]uint32, chunks*capacity)

	// Chunk c covers keys[c*capacity : …]; a balanced BST over chunk
	// numbers preserves the T-tree ordering invariant because chunks are
	// consecutive key ranges.
	next := int32(0)
	var build func(loChunk, hiChunk int) int32
	build = func(loChunk, hiChunk int) int32 {
		if loChunk >= hiChunk {
			return nilNode
		}
		mid := (loChunk + hiChunk) / 2
		id := next
		next++
		lo := mid * capacity
		hi := lo + capacity
		if hi > n {
			hi = n
		}
		t.start[id] = int32(lo)
		t.count[id] = int32(hi - lo)
		t.minKey[id] = keys[lo]
		base := int(id) * capacity
		for i := lo; i < hi; i++ {
			t.keys[base+i-lo] = keys[i]
			t.rids[base+i-lo] = uint32(i)
		}
		t.left[id] = build(loChunk, mid)
		t.right[id] = build(mid+1, hiChunk)
		return id
	}
	t.root = build(0, chunks)
	t.chunkNode = make([]int32, chunks)
	for id := range t.start {
		t.chunkNode[int(t.start[id])/capacity] = int32(id)
	}
	return t
}

// Search returns the RID (sorted-array index) of the leftmost occurrence of
// key and true, or 0,false if absent.
func (t *Tree) Search(key uint32) (uint32, bool) {
	i := t.LowerBound(key)
	if i >= t.n {
		return 0, false
	}
	node, off := t.locate(i)
	if t.keys[int(node)*t.capacity+off] == key {
		return uint32(i), true
	}
	return 0, false
}

// LowerBound returns the smallest sorted-array index whose key is ≥ key,
// or n.  This is the improved [LC86b] descent: one min-key comparison per
// node, then a single bounded node search.
func (t *Tree) LowerBound(key uint32) int {
	candidate := nilNode
	cur := t.root
	for cur != nilNode {
		if key <= t.minKey[cur] {
			cur = t.left[cur]
		} else {
			candidate = cur
			cur = t.right[cur]
		}
	}
	if candidate == nilNode {
		// key ≤ global minimum (or the tree is empty).
		return 0
	}
	// candidate is the last node with min < key; previous chunks are all
	// strictly below key, so the global lower bound is in this node or
	// immediately after it.
	base := int(candidate) * t.capacity
	cnt := int(t.count[candidate])
	lo, hi := 0, cnt
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.keys[base+mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int(t.start[candidate]) + lo
}

// SearchBasic is the original [LC86a] descent — min and max compared at
// every node — kept for the improved-vs-basic ablation.
func (t *Tree) SearchBasic(key uint32) (uint32, bool) {
	cur := t.root
	for cur != nilNode {
		base := int(cur) * t.capacity
		cnt := int(t.count[cur])
		switch {
		case key < t.minKey[cur]:
			cur = t.left[cur]
		case key > t.keys[base+cnt-1]:
			cur = t.right[cur]
		default:
			for i := 0; i < cnt; i++ {
				if t.keys[base+i] == key {
					return t.rids[base+i], true
				}
			}
			return 0, false
		}
	}
	return 0, false
}

// EqualRange returns [first,last) of sorted-array indexes equal to key.
func (t *Tree) EqualRange(key uint32) (first, last int) {
	first = t.LowerBound(key)
	last = first
	for last < t.n {
		node, off := t.locate(last)
		if t.keys[int(node)*t.capacity+off] != key {
			break
		}
		last++
	}
	return first, last
}

// locate maps a sorted-array index to (node, offset within node).  Chunks
// are laid out in index order; chunkNode resolves which preorder-allocated
// node owns a chunk.
func (t *Tree) locate(i int) (int32, int) {
	return t.chunkNode[i/t.capacity], i % t.capacity
}

// InOrder appends all keys in sorted order to dst and returns it — the
// paper's §3.6 duplicate enumeration via in-order traversal, and the
// invariant check that the tree really is a T-tree.
func (t *Tree) InOrder(dst []uint32) []uint32 {
	var walk func(id int32)
	walk = func(id int32) {
		if id == nilNode {
			return
		}
		walk(t.left[id])
		base := int(id) * t.capacity
		for i := 0; i < int(t.count[id]); i++ {
			dst = append(dst, t.keys[base+i])
		}
		walk(t.right[id])
	}
	walk(t.root)
	return dst
}

// SpaceBytes returns the structure's footprint: copied keys, record
// pointers, child links, per-node bookkeeping — the paper's point that
// "essentially half of the space in each node is wasted" on RIDs.
func (t *Tree) SpaceBytes() int {
	return mem.SliceBytes(t.keys) + 4*len(t.rids) +
		4*(len(t.minKey)+len(t.left)+len(t.right)+len(t.start)+len(t.count))
}

// Levels returns the depth of the node tree (longest root-to-leaf path in
// nodes).
func (t *Tree) Levels() int {
	var depth func(id int32) int
	depth = func(id int32) int {
		if id == nilNode {
			return 0
		}
		l, r := depth(t.left[id]), depth(t.right[id])
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return depth(t.root)
}

// Capacity returns the node capacity in pairs.
func (t *Tree) Capacity() int { return t.capacity }

// Len returns the number of indexed keys.
func (t *Tree) Len() int { return t.n }

// String describes the tree for diagnostics.
func (t *Tree) String() string {
	return fmt.Sprintf("T-tree{n=%d capacity=%d nodes=%d levels=%d space=%s}",
		t.n, t.capacity, len(t.start), t.Levels(), mem.Bytes(t.SpaceBytes()))
}
