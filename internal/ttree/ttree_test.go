package ttree

import (
	"sort"
	"testing"
	"testing/quick"

	"cssidx/internal/workload"
)

func refLowerBound(a []uint32, key uint32) int {
	return sort.Search(len(a), func(i int) bool { return a[i] >= key })
}

func TestExhaustiveSmallArrays(t *testing.T) {
	for _, capacity := range []int{2, 3, 7, 8, 16} {
		for n := 0; n <= 130; n++ {
			keys := make([]uint32, n)
			for i := range keys {
				keys[i] = uint32(3*i + 5)
			}
			tr := Build(keys, capacity)
			probes := []uint32{0, ^uint32(0)}
			for _, k := range keys {
				probes = append(probes, k, k-1, k+1)
			}
			for _, p := range probes {
				want := refLowerBound(keys, p)
				if got := tr.LowerBound(p); got != want {
					t.Fatalf("cap=%d n=%d: LowerBound(%d)=%d, want %d", capacity, n, p, got, want)
				}
			}
		}
	}
}

func TestSearchFoundAndMissing(t *testing.T) {
	g := workload.New(50)
	keys := g.SortedDistinct(20000)
	for _, capacity := range []int{7, 14, 30, 62} {
		tr := Build(keys, capacity)
		for _, k := range g.Lookups(keys, 2000) {
			rid, ok := tr.Search(k)
			if !ok || keys[rid] != k {
				t.Fatalf("cap=%d: Search(%d)=(%d,%v)", capacity, k, rid, ok)
			}
		}
		for _, k := range g.Misses(keys, 2000) {
			if _, ok := tr.Search(k); ok {
				t.Fatalf("cap=%d: found absent key %d", capacity, k)
			}
		}
	}
}

func TestBasicSearchAgreesWithImproved(t *testing.T) {
	g := workload.New(51)
	keys := g.SortedDistinct(10000)
	tr := Build(keys, 14)
	probes := append(g.Lookups(keys, 2000), g.Misses(keys, 2000)...)
	for _, k := range probes {
		ridI, okI := tr.Search(k)
		ridB, okB := tr.SearchBasic(k)
		if okI != okB {
			t.Fatalf("Search(%d): improved ok=%v basic ok=%v", k, okI, okB)
		}
		if okI && ridI != ridB {
			t.Fatalf("Search(%d): improved rid=%d basic rid=%d", k, ridI, ridB)
		}
	}
}

func TestLeftmostDuplicate(t *testing.T) {
	g := workload.New(52)
	keys := g.SortedWithDuplicates(30000, 8)
	tr := Build(keys, 14)
	for _, k := range g.Lookups(keys, 3000) {
		rid, ok := tr.Search(k)
		want := refLowerBound(keys, k)
		if !ok || int(rid) != want {
			t.Fatalf("Search(%d)=(%d,%v), want leftmost %d", k, rid, ok, want)
		}
	}
}

func TestDuplicateRunsSpanningChunks(t *testing.T) {
	keys := make([]uint32, 1000)
	for i := range keys {
		switch {
		case i < 300:
			keys[i] = 10
		case i < 700:
			keys[i] = 20
		default:
			keys[i] = 30
		}
	}
	tr := Build(keys, 7)
	if got, ok := tr.Search(10); !ok || got != 0 {
		t.Errorf("Search(10)=(%d,%v)", got, ok)
	}
	if got, ok := tr.Search(20); !ok || got != 300 {
		t.Errorf("Search(20)=(%d,%v)", got, ok)
	}
	if got, ok := tr.Search(30); !ok || got != 700 {
		t.Errorf("Search(30)=(%d,%v)", got, ok)
	}
	if _, ok := tr.Search(15); ok {
		t.Error("found absent 15")
	}
	f, l := tr.EqualRange(20)
	if f != 300 || l != 700 {
		t.Errorf("EqualRange(20)=[%d,%d)", f, l)
	}
}

func TestInOrderIsSorted(t *testing.T) {
	g := workload.New(53)
	for _, n := range []int{0, 1, 5, 100, 9999} {
		keys := g.SortedWithDuplicates(n, 3)
		tr := Build(keys, 7)
		got := tr.InOrder(nil)
		if len(got) != len(keys) {
			t.Fatalf("n=%d: InOrder returned %d keys", n, len(got))
		}
		for i := range got {
			if got[i] != keys[i] {
				t.Fatalf("n=%d: InOrder[%d]=%d, want %d", n, i, got[i], keys[i])
			}
		}
	}
}

func TestBalancedDepth(t *testing.T) {
	g := workload.New(54)
	keys := g.SortedDistinct(100000)
	tr := Build(keys, 14)
	// ~7143 chunks → balanced depth ⌈log₂ 7143⌉+… ≤ 14.
	if d := tr.Levels(); d > 14 {
		t.Errorf("depth %d too deep for balanced tree over %d chunks", d, 100000/14)
	}
}

func TestQuickProperty(t *testing.T) {
	f := func(raw []uint16, probe uint16) bool {
		keys := make([]uint32, len(raw))
		for i, v := range raw {
			keys[i] = uint32(v)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		tr := Build(keys, 4)
		return tr.LowerBound(uint32(probe)) == refLowerBound(keys, uint32(probe))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	tr := Build(nil, 8)
	if _, ok := tr.Search(5); ok {
		t.Error("found key in empty tree")
	}
	if got := tr.LowerBound(5); got != 0 {
		t.Errorf("empty LowerBound=%d", got)
	}
	tr = Build([]uint32{42}, 8)
	if rid, ok := tr.Search(42); !ok || rid != 0 {
		t.Errorf("single: (%d,%v)", rid, ok)
	}
}

func TestBuildPanicsOnBadCapacity(t *testing.T) {
	for _, c := range []int{-1, 0, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("capacity=%d: expected panic", c)
				}
			}()
			Build([]uint32{1}, c)
		}()
	}
}

func TestSpaceIncludesRIDs(t *testing.T) {
	// §3.3: a T-tree stores a record pointer per key — space ≥ 8 bytes/key.
	g := workload.New(55)
	keys := g.SortedDistinct(50000)
	tr := Build(keys, 14)
	if tr.SpaceBytes() < 8*len(keys) {
		t.Errorf("space %d below keys+RIDs floor %d", tr.SpaceBytes(), 8*len(keys))
	}
}

func TestBoundaryKeys(t *testing.T) {
	keys := []uint32{0, 0, 1, ^uint32(0) - 1, ^uint32(0), ^uint32(0)}
	tr := Build(keys, 2)
	if rid, ok := tr.Search(0); !ok || rid != 0 {
		t.Errorf("Search(0)=(%d,%v)", rid, ok)
	}
	if rid, ok := tr.Search(^uint32(0)); !ok || rid != 4 {
		t.Errorf("Search(max)=(%d,%v)", rid, ok)
	}
	if got := tr.LowerBound(2); got != 3 {
		t.Errorf("LowerBound(2)=%d", got)
	}
}
