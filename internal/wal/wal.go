// Package wal is a checksummed, length-prefixed, group-committed
// write-ahead log: the durability layer under the delta-absorbing write
// paths (mmdb AppendRows, sharded Insert).  A batch is appended to the
// log — and fsynced per the configured policy — before the in-memory
// structures absorb it, so a crash between snapshots loses nothing the
// policy promised to keep.
//
// # File format
//
// A log is one append-only file:
//
//	header:  magic u32 | version u32 | baseSeq u64 | crc u32     (20 bytes)
//	record:  len u32 | crc u32 | seq u64 | payload (len bytes)
//
// Every integer is little-endian.  A record's crc (CRC-32C) covers seq
// and payload; the header crc covers the fields before it.  Sequence
// numbers are assigned by the log, start at baseSeq, and increase by one
// per record; they never restart, even across checkpoint truncations
// (the fresh header carries the next seq as its baseSeq), so a snapshot
// can name the exact prefix of the log it absorbed and recovery replays
// only records after it.
//
// # Recovery
//
// Open replays the log front to back.  The first record that fails its
// checksum, runs past the end of the file, or breaks the sequence marks
// the torn tail: everything before it is returned, the tail is truncated
// off (and the truncation synced) so the log is clean for new appends.
// This is exactly the write-ahead discipline of ARIES-style logging
// specialised to redo-only, append-only batches: no undo is ever needed
// because nothing is acknowledged out of order and replay is cut at the
// first hole.
//
// # Durability policies
//
//   - ModeAlways: Append returns only after the record is fsynced — an
//     acknowledged batch is durable, full stop.
//   - ModeGroup: Append returns after the buffered write; the log fsyncs
//     when Policy.Bytes of unsynced records accumulate and/or every
//     Policy.Interval from a background flusher (group commit).  A crash
//     loses at most the unsynced suffix of acknowledged batches — never
//     a prefix, never a torn batch.
//   - ModeNone: the log fsyncs only on Checkpoint, Sync and Close.
//     After a crash the log still recovers to a clean acknowledged
//     prefix (whatever the OS happened to flush), but promises nothing.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sync"
	"time"

	"cssidx/internal/failfs"
	"cssidx/internal/telemetry"
)

// Encoding constants.
const (
	logMagic   = 0x43535357 // "CSSW"
	logVersion = 1

	headerSize = 20
	recHdrSize = 16

	// maxRecord caps a single record's payload: replay rejects larger
	// length prefixes as corruption even when the file claims to be big
	// enough, and Append refuses to write them.
	maxRecord = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrTooLarge is returned by Append for payloads over maxRecord bytes.
var ErrTooLarge = errors.New("wal: record too large")

// Mode selects when an appended record is fsynced.
type Mode int

const (
	// ModeGroup acknowledges after the buffered write and group-commits
	// on the policy's byte/time bounds (the zero value: the sane
	// default for sustained ingest).
	ModeGroup Mode = iota
	// ModeAlways fsyncs every Append before acknowledging.
	ModeAlways
	// ModeNone never fsyncs on Append; only Checkpoint/Sync/Close do.
	ModeNone
)

func (m Mode) String() string {
	switch m {
	case ModeAlways:
		return "always"
	case ModeNone:
		return "none"
	default:
		return "group"
	}
}

// Policy is a Mode plus the group-commit bounds.
type Policy struct {
	Mode Mode
	// Interval, for ModeGroup, runs a background flusher syncing every
	// Interval while unsynced records exist.  0 disables the timer
	// (deterministic: syncs happen only on the Bytes bound or explicit
	// Sync/Checkpoint/Close — what the crash harness uses).
	Interval time.Duration
	// Bytes, for ModeGroup, syncs inline once at least this many
	// unsynced record bytes accumulate.  0 disables the bound.
	Bytes int
}

// Always returns the every-append-durable policy.
func Always() Policy { return Policy{Mode: ModeAlways} }

// None returns the checkpoint-only-durability policy.
func None() Policy { return Policy{Mode: ModeNone} }

// GroupCommit returns a group-commit policy syncing at least every
// interval and every 1 MiB of records, whichever comes first.
func GroupCommit(interval time.Duration) Policy {
	return Policy{Mode: ModeGroup, Interval: interval, Bytes: 1 << 20}
}

// GroupBytes returns a timerless group-commit policy syncing once n
// unsynced bytes accumulate: fully deterministic, for tests and
// harnesses that enumerate every filesystem operation.
func GroupBytes(n int) Policy { return Policy{Mode: ModeGroup, Bytes: n} }

// Record is one replayed log entry.
type Record struct {
	Seq     uint64
	Payload []byte
}

// Log is an open write-ahead log.  All methods are safe for concurrent
// use; concurrent Appends are serialized and, under ModeGroup, share
// fsyncs.
type Log struct {
	fsys failfs.FS
	path string
	pol  Policy

	mu           sync.Mutex
	f            failfs.File
	size         int64  // current on-disk size (valid bytes)
	nextSeq      uint64 // seq the next Append takes
	synced       uint64 // last seq known durable (0 = none)
	unsynced     int    // record bytes written since the last sync
	unsyncedRecs int    // records written since the last sync
	err          error  // sticky: a failed sync/append poisons the log
	closed       bool

	flushStop chan struct{}
	flushDone chan struct{}
}

// Open opens (creating if missing) the log at path and replays it,
// returning every intact record after the header's base sequence.  A
// torn tail — short record, checksum mismatch, sequence break — is
// truncated off and the truncation synced, so the returned records are
// exactly the durable, contiguous acknowledged prefix and the log is
// clean for new appends.
//
// A missing, empty, or torn-before-first-sync file (its header never
// became durable, so no record can have been) is initialised fresh.  A
// file whose header is intact but names a different magic or version is
// refused — it is some other file, not a torn log.
func Open(fsys failfs.FS, path string, pol Policy) (*Log, []Record, error) {
	if fsys == nil {
		fsys = failfs.OS
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	l := &Log{fsys: fsys, path: path, pol: pol, f: f}
	recs, err := l.replay()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if pol.Mode == ModeGroup && pol.Interval > 0 {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop(pol.Interval)
	}
	return l, recs, nil
}

// replay validates the header, scans the records, truncates the torn
// tail, and leaves the log positioned for appending.
func (l *Log) replay() ([]Record, error) {
	size, err := l.f.Size()
	if err != nil {
		return nil, fmt.Errorf("wal: sizing %s: %w", l.path, err)
	}

	var hdr [headerSize]byte
	fresh := false
	if size < headerSize {
		fresh = true
	} else {
		if _, err := io.ReadFull(l.f, hdr[:]); err != nil {
			return nil, fmt.Errorf("wal: reading header: %w", err)
		}
		crc := crc32.Checksum(hdr[:16], crcTable)
		magicOK := binary.LittleEndian.Uint32(hdr[0:4]) == logMagic
		switch {
		case crc == binary.LittleEndian.Uint32(hdr[16:20]):
			if !magicOK {
				return nil, fmt.Errorf("wal: %s is not a write-ahead log (magic %#x)", l.path, binary.LittleEndian.Uint32(hdr[0:4]))
			}
			if v := binary.LittleEndian.Uint32(hdr[4:8]); v != logVersion {
				return nil, fmt.Errorf("wal: unsupported log version %d", v)
			}
		case magicOK:
			// Right magic, bad checksum: a torn header.  It can only
			// mean the header never became durable — records are
			// written after it and synced with or after it — so
			// nothing durable is lost by starting over.  (The caller
			// re-bases the sequence past its snapshot via Advance.)
			fresh = true
		default:
			return nil, fmt.Errorf("wal: %s is not a write-ahead log (magic %#x)", l.path, binary.LittleEndian.Uint32(hdr[0:4]))
		}
	}
	if fresh {
		if err := l.reset(1); err != nil {
			return nil, err
		}
		return nil, nil
	}

	baseSeq := binary.LittleEndian.Uint64(hdr[8:16])
	if baseSeq == 0 {
		baseSeq = 1
	}
	l.nextSeq = baseSeq

	// Scan records.  Allocation is capped by construction: a payload is
	// only read when its length prefix fits inside the file.
	var (
		recs []Record
		off  = int64(headerSize)
		rh   [recHdrSize]byte
	)
	for off+recHdrSize <= size {
		if _, err := io.ReadFull(l.f, rh[:]); err != nil {
			break // short read inside a claimed-full region: torn
		}
		n := int64(binary.LittleEndian.Uint32(rh[0:4]))
		crc := binary.LittleEndian.Uint32(rh[4:8])
		seq := binary.LittleEndian.Uint64(rh[8:16])
		if n > maxRecord || off+recHdrSize+n > size {
			break // length runs past the file: torn
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(l.f, payload); err != nil {
			break
		}
		sum := crc32.Checksum(rh[8:16], crcTable)
		sum = crc32.Update(sum, crcTable, payload)
		if sum != crc {
			break // checksum mismatch: torn or corrupt
		}
		if seq != l.nextSeq {
			break // sequence break: treat like a torn tail
		}
		recs = append(recs, Record{Seq: seq, Payload: payload})
		l.nextSeq = seq + 1
		off += recHdrSize + n
	}
	if off < size {
		if err := l.f.Truncate(off); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return nil, fmt.Errorf("wal: syncing truncation: %w", err)
		}
	}
	l.size = off
	l.synced = l.nextSeq - 1 // everything replayed (or checkpointed) is on disk
	return recs, nil
}

// reset truncates the file and writes a fresh durable header carrying
// baseSeq; l.mu is held (or the log is not yet shared).
func (l *Log) reset(baseSeq uint64) error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: resetting log: %w", err)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], logMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], logVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], baseSeq)
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.Checksum(hdr[:16], crcTable))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: writing header: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing header: %w", err)
	}
	if err := l.fsys.SyncDir(filepath.Dir(l.path)); err != nil {
		return fmt.Errorf("wal: syncing directory: %w", err)
	}
	l.size = headerSize
	l.nextSeq = baseSeq
	l.synced = baseSeq - 1
	l.unsynced = 0
	l.unsyncedRecs = 0
	return nil
}

// Append logs one batch payload and returns its sequence number.  When
// it returns nil the record is on disk per the policy: fsynced under
// ModeAlways, buffered (durable within the group-commit bounds) under
// ModeGroup, buffered until the next checkpoint under ModeNone.  A
// failed write or sync poisons the log — later Appends return the same
// error — because once durability is unknown nothing further may be
// acknowledged.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > maxRecord {
		return 0, ErrTooLarge
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	seq := l.nextSeq
	buf := make([]byte, recHdrSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	copy(buf[recHdrSize:], payload)
	sum := crc32.Checksum(buf[8:16], crcTable)
	sum = crc32.Update(sum, crcTable, payload)
	binary.LittleEndian.PutUint32(buf[4:8], sum)

	if _, err := l.f.Write(buf); err != nil {
		// The write may have partially landed; roll the file back so
		// the log stays contiguous.  If even that fails, poison.
		if terr := l.f.Truncate(l.size); terr != nil {
			l.err = fmt.Errorf("wal: append failed (%v) and rollback failed: %w", err, terr)
			return 0, l.err
		}
		return 0, fmt.Errorf("wal: appending record: %w", err)
	}
	l.size += int64(len(buf))
	l.unsynced += len(buf)
	l.unsyncedRecs++
	l.nextSeq = seq + 1
	ctrAppends.Inc()
	ctrBytes.Add(uint64(len(buf)))

	switch l.pol.Mode {
	case ModeAlways:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case ModeGroup:
		if l.pol.Bytes > 0 && l.unsynced >= l.pol.Bytes {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	return seq, nil
}

// syncLocked fsyncs the file and advances the durable watermark; a
// failure poisons the log.  l.mu held.
func (l *Log) syncLocked() error {
	if l.unsynced == 0 {
		return nil
	}
	start := telemetry.Now()
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: sync failed: %w", err)
		return l.err
	}
	histFsyncNs.Since(start)
	histGroupRecs.Observe(uint64(l.unsyncedRecs))
	l.unsynced = 0
	l.unsyncedRecs = 0
	l.synced = l.nextSeq - 1
	return nil
}

// Sync forces every appended record durable now, regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	return l.syncLocked()
}

// SyncedSeq reports the highest sequence number known durable: records
// up to it survive a crash; records after it are acknowledged but still
// riding on the policy's group-commit window.  After a Checkpoint every
// logged record is the snapshot's responsibility, so SyncedSeq reports
// the last sequence the checkpoint covered.
func (l *Log) SyncedSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// Advance re-bases the log so its next sequence number is strictly
// greater than seq: the recovery step that reconciles the log with a
// snapshot that already absorbed records up to seq, so future appends
// can never collide with sequence numbers the snapshot owns (replay
// skips those, so a collision would silently lose the new record).
//
// A log already past seq is untouched — any records at or below seq it
// still holds are redundant with the snapshot and harmlessly skipped.
// A log at or behind seq holds only records the snapshot owns (a crash
// between the snapshot commit and the log truncation of a Checkpoint
// leaves exactly this: the old log, possibly with its unsynced tail
// torn away); it is discarded and re-based to seq+1.
func (l *Log) Advance(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if l.nextSeq > seq {
		return nil
	}
	return l.reset(seq + 1)
}

// NextSeq reports the sequence number the next Append will take.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Size reports the log's current on-disk size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Checkpoint truncates the log after the caller has captured its state
// in a snapshot: a fresh log (carrying the next sequence number as its
// base, so numbering never restarts) is written to a temp file, synced,
// and renamed over the old one, with the directory synced — a crash at
// any point leaves either the full old log or the clean new one, both
// consistent with the snapshot-then-truncate protocol as long as the
// snapshot records the sequence it absorbed (recovery replays only
// records after it, so a surviving old log is merely redundant, never
// replayed twice).
//
// An error before the rename leaves the old log untouched and usable; a
// failure at or after the rename poisons the log (its on-disk identity
// is ambiguous) and the caller must re-open.
func (l *Log) Checkpoint() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	// Everything logged so far must be durable before the old log is
	// discarded: the caller's snapshot claims it.
	if err := l.syncLocked(); err != nil {
		return err
	}
	dir := filepath.Dir(l.path)
	tmp, err := l.fsys.CreateTemp(dir, filepath.Base(l.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("wal: checkpoint temp: %w", err)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], logMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], logVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], l.nextSeq)
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.Checksum(hdr[:16], crcTable))
	cleanup := func(err error) error {
		tmp.Close()
		l.fsys.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(hdr[:]); err != nil {
		return cleanup(fmt.Errorf("wal: checkpoint header: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("wal: checkpoint sync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return cleanup(fmt.Errorf("wal: checkpoint close: %w", err))
	}
	if err := l.fsys.Rename(tmp.Name(), l.path); err != nil {
		return cleanup(fmt.Errorf("wal: checkpoint rename: %w", err))
	}
	// Point of no return: the volatile namespace now names the new log.
	if err := l.fsys.SyncDir(dir); err != nil {
		l.err = fmt.Errorf("wal: checkpoint dir sync: %w", err)
		return l.err
	}
	old := l.f
	f, err := l.fsys.OpenAppend(l.path)
	if err != nil {
		l.err = fmt.Errorf("wal: reopening checkpointed log: %w", err)
		return l.err
	}
	old.Close()
	l.f = f
	l.size = headerSize
	l.unsynced = 0
	l.unsyncedRecs = 0
	l.synced = l.nextSeq - 1 // the snapshot owns everything before here
	return nil
}

// flushLoop is the ModeGroup background flusher.
func (l *Log) flushLoop(interval time.Duration) {
	defer close(l.flushDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.err == nil {
				l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// Close syncs outstanding records and closes the log.  The first error
// encountered is returned; the log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.closed = true
	stop := l.flushStop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.flushDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var first error
	if l.err == nil {
		if l.unsynced > 0 {
			if err := l.syncLocked(); err != nil {
				first = err
			}
		}
	} else {
		first = l.err
	}
	if err := l.f.Close(); first == nil && err != nil {
		first = err
	}
	return first
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }
