package wal

// Telemetry for the durability layer: append volume, fsync latency, and
// the group-commit batch size (records made durable per fsync — the
// number group commit exists to maximise).  Disabled cost per Append is
// one atomic load.

import "cssidx/internal/telemetry"

var (
	ctrAppends    = telemetry.C("wal_appends_total")
	ctrBytes      = telemetry.C("wal_bytes_logged_total")
	histFsyncNs   = telemetry.H("wal_fsync_ns")
	histGroupRecs = telemetry.H("wal_group_commit_records")
)
