package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"cssidx/internal/failfs"
)

func mustOpen(t *testing.T, fsys failfs.FS, pol Policy) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(fsys, "db/wal", pol)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func payload(i int) []byte { return []byte(fmt.Sprintf("record-%04d", i)) }

func TestRoundTrip(t *testing.T) {
	for _, pol := range []Policy{Always(), GroupBytes(64), None()} {
		t.Run(pol.Mode.String(), func(t *testing.T) {
			m := failfs.NewMem(1)
			l, recs := mustOpen(t, m, pol)
			if len(recs) != 0 {
				t.Fatalf("fresh log replayed %d records", len(recs))
			}
			for i := 0; i < 10; i++ {
				seq, err := l.Append(payload(i))
				if err != nil {
					t.Fatal(err)
				}
				if seq != uint64(i+1) {
					t.Fatalf("seq %d, want %d", seq, i+1)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, recs := mustOpen(t, m, pol)
			defer l2.Close()
			if len(recs) != 10 {
				t.Fatalf("replayed %d records, want 10", len(recs))
			}
			for i, r := range recs {
				if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, payload(i)) {
					t.Fatalf("record %d: seq %d payload %q", i, r.Seq, r.Payload)
				}
			}
			if l2.NextSeq() != 11 {
				t.Fatalf("NextSeq %d, want 11", l2.NextSeq())
			}
		})
	}
}

func TestAlwaysIsDurablePerAppend(t *testing.T) {
	m := failfs.NewMem(1)
	l, _ := mustOpen(t, m, Always())
	for i := 0; i < 5; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
		if l.SyncedSeq() != uint64(i+1) {
			t.Fatalf("after append %d SyncedSeq=%d", i, l.SyncedSeq())
		}
	}
	// No Close, no extra sync: crash now, everything must replay.
	m.Crash()
	_, recs := mustOpen(t, m, Always())
	if len(recs) != 5 {
		t.Fatalf("recovered %d records, want 5", len(recs))
	}
}

func TestGroupBytesWatermark(t *testing.T) {
	m := failfs.NewMem(1)
	l, _ := mustOpen(t, m, GroupBytes(80)) // ~3 records per sync
	var acked []uint64
	for i := 0; i < 10; i++ {
		seq, err := l.Append(payload(i))
		if err != nil {
			t.Fatal(err)
		}
		acked = append(acked, seq)
	}
	syncedAtCrash := l.SyncedSeq()
	if syncedAtCrash == 0 || syncedAtCrash == acked[len(acked)-1] {
		t.Fatalf("expected a partial watermark, got %d of %d", syncedAtCrash, acked[len(acked)-1])
	}
	m.Crash()
	_, recs := mustOpen(t, m, GroupBytes(80))
	if uint64(len(recs)) < syncedAtCrash {
		t.Fatalf("recovered %d records, watermark promised %d", len(recs), syncedAtCrash)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, payload(i)) {
			t.Fatalf("recovered record %d wrong: seq %d %q", i, r.Seq, r.Payload)
		}
	}
}

func TestTornTailTruncatedOnEverySeed(t *testing.T) {
	// Whatever prefix of the unsynced tail survives — intact, torn,
	// corrupted — recovery must return a clean acknowledged prefix and
	// leave the log appendable.
	for seed := int64(0); seed < 30; seed++ {
		m := failfs.NewMem(seed)
		l, _ := mustOpen(t, m, None())
		for i := 0; i < 4; i++ {
			if _, err := l.Append(payload(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		for i := 4; i < 8; i++ {
			if _, err := l.Append(payload(i)); err != nil {
				t.Fatal(err)
			}
		}
		m.Crash()
		l2, recs, err := Open(m, "db/wal", None())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(recs) < 4 || len(recs) > 8 {
			t.Fatalf("seed %d: recovered %d records", seed, len(recs))
		}
		for i, r := range recs {
			if !bytes.Equal(r.Payload, payload(i)) {
				t.Fatalf("seed %d: record %d corrupt: %q", seed, i, r.Payload)
			}
		}
		// The log must accept appends again, continuing the sequence.
		seq, err := l2.Append([]byte("after"))
		if err != nil {
			t.Fatalf("seed %d: append after recovery: %v", seed, err)
		}
		if seq != uint64(len(recs)+1) {
			t.Fatalf("seed %d: post-recovery seq %d, want %d", seed, seq, len(recs)+1)
		}
		l2.Close()
	}
}

func TestCheckpointTruncatesAndKeepsSequence(t *testing.T) {
	m := failfs.NewMem(1)
	l, _ := mustOpen(t, m, Always())
	for i := 0; i < 6; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore := l.Size()
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if l.Size() >= sizeBefore {
		t.Fatalf("checkpoint did not shrink the log: %d -> %d", sizeBefore, l.Size())
	}
	if l.SyncedSeq() != 6 {
		t.Fatalf("SyncedSeq after checkpoint = %d, want 6", l.SyncedSeq())
	}
	seq, err := l.Append(payload(6))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 {
		t.Fatalf("post-checkpoint seq %d, want 7", seq)
	}
	l.Close()
	_, recs := mustOpen(t, m, Always())
	if len(recs) != 1 || recs[0].Seq != 7 {
		t.Fatalf("replay after checkpoint: %d records, first seq %v", len(recs), recs)
	}
}

func TestCheckpointCrashSafety(t *testing.T) {
	// Crash at every operation inside Checkpoint: recovery must see
	// either the full old log or the clean truncated one — and the
	// sequence numbering must never regress.
	countOps := func() int {
		m := failfs.NewMem(1)
		l, _ := mustOpen(t, m, Always())
		for i := 0; i < 3; i++ {
			l.Append(payload(i))
		}
		pre := m.OpCount()
		if err := l.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		return m.OpCount() - pre
	}
	ops := countOps()
	for k := 0; k < ops; k++ {
		m := failfs.NewMem(1)
		l, _ := mustOpen(t, m, Always())
		for i := 0; i < 3; i++ {
			l.Append(payload(i))
		}
		m.SetCrashAt(m.OpCount() + k)
		l.Checkpoint() // fails at some point
		m.Crash()
		l2, recs, err := Open(m, "db/wal", Always())
		if err != nil {
			t.Fatalf("crash at +%d: reopen: %v", k, err)
		}
		if n := len(recs); n != 0 && n != 3 {
			t.Fatalf("crash at +%d: %d records, want 0 or 3", k, n)
		}
		if got := l2.NextSeq(); got != 4 {
			t.Fatalf("crash at +%d: NextSeq %d, want 4", k, got)
		}
		l2.Close()
	}
}

func TestSyncFailurePoisonsLog(t *testing.T) {
	m := failfs.NewMem(1)
	l, _ := mustOpen(t, m, Always())
	if _, err := l.Append(payload(0)); err != nil {
		t.Fatal(err)
	}
	// Fail the next op (the sync inside Append).
	m.FailAt(m.OpCount()+1, nil)
	if _, err := l.Append(payload(1)); err == nil {
		t.Fatal("append with failed sync acknowledged")
	}
	if _, err := l.Append(payload(2)); err == nil {
		t.Fatal("poisoned log acknowledged an append")
	}
}

func TestWriteFailureRollsBack(t *testing.T) {
	m := failfs.NewMem(1)
	l, _ := mustOpen(t, m, Always())
	if _, err := l.Append(payload(0)); err != nil {
		t.Fatal(err)
	}
	m.ShortWriteAt(m.OpCount()) // the next write lands partially
	if _, err := l.Append(payload(1)); err == nil {
		t.Fatal("short write acknowledged")
	}
	// The log rolled back and stays usable.
	seq, err := l.Append(payload(1))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("seq after rollback %d, want 2", seq)
	}
	l.Close()
	_, recs := mustOpen(t, m, Always())
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
}

func TestRefusesForeignFile(t *testing.T) {
	m := failfs.NewMem(1)
	f, _ := m.Create("db/wal")
	f.Write([]byte("this is definitely not a wal file, it is long enough to hold a header"))
	f.Sync()
	f.Close()
	m.SyncDir("db")
	if _, _, err := Open(m, "db/wal", Always()); err == nil {
		t.Fatal("foreign file accepted as a log")
	}
}

func TestOversizeRecordRefused(t *testing.T) {
	m := failfs.NewMem(1)
	l, _ := mustOpen(t, m, None())
	defer l.Close()
	if _, err := l.Append(make([]byte, maxRecord+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func FuzzReplay(f *testing.F) {
	// Seed with a valid two-record log and a few mutants.
	m := failfs.NewMem(1)
	l, _, err := Open(m, "db/wal", None())
	if err != nil {
		f.Fatal(err)
	}
	l.Append([]byte("alpha"))
	l.Append([]byte("beta"))
	l.Sync()
	l.Close()
	valid, _ := failfs.ReadAll(m, "db/wal")
	f.Add(valid)
	for i := 0; i < len(valid); i += 7 {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xFF
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		fsys := failfs.NewMem(1)
		w, err := fsys.Create("db/wal")
		if err != nil {
			t.Skip()
		}
		w.Write(data)
		w.Sync()
		w.Close()
		fsys.SyncDir("db")
		// Must never panic; may error (foreign magic) or recover.
		l, recs, err := Open(fsys, "db/wal", None())
		if err != nil {
			return
		}
		// Recovered records must be contiguous from the base.
		for i := 1; i < len(recs); i++ {
			if recs[i].Seq != recs[i-1].Seq+1 {
				t.Fatalf("non-contiguous replay: %d then %d", recs[i-1].Seq, recs[i].Seq)
			}
		}
		// And the log must accept a new append.
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatalf("recovered log rejects appends: %v", err)
		}
		l.Close()
	})
}
