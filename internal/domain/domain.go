// Package domain implements the ordered-domain storage scheme of §2.1: when
// data is loaded into the main-memory database, distinct column values are
// stored once, in sorted order, in an external structure (the domain), and
// columns hold small integer domain IDs in place of values.
//
// Going beyond [AHK85] exactly as the paper does, domains are kept *sorted*
// and IDs are ranks, so both equality and inequality predicates evaluate
// directly on IDs — a range predicate on values becomes an integer range
// test on IDs.  "Transforming domain values to domain IDs requires searching
// on the domain" (§2.2): that search is a level CSS-tree over the domain
// array, the very workload the paper optimises.
package domain

import (
	"sort"

	"cssidx/internal/csstree"
)

// IntDomain is a sorted dictionary of distinct uint32 values with
// rank-assigned IDs.
type IntDomain struct {
	values []uint32
	idx    *csstree.Level
}

// BuildInt constructs the domain of column and returns it together with the
// column re-encoded as domain IDs (ids[i] is the rank of column[i]).
func BuildInt(column []uint32) (*IntDomain, []uint32) {
	values := append([]uint32(nil), column...)
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	// Dedupe in place.
	distinct := values[:0]
	for i, v := range values {
		if i == 0 || v != values[i-1] {
			distinct = append(distinct, v)
		}
	}
	d := &IntDomain{
		values: distinct,
		idx:    csstree.BuildLevel(distinct, 16),
	}
	ids := make([]uint32, len(column))
	for i, v := range column {
		id, ok := d.ID(v)
		if !ok {
			panic("domain: value vanished during build")
		}
		ids[i] = id
	}
	return d, ids
}

// ID returns the domain ID (rank) of value, and whether it is present.
func (d *IntDomain) ID(value uint32) (uint32, bool) {
	i := d.idx.Search(value)
	if i < 0 {
		return 0, false
	}
	return uint32(i), true
}

// IDsBatch translates a batch of values to domain IDs in one lockstep
// descent of the domain's CSS-tree: ids[i] receives the rank of values[i], or
// -1 when the value is not in the domain (len(ids) must equal len(values)).
// Since IDs are ranks, Search's leftmost position IS the ID.
func (d *IntDomain) IDsBatch(values []uint32, ids []int32) {
	d.idx.SearchBatch(values, ids)
}

// LowerBoundBatch stores into out[i] the number of distinct domain values
// < probes[i] (the rank lower bound) for a whole probe batch, answered by
// one lockstep descent of the domain's CSS-tree — the batched counterpart
// of the translation inside IDRange, for callers resolving many predicate
// bounds at once (len(out) must equal len(probes)).
func (d *IntDomain) LowerBoundBatch(probes []uint32, out []int32) {
	d.idx.LowerBoundBatch(probes, out)
}

// Value returns the value for a domain ID.
func (d *IntDomain) Value(id uint32) uint32 { return d.values[int(id)] }

// IDRange translates a closed value range [lo,hi] into a half-open ID range
// [loID,hiID): the §2.1 point that inequality predicates act on IDs
// directly.  An empty range yields loID == hiID.
func (d *IntDomain) IDRange(lo, hi uint32) (loID, hiID uint32) {
	l := d.idx.LowerBound(lo)
	var h int
	if hi == ^uint32(0) {
		h = len(d.values)
	} else {
		h = d.idx.LowerBound(hi + 1)
	}
	if h < l {
		h = l
	}
	return uint32(l), uint32(h)
}

// Len returns the number of distinct values.
func (d *IntDomain) Len() int { return len(d.values) }

// Values returns the sorted distinct values (read-only).
func (d *IntDomain) Values() []uint32 { return d.values }

// SpaceBytes returns the domain footprint: values plus the CSS directory.
func (d *IntDomain) SpaceBytes() int { return 4*len(d.values) + d.idx.SpaceBytes() }

// StringDomain is a sorted dictionary of distinct strings — the paper's
// "simplified handling of variable-length fields": columns store fixed-size
// IDs while the variable-length values live here once.
type StringDomain struct {
	values []string
}

// BuildString constructs the domain of a string column and the re-encoded
// ID column.
func BuildString(column []string) (*StringDomain, []uint32) {
	values := append([]string(nil), column...)
	sort.Strings(values)
	distinct := values[:0]
	for i, v := range values {
		if i == 0 || v != values[i-1] {
			distinct = append(distinct, v)
		}
	}
	d := &StringDomain{values: distinct}
	ids := make([]uint32, len(column))
	for i, v := range column {
		id, _ := d.ID(v)
		ids[i] = id
	}
	return d, ids
}

// ID returns the domain ID (rank) of value, and whether it is present.
func (d *StringDomain) ID(value string) (uint32, bool) {
	i := sort.SearchStrings(d.values, value)
	if i < len(d.values) && d.values[i] == value {
		return uint32(i), true
	}
	return 0, false
}

// Value returns the string for a domain ID.
func (d *StringDomain) Value(id uint32) string { return d.values[int(id)] }

// IDRange translates a closed string range [lo,hi] into a half-open ID
// range.
func (d *StringDomain) IDRange(lo, hi string) (loID, hiID uint32) {
	l := sort.SearchStrings(d.values, lo)
	h := sort.Search(len(d.values), func(i int) bool { return d.values[i] > hi })
	if h < l {
		h = l
	}
	return uint32(l), uint32(h)
}

// Len returns the number of distinct values.
func (d *StringDomain) Len() int { return len(d.values) }
