package domain

import (
	"testing"
	"testing/quick"

	"cssidx/internal/workload"
)

func TestBuildIntRoundTrip(t *testing.T) {
	col := []uint32{30, 10, 20, 10, 30, 30}
	d, ids := BuildInt(col)
	if d.Len() != 3 {
		t.Fatalf("distinct=%d, want 3", d.Len())
	}
	for i, v := range col {
		if got := d.Value(ids[i]); got != v {
			t.Errorf("row %d: decode(%d)=%d, want %d", i, ids[i], got, v)
		}
	}
	// IDs are ranks: 10→0, 20→1, 30→2.
	wantIDs := []uint32{2, 0, 1, 0, 2, 2}
	for i := range ids {
		if ids[i] != wantIDs[i] {
			t.Errorf("ids[%d]=%d, want %d", i, ids[i], wantIDs[i])
		}
	}
}

func TestIntIDOrderPreservesValueOrder(t *testing.T) {
	g := workload.New(110)
	col := g.Shuffled(g.SortedDistinct(5000))
	d, _ := BuildInt(col)
	f := func(a, b uint32) bool {
		ia, oka := d.ID(d.Value(a % uint32(d.Len())))
		ib, okb := d.ID(d.Value(b % uint32(d.Len())))
		if !oka || !okb {
			return false
		}
		va, vb := d.Value(ia), d.Value(ib)
		return (va < vb) == (ia < ib) || va == vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestIntIDAbsent(t *testing.T) {
	d, _ := BuildInt([]uint32{2, 4, 6})
	if _, ok := d.ID(3); ok {
		t.Error("found absent value")
	}
	if id, ok := d.ID(4); !ok || id != 1 {
		t.Errorf("ID(4)=(%d,%v)", id, ok)
	}
}

func TestIntIDRange(t *testing.T) {
	d, _ := BuildInt([]uint32{10, 20, 30, 40, 50})
	cases := []struct {
		lo, hi       uint32
		wantL, wantH uint32
	}{
		{20, 40, 1, 4},        // values 20,30,40
		{15, 45, 1, 4},        // same: predicate bounds between values
		{0, 5, 0, 0},          // empty below
		{60, 99, 5, 5},        // empty above
		{10, 50, 0, 5},        // everything
		{30, 30, 2, 3},        // point
		{0, ^uint32(0), 0, 5}, // full key space
	}
	for _, c := range cases {
		l, h := d.IDRange(c.lo, c.hi)
		if l != c.wantL || h != c.wantH {
			t.Errorf("IDRange(%d,%d)=(%d,%d), want (%d,%d)", c.lo, c.hi, l, h, c.wantL, c.wantH)
		}
	}
}

func TestIntLargeDomain(t *testing.T) {
	g := workload.New(111)
	col := g.Shuffled(g.SortedDistinct(200000))
	d, ids := BuildInt(col)
	if d.Len() != 200000 {
		t.Fatalf("distinct=%d", d.Len())
	}
	for i := 0; i < len(col); i += 997 {
		if d.Value(ids[i]) != col[i] {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

func TestIntSpaceAccounting(t *testing.T) {
	d, _ := BuildInt([]uint32{1, 2, 3, 4, 5})
	if d.SpaceBytes() < 20 {
		t.Errorf("space=%d below raw values", d.SpaceBytes())
	}
}

func TestStringRoundTrip(t *testing.T) {
	col := []string{"pear", "apple", "mango", "apple"}
	d, ids := BuildString(col)
	if d.Len() != 3 {
		t.Fatalf("distinct=%d", d.Len())
	}
	for i, v := range col {
		if d.Value(ids[i]) != v {
			t.Errorf("row %d decode mismatch", i)
		}
	}
	// Sorted: apple=0, mango=1, pear=2 — equality on IDs == equality on values.
	if ids[1] != ids[3] {
		t.Error("equal strings got different IDs")
	}
	if !(ids[1] < ids[2] && ids[2] < ids[0]) {
		t.Errorf("ID order should follow string order: %v", ids)
	}
}

func TestStringIDRange(t *testing.T) {
	d, _ := BuildString([]string{"ant", "bee", "cat", "dog"})
	l, h := d.IDRange("bee", "cat")
	if l != 1 || h != 3 {
		t.Errorf("IDRange(bee,cat)=(%d,%d), want (1,3)", l, h)
	}
	l, h = d.IDRange("ba", "bz")
	if l != 1 || h != 2 {
		t.Errorf("IDRange(ba,bz)=(%d,%d), want (1,2)", l, h)
	}
	l, h = d.IDRange("x", "z")
	if l != h {
		t.Errorf("empty range got (%d,%d)", l, h)
	}
}

func TestStringAbsent(t *testing.T) {
	d, _ := BuildString([]string{"a", "c"})
	if _, ok := d.ID("b"); ok {
		t.Error("found absent string")
	}
}

func TestEmptyDomains(t *testing.T) {
	d, ids := BuildInt(nil)
	if d.Len() != 0 || len(ids) != 0 {
		t.Error("empty int domain mishandled")
	}
	sd, sids := BuildString(nil)
	if sd.Len() != 0 || len(sids) != 0 {
		t.Error("empty string domain mishandled")
	}
}
