package csstree

import (
	"bytes"
	"testing"

	"cssidx/internal/workload"
)

func TestSnapshotRoundTripFull(t *testing.T) {
	g := workload.New(140)
	keys := g.SortedDistinct(50000)
	orig := BuildFull(keys, 16)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadFull(&buf, keys)
	if err != nil {
		t.Fatal(err)
	}
	probes := append(g.Lookups(keys, 2000), g.Misses(keys, 2000)...)
	for _, k := range probes {
		if a, b := orig.LowerBound(k), restored.LowerBound(k); a != b {
			t.Fatalf("restored tree diverges: %d vs %d for key %d", a, b, k)
		}
	}
}

func TestSnapshotRoundTripLevel(t *testing.T) {
	g := workload.New(141)
	keys := g.SortedWithDuplicates(30000, 3)
	orig := BuildLevel(keys, 16)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadLevel(&buf, keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range g.Lookups(keys, 2000) {
		if a, b := orig.Search(k), restored.Search(k); a != b {
			t.Fatalf("restored tree diverges: %d vs %d for key %d", a, b, k)
		}
	}
}

func TestSnapshotTinyTrees(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16} {
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = uint32(i)
		}
		var buf bytes.Buffer
		if _, err := BuildFull(keys, 16).WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := ReadFull(&buf, keys)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, k := range keys {
			if got := restored.Search(k); got != i {
				t.Fatalf("n=%d: Search(%d)=%d", n, k, got)
			}
		}
	}
}

func TestSnapshotRejectsWrongArray(t *testing.T) {
	g := workload.New(142)
	keys := g.SortedDistinct(10000)
	var buf bytes.Buffer
	if _, err := BuildFull(keys, 16).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Same length, one key changed.
	tampered := append([]uint32(nil), keys...)
	tampered[5000]++
	if _, err := ReadFull(bytes.NewReader(buf.Bytes()), tampered); err == nil {
		t.Error("snapshot attached to a different array")
	}
	// Different length.
	if _, err := ReadFull(bytes.NewReader(buf.Bytes()), keys[:9999]); err == nil {
		t.Error("snapshot attached to a shorter array")
	}
}

func TestSnapshotRejectsWrongVariant(t *testing.T) {
	g := workload.New(143)
	keys := g.SortedDistinct(1000)
	var buf bytes.Buffer
	if _, err := BuildFull(keys, 16).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLevel(&buf, keys); err == nil {
		t.Error("level reader accepted a full-tree snapshot")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	keys := []uint32{1, 2, 3}
	cases := [][]byte{
		nil,
		{1, 2, 3},
		bytes.Repeat([]byte{0xff}, 64),
	}
	for _, c := range cases {
		if _, err := ReadFull(bytes.NewReader(c), keys); err == nil {
			t.Errorf("accepted garbage %v", c)
		}
	}
}

func TestSnapshotTruncated(t *testing.T) {
	g := workload.New(144)
	keys := g.SortedDistinct(5000)
	var buf bytes.Buffer
	if _, err := BuildFull(keys, 16).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, cut := range []int{1, 10, len(whole) / 2, len(whole) - 1} {
		if _, err := ReadFull(bytes.NewReader(whole[:cut]), keys); err == nil {
			t.Errorf("accepted snapshot truncated to %d bytes", cut)
		}
	}
}
