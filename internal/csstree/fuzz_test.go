package csstree

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"
)

// FuzzLowerBound drives arbitrary key arrays, probe keys and node sizes
// through both tree variants against the sort.Search reference.
func FuzzLowerBound(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0}, uint32(2), uint8(2))
	f.Add([]byte{}, uint32(0), uint8(0))
	f.Add([]byte{255, 255, 255, 255}, uint32(1), uint8(7))
	f.Fuzz(func(t *testing.T, raw []byte, probe uint32, mSel uint8) {
		ms := []int{2, 3, 4, 5, 8, 16, 17}
		m := ms[int(mSel)%len(ms)]
		keys := make([]uint32, len(raw)/4)
		for i := range keys {
			keys[i] = binary.LittleEndian.Uint32(raw[4*i:])
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		want := sort.Search(len(keys), func(i int) bool { return keys[i] >= probe })

		full := BuildFull(keys, m)
		if got := full.LowerBound(probe); got != want {
			t.Fatalf("full m=%d n=%d: LowerBound(%d)=%d, want %d", m, len(keys), probe, got, want)
		}
		if m&(m-1) == 0 {
			level := BuildLevel(keys, m)
			if got := level.LowerBound(probe); got != want {
				t.Fatalf("level m=%d n=%d: LowerBound(%d)=%d, want %d", m, len(keys), probe, got, want)
			}
		}
	})
}

// FuzzSnapshot round-trips snapshots of fuzzed arrays and checks that any
// mutation of the snapshot bytes is either rejected or yields a tree that
// still answers within bounds (no panics, no out-of-range indexes).
func FuzzSnapshot(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 9, 0, 0, 0}, uint32(9))
	f.Fuzz(func(t *testing.T, raw []byte, probe uint32) {
		keys := make([]uint32, len(raw)/4)
		for i := range keys {
			keys[i] = binary.LittleEndian.Uint32(raw[4*i:])
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		var buf bytes.Buffer
		if _, err := BuildFull(keys, 8).WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := ReadFull(&buf, keys)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		got := restored.LowerBound(probe)
		want := sort.Search(len(keys), func(i int) bool { return keys[i] >= probe })
		if got != want {
			t.Fatalf("restored LowerBound(%d)=%d, want %d", probe, got, want)
		}
	})
}
