package csstree

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"cssidx/internal/mem"
)

// Serialization lets a built directory be snapshotted and re-attached to
// the same sorted array after a restart, skipping the (cheap but nonzero)
// rebuild.  Only the directory and geometry are stored — the sorted array
// is the caller's, exactly as in memory — plus a checksum of the keys so a
// stale snapshot cannot silently attach to a different array.

// Encoding constants.
const (
	encMagic   = 0x43535354 // "CSST"
	encVersion = 1

	variantFull  = 1
	variantLevel = 2
)

// header is the fixed-size snapshot prefix.
type header struct {
	Magic    uint32
	Version  uint32
	Variant  uint32
	M        uint32
	N        uint64
	KeysHash uint64
	DirLen   uint64
}

// keysHash fingerprints the indexed array (FNV-1a over the raw keys).
func keysHash(keys []uint32) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint32(buf[:], k)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// writeSnapshot emits header + directory.
func writeSnapshot(w io.Writer, variant, m int, keys, dir []uint32) (int64, error) {
	hd := header{
		Magic:    encMagic,
		Version:  encVersion,
		Variant:  uint32(variant),
		M:        uint32(m),
		N:        uint64(len(keys)),
		KeysHash: keysHash(keys),
		DirLen:   uint64(len(dir)),
	}
	if err := binary.Write(w, binary.LittleEndian, hd); err != nil {
		return 0, fmt.Errorf("csstree: writing snapshot header: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, dir); err != nil {
		return 0, fmt.Errorf("csstree: writing directory: %w", err)
	}
	return int64(binary.Size(hd)) + int64(4*len(dir)), nil
}

// readSnapshot parses and validates a snapshot against the caller's keys.
func readSnapshot(r io.Reader, keys []uint32) (variant, m int, dir []uint32, err error) {
	var hd header
	if err := binary.Read(r, binary.LittleEndian, &hd); err != nil {
		return 0, 0, nil, fmt.Errorf("csstree: reading snapshot header: %w", err)
	}
	if hd.Magic != encMagic {
		return 0, 0, nil, fmt.Errorf("csstree: bad snapshot magic %#x", hd.Magic)
	}
	if hd.Version != encVersion {
		return 0, 0, nil, fmt.Errorf("csstree: unsupported snapshot version %d", hd.Version)
	}
	if hd.Variant != variantFull && hd.Variant != variantLevel {
		return 0, 0, nil, fmt.Errorf("csstree: unknown variant %d", hd.Variant)
	}
	if hd.N != uint64(len(keys)) {
		return 0, 0, nil, fmt.Errorf("csstree: snapshot indexes %d keys, caller supplied %d", hd.N, len(keys))
	}
	if hd.KeysHash != keysHash(keys) {
		return 0, 0, nil, fmt.Errorf("csstree: snapshot does not match the supplied key array")
	}
	// M bounds the directory-size plausibility check below, so validate
	// it first: an attacker-chosen M must not license a giant allocation.
	if hd.M < 2 || hd.M > 1<<20 {
		return 0, 0, nil, fmt.Errorf("csstree: implausible node size %d", hd.M)
	}
	if hd.DirLen > uint64(len(keys))+uint64(hd.M) {
		return 0, 0, nil, fmt.Errorf("csstree: implausible directory size %d", hd.DirLen)
	}
	dir = mem.AlignedU32(int(hd.DirLen), mem.CacheLine)
	if err := binary.Read(r, binary.LittleEndian, dir); err != nil {
		return 0, 0, nil, fmt.Errorf("csstree: reading directory: %w", err)
	}
	return int(hd.Variant), int(hd.M), dir, nil
}

// Tree is the read interface shared by both variants, satisfied by *Full
// and *Level; Restore returns it when the snapshot variant is not known in
// advance.
type Tree interface {
	Search(key uint32) int
	LowerBound(key uint32) int
	EqualRange(key uint32) (first, last int)
	SpaceBytes() int
	Levels() int
}

// WriteTo snapshots the directory; restore with ReadFull (or Restore) over
// the same sorted array.
func (t *Full) WriteTo(w io.Writer) (int64, error) {
	return writeSnapshot(w, variantFull, t.g.M, t.keys, t.dir)
}

// WriteTo snapshots the directory; restore with ReadLevel (or Restore) over
// the same sorted array.
func (t *Level) WriteTo(w io.Writer) (int64, error) {
	return writeSnapshot(w, variantLevel, t.g.M, t.keys, t.dir)
}

// Restore reads a snapshot of either variant over keys, which must be the
// identical array the snapshot was taken from (verified by checksum).
func Restore(r io.Reader, keys []uint32) (Tree, error) {
	variant, m, dir, err := readSnapshot(r, keys)
	if err != nil {
		return nil, err
	}
	switch variant {
	case variantFull:
		g := FullGeometry(len(keys), m)
		if g.DirectoryKeys() != len(dir) {
			return nil, fmt.Errorf("csstree: directory size %d does not match geometry %d", len(dir), g.DirectoryKeys())
		}
		return &Full{keys: keys, dir: dir, g: g}, nil
	default:
		g := LevelGeometry(len(keys), m)
		if g.DirectoryKeys() != len(dir) {
			return nil, fmt.Errorf("csstree: directory size %d does not match geometry %d", len(dir), g.DirectoryKeys())
		}
		return &Level{keys: keys, dir: dir, g: g}, nil
	}
}

// ReadFull restores a full CSS-tree snapshot over keys.
func ReadFull(r io.Reader, keys []uint32) (*Full, error) {
	tr, err := Restore(r, keys)
	if err != nil {
		return nil, err
	}
	full, ok := tr.(*Full)
	if !ok {
		return nil, fmt.Errorf("csstree: snapshot holds a level tree, not a full tree")
	}
	return full, nil
}

// ReadLevel restores a level CSS-tree snapshot over keys.
func ReadLevel(r io.Reader, keys []uint32) (*Level, error) {
	tr, err := Restore(r, keys)
	if err != nil {
		return nil, err
	}
	level, ok := tr.(*Level)
	if !ok {
		return nil, fmt.Errorf("csstree: snapshot holds a full tree, not a level tree")
	}
	return level, nil
}
