// Package csstree implements Cache-Sensitive Search Trees, the contribution
// of Rao & Ross (CUCS-019-98 / VLDB'99): a pointerless search directory laid
// over a sorted array, with node size chosen to match the cache-line size.
//
// Two variants are provided, exactly as in the paper:
//
//   - Full CSS-trees (§4.1): every node holds m keys and has m+1 children.
//     Child node numbers are computed by arithmetic (children of node b are
//     b(m+1)+1 … b(m+1)+(m+1)), so no child pointers are stored and every
//     byte of a cache line holds a key.
//
//   - Level CSS-trees (§4.2): nodes have m = 2ᵗ slots but use only m−1 keys,
//     giving a branching factor of m.  Within a node the m−1 keys form a
//     perfect binary search tree, so every probe costs exactly t comparisons;
//     the spare slot caches the subtree maximum, which makes building cheaper.
//
// The leaves of a CSS-tree are the sorted array itself.  Because the deepest
// leaf level holds the *front* of the array while the shallower leaf level
// holds the *back* (the region I/II switch of Figure 3), search maps a
// computed leaf offset through the "mark" as described in §4.1.
//
// Both trees tolerate n not being a multiple of m: the array is virtually
// padded to B·m elements; padded positions replicate the last real key at
// build time (the paper's "fill in those dangling keys with the last element
// in the first half of array a") and leaf search clamps to real bounds.
package csstree

import (
	"fmt"
)

// Geometry captures the node-numbering arithmetic of Lemma 4.1 (full trees)
// and its level-tree analogue.  All quantities are in *nodes* unless suffixed
// otherwise.  It is shared by the builders, the address-trace simulator, and
// the analytic model, so the arithmetic lives in exactly one place.
type Geometry struct {
	N          int // number of elements in the sorted array (real)
	M          int // slots per node
	Fanout     int // branching factor: m+1 for full trees, m for level trees
	Leaves     int // B = ⌈n/m⌉, leaf nodes of m keys each
	Depth      int // k: leaf levels sit at depth k-1 and k (internal depth < k)
	Internal   int // number of internal nodes (lNode+1)
	LNode      int // node number of the last internal node
	FirstBot   int // node number of the first leaf at the deepest level
	MarkKeys   int // MARK: key offset of the first deep-level leaf (FirstBot·m)
	BottomEnd  int // first array index NOT covered by deep-level leaves (clamped to n)
	PaddedKeys int // B·m, the virtually padded array size
	TopLeaves  int // leaves at depth k-1 (region II)
	BotLeaves  int // leaves at depth k (region I)
}

// FullGeometry computes the layout of a full CSS-tree over n keys with m
// keys per node (fanout m+1), per Lemma 4.1.
func FullGeometry(n, m int) Geometry {
	return geometry(n, m, m+1, m)
}

// LevelGeometry computes the layout of a level CSS-tree over n keys with m
// slots per node (fanout m, m−1 routing keys).
func LevelGeometry(n, m int) Geometry {
	return geometry(n, m, m, m-1)
}

// geometry derives the node numbering for a tree whose internal nodes have
// `fanout` children and whose directory gain per extra parent is `gain`
// (= fanout−1): turning one slot at depth k−1 into a parent adds `fanout`
// leaves at depth k but consumes one leaf slot, a net gain of fanout−1.
func geometry(n, m, fanout, gain int) Geometry {
	if m < 2 {
		panic(fmt.Sprintf("csstree: node size m=%d too small", m))
	}
	if n < 0 {
		panic("csstree: negative n")
	}
	g := Geometry{N: n, M: m, Fanout: fanout}
	b := (n + m - 1) / m
	g.Leaves = b
	g.PaddedKeys = b * m
	if b <= 1 {
		// The whole array fits in one leaf: no directory at all.
		g.Depth = 0
		g.Internal = 0
		g.LNode = -1
		g.FirstBot = 0
		g.MarkKeys = 0
		g.BotLeaves = b
		g.BottomEnd = n
		return g
	}
	// k = smallest depth whose leaf level can hold all B leaves.
	k := 1
	cap := fanout
	for cap < b {
		cap *= fanout
		k++
	}
	c := cap / fanout // fanout^(k-1), the size of the shallower leaf level
	x := b - c        // leaves beyond one full level at depth k-1
	p := (x + gain - 1) / gain
	g.Depth = k
	g.TopLeaves = c - p
	g.BotLeaves = x + p
	// Node number of the first node at depth d is (fanout^d - 1)/(fanout-1).
	firstKm1 := (c - 1) / (fanout - 1)
	g.FirstBot = (cap - 1) / (fanout - 1)
	g.LNode = firstKm1 + p - 1
	g.Internal = g.LNode + 1
	g.MarkKeys = g.FirstBot * m
	be := g.BotLeaves * m
	if be > n {
		be = n
	}
	g.BottomEnd = be
	return g
}

// DirectoryKeys returns the number of uint32 slots the directory array needs.
func (g Geometry) DirectoryKeys() int { return g.Internal * g.M }

// DirectoryBytes returns the directory size in bytes.
func (g Geometry) DirectoryBytes() int { return 4 * g.DirectoryKeys() }

// Levels returns the number of node levels a search traverses, counting the
// leaf level (so a single-leaf tree has 1 level).
func (g Geometry) Levels() int { return g.Depth + 1 }

// LeafRange maps a virtual leaf node number d (> LNode) to the half-open
// range [lo,hi) of the sorted array it covers, applying the region I/II
// switch of Figure 3 and clamping padding.  A dangling leaf (beyond the
// real data) yields an empty range whose position is the correct global
// lower bound for any probe routed to it.
func (g Geometry) LeafRange(d int) (lo, hi int) {
	diff := d*g.M - g.MarkKeys
	if diff < 0 {
		// Region II: shallower leaf level holds the back of the array.
		lo = g.PaddedKeys + diff
		hi = lo + g.M
		if hi > g.N {
			hi = g.N
		}
		return lo, hi
	}
	// Region I: deepest leaf level holds the front of the array.
	lo = diff
	hi = lo + g.M
	if lo > g.BottomEnd {
		lo = g.BottomEnd
	}
	if hi > g.BottomEnd {
		hi = g.BottomEnd
	}
	return lo, hi
}

// LeafMaxIndex returns the array index holding the largest *real* key covered
// by virtual leaf d, used when populating internal keys ("the value of the
// largest key in its immediate left subtree", Algorithm 4.1).  Dangling
// leaves — entirely beyond the real data — clamp to the last element of the
// region, exactly as the paper fills dangling keys.
func (g Geometry) LeafMaxIndex(d int) int {
	lo, hi := g.LeafRange(d)
	if lo < hi {
		return hi - 1
	}
	// Dangling deep-level leaf: last element of the first part of the array.
	if g.BottomEnd > 0 {
		return g.BottomEnd - 1
	}
	return 0
}
