package csstree

// Batched lookups: decision-support plans rarely need one key — an indexed
// nested-loop join probes millions (§2.2).  Descending a group of
// independent probes in lockstep lets the out-of-order core overlap their
// cache misses (memory-level parallelism), recovering much of the miss
// latency the paper's single-lookup analysis counts one at a time.  This is
// the batching counterpart of the paper's §8 direction of exploiting cache
// behaviour across whole operations.
//
// The answers are bit-identical to the scalar LowerBound; only the schedule
// of memory accesses changes.

// batchWidth is the number of probes descended in lockstep.  Wide enough to
// cover DRAM latency with independent misses, small enough that the group's
// working state stays in registers/L1.
const batchWidth = 8

// LowerBoundBatch computes LowerBound for every probe into out
// (len(out) must equal len(probes)).
func (t *Full) LowerBoundBatch(probes []uint32, out []int32) {
	if len(out) != len(probes) {
		panic("csstree: probes/out length mismatch")
	}
	g := &t.g
	if g.Internal == 0 {
		for i, p := range probes {
			out[i] = int32(t.LowerBound(p))
		}
		return
	}
	var nodes [batchWidth]int32
	i := 0
	for ; i+batchWidth <= len(probes); i += batchWidth {
		group := probes[i : i+batchWidth]
		for j := range nodes {
			nodes[j] = 0
		}
		// Lockstep descent: advance every probe one level per pass, so the
		// group issues batchWidth independent node reads back to back.
		for {
			active := false
			for j := 0; j < batchWidth; j++ {
				d := int(nodes[j])
				if d > g.LNode {
					continue
				}
				active = true
				base := d * g.M
				k := nodeLowerBound32(t.dir[base:base+g.M], group[j])
				nodes[j] = int32(d*g.Fanout + 1 + k)
			}
			if !active {
				break
			}
		}
		for j := 0; j < batchWidth; j++ {
			lo, hi := g.LeafRange(int(nodes[j]))
			out[i+j] = int32(lo + nodeLowerBound32(t.keys[lo:hi], group[j]))
		}
	}
	for ; i < len(probes); i++ {
		out[i] = int32(t.LowerBound(probes[i]))
	}
}

// LowerBoundBatch computes LowerBound for every probe into out
// (len(out) must equal len(probes)).
func (t *Level) LowerBoundBatch(probes []uint32, out []int32) {
	if len(out) != len(probes) {
		panic("csstree: probes/out length mismatch")
	}
	g := &t.g
	if g.Internal == 0 {
		for i, p := range probes {
			out[i] = int32(t.LowerBound(p))
		}
		return
	}
	var nodes [batchWidth]int32
	i := 0
	for ; i+batchWidth <= len(probes); i += batchWidth {
		group := probes[i : i+batchWidth]
		for j := range nodes {
			nodes[j] = 0
		}
		for {
			active := false
			for j := 0; j < batchWidth; j++ {
				d := int(nodes[j])
				if d > g.LNode {
					continue
				}
				active = true
				base := d * g.M
				k := nodeLowerBound32(t.dir[base:base+g.M-1], group[j])
				nodes[j] = int32(d*g.M + 1 + k)
			}
			if !active {
				break
			}
		}
		for j := 0; j < batchWidth; j++ {
			lo, hi := g.LeafRange(int(nodes[j]))
			out[i+j] = int32(lo + nodeLowerBound32(t.keys[lo:hi], group[j]))
		}
	}
	for ; i < len(probes); i++ {
		out[i] = int32(t.LowerBound(probes[i]))
	}
}

// nodeLowerBound32 is the in-node leftmost-≥ search used by the batch path;
// identical semantics to binsearch.NodeLowerBound but local so the compiler
// can inline it into the lockstep loops.
func nodeLowerBound32(a []uint32, key uint32) int {
	lo, hi := 0, len(a)
	for hi-lo > 5 {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for lo < hi && a[lo] < key {
		lo++
	}
	return lo
}
