package csstree

// Batched lookups: decision-support plans rarely need one key — an indexed
// nested-loop join probes millions (§2.2).  Descending a group of
// independent probes in lockstep lets the out-of-order core overlap their
// cache misses (memory-level parallelism), recovering much of the miss
// latency the paper's single-lookup analysis counts one at a time.  This is
// the batching counterpart of the paper's §8 direction of exploiting cache
// behaviour across whole operations.
//
// The answers are bit-identical to the scalar Search/LowerBound/EqualRange;
// only the schedule of memory accesses changes.

import "cssidx/internal/binsearch"

// batchWidth is the number of probes descended in lockstep.  Wide enough to
// cover DRAM latency with independent misses, small enough that the group's
// working state stays in registers/L1.  With the branch-free node searches
// there is no data-dependent branch between group members, so the width is
// set by the core's miss-tracking capacity (line-fill buffers / MSHRs, ~10–16
// on current cores) rather than by the branch predictor: 16 keeps a full
// complement of independent node reads in flight per level.  It equals
// binsearch.GroupWidth so a group whose probes sit on one node collapses
// into a single multi-probe kernel call.
const batchWidth = binsearch.GroupWidth

// sameNode is binsearch.GroupOnOneNode under this package's width name.
func sameNode(nodes *[batchWidth]int32) bool {
	return binsearch.GroupOnOneNode(nodes)
}

// LowerBoundBatch computes LowerBound for every probe into out
// (len(out) must equal len(probes)).
func (t *Full) LowerBoundBatch(probes []uint32, out []int32) {
	if len(out) != len(probes) {
		panic("csstree: probes/out length mismatch")
	}
	g := &t.g
	if g.Internal == 0 {
		for i, p := range probes {
			out[i] = int32(t.LowerBound(p))
		}
		return
	}
	m, fan, lNode := g.M, g.Fanout, g.LNode
	var nodes [batchWidth]int32
	var ks [batchWidth]int32
	i := 0
	for ; i+batchWidth <= len(probes); i += batchWidth {
		group := probes[i : i+batchWidth]
		for j := range nodes {
			nodes[j] = 0
		}
		// Lockstep descent: advance every probe one level per pass, so the
		// group issues batchWidth independent node reads back to back.
		// Leaves exist only on the two deepest levels, so the first Depth-1
		// passes are internal for every probe — no depth checks needed.
		// A pass whose whole group sits on ONE node (the root pass always;
		// upper levels often, under sorted probe order) collapses into a
		// single multi-probe kernel call answered from registers.
		for pass := 0; pass < g.Depth-1; pass++ {
			if sameNode(&nodes) {
				d := int(nodes[0])
				base := d * m
				binsearch.NodeLowerBound16(t.dir[base:base+m], m, group, ks[:])
				for j := 0; j < batchWidth; j++ {
					nodes[j] = int32(d*fan + 1 + int(ks[j]))
				}
				continue
			}
			for j := 0; j < batchWidth; j++ {
				d := int(nodes[j])
				base := d * m
				k := binsearch.NodeLowerBound(t.dir[base:base+m], m, group[j])
				nodes[j] = int32(d*fan + 1 + k)
			}
		}
		// Final internal level: only region-I probes are still on a node.
		for j := 0; j < batchWidth; j++ {
			d := int(nodes[j])
			if d > lNode {
				continue
			}
			base := d * m
			k := binsearch.NodeLowerBound(t.dir[base:base+m], m, group[j])
			nodes[j] = int32(d*fan + 1 + k)
		}
		for j := 0; j < batchWidth; j++ {
			lo, hi := g.LeafRange(int(nodes[j]))
			out[i+j] = int32(lo + binsearch.NodeLowerBound(t.keys[lo:hi], hi-lo, group[j]))
		}
	}
	for ; i < len(probes); i++ {
		out[i] = int32(t.LowerBound(probes[i]))
	}
}

// SearchBatch computes Search for every probe into out (len(out) must equal
// len(probes)): the position of the leftmost occurrence, or -1 if absent.
func (t *Full) SearchBatch(probes []uint32, out []int32) {
	t.LowerBoundBatch(probes, out)
	fixupSearch(t.keys, probes, out)
}

// EqualRangeBatch computes EqualRange for every probe: first and last receive
// the half-open position range of each probe's occurrences (all three slices
// must have equal length).
func (t *Full) EqualRangeBatch(probes []uint32, first, last []int32) {
	t.LowerBoundBatch(probes, first)
	fixupEqualRange(t.keys, probes, first, last)
}

// LowerBoundBatch computes LowerBound for every probe into out
// (len(out) must equal len(probes)).
func (t *Level) LowerBoundBatch(probes []uint32, out []int32) {
	if len(out) != len(probes) {
		panic("csstree: probes/out length mismatch")
	}
	g := &t.g
	if g.Internal == 0 {
		for i, p := range probes {
			out[i] = int32(t.LowerBound(p))
		}
		return
	}
	m, lNode := g.M, g.LNode
	var nodes [batchWidth]int32
	var ks [batchWidth]int32
	i := 0
	for ; i+batchWidth <= len(probes); i += batchWidth {
		group := probes[i : i+batchWidth]
		for j := range nodes {
			nodes[j] = 0
		}
		// See the Full kernel: the first Depth-1 passes need no depth checks,
		// and a group sharing one node collapses into the multi-probe kernel.
		for pass := 0; pass < g.Depth-1; pass++ {
			if sameNode(&nodes) {
				d := int(nodes[0])
				base := d * m
				binsearch.NodeLowerBound16(t.dir[base:base+m-1], m-1, group, ks[:])
				for j := 0; j < batchWidth; j++ {
					nodes[j] = int32(d*m + 1 + int(ks[j]))
				}
				continue
			}
			for j := 0; j < batchWidth; j++ {
				d := int(nodes[j])
				base := d * m
				k := binsearch.NodeLowerBound(t.dir[base:base+m-1], m-1, group[j])
				nodes[j] = int32(d*m + 1 + k)
			}
		}
		for j := 0; j < batchWidth; j++ {
			d := int(nodes[j])
			if d > lNode {
				continue
			}
			base := d * m
			k := binsearch.NodeLowerBound(t.dir[base:base+m-1], m-1, group[j])
			nodes[j] = int32(d*m + 1 + k)
		}
		for j := 0; j < batchWidth; j++ {
			lo, hi := g.LeafRange(int(nodes[j]))
			out[i+j] = int32(lo + binsearch.NodeLowerBound(t.keys[lo:hi], hi-lo, group[j]))
		}
	}
	for ; i < len(probes); i++ {
		out[i] = int32(t.LowerBound(probes[i]))
	}
}

// SearchBatch computes Search for every probe into out (len(out) must equal
// len(probes)): the position of the leftmost occurrence, or -1 if absent.
func (t *Level) SearchBatch(probes []uint32, out []int32) {
	t.LowerBoundBatch(probes, out)
	fixupSearch(t.keys, probes, out)
}

// EqualRangeBatch computes EqualRange for every probe: first and last receive
// the half-open position range of each probe's occurrences (all three slices
// must have equal length).
func (t *Level) EqualRangeBatch(probes []uint32, first, last []int32) {
	t.LowerBoundBatch(probes, first)
	fixupEqualRange(t.keys, probes, first, last)
}

// fixupSearch turns in-place lower bounds into Search results: -1 where the
// landing key does not match the probe.
func fixupSearch(keys []uint32, probes []uint32, out []int32) {
	n := int32(len(keys))
	for i, p := range probes {
		if lb := out[i]; lb >= n || keys[lb] != p {
			out[i] = -1
		}
	}
}

// fixupEqualRange extends lower bounds in first to half-open equal ranges by
// scanning duplicates rightward (§3.6).
func fixupEqualRange(keys []uint32, probes []uint32, first, last []int32) {
	if len(first) != len(probes) || len(last) != len(probes) {
		panic("csstree: probes/first/last length mismatch")
	}
	n := int32(len(keys))
	for i, p := range probes {
		end := first[i]
		for end < n && keys[end] == p {
			end++
		}
		last[i] = end
	}
}
