package csstree

import (
	"fmt"

	"cssidx/internal/binsearch"
	"cssidx/internal/mem"
)

// Level is a level CSS-tree (§4.2): nodes have m = 2ᵗ slots but only m−1
// routing keys, so the within-node search is a perfect binary tree costing
// exactly t comparisons, at the price of a branching factor of m instead of
// m+1 (one extra level every log_m steps).  The spare slot of each node
// caches the largest key of the node's last branch, which lets the builder
// avoid chasing rightmost children down whole subtrees — the reason the
// paper's Figure 9 shows level trees building faster than full trees.
type Level struct {
	keys []uint32
	dir  []uint32
	g    Geometry
}

// BuildLevel constructs a level CSS-tree over the sorted slice keys with m
// slots per node.  m must be a power of two ≥ 2.  keys is retained, not
// copied.
func BuildLevel(keys []uint32, m int) *Level {
	if !mem.IsPow2(m) {
		panic(fmt.Sprintf("csstree: level tree node size m=%d is not a power of two", m))
	}
	g := LevelGeometry(len(keys), m)
	t := &Level{keys: keys, g: g}
	if g.Internal == 0 {
		return t
	}
	t.dir = mem.AlignedU32(g.DirectoryKeys(), mem.CacheLine)
	// Populate nodes from the last internal node towards the root.  Children
	// have higher node numbers than their parent, so every child's aux slot
	// (its subtree maximum) is ready before the parent needs it.
	for d := g.LNode; d >= 0; d-- {
		base := d * m
		// Aux slot first: the maximum of the last branch (child m-1).
		t.dir[base+m-1] = t.subtreeMax(d*m + m)
		// Routing keys: slot j holds the maximum of child j's subtree.
		for j := m - 2; j >= 0; j-- {
			t.dir[base+j] = t.subtreeMax(d*m + 1 + j)
		}
	}
	return t
}

// subtreeMax returns the largest real key in the subtree rooted at node c,
// reading a child's cached aux slot when c is internal and mapping through
// the leaf arithmetic otherwise.
func (t *Level) subtreeMax(c int) uint32 {
	if c <= t.g.LNode {
		return t.dir[c*t.g.M+t.g.M-1]
	}
	return t.keys[t.g.LeafMaxIndex(c)]
}

// Search returns the index in the sorted array of the leftmost occurrence of
// key, or -1 if absent.
func (t *Level) Search(key uint32) int {
	i := t.LowerBound(key)
	if i < len(t.keys) && t.keys[i] == key {
		return i
	}
	return -1
}

// LowerBound returns the smallest index i with keys[i] >= key, or len(keys).
func (t *Level) LowerBound(key uint32) int {
	g := &t.g
	if g.Internal == 0 {
		return binsearch.LowerBound(t.keys, key)
	}
	m := g.M
	d := 0
	for d <= g.LNode {
		base := d * m
		j := binsearch.NodeLowerBound(t.dir[base:base+m-1], m-1, key)
		d = d*m + 1 + j
	}
	lo, hi := g.LeafRange(d)
	return lo + binsearch.NodeLowerBound(t.keys[lo:hi], hi-lo, key)
}

// EqualRange returns the half-open range [first,last) of indexes equal to key.
func (t *Level) EqualRange(key uint32) (first, last int) {
	first = t.LowerBound(key)
	last = first
	for last < len(t.keys) && t.keys[last] == key {
		last++
	}
	return first, last
}

// LowerBoundGeneric is LowerBound with the non-unrolled node search, for the
// code-specialisation ablation.
func (t *Level) LowerBoundGeneric(key uint32) int {
	g := &t.g
	if g.Internal == 0 {
		return binsearch.LowerBound(t.keys, key)
	}
	m := g.M
	d := 0
	for d <= g.LNode {
		base := d * m
		j := binsearch.NodeLowerBoundGeneric(t.dir[base:base+m-1], m-1, key)
		d = d*m + 1 + j
	}
	lo, hi := g.LeafRange(d)
	return lo + binsearch.NodeLowerBoundGeneric(t.keys[lo:hi], hi-lo, key)
}

// Keys returns the sorted array the tree indexes.
func (t *Level) Keys() []uint32 { return t.keys }

// Dir returns the internal-node directory array (node d occupies slots
// [d·m, (d+1)·m); slot d·m+m−1 is the cached subtree maximum).  Read-only:
// exposed for inspection and for the cache simulator.
func (t *Level) Dir() []uint32 { return t.dir }

// M returns the number of slots per node (m−1 of which hold routing keys).
func (t *Level) M() int { return t.g.M }

// Geometry returns the node-numbering layout.
func (t *Level) Geometry() Geometry { return t.g }

// SpaceBytes returns the directory size in bytes (§5.2: nK²⁄(sc−K)).
func (t *Level) SpaceBytes() int { return mem.SliceBytes(t.dir) }

// Levels returns the number of node levels traversed, including the leaf.
func (t *Level) Levels() int { return t.g.Levels() }

// String describes the tree for diagnostics.
func (t *Level) String() string {
	return fmt.Sprintf("level CSS-tree{n=%d m=%d internal=%d levels=%d dir=%s}",
		t.g.N, t.g.M, t.g.Internal, t.Levels(), mem.Bytes(t.SpaceBytes()))
}
