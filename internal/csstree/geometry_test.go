package csstree

import (
	"testing"

	"cssidx/internal/mem"
)

// paperInternalCount evaluates the closed form of Lemma 4.1 for full trees:
// ((m+1)^k - 1)/m - ⌊((m+1)^k - B)/m⌋ with k = ⌈log_{m+1} B⌉.
func paperInternalCount(b, m int) (internal, firstBot int) {
	if b <= 1 {
		return 0, 0
	}
	fan := m + 1
	k := 1
	cap := fan
	for cap < b {
		cap *= fan
		k++
	}
	firstBot = (cap - 1) / m
	internal = firstBot - (cap-b)/m
	return internal, firstBot
}

func TestFullGeometryMatchesLemma41(t *testing.T) {
	for _, m := range []int{2, 3, 4, 5, 8, 16, 17, 32, 64} {
		for b := 0; b <= 600; b++ {
			n := b * m // exact multiple: the Lemma's setting (n = B·m)
			g := FullGeometry(n, m)
			wantInternal, wantFirstBot := paperInternalCount(b, m)
			if g.Internal != wantInternal {
				t.Fatalf("m=%d B=%d: Internal=%d, Lemma 4.1 says %d", m, b, g.Internal, wantInternal)
			}
			if b > 1 && g.FirstBot != wantFirstBot {
				t.Fatalf("m=%d B=%d: FirstBot=%d, Lemma 4.1 says %d", m, b, g.FirstBot, wantFirstBot)
			}
		}
	}
}

func TestGeometryLeafAccounting(t *testing.T) {
	check := func(g Geometry, kind string, n, m int) {
		t.Helper()
		if g.Leaves != mem.CeilDiv(max(n, 1), m) && n > 0 {
			t.Fatalf("%s n=%d m=%d: Leaves=%d", kind, n, m, g.Leaves)
		}
		if g.TopLeaves+g.BotLeaves != g.Leaves {
			t.Fatalf("%s n=%d m=%d: top %d + bot %d != leaves %d", kind, n, m, g.TopLeaves, g.BotLeaves, g.Leaves)
		}
		if g.TopLeaves < 0 || g.BotLeaves < 0 {
			t.Fatalf("%s n=%d m=%d: negative leaf counts %+v", kind, n, m, g)
		}
		if g.PaddedKeys != g.Leaves*m {
			t.Fatalf("%s n=%d m=%d: PaddedKeys=%d", kind, n, m, g.PaddedKeys)
		}
		if g.PaddedKeys-n >= m && n > 0 {
			t.Fatalf("%s n=%d m=%d: padding %d ≥ m", kind, n, m, g.PaddedKeys-n)
		}
	}
	for _, m := range []int{2, 4, 8, 16, 32} {
		for n := 0; n <= 3000; n += 7 {
			check(FullGeometry(n, m), "full", n, m)
			check(LevelGeometry(n, m), "level", n, m)
		}
	}
}

func TestGeometryLeafRangesPartitionArray(t *testing.T) {
	// Walking all virtual leaves in key order (bottom leaves left-to-right,
	// then top leaves left-to-right) must tile [0, n) exactly.
	verify := func(g Geometry, kind string) {
		t.Helper()
		if g.Internal == 0 {
			return
		}
		next := 0
		// Region I: deepest level, node numbers FirstBot …
		for d := g.FirstBot; ; d++ {
			lo, hi := g.LeafRange(d)
			if lo >= hi {
				break
			}
			if lo != next {
				t.Fatalf("%s %+v: bottom leaf %d starts at %d, want %d", kind, g, d, lo, next)
			}
			next = hi
		}
		if next != g.BottomEnd {
			t.Fatalf("%s %+v: bottom region ends at %d, want %d", kind, g, next, g.BottomEnd)
		}
		// Region II: depth k-1 leaves, node numbers LNode+1 … FirstBot-1.
		for d := g.LNode + 1; d < g.FirstBot; d++ {
			lo, hi := g.LeafRange(d)
			if lo != next {
				t.Fatalf("%s %+v: top leaf %d starts at %d, want %d", kind, g, d, lo, next)
			}
			if hi < lo {
				t.Fatalf("%s %+v: top leaf %d inverted range [%d,%d)", kind, g, d, lo, hi)
			}
			next = hi
		}
		if next != g.N {
			t.Fatalf("%s %+v: leaves cover up to %d, want n=%d", kind, g, next, g.N)
		}
	}
	for _, m := range []int{2, 3, 4, 5, 8, 16} {
		for n := 0; n <= 2000; n++ {
			verify(FullGeometry(n, m), "full")
			if mem.IsPow2(m) {
				verify(LevelGeometry(n, m), "level")
			}
		}
	}
}

func TestGeometryInternalNodeCountConsistent(t *testing.T) {
	// Internal nodes must be exactly those with numbers 0..LNode, and node
	// numbering of children must stay within [0, FirstBot + BotLeaves).
	for _, m := range []int{2, 4, 16} {
		for n := 2; n <= 5000; n = n*3 + 1 {
			g := FullGeometry(n, m)
			if g.Internal != g.LNode+1 {
				t.Fatalf("full n=%d m=%d: Internal=%d LNode=%d", n, m, g.Internal, g.LNode)
			}
			if g.Internal > 0 && g.LNode >= g.FirstBot {
				t.Fatalf("full n=%d m=%d: LNode %d >= FirstBot %d", n, m, g.LNode, g.FirstBot)
			}
		}
	}
}

func TestGeometrySmallCases(t *testing.T) {
	// n ≤ m: no directory.
	for _, m := range []int{2, 4, 16} {
		for n := 0; n <= m; n++ {
			g := FullGeometry(n, m)
			if g.Internal != 0 {
				t.Errorf("full n=%d m=%d: want no internal nodes, got %d", n, m, g.Internal)
			}
		}
	}
	// n = m+1 (two leaves): exactly one internal node (the root).
	g := FullGeometry(17, 16)
	if g.Internal != 1 || g.Depth != 1 {
		t.Errorf("n=17 m=16: %+v", g)
	}
}

func TestGeometryPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { FullGeometry(10, 1) },
		func() { FullGeometry(-1, 4) },
		func() { LevelGeometry(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDirectorySizeFormulaFull(t *testing.T) {
	// §5.2: the directory of a full CSS-tree is about nK/m · (m/(m+1)) … —
	// concretely, internal keys ≈ n/m keys per leaf level collapsed by the
	// fanout; sanity-bound it by n/m · (1 + 1/m) · K bytes plus slack.
	for _, m := range []int{4, 16, 64} {
		n := 1 << 20
		g := FullGeometry(n, m)
		bytes := g.DirectoryBytes()
		// Directory ≈ n·K/m · (m+1)/m ≈ 4n/m. Allow 2× headroom for rounding.
		approx := 4 * n / m
		if bytes < approx/2 || bytes > approx*3 {
			t.Errorf("m=%d: directory %d bytes, expected near %d", m, bytes, approx)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
