package csstree

import (
	"sort"
	"testing"

	"cssidx/internal/binsearch"
	"cssidx/internal/workload"
)

func TestBatchMatchesScalarFull(t *testing.T) {
	g := workload.New(180)
	for _, n := range []int{0, 1, 7, 100, 1000, 50000} {
		keys := g.SortedWithDuplicates(n, 3)
		tr := BuildFull(keys, 16)
		probes := append(g.Lookups(keys, 1000), g.Misses(keys, 500)...)
		probes = append(probes, 0, ^uint32(0)) // odd tail exercises the scalar remainder
		out := make([]int32, len(probes))
		tr.LowerBoundBatch(probes, out)
		for i, p := range probes {
			if int(out[i]) != tr.LowerBound(p) {
				t.Fatalf("n=%d: batch[%d]=%d, scalar=%d (key %d)", n, i, out[i], tr.LowerBound(p), p)
			}
		}
	}
}

func TestBatchMatchesScalarLevel(t *testing.T) {
	g := workload.New(181)
	for _, n := range []int{0, 3, 999, 50000} {
		keys := g.SortedDistinct(n)
		tr := BuildLevel(keys, 16)
		probes := append(g.Lookups(keys, 1000), g.Misses(keys, 500)...)
		out := make([]int32, len(probes))
		tr.LowerBoundBatch(probes, out)
		for i, p := range probes {
			if int(out[i]) != tr.LowerBound(p) {
				t.Fatalf("n=%d: batch[%d]=%d, scalar=%d (key %d)", n, i, out[i], tr.LowerBound(p), p)
			}
		}
	}
}

func TestSearchAndEqualRangeBatchMatchScalar(t *testing.T) {
	g := workload.New(183)
	for _, n := range []int{0, 1, 9, 1000, 20000} {
		keys := g.SortedWithDuplicates(n, 4)
		probes := append(g.Lookups(keys, 600), g.Misses(keys, 300)...)
		probes = append(probes, 0, ^uint32(0))
		out := make([]int32, len(probes))
		first := make([]int32, len(probes))
		last := make([]int32, len(probes))
		full := BuildFull(keys, 16)
		level := BuildLevel(keys, 16)
		for _, tr := range []interface {
			Search(uint32) int
			EqualRange(uint32) (int, int)
			SearchBatch([]uint32, []int32)
			EqualRangeBatch([]uint32, []int32, []int32)
		}{full, level} {
			tr.SearchBatch(probes, out)
			tr.EqualRangeBatch(probes, first, last)
			for i, p := range probes {
				if int(out[i]) != tr.Search(p) {
					t.Fatalf("n=%d: SearchBatch[%d]=%d, scalar=%d (key %d)", n, i, out[i], tr.Search(p), p)
				}
				wf, wl := tr.EqualRange(p)
				if int(first[i]) != wf || int(last[i]) != wl {
					t.Fatalf("n=%d: EqualRangeBatch[%d]=[%d,%d), scalar=[%d,%d) (key %d)",
						n, i, first[i], last[i], wf, wl, p)
				}
			}
		}
	}
}

func TestBatchSmallerThanWidth(t *testing.T) {
	keys := []uint32{10, 20, 30}
	tr := BuildFull(keys, 16)
	probes := []uint32{5, 20, 35}
	out := make([]int32, 3)
	tr.LowerBoundBatch(probes, out)
	want := []int32{0, 1, 3}
	for i := range out {
		if out[i] != want[i] {
			t.Errorf("out[%d]=%d, want %d", i, out[i], want[i])
		}
	}
}

func TestBatchLengthMismatchPanics(t *testing.T) {
	tr := BuildFull([]uint32{1, 2, 3}, 16)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tr.LowerBoundBatch(make([]uint32, 4), make([]int32, 3))
}

func BenchmarkBatchVsScalar(b *testing.B) {
	g := workload.New(182)
	keys := g.SortedUniform(10_000_000)
	probes := g.Lookups(keys, 100_000)
	full := BuildFull(keys, 16)
	out := make([]int32, len(probes))
	b.Run("scalar", func(b *testing.B) {
		s := 0
		for i := 0; i < b.N; i++ {
			s += full.LowerBound(probes[i%len(probes)])
		}
		sinkBatch += s
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i += len(probes) {
			full.LowerBoundBatch(probes, out)
		}
		b.SetBytes(0)
		sinkBatch += int(out[0])
	})
}

var sinkBatch int

// TestBatchAllKernelTiers drives the lockstep kernels under every
// node-search dispatch tier this host has — including sorted probe streams,
// whose groups share nodes deep into the directory and so exercise the
// multi-probe kernel beyond the root pass — and checks bit-identity with
// the scalar descent (which runs under the same tier) and with the branchy
// oracle tier.
func TestBatchAllKernelTiers(t *testing.T) {
	prev := binsearch.ActiveKernel()
	defer binsearch.SetKernel(prev)
	g := workload.New(182)
	for _, kern := range []binsearch.Kernel{binsearch.KernelScalar, binsearch.KernelSWAR, binsearch.KernelSIMD} {
		if !binsearch.SetKernel(kern) {
			continue
		}
		for _, n := range []int{50, 4096, 120000} {
			keys := g.SortedWithDuplicates(n, 5)
			full := BuildFull(keys, 16)
			level := BuildLevel(keys, 16)
			probes := append(g.Lookups(keys, 2000), g.Misses(keys, 500)...)
			sorted := append([]uint32(nil), probes...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			for name, ps := range map[string][]uint32{"random": probes, "sorted": sorted} {
				out := make([]int32, len(ps))
				full.LowerBoundBatch(ps, out)
				for i, p := range ps {
					if int(out[i]) != full.LowerBound(p) {
						t.Fatalf("%v full %s n=%d: batch[%d]=%d scalar=%d (key %d)", kern, name, n, i, out[i], full.LowerBound(p), p)
					}
				}
				level.LowerBoundBatch(ps, out)
				for i, p := range ps {
					if int(out[i]) != level.LowerBound(p) {
						t.Fatalf("%v level %s n=%d: batch[%d]=%d scalar=%d (key %d)", kern, name, n, i, out[i], level.LowerBound(p), p)
					}
				}
			}
		}
	}
}
