package csstree

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"cssidx/internal/workload"
)

// searcher abstracts the two tree variants so every behaviour is tested on
// both through one suite.
type searcher interface {
	Search(key uint32) int
	LowerBound(key uint32) int
	EqualRange(key uint32) (int, int)
	LowerBoundGeneric(key uint32) int
	SpaceBytes() int
	Levels() int
}

func buildBoth(t *testing.T, keys []uint32, m int) map[string]searcher {
	t.Helper()
	s := map[string]searcher{
		fmt.Sprintf("full/m=%d", m): BuildFull(keys, m),
	}
	if m&(m-1) == 0 {
		s[fmt.Sprintf("level/m=%d", m)] = BuildLevel(keys, m)
	}
	return s
}

func refLowerBound(a []uint32, key uint32) int {
	return sort.Search(len(a), func(i int) bool { return a[i] >= key })
}

// probesFor returns a punishing probe set: every key, its neighbours, and
// the extremes.
func probesFor(keys []uint32) []uint32 {
	probes := make([]uint32, 0, 3*len(keys)+2)
	for _, k := range keys {
		probes = append(probes, k)
		if k > 0 {
			probes = append(probes, k-1)
		}
		if k < ^uint32(0) {
			probes = append(probes, k+1)
		}
	}
	return append(probes, 0, ^uint32(0))
}

func TestExhaustiveSmallArrays(t *testing.T) {
	// Every (n, m) combination for small sizes, probing all keys and gaps.
	// This sweeps every padding/dangling/region-switch edge case.
	for _, m := range []int{2, 3, 4, 5, 8, 16} {
		for n := 0; n <= 130; n++ {
			keys := make([]uint32, n)
			for i := range keys {
				keys[i] = uint32(3*i + 5) // gaps of 3 → misses between keys
			}
			for name, tr := range buildBoth(t, keys, m) {
				for _, p := range probesFor(keys) {
					want := refLowerBound(keys, p)
					if got := tr.LowerBound(p); got != want {
						t.Fatalf("%s n=%d: LowerBound(%d)=%d, want %d", name, n, p, got, want)
					}
				}
			}
		}
	}
}

func TestSearchFoundAndMissing(t *testing.T) {
	g := workload.New(30)
	keys := g.SortedDistinct(20000)
	for _, m := range []int{4, 8, 16, 32, 64} {
		for name, tr := range buildBoth(t, keys, m) {
			for _, k := range g.Lookups(keys, 3000) {
				got := tr.Search(k)
				if got < 0 || keys[got] != k {
					t.Fatalf("%s: Search(%d)=%d", name, k, got)
				}
			}
			for _, k := range g.Misses(keys, 3000) {
				if got := tr.Search(k); got != -1 {
					t.Fatalf("%s: absent key %d found at %d", name, k, got)
				}
			}
		}
	}
}

func TestLeftmostDuplicate(t *testing.T) {
	g := workload.New(31)
	keys := g.SortedWithDuplicates(30000, 8)
	for _, m := range []int{4, 16, 32} {
		for name, tr := range buildBoth(t, keys, m) {
			for _, k := range g.Lookups(keys, 3000) {
				want := refLowerBound(keys, k)
				if got := tr.Search(k); got != want {
					t.Fatalf("%s: Search(%d)=%d, want leftmost %d", name, k, got, want)
				}
			}
		}
	}
}

func TestDuplicateRunsSpanningManyNodes(t *testing.T) {
	// A single value repeated across multiple leaves and internal nodes:
	// the 4.1.1 duplicate-routing guarantee must still find index 0 of the run.
	keys := make([]uint32, 10000)
	for i := range keys {
		switch {
		case i < 3000:
			keys[i] = 100
		case i < 9000:
			keys[i] = 200
		default:
			keys[i] = 300
		}
	}
	for _, m := range []int{4, 16} {
		for name, tr := range buildBoth(t, keys, m) {
			if got := tr.Search(100); got != 0 {
				t.Errorf("%s: Search(100)=%d, want 0", name, got)
			}
			if got := tr.Search(200); got != 3000 {
				t.Errorf("%s: Search(200)=%d, want 3000", name, got)
			}
			if got := tr.Search(300); got != 9000 {
				t.Errorf("%s: Search(300)=%d, want 9000", name, got)
			}
			if got := tr.Search(150); got != -1 {
				t.Errorf("%s: Search(150)=%d, want -1", name, got)
			}
			f, l := tr.EqualRange(200)
			if f != 3000 || l != 9000 {
				t.Errorf("%s: EqualRange(200)=[%d,%d)", name, f, l)
			}
		}
	}
}

func TestEqualRangeAgainstReference(t *testing.T) {
	g := workload.New(32)
	keys := g.SortedWithDuplicates(8000, 5)
	for name, tr := range buildBoth(t, keys, 16) {
		probes := append(g.Lookups(keys, 1000), g.Misses(keys, 1000)...)
		for _, k := range probes {
			f, l := tr.EqualRange(k)
			wantF := refLowerBound(keys, k)
			wantL := sort.Search(len(keys), func(i int) bool { return keys[i] > k })
			if f != wantF || l != wantL {
				t.Fatalf("%s: EqualRange(%d)=[%d,%d), want [%d,%d)", name, k, f, l, wantF, wantL)
			}
		}
	}
}

func TestGenericSearchAgrees(t *testing.T) {
	g := workload.New(33)
	keys := g.SortedDistinct(5000)
	for _, m := range []int{8, 16, 24, 32} { // 24: non-power-of-two full tree
		for name, tr := range buildBoth(t, keys, m) {
			probes := append(g.Lookups(keys, 500), g.Misses(keys, 500)...)
			for _, k := range probes {
				if a, b := tr.LowerBound(k), tr.LowerBoundGeneric(k); a != b {
					t.Fatalf("%s: specialised %d vs generic %d for key %d", name, a, b, k)
				}
			}
		}
	}
}

func TestNonMultipleSizes(t *testing.T) {
	// n deliberately not a multiple of m, including n = B·m − 1 and B·m + 1.
	g := workload.New(34)
	for _, m := range []int{4, 16} {
		for _, n := range []int{m + 1, 2*m - 1, 2*m + 1, 17*m - 3, 1000, 1001, 1023, 4097} {
			keys := g.SortedDistinct(n)
			for name, tr := range buildBoth(t, keys, m) {
				probes := append(g.Lookups(keys, 500), g.Misses(keys, 500)...)
				for _, k := range probes {
					want := refLowerBound(keys, k)
					if got := tr.LowerBound(k); got != want {
						t.Fatalf("%s n=%d: LowerBound(%d)=%d, want %d", name, n, k, got, want)
					}
				}
			}
		}
	}
}

func TestLargeTreeAgainstReference(t *testing.T) {
	if testing.Short() {
		t.Skip("large build in -short mode")
	}
	g := workload.New(35)
	keys := g.SortedDistinct(1_000_000)
	for _, m := range []int{16, 32} {
		for name, tr := range buildBoth(t, keys, m) {
			probes := append(g.Lookups(keys, 20000), g.Misses(keys, 20000)...)
			for _, k := range probes {
				want := refLowerBound(keys, k)
				if got := tr.LowerBound(k); got != want {
					t.Fatalf("%s: LowerBound(%d)=%d, want %d", name, k, got, want)
				}
			}
		}
	}
}

func TestQuickProperty(t *testing.T) {
	f := func(raw []uint16, probe uint16, mSel uint8) bool {
		ms := []int{2, 4, 8, 16}
		m := ms[int(mSel)%len(ms)]
		keys := make([]uint32, len(raw))
		for i, v := range raw {
			keys[i] = uint32(v)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		want := refLowerBound(keys, uint32(probe))
		return BuildFull(keys, m).LowerBound(uint32(probe)) == want &&
			BuildLevel(keys, m).LowerBound(uint32(probe)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBoundaryKeyValues(t *testing.T) {
	keys := []uint32{0, 0, 1, 5, ^uint32(0) - 1, ^uint32(0), ^uint32(0)}
	for name, tr := range buildBoth(t, keys, 2) {
		if got := tr.Search(0); got != 0 {
			t.Errorf("%s: Search(0)=%d", name, got)
		}
		if got := tr.Search(^uint32(0)); got != 5 {
			t.Errorf("%s: Search(max)=%d", name, got)
		}
		if got := tr.LowerBound(^uint32(0) - 1); got != 4 {
			t.Errorf("%s: LowerBound(max-1)=%d", name, got)
		}
		if got := tr.Search(2); got != -1 {
			t.Errorf("%s: Search(2)=%d", name, got)
		}
	}
}

func TestEmptyAndTinyTrees(t *testing.T) {
	for name, tr := range buildBoth(t, nil, 16) {
		if got := tr.Search(5); got != -1 {
			t.Errorf("%s empty: %d", name, got)
		}
		if got := tr.LowerBound(5); got != 0 {
			t.Errorf("%s empty LowerBound: %d", name, got)
		}
		if tr.SpaceBytes() != 0 {
			t.Errorf("%s empty: directory %d bytes", name, tr.SpaceBytes())
		}
	}
	one := []uint32{42}
	for name, tr := range buildBoth(t, one, 16) {
		if got := tr.Search(42); got != 0 {
			t.Errorf("%s single: %d", name, got)
		}
		if got := tr.Search(41); got != -1 {
			t.Errorf("%s single miss: %d", name, got)
		}
	}
}

func TestBuildLevelRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for m=24")
		}
	}()
	BuildLevel([]uint32{1, 2, 3}, 24)
}

func TestLevelsCount(t *testing.T) {
	g := workload.New(36)
	keys := g.SortedDistinct(78400) // 4900 leaves of 16 keys
	full := BuildFull(keys, 16)
	level := BuildLevel(keys, 16)
	// Full tree fanout 17: 17²=289 < 4900 ≤ 17³=4913 → depth 3 → 4 levels.
	// Level tree fanout 16: 16³=4096 < 4900 ≤ 16⁴ → depth 4 → 5 levels.
	if full.Levels() != 4 {
		t.Errorf("full levels=%d, want 4", full.Levels())
	}
	if level.Levels() != 5 {
		t.Errorf("level levels=%d, want 5", level.Levels())
	}
	// The paper's tradeoff: level trees are never shallower than full trees.
	if level.Levels() < full.Levels() {
		t.Error("level tree shallower than full tree")
	}
}

func TestSpaceLevelVsFull(t *testing.T) {
	// §5.2: level trees use slightly more space than full trees
	// (nK²/(sc−K) vs nK²/sc) since only m−1 of m slots route.
	g := workload.New(37)
	keys := g.SortedDistinct(500000)
	full := BuildFull(keys, 16).SpaceBytes()
	level := BuildLevel(keys, 16).SpaceBytes()
	if level <= full {
		t.Errorf("level directory %d ≤ full directory %d; paper says level is larger", level, full)
	}
	if float64(level) > 1.3*float64(full) {
		t.Errorf("level directory %d far larger than full %d", level, full)
	}
}

func TestDirectoryIsAligned(t *testing.T) {
	g := workload.New(38)
	keys := g.SortedDistinct(10000)
	full := BuildFull(keys, 16)
	if len(full.dir) == 0 {
		t.Fatal("no directory")
	}
	// Alignment is asserted inside mem.AlignedU32; spot-check node stride:
	// node size 16 keys = 64 bytes = exactly one cache line.
	if full.M()*4 != 64 {
		t.Fatalf("m=16 node is %d bytes", full.M()*4)
	}
}

func TestKeysAccessorSharesArray(t *testing.T) {
	keys := []uint32{1, 2, 3, 4, 5}
	tr := BuildFull(keys, 2)
	if &tr.Keys()[0] != &keys[0] {
		t.Error("tree copied the sorted array; it must be a directory over the caller's array")
	}
}

func TestStringDiagnostics(t *testing.T) {
	g := workload.New(39)
	keys := g.SortedDistinct(1000)
	if s := BuildFull(keys, 16).String(); s == "" {
		t.Error("empty String()")
	}
	if s := BuildLevel(keys, 16).String(); s == "" {
		t.Error("empty String()")
	}
}

func TestAllEqualKeysEntireArray(t *testing.T) {
	keys := make([]uint32, 5000)
	for i := range keys {
		keys[i] = 7
	}
	for name, tr := range buildBoth(t, keys, 16) {
		if got := tr.Search(7); got != 0 {
			t.Errorf("%s: Search(7)=%d, want 0", name, got)
		}
		if got := tr.Search(6); got != -1 {
			t.Errorf("%s: Search(6)=%d", name, got)
		}
		if got := tr.LowerBound(8); got != 5000 {
			t.Errorf("%s: LowerBound(8)=%d", name, got)
		}
	}
}
