package csstree

import (
	"fmt"

	"cssidx/internal/binsearch"
	"cssidx/internal/mem"
)

// Full is a full CSS-tree (§4.1): a directory of internal nodes, each holding
// exactly m keys with m+1 implicit children, stored level by level in a flat
// aligned array over the sorted key slice.  Zero value is not usable; build
// with BuildFull.
type Full struct {
	keys []uint32 // the sorted array a (not owned; never modified)
	dir  []uint32 // internal-node directory, g.Internal nodes of m slots
	g    Geometry
}

// BuildFull constructs a full CSS-tree over the sorted slice keys with m keys
// per node, following Algorithm 4.1: internal entries are filled from the
// last entry of the last internal node down to entry 0, each with the largest
// key of its immediate left subtree found by chasing rightmost children down
// to the (virtual) leaf level.
//
// keys must be sorted ascending (duplicates allowed) and is retained, not
// copied: the tree is a directory over the caller's array, exactly as in the
// paper ("the array is given to us without assumptions that it can be
// restructured").  m must be ≥ 2; node size m·4 bytes is typically the cache
// line (m=16 for 64-byte lines, §5.1).
func BuildFull(keys []uint32, m int) *Full {
	g := FullGeometry(len(keys), m)
	t := &Full{keys: keys, g: g}
	if g.Internal == 0 {
		return t
	}
	t.dir = mem.AlignedU32(g.DirectoryKeys(), mem.CacheLine)
	fan := g.Fanout
	for i := g.DirectoryKeys() - 1; i >= 0; i-- {
		d := i / m // node number of entry i
		j := i % m // slot within the node
		// Immediate left child of slot j, then chase rightmost children
		// until past the internal region.
		c := d*fan + 1 + j
		for c <= g.LNode {
			c = c*fan + fan // the (m+1)-th child
		}
		t.dir[i] = keys[g.LeafMaxIndex(c)]
	}
	return t
}

// Search returns the index in the sorted array of the leftmost occurrence of
// key, or -1 if key is absent (Algorithm 4.2).
func (t *Full) Search(key uint32) int {
	i := t.LowerBound(key)
	if i < len(t.keys) && t.keys[i] == key {
		return i
	}
	return -1
}

// LowerBound returns the smallest index i with keys[i] >= key, or len(keys).
// Because internal keys are left-subtree maxima and node search picks the
// leftmost slot ≥ key, the descent lands on the leaf holding the leftmost
// candidate, so duplicates resolve to their first occurrence.
func (t *Full) LowerBound(key uint32) int {
	g := &t.g
	if g.Internal == 0 {
		return binsearch.LowerBound(t.keys, key)
	}
	m, fan := g.M, g.Fanout
	d := 0
	for d <= g.LNode {
		base := d * m
		j := binsearch.NodeLowerBound(t.dir[base:base+m], m, key)
		d = d*fan + 1 + j
	}
	lo, hi := g.LeafRange(d)
	return lo + binsearch.NodeLowerBound(t.keys[lo:hi], hi-lo, key)
}

// EqualRange returns the half-open range [first,last) of indexes equal to
// key (§3.6: find the leftmost match, scan right).
func (t *Full) EqualRange(key uint32) (first, last int) {
	first = t.LowerBound(key)
	last = first
	for last < len(t.keys) && t.keys[last] == key {
		last++
	}
	return first, last
}

// LowerBoundGeneric is LowerBound using the non-unrolled node search; it
// exists for the code-specialisation ablation (§6.2 reports the generic
// version 20–45% slower).
func (t *Full) LowerBoundGeneric(key uint32) int {
	g := &t.g
	if g.Internal == 0 {
		return binsearch.LowerBound(t.keys, key)
	}
	m, fan := g.M, g.Fanout
	d := 0
	for d <= g.LNode {
		base := d * m
		j := binsearch.NodeLowerBoundGeneric(t.dir[base:base+m], m, key)
		d = d*fan + 1 + j
	}
	lo, hi := g.LeafRange(d)
	return lo + binsearch.NodeLowerBoundGeneric(t.keys[lo:hi], hi-lo, key)
}

// Keys returns the sorted array the tree indexes.
func (t *Full) Keys() []uint32 { return t.keys }

// Dir returns the internal-node directory array (node d occupies slots
// [d·m, (d+1)·m)).  Read-only: exposed for inspection and for the cache
// simulator, which replays directory accesses address by address.
func (t *Full) Dir() []uint32 { return t.dir }

// M returns the number of key slots per node.
func (t *Full) M() int { return t.g.M }

// Geometry returns the node-numbering layout (for inspection, the simulator
// and the analytic model).
func (t *Full) Geometry() Geometry { return t.g }

// SpaceBytes returns the extra space the index occupies beyond the sorted
// array: the directory (§5.2: nK²⁄sc with K=4).
func (t *Full) SpaceBytes() int { return mem.SliceBytes(t.dir) }

// Levels returns the number of node levels traversed by a search, including
// the leaf.
func (t *Full) Levels() int { return t.g.Levels() }

// String describes the tree for diagnostics.
func (t *Full) String() string {
	return fmt.Sprintf("full CSS-tree{n=%d m=%d internal=%d levels=%d dir=%s}",
		t.g.N, t.g.M, t.g.Internal, t.Levels(), mem.Bytes(t.SpaceBytes()))
}
