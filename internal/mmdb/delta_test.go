package mmdb

// Differential tests for the delta layer: a live table absorbing append
// batches must stay bit-identical, on every read surface, to an oracle
// twin that folds every batch the pre-delta way.  The sequences are chosen
// to drive the live table through absorbs, run merges (> maxDeltaRuns) and
// size-triggered folds.

import (
	"fmt"
	"testing"

	"cssidx"
	"cssidx/internal/workload"
)

// twin is one half of a differential pair: a table with a sorted index on
// "k", a sharded index on "s", and a plain measure column "v".
type twin struct {
	tab *Table
	kIx *SortedIndex
	sIx *ShardedIndex
}

func newTwin(t *testing.T, name string, pol AppendPolicy, cols map[string][]uint32, cache bool) *twin {
	t.Helper()
	tab := NewTable(name)
	tab.SetAppendPolicy(pol)
	for _, c := range []string{"k", "s", "v"} {
		if err := tab.AddColumn(c, cols[c]); err != nil {
			t.Fatal(err)
		}
	}
	kIx, err := tab.BuildIndex("k", cssidx.KindLevelCSS, cssidx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sIx, err := tab.BuildShardedIndex("s", 4)
	if err != nil {
		t.Fatal(err)
	}
	if cache {
		tab.EnableCache(CacheOptions{MinCostNs: -1})
	}
	return &twin{tab: tab, kIx: kIx, sIx: sIx}
}

func (w *twin) close() { w.sIx.Close() }

func genCols(g *workload.Gen, base []uint32, n int) map[string][]uint32 {
	return map[string][]uint32{
		"k": g.Lookups(base, n),
		"s": g.Lookups(base, n),
		"v": g.Lookups(base, n),
	}
}

// checkSurfaces compares every read surface of live against oracle.
func checkSurfaces(t *testing.T, tag string, g *workload.Gen, base []uint32, live, oracle *twin) {
	t.Helper()
	probes := g.Lookups(base, 6)
	probes = append(probes, probes[0]+1) // likely absent value

	for _, p := range probes {
		mustEqualU32(t, tag+" SelectEqual(k)", live.kIx.SelectEqual(p), oracle.kIx.SelectEqual(p))
		mustEqualU32(t, tag+" SelectEqual(s)", live.sIx.SelectEqual(p), oracle.sIx.SelectEqual(p))
	}

	ranges := [][2]uint32{
		{0, ^uint32(0)},              // everything
		{probes[0], probes[0] + 1e9}, // wide
		{probes[1], probes[1]},       // point
		{5, 4},                       // empty (lo > hi)
	}
	for _, r := range ranges {
		lo, hi := r[0], r[1]
		lr, _, err := live.tab.SelectRange("k", lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		or, _, err := oracle.tab.SelectRange("k", lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualU32(t, fmt.Sprintf("%s SelectRange(k,[%d,%d])", tag, lo, hi), lr, or)

		ls, err := live.sIx.SelectRange(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		os, err := oracle.sIx.SelectRange(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualU32(t, fmt.Sprintf("%s ShardedRange([%d,%d])", tag, lo, hi), ls, os)

		ln, err := live.kIx.CountRange(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		on, err := oracle.kIx.CountRange(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if ln != on {
			t.Fatalf("%s CountRange(k,[%d,%d]) = %d, want %d", tag, lo, hi, ln, on)
		}
		lv, _, err := live.tab.SelectRange("v", lo, hi) // scan path
		if err != nil {
			t.Fatal(err)
		}
		ov, _, err := oracle.tab.SelectRange("v", lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualU32(t, fmt.Sprintf("%s ScanRange(v,[%d,%d])", tag, lo, hi), lv, ov)
	}

	inList := append(g.Lookups(base, 5), probes[0]+1, probes[1])
	li, _, err := live.tab.SelectIn("k", inList)
	if err != nil {
		t.Fatal(err)
	}
	oi, _, err := oracle.tab.SelectIn("k", inList)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualU32(t, tag+" SelectIn(k)", li, oi)
	mustEqualU32(t, tag+" ShardedIn(s)", live.sIx.SelectIn(inList), oracle.sIx.SelectIn(inList))

	preds := []RangePred{
		{Col: "k", Lo: probes[0], Hi: probes[0] + 1e9},
		{Col: "v", Lo: 0, Hi: ^uint32(0) - 1},
	}
	lw, _, err := live.tab.SelectWhere(preds)
	if err != nil {
		t.Fatal(err)
	}
	ow, _, err := oracle.tab.SelectWhere(preds)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualU32(t, tag+" SelectWhere", lw, ow)

	lg, err := GroupAggregate(live.tab, "k", "v", nil)
	if err != nil {
		t.Fatal(err)
	}
	og, err := GroupAggregate(oracle.tab, "k", "v", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lg) != len(og) {
		t.Fatalf("%s GroupAggregate: %d groups, want %d", tag, len(lg), len(og))
	}
	for i := range lg {
		if lg[i] != og[i] {
			t.Fatalf("%s GroupAggregate[%d]: %+v, want %+v", tag, i, lg[i], og[i])
		}
	}
}

// checkJoin compares the (outerRID, innerRID) pair stream of live vs oracle
// for both inner index flavors.
func checkJoin(t *testing.T, tag string, live, oracle *twin, liveInner, oracleInner *twin) {
	t.Helper()
	collect := func(outer *Table, inner JoinIndex) (a, b []uint32) {
		if _, err := Join(outer, "k", inner, func(o, i uint32) {
			a = append(a, o)
			b = append(b, i)
		}); err != nil {
			t.Fatal(err)
		}
		return a, b
	}
	lo, li := collect(live.tab, liveInner.kIx)
	oo, oi := collect(oracle.tab, oracleInner.kIx)
	mustEqualU32(t, tag+" join(sorted) outer RIDs", lo, oo)
	mustEqualU32(t, tag+" join(sorted) inner RIDs", li, oi)

	lo, li = collect(live.tab, liveInner.sIx)
	oo, oi = collect(oracle.tab, oracleInner.sIx)
	mustEqualU32(t, tag+" join(sharded) outer RIDs", lo, oo)
	mustEqualU32(t, tag+" join(sharded) inner RIDs", li, oi)
}

// TestDeltaDifferentialAllSurfaces drives a live table through absorbs, run
// merges and folds and checks every surface against an always-fold oracle
// after each batch.  Run twice: without a cache (pure computation) and with
// one (cached fills, patched entries and containment hits must not change a
// single RID).
func TestDeltaDifferentialAllSurfaces(t *testing.T) {
	for _, cached := range []bool{false, true} {
		t.Run(fmt.Sprintf("cached=%v", cached), func(t *testing.T) {
			g := workload.New(71)
			base := g.SortedUniform(500)
			initial := genCols(g, base, 3000)
			// MinFoldRows keeps the live table absorbing through enough
			// batches to exceed maxDeltaRuns before its first fold.
			live := newTwin(t, "t", AppendPolicy{MinFoldRows: 600}, initial, cached)
			defer live.close()
			oracle := newTwin(t, "t", AppendPolicy{Disabled: true}, initial, false)
			defer oracle.close()

			innerCols := genCols(g, base, 800)
			liveInner := newTwin(t, "d", AppendPolicy{MinFoldRows: 200}, innerCols, false)
			defer liveInner.close()
			oracleInner := newTwin(t, "d", AppendPolicy{Disabled: true}, innerCols, false)
			defer oracleInner.close()

			// 8 batches: absorbs 1..5 push past maxDeltaRuns (run merge),
			// batch 6 folds (3000/8 < 500+ rows ≥ MinFoldRows kicks in
			// once delta*8 ≥ base), then two more absorbs on the new base.
			sizes := []int{60, 70, 80, 90, 100, 400, 50, 60}
			for bi, n := range sizes {
				batch := genCols(g, base, n)
				if err := live.tab.AppendRows(batch); err != nil {
					t.Fatal(err)
				}
				if err := oracle.tab.AppendRows(batch); err != nil {
					t.Fatal(err)
				}
				ib := genCols(g, base, n/2)
				if err := liveInner.tab.AppendRows(ib); err != nil {
					t.Fatal(err)
				}
				if err := oracleInner.tab.AppendRows(ib); err != nil {
					t.Fatal(err)
				}
				tag := fmt.Sprintf("batch %d", bi)
				checkSurfaces(t, tag, g, base, live, oracle)
				checkJoin(t, tag, live, oracle, liveInner, oracleInner)
				if cached {
					// Second pass over the same surfaces: served from the
					// cache (exact, containment or patched entries), must
					// still be bit-identical.
					checkSurfaces(t, tag+" (replay)", g, base, live, oracle)
				}
			}
			if live.tab.Generation() < 2 {
				t.Fatalf("fold never triggered: gen %d", live.tab.Generation())
			}
			if live.tab.DeltaRows() == 0 {
				t.Fatal("sequence ended with an empty delta; absorbs untested at rest")
			}
			if cached {
				s := live.tab.CacheStats()
				if s.Hits == 0 || s.Patches == 0 {
					t.Fatalf("cache never exercised across absorbs: %+v", s)
				}
			}
		})
	}
}

// TestDeltaFoldPolicy pins the absorb/fold decision and the bookkeeping it
// moves: absorbed batches grow DeltaRows and StateVersion but not
// Generation; crossing the size threshold folds everything into the base.
func TestDeltaFoldPolicy(t *testing.T) {
	g := workload.New(72)
	base := g.SortedUniform(400)
	tab := NewTable("p")
	if err := tab.AddColumn("k", g.Lookups(base, 4000)); err != nil {
		t.Fatal(err)
	}
	gen0, sv0 := tab.Generation(), tab.StateVersion()

	// 4000/8 = 500: batches of 100 absorb until the delta reaches 500.
	for i := 1; i <= 4; i++ {
		if err := tab.AppendRows(map[string][]uint32{"k": g.Lookups(base, 100)}); err != nil {
			t.Fatal(err)
		}
		if got, want := tab.DeltaRows(), 100*i; got != want {
			t.Fatalf("after absorb %d: DeltaRows = %d, want %d", i, got, want)
		}
		if tab.Generation() != gen0 {
			t.Fatalf("absorb %d folded: gen %d", i, tab.Generation())
		}
		if got, want := tab.StateVersion(), sv0+uint64(i); got != want {
			t.Fatalf("after absorb %d: StateVersion = %d, want %d", i, got, want)
		}
		if tab.BaseRows() != 4000 {
			t.Fatalf("absorb %d moved the base: %d", i, tab.BaseRows())
		}
	}
	// Fifth batch brings the delta to 500 = base/8: fold.
	if err := tab.AppendRows(map[string][]uint32{"k": g.Lookups(base, 100)}); err != nil {
		t.Fatal(err)
	}
	if tab.Generation() != gen0+1 {
		t.Fatalf("threshold batch did not fold: gen %d", tab.Generation())
	}
	if tab.DeltaRows() != 0 || tab.BaseRows() != 4500 {
		t.Fatalf("fold left delta %d, base %d", tab.DeltaRows(), tab.BaseRows())
	}

	// Disabled policy folds every batch.
	tab.SetAppendPolicy(AppendPolicy{Disabled: true})
	if err := tab.AppendRows(map[string][]uint32{"k": g.Lookups(base, 10)}); err != nil {
		t.Fatal(err)
	}
	if tab.Generation() != gen0+2 || tab.DeltaRows() != 0 {
		t.Fatalf("disabled policy absorbed: gen %d, delta %d", tab.Generation(), tab.DeltaRows())
	}

	// MinFoldRows floors the trigger even when the ratio is crossed.
	tab.SetAppendPolicy(AppendPolicy{MinFoldRows: 1 << 20})
	if err := tab.AppendRows(map[string][]uint32{"k": g.Lookups(base, 3000)}); err != nil {
		t.Fatal(err)
	}
	if tab.DeltaRows() != 3000 {
		t.Fatalf("MinFoldRows ignored: delta %d", tab.DeltaRows())
	}
}

// TestDeltaAddColumnGuard pins the schema rule the frozen encodings need:
// columns can only be added while the table holds no absorbed delta.
func TestDeltaAddColumnGuard(t *testing.T) {
	g := workload.New(73)
	base := g.SortedUniform(100)
	tab := NewTable("g")
	tab.SetAppendPolicy(AppendPolicy{MinFoldRows: 1 << 20})
	if err := tab.AddColumn("a", g.Lookups(base, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendRows(map[string][]uint32{"a": g.Lookups(base, 10)}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("b", g.Lookups(base, 1010)); err == nil {
		t.Fatal("AddColumn allowed over a live delta")
	}
}
