package mmdb

import (
	"sort"
	"testing"

	"cssidx"
	"cssidx/internal/workload"
)

// salesFixture: region (3 groups) and amount columns over 9 rows.
func salesFixture(t *testing.T) *Table {
	t.Helper()
	tab := NewTable("sales")
	if err := tab.AddColumn("region", []uint32{1, 2, 3, 1, 2, 3, 1, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("amount", []uint32{10, 20, 30, 40, 50, 60, 70, 80, 90}); err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestGroupAggregateAllRows(t *testing.T) {
	tab := salesFixture(t)
	rows, err := GroupAggregate(tab, "region", "amount", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups=%d, want 3", len(rows))
	}
	// Region 1: rows 0,3,6,7 → amounts 10,40,70,80.
	r1 := rows[0]
	if r1.Value != 1 || r1.Count != 4 || r1.Sum != 200 || r1.Min != 10 || r1.Max != 80 {
		t.Errorf("region 1 aggregate wrong: %+v", r1)
	}
	// Region 2: 20,50,90.
	r2 := rows[1]
	if r2.Value != 2 || r2.Count != 3 || r2.Sum != 160 || r2.Min != 20 || r2.Max != 90 {
		t.Errorf("region 2 aggregate wrong: %+v", r2)
	}
	// Groups come back in value order.
	if !(rows[0].Value < rows[1].Value && rows[1].Value < rows[2].Value) {
		t.Error("groups not in value order")
	}
}

func TestGroupAggregateFilteredByRIDs(t *testing.T) {
	tab := salesFixture(t)
	// Only rows 0..2.
	rows, err := GroupAggregate(tab, "region", "amount", []uint32{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups=%d", len(rows))
	}
	for _, r := range rows {
		if r.Count != 1 {
			t.Errorf("group %d count=%d, want 1", r.Value, r.Count)
		}
	}
}

func TestGroupAggregateComposesWithRangeSelect(t *testing.T) {
	tab := salesFixture(t)
	if _, err := tab.BuildIndex("amount", cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
		t.Fatal(err)
	}
	ix, _ := tab.Index("amount")
	rids, err := ix.SelectRange(30, 70)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := GroupAggregate(tab, "region", "amount", rids)
	if err != nil {
		t.Fatal(err)
	}
	// Amounts 30..70 → rows 2(30,r3) 3(40,r1) 4(50,r2) 5(60,r3) 6(70,r1).
	total := int64(0)
	for _, r := range rows {
		total += r.Count
	}
	if total != 5 {
		t.Errorf("filtered aggregate covers %d rows, want 5", total)
	}
}

func TestGroupAggregateErrors(t *testing.T) {
	tab := salesFixture(t)
	if _, err := GroupAggregate(tab, "nope", "amount", nil); err == nil {
		t.Error("missing group column accepted")
	}
	if _, err := GroupAggregate(tab, "region", "nope", nil); err == nil {
		t.Error("missing measure column accepted")
	}
}

func TestPlanRangePrefersIndexWhenSelective(t *testing.T) {
	g := workload.New(160)
	vals := g.Shuffled(g.SortedDistinct(50000))
	tab := NewTable("t")
	if err := tab.AddColumn("v", vals); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.BuildIndex("v", cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
		t.Fatal(err)
	}
	// Narrow predicate → index.
	sorted := append([]uint32(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	plan, err := tab.PlanRange("v", sorted[100], sorted[200])
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UseIndex {
		t.Errorf("narrow range should use index: %+v", plan)
	}
	// Wide predicate → scan.
	plan, err = tab.PlanRange("v", sorted[0], sorted[40000])
	if err != nil {
		t.Fatal(err)
	}
	if plan.UseIndex {
		t.Errorf("wide range should scan: %+v", plan)
	}
	if plan.EstRows < 30000 {
		t.Errorf("estimate %d implausibly low for 80%% selectivity", plan.EstRows)
	}
}

func TestPlanRangeNoIndexFallsBackToScan(t *testing.T) {
	tab := salesFixture(t)
	plan, err := tab.PlanRange("amount", 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if plan.UseIndex {
		t.Error("plan used a non-existent index")
	}
	rids, plan2, err := tab.SelectRange("amount", 30, 70)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.UseIndex {
		t.Error("select used a non-existent index")
	}
	if len(rids) != 5 {
		t.Errorf("scan found %d rows, want 5", len(rids))
	}
}

func TestSelectRangeIndexAndScanAgree(t *testing.T) {
	g := workload.New(161)
	vals := g.Shuffled(g.SortedWithDuplicates(20000, 3))
	tab := NewTable("t")
	if err := tab.AddColumn("v", vals); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.BuildIndex("v", cssidx.KindFullCSS, cssidx.Options{}); err != nil {
		t.Fatal(err)
	}
	sorted := append([]uint32(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, rng := range [][2]uint32{
		{sorted[10], sorted[50]},        // narrow → index
		{sorted[0], sorted[19000]},      // wide → scan
		{sorted[5000], sorted[5000]},    // point
		{sorted[19999] + 1, ^uint32(0)}, // empty above
	} {
		viaTable, plan, err := tab.SelectRange("v", rng[0], rng[1])
		if err != nil {
			t.Fatal(err)
		}
		var viaScan []uint32
		for row, v := range vals {
			if v >= rng[0] && v <= rng[1] {
				viaScan = append(viaScan, uint32(row))
			}
		}
		a := append([]uint32(nil), viaTable...)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		if len(a) != len(viaScan) {
			t.Fatalf("range %v (plan %+v): %d rows vs scan %d", rng, plan, len(a), len(viaScan))
		}
		for i := range a {
			if a[i] != viaScan[i] {
				t.Fatalf("range %v: rid sets diverge at %d", rng, i)
			}
		}
	}
}

func TestSelectWhereConjunction(t *testing.T) {
	g := workload.New(162)
	n := 20000
	a := g.Shuffled(g.SortedWithDuplicates(n, 3))
	b := g.Shuffled(g.SortedWithDuplicates(n, 3))
	tab := NewTable("t")
	if err := tab.AddColumn("a", a); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("b", b); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.BuildIndex("a", cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
		t.Fatal(err)
	}
	// No index on b: forces a mixed index+scan conjunction.
	sa := append([]uint32(nil), a...)
	sort.Slice(sa, func(i, j int) bool { return sa[i] < sa[j] })
	sb := append([]uint32(nil), b...)
	sort.Slice(sb, func(i, j int) bool { return sb[i] < sb[j] })

	preds := []RangePred{
		{Col: "a", Lo: sa[100], Hi: sa[900]},
		{Col: "b", Lo: sb[0], Hi: sb[15000]},
	}
	got, plans, err := tab.SelectWhere(preds)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("plans=%v", plans)
	}
	var want []uint32
	for row := 0; row < n; row++ {
		if a[row] >= preds[0].Lo && a[row] <= preds[0].Hi &&
			b[row] >= preds[1].Lo && b[row] <= preds[1].Hi {
			want = append(want, uint32(row))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("conjunction found %d rows, scan found %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rid sets diverge at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestSelectWhereEmptyAndErrors(t *testing.T) {
	tab := salesFixture(t)
	if _, _, err := tab.SelectWhere(nil); err == nil {
		t.Error("empty predicate list accepted")
	}
	if _, _, err := tab.SelectWhere([]RangePred{{Col: "nope", Lo: 0, Hi: 1}}); err == nil {
		t.Error("unknown column accepted")
	}
	// Disjoint conjuncts → empty result, no error.
	got, _, err := tab.SelectWhere([]RangePred{
		{Col: "amount", Lo: 10, Hi: 10},
		{Col: "amount", Lo: 99, Hi: 99},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("disjoint conjunction returned %v", got)
	}
}

func TestPlanRangeHashIndexScans(t *testing.T) {
	tab := salesFixture(t)
	if _, err := tab.BuildIndex("amount", cssidx.KindHash, cssidx.Options{}); err != nil {
		t.Fatal(err)
	}
	plan, err := tab.PlanRange("amount", 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if plan.UseIndex {
		t.Errorf("hash index chosen for a range predicate: %+v", plan)
	}
	rids, _, err := tab.SelectRange("amount", 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 3 {
		t.Errorf("scan fallback found %d rows, want 3", len(rids))
	}
}
