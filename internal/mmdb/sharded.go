package mmdb

// Sharded serving for table queries: a ShardedIndex is the concurrent
// counterpart of SortedIndex.  The whole index state — sorted domain-ID
// keys, the RID list, and the cssidx.ShardedIndex over the keys — lives in
// one immutable snapshot behind an atomic pointer, so selections and range
// queries keep serving, lock-free and torn-read-free, while AppendRows
// rebuilds and publishes the next epoch (the §2.3 cycle applied at the
// table level, on top of the per-shard epoch-swaps inside the index).

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"cssidx"
	"cssidx/internal/domain"
	"cssidx/internal/governor"
	"cssidx/internal/parallel"
	"cssidx/internal/qcache"
	"cssidx/internal/sortu32"
	"cssidx/internal/telemetry"
)

// ShardedIndex is a concurrently servable RID list + sharded search index
// on one column.  Build with Table.BuildShardedIndex; queries may run from
// any goroutine, concurrently with AppendRows.
//
// Results are cached per frozen epoch when the owning table has a result
// cache: every entry is stamped with the epoch it was computed under, so a
// query racing an AppendRows rebuild either hits an entry of exactly its
// own epoch or computes against its own frozen snapshot — epochs never
// mix, and a published rebuild invalidates simply by moving the token.
type ShardedIndex struct {
	col     *Column
	tbl     *Table // owning table: result cache + name for fingerprints
	colName string
	shards  int
	cur     atomic.Pointer[shardedEpoch]
}

// shardedEpoch is one published state of the index: a full rebuild (fold),
// or an absorbed append batch sharing the previous epoch's base arrays and
// search structure with one more delta run stacked on top.
type shardedEpoch struct {
	epoch uint64
	uid   uint64            // globally-unique epoch id (cache token)
	dom   *domain.IntDomain // the domain the keys were encoded against
	keys  []uint32          // domain IDs in sorted order
	rids  []uint32          // RIDs ordered by column value
	idx   *cssidx.ShardedIndex[uint32]
	runs  []idxRun // absorbed delta runs since the last fold (delta.go)

	// view memoizes runs folded to a single run for readers (mergedRuns),
	// and overlay the fully merged base ∪ delta image for range reads
	// (mergedOverlay); an epoch is immutable once published, so neither
	// memo ever goes stale.
	view    atomic.Pointer[[]idxRun]
	overlay atomic.Pointer[rangeOverlay]
}

// readRuns returns the delta runs as reads should see them: the memoized
// single-run view of the tier.
func (s *shardedEpoch) readRuns() []idxRun { return mergedRuns(s.runs, &s.view) }

// epochUID issues globally-unique ids for published epochs.  Epoch() counts
// per index instance and restarts at 1 when BuildShardedIndex replaces an
// index, so the *cache* token must come from here: a straggler reader's
// late insert stamped with an old instance's epoch can then never collide
// with a fresh instance's tokens.
var epochUID atomic.Uint64

// BuildShardedIndex builds a sharded index on the column and registers it;
// shards ≤ 0 picks the cssidx default (GOMAXPROCS, capped at 16).
// AppendRows rebuilds the index and publishes the new state atomically.
func (t *Table) BuildShardedIndex(colName string, shards int) (*ShardedIndex, error) {
	col, ok := t.cols[colName]
	if !ok {
		return nil, fmt.Errorf("mmdb: no column %s in table %s", colName, t.name)
	}
	ix := &ShardedIndex{col: col, tbl: t, colName: colName, shards: shards}
	ix.rebuild()
	// Rows appended since the last fold are not in the frozen encoding
	// the rebuild indexed; absorb them as a delta run so a late-built
	// index still covers every row.
	if t.rows > t.baseRows {
		ix.absorb(col.raw[t.baseRows:], uint32(t.baseRows))
	}
	if old, ok := t.sharded[colName]; ok {
		old.Close() // release the replaced index's background rebuilder
	}
	t.sharded[colName] = ix
	return ix, nil
}

// ShardedIndex returns the registered sharded index on a column, if any.
func (t *Table) ShardedIndex(colName string) (*ShardedIndex, bool) {
	ix, ok := t.sharded[colName]
	return ix, ok
}

// rebuild constructs the next epoch from the column's current encoding and
// publishes it with a single pointer swap.  The previous epoch's background
// rebuilder is released; readers still holding it keep valid results.
func (ix *ShardedIndex) rebuild() {
	n := len(ix.col.ids)
	keys := make([]uint32, n)
	rids := make([]uint32, n)
	copy(keys, ix.col.ids)
	for i := range rids {
		rids[i] = uint32(i)
	}
	sortu32.SortPairs(keys, rids)
	next := &shardedEpoch{
		epoch: 1,
		uid:   epochUID.Add(1),
		dom:   ix.col.dom,
		keys:  keys,
		rids:  rids,
		idx:   cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{Shards: ix.shards}),
	}
	if old := ix.cur.Load(); old != nil {
		next.epoch = old.epoch + 1
		// Absorb epochs share one base idx; the fold closes it exactly once.
		old.idx.Close()
	}
	ix.cur.Store(next)
}

// absorb publishes the next epoch with one more delta run, sharing the
// previous epoch's domain, base arrays and search structure (which is why
// only rebuild — never absorb — closes the underlying index).
func (ix *ShardedIndex) absorb(vals []uint32, startRID uint32) {
	s := ix.cur.Load()
	next := &shardedEpoch{
		epoch: s.epoch + 1,
		uid:   epochUID.Add(1),
		dom:   s.dom,
		keys:  s.keys,
		rids:  s.rids,
		idx:   s.idx,
		runs:  appendRun(append([]idxRun(nil), s.runs...), newIdxRun(vals, startRID)),
	}
	ix.cur.Store(next)
}

// Epoch returns the current table-level epoch (1 = initial build, +1 per
// published AppendRows state — a full rebuild or an absorbed batch).
func (ix *ShardedIndex) Epoch() uint64 { return ix.cur.Load().epoch }

// ShardCount returns the shard count of the current epoch's index.
func (ix *ShardedIndex) ShardCount() int { return ix.cur.Load().idx.ShardCount() }

// SpaceBytes returns the current epoch's footprint: RID list, key array and
// the per-shard arrays (counted as one extra key copy across shards).
func (ix *ShardedIndex) SpaceBytes() int {
	s := ix.cur.Load()
	return 4*len(s.rids) + 4*len(s.keys) + 4*s.idx.Len() + deltaRunsBytes(s.runs)
}

// SelectEqual returns the RIDs of rows whose column equals value — base
// rows first, then delta rows, which is ascending-RID order.
func (ix *ShardedIndex) SelectEqual(value uint32) []uint32 {
	return ix.cur.Load().selectEqual(value)
}

// SelectEqualCtx is SelectEqual under governance: the probe enters the
// owning table's admission controller as ClassPoint — the class with the
// most queue headroom, served last by the shed policy — and the result is
// charged against ctx's byte budget.
func (ix *ShardedIndex) SelectEqualCtx(ctx context.Context, value uint32) ([]uint32, error) {
	ctl := governor.For(ctx)
	if err := ctl.Err(); err != nil {
		governor.NoteAbort(err)
		return nil, err
	}
	var release = func() {}
	if ix.tbl != nil {
		var err error
		release, err = ix.tbl.admit(ctl, governor.ClassPoint, 0)
		if err != nil {
			governor.NoteAbort(err)
			return nil, err
		}
	}
	defer release()
	out := ix.SelectEqual(value)
	if err := ctl.Charge(4 * int64(len(out))); err != nil {
		governor.NoteAbort(err)
		return nil, err
	}
	return out, nil
}

// selectEqual answers one equality probe against this frozen epoch.  Reuse
// fills go through here rather than ShardedIndex.SelectEqual so they probe
// the entry's own epoch, not whatever the index pointer has moved on to.
func (s *shardedEpoch) selectEqual(value uint32) []uint32 {
	var out []uint32
	if id, ok := s.dom.ID(value); ok {
		if first, last := s.idx.EqualRange(id); first < last {
			out = append(out, s.rids[first:last]...)
		}
	}
	return deltaEqualAppend(s.readRuns(), value, out)
}

// qc returns the owning table's result cache (nil when caching is off).
func (ix *ShardedIndex) qc() *qcache.Cache {
	if ix.tbl == nil {
		return nil
	}
	return ix.tbl.Cache()
}

// SelectIn returns the RIDs of rows whose column equals any value in the
// IN-list, against one table-level epoch: the list is translated through the
// domain with one lockstep descent per chunk and probed with the sharded
// index's batched equal-range against one frozen cross-shard snapshot, with
// large lists fanned across the parallel worker pool.  Duplicate list values
// contribute their rows once; RIDs come back grouped by list order,
// ascending within a value.  Results are cached per frozen epoch.
func (ix *ShardedIndex) SelectIn(values []uint32) []uint32 {
	out, _ := ix.selectIn(nil, values, nil)
	return out
}

// SelectInCtx is SelectIn under governance; the list probes enter the
// owning table's admission controller as ClassSelect after a cache miss.
func (ix *ShardedIndex) SelectInCtx(ctx context.Context, values []uint32) ([]uint32, error) {
	ctl := governor.For(ctx)
	if err := ctl.Err(); err != nil {
		governor.NoteAbort(err)
		return nil, err
	}
	out, err := ix.selectIn(ctl, values, nil)
	if err != nil {
		governor.NoteAbort(err)
	}
	return out, err
}

// selectIn is SelectIn threading the governance handle (nil = ungoverned)
// and a trace span recording the epoch-layer cache outcome and execution
// shape.
func (ix *ShardedIndex) selectIn(ctl *governor.Ctl, values []uint32, sp *telemetry.Span) ([]uint32, error) {
	s := ix.cur.Load()
	distinct := dedupeValues(values)
	qc, tok := ix.qc(), qcache.Token{Epoch: s.uid}
	var key qcache.Key
	grouped := false
	if qc.Enabled() {
		cs := sp.Child("cache")
		key = inFP(ix.tbl.name, ix.colName, qcache.LayerEpoch, distinct)
		if rids, ok := qc.Lookup(key, tok); ok {
			cs.Attr("outcome", "hit").AttrInt("rows", len(rids))
			cs.End()
			return rids, nil
		}
		if len(distinct) > 0 {
			if r, ok := qc.LookupInReuse(key, tok, distinct); ok {
				if len(r.Missing) == 0 {
					// Not re-admitted: the source entry already answers any
					// repeat of this subset at the same price.
					out, _ := assembleInGroups(distinct, r.Groups, nil)
					cs.Attr("outcome", "subset-replay").AttrInt("rows", len(out))
					cs.End()
					return out, nil
				}
				if inFillWorthwhile(len(r.Missing), len(distinct)) {
					// Missing values probe the SAME frozen epoch the cached
					// groups were computed against — the current pointer may
					// already hold a later epoch.
					fills := make(map[uint32][]uint32, len(r.Missing))
					for _, v := range r.Missing {
						fills[v] = s.selectEqual(v)
					}
					out, goff := assembleInGroups(distinct, r.Groups, fills)
					cs.Attr("outcome", "superset-fill").AttrInt("missing_probes", len(r.Missing)).AttrInt("rows", len(out))
					cs.End()
					qc.NoteInFill(key, len(r.Missing))
					qc.InsertIn(key, tok, distinct, goff, out,
						estRecomputeNs(Plan{UseIndex: true, EstRows: len(out)}, 0))
					return out, nil
				}
			}
		}
		cs.Attr("outcome", "miss")
		cs.End()
		grouped = len(distinct) > 0 && (parallel.Options{}).WorkersFor(len(distinct)) <= 1
	}
	var release = func() {}
	if ix.tbl != nil {
		var aerr error
		release, aerr = ix.tbl.admit(ctl, governor.ClassSelect, 4*int64(len(distinct)))
		if aerr != nil {
			sp.Attr("aborted", aerr.Error())
			return nil, aerr
		}
	}
	defer release()
	ex := sp.Child("execute")
	start := time.Now()
	v := s.idx.Snapshot()
	var out, goff []uint32
	var err error
	switch {
	case grouped:
		// Small lists stay single-threaded and record group offsets, the
		// admission shape subset/superset reuse needs; output rows are
		// identical to the ungrouped drivers.
		out, goff, err = selectInGrouped(s.dom, s.rids, distinct, v.EqualRangeBatch, s.readRuns(), true, ctl.Checkpoint())
		ex.Attr("path", "sharded-grouped").AttrInt("workers", 1)
	case len(s.runs) == 0:
		out, err = selectInRIDs(s.dom, s.rids, distinct, v.EqualRangeBatch, parallel.Options{}, ctl)
		if ex != nil { // attr args must not run on the untraced path
			ex.Attr("path", "sharded-batch").AttrInt("workers", (parallel.Options{}).WorkersFor(len(distinct)))
		}
	default:
		out, err = selectInMerged(s.dom, s.rids, distinct, v.EqualRangeBatch, s.readRuns(), ctl.Checkpoint())
		ex.Attr("path", "sharded-delta-merged").AttrInt("delta_runs", len(s.runs))
	}
	if err != nil {
		ex.Attr("aborted", err.Error())
		ex.End()
		return nil, err
	}
	if sp != nil {
		ex.AttrInt("shards_touched", s.idx.ShardCount()).AttrInt("rows", len(out))
	}
	ex.End()
	var ad *telemetry.Span
	if qc.Enabled() {
		ad = sp.Child("admit")
	}
	qc.InsertIn(key, tok, distinct, goff, out,
		recomputeCost(time.Since(start), Plan{UseIndex: true, EstRows: len(out)}, 0))
	ad.End()
	return out, nil
}

// joinFreeze captures the prober state for a whole join: the current
// table-level epoch (domain + RID list) and one frozen snapshot of every
// shard, so a join probes one consistent index state no matter how many
// AppendRows epochs publish while it runs.
func (ix *ShardedIndex) joinFreeze() joinProber {
	s := ix.cur.Load()
	p := &shardedJoinProber{dom: s.dom, rids: s.rids, v: s.idx.Snapshot(), runs: s.readRuns(), epoch: s.uid}
	if ix.tbl != nil {
		p.table, p.col = ix.tbl.name, ix.colName
	}
	return p
}

// shardedJoinProber is the frozen join surface of a ShardedIndex.
type shardedJoinProber struct {
	dom   *domain.IntDomain
	rids  []uint32
	v     *cssidx.ShardedView[uint32]
	runs  []idxRun
	table string // inner identity for join-result caching
	col   string
	epoch uint64 // the frozen epoch's globally-unique uid
}

// cacheTag: a sharded inner is identified by its table and column and
// versioned by the frozen epoch captured at joinFreeze.
func (p *shardedJoinProber) cacheTag() (uint64, uint64, bool) {
	if p.table == "" {
		return 0, 0, false
	}
	h := qcache.HashString(qcache.HashString(qcache.HashSeed, p.table), p.col)
	h = qcache.HashU32(h, uint32(qcache.LayerEpoch))
	return h, p.epoch, true
}

// probeEqual runs the shared probe driver against the frozen shard snapshot.
func (p *shardedJoinProber) probeEqual(values []uint32, s *probeScratch, emit func(ordinal int, rid uint32)) int {
	return probeEqualCore(p.dom, values, s, p.v.EqualRangeBatch, p.rids, p.runs, emit)
}

// SelectRange returns the RIDs of rows with lo ≤ column ≤ hi, in (value,
// RID) order — base and delta rows interleaved exactly as a rebuilt epoch
// would order them.  Results are cached per frozen epoch under the raw
// closed bounds, with containment reuse: a cached wider range on this
// column (same epoch) answers the query by slicing its sorted run.
func (ix *ShardedIndex) SelectRange(lo, hi uint32) ([]uint32, error) {
	return ix.selectRange(nil, lo, hi, nil)
}

// SelectRangeCtx is SelectRange under governance; a cache-missing range
// enters the owning table's admission controller as ClassSelect and the
// merged result is charged against ctx's byte budget.
func (ix *ShardedIndex) SelectRangeCtx(ctx context.Context, lo, hi uint32) ([]uint32, error) {
	ctl := governor.For(ctx)
	if err := ctl.Err(); err != nil {
		governor.NoteAbort(err)
		return nil, err
	}
	out, err := ix.selectRange(ctl, lo, hi, nil)
	if err != nil {
		governor.NoteAbort(err)
	}
	return out, err
}

// selectRange is SelectRange threading the governance handle (nil =
// ungoverned) and a trace span: it records the epoch-layer cache outcome
// and, on a compute, the shards the normalized ID range touches and the
// delta runs merged in.
func (ix *ShardedIndex) selectRange(ctl *governor.Ctl, lo, hi uint32, sp *telemetry.Span) ([]uint32, error) {
	if lo > hi {
		return nil, nil
	}
	s := ix.cur.Load()
	loID, hiID := s.dom.IDRange(lo, hi)
	if loID >= hiID && len(s.runs) == 0 {
		return nil, nil
	}
	qc, tok := ix.qc(), qcache.Token{Epoch: s.uid}
	var key qcache.Key
	if qc.Enabled() {
		cs := sp.Child("cache")
		key = rangeFP(ix.tbl.name, ix.colName, qcache.LayerEpoch, lo, hi)
		if rids, kind := qc.LookupRangeKind(key, tok); kind != qcache.HitMiss {
			cs.Attr("outcome", kind.String()).AttrInt("rows", len(rids))
			cs.End()
			return rids, nil
		}
		// Gap probes run against this same frozen epoch (s.rangeDirect), so
		// stitched segments and probe results can never mix states.
		if rids, hit, err := tryStitchRange(qc, key, tok, s.estRangeRows(loID, hiID), 0, s.rangeDirect, cs); hit || err != nil {
			cs.End()
			return rids, err
		}
		cs.Attr("outcome", "miss")
		cs.End()
	}
	var release = func() {}
	if ix.tbl != nil {
		var aerr error
		release, aerr = ix.tbl.admit(ctl, governor.ClassSelect, 4*int64(s.estRangeRows(loID, hiID)))
		if aerr != nil {
			sp.Attr("aborted", aerr.Error())
			return nil, aerr
		}
	}
	defer release()
	ex := sp.Child("execute")
	start := time.Now()
	out, keys := s.rangeMerged(lo, hi, qc.Enabled())
	if err := ctl.Charge(4 * int64(len(out))); err != nil {
		ex.Attr("aborted", err.Error())
		ex.End()
		return nil, err
	}
	if sp != nil {
		ex.Attr("path", "sharded").
			AttrInt("shards_touched", shardsTouched(s.idx.Bounds(), loID, hiID)).
			AttrInt("delta_runs", len(s.runs)).AttrInt("rows", len(out))
	}
	ex.End()
	if qc.Enabled() {
		ad := sp.Child("admit")
		qc.InsertRange(key, tok, keys, out,
			recomputeCost(time.Since(start), Plan{UseIndex: true, EstRows: len(out)}, 0))
		ad.End()
	}
	return out, nil
}

// rangeMerged answers the closed raw range from the epoch's fully merged
// image: through the memoized base ∪ delta overlay when delta runs exist,
// else directly from the base arrays.  keys aliases epoch-immutable memory.
func (s *shardedEpoch) rangeMerged(lo, hi uint32, wantKeys bool) (out, keys []uint32) {
	if len(s.runs) > 0 {
		ov := mergedOverlay(s.dom, s.keys, s.rids, s.readRuns(), &s.overlay)
		if f, l := ov.lowerBound(lo), ov.upperBound(hi); f < l {
			out = append([]uint32(nil), ov.rids[f:l]...)
			keys = ov.vals[f:l]
		}
		return out, keys
	}
	loID, hiID := s.dom.IDRange(lo, hi)
	var first, last int
	if loID < hiID {
		first, last = s.idx.LowerBound(loID), s.idx.LowerBound(hiID)
	}
	if first < last {
		out, keys = mergeRangeDelta(s.dom, s.keys, s.rids, first, last, nil, lo, hi, wantKeys)
	}
	return out, keys
}

// rangeDirect answers the closed raw range by merging the base segment with
// the delta runs directly, never touching the memoized overlay — a stitch's
// gap probes must stay proportional to the gap, not trigger the O(n) merged
// image a full recompute would build.
func (s *shardedEpoch) rangeDirect(lo, hi uint32) (rids, keys []uint32, err error) {
	if lo > hi {
		return nil, nil, nil
	}
	loID, hiID := s.dom.IDRange(lo, hi)
	var first, last int
	if loID < hiID {
		first, last = s.idx.LowerBound(loID), s.idx.LowerBound(hiID)
	}
	runs := s.readRuns()
	if first >= last && len(runs) == 0 {
		return nil, nil, nil
	}
	rids, keys = mergeRangeDelta(s.dom, s.keys, s.rids, first, last, runs, lo, hi, true)
	return rids, keys, nil
}

// estRangeRows estimates the qualifying rows of the normalized ID range
// under the planner's uniform-within-domain assumption.
func (s *shardedEpoch) estRangeRows(loID, hiID uint32) int {
	if s.dom.Len() == 0 {
		return 0
	}
	return int(float64(hiID-loID) / float64(s.dom.Len()) * float64(len(s.rids)))
}

// CountRange is SelectRange without materialising RIDs.
func (ix *ShardedIndex) CountRange(lo, hi uint32) (int, error) {
	if lo > hi {
		return 0, nil
	}
	s := ix.cur.Load()
	n := deltaCountRange(s.readRuns(), lo, hi)
	loID, hiID := s.dom.IDRange(lo, hi)
	if loID < hiID {
		n += s.idx.LowerBound(hiID) - s.idx.LowerBound(loID)
	}
	return n, nil
}

// Close releases the current epoch's background rebuilder.  Queries remain
// valid; call when the table is done serving.
func (ix *ShardedIndex) Close() { ix.cur.Load().idx.Close() }
