package mmdb

// Telemetry for the query layer: one latency histogram per query surface
// (bracketing the public Select*/GroupAggregate/JoinWith entry points) and
// counters for the planner's access-path decisions.  All series live in
// telemetry.Default and cost a single atomic load while collection is off.

import (
	"sort"

	"cssidx/internal/telemetry"
)

var (
	histRangeNs = telemetry.H(`mmdb_query_ns{surface="range"}`)
	histInNs    = telemetry.H(`mmdb_query_ns{surface="in"}`)
	histWhereNs = telemetry.H(`mmdb_query_ns{surface="where"}`)
	histAggNs   = telemetry.H(`mmdb_query_ns{surface="agg"}`)
	histJoinNs  = telemetry.H(`mmdb_query_ns{surface="join"}`)

	ctrPlanIndex = telemetry.C(`mmdb_plan_total{path="index"}`)
	ctrPlanScan  = telemetry.C(`mmdb_plan_total{path="scan"}`)
)

// notePlan counts the access path an executing query committed to (plans
// produced for inspection via PlanRange/PlanIn are not counted).
func notePlan(p Plan) {
	if p.UseIndex {
		ctrPlanIndex.Inc()
	} else {
		ctrPlanScan.Inc()
	}
}

// shardsTouched counts the shards whose key range intersects the
// normalized half-open domain-ID range [loID, hiID), given the index's
// split boundaries (len = shards-1, strictly ascending; shard i serves
// IDs < bounds[i], the last shard the rest).
func shardsTouched(bounds []uint32, loID, hiID uint32) int {
	if loID >= hiID {
		return 0
	}
	first := sort.Search(len(bounds), func(i int) bool { return loID < bounds[i] })
	last := sort.Search(len(bounds), func(i int) bool { return hiID-1 < bounds[i] })
	return last - first + 1
}
