package mmdb

// Differential tests for the intermediate-reuse (recycler) paths: range
// stitching, IN-list subset/superset replay and GroupAggregate caching must
// stay bit-identical to uncached execution — across every ordered index
// kind, absorbed appends and sharded epoch swaps — while the hit-kind
// counters prove the reuse paths actually served.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"cssidx"
	"cssidx/internal/workload"
)

// recyclePair builds cached/plain twins with one sorted index of the given
// kind on "a", a sharded index on "b", and a measure column "v", with folds
// disabled so appends absorb (the recycler's home turf).
func recyclePair(t *testing.T, kind cssidx.Kind, n int, seed int64) (cached, plain *Table, g *workload.Gen, base []uint32) {
	t.Helper()
	g = workload.New(seed)
	base = g.SortedUniform(n / 2)
	cols := map[string][]uint32{
		"a": g.Lookups(base, n),
		"b": g.Lookups(base, n),
		"v": g.Lookups(base, n),
	}
	build := func() *Table {
		tab := NewTable("t")
		tab.SetAppendPolicy(AppendPolicy{MinFoldRows: 1 << 20})
		for _, c := range []string{"a", "b", "v"} {
			if err := tab.AddColumn(c, cols[c]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tab.BuildIndex("a", kind, cssidx.Options{}); err != nil {
			t.Fatal(err)
		}
		if _, err := tab.BuildShardedIndex("b", 4); err != nil {
			t.Fatal(err)
		}
		return tab
	}
	cached = build()
	cached.EnableCache(CacheOptions{MinCostNs: -1})
	plain = build()
	return cached, plain, g, base
}

// orderedKinds returns every index kind with ordered access (range surface).
func orderedKinds() []cssidx.Kind {
	var out []cssidx.Kind
	for _, k := range cssidx.Kinds() {
		if k != cssidx.KindHash {
			out = append(out, k)
		}
	}
	return out
}

// TestStitchedRangesDifferential marches an overlapping window across the
// value space — the shifting-dashboard pattern — interleaved with absorbed
// appends, on every ordered index kind.  Every window must be bit-identical
// to the uncached twin, and the stream must include stitched answers.
func TestStitchedRangesDifferential(t *testing.T) {
	for _, kind := range orderedKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			cached, plain, g, base := recyclePair(t, kind, 4000, 41)
			vals := base
			width := len(vals) / 12 // ~8% selectivity: index path
			step := width / 4
			for q := 0; q*step+width < len(vals); q++ {
				lo, hi := vals[q*step], vals[q*step+width]
				want, _, err := plain.SelectRange("a", lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := cached.SelectRange("a", lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				mustEqualU32(t, fmt.Sprintf("%v window %d", kind, q), got, want)
				if q%5 == 4 { // absorb mid-stream: entries patch, then stitch
					batch := map[string][]uint32{
						"a": g.Lookups(base, 40), "b": g.Lookups(base, 40), "v": g.Lookups(base, 40),
					}
					if err := cached.AppendRows(batch); err != nil {
						t.Fatal(err)
					}
					if err := plain.AppendRows(batch); err != nil {
						t.Fatal(err)
					}
				}
			}
			s := cached.CacheStats()
			if s.StitchedHits == 0 {
				t.Fatalf("%v: shifting windows never stitched: %+v", kind, s)
			}
			if cached.Generation() != 1 {
				t.Fatalf("%v: fold happened, stream invalid", kind)
			}
		})
	}
}

// TestStitchedWhereConjunct checks the SelectWhere conjunct path stitches
// too: a conjunction sharing a shifted range with earlier queries reuses
// their cached runs.
func TestStitchedWhereConjunct(t *testing.T) {
	cached, plain, _, base := recyclePair(t, cssidx.KindLevelCSS, 4000, 43)
	lo1, hi1 := base[100], base[360]
	lo2, hi2 := base[200], base[460] // overlaps [lo1, hi1]
	if _, _, err := cached.SelectRange("a", lo1, hi1); err != nil {
		t.Fatal(err)
	}
	preds := []RangePred{{Col: "a", Lo: lo2, Hi: hi2}, {Col: "v", Lo: 0, Hi: ^uint32(0) - 1}}
	want, _, err := plain.SelectWhere(preds)
	if err != nil {
		t.Fatal(err)
	}
	before := cached.CacheStats()
	got, _, err := cached.SelectWhere(preds)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualU32(t, "stitched where", got, want)
	if s := cached.CacheStats(); s.StitchedHits != before.StitchedHits+1 {
		t.Fatalf("conjunct did not stitch: %+v -> %+v", before, s)
	}
}

// TestInSubsetSupersetDifferential replays subset IN-lists and fills
// near-supersets from a cached grouped entry, on both the table surface and
// the sharded epoch surface, across absorbed appends.
func TestInSubsetSupersetDifferential(t *testing.T) {
	cached, plain, g, base := recyclePair(t, cssidx.KindLevelCSS, 4000, 47)
	pool := g.Lookups(base, 24)
	shC, _ := cached.ShardedIndex("b")
	shP, _ := plain.ShardedIndex("b")
	defer shC.Close()
	defer shP.Close()

	check := func(tag string, list []uint32) {
		t.Helper()
		want, _, err := plain.SelectIn("a", list)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := cached.SelectIn("a", list)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualU32(t, tag+" table", got, want)
		mustEqualU32(t, tag+" sharded", shC.SelectIn(list), shP.SelectIn(list))
	}

	check("fill", pool) // seeds the grouped entries
	check("subset", pool[3:15])
	check("subset-reordered", []uint32{pool[9], pool[2], pool[5]})
	near := append(append([]uint32(nil), pool...), base[7]+1) // one unseen value
	check("near-superset", near)
	s := cached.CacheStats()
	if s.SubsetHits == 0 || s.SupersetHits == 0 {
		t.Fatalf("IN reuse never engaged: %+v", s)
	}

	// Absorb, then replay: grouped entries must splice and keep serving.
	batch := map[string][]uint32{
		"a": g.Lookups(pool, 60), "b": g.Lookups(pool, 60), "v": g.Lookups(pool, 60),
	}
	if err := cached.AppendRows(batch); err != nil {
		t.Fatal(err)
	}
	if err := plain.AppendRows(batch); err != nil {
		t.Fatal(err)
	}
	check("post-absorb fill", pool)
	check("post-absorb subset", pool[1:9])
	if s := cached.CacheStats(); s.Patches == 0 {
		t.Fatalf("absorb patched nothing: %+v", s)
	}
}

// TestGroupAggregateCachedDifferential covers the aggregate cache through
// repeats (hits), absorbs (PatchAppend merges), folds (drop + recompute)
// and explicit-RID sources (retokened entries).
func TestGroupAggregateCachedDifferential(t *testing.T) {
	cached, plain, g, base := recyclePair(t, cssidx.KindLevelCSS, 4000, 53)

	checkAgg := func(tag string, rids []uint32) {
		t.Helper()
		want, err := GroupAggregate(plain, "a", "v", rids)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			got, err := GroupAggregate(cached, "a", "v", rids)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s pass %d: %d groups, want %d", tag, pass, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s pass %d [%d]: %+v, want %+v", tag, pass, i, got[i], want[i])
				}
			}
		}
	}

	checkAgg("all-rows", nil)
	sub, _, err := plain.SelectRange("a", base[10], base[len(base)/4])
	if err != nil {
		t.Fatal(err)
	}
	checkAgg("explicit-rids", sub)
	checkAgg("empty-rids", []uint32{}) // distinct fingerprint from nil
	if s := cached.CacheStats(); s.AggregateHits == 0 {
		t.Fatalf("aggregate cache never hit: %+v", s)
	}

	// Absorb: the all-rows entry must patch to the recomputed answer.
	for round := 0; round < 3; round++ {
		batch := map[string][]uint32{
			"a": g.Lookups(base, 50), "b": g.Lookups(base, 50), "v": g.Lookups(base, 50),
		}
		if err := cached.AppendRows(batch); err != nil {
			t.Fatal(err)
		}
		if err := plain.AppendRows(batch); err != nil {
			t.Fatal(err)
		}
		checkAgg(fmt.Sprintf("post-absorb %d", round), nil)
		checkAgg(fmt.Sprintf("post-absorb %d explicit", round), sub)
	}

	// Fold: entries drop, recompute must refill and match.
	cached.SetAppendPolicy(AppendPolicy{})
	plain.SetAppendPolicy(AppendPolicy{})
	batch := map[string][]uint32{
		"a": g.Lookups(base, 3000), "b": g.Lookups(base, 3000), "v": g.Lookups(base, 3000),
	}
	if err := cached.AppendRows(batch); err != nil {
		t.Fatal(err)
	}
	if err := plain.AppendRows(batch); err != nil {
		t.Fatal(err)
	}
	if cached.Generation() != 2 {
		t.Fatal("fold expected")
	}
	checkAgg("post-fold", nil)
}

// TestRecycleRaceSharded is the -race gate for the reuse paths against
// epoch swaps: readers stream overlapping sharded ranges (stitch + patch
// targets) and IN subsets while a writer absorbs batches; the quiesced
// state must match an uncached replica bit for bit.
func TestRecycleRaceSharded(t *testing.T) {
	g := workload.New(59)
	base := g.SortedUniform(2000)
	cols := func(n int) map[string][]uint32 {
		return map[string][]uint32{"x": g.Lookups(base, n)}
	}
	build := func(init map[string][]uint32) *Table {
		tab := NewTable("t")
		tab.SetAppendPolicy(AppendPolicy{MinFoldRows: 1 << 20})
		if err := tab.AddColumn("x", init["x"]); err != nil {
			t.Fatal(err)
		}
		if _, err := tab.BuildShardedIndex("x", 4); err != nil {
			t.Fatal(err)
		}
		return tab
	}
	init := cols(4000)
	cached := build(init)
	cached.EnableCache(CacheOptions{MinCostNs: -1})
	plain := build(init)
	shC, _ := cached.ShardedIndex("x")
	defer shC.Close()
	shP, _ := plain.ShardedIndex("x")
	defer shP.Close()

	pool := g.Lookups(base, 16)
	const appends = 25
	batches := make([]map[string][]uint32, appends)
	for i := range batches {
		batches[i] = cols(40)
	}
	maxRows := uint32(4000 + appends*40)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lg := workload.New(int64(200 + r))
			for i := 0; !stop.Load(); i++ {
				// Overlapping windows: lo walks, width fixed — the stream
				// that stitches against whatever epoch each query lands on.
				j := i % (len(base) - 200)
				rids, err := shC.SelectRange(base[j], base[j+150])
				if err != nil {
					panic(err)
				}
				for _, rid := range rids {
					if rid >= maxRows {
						panic(fmt.Sprintf("rid %d out of range %d", rid, maxRows))
					}
				}
				shC.SelectIn(pool[:4+i%12])
				_ = lg
			}
		}(r)
	}
	for i := 0; i < appends; i++ {
		if err := cached.AppendRows(batches[i]); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	for i := 0; i < appends; i++ {
		if err := plain.AppendRows(batches[i]); err != nil {
			t.Fatal(err)
		}
	}
	for pass := 0; pass < 2; pass++ {
		for j := 0; j < 3; j++ {
			lo, hi := base[j*100], base[j*100+150]
			got, err := shC.SelectRange(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			want, err := shP.SelectRange(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			mustEqualU32(t, fmt.Sprintf("post-race range %d pass %d", j, pass), got, want)
		}
		mustEqualU32(t, fmt.Sprintf("post-race in pass %d", pass), shC.SelectIn(pool), shP.SelectIn(pool))
		mustEqualU32(t, fmt.Sprintf("post-race in-subset pass %d", pass), shC.SelectIn(pool[2:9]), shP.SelectIn(pool[2:9]))
	}
	if s := cached.CacheStats(); s.Hits == 0 {
		t.Fatalf("race exercised nothing: %+v", s)
	}
}
