package mmdb

// The mutable delta layer behind AppendRows.  The paper's OLAP position —
// rebuild indexes from scratch after a batch of updates (§2.3) — prices a
// batch at O(n log n) no matter how small it is, so a stream of small
// appends pays the whole table over and over: the append cliff.  The fix
// mirrors an LSM tree collapsed to one level: a small batch is *absorbed*
// as a sorted (value, RID) run per index, with min/max fences and a bloom
// filter so probes skip runs that cannot match, and every read surface
// serves base ∪ delta merged by (value, RID).  Because appended RIDs all
// exceed resident RIDs and the rebuild's radix sort is stable, that merged
// order is bit-identical to what a full rebuild would produce — the delta
// layer is invisible to results, only to build cost.  Once the delta has
// grown to a fixed fraction of the base (AppendPolicy), the batch *folds*:
// the old full rebuild, amortised to O(log n) rebuilds per doubling.
//
// Frozen encodings are the crux: domains and ID columns stay fixed at the
// last fold (delta values may be absent from the dictionary), so absorbed
// state is served on raw values, and the result cache keys ranges by raw
// closed bounds for the same reason (qcache).

import (
	"sync/atomic"

	"cssidx/internal/bloom"
	"cssidx/internal/domain"
	"cssidx/internal/sortu32"
)

// AppendPolicy tunes how AppendRows lands a batch: absorbed into the delta
// layer or folded into a full rebuild of domains, encodings and indexes.
type AppendPolicy struct {
	// Disabled forces every batch down the full-rebuild path — the
	// pre-delta behavior.
	Disabled bool
	// FoldDenominator is the delta:base ratio that triggers a fold: a
	// batch folds when deltaRows*FoldDenominator ≥ baseRows (0 = 8).  The
	// default folds an append onto an empty or tiny base immediately,
	// which is exactly the rebuild-per-batch small tables want.
	FoldDenominator int
	// MinFoldRows floors the trigger: a fold needs at least this many
	// delta rows.  Raise it to keep a mid-sized table absorbing longer.
	MinFoldRows int
}

func (p AppendPolicy) foldDenom() int {
	if p.FoldDenominator <= 0 {
		return 8
	}
	return p.FoldDenominator
}

// shouldFold reports whether a batch bringing the delta to deltaRows over
// a base of baseRows crosses the fold threshold.
func (p AppendPolicy) shouldFold(deltaRows, baseRows int) bool {
	if p.Disabled {
		return true
	}
	return deltaRows >= p.MinFoldRows && deltaRows*p.foldDenom() >= baseRows
}

// SetAppendPolicy configures the delta layer.  Not synchronized with
// AppendRows: set it before the table starts appending.
func (t *Table) SetAppendPolicy(p AppendPolicy) { t.appendPol = p }

// AppendPolicy returns the configured policy.
func (t *Table) AppendPolicy() AppendPolicy { return t.appendPol }

// BaseRows returns the rows covered by the frozen encodings — everything
// up to the last fold.
func (t *Table) BaseRows() int { return t.baseRows }

// DeltaRows returns the rows absorbed since the last fold.
func (t *Table) DeltaRows() int { return t.rows - t.baseRows }

// --- delta runs ---------------------------------------------------------------

// maxDeltaRuns caps the runs an index accumulates before they are merged
// into one (size-tiering collapsed to a single tier: probe cost stays
// bounded without tracking run sizes).
const maxDeltaRuns = 4

// idxRun is one sorted delta run: the (value, RID) pairs of absorbed
// append batches ordered by (value, RID), fenced by min/max and guarded by
// a bloom filter over the values so point probes skip runs that cannot
// match.  Values are raw, not domain IDs — the frozen dictionary may not
// contain them.
type idxRun struct {
	vals   []uint32
	rids   []uint32
	min    uint32
	max    uint32
	filter bloom.Filter[uint32]
}

// newIdxRun sorts one appended batch into a run; row i has RID startRID+i.
// The stable pair sort keeps equal values in ascending-RID order.
func newIdxRun(vals []uint32, startRID uint32) idxRun {
	v := append([]uint32(nil), vals...)
	r := make([]uint32, len(v))
	for i := range r {
		r[i] = startRID + uint32(i)
	}
	sortu32.SortPairs(v, r)
	return idxRun{vals: v, rids: r, min: v[0], max: v[len(v)-1], filter: bloom.Build(v)}
}

// appendRun adds a freshly absorbed run, merging the whole tier into one
// run once it exceeds maxDeltaRuns.  Runs hold disjoint ascending RID
// intervals in creation order, so the earlier-run-wins merge preserves
// (value, RID) order.
func appendRun(runs []idxRun, r idxRun) []idxRun {
	runs = append(runs, r)
	if len(runs) <= maxDeltaRuns {
		return runs
	}
	merged := runs[0]
	for _, next := range runs[1:] {
		merged = mergeIdxRuns(merged, next)
	}
	return []idxRun{merged}
}

// mergeIdxRuns merges two runs by (value, RID); a wins ties, which is
// (value, RID) order because every b-RID exceeds every a-RID.
func mergeIdxRuns(a, b idxRun) idxRun {
	vals, rids := mergePairsTieFirst(a.vals, a.rids, b.vals, b.rids)
	return idxRun{vals: vals, rids: rids, min: vals[0], max: vals[len(vals)-1], filter: bloom.Build(vals)}
}

// mergedRuns serves reads a single-run view of the tier, memoized in view:
// absorbs stay cheap (runs merge only when the tier overflows) while every
// read surface pays one fence check, one bloom filter and one pair of
// bounds instead of one per run.  The first read after an absorb folds the
// tier into one run and publishes it; absorbs and rebuilds reset the memo.
// Racing readers may each build the view, but the builds are identical, so
// last-store-wins is harmless.
func mergedRuns(runs []idxRun, view *atomic.Pointer[[]idxRun]) []idxRun {
	if len(runs) <= 1 {
		return runs
	}
	if v := view.Load(); v != nil {
		return *v
	}
	m := runs[0]
	for _, next := range runs[1:] {
		m = mergeIdxRuns(m, next)
	}
	out := []idxRun{m}
	view.Store(&out)
	return out
}

// rangeOverlay is the fully merged (raw value, RID) image of base ∪ delta,
// memoized per delta state for range reads: with it a merged range select
// costs exactly what the pure-immutable path costs — one pair of binary
// searches and one bulk RID copy — instead of a per-element weave on every
// query.  Building it is one O(n + d·log n) pass, far below a fold (which
// re-sorts everything and rebuilds domains, encodings and search
// structures), and it only happens on the first range read after an
// absorb, so append bursts never pay it.
type rangeOverlay struct {
	vals []uint32 // merged raw values, ascending (ties: ascending RID)
	rids []uint32 // RIDs in (value, RID) order
}

func (ov *rangeOverlay) lowerBound(v uint32) int {
	lo, hi := 0, len(ov.vals)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if ov.vals[m] >= v {
			hi = m
		} else {
			lo = m + 1
		}
	}
	return lo
}

func (ov *rangeOverlay) upperBound(v uint32) int {
	lo, hi := 0, len(ov.vals)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if ov.vals[m] > v {
			hi = m
		} else {
			lo = m + 1
		}
	}
	return lo
}

// mergedOverlay returns the memoized overlay, building it on first use for
// the current delta state.  Racing readers may each build it; the builds
// are identical.
func mergedOverlay(dom *domain.IntDomain, keys, rids []uint32, runs []idxRun, memo *atomic.Pointer[rangeOverlay]) *rangeOverlay {
	if ov := memo.Load(); ov != nil {
		return ov
	}
	r, v := mergeRangeDelta(dom, keys, rids, 0, len(keys), runs, 0, ^uint32(0), true)
	ov := &rangeOverlay{vals: v, rids: r}
	memo.Store(ov)
	return ov
}

// lowerBound returns the first position with value ≥ v.  Hand-rolled: the
// bounds run on every merged read, and sort.Search's closure indirection
// is measurable there.
func (r *idxRun) lowerBound(v uint32) int {
	lo, hi := 0, len(r.vals)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if r.vals[m] >= v {
			hi = m
		} else {
			lo = m + 1
		}
	}
	return lo
}

// upperBound returns the first position with value > v.
func (r *idxRun) upperBound(v uint32) int {
	lo, hi := 0, len(r.vals)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if r.vals[m] > v {
			hi = m
		} else {
			lo = m + 1
		}
	}
	return lo
}

// equalRange returns the half-open positions of value v, empty when the
// fences or the bloom filter rule it out without searching.
func (r *idxRun) equalRange(v uint32) (int, int) {
	if v < r.min || v > r.max || !r.filter.May(v) {
		return 0, 0
	}
	f := r.lowerBound(v)
	l := f
	for l < len(r.vals) && r.vals[l] == v {
		l++
	}
	return f, l
}

func (r *idxRun) spaceBytes() int {
	return 4*len(r.vals) + 4*len(r.rids) + r.filter.Bytes()
}

// deltaEqualAppend appends the delta RIDs equal to v across runs, in run
// order — ascending RID, matching the base-then-delta merged order.
func deltaEqualAppend(runs []idxRun, v uint32, out []uint32) []uint32 {
	for i := range runs {
		f, l := runs[i].equalRange(v)
		if f < l {
			out = append(out, runs[i].rids[f:l]...)
		}
	}
	return out
}

// deltaCountEqual counts the delta rows equal to v.
func deltaCountEqual(runs []idxRun, v uint32) int {
	n := 0
	for i := range runs {
		f, l := runs[i].equalRange(v)
		n += l - f
	}
	return n
}

// deltaCountRange counts the delta rows with lo ≤ value ≤ hi.
func deltaCountRange(runs []idxRun, lo, hi uint32) int {
	if lo > hi {
		return 0
	}
	n := 0
	for i := range runs {
		r := &runs[i]
		if r.min > hi || r.max < lo {
			continue
		}
		n += r.upperBound(hi) - r.lowerBound(lo)
	}
	return n
}

// deltaRunsBytes sums the runs' footprint.
func deltaRunsBytes(runs []idxRun) int {
	n := 0
	for i := range runs {
		n += runs[i].spaceBytes()
	}
	return n
}

// --- merged reads -------------------------------------------------------------

// mergeRangeDelta merges the base segment keys[first:last) (domain IDs
// with parallel RIDs) with every run's lo ≤ value ≤ hi slice into one
// (value, RID)-ordered RID list — exactly the output a fully rebuilt index
// would produce, because every delta RID exceeds every base RID and the
// rebuild's radix sort is stable.  When wantKeys is set the merged raw
// values ride along for the cache's containment runs.
//
// The merge is asymmetric by design: the delta is tiny next to the base,
// so the run slices first merge among themselves (earlier run wins ties —
// RID order, since a later run's RIDs all exceed an earlier run's), and
// each delta element then binary-searches its split point in the base
// segment.  Base RIDs move in bulk copies and the common no-delta-overlap
// case degenerates to one copy, which keeps merged reads near the
// pure-immutable read cost.
func mergeRangeDelta(dom *domain.IntDomain, keys, rids []uint32, first, last int, runs []idxRun, lo, hi uint32, wantKeys bool) (outRids, outVals []uint32) {
	// Clip each run to [lo, hi].  Readers hand in the memoized single-run
	// view (readRuns), so the common case is one span; left-to-right
	// pairwise merging keeps multi-span tie order correct anyway (earlier
	// run wins = smaller RIDs first).
	var dv, dr []uint32
	total := last - first
	for ri := range runs {
		r := &runs[ri]
		if r.min > hi || r.max < lo {
			continue
		}
		f, l := r.lowerBound(lo), r.upperBound(hi)
		if f >= l {
			continue
		}
		total += l - f
		if dv == nil {
			dv, dr = r.vals[f:l], r.rids[f:l]
		} else {
			dv, dr = mergePairsTieFirst(dv, dr, r.vals[f:l], r.rids[f:l])
		}
	}
	outRids = make([]uint32, 0, total)
	if wantKeys {
		outVals = make([]uint32, 0, total)
	}
	appendBase := func(from, to int) {
		outRids = append(outRids, rids[from:to]...)
		if wantKeys {
			for p := from; p < to; p++ {
				outVals = append(outVals, dom.Value(keys[p]))
			}
		}
	}
	bi := first
	for i, v := range dv {
		// Base elements with value ≤ v precede the delta element (base RIDs
		// are smaller, so ties resolve base-first); move them in one copy.
		s, e := bi, last
		for s < e {
			m := int(uint(s+e) >> 1)
			if dom.Value(keys[m]) > v {
				e = m
			} else {
				s = m + 1
			}
		}
		if s > bi {
			appendBase(bi, s)
			bi = s
		}
		outRids = append(outRids, dr[i])
		if wantKeys {
			outVals = append(outVals, v)
		}
	}
	appendBase(bi, last)
	return outRids, outVals
}

// mergePairsTieFirst merges two (value, payload) pair lists by value; a
// wins ties.
func mergePairsTieFirst(av, ap, bv, bp []uint32) (vals, payload []uint32) {
	vals = make([]uint32, 0, len(av)+len(bv))
	payload = make([]uint32, 0, len(ap)+len(bp))
	i, j := 0, 0
	for i < len(av) && j < len(bv) {
		if av[i] <= bv[j] {
			vals, payload = append(vals, av[i]), append(payload, ap[i])
			i++
		} else {
			vals, payload = append(vals, bv[j]), append(payload, bp[j])
			j++
		}
	}
	vals = append(append(vals, av[i:]...), bv[j:]...)
	payload = append(append(payload, ap[i:]...), bp[j:]...)
	return vals, payload
}

// idsToRaw maps a slice of domain IDs to their raw values.
func idsToRaw(dom *domain.IntDomain, ids []uint32) []uint32 {
	out := make([]uint32, len(ids))
	for i, id := range ids {
		out[i] = dom.Value(id)
	}
	return out
}

// deltaScanRange collects the delta-row RIDs with lo ≤ value ≤ hi by
// scanning the column's appended tail, in row order.
func (t *Table) deltaScanRange(c *Column, lo, hi uint32) []uint32 {
	var out []uint32
	for row := t.baseRows; row < len(c.raw); row++ {
		if v := c.raw[row]; v >= lo && v <= hi {
			out = append(out, uint32(row))
		}
	}
	return out
}
