package mmdb

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"cssidx"
	"cssidx/internal/workload"
)

// cachePair builds two identical tables — one with an admit-everything
// cache, one with caching disabled — so every query can be checked
// bit-identical across the two.
func cachePair(t *testing.T, n int, seed int64) (cached, plain *Table, g *workload.Gen) {
	t.Helper()
	g = workload.New(seed)
	a := g.Lookups(g.SortedUniform(n/2+1), n) // duplicates guaranteed
	b := g.Lookups(g.SortedUniform(n/4+1), n)
	c := g.Lookups(g.SortedUniform(64), n) // low cardinality for IN/hash
	build := func(name string) *Table {
		tab := NewTable(name)
		for col, vals := range map[string][]uint32{"a": a, "b": b, "c": c} {
			if err := tab.AddColumn(col, vals); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tab.BuildIndex("a", cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
			t.Fatal(err)
		}
		if _, err := tab.BuildIndex("c", cssidx.KindHash, cssidx.Options{}); err != nil {
			t.Fatal(err)
		}
		if _, err := tab.BuildShardedIndex("b", 4); err != nil {
			t.Fatal(err)
		}
		return tab
	}
	cached = build("t")
	cached.EnableCache(CacheOptions{MinCostNs: -1})
	plain = build("t")
	return cached, plain, g
}

func mustEqualU32(t *testing.T, what string, got, want []uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
}

// queryBattery drives every cached query surface on both tables and
// demands bit-identical results.  Each query runs twice against the cached
// table so both the fill pass and the hit pass are compared.
func queryBattery(t *testing.T, cached, plain *Table, g *workload.Gen, tag string) {
	t.Helper()
	aCol, _ := plain.Column("a")
	ranges := [][2]uint32{
		{0, math.MaxUint32},
		{1 << 28, 1<<28 + 1<<26},
		{0, 1 << 30},
		{5, 4}, // empty
	}
	if vals := aCol.Domain().Values(); len(vals) > 10 {
		ranges = append(ranges, [2]uint32{vals[2], vals[len(vals)/3]})
	}
	for _, r := range ranges {
		want, wantPlan, err := plain.SelectRange("a", r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			got, gotPlan, err := cached.SelectRange("a", r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			if gotPlan != wantPlan {
				t.Fatalf("%s range plan pass %d: %+v vs %+v", tag, pass, gotPlan, wantPlan)
			}
			mustEqualU32(t, fmt.Sprintf("%s SelectRange[%d,%d] pass %d", tag, r[0], r[1], pass), got, want)
		}
	}

	cVals, _ := plain.Column("c")
	inLists := [][]uint32{
		g.Lookups(cVals.Domain().Values(), 5),
		g.Lookups(cVals.Domain().Values(), 40), // forces dups in the list
		{1, 2, 3},                              // mostly absent
	}
	for li, list := range inLists {
		for _, col := range []string{"c", "b"} {
			want, _, err := plain.SelectIn(col, list)
			if err != nil {
				t.Fatal(err)
			}
			for pass := 0; pass < 2; pass++ {
				got, _, err := cached.SelectIn(col, list)
				if err != nil {
					t.Fatal(err)
				}
				mustEqualU32(t, fmt.Sprintf("%s SelectIn %s #%d pass %d", tag, col, li, pass), got, want)
			}
		}
	}

	wheres := [][]RangePred{
		{{Col: "a", Lo: 0, Hi: 1 << 30}, {Col: "b", Lo: 1 << 27, Hi: 1 << 31}},
		{{Col: "a", Lo: 1 << 26, Hi: 1 << 31}, {Col: "a", Lo: 0, Hi: 1 << 30}, {Col: "c", Lo: 0, Hi: math.MaxUint32}},
		{{Col: "b", Lo: 7, Hi: 3}}, // empty conjunct
	}
	for wi, preds := range wheres {
		want, wantPlans, err := plain.SelectWhere(preds)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			got, gotPlans, err := cached.SelectWhere(preds)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotPlans) != len(wantPlans) {
				t.Fatalf("%s where #%d: plan count", tag, wi)
			}
			for i := range gotPlans {
				if gotPlans[i] != wantPlans[i] {
					t.Fatalf("%s where #%d plan %d: %+v vs %+v", tag, wi, i, gotPlans[i], wantPlans[i])
				}
			}
			mustEqualU32(t, fmt.Sprintf("%s SelectWhere #%d pass %d", tag, wi, pass), got, want)
		}
	}

	// Sharded surfaces directly (epoch-stamped entries).
	shC, _ := cached.ShardedIndex("b")
	shP, _ := plain.ShardedIndex("b")
	want, err := shP.SelectRange(1<<27, 1<<31)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		got, err := shC.SelectRange(1<<27, 1<<31)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualU32(t, fmt.Sprintf("%s sharded SelectRange pass %d", tag, pass), got, want)
	}
}

func TestCacheDifferentialAllSurfaces(t *testing.T) {
	cached, plain, g := cachePair(t, 4000, 11)
	queryBattery(t, cached, plain, g, "gen1")
	if s := cached.CacheStats(); s.Hits == 0 || s.Inserts == 0 {
		t.Fatalf("cache never engaged: %+v", s)
	}
	// Batch update: both tables append the same rows; the cached table's
	// generation moves and every stale entry must stop matching.
	batch := map[string][]uint32{
		"a": g.Lookups(g.SortedUniform(500), 1000),
		"b": g.Lookups(g.SortedUniform(500), 1000),
		"c": g.Lookups(g.SortedUniform(64), 1000),
	}
	if err := cached.AppendRows(batch); err != nil {
		t.Fatal(err)
	}
	if err := plain.AppendRows(batch); err != nil {
		t.Fatal(err)
	}
	if got := cached.Generation(); got != 2 {
		t.Fatalf("generation %d, want 2", got)
	}
	queryBattery(t, cached, plain, g, "gen2")
	if s := cached.CacheStats(); s.Invalidations == 0 {
		t.Fatalf("append invalidated nothing: %+v", s)
	}
}

func TestCacheContainmentAcrossQueries(t *testing.T) {
	cached, plain, _ := cachePair(t, 4000, 17)
	aCol, _ := plain.Column("a")
	vals := aCol.Domain().Values()
	wideLo, wideHi := vals[0], vals[len(vals)/6] // selective: index path
	subLo, subHi := vals[2], vals[len(vals)/8]

	if _, _, err := cached.SelectRange("a", wideLo, wideHi); err != nil {
		t.Fatal(err)
	}
	before := cached.CacheStats()
	got, _, err := cached.SelectRange("a", subLo, subHi)
	if err != nil {
		t.Fatal(err)
	}
	after := cached.CacheStats()
	if after.ContainedHits != before.ContainedHits+1 {
		t.Fatalf("subrange not answered by containment: %+v -> %+v", before, after)
	}
	want, _, err := plain.SelectRange("a", subLo, subHi)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualU32(t, "contained subrange", got, want)
}

func TestJoinCacheReplay(t *testing.T) {
	for _, sharded := range []bool{false, true} {
		g := workload.New(23)
		innerKeys := g.SortedUniform(2000)
		outerVals := g.Lookups(innerKeys, 3000)
		inner := NewTable("inner")
		if err := inner.AddColumn("k", innerKeys); err != nil {
			t.Fatal(err)
		}
		outer := NewTable("outer")
		if err := outer.AddColumn("k", outerVals); err != nil {
			t.Fatal(err)
		}
		outer.EnableCache(CacheOptions{MinCostNs: -1})
		var innerIx JoinIndex
		if sharded {
			ix, err := inner.BuildShardedIndex("k", 4)
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()
			innerIx = ix
		} else {
			ix, err := inner.BuildIndex("k", cssidx.KindLevelCSS, cssidx.Options{})
			if err != nil {
				t.Fatal(err)
			}
			innerIx = ix
		}
		collect := func() []uint32 {
			var pairs []uint32
			if _, err := Join(outer, "k", innerIx, func(o, i uint32) { pairs = append(pairs, o, i) }); err != nil {
				t.Fatal(err)
			}
			return pairs
		}
		first := collect()
		second := collect()
		mustEqualU32(t, fmt.Sprintf("join replay sharded=%v", sharded), second, first)
		if s := outer.CacheStats(); s.Hits == 0 {
			t.Fatalf("sharded=%v: second join missed the cache: %+v", sharded, s)
		}
		// Moving the inner state must move the token and force recompute.
		if err := inner.AppendRows(map[string][]uint32{"k": g.Lookups(innerKeys, 100)}); err != nil {
			t.Fatal(err)
		}
		third := collect()
		if len(third) < len(first) {
			t.Fatalf("sharded=%v: pairs shrank after append: %d -> %d", sharded, len(first), len(third))
		}
	}
}

func TestDBSharedCache(t *testing.T) {
	db := NewDB(CacheOptions{MinCostNs: -1})
	t1, err := db.CreateTable("t1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t1"); err == nil {
		t.Fatal("duplicate table name accepted")
	}
	t2, err := db.CreateTable("t2")
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []*Table{t1, t2} {
		if err := tab.AddColumn("x", []uint32{5, 1, 9, 1, 7}); err != nil {
			t.Fatal(err)
		}
		if _, err := tab.BuildIndex("x", cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := tab.SelectRange("x", 1, 7); err != nil { // fill
			t.Fatal(err)
		}
	}
	if s := db.CacheStats(); s.Inserts < 2 {
		t.Fatalf("shared cache not filled: %+v", s)
	}
	// Appending to t1 must not invalidate t2's entries.
	if err := t1.AppendRows(map[string][]uint32{"x": {3}}); err != nil {
		t.Fatal(err)
	}
	before := db.CacheStats()
	if _, _, err := t2.SelectRange("x", 1, 7); err != nil {
		t.Fatal(err)
	}
	after := db.CacheStats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("t2 entry lost to t1's append: %+v -> %+v", before, after)
	}
}

// TestRebuiltShardedIndexDoesNotReuseTokens locks in the epoch-uid fix: a
// replacement BuildShardedIndex restarts Epoch() at 1, so its cache tokens
// must nevertheless be disjoint from the replaced instance's — otherwise a
// straggler's late insert stamped with the old instance's epoch could be
// served as fresh by the new one.
func TestRebuiltShardedIndexDoesNotReuseTokens(t *testing.T) {
	tab := NewTable("t")
	if err := tab.AddColumn("x", []uint32{5, 1, 9, 1, 7, 3, 9, 2}); err != nil {
		t.Fatal(err)
	}
	tab.EnableCache(CacheOptions{MinCostNs: -1})
	sh1, err := tab.BuildShardedIndex("x", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh1.SelectRange(1, 9); err != nil { // fill under instance 1
		t.Fatal(err)
	}
	sh2, err := tab.BuildShardedIndex("x", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sh2.Close()
	if sh1.Epoch() != sh2.Epoch() {
		t.Fatalf("precondition lost: instance epochs diverge (%d vs %d), token reuse untestable", sh1.Epoch(), sh2.Epoch())
	}
	before := tab.CacheStats()
	got, err := sh2.SelectRange(1, 9)
	if err != nil {
		t.Fatal(err)
	}
	after := tab.CacheStats()
	if after.Hits != before.Hits {
		t.Fatalf("new index instance hit the old instance's entry: %+v -> %+v", before, after)
	}
	want := []uint32{1, 3, 7, 5, 0, 4, 2, 6} // value order: 1,1,2,3,5,7,9,9
	mustEqualU32(t, "rebuilt sharded range", got, want)
}

// TestCacheRaceAppendRows is the -race gate for cache hits and
// invalidations racing epoch swaps: readers hammer the epoch-cached
// sharded surfaces while a writer pushes AppendRows batches through, then
// the final state is checked bit-identical against an uncached replica.
func TestCacheRaceAppendRows(t *testing.T) {
	g := workload.New(31)
	base := g.Lookups(g.SortedUniform(2000), 4000)
	build := func() *Table {
		tab := NewTable("t")
		if err := tab.AddColumn("x", base); err != nil {
			t.Fatal(err)
		}
		if _, err := tab.BuildShardedIndex("x", 4); err != nil {
			t.Fatal(err)
		}
		return tab
	}
	cached := build()
	cached.EnableCache(CacheOptions{MinCostNs: -1})
	plain := build()
	shC, _ := cached.ShardedIndex("x")
	defer shC.Close()
	shP, _ := plain.ShardedIndex("x")
	defer shP.Close()

	const appends = 30
	batches := make([]map[string][]uint32, appends)
	for i := range batches {
		batches[i] = map[string][]uint32{"x": g.Lookups(base, 50)}
	}
	maxRows := uint32(len(base) + appends*50) // rows only ever grow
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lg := workload.New(int64(100 + r))
			for i := 0; !stop.Load(); i++ {
				lo := lg.Lookups(base, 1)[0]
				hi := lo + 1<<28
				rids, err := shC.SelectRange(lo, hi)
				if err != nil {
					panic(err)
				}
				for _, rid := range rids {
					if rid >= maxRows {
						panic(fmt.Sprintf("rid %d out of range %d", rid, maxRows))
					}
				}
				shC.SelectIn(lg.Lookups(base, 8))
			}
		}(r)
	}
	for i := 0; i < appends; i++ {
		if err := cached.AppendRows(batches[i]); err != nil {
			t.Fatal(err)
		}
		// Seed an entry between batches so every absorb has something to
		// patch and every fold something to drop, independent of how far
		// the racing readers got.
		if _, err := shC.SelectRange(1<<28, 1<<31); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	for i := 0; i < appends; i++ {
		if err := plain.AppendRows(batches[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Quiesced: cached results (fill + hit passes) must equal the uncached
	// replica's exactly.
	for pass := 0; pass < 2; pass++ {
		got, err := shC.SelectRange(1<<28, 1<<31)
		if err != nil {
			t.Fatal(err)
		}
		want, err := shP.SelectRange(1<<28, 1<<31)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualU32(t, fmt.Sprintf("post-race SelectRange pass %d", pass), got, want)
		list := g.Lookups(base, 16)
		mustEqualU32(t, fmt.Sprintf("post-race SelectIn pass %d", pass), shC.SelectIn(list), shP.SelectIn(list))
	}
	if s := cached.CacheStats(); s.Hits == 0 || s.Invalidations == 0 || s.Patches == 0 {
		t.Fatalf("race exercised nothing: %+v", s)
	}
}
