package mmdb

import (
	"errors"
	"sort"
	"testing"

	"cssidx"
	"cssidx/internal/workload"
)

// fixture builds a small orders table: amount (with duplicates), customer.
func fixture(t *testing.T) *Table {
	t.Helper()
	tab := NewTable("orders")
	if err := tab.AddColumn("amount", []uint32{50, 10, 30, 10, 99, 30, 30}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("customer", []uint32{1, 2, 3, 1, 2, 3, 1}); err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestAddColumnValidation(t *testing.T) {
	tab := NewTable("t")
	if err := tab.AddColumn("a", []uint32{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("a", []uint32{1, 2}); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := tab.AddColumn("b", []uint32{1}); err == nil {
		t.Error("row-count mismatch accepted")
	}
	if tab.Rows() != 2 || len(tab.Columns()) != 1 {
		t.Errorf("rows=%d cols=%v", tab.Rows(), tab.Columns())
	}
}

func TestSelectEqualAllKinds(t *testing.T) {
	tab := fixture(t)
	for _, kind := range cssidx.Kinds() {
		ix, err := tab.BuildIndex("amount", kind, cssidx.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rids := ix.SelectEqual(30)
		if len(rids) != 3 {
			t.Fatalf("%v: SelectEqual(30)=%v, want 3 rids", kind, rids)
		}
		got := map[uint32]bool{}
		for _, r := range rids {
			got[r] = true
		}
		for _, want := range []uint32{2, 5, 6} {
			if !got[want] {
				t.Errorf("%v: missing rid %d in %v", kind, want, rids)
			}
		}
		if rids := ix.SelectEqual(31); rids != nil {
			t.Errorf("%v: SelectEqual(31)=%v, want none", kind, rids)
		}
	}
}

func TestSelectRangeOrderedKinds(t *testing.T) {
	tab := fixture(t)
	for _, kind := range cssidx.Kinds() {
		ix, err := tab.BuildIndex("amount", kind, cssidx.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rids, err := ix.SelectRange(10, 30)
		if kind == cssidx.KindHash {
			if !errors.Is(err, ErrNoOrderedAccess) {
				t.Errorf("hash range query: err=%v, want ErrNoOrderedAccess", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		// amounts ≤30: rows 1,3 (10) and 2,5,6 (30) = 5 rows.
		if len(rids) != 5 {
			t.Errorf("%v: SelectRange(10,30)=%v, want 5 rids", kind, rids)
		}
		n, err := ix.CountRange(10, 30)
		if err != nil || n != 5 {
			t.Errorf("%v: CountRange=(%d,%v)", kind, n, err)
		}
	}
}

func TestRangeBoundsBetweenValues(t *testing.T) {
	tab := fixture(t)
	ix, _ := tab.BuildIndex("amount", cssidx.KindLevelCSS, cssidx.Options{})
	// Bounds that fall between stored values.
	rids, err := ix.SelectRange(11, 98)
	if err != nil {
		t.Fatal(err)
	}
	// 30,30,30,50 → 4 rows.
	if len(rids) != 4 {
		t.Errorf("SelectRange(11,98)=%v, want 4 rids", rids)
	}
	if n, _ := ix.CountRange(100, 200); n != 0 {
		t.Errorf("empty range counted %d", n)
	}
	if n, _ := ix.CountRange(0, 9); n != 0 {
		t.Errorf("below-min range counted %d", n)
	}
}

func TestRIDsAreOrderedByValue(t *testing.T) {
	g := workload.New(120)
	vals := g.Shuffled(g.SortedWithDuplicates(5000, 3))
	tab := NewTable("t")
	if err := tab.AddColumn("v", vals); err != nil {
		t.Fatal(err)
	}
	ix, _ := tab.BuildIndex("v", cssidx.KindFullCSS, cssidx.Options{})
	rids := ix.RIDs()
	col, _ := tab.Column("v")
	for i := 1; i < len(rids); i++ {
		if col.Value(int(rids[i-1])) > col.Value(int(rids[i])) {
			t.Fatalf("RID list not value-ordered at %d", i)
		}
	}
}

func TestIndexedNestedLoopJoin(t *testing.T) {
	orders := fixture(t)
	cust := NewTable("customers")
	if err := cust.AddColumn("id", []uint32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	idIx, err := cust.BuildIndex("id", cssidx.KindLevelCSS, cssidx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var pairs [][2]uint32
	n, err := Join(orders, "customer", idIx, func(o, i uint32) {
		pairs = append(pairs, [2]uint32{o, i})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every order row matches exactly one customer.
	if n != orders.Rows() || len(pairs) != n {
		t.Fatalf("join produced %d pairs, want %d", n, orders.Rows())
	}
	custCol, _ := orders.Column("customer")
	idCol, _ := cust.Column("id")
	for _, p := range pairs {
		if custCol.Value(int(p[0])) != idCol.Value(int(p[1])) {
			t.Errorf("pair %v joins mismatched values", p)
		}
	}
}

func TestJoinWithDuplicateInnerKeys(t *testing.T) {
	outer := NewTable("o")
	if err := outer.AddColumn("k", []uint32{7, 8}); err != nil {
		t.Fatal(err)
	}
	inner := NewTable("i")
	if err := inner.AddColumn("k", []uint32{7, 7, 7, 9}); err != nil {
		t.Fatal(err)
	}
	ix, _ := inner.BuildIndex("k", cssidx.KindBPlusTree, cssidx.Options{})
	n, err := Join(outer, "k", ix, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("join count=%d, want 3 (7 matches three inner rows, 8 none)", n)
	}
}

func TestJoinMissingColumn(t *testing.T) {
	outer := NewTable("o")
	if err := outer.AddColumn("k", []uint32{1}); err != nil {
		t.Fatal(err)
	}
	inner := NewTable("i")
	if err := inner.AddColumn("k", []uint32{1}); err != nil {
		t.Fatal(err)
	}
	ix, _ := inner.BuildIndex("k", cssidx.KindLevelCSS, cssidx.Options{})
	if _, err := Join(outer, "nope", ix, nil); err == nil {
		t.Error("missing column accepted")
	}
}

func TestBatchUpdateRebuildsIndexes(t *testing.T) {
	tab := fixture(t)
	ix, _ := tab.BuildIndex("amount", cssidx.KindLevelCSS, cssidx.Options{})
	before, _ := ix.CountRange(0, 1000)
	if before != 7 {
		t.Fatalf("precondition: count=%d", before)
	}
	err := tab.AppendRows(map[string][]uint32{
		"amount":   {20, 75},
		"customer": {4, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 9 {
		t.Fatalf("rows=%d", tab.Rows())
	}
	// The registered index must reflect the new rows without being rebuilt
	// by hand.
	after, _ := ix.CountRange(0, 1000)
	if after != 9 {
		t.Errorf("after batch: count=%d, want 9", after)
	}
	rids := ix.SelectEqual(20)
	if len(rids) != 1 || rids[0] != 7 {
		t.Errorf("SelectEqual(20)=%v, want [7]", rids)
	}
	// Domain renumbering must keep value order: range query spanning old and
	// new values.
	got, _ := ix.SelectRange(20, 50)
	wantCount := 0
	col, _ := tab.Column("amount")
	for r := 0; r < tab.Rows(); r++ {
		if v := col.Value(r); v >= 20 && v <= 50 {
			wantCount++
		}
	}
	if len(got) != wantCount {
		t.Errorf("range after batch: %d rids, want %d", len(got), wantCount)
	}
}

func TestBatchUpdateValidation(t *testing.T) {
	tab := fixture(t)
	if err := tab.AppendRows(map[string][]uint32{"amount": {1}}); err == nil {
		t.Error("batch missing a column accepted")
	}
	if err := tab.AppendRows(map[string][]uint32{
		"amount":   {1, 2},
		"customer": {1},
	}); err == nil {
		t.Error("ragged batch accepted")
	}
	if err := NewTable("empty").AppendRows(nil); err == nil {
		t.Error("append to empty table accepted")
	}
}

func TestSelectEqualMatchesScan(t *testing.T) {
	g := workload.New(121)
	vals := g.Shuffled(g.SortedWithDuplicates(20000, 4))
	tab := NewTable("t")
	if err := tab.AddColumn("v", vals); err != nil {
		t.Fatal(err)
	}
	ix, _ := tab.BuildIndex("v", cssidx.KindFullCSS, cssidx.Options{})
	probes := g.Lookups(vals, 200)
	for _, v := range probes {
		got := append([]uint32(nil), ix.SelectEqual(v)...)
		var want []uint32
		for r, rv := range vals {
			if rv == v {
				want = append(want, uint32(r))
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("SelectEqual(%d): %d rids, scan found %d", v, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("SelectEqual(%d) diverges from scan at %d", v, i)
			}
		}
	}
}

func TestIndexRegistryAndSpace(t *testing.T) {
	tab := fixture(t)
	if _, ok := tab.Index("amount"); ok {
		t.Error("index exists before build")
	}
	ix, _ := tab.BuildIndex("amount", cssidx.KindLevelCSS, cssidx.Options{})
	got, ok := tab.Index("amount")
	if !ok || got != ix {
		t.Error("index not registered")
	}
	if ix.SpaceBytes() < 8*tab.Rows() {
		t.Errorf("space=%d below RID+key floor", ix.SpaceBytes())
	}
	if ix.Kind() != cssidx.KindLevelCSS {
		t.Error("kind lost")
	}
	if _, err := tab.BuildIndex("nope", cssidx.KindLevelCSS, cssidx.Options{}); err == nil {
		t.Error("index on missing column accepted")
	}
}
