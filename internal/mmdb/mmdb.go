// Package mmdb is a miniature main-memory column store providing the §2
// decision-support context the paper's indexes live in: domain-encoded
// columns, record-identifier lists sorted by an attribute, selections and
// range queries through a pluggable index, indexed nested-loop joins, and
// the OLAP batch-update cycle where indexes are rebuilt from scratch rather
// than maintained incrementally (§2.3).
//
// A Table stores columns of uint32 values.  Each column is domain-encoded
// (internal/domain): the column holds rank IDs, the domain holds each
// distinct value once in sorted order.  An index on a column is a RID list
// sorted by the column ("a list of record identifiers sorted by some columns
// provides ordered access to the base relation", §2.2) plus a companion
// sorted key array searched by any cssidx method.
package mmdb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cssidx"
	"cssidx/internal/domain"
	"cssidx/internal/governor"
	"cssidx/internal/parallel"
	"cssidx/internal/qcache"
	"cssidx/internal/sortu32"
	"cssidx/internal/telemetry"
)

// ErrNoOrderedAccess is returned for range queries on indexes whose method
// cannot provide ordered access (hashing, §3.5).
var ErrNoOrderedAccess = errors.New("mmdb: index method does not support ordered access")

// Table is a named collection of equal-length uint32 columns.
type Table struct {
	name    string
	rows    int
	cols    map[string]*Column
	order   []string
	indexes map[string]*SortedIndex
	sharded map[string]*ShardedIndex

	// baseRows is the prefix of rows covered by the frozen encodings:
	// domains, ID columns and index base arrays are built over rows
	// [0, baseRows) at the last fold; rows beyond live in the delta layer
	// (delta.go) until the next fold.
	baseRows  int
	appendPol AppendPolicy

	// gen is the table generation: 1 after creation, +1 per *fold* (a
	// full rebuild of encodings and indexes).  Together with deltaSeq it
	// forms the validity token of every cached result computed against
	// the table's in-place state (cache.go), read atomically so the
	// epoch-serving ShardedIndex surfaces can stamp entries while a
	// rebuild publishes.
	gen atomic.Uint64
	// deltaSeq counts absorbed append batches (never reset): the token's
	// second component, so an absorb moves the token without the
	// generation — letting the cache patch entries across it rather than
	// drop the table.
	deltaSeq atomic.Uint64
	// stateVer is 1 after creation, +1 per AppendRows batch of either
	// kind — the single-counter version join caching stamps outer state
	// with (always gen + deltaSeq, kept explicit for cheap reads).
	stateVer atomic.Uint64
	// cache is the attached result cache (nil = caching off); behind an
	// atomic pointer so concurrent sharded readers see attachment safely.
	cache atomic.Pointer[qcache.Cache]
	// gov is the attached admission controller (nil = admission off);
	// same atomic-pointer discipline as cache (govern.go).
	gov atomic.Pointer[governor.Admission]
}

// Column is one domain-encoded attribute.
type Column struct {
	name string
	raw  []uint32 // source values, row order
	dom  *domain.IntDomain
	ids  []uint32 // domain IDs, row order
}

// NewTable creates an empty table.
func NewTable(name string) *Table {
	t := &Table{
		name:    name,
		cols:    map[string]*Column{},
		indexes: map[string]*SortedIndex{},
		sharded: map[string]*ShardedIndex{},
	}
	t.gen.Store(1)
	t.stateVer.Store(1)
	return t
}

// AddColumn adds a column with one value per row.  The first column fixes
// the row count; later columns must match it.
func (t *Table) AddColumn(name string, values []uint32) error {
	if _, dup := t.cols[name]; dup {
		return fmt.Errorf("mmdb: table %s already has column %s", t.name, name)
	}
	if len(t.cols) > 0 && len(values) != t.rows {
		return fmt.Errorf("mmdb: column %s has %d rows, table %s has %d", name, len(values), t.name, t.rows)
	}
	if t.rows != t.baseRows {
		return fmt.Errorf("mmdb: table %s has unfolded appended rows; add columns before appending", t.name)
	}
	dom, ids := domain.BuildInt(values)
	t.cols[name] = &Column{
		name: name,
		raw:  append([]uint32(nil), values...),
		dom:  dom,
		ids:  ids,
	}
	t.order = append(t.order, name)
	t.rows = len(values)
	t.baseRows = t.rows
	return nil
}

// Rows returns the number of rows.
func (t *Table) Rows() int { return t.rows }

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns the column names in definition order.
func (t *Table) Columns() []string { return append([]string(nil), t.order...) }

// Column returns a column by name.
func (t *Table) Column(name string) (*Column, bool) {
	c, ok := t.cols[name]
	return c, ok
}

// Value returns the raw value at (row, column).
func (c *Column) Value(row int) uint32 { return c.raw[row] }

// Domain returns the column's ordered domain.
func (c *Column) Domain() *domain.IntDomain { return c.dom }

// Len returns the number of rows in the column.
func (c *Column) Len() int { return len(c.raw) }

// --- sorted RID lists with a search index ----------------------------------

// SortedIndex is a RID list sorted by one column, with a companion sorted
// key array (of domain IDs) searched by the chosen cssidx method.  Queries
// arrive as raw values and are translated through the domain first — the
// §2.2 flow: "transforming domain values to domain IDs requires searching on
// the domain".
type SortedIndex struct {
	col   *Column
	owner *Table // registering table (generation + cache for join reuse)
	kind  cssidx.Kind
	opts  cssidx.Options
	keys  []uint32 // domain IDs in sorted order
	rids  []uint32 // RIDs ordered by column value
	idx   cssidx.Index
	batch cssidx.BatchIndex        // idx behind the batch surface (native or adapted)
	bord  cssidx.BatchOrderedIndex // non-nil when the method has ordered access
	runs  []idxRun                 // absorbed delta runs since the last fold (delta.go)

	// view memoizes runs folded to a single run for readers (mergedRuns),
	// and overlay the fully merged base ∪ delta image for range reads
	// (mergedOverlay); absorb and rebuild reset both.
	view    atomic.Pointer[[]idxRun]
	overlay atomic.Pointer[rangeOverlay]
}

// readRuns returns the delta runs as reads should see them: the memoized
// single-run view of the tier.
func (ix *SortedIndex) readRuns() []idxRun { return mergedRuns(ix.runs, &ix.view) }

// BuildIndex builds (or rebuilds) an index on the column using the given
// method, and registers it on the table.
func (t *Table) BuildIndex(colName string, kind cssidx.Kind, opts cssidx.Options) (*SortedIndex, error) {
	col, ok := t.cols[colName]
	if !ok {
		return nil, fmt.Errorf("mmdb: no column %s in table %s", colName, t.name)
	}
	ix := &SortedIndex{col: col, owner: t, kind: kind, opts: opts}
	ix.rebuild()
	// The base structure covers the frozen encoding (baseRows); rows
	// appended since the last fold live only in raw form, so hand them to
	// the delta layer as one run — exactly the state absorbRows would
	// have left had the index existed when they arrived.
	if t.rows > t.baseRows {
		ix.absorb(col.raw[t.baseRows:], uint32(t.baseRows))
	}
	t.indexes[colName] = ix
	return ix, nil
}

// Index returns the registered index on a column, if any.
func (t *Table) Index(colName string) (*SortedIndex, bool) {
	ix, ok := t.indexes[colName]
	return ix, ok
}

// rebuild re-sorts the RID list and reconstructs the search structure.
// The key/RID pair sort is a stable radix sort (internal/sortu32), the
// cache-conscious choice for the 4-byte keys of Table 1.
func (ix *SortedIndex) rebuild() {
	n := len(ix.col.ids)
	ix.rids = make([]uint32, n)
	ix.keys = make([]uint32, n)
	copy(ix.keys, ix.col.ids)
	for i := range ix.rids {
		ix.rids[i] = uint32(i)
	}
	sortu32.SortPairs(ix.keys, ix.rids)
	ix.idx = cssidx.New(ix.kind, ix.keys, ix.opts)
	ix.batch = cssidx.AsBatch(ix.idx)
	ix.bord = nil
	if ord, ok := ix.idx.(cssidx.OrderedIndex); ok {
		ix.bord = cssidx.AsBatchOrdered(ord)
	}
	ix.runs = nil
	ix.view.Store(nil)
	ix.overlay.Store(nil)
}

// absorb lands one appended batch in the delta layer: a sorted run over
// the batch's (value, RID) pairs, tier-merged once the run count exceeds
// maxDeltaRuns.  The base arrays and search structure are untouched.
func (ix *SortedIndex) absorb(vals []uint32, startRID uint32) {
	ix.runs = appendRun(ix.runs, newIdxRun(vals, startRID))
	ix.view.Store(nil)
	ix.overlay.Store(nil)
}

// Kind returns the index method.
func (ix *SortedIndex) Kind() cssidx.Kind { return ix.kind }

// SpaceBytes returns the index footprint: RID list, key array, structure
// and outstanding delta runs.
func (ix *SortedIndex) SpaceBytes() int {
	return 4*len(ix.rids) + 4*len(ix.keys) + ix.idx.SpaceBytes() + deltaRunsBytes(ix.runs)
}

// RIDs returns the RID list in column-value order (ordered access, §2.2).
func (ix *SortedIndex) RIDs() []uint32 { return ix.rids }

// SelectEqual returns the RIDs of rows whose column equals value, in RID
// order of the sorted list (stable: insertion order within duplicates).
// Delta rows follow base rows — still ascending-RID, since appended RIDs
// exceed all resident ones.
func (ix *SortedIndex) SelectEqual(value uint32) []uint32 {
	var out []uint32
	if id, ok := ix.col.dom.ID(value); ok {
		if pos := ix.idx.Search(id); pos >= 0 {
			for ; pos < len(ix.keys) && ix.keys[pos] == id; pos++ {
				out = append(out, ix.rids[pos])
			}
		}
	}
	return deltaEqualAppend(ix.readRuns(), value, out)
}

// SelectEqualCtx is SelectEqual under governance: the context's
// cancellation/deadline/budget are observed, and on an attached admission
// controller the probe enters as ClassPoint — the class served last by the
// shed policy, with extra queue headroom under overload.
func (ix *SortedIndex) SelectEqualCtx(ctx context.Context, value uint32) ([]uint32, error) {
	ctl := governor.For(ctx)
	if err := ctl.Err(); err != nil {
		governor.NoteAbort(err)
		return nil, err
	}
	if ix.owner != nil {
		release, err := ix.owner.admit(ctl, governor.ClassPoint, 0)
		if err != nil {
			governor.NoteAbort(err)
			return nil, err
		}
		defer release()
	}
	out := ix.SelectEqual(value)
	if err := ctl.Charge(4 * int64(len(out))); err != nil {
		governor.NoteAbort(err)
		return nil, err
	}
	return out, nil
}

// SelectInCtx is SelectIn under governance; see SelectEqualCtx.  The list
// probes under ClassSelect with cancellation observed at chunk boundaries.
func (ix *SortedIndex) SelectInCtx(ctx context.Context, values []uint32) ([]uint32, error) {
	ctl := governor.For(ctx)
	if err := ctl.Err(); err != nil {
		governor.NoteAbort(err)
		return nil, err
	}
	var release = func() {}
	if ix.owner != nil {
		var err error
		release, err = ix.owner.admit(ctl, governor.ClassSelect, 4*int64(len(values)))
		if err != nil {
			governor.NoteAbort(err)
			return nil, err
		}
	}
	defer release()
	out, err := ix.selectInCtl(ctl, values)
	if err != nil {
		governor.NoteAbort(err)
		return nil, err
	}
	return out, nil
}

// SelectRangeCtx is SelectRange under governance; the merged result is
// charged against the context's budget after materialisation.
func (ix *SortedIndex) SelectRangeCtx(ctx context.Context, lo, hi uint32) ([]uint32, error) {
	ctl := governor.For(ctx)
	if err := ctl.Err(); err != nil {
		governor.NoteAbort(err)
		return nil, err
	}
	var release = func() {}
	if ix.owner != nil {
		var err error
		release, err = ix.owner.admit(ctl, governor.ClassSelect, 0)
		if err != nil {
			governor.NoteAbort(err)
			return nil, err
		}
	}
	defer release()
	out, err := ix.SelectRange(lo, hi)
	if err == nil {
		err = ctl.Charge(4 * int64(len(out)))
	}
	if err != nil {
		governor.NoteAbort(err)
		return nil, err
	}
	return out, nil
}

// SelectIn returns the RIDs of rows whose column equals any value in the
// IN-list, driving the index through the batched probe surface (one lockstep
// domain translation + one batched equal-range probe per chunk of
// cssidx.DefaultBatchSize values), with large lists fanned across the
// parallel worker pool.  Duplicate list values contribute their rows once;
// RIDs come back grouped by list order, ascending within a value.
func (ix *SortedIndex) SelectIn(values []uint32) []uint32 {
	out, _ := ix.selectInCtl(nil, values)
	return out
}

// selectInCtl is SelectIn under governance: the ctl's cancellation,
// deadline and budget are observed at chunk boundaries inside the probe
// loops (nil ctl = the legacy ungoverned path, bit-identical output).
func (ix *SortedIndex) selectInCtl(ctl *governor.Ctl, values []uint32) ([]uint32, error) {
	distinct := dedupeValues(values)
	if len(ix.runs) == 0 {
		return selectInRIDs(ix.col.dom, ix.rids, distinct, ix.equalRangeBatchIDs, parallel.Options{}, ctl)
	}
	return selectInMerged(ix.col.dom, ix.rids, distinct, ix.equalRangeBatchIDs, ix.readRuns(), ctl.Checkpoint())
}

// selectInGrouped answers the pre-deduplicated IN-list single-threaded with
// per-value group offsets, the admission shape the result cache's
// subset/superset reuse needs.  Output rows are identical to SelectIn's.
func (ix *SortedIndex) selectInGrouped(distinct []uint32, cp *governor.Checkpoint) (out, goff []uint32, err error) {
	return selectInGrouped(ix.col.dom, ix.rids, distinct, ix.equalRangeBatchIDs, ix.readRuns(), true, cp)
}

// selectInRIDs is the shared IN-list driver: deduped values are translated
// and probed in chunks (forEachEqualRange), gathering rids[first:last] per
// present value.  Lists large enough for the worker options are split into
// contiguous spans probed concurrently — probe is required to be safe for
// concurrent use — and the per-span results concatenate in span order, so
// the output is identical at every worker count.  A governed call (non-nil
// ctl) observes cancellation and the byte budget at chunk boundaries, each
// worker through its own Checkpoint.
func selectInRIDs(dom *domain.IntDomain, rids []uint32, values []uint32, probe func(ids []uint32, first, last []int32), par parallel.Options, ctl *governor.Ctl) ([]uint32, error) {
	w := par.WorkersFor(len(values))
	span := func(vals []uint32, cp *governor.Checkpoint) ([]uint32, error) {
		var out []uint32
		err := forEachEqualRange(dom, vals, probe, cp, func(first, last int32) {
			out = append(out, rids[first:last]...)
			cp.Charge(4 * int64(last-first))
		})
		if err == nil {
			err = cp.Flush()
		}
		return out, err
	}
	if w <= 1 {
		return span(values, ctl.Checkpoint())
	}
	outs := make([][]uint32, w)
	errs := make([]error, w)
	body := func(t int) {
		lo, hi := parallel.Span(len(values), w, t)
		outs[t], errs[t] = span(values[lo:hi], ctl.Checkpoint())
	}
	var err error
	if ctl == nil {
		parallel.Do(w, len(values), par, body)
	} else {
		err = parallel.DoCtx(ctl.Context(), w, len(values), par, body)
	}
	for _, e := range errs {
		if err == nil && e != nil {
			err = e
		}
	}
	if err != nil {
		return nil, err
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out := make([]uint32, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	return out, nil
}

// dedupeValues keeps the first occurrence of each value, preserving order.
func dedupeValues(values []uint32) []uint32 {
	seen := make(map[uint32]struct{}, len(values))
	out := make([]uint32, 0, len(values))
	for _, v := range values {
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	return out
}

// SelectRange returns the RIDs of rows with lo ≤ column ≤ hi, in (value,
// RID) order — base and delta rows interleaved exactly as a fully rebuilt
// index would order them.  Methods without ordered access return
// ErrNoOrderedAccess.
func (ix *SortedIndex) SelectRange(lo, hi uint32) ([]uint32, error) {
	rids, _, err := ix.rangeMerged(lo, hi, false)
	return rids, err
}

// rangeMerged is the shared range core: the base segment resolved through
// the ordered surface, merged with the delta runs.  wantKeys additionally
// returns the merged raw values (for the cache's containment runs).  With
// a delta outstanding the read serves from the memoized overlay, so it
// costs the same pair of binary searches and bulk copy as the pure-base
// path.
func (ix *SortedIndex) rangeMerged(lo, hi uint32, wantKeys bool) (rids, rawKeys []uint32, err error) {
	ord, ok := ix.idx.(cssidx.OrderedIndex)
	if !ok {
		return nil, nil, ErrNoOrderedAccess
	}
	if lo > hi {
		return nil, nil, nil
	}
	if len(ix.runs) > 0 {
		ov := mergedOverlay(ix.col.dom, ix.keys, ix.rids, ix.readRuns(), &ix.overlay)
		f, l := ov.lowerBound(lo), ov.upperBound(hi)
		if f >= l {
			return nil, nil, nil
		}
		rids = append([]uint32(nil), ov.rids[f:l]...)
		if wantKeys {
			rawKeys = ov.vals[f:l]
		}
		return rids, rawKeys, nil
	}
	loID, hiID := ix.col.dom.IDRange(lo, hi)
	var first, last int
	if loID < hiID {
		first, last = ord.LowerBound(loID), ord.LowerBound(hiID)
	}
	if first >= last {
		return nil, nil, nil
	}
	rids, rawKeys = mergeRangeDelta(ix.col.dom, ix.keys, ix.rids, first, last, nil, lo, hi, wantKeys)
	return rids, rawKeys, nil
}

// rangeDirect answers lo ≤ value ≤ hi in (value, RID) order without
// consulting or building the memoized range overlay — the stitch gap-probe
// path.  Gaps are small by the stitch break-even, so paying the O(n)
// overlay build to answer one would defeat the point of stitching around
// an absorb; the direct base-segment ∪ runs merge costs O(gap + delta)
// instead.  The merged raw keys always ride along (stitched results are
// admitted with their key runs).
func (ix *SortedIndex) rangeDirect(lo, hi uint32) (rids, rawKeys []uint32, err error) {
	ord, ok := ix.idx.(cssidx.OrderedIndex)
	if !ok {
		return nil, nil, ErrNoOrderedAccess
	}
	if lo > hi {
		return nil, nil, nil
	}
	loID, hiID := ix.col.dom.IDRange(lo, hi)
	var first, last int
	if loID < hiID {
		first, last = ord.LowerBound(loID), ord.LowerBound(hiID)
	}
	runs := ix.readRuns()
	if first >= last && len(runs) == 0 {
		return nil, nil, nil
	}
	rids, rawKeys = mergeRangeDelta(ix.col.dom, ix.keys, ix.rids, first, last, runs, lo, hi, true)
	return rids, rawKeys, nil
}

// CountRange is SelectRange without materialising RIDs.
func (ix *SortedIndex) CountRange(lo, hi uint32) (int, error) {
	ord, ok := ix.idx.(cssidx.OrderedIndex)
	if !ok {
		return 0, ErrNoOrderedAccess
	}
	if lo > hi {
		return 0, nil
	}
	n := deltaCountRange(ix.readRuns(), lo, hi)
	loID, hiID := ix.col.dom.IDRange(lo, hi)
	if loID < hiID {
		n += ord.LowerBound(hiID) - ord.LowerBound(loID)
	}
	return n, nil
}

// --- batched probing core ------------------------------------------------------

// probeScratch holds the reusable buffers of one batched probe stream; drawn
// from scratchPool per worker and grown to the chunk size, so concurrent
// join spans reuse buffers without sharing them.
type probeScratch struct {
	ids    []int32  // domain IDs per raw value (-1 = absent from the domain)
	probes []uint32 // compacted present IDs
	ord    []int32  // original ordinal within the chunk per compacted probe
	first  []int32
	last   []int32
}

// ensure sizes the scratch for chunks of up to n values.
func (s *probeScratch) ensure(n int) {
	if cap(s.ids) < n {
		s.ids = make([]int32, n)
		s.probes = make([]uint32, 0, n)
		s.ord = make([]int32, 0, n)
		s.first = make([]int32, n)
		s.last = make([]int32, n)
	}
}

// scratchPool recycles probeScratch across batched operations and workers.
var scratchPool = sync.Pool{New: func() any { return &probeScratch{} }}

func newProbeScratch(n int) *probeScratch {
	s := scratchPool.Get().(*probeScratch)
	s.ensure(n)
	return s
}

// probeEqualBatch probes the index with one chunk of raw values: the chunk is
// translated to domain IDs in one lockstep descent of the domain tree, the
// present IDs are compacted and answered by one batched equal-range probe
// (lockstep again for CSS methods, scalar loop for the rest), and emit is
// called per occurrence with the value's ordinal in the chunk and the
// matching row's RID.  Emission order matches the scalar path: chunk
// order, then ascending RID within a value's duplicates (base rows before
// delta rows).
func (ix *SortedIndex) probeEqualBatch(values []uint32, s *probeScratch, emit func(ordinal int, rid uint32)) int {
	return probeEqualCore(ix.col.dom, values, s, ix.equalRangeBatchIDs, ix.rids, ix.readRuns(), emit)
}

// probeEqualCore is the shared translate-compact-probe-emit driver behind
// every join prober: the chunk is translated to domain IDs in one lockstep
// descent, absent values are compacted away, the present IDs are answered by
// one batched equal-range call, and emit runs per occurrence in chunk order
// then ascending RID — base positions first, then the delta runs, whose
// RIDs all exceed the base's.  A negative first marks an absent probe (the
// hash-backed equal range); it contributes nothing.  Values absent from
// the frozen domain still probe the runs: the delta may hold values the
// dictionary has never seen.
func probeEqualCore(dom *domain.IntDomain, values []uint32, s *probeScratch, equalRange func(probes []uint32, first, last []int32), rids []uint32, runs []idxRun, emit func(ordinal int, rid uint32)) int {
	s.ensure(len(values))
	ids := s.ids[:len(values)]
	dom.IDsBatch(values, ids)
	s.probes = s.probes[:0]
	s.ord = s.ord[:0]
	for i, id := range ids {
		if id >= 0 {
			s.probes = append(s.probes, uint32(id))
			s.ord = append(s.ord, int32(i))
		}
	}
	if len(s.probes) == 0 && len(runs) == 0 {
		return 0
	}
	first := s.first[:len(s.probes)]
	last := s.last[:len(s.probes)]
	if len(s.probes) > 0 {
		equalRange(s.probes, first, last)
	}
	count := 0
	emitBase := func(j int, ordinal int) {
		f, l := first[j], last[j]
		if f < 0 {
			return
		}
		count += int(l - f)
		if emit != nil {
			for pos := f; pos < l; pos++ {
				emit(ordinal, rids[pos])
			}
		}
	}
	if len(runs) == 0 {
		for j := range s.probes {
			emitBase(j, int(s.ord[j]))
		}
		return count
	}
	j := 0
	for i, v := range values {
		if ids[i] >= 0 {
			emitBase(j, i)
			j++
		}
		for ri := range runs {
			f, l := runs[ri].equalRange(v)
			count += l - f
			if emit != nil {
				for k := f; k < l; k++ {
					emit(i, runs[ri].rids[k])
				}
			}
		}
	}
	return count
}

// selectInMerged is the delta-aware IN-list driver: per chunk one lockstep
// domain translation and one batched equal-range for the base, then per
// listed value the base RIDs followed by the runs' — the same value-grouped,
// ascending-RID output selectInRIDs produces against a rebuilt index.
func selectInMerged(dom *domain.IntDomain, rids []uint32, values []uint32, probe func(ids []uint32, first, last []int32), runs []idxRun, cp *governor.Checkpoint) ([]uint32, error) {
	out, _, err := selectInGrouped(dom, rids, values, probe, runs, false, cp)
	return out, err
}

// selectInGrouped is selectInMerged with group offsets: when wantGroups is
// set, goff[i] marks where value i's rows start in out (goff has
// len(values)+1 entries), which is what the cache's subset/superset reuse
// and per-group append patching need.  runs may be empty — the driver then
// degenerates to the pure-base batched probe with identical output to
// selectInRIDs at any worker count.  cp (nil = ungoverned) is consulted
// once per chunk and charged for the gathered rows.
func selectInGrouped(dom *domain.IntDomain, rids []uint32, values []uint32, probe func(ids []uint32, first, last []int32), runs []idxRun, wantGroups bool, cp *governor.Checkpoint) (out, goff []uint32, err error) {
	if len(values) == 0 {
		if wantGroups {
			goff = []uint32{0}
		}
		return nil, goff, nil
	}
	if wantGroups {
		goff = make([]uint32, 0, len(values)+1)
	}
	batch := cssidx.DefaultBatchSize
	if batch > len(values) {
		batch = len(values)
	}
	ids := make([]int32, batch)
	probes := make([]uint32, 0, batch)
	first := make([]int32, batch)
	last := make([]int32, batch)
	for base := 0; base < len(values); base += batch {
		end := base + batch
		if end > len(values) {
			end = len(values)
		}
		prevRows := len(out)
		chunk := values[base:end]
		dom.IDsBatch(chunk, ids[:len(chunk)])
		probes = probes[:0]
		for _, id := range ids[:len(chunk)] {
			if id >= 0 {
				probes = append(probes, uint32(id))
			}
		}
		if len(probes) > 0 {
			probe(probes, first[:len(probes)], last[:len(probes)])
		}
		j := 0
		for i, v := range chunk {
			if wantGroups {
				goff = append(goff, uint32(len(out)))
			}
			if ids[i] >= 0 {
				if f, l := first[j], last[j]; f >= 0 && f < l {
					out = append(out, rids[f:l]...)
				}
				j++
			}
			out = deltaEqualAppend(runs, v, out)
		}
		cp.Charge(4 * int64(len(out)-prevRows))
		if err := cp.TickN(len(chunk)); err != nil {
			return nil, nil, err
		}
	}
	if wantGroups {
		goff = append(goff, uint32(len(out)))
	}
	return out, goff, cp.Flush()
}

// equalRangeBatchIDs answers the equal range of every domain-ID probe:
// batched through the ordered surface when the method has one, or — for hash
// — batched leftmost-hit searches extended across each hit's duplicate run
// in the sorted key array (§3.6).
func (ix *SortedIndex) equalRangeBatchIDs(probes []uint32, first, last []int32) {
	if ix.bord != nil {
		ix.bord.EqualRangeBatch(probes, first, last)
		return
	}
	ix.batch.SearchBatch(probes, first)
	n := int32(len(ix.keys))
	for j, f := range first {
		e := f
		if f >= 0 {
			e++
			for e < n && ix.keys[e] == probes[j] {
				e++
			}
		}
		last[j] = e
	}
}

// forEachEqualRange drives the shared IN-list flow: values (pre-deduplicated)
// are translated to domain IDs in chunks of cssidx.DefaultBatchSize with one
// lockstep descent each, absent values are compacted away, present IDs are
// answered by one batched equal-range probe, and emit is called per value
// with its half-open position range.  cp (nil = ungoverned) is consulted
// once per chunk; on abort the error surfaces mid-stream and emitted values
// so far stand.
func forEachEqualRange(dom *domain.IntDomain, values []uint32, probe func(ids []uint32, first, last []int32), cp *governor.Checkpoint, emit func(first, last int32)) error {
	if len(values) == 0 {
		return nil
	}
	batch := cssidx.DefaultBatchSize
	if batch > len(values) {
		batch = len(values)
	}
	ids := make([]int32, batch)
	probes := make([]uint32, 0, batch)
	first := make([]int32, batch)
	last := make([]int32, batch)
	for base := 0; base < len(values); base += batch {
		end := base + batch
		if end > len(values) {
			end = len(values)
		}
		chunk := values[base:end]
		if err := cp.TickN(len(chunk)); err != nil {
			return err
		}
		dom.IDsBatch(chunk, ids[:len(chunk)])
		probes = probes[:0]
		for _, id := range ids[:len(chunk)] {
			if id >= 0 {
				probes = append(probes, uint32(id))
			}
		}
		if len(probes) == 0 {
			continue
		}
		probe(probes, first[:len(probes)], last[:len(probes)])
		for j := range probes {
			emit(first[j], last[j])
		}
	}
	return nil
}

// --- joins -------------------------------------------------------------------

// JoinIndex is an inner-index surface the nested-loop join can probe: a
// *SortedIndex, or a *ShardedIndex whose whole state (domain, RID list,
// shard snapshots) is frozen once per join so the join keeps serving —
// against one consistent epoch — while concurrent AppendRows publish new
// ones.
type JoinIndex interface {
	// joinFreeze captures the prober state the whole join runs against.
	joinFreeze() joinProber
}

// joinProber answers equality probes for join chunks against one frozen
// index state.  Implementations must be safe for concurrent probeEqual
// calls with distinct scratches.
type joinProber interface {
	// probeEqual probes one chunk of raw outer values and calls emit per
	// matching occurrence with the value's ordinal in the chunk and the
	// matching row's RID; it returns the number of occurrences.  Emission
	// order: chunk order, ascending RID within a value's duplicates (base
	// rows before delta rows).
	probeEqual(values []uint32, s *probeScratch, emit func(ordinal int, rid uint32)) int
	// cacheTag identifies the frozen inner state for result caching: a
	// fingerprint of the inner index identity and the single-counter
	// version (table state version or frozen epoch) this prober serves.
	// ok=false opts the join out of caching.
	cacheTag() (hash uint64, version uint64, ok bool)
}

// joinFreeze: a SortedIndex has no concurrent rebuilds to freeze against
// (Table.AppendRows rebuilds it in place, which was never safe to race);
// the index itself is the frozen state.
func (ix *SortedIndex) joinFreeze() joinProber { return ix }

func (ix *SortedIndex) probeEqual(values []uint32, s *probeScratch, emit func(ordinal int, rid uint32)) int {
	return ix.probeEqualBatch(values, s, emit)
}

// cacheTag: a SortedIndex inner is identified by its table and column and
// versioned by the table state version (AppendRows moves it in place,
// whether the batch folds or is absorbed).
func (ix *SortedIndex) cacheTag() (uint64, uint64, bool) {
	if ix.owner == nil {
		return 0, 0, false
	}
	h := qcache.HashString(qcache.HashString(qcache.HashSeed, ix.owner.name), ix.col.name)
	h = qcache.HashU32(h, uint32(qcache.LayerTable))
	return h, ix.owner.stateVer.Load(), true
}

// JoinOptions configures JoinWith.
type JoinOptions struct {
	// BatchSize is the probe chunk size: 0 = cssidx.DefaultBatchSize,
	// 1 = the scalar schedule.
	BatchSize int
	// Parallel tunes the worker pool fanning outer-row spans across cores.
	// The zero value is the default engine (GOMAXPROCS workers, sequential
	// below ~4k outer rows); Workers 1 forces the streaming sequential
	// path.
	Parallel cssidx.ParallelOptions
}

// Join performs the indexed nested-loop join of §2.2 with the default probe
// batch size; see JoinWith.
func Join(outer *Table, outerCol string, inner JoinIndex, emit func(outerRID, innerRID uint32)) (int, error) {
	return JoinWith(outer, outerCol, inner, JoinOptions{}, emit)
}

// JoinBatch is JoinWith with only the chunk size configured.
func JoinBatch(outer *Table, outerCol string, inner JoinIndex, batchSize int, emit func(outerRID, innerRID uint32)) (int, error) {
	return JoinWith(outer, outerCol, inner, JoinOptions{BatchSize: batchSize}, emit)
}

// JoinWith performs the indexed nested-loop join of §2.2, driving the inner
// index through the batched probe surface: outer rows are processed in
// chunks of BatchSize, each chunk is translated through the inner domain and
// probed with one lockstep descent, and emit is called for each matching
// (outerRID, innerRID) pair, in the same order as scalar probing.  It
// returns the number of result pairs.
//
// Outer spans large enough for the worker options run concurrently, each
// with its own pooled scratch, multiplying the lockstep kernel's
// memory-level parallelism by the core count.  On the sequential path (small
// outers, or Parallel.Workers 1) the join streams: emit runs as pairs are
// found and nothing is materialised.  On the parallel path each worker
// stages its span's pairs and emit runs span by span once all workers
// finish, so the emission order is identical — at the price of buffering the
// result pairs; pass Workers 1 when streaming matters more than cores.
//
// A *ShardedIndex inner is frozen once for the whole join (one table-level
// epoch, one snapshot per shard), so joins running concurrently with
// AppendRows see one consistent index state throughout.
//
// When the outer table has a result cache attached, the whole pair set is
// fingerprinted by (outer table+column, inner index identity) and stamped
// with the (outer generation, inner generation/epoch) pair: a repeat of
// the join against unchanged state replays the cached pairs through emit
// without probing.  Count-only joins (emit nil) consult the cache but
// never fill it, so they stay unbuffered; emitting joins fill it, which
// buffers the pairs even on the otherwise-streaming sequential path —
// disable the cache when streaming emission matters more than reuse.
func JoinWith(outer *Table, outerCol string, inner JoinIndex, opts JoinOptions, emit func(outerRID, innerRID uint32)) (int, error) {
	start := telemetry.Now()
	n, err := joinWith(nil, outer, outerCol, inner, opts, emit, nil)
	histJoinNs.Since(start)
	return n, err
}

// JoinWithTraced is JoinWith recording an EXPLAIN ANALYZE trace under tr's
// root span: cache outcome, worker fan-out, probe batch size and pair
// count.  tr may be nil.
func JoinWithTraced(outer *Table, outerCol string, inner JoinIndex, opts JoinOptions, emit func(outerRID, innerRID uint32), tr *telemetry.Trace) (int, error) {
	start := telemetry.Now()
	n, err := joinWith(nil, outer, outerCol, inner, opts, emit, tr.Root())
	histJoinNs.Since(start)
	tr.Finish()
	return n, err
}

// JoinWithCtx is JoinWith under governance: probe workers observe ctx's
// cancellation/deadline at chunk boundaries, staged pairs are charged
// against the context's budget, and on an attached admission controller
// the join enters as ClassSelect after a cache miss.  A cancelled join
// never fills the pair cache.  tr may be nil.
func JoinWithCtx(ctx context.Context, outer *Table, outerCol string, inner JoinIndex, opts JoinOptions, emit func(outerRID, innerRID uint32), tr *telemetry.Trace) (int, error) {
	start := telemetry.Now()
	ctl := governor.For(ctx)
	if err := ctl.Err(); err != nil {
		return 0, abortEntry(tr, err)
	}
	n, err := joinWith(ctl, outer, outerCol, inner, opts, emit, tr.Root())
	histJoinNs.Since(start)
	tr.Finish()
	if err != nil {
		governor.NoteAbort(err)
	}
	return n, err
}

func joinWith(ctl *governor.Ctl, outer *Table, outerCol string, inner JoinIndex, opts JoinOptions, emit func(outerRID, innerRID uint32), sp *telemetry.Span) (int, error) {
	col, ok := outer.cols[outerCol]
	if !ok {
		return 0, fmt.Errorf("mmdb: no column %s in table %s", outerCol, outer.name)
	}
	sp.Attr("outer", outer.name).Attr("outer_col", outerCol)
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = cssidx.DefaultBatchSize
	}
	if batchSize > len(col.raw) && len(col.raw) > 0 {
		batchSize = len(col.raw)
	}
	p := inner.joinFreeze()

	qc := outer.Cache()
	var jkey qcache.Key
	var jtok qcache.Token
	cacheable := false
	if qc.Enabled() {
		if h, version, ok := p.cacheTag(); ok {
			cs := sp.Child("cache")
			jkey = qcache.Key{Table: outer.name, Col: outerCol, Kind: qcache.KindJoin, Hash: h}
			jtok = qcache.Token{Gen: outer.stateVer.Load(), Epoch: version}
			if emit == nil {
				if n, ok := qc.LookupPairCount(jkey, jtok); ok {
					cs.Attr("outcome", "hit").AttrInt("pairs", n)
					cs.End()
					return n, nil
				}
			} else if a, b, ok := qc.LookupPair(jkey, jtok); ok {
				for i := range a {
					emit(a[i], b[i])
				}
				cs.Attr("outcome", "hit").AttrInt("pairs", len(a))
				cs.End()
				return len(a), nil
			}
			cs.Attr("outcome", "miss")
			cs.End()
			cacheable = emit != nil
		}
	}
	release, aerr := outer.admit(ctl, governor.ClassSelect, 4*int64(len(col.raw)))
	if aerr != nil {
		sp.Attr("aborted", aerr.Error())
		return 0, aerr
	}
	defer release()
	ex := sp.Child("execute")
	start := time.Now()
	nRows := len(col.raw)
	par := parallel.Options{Workers: opts.Parallel.Workers, MinBatchPerWorker: opts.Parallel.MinBatchPerWorker}
	w := par.WorkersFor(nRows)
	ex.Attr("path", "indexed-nested-loop").AttrInt("outer_rows", nRows).AttrInt("batch", batchSize).AttrInt("workers", w)

	// joinSpan probes rows [lo, hi) in chunks, emitting through spanEmit;
	// a governed join pays one checkpoint consult per chunk and charges
	// the budget 8 bytes per staged pair.
	joinSpan := func(lo, hi int, cp *governor.Checkpoint, spanEmit func(outerRID, innerRID uint32)) (int, error) {
		s := newProbeScratch(batchSize)
		defer scratchPool.Put(s)
		count := 0
		for base := lo; base < hi; base += batchSize {
			end := base + batchSize
			if end > hi {
				end = hi
			}
			chunkBase := base
			var chunkEmit func(ordinal int, rid uint32)
			if spanEmit != nil {
				chunkEmit = func(ordinal int, rid uint32) {
					spanEmit(uint32(chunkBase+ordinal), rid)
				}
			}
			n := p.probeEqual(col.raw[base:end], s, chunkEmit)
			count += n
			cp.Charge(8 * int64(n))
			if err := cp.TickN(end - base); err != nil {
				return count, err
			}
		}
		if err := cp.Flush(); err != nil {
			return count, err
		}
		return count, nil
	}

	type pair struct{ outer, inner uint32 }
	var bufs [][]pair
	count := 0
	switch {
	case w <= 1 && !cacheable:
		n, err := joinSpan(0, nRows, ctl.Checkpoint(), emit)
		if err != nil {
			ex.Attr("aborted", err.Error())
			ex.End()
			return 0, err
		}
		ex.AttrInt("pairs", n)
		ex.End()
		return n, nil
	case w <= 1:
		var err error
		bufs = make([][]pair, 1)
		count, err = joinSpan(0, nRows, ctl.Checkpoint(), func(o, i uint32) { bufs[0] = append(bufs[0], pair{o, i}) })
		if err != nil {
			ex.Attr("aborted", err.Error())
			ex.End()
			return 0, err
		}
	default:
		counts := make([]int, w)
		errs := make([]error, w)
		if emit != nil || cacheable {
			bufs = make([][]pair, w)
		}
		body := func(t int) {
			lo, hi := parallel.Span(nRows, w, t)
			var spanEmit func(outerRID, innerRID uint32)
			if bufs != nil {
				spanEmit = func(o, i uint32) { bufs[t] = append(bufs[t], pair{o, i}) }
			}
			counts[t], errs[t] = joinSpan(lo, hi, ctl.Checkpoint(), spanEmit)
		}
		var err error
		if ctl == nil {
			parallel.Do(w, nRows, par, body)
		} else {
			err = parallel.DoCtx(ctl.Context(), w, nRows, par, body)
		}
		for _, e := range errs {
			if err == nil && e != nil {
				err = e
			}
		}
		if err != nil {
			ex.Attr("aborted", err.Error())
			ex.End()
			return 0, err
		}
		for _, c := range counts {
			count += c
		}
	}
	ex.AttrInt("pairs", count)
	ex.End()
	// A pair set admission would reject anyway (oversized for the cache)
	// is not worth staging a second copy of.
	if cacheable && qcache.EntryBytesForPairs(count) > qc.MaxEntryBytes() {
		cacheable = false
	}
	var cacheOuter, cacheInner []uint32
	if cacheable {
		cacheOuter = make([]uint32, 0, count)
		cacheInner = make([]uint32, 0, count)
	}
	for _, buf := range bufs {
		for _, pr := range buf {
			if emit != nil {
				emit(pr.outer, pr.inner)
			}
			if cacheable {
				cacheOuter = append(cacheOuter, pr.outer)
				cacheInner = append(cacheInner, pr.inner)
			}
		}
	}
	if cacheable {
		ad := sp.Child("admit")
		qc.InsertPair(jkey, jtok, cacheOuter, cacheInner, joinRecomputeCost(time.Since(start), nRows, count))
		ad.End()
	}
	return count, nil
}

// --- batch updates -------------------------------------------------------------

// AppendRows appends a batch of rows: newCols must supply every column with
// equal-length slices.  Small batches are *absorbed* into the delta layer —
// sorted per-index runs over the appended rows, served merged with the base
// by every read surface (delta.go) — so an append stream stops paying a
// full O(n) rebuild per batch.  Once the delta reaches the AppendPolicy
// threshold (or the policy disables absorption), the batch *folds*: domains
// and ID encodings are rebuilt (domain IDs are ranks, so inserting new
// distinct values renumbers them) and every registered index is rebuilt
// from scratch — the paper's OLAP position: "in a main-memory system, it
// may be relatively cheap to rebuild an index from scratch after a batch
// of updates."
func (t *Table) AppendRows(newCols map[string][]uint32) error {
	return t.appendRows(nil, newCols)
}

// AppendRowsCtx is AppendRows honoring ctx: cancellation and deadline are
// checked up to the last point before the mutation starts.  Once the fold
// or absorb begins it runs to completion — aborting a half-published
// rebuild would tear index epochs — so a cancelled append either happened
// entirely or not at all.
func (t *Table) AppendRowsCtx(ctx context.Context, newCols map[string][]uint32) error {
	err := t.appendRows(governor.For(ctx), newCols)
	if err != nil {
		governor.NoteAbort(err)
	}
	return err
}

func (t *Table) appendRows(ctl *governor.Ctl, newCols map[string][]uint32) error {
	batch, err := t.validateBatch(newCols)
	if err != nil {
		return err
	}
	// Last cancellation point: past here the batch lands atomically.
	if err := ctl.Err(); err != nil {
		return err
	}
	if batch == 0 || t.appendPol.shouldFold(t.rows-t.baseRows+batch, t.baseRows) {
		t.foldRows(newCols, batch)
	} else {
		t.absorbRows(newCols, batch)
	}
	return nil
}

// validateBatch checks an AppendRows batch supplies every column with
// equal-length slices and returns the batch row count.
func (t *Table) validateBatch(newCols map[string][]uint32) (int, error) {
	if len(t.cols) == 0 {
		return 0, errors.New("mmdb: table has no columns")
	}
	var batch int
	for i, name := range t.order {
		vals, ok := newCols[name]
		if !ok {
			return 0, fmt.Errorf("mmdb: batch missing column %s", name)
		}
		if i == 0 {
			batch = len(vals)
		} else if len(vals) != batch {
			return 0, fmt.Errorf("mmdb: batch column %s has %d rows, want %d", name, len(vals), batch)
		}
	}
	return batch, nil
}

// foldRows is the full-rebuild path: encodings, indexes and sharded epochs
// are reconstructed over all rows (clearing any outstanding delta runs),
// the generation moves, and the table's cached entries are swept.
func (t *Table) foldRows(newCols map[string][]uint32, batch int) {
	for _, name := range t.order {
		c := t.cols[name]
		c.raw = append(c.raw, newCols[name]...)
		c.dom, c.ids = domain.BuildInt(c.raw)
	}
	t.rows += batch
	t.baseRows = t.rows
	for _, ix := range t.indexes {
		ix.rebuild()
	}
	for _, ix := range t.sharded {
		ix.rebuild()
	}
	// Generation invalidation: move the token, then sweep this table's
	// entries.  Readers never block — a concurrent sharded reader still
	// holding the previous epoch simply stops matching, and any entry it
	// inserts late is stamped with the old epoch and reaped at its next
	// access.
	t.gen.Add(1)
	t.stateVer.Add(1)
	t.Cache().DropTable(t.name)
}

// absorbRows is the delta path: raw columns grow, the frozen encodings do
// not, and each index absorbs the batch as one sorted run (sharded indexes
// publish a new epoch sharing the base arrays).  Instead of dropping the
// table's cached entries, the move from the old token to the new one is a
// PatchAppend sweep: entries whose key domain misses the batch are carried
// across untouched, intersecting ones are extended with the qualifying
// appended rows, and only the kinds that cannot be patched drop.
func (t *Table) absorbRows(newCols map[string][]uint32, batch int) {
	startRID := uint32(t.rows)
	oldTok := t.token()
	var oldUIDs map[string]uint64
	if len(t.sharded) > 0 {
		oldUIDs = make(map[string]uint64, len(t.sharded))
		for col, six := range t.sharded {
			oldUIDs[col] = six.cur.Load().uid
		}
	}
	for _, name := range t.order {
		c := t.cols[name]
		c.raw = append(c.raw, newCols[name]...)
	}
	t.rows += batch
	for col, ix := range t.indexes {
		ix.absorb(newCols[col], startRID)
	}
	for col, six := range t.sharded {
		six.absorb(newCols[col], startRID)
	}
	t.deltaSeq.Add(1)
	t.stateVer.Add(1)
	if qc := t.Cache(); qc.Enabled() {
		qc.PatchAppend(qcache.AppendPatch{
			Table: t.name, Layer: qcache.LayerTable,
			OldTok: oldTok, NewTok: t.token(),
			StartRID: startRID, Cols: newCols,
		})
		for col, six := range t.sharded {
			qc.PatchAppend(qcache.AppendPatch{
				Table: t.name, Layer: qcache.LayerEpoch, Col: col,
				OldTok:   qcache.Token{Epoch: oldUIDs[col]},
				NewTok:   qcache.Token{Epoch: six.cur.Load().uid},
				StartRID: startRID, Cols: newCols,
			})
		}
	}
}
