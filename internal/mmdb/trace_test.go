package mmdb

import (
	"strconv"
	"testing"

	"cssidx"
	"cssidx/internal/telemetry"
	"cssidx/internal/workload"
)

// attrInt reads an integer span attribute, failing the test when the span or
// attribute is missing or malformed.
func attrInt(t *testing.T, sp *telemetry.Span, key string) int {
	t.Helper()
	if sp == nil {
		t.Fatalf("span missing while reading attr %q", key)
	}
	v := sp.AttrValue(key)
	if v == "" {
		t.Fatalf("span %q has no attr %q", sp.Name(), key)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		t.Fatalf("span %q attr %q = %q: not an int", sp.Name(), key, v)
	}
	return n
}

func TestTraceSelectRangeMissThenHit(t *testing.T) {
	g := workload.New(7)
	tab := NewTable("t")
	if err := tab.AddColumn("v", g.SortedWithDuplicates(4000, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.BuildIndex("v", cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
		t.Fatal(err)
	}
	tab.EnableCache(CacheOptions{MinCostNs: -1})

	tr := telemetry.NewTrace("SelectRange")
	rids, _, err := tab.SelectRangeTraced("v", 100, 5000, tr)
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	if got := root.AttrValue("table"); got != "t" {
		t.Errorf("root table=%q, want t", got)
	}
	ps := root.Find("plan")
	if ps == nil {
		t.Fatal("miss trace has no plan span")
	}
	if ps.AttrValue("use_index") != "true" {
		t.Errorf("plan use_index=%q, want true", ps.AttrValue("use_index"))
	}
	if cs := root.Find("cache"); cs.AttrValue("outcome") != "miss" {
		t.Errorf("first query cache outcome=%q, want miss", cs.AttrValue("outcome"))
	}
	ex := root.Find("execute")
	if ex == nil {
		t.Fatal("miss trace has no execute span")
	}
	if got := ex.AttrValue("path"); got != "sorted-index" {
		t.Errorf("execute path=%q, want sorted-index", got)
	}
	if got := attrInt(t, ex, "rows"); got != len(rids) {
		t.Errorf("execute rows=%d, want %d", got, len(rids))
	}
	if root.Find("admit") == nil {
		t.Error("miss trace has no admit span (cache enabled)")
	}

	tr2 := telemetry.NewTrace("SelectRange")
	rids2, _, err := tab.SelectRangeTraced("v", 100, 5000, tr2)
	if err != nil {
		t.Fatal(err)
	}
	cs := tr2.Root().Find("cache")
	if got := cs.AttrValue("outcome"); got != "hit" {
		t.Errorf("second query cache outcome=%q, want hit", got)
	}
	if got := attrInt(t, cs, "rows"); got != len(rids2) {
		t.Errorf("cache hit rows=%d, want %d", got, len(rids2))
	}
	if tr2.Root().Find("execute") != nil {
		t.Error("cache hit still recorded an execute span")
	}
}

func TestTraceSelectRangeNoCacheHasNoCacheSpan(t *testing.T) {
	tab := salesFixture(t)
	tr := telemetry.NewTrace("SelectRange")
	if _, _, err := tab.SelectRangeTraced("amount", 20, 60, tr); err != nil {
		t.Fatal(err)
	}
	if tr.Root().Find("cache") != nil {
		t.Error("cache span rendered with caching disabled")
	}
	if tr.Root().Find("admit") != nil {
		t.Error("admit span rendered with caching disabled")
	}
	ex := tr.Root().Find("execute")
	if got := ex.AttrValue("path"); got != "scan" {
		t.Errorf("execute path=%q, want scan", got)
	}
}

func TestTraceSelectInMissThenHit(t *testing.T) {
	g := workload.New(11)
	keys := g.SortedWithDuplicates(3000, 2)
	tab := NewTable("t")
	if err := tab.AddColumn("v", keys); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.BuildIndex("v", cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
		t.Fatal(err)
	}
	tab.EnableCache(CacheOptions{MinCostNs: -1})
	values := g.Lookups(keys, 8)

	tr := telemetry.NewTrace("SelectIn")
	rids, _, err := tab.SelectInTraced("v", values, tr)
	if err != nil {
		t.Fatal(err)
	}
	if cs := tr.Root().Find("cache"); cs.AttrValue("outcome") != "miss" {
		t.Errorf("first IN cache outcome=%q, want miss", cs.AttrValue("outcome"))
	}
	ex := tr.Root().Find("execute")
	if p := ex.AttrValue("path"); p != "index-grouped" && p != "index-batch" {
		t.Errorf("execute path=%q, want index-grouped or index-batch", p)
	}
	if got := attrInt(t, ex, "rows"); got != len(rids) {
		t.Errorf("execute rows=%d, want %d", got, len(rids))
	}

	tr2 := telemetry.NewTrace("SelectIn")
	if _, _, err := tab.SelectInTraced("v", values, tr2); err != nil {
		t.Fatal(err)
	}
	if cs := tr2.Root().Find("cache"); cs.AttrValue("outcome") != "hit" {
		t.Errorf("second IN cache outcome=%q, want hit", cs.AttrValue("outcome"))
	}
}

func TestTraceSelectWhereConjuncts(t *testing.T) {
	tab := salesFixture(t)
	if _, err := tab.BuildIndex("amount", cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
		t.Fatal(err)
	}
	preds := []RangePred{
		{Col: "amount", Lo: 20, Hi: 80},
		{Col: "region", Lo: 1, Hi: 2},
	}
	tr := telemetry.NewTrace("SelectWhere")
	rids, _, err := tab.SelectWhereTraced(preds, tr)
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	if got := attrInt(t, root, "conjuncts"); got != len(preds) {
		t.Errorf("root conjuncts=%d, want %d", got, len(preds))
	}
	ex := root.Find("execute")
	if ex == nil {
		t.Fatal("no execute span")
	}
	if ex.Find("conjunct") == nil {
		t.Error("execute span has no conjunct children")
	}
	is := root.Find("intersect")
	if got := attrInt(t, is, "rows"); got != len(rids) {
		t.Errorf("intersect rows=%d, want %d", got, len(rids))
	}
}

func TestTraceGroupAggregate(t *testing.T) {
	tab := salesFixture(t)
	tr := telemetry.NewTrace("GroupAggregate")
	rows, err := GroupAggregateTraced(tab, "region", "amount", nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	ex := tr.Root().Find("execute")
	if got := ex.AttrValue("path"); got != "domain-array" {
		t.Errorf("execute path=%q, want domain-array", got)
	}
	if got := attrInt(t, ex, "groups"); got != len(rows) {
		t.Errorf("execute groups=%d, want %d", got, len(rows))
	}
}

func TestTraceJoinMissThenHit(t *testing.T) {
	inner, outer := buildJoinTables(t, 23, 2000, 1200)
	ix, err := inner.BuildIndex("k", cssidx.KindLevelCSS, cssidx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	outer.EnableCache(CacheOptions{MinCostNs: -1})

	run := func() (*telemetry.Trace, int) {
		tr := telemetry.NewTrace("Join")
		n, err := JoinWithTraced(outer, "k", ix, JoinOptions{}, func(o, i uint32) {}, tr)
		if err != nil {
			t.Fatal(err)
		}
		return tr, n
	}
	tr, n := run()
	root := tr.Root()
	if cs := root.Find("cache"); cs.AttrValue("outcome") != "miss" {
		t.Errorf("first join cache outcome=%q, want miss", cs.AttrValue("outcome"))
	}
	ex := root.Find("execute")
	if got := attrInt(t, ex, "pairs"); got != n {
		t.Errorf("execute pairs=%d, want %d", got, n)
	}
	if root.Find("admit") == nil {
		t.Error("first join recorded no admit span")
	}

	tr2, n2 := run()
	cs := tr2.Root().Find("cache")
	if got := cs.AttrValue("outcome"); got != "hit" {
		t.Errorf("second join cache outcome=%q, want hit", got)
	}
	if got := attrInt(t, cs, "pairs"); got != n2 {
		t.Errorf("hit pairs=%d, want %d", got, n2)
	}
}

func TestTraceShardedRangeShardsTouched(t *testing.T) {
	g := workload.New(31)
	tab := NewTable("t")
	keys := g.SortedWithDuplicates(8000, 2)
	if err := tab.AddColumn("v", keys); err != nil {
		t.Fatal(err)
	}
	sx, err := tab.BuildShardedIndex("v", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()

	// Narrow enough that the planner commits to the index, wide enough to
	// cross at least one shard boundary.
	lo, hi := keys[len(keys)*7/16], keys[len(keys)*9/16]
	tr := telemetry.NewTrace("SelectRange")
	rids, _, err := tab.SelectRangeTraced("v", lo, hi, tr)
	if err != nil {
		t.Fatal(err)
	}
	ex := tr.Root().Find("execute")
	if got := ex.AttrValue("path"); got != "sharded" {
		t.Errorf("execute path=%q, want sharded", got)
	}
	touched := attrInt(t, ex, "shards_touched")
	if touched < 1 || touched > 4 {
		t.Errorf("shards_touched=%d, want within [1,4]", touched)
	}
	if got := attrInt(t, ex, "rows"); got != len(rids) {
		t.Errorf("execute rows=%d, want %d", got, len(rids))
	}
}
