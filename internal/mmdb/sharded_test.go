package mmdb

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"cssidx"
)

func shardedFixture(t *testing.T, rows int, seed int64) (*Table, []uint32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vals := make([]uint32, rows)
	for i := range vals {
		vals[i] = uint32(rng.Intn(rows / 4)) // plenty of duplicates
	}
	tbl := NewTable("orders")
	if err := tbl.AddColumn("qty", vals); err != nil {
		t.Fatal(err)
	}
	return tbl, vals
}

// TestShardedIndexMatchesSortedIndex: the sharded index must answer every
// selection exactly like the single-threaded SortedIndex (as RID sets;
// within duplicate runs the orders may differ because the two paths sort
// pairs differently).
func TestShardedIndexMatchesSortedIndex(t *testing.T) {
	tbl, vals := shardedFixture(t, 8000, 41)
	ref, err := tbl.BuildIndex("qty", cssidx.KindLevelCSS, cssidx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := tbl.BuildShardedIndex("qty", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	asSet := func(rids []uint32) map[uint32]bool {
		m := make(map[uint32]bool, len(rids))
		for _, r := range rids {
			m[r] = true
		}
		return m
	}
	sameSet := func(a, b []uint32) bool {
		if len(a) != len(b) {
			return false
		}
		sa := asSet(a)
		for _, r := range b {
			if !sa[r] {
				return false
			}
		}
		return true
	}

	for _, v := range []uint32{0, 1, vals[0], vals[100], 1999, 5000} {
		if !sameSet(ref.SelectEqual(v), sh.SelectEqual(v)) {
			t.Fatalf("SelectEqual(%d) differs between sorted and sharded", v)
		}
	}
	for _, r := range [][2]uint32{{0, 10}, {100, 500}, {1990, 5000}, {7, 7}, {5000, 4000}} {
		want, err := ref.SelectRange(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := sh.SelectRange(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if !sameSet(want, got) {
			t.Fatalf("SelectRange(%d,%d): %d vs %d rids", r[0], r[1], len(want), len(got))
		}
		n, err := sh.CountRange(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if n != len(want) {
			t.Fatalf("CountRange(%d,%d)=%d want %d", r[0], r[1], n, len(want))
		}
	}
}

// TestShardedIndexServesDuringAppendRows runs concurrent range queries
// against the sharded index while AppendRows repeatedly rebuilds it; every
// answer must be internally consistent with some published epoch.
func TestShardedIndexServesDuringAppendRows(t *testing.T) {
	tbl, _ := shardedFixture(t, 4000, 42)
	sh, err := tbl.BuildShardedIndex("qty", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	stop := make(chan struct{})
	var queries atomic.Int64
	var wg sync.WaitGroup
	bad := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := uint32(rng.Intn(900))
				hi := lo + uint32(rng.Intn(100))
				rids, err := sh.SelectRange(lo, hi)
				if err != nil {
					select {
					case bad <- err.Error():
					default:
					}
					return
				}
				n, _ := sh.CountRange(lo, hi)
				// Counts may come from a different epoch than the select;
				// both must at least be sane for their own epoch.
				if len(rids) < 0 || n < 0 {
					select {
					case bad <- "negative result":
					default:
					}
					return
				}
				queries.Add(1)
			}
		}(int64(w))
	}

	rng := rand.New(rand.NewSource(7))
	for batch := 0; batch < 12; batch++ {
		vals := make([]uint32, 500)
		for i := range vals {
			vals[i] = uint32(rng.Intn(1200))
		}
		if err := tbl.AppendRows(map[string][]uint32{"qty": vals}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-bad:
		t.Fatal(msg)
	default:
	}
	if got := sh.Epoch(); got != 13 {
		t.Fatalf("epoch=%d want 13 (1 build + 12 AppendRows)", got)
	}
	if tbl.Rows() != 4000+12*500 {
		t.Fatalf("rows=%d", tbl.Rows())
	}
	// After the last rebuild the answers must reflect every appended row.
	n, err := sh.CountRange(0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if n != tbl.Rows() {
		t.Fatalf("CountRange(all)=%d want %d", n, tbl.Rows())
	}
	if queries.Load() == 0 {
		t.Fatal("no queries completed during rebuilds")
	}
}

// TestPlannerUsesShardedIndex: table range queries route through the
// sharded index when it is the only index on the column.
func TestPlannerUsesShardedIndex(t *testing.T) {
	tbl, _ := shardedFixture(t, 4000, 43)
	sh, err := tbl.BuildShardedIndex("qty", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	plan, err := tbl.PlanRange("qty", 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UseIndex {
		t.Fatalf("selective predicate should use the sharded index: %+v", plan)
	}
	rids, plan2, err := tbl.SelectRange("qty", 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !plan2.UseIndex {
		t.Fatalf("SelectRange ignored the sharded index: %+v", plan2)
	}
	// Verify against a scan.
	c, _ := tbl.Column("qty")
	want := 0
	for row := 0; row < tbl.Rows(); row++ {
		if v := c.Value(row); v >= 5 && v <= 10 {
			want++
		}
	}
	if len(rids) != want {
		t.Fatalf("sharded range returned %d rids, scan says %d", len(rids), want)
	}
	// A wide predicate still falls back to the scan.
	plan3, err := tbl.PlanRange("qty", 0, 4_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if plan3.UseIndex {
		t.Fatalf("unselective predicate should scan: %+v", plan3)
	}
}
