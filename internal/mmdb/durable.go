package mmdb

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"sync"

	"cssidx/internal/failfs"
	"cssidx/internal/governor"
	"cssidx/internal/qcache"
	"cssidx/internal/wal"
)

// DurableTable is a Table whose AppendRows batches are write-ahead
// logged before the in-memory table absorbs them: every batch is
// appended to a checksummed log — fsynced per the configured wal.Policy
// — so a crash between Checkpoint snapshots loses nothing the policy
// promised to keep.  Reads (Column, SelectEqual, Join, …) go straight
// to the embedded Table; AppendRows, Checkpoint and Close are
// intercepted.  AppendRows calls are serialized through the log and
// safe for concurrent use; reads follow the Table's own rules.
type DurableTable struct {
	*Table

	fsys     failfs.FS
	snapPath string

	mu      sync.Mutex
	log     *wal.Log
	lastSeq uint64 // last sequence absorbed by the in-memory table
}

// OpenDurable opens — or recovers — a durable table rooted at dir: the
// snapshot lives in dir/name.snap, the write-ahead log in dir/name.wal.
// On open, the snapshot (if any) is loaded and every log record after
// the snapshot's covered sequence is replayed as an AppendRows batch,
// with a torn log tail detected by checksum and truncated.  The first
// batch ever logged on an empty table defines the schema, so a table
// born and crashed before its first Checkpoint still recovers whole.
//
// The crash guarantee, per policy: with wal.Always an AppendRows that
// returned is durable; with wal.GroupCommit it is durable within the
// group-commit window; with wal.None only Checkpoint/Sync/Close
// boundaries are.  In every mode recovery yields a clean prefix of
// acknowledged batches — a batch is either fully recovered (all
// columns, all rows) or fully absent; no torn batch is ever visible.
//
// fsys nil means the real filesystem.
func OpenDurable(fsys failfs.FS, dir, name string, pol wal.Policy) (*DurableTable, error) {
	if fsys == nil {
		fsys = failfs.OS
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("mmdb: creating %s: %w", dir, err)
	}
	snapPath := filepath.Join(dir, name+".snap")
	walPath := filepath.Join(dir, name+".wal")

	var (
		t       *Table
		snapSeq uint64
	)
	tb, seq, err := loadTableSnapshot(fsys, snapPath, name)
	switch {
	case err == nil:
		t, snapSeq = tb, seq
	case errors.Is(err, fs.ErrNotExist):
		t = NewTable(name)
	default:
		return nil, err
	}

	log, recs, err := wal.Open(fsys, walPath, pol)
	if err != nil {
		return nil, err
	}
	if err := log.Advance(snapSeq); err != nil {
		log.Close()
		return nil, err
	}
	lastSeq := snapSeq
	for _, rec := range recs {
		if rec.Seq <= snapSeq {
			continue // already folded into the snapshot
		}
		names, cols, derr := decodeBatch(rec.Payload)
		if derr != nil {
			log.Close()
			return nil, derr
		}
		if err := applyBatch(t, names, cols); err != nil {
			log.Close()
			return nil, fmt.Errorf("mmdb: replaying wal record %d: %w", rec.Seq, err)
		}
		lastSeq = rec.Seq
	}
	return &DurableTable{
		Table:    t,
		fsys:     fsys,
		snapPath: snapPath,
		log:      log,
		lastSeq:  lastSeq,
	}, nil
}

// AppendRows validates the batch, logs it, then applies it to the
// table.  When it returns nil the batch is on the log per the policy
// (see OpenDurable); a non-nil error means the batch was neither logged
// nor applied.  On an empty table the batch defines the schema (columns
// in sorted-name order), standing in for AddColumn.
func (d *DurableTable) AppendRows(newCols map[string][]uint32) error {
	return d.appendRows(nil, newCols)
}

// AppendRowsCtx is AppendRows honoring ctx's cancellation and deadline.
// The context is checked up to the moment before the batch hits the log;
// once logged, the batch is applied unconditionally — a record the WAL
// acknowledged must be visible in the table, or recovery and the live
// image would diverge.  So a cancelled durable append either never
// touched the log or is fully durable and applied; it never leaks a
// logged-but-unapplied record.
func (d *DurableTable) AppendRowsCtx(ctx context.Context, newCols map[string][]uint32) error {
	err := d.appendRows(governor.For(ctx), newCols)
	if err != nil {
		governor.NoteAbort(err)
	}
	return err
}

func (d *DurableTable) appendRows(ctl *governor.Ctl, newCols map[string][]uint32) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	names, err := d.validateBatch(newCols)
	if err != nil {
		return err
	}
	// Last cancellation point: past here the record is on the log and
	// the apply must follow.
	if err := ctl.Err(); err != nil {
		return err
	}
	seq, err := d.log.Append(encodeBatch(names, newCols))
	if err != nil {
		return err
	}
	if err := applyBatch(d.Table, names, newCols); err != nil {
		// Cannot happen after validation; if it somehow does, the log
		// and table have diverged and continuing would corrupt both.
		panic(fmt.Sprintf("mmdb: logged batch failed to apply: %v", err))
	}
	d.lastSeq = seq
	return nil
}

// validateBatch performs Table.AppendRows's checks up front — before
// the batch hits the log — and returns the column order to encode:
// definition order for an existing schema, sorted-name order for the
// schema-defining first batch (map iteration order is not
// deterministic, and replay must reproduce the exact schema).
func (d *DurableTable) validateBatch(newCols map[string][]uint32) ([]string, error) {
	if len(newCols) == 0 {
		return nil, errors.New("mmdb: empty batch")
	}
	var names []string
	if len(d.Table.cols) == 0 {
		names = make([]string, 0, len(newCols))
		for name := range newCols {
			names = append(names, name)
		}
		sort.Strings(names)
	} else {
		if len(newCols) != len(d.Table.order) {
			return nil, fmt.Errorf("mmdb: batch has %d columns, table %s has %d", len(newCols), d.Table.name, len(d.Table.order))
		}
		names = d.Table.order
	}
	batch := -1
	for _, name := range names {
		vals, ok := newCols[name]
		if !ok {
			return nil, fmt.Errorf("mmdb: batch missing column %s", name)
		}
		if batch == -1 {
			batch = len(vals)
		} else if len(vals) != batch {
			return nil, fmt.Errorf("mmdb: batch column %s has %d rows, want %d", name, len(vals), batch)
		}
	}
	if batch == 0 {
		return nil, errors.New("mmdb: empty batch")
	}
	return names, nil
}

// applyBatch applies a decoded batch: AddColumn per column when the
// table is empty (schema-defining), AppendRows otherwise.
func applyBatch(t *Table, names []string, cols map[string][]uint32) error {
	if len(t.cols) == 0 {
		for _, name := range names {
			if err := t.AddColumn(name, cols[name]); err != nil {
				return err
			}
		}
		return nil
	}
	return t.AppendRows(cols)
}

// SyncWAL forces every acknowledged batch durable now, regardless of
// policy.
func (d *DurableTable) SyncWAL() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.Sync()
}

// SyncedSeq reports the last log sequence known durable.
func (d *DurableTable) SyncedSeq() uint64 { return d.log.SyncedSeq() }

// LastSeq reports the last log sequence absorbed by the table.
func (d *DurableTable) LastSeq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastSeq
}

// LogSize reports the write-ahead log's current size in bytes: the
// recovery debt a Checkpoint would clear.
func (d *DurableTable) LogSize() int64 { return d.log.Size() }

// Checkpoint captures the table in a fresh snapshot (atomically: temp +
// fsync + rename + directory fsync) and truncates the log.  The
// snapshot records the log sequence it absorbed, so a crash anywhere
// inside Checkpoint recovers correctly — replay skips records the
// snapshot already owns.
func (d *DurableTable) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	seq := d.lastSeq
	if err := writeTableAtomic(d.fsys, d.snapPath, d.Table, seq); err != nil {
		return err
	}
	return d.log.Checkpoint()
}

// Close syncs and closes the log.  No implicit checkpoint: recovery
// replays the log.
func (d *DurableTable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.Close()
}

// --- batch codec -------------------------------------------------------------

// Batch payload: u32 ncols, then per column u32 nameLen, name bytes,
// u32 n, n little-endian u32 values.  Column order is the table's
// definition order (or sorted names for the schema-defining batch), so
// encoding is deterministic and replay reconstructs the schema exactly.
func encodeBatch(names []string, cols map[string][]uint32) []byte {
	size := 4
	for _, name := range names {
		size += 8 + len(name) + 4*len(cols[name])
	}
	buf := make([]byte, 0, size)
	var u [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(u[:], v)
		buf = append(buf, u[:]...)
	}
	put(uint32(len(names)))
	for _, name := range names {
		put(uint32(len(name)))
		buf = append(buf, name...)
		vals := cols[name]
		put(uint32(len(vals)))
		for _, v := range vals {
			put(v)
		}
	}
	return buf
}

func decodeBatch(payload []byte) (names []string, cols map[string][]uint32, err error) {
	bad := func(what string) ([]string, map[string][]uint32, error) {
		return nil, nil, fmt.Errorf("mmdb: malformed wal batch (%s)", what)
	}
	next := func() (uint32, bool) {
		if len(payload) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(payload)
		payload = payload[4:]
		return v, true
	}
	ncols, ok := next()
	if !ok {
		return bad("truncated header")
	}
	if ncols == 0 || uint64(ncols) > uint64(len(payload)) {
		return bad("column count")
	}
	names = make([]string, 0, ncols)
	cols = make(map[string][]uint32, ncols)
	for i := uint32(0); i < ncols; i++ {
		nameLen, ok := next()
		if !ok || uint64(nameLen) > uint64(len(payload)) {
			return bad("column name length")
		}
		name := string(payload[:nameLen])
		payload = payload[nameLen:]
		n, ok := next()
		if !ok || 4*uint64(n) > uint64(len(payload)) {
			return bad("value count")
		}
		vals := make([]uint32, n)
		for j := range vals {
			vals[j] = binary.LittleEndian.Uint32(payload[4*j:])
		}
		payload = payload[4*n:]
		if _, dup := cols[name]; dup {
			return bad("duplicate column " + name)
		}
		names = append(names, name)
		cols[name] = vals
	}
	if len(payload) != 0 {
		return bad("trailing bytes")
	}
	return names, cols, nil
}

// --- snapshot codec ----------------------------------------------------------

const (
	snapMagic   = 0x43534454 // "CSDT"
	snapVersion = 1
	// snapChunk bounds a single read/allocation when decoding column
	// values, so a corrupt length prefix cannot force a huge allocation:
	// memory grows only as fast as bytes actually read.
	snapChunk = 1 << 16
)

// writeTableAtomic commits a snapshot of t (covering log sequences up to
// seq) to path with all-or-nothing visibility, mirroring the root
// package's writeFileAtomic: temp + fsync + rename + directory fsync,
// every error propagated, the temp unlinked on failure.
func writeTableAtomic(fsys failfs.FS, path string, t *Table, seq uint64) error {
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := saveTableSnapshot(f, t, seq); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}

// Snapshot layout: magic u32, version u32, walSeq u64, ncols u32, then
// per column u32 nameLen, name, u32 n, n values; finally a u64 FNV-1a
// checksum over everything the columns contributed, so a torn or
// bit-flipped snapshot is rejected rather than served.
func saveTableSnapshot(w io.Writer, t *Table, seq uint64) error {
	var u [8]byte
	wr := func(b []byte) error { _, err := w.Write(b); return err }
	pu32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(u[:4], v)
		return wr(u[:4])
	}
	pu64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(u[:], v)
		return wr(u[:])
	}
	if err := pu32(snapMagic); err != nil {
		return err
	}
	if err := pu32(snapVersion); err != nil {
		return err
	}
	if err := pu64(seq); err != nil {
		return err
	}
	if err := pu32(uint32(len(t.order))); err != nil {
		return err
	}
	sum := uint64(qcache.HashSeed)
	for _, name := range t.order {
		c := t.cols[name]
		if err := pu32(uint32(len(name))); err != nil {
			return err
		}
		if err := wr([]byte(name)); err != nil {
			return err
		}
		if err := pu32(uint32(len(c.raw))); err != nil {
			return err
		}
		sum = qcache.HashString(sum, name)
		sum = qcache.HashU32s(sum, c.raw)
		buf := make([]byte, 0, 4*min(len(c.raw), snapChunk))
		for off := 0; off < len(c.raw); off += snapChunk {
			end := min(off+snapChunk, len(c.raw))
			buf = buf[:0]
			for _, v := range c.raw[off:end] {
				binary.LittleEndian.PutUint32(u[:4], v)
				buf = append(buf, u[:4]...)
			}
			if err := wr(buf); err != nil {
				return err
			}
		}
	}
	return pu64(sum)
}

func loadTableSnapshot(fsys failfs.FS, path, name string) (*Table, uint64, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, 0, err
	}
	t, seq, err := decodeTableSnapshot(f, name)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return nil, 0, err
	}
	return t, seq, nil
}

func decodeTableSnapshot(r io.Reader, name string) (*Table, uint64, error) {
	bad := func(what string) (*Table, uint64, error) {
		return nil, 0, fmt.Errorf("mmdb: corrupt snapshot (%s)", what)
	}
	var u [8]byte
	ru32 := func() (uint32, error) {
		if _, err := io.ReadFull(r, u[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(u[:4]), nil
	}
	magic, err := ru32()
	if err != nil {
		return bad("short header")
	}
	if magic != snapMagic {
		return bad("bad magic")
	}
	version, err := ru32()
	if err != nil || version != snapVersion {
		return bad("version")
	}
	if _, err := io.ReadFull(r, u[:]); err != nil {
		return bad("short header")
	}
	seq := binary.LittleEndian.Uint64(u[:])
	ncols, err := ru32()
	if err != nil {
		return bad("short header")
	}
	if ncols > 1<<20 {
		return bad("column count")
	}
	t := NewTable(name)
	sum := uint64(qcache.HashSeed)
	for i := uint32(0); i < ncols; i++ {
		nameLen, err := ru32()
		if err != nil {
			return bad("column name length")
		}
		if nameLen > 1<<20 {
			return bad("column name length")
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(r, nameBuf); err != nil {
			return bad("column name")
		}
		n, err := ru32()
		if err != nil {
			return bad("row count")
		}
		// Chunked decode: allocation tracks bytes actually present, so
		// a corrupt count fails at EOF instead of ballooning memory.
		vals := make([]uint32, 0, min(int(n), snapChunk))
		raw := make([]byte, 4*min(int(n), snapChunk))
		for got := 0; got < int(n); {
			step := min(int(n)-got, snapChunk)
			if _, err := io.ReadFull(r, raw[:4*step]); err != nil {
				return bad("column values")
			}
			for j := 0; j < step; j++ {
				vals = append(vals, binary.LittleEndian.Uint32(raw[4*j:]))
			}
			got += step
		}
		colName := string(nameBuf)
		sum = qcache.HashString(sum, colName)
		sum = qcache.HashU32s(sum, vals)
		if err := t.AddColumn(colName, vals); err != nil {
			return nil, 0, err
		}
	}
	if _, err := io.ReadFull(r, u[:]); err != nil {
		return bad("missing checksum")
	}
	if binary.LittleEndian.Uint64(u[:]) != sum {
		return bad("checksum mismatch")
	}
	return t, seq, nil
}
