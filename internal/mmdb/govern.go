package mmdb

// Query governance: every public query surface has a *Ctx variant that
// threads a context.Context (cancellation, deadline, per-query byte
// budget via governor.WithBudget) through planning and execution, and a
// Table can attach a governor.Admission controller that gates cache-miss
// compute work under overload.
//
// The plumbing rules, which every new surface must follow:
//
//  1. The public *Ctx wrapper builds the handle once (governor.For) and
//     checks it before touching any shared state, so an already-dead
//     context costs nothing and serves nothing.
//  2. Admission is acquired at the execute stage, after the cache
//     missed: cache hits are served even under overload (the shed
//     policy's "serve cached lookups last"), and the grant is released
//     when the compute finishes or aborts.  Nested surfaces never
//     re-acquire (governor.Ctl.EnterAdmission).
//  3. Budgets are charged where result memory is allocated — scan
//     buffers, merge copies, aggregate tables, join pair buffers —
//     through a per-goroutine governor.Checkpoint so parallel workers
//     do not contend on the budget atomic per row.
//  4. Abort paths return BEFORE the cache admit stage, so a cancelled
//     query can never insert a poisoned qcache entry; and they never
//     interrupt a mutation mid-publish, so epochs and delta runs are
//     never torn.  Every abort surfaces as one of the four typed errors
//     and is counted once (governor.NoteAbort) at the public surface.
//
// An ungoverned call (background context, or the legacy non-Ctx
// surfaces) resolves to a nil handle and pays a pointer test per
// checkpoint — the "one atomic load when disabled" contract, pinned by
// the governor bench experiment.

import (
	"cssidx/internal/governor"
)

// AttachGovernor attaches an admission controller to the table; nil
// detaches.  Like AttachCache, attachment is not synchronized with
// in-flight queries — attach before the table starts serving.
func (t *Table) AttachGovernor(a *governor.Admission) { t.gov.Store(a) }

// EnableGovernor builds and attaches an admission controller.
func (t *Table) EnableGovernor(opts governor.Options) *governor.Admission {
	a := governor.NewAdmission(opts)
	t.gov.Store(a)
	return a
}

// Governor returns the attached admission controller, or nil.
func (t *Table) Governor() *governor.Admission { return t.gov.Load() }

// admit gates one governed query's compute stage through the attached
// admission controller.  Ungoverned queries (nil ctl), tables without a
// controller, and nested surfaces of an already-admitted query pass for
// free.  The returned release is always safe to call.
func (t *Table) admit(ctl *governor.Ctl, class governor.Class, estBytes int64) (release func(), err error) {
	release = func() {}
	if ctl == nil {
		return release, nil
	}
	a := t.gov.Load()
	if a == nil || !ctl.EnterAdmission() {
		return release, nil
	}
	g, err := a.Acquire(ctl.Context(), class, estBytes)
	if err != nil {
		ctl.ExitAdmission()
		return release, err
	}
	return func() {
		g.Release()
		ctl.ExitAdmission()
	}, nil
}

// AttachGovernor attaches one admission controller to every table in the
// DB — current and future — so the whole database shares one concurrency
// gate and bytes-in-flight watermark, the way CreateTable shares the
// result cache.
func (db *DB) AttachGovernor(a *governor.Admission) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.gov = a
	for _, t := range db.tables {
		t.AttachGovernor(a)
	}
}

// Governor returns the DB-wide admission controller, or nil.
func (db *DB) Governor() *governor.Admission {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.gov
}
