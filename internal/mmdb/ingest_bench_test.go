package mmdb

import (
	"testing"

	"cssidx"
	"cssidx/internal/workload"
)

func buildIngestBench(b *testing.B, pol AppendPolicy) *Table {
	b.Helper()
	g := workload.New(1)
	dict := g.SortedUniform(4096)
	tab := NewTable("b")
	tab.SetAppendPolicy(pol)
	for _, c := range []string{"k", "v"} {
		if err := tab.AddColumn(c, g.Lookups(dict, 50_000)); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := tab.BuildIndex("k", cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := tab.AppendRows(map[string][]uint32{
			"k": g.Lookups(dict, 256),
			"v": g.Lookups(dict, 256),
		}); err != nil {
			b.Fatal(err)
		}
	}
	return tab
}

func benchRangeReads(b *testing.B, tab *Table) {
	g := workload.New(7)
	dict := g.SortedUniform(4096)
	los := g.Lookups(dict, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := los[i%len(los)]
		rids, _, err := tab.SelectRange("k", lo, lo+1<<24)
		if err != nil {
			b.Fatal(err)
		}
		sinkInt += len(rids)
	}
}

var sinkInt int

func BenchmarkRangeReadDelta(b *testing.B) {
	tab := buildIngestBench(b, AppendPolicy{MinFoldRows: 1 << 30})
	if tab.DeltaRows() == 0 {
		b.Fatal("no delta")
	}
	benchRangeReads(b, tab)
}

func BenchmarkRangeReadFolded(b *testing.B) {
	tab := buildIngestBench(b, AppendPolicy{Disabled: true})
	benchRangeReads(b, tab)
}
