package mmdb

// Result caching: the execution engine's reuse stage.  Every query surface
// (Table.SelectRange/SelectIn/SelectWhere, JoinWith, and the epoch-swapped
// ShardedIndex selections) consults an attached qcache.Cache before
// planning and fills it after computing, so repeated decision-support
// traffic — the same dashboard ranges, IN-lists and join sub-results over
// and over — is answered by a fingerprint lookup and one slice copy
// instead of a recomputation.
//
// Invalidation rides the structures the engine already maintains: every
// result is stamped with the table generation (bumped by AppendRows) or
// the frozen sharded-index epoch it was computed against, so a rebuild
// invalidates by moving the token — readers never stop, stale entries are
// reaped at their next access, and AppendRows additionally sweeps the
// table's entries eagerly (qcache.DropTable).

import (
	"fmt"
	"sync"
	"time"

	"cssidx/internal/governor"
	"cssidx/internal/qcache"
)

// CacheOptions configures the result cache attached to a Table or DB.
type CacheOptions struct {
	// MaxBytes is the budget for cached result payloads
	// (0 = qcache.DefaultMaxBytes).
	MaxBytes int64
	// MinCostNs is the admission floor on estimated recompute cost
	// (0 = qcache.DefaultMinCostNs; negative admits everything).
	MinCostNs int64
	// Stripes is the lock-stripe count (0 = 16).
	Stripes int
	// Disabled turns the cache off entirely (every surface computes).
	Disabled bool
}

// build constructs the cache, or nil when disabled.
func (o CacheOptions) build() *qcache.Cache {
	if o.Disabled {
		return nil
	}
	return qcache.New(qcache.Options{MaxBytes: o.MaxBytes, MinCostNs: o.MinCostNs, Stripes: o.Stripes})
}

// EnableCache attaches a fresh result cache to the table and returns it
// (nil when opts.Disabled).  Attachment is not synchronized with queries:
// enable the cache before the table starts serving.
func (t *Table) EnableCache(opts CacheOptions) *qcache.Cache {
	c := opts.build()
	t.cache.Store(c)
	return c
}

// AttachCache shares an existing cache (e.g. a DB-wide one) with the
// table; nil detaches.
func (t *Table) AttachCache(c *qcache.Cache) { t.cache.Store(c) }

// Cache returns the attached result cache, or nil when caching is off.
func (t *Table) Cache() *qcache.Cache { return t.cache.Load() }

// CacheStats snapshots the attached cache's counters (zeros when off).
func (t *Table) CacheStats() qcache.Stats { return t.cache.Load().StatsSnapshot() }

// Generation returns the table's current generation: 1 after creation,
// +1 per fold (a full rebuild of encodings and indexes).  Absorbed append
// batches move the delta sequence instead — see StateVersion for the
// counter that moves on every append.
func (t *Table) Generation() uint64 { return t.gen.Load() }

// StateVersion returns the single counter that moves on every AppendRows
// batch, folded or absorbed: 1 after creation, +1 per batch.
func (t *Table) StateVersion() uint64 { return t.stateVer.Load() }

// token stamps results computed against the table's in-place state: the
// (generation, delta sequence) pair.  A fold moves Gen and drops the
// table's entries; an absorb moves Epoch and *patches* them across
// (qcache.PatchAppend), so append-heavy streams keep their cache.
func (t *Table) token() qcache.Token {
	return qcache.Token{Gen: t.gen.Load(), Epoch: t.deltaSeq.Load()}
}

// --- fingerprints -----------------------------------------------------------

// rangeFP fingerprints lo ≤ col ≤ hi by its raw closed bounds.  Raw, not
// domain IDs: with a delta layer the frozen dictionary no longer ranks
// every live value, so IDs are not canonical across an absorbed append
// while the raw bounds are — and PatchAppend can qualify appended rows
// against them directly.
func rangeFP(table, col string, layer qcache.Layer, lo, hi uint32) qcache.Key {
	return qcache.Key{Table: table, Col: col, Kind: qcache.KindRange, Layer: layer, Lo: lo, Hi: hi}
}

// inFP fingerprints col IN (values) over the deduplicated list in
// first-occurrence order — order-sensitive because the result's RID
// grouping follows list order.
func inFP(table, col string, layer qcache.Layer, distinct []uint32) qcache.Key {
	return qcache.Key{
		Table: table, Col: col, Kind: qcache.KindIn, Layer: layer,
		Hash: qcache.HashU32s(qcache.HashSeed, distinct), N: uint32(len(distinct)),
	}
}

// whereFP fingerprints a conjunction of range predicates by their raw
// closed bounds in predicate order (raw for the same reason as rangeFP).
func whereFP(table string, preds []RangePred) qcache.Key {
	h := uint64(qcache.HashSeed)
	for _, p := range preds {
		h = qcache.HashString(h, p.Col)
		h = qcache.HashU32(h, p.Lo)
		h = qcache.HashU32(h, p.Hi)
	}
	return qcache.Key{Table: table, Kind: qcache.KindWhere, Hash: h, N: uint32(len(preds))}
}

// aggFP fingerprints a GroupAggregate: the group column is the key's
// column, and the hash folds the measure column plus the source-RID set —
// a marker separates the nil all-rows source from an explicit (possibly
// empty) RID list, because only the former can be patched across appends.
func aggFP(table, groupCol, measureCol string, rids []uint32) qcache.Key {
	h := qcache.HashString(qcache.HashSeed, measureCol)
	if rids == nil {
		h = qcache.HashU32(h, 1)
	} else {
		h = qcache.HashU32(h, 2)
		h = qcache.HashU32s(h, rids)
	}
	return qcache.Key{
		Table: table, Col: groupCol, Kind: qcache.KindAgg, Layer: qcache.LayerTable,
		Hash: h, N: uint32(len(rids)),
	}
}

// predBounds converts the conjuncts to the cache's patchable form.
func predBounds(preds []RangePred) []qcache.PredBound {
	out := make([]qcache.PredBound, len(preds))
	for i, p := range preds {
		out[i] = qcache.PredBound{Col: p.Col, Lo: p.Lo, Hi: p.Hi}
	}
	return out
}

// --- recompute cost model ---------------------------------------------------

// Cost-model constants (ns), sized for the DRAM-missing regime the paper
// measures: a scalar root-to-leaf descent, one RID gathered from the
// sorted list, one batched probe (lockstep overlap amortises the misses),
// and one row streamed by a sequential scan.
const (
	costProbeNs      = 150
	costGatherNs     = 2
	costBatchProbeNs = 30
	costScanRowNs    = 1
)

// estRecomputeNs models rerunning a planned selection, priced with the
// same access-path model PlanRange/PlanIn choose by.
func estRecomputeNs(p Plan, tableRows int) int64 {
	if p.UseIndex {
		return 2*costProbeNs + int64(p.EstRows)*costGatherNs
	}
	return int64(tableRows)*costScanRowNs + int64(p.EstRows)*costGatherNs
}

// recomputeCost is the admission/eviction benefit input: the measured
// elapsed time floored by the model estimate, so a first run that
// happened to hit warm caches does not undervalue the entry.
func recomputeCost(elapsed time.Duration, p Plan, tableRows int) int64 {
	cost := elapsed.Nanoseconds()
	if est := estRecomputeNs(p, tableRows); est > cost {
		cost = est
	}
	return cost
}

// aggRecomputeCost models rerunning a grouped aggregation: two random
// gathers per source row (group id/value and measure) plus a streamed pass
// over the group slots.
func aggRecomputeCost(elapsed time.Duration, sourceRows, groups int) int64 {
	cost := elapsed.Nanoseconds()
	if est := int64(sourceRows)*2*costGatherNs + int64(groups)*costScanRowNs; est > cost {
		cost = est
	}
	return cost
}

// --- reuse break-evens ------------------------------------------------------

// Stitch-vs-recompute: a stitched answer pays one descent pair per gap,
// a gather per estimated gap row, and a streamed copy per cached pair; a
// recompute pays one descent pair and a gather per estimated row.  Beyond
// the model, stitches with many or wide gaps are refused outright — the
// cached fraction must be pulling real weight.
const (
	maxStitchGaps    = 8
	maxStitchGapFrac = 0.5
)

// stitchWorthwhile prices answering [lo, hi] (estRows estimated matches)
// from the plan's cached segments plus gap probes against recomputing.
func stitchWorthwhile(sp *qcache.StitchPlan, lo, hi uint32, estRows int) bool {
	if len(sp.Gaps) == 0 {
		return true // pure assembly from cache: no probes at all
	}
	if len(sp.Gaps) > maxStitchGaps {
		return false
	}
	width := float64(hi-lo) + 1
	gapW := 0.0
	for _, g := range sp.Gaps {
		gapW += float64(g.Hi-g.Lo) + 1
	}
	frac := gapW / width
	if frac > maxStitchGapFrac {
		return false
	}
	gapRows := int64(frac * float64(estRows))
	stitch := int64(len(sp.Gaps))*2*costProbeNs + gapRows*costGatherNs + int64(sp.CachedRows)*costScanRowNs
	return stitch < 2*costProbeNs+int64(estRows)*costGatherNs
}

// inFillWorthwhile prices completing an IN-list from a cached near-superset
// by scalar-probing the missing values against recomputing the whole list
// with batched probes: worthwhile below a missing fraction of
// costBatchProbeNs/costProbeNs (20%).
func inFillWorthwhile(missing, total int) bool {
	return int64(missing)*costProbeNs < int64(total)*costBatchProbeNs
}

// joinRecomputeCost models rerunning an indexed nested-loop join: one
// batched probe per outer row plus one gather per emitted pair.
func joinRecomputeCost(elapsed time.Duration, outerRows, pairs int) int64 {
	cost := elapsed.Nanoseconds()
	if est := int64(outerRows)*costBatchProbeNs + int64(pairs)*costGatherNs; est > cost {
		cost = est
	}
	return cost
}

// --- DB: tables sharing one cache -------------------------------------------

// DB groups tables around one shared result cache, so cross-table
// workloads (joins, dashboards spanning fact and dimension tables) manage
// one byte budget instead of one per table.  Table names are unique
// within a DB — the cache fingerprints entries by table name.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	order  []string
	cache  *qcache.Cache
	gov    *governor.Admission
}

// NewDB creates a database whose tables share one result cache built from
// opts (no cache when opts.Disabled).
func NewDB(opts CacheOptions) *DB {
	return &DB{tables: map[string]*Table{}, cache: opts.build()}
}

// CreateTable creates an empty table registered in the DB with the shared
// cache attached.
func (db *DB) CreateTable(name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("mmdb: db already has table %s", name)
	}
	t := NewTable(name)
	t.AttachCache(db.cache)
	t.AttachGovernor(db.gov)
	db.tables[name] = t
	db.order = append(db.order, name)
	return t, nil
}

// Table returns a registered table by name.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// Tables returns the table names in creation order.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]string(nil), db.order...)
}

// Cache returns the shared result cache (nil when disabled).
func (db *DB) Cache() *qcache.Cache { return db.cache }

// CacheStats snapshots the shared cache's counters.
func (db *DB) CacheStats() qcache.Stats { return db.cache.StatsSnapshot() }
