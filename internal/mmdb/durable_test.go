package mmdb

import (
	"bytes"
	"testing"

	"cssidx/internal/failfs"
	"cssidx/internal/wal"
)

func mustAppend(t *testing.T, d *DurableTable, cols map[string][]uint32) {
	t.Helper()
	if err := d.AppendRows(cols); err != nil {
		t.Fatal(err)
	}
}

func colVals(t *testing.T, tb *Table, name string) []uint32 {
	t.Helper()
	c, ok := tb.Column(name)
	if !ok {
		t.Fatalf("column %s missing", name)
	}
	out := make([]uint32, c.Len())
	for i := range out {
		out[i] = c.Value(i)
	}
	return out
}

func TestDurableTableRoundTrip(t *testing.T) {
	fsys := failfs.NewMem(1)
	d, err := OpenDurable(fsys, "db", "orders", wal.Always())
	if err != nil {
		t.Fatal(err)
	}
	// First batch on an empty table defines the schema.
	mustAppend(t, d, map[string][]uint32{"qty": {10, 20}, "sku": {7, 8}})
	mustAppend(t, d, map[string][]uint32{"qty": {30}, "sku": {9}})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDurable(fsys, "db", "orders", wal.Always())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Rows() != 3 {
		t.Fatalf("recovered %d rows, want 3", r.Rows())
	}
	wantCols := []string{"qty", "sku"} // sorted-name schema order
	gotCols := r.Columns()
	if len(gotCols) != 2 || gotCols[0] != wantCols[0] || gotCols[1] != wantCols[1] {
		t.Fatalf("recovered columns %v, want %v", gotCols, wantCols)
	}
	if got := colVals(t, r.Table, "qty"); !equalU32(got, []uint32{10, 20, 30}) {
		t.Fatalf("qty = %v", got)
	}
	if got := colVals(t, r.Table, "sku"); !equalU32(got, []uint32{7, 8, 9}) {
		t.Fatalf("sku = %v", got)
	}
	if r.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2", r.LastSeq())
	}
}

func TestDurableTableCheckpoint(t *testing.T) {
	fsys := failfs.NewMem(2)
	d, err := OpenDurable(fsys, "db", "t", wal.Always())
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, d, map[string][]uint32{"v": {1, 2, 3}})
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := d.LogSize()
	mustAppend(t, d, map[string][]uint32{"v": {4}})
	if d.LogSize() <= after {
		t.Fatal("post-checkpoint append did not grow the fresh log")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDurable(fsys, "db", "t", wal.Always())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := colVals(t, r.Table, "v"); !equalU32(got, []uint32{1, 2, 3, 4}) {
		t.Fatalf("v = %v", got)
	}
	// Checkpoint again from the recovered table; a third open must see
	// the same rows with an empty log.
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if r.LogSize() != 20 { // bare header
		t.Fatalf("log not truncated: %d bytes", r.LogSize())
	}
}

func TestDurableTableRejectsBadBatches(t *testing.T) {
	fsys := failfs.NewMem(3)
	d, err := OpenDurable(fsys, "db", "t", wal.Always())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.AppendRows(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if err := d.AppendRows(map[string][]uint32{"a": {1}, "b": {1, 2}}); err == nil {
		t.Fatal("ragged schema batch accepted")
	}
	mustAppend(t, d, map[string][]uint32{"a": {1}})
	if err := d.AppendRows(map[string][]uint32{"b": {2}}); err == nil {
		t.Fatal("wrong-column batch accepted")
	}
	if err := d.AppendRows(map[string][]uint32{"a": {1}, "b": {2}}); err == nil {
		t.Fatal("extra-column batch accepted")
	}
	// None of the rejects may have hit the log.
	if d.LastSeq() != 1 {
		t.Fatalf("LastSeq = %d, want 1", d.LastSeq())
	}
}

func TestDurableTableSnapshotChecksum(t *testing.T) {
	fsys := failfs.NewMem(4)
	d, err := OpenDurable(fsys, "db", "t", wal.Always())
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, d, map[string][]uint32{"v": {1, 2, 3, 4, 5}})
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a value byte inside the snapshot; reopen must refuse it.
	data, err := failfs.ReadAll(fsys, "db/t.snap")
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-12] ^= 0xFF
	f, err := fsys.Create("db/t.snap")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(fsys, "db", "t", wal.Always()); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	names := []string{"a", "bb", "ccc"}
	cols := map[string][]uint32{
		"a":   {1, 2, 3},
		"bb":  {4, 5, 6},
		"ccc": {7, 8, 9},
	}
	gotNames, gotCols, err := decodeBatch(encodeBatch(names, cols))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotNames) != 3 {
		t.Fatalf("names = %v", gotNames)
	}
	for i, n := range names {
		if gotNames[i] != n || !equalU32(gotCols[n], cols[n]) {
			t.Fatalf("column %s mismatch: %v", n, gotCols[n])
		}
	}
}

func TestBatchCodecRejectsGarbage(t *testing.T) {
	good := encodeBatch([]string{"a"}, map[string][]uint32{"a": {1, 2}})
	for cut := 0; cut < len(good); cut++ {
		if _, _, err := decodeBatch(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, _, err := decodeBatch(append(bytes.Clone(good), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
