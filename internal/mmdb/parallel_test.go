package mmdb

import (
	"sync"
	"testing"

	"cssidx"
	"cssidx/internal/parallel"
	"cssidx/internal/workload"
)

// parallelForce builds worker options that engage at any batch size.
func parallelForce(w int) parallel.Options {
	return parallel.Options{Workers: w, MinBatchPerWorker: 1}
}

// joinPairs collects a join's emission stream.
type joinPairs struct{ outer, inner []uint32 }

func collectJoin(t *testing.T, outer *Table, col string, inner JoinIndex, opts JoinOptions) (int, joinPairs) {
	t.Helper()
	var p joinPairs
	n, err := JoinWith(outer, col, inner, opts, func(o, i uint32) {
		p.outer = append(p.outer, o)
		p.inner = append(p.inner, i)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(p.outer) {
		t.Fatalf("join count %d != emitted %d", n, len(p.outer))
	}
	return n, p
}

func buildJoinTables(t *testing.T, seed int64, innerRows, outerRows int) (*Table, *Table) {
	t.Helper()
	g := workload.New(seed)
	innerKeys := g.SortedWithDuplicates(innerRows, 3)
	outerVals := append(g.Lookups(innerKeys, outerRows*3/4), g.Misses(innerKeys, outerRows/4)...)
	inner := NewTable("inner")
	if err := inner.AddColumn("k", innerKeys); err != nil {
		t.Fatal(err)
	}
	outer := NewTable("outer")
	if err := outer.AddColumn("k", outerVals); err != nil {
		t.Fatal(err)
	}
	return inner, outer
}

// TestJoinShardedMatchesSortedIndex proves the sharded inner path emits the
// exact pair stream of the SortedIndex path: same domain, same stable radix
// sort, same emission order.
func TestJoinShardedMatchesSortedIndex(t *testing.T) {
	inner, outer := buildJoinTables(t, 41, 6000, 4000)
	ix, err := inner.BuildIndex("k", cssidx.KindLevelCSS, cssidx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := inner.BuildShardedIndex("k", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	for _, bs := range []int{0, 1, 64, 700} {
		nSorted, pSorted := collectJoin(t, outer, "k", ix, JoinOptions{BatchSize: bs})
		nSharded, pSharded := collectJoin(t, outer, "k", sh, JoinOptions{BatchSize: bs})
		if nSorted != nSharded {
			t.Fatalf("bs=%d: sorted %d pairs, sharded %d", bs, nSorted, nSharded)
		}
		for i := range pSorted.outer {
			if pSorted.outer[i] != pSharded.outer[i] || pSorted.inner[i] != pSharded.inner[i] {
				t.Fatalf("bs=%d pair %d: sorted (%d,%d) sharded (%d,%d)", bs, i,
					pSorted.outer[i], pSorted.inner[i], pSharded.outer[i], pSharded.inner[i])
			}
		}
	}
}

// TestJoinParallelMatchesSequential proves worker count never changes the
// join result: same count, same pairs, same order.
func TestJoinParallelMatchesSequential(t *testing.T) {
	inner, outer := buildJoinTables(t, 42, 5000, 6000)
	ix, err := inner.BuildIndex("k", cssidx.KindLevelCSS, cssidx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := inner.BuildShardedIndex("k", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	for _, in := range []JoinIndex{JoinIndex(ix), JoinIndex(sh)} {
		_, want := collectJoin(t, outer, "k", in, JoinOptions{Parallel: cssidx.ParallelOptions{Workers: 1}})
		for _, par := range []cssidx.ParallelOptions{
			{Workers: 4, MinBatchPerWorker: 256},
			{Workers: 3, MinBatchPerWorker: 1},
		} {
			_, got := collectJoin(t, outer, "k", in, JoinOptions{BatchSize: 128, Parallel: par})
			if len(got.outer) != len(want.outer) {
				t.Fatalf("par=%+v: %d pairs, want %d", par, len(got.outer), len(want.outer))
			}
			for i := range want.outer {
				if got.outer[i] != want.outer[i] || got.inner[i] != want.inner[i] {
					t.Fatalf("par=%+v pair %d: got (%d,%d) want (%d,%d)", par, i,
						got.outer[i], got.inner[i], want.outer[i], want.inner[i])
				}
			}
		}
	}
}

// TestJoinShardedDuringAppendRows drives joins against a sharded inner while
// AppendRows publish new epochs: every join must see one consistent epoch —
// counts only ever grow as later joins freeze later epochs, and each count
// matches a legal epoch state.  Run with -race.
func TestJoinShardedDuringAppendRows(t *testing.T) {
	const hot = uint32(424242)
	g := workload.New(43)
	base := g.SortedDistinct(4000)
	inner := NewTable("inner")
	if err := inner.AddColumn("k", base); err != nil {
		t.Fatal(err)
	}
	sh, err := inner.BuildShardedIndex("k", 4)
	if err != nil {
		t.Fatal(err)
	}
	outer := NewTable("outer")
	outerVals := make([]uint32, 512)
	for i := range outerVals {
		outerVals[i] = hot
	}
	if err := outer.AddColumn("k", outerVals); err != nil {
		t.Fatal(err)
	}

	const appends = 8
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for a := 0; a < appends; a++ {
			// Each append adds one more `hot` row (plus noise rows).
			if err := inner.AppendRows(map[string][]uint32{"k": {hot, uint32(900000 + a)}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	lastCount := -1
	for i := 0; i < 200; i++ {
		sh2, ok := inner.ShardedIndex("k")
		if !ok {
			t.Fatal("sharded index vanished")
		}
		n, err := JoinWith(outer, "k", sh2, JoinOptions{
			BatchSize: 64,
			Parallel:  cssidx.ParallelOptions{Workers: 4, MinBatchPerWorker: 64},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Each hot occurrence matches all 512 outer rows: count must be a
		// multiple of 512 ranging over the epoch states 0..appends.
		if n%512 != 0 || n/512 > appends {
			t.Fatalf("join %d: count %d is not a consistent epoch state", i, n)
		}
		if n < lastCount {
			t.Fatalf("join %d: count went backwards (%d after %d) — epochs mixed", i, n, lastCount)
		}
		lastCount = n
	}
	wg.Wait()
	_ = sh
	// After all appends land, a final join must see every hot row.
	shFinal, _ := inner.ShardedIndex("k")
	n, err := JoinWith(outer, "k", shFinal, JoinOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != appends*512 {
		t.Fatalf("final join count %d, want %d", n, appends*512)
	}
	shFinal.Close()
}

// TestSelectInParallelMatchesSequential proves the parallel IN-list fan-out
// returns the identical RID stream on both index types.
func TestSelectInParallelMatchesSequential(t *testing.T) {
	g := workload.New(44)
	keys := g.SortedWithDuplicates(9000, 4)
	tbl := NewTable("t")
	if err := tbl.AddColumn("k", keys); err != nil {
		t.Fatal(err)
	}
	ix, err := tbl.BuildIndex("k", cssidx.KindLevelCSS, cssidx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := tbl.BuildShardedIndex("k", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	values := append(g.Lookups(keys, 6000), g.Misses(keys, 2000)...)

	// The sequential oracle: per-value equal ranges in list order.
	want := ix.SelectIn(values)
	got := sh.SelectIn(values)
	if len(got) != len(want) {
		t.Fatalf("sharded SelectIn %d rids, sorted %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rid %d: sharded %d, sorted %d", i, got[i], want[i])
		}
	}
	// And the internal driver at forced worker counts.
	deduped := dedupeValues(values)
	seq, _ := selectInRIDs(ix.col.dom, ix.rids, deduped, ix.equalRangeBatchIDs, parallelForce(1), nil)
	for _, w := range []int{2, 4, 7} {
		par, _ := selectInRIDs(ix.col.dom, ix.rids, deduped, ix.equalRangeBatchIDs, parallelForce(w), nil)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d rids, want %d", w, len(par), len(seq))
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d rid %d: %d want %d", w, i, par[i], seq[i])
			}
		}
	}
}
