package mmdb

import (
	"fmt"

	"cssidx/internal/sortu32"
)

// This file adds the decision-support query layer on top of the storage:
// grouped aggregation over domain IDs (the classic dictionary-encoded OLAP
// aggregate) and access-path selection between an index probe and a
// sequential scan — the §2.2 observation that indexes "reduce overall
// computation time" only when selective, echoing the access-path selection
// of [SAC+79].

// GroupRow is one group of an aggregation: the group's raw value and the
// aggregates of the measure column within it.
type GroupRow struct {
	Value uint32 // group-by column value
	Count int64
	Sum   uint64
	Min   uint32
	Max   uint32
}

// GroupAggregate computes COUNT/SUM/MIN/MAX of measureCol grouped by
// groupCol over the given rows (nil rids = all rows).  Grouping runs on
// domain IDs: one array slot per distinct value, no hashing — the payoff of
// §2.1's ordered domain encoding.  Groups come back in value order.
func GroupAggregate(t *Table, groupCol, measureCol string, rids []uint32) ([]GroupRow, error) {
	gc, ok := t.cols[groupCol]
	if !ok {
		return nil, fmt.Errorf("mmdb: no column %s in table %s", groupCol, t.name)
	}
	mc, ok := t.cols[measureCol]
	if !ok {
		return nil, fmt.Errorf("mmdb: no column %s in table %s", measureCol, t.name)
	}
	nGroups := gc.dom.Len()
	counts := make([]int64, nGroups)
	sums := make([]uint64, nGroups)
	mins := make([]uint32, nGroups)
	maxs := make([]uint32, nGroups)

	accumulate := func(row int) {
		id := gc.ids[row]
		v := mc.raw[row]
		if counts[id] == 0 {
			mins[id] = v
			maxs[id] = v
		} else {
			if v < mins[id] {
				mins[id] = v
			}
			if v > maxs[id] {
				maxs[id] = v
			}
		}
		counts[id]++
		sums[id] += uint64(v)
	}
	if rids == nil {
		for row := 0; row < t.rows; row++ {
			accumulate(row)
		}
	} else {
		for _, r := range rids {
			accumulate(int(r))
		}
	}

	out := make([]GroupRow, 0, nGroups)
	for id := 0; id < nGroups; id++ {
		if counts[id] == 0 {
			continue
		}
		out = append(out, GroupRow{
			Value: gc.dom.Value(uint32(id)),
			Count: counts[id],
			Sum:   sums[id],
			Min:   mins[id],
			Max:   maxs[id],
		})
	}
	return out, nil
}

// Plan describes the access path chosen for a range predicate.
type Plan struct {
	UseIndex bool
	EstRows  int    // estimated qualifying rows (uniform-within-domain assumption)
	Why      string // one-line explanation for EXPLAIN-style output
}

// scanBreakEven is the estimated selectivity above which a sequential scan
// beats probing + gathering through the index: in main memory a scan
// streams cache lines while index-ordered RID gathering hops randomly.
const scanBreakEven = 0.20

// batchScanBreakEven is the break-even for *batched* probe streams (IN-lists,
// join chunks): lockstep descents overlap the probes' cache misses and the
// directory's upper levels stay cache-resident across the batch, so the
// per-probe cost drops and the index stays ahead of a scan to markedly
// higher selectivity than a scalar probe would.
const batchScanBreakEven = 0.35

// PlanRange chooses between the column's index and a sequential scan for
// the predicate lo ≤ col ≤ hi.
func (t *Table) PlanRange(col string, lo, hi uint32) (Plan, error) {
	c, ok := t.cols[col]
	if !ok {
		return Plan{}, fmt.Errorf("mmdb: no column %s in table %s", col, t.name)
	}
	loID, hiID := c.dom.IDRange(lo, hi)
	frac := 0.0
	if c.dom.Len() > 0 {
		frac = float64(hiID-loID) / float64(c.dom.Len())
	}
	est := int(frac * float64(t.rows))
	// Ordered access comes from a non-hash SortedIndex or, failing that, a
	// sharded index (note that Table-level planning reads mutable table
	// state, so PlanRange/SelectRange themselves must not race AppendRows;
	// for queries concurrent with batch rebuilds go through the
	// ShardedIndex methods directly).
	ix, indexed := t.indexes[col]
	_, shardedOK := t.sharded[col]
	ordered := (indexed && ix.Kind().String() != "hash") || (!indexed && shardedOK)
	switch {
	case !indexed && !shardedOK:
		return Plan{UseIndex: false, EstRows: est, Why: "no index on column"}, nil
	case !ordered:
		return Plan{UseIndex: false, EstRows: est, Why: "hash index has no ordered access"}, nil
	case frac > scanBreakEven:
		return Plan{UseIndex: false, EstRows: est,
			Why: fmt.Sprintf("selectivity %.0f%% above scan break-even", 100*frac)}, nil
	case !indexed:
		return Plan{UseIndex: true, EstRows: est,
			Why: fmt.Sprintf("sharded index, selectivity %.1f%% below scan break-even", 100*frac)}, nil
	default:
		return Plan{UseIndex: true, EstRows: est,
			Why: fmt.Sprintf("selectivity %.1f%% below scan break-even", 100*frac)}, nil
	}
}

// SelectRange returns the RIDs of rows with lo ≤ col ≤ hi, choosing the
// access path with PlanRange.  RIDs come back in row order for scans and in
// value order for index probes; callers needing a specific order should
// sort (the set is identical either way).
func (t *Table) SelectRange(col string, lo, hi uint32) ([]uint32, Plan, error) {
	plan, err := t.PlanRange(col, lo, hi)
	if err != nil {
		return nil, Plan{}, err
	}
	if plan.UseIndex {
		if ix, ok := t.indexes[col]; ok {
			rids, err := ix.SelectRange(lo, hi)
			return rids, plan, err
		}
		rids, err := t.sharded[col].SelectRange(lo, hi)
		return rids, plan, err
	}
	c := t.cols[col]
	var out []uint32
	for row, v := range c.raw {
		if v >= lo && v <= hi {
			out = append(out, uint32(row))
		}
	}
	return out, plan, nil
}

// PlanIn chooses between the column's index and a sequential scan for the
// predicate col IN (values).  An IN-list is a probe *batch*, so the index
// side is costed with the batched break-even: batch amortisation keeps the
// index competitive to higher selectivity than a scalar probe.  Hash indexes
// qualify — an IN-list needs only equality probes, not ordered access.
func (t *Table) PlanIn(col string, values []uint32) (Plan, error) {
	c, ok := t.cols[col]
	if !ok {
		return Plan{}, fmt.Errorf("mmdb: no column %s in table %s", col, t.name)
	}
	distinct := dedupeValues(values)
	present := 0
	if len(distinct) > 0 {
		ids := make([]int32, len(distinct))
		c.dom.IDsBatch(distinct, ids)
		for _, id := range ids {
			if id >= 0 {
				present++
			}
		}
	}
	frac := 0.0
	if c.dom.Len() > 0 {
		frac = float64(present) / float64(c.dom.Len())
	}
	est := int(frac * float64(t.rows))
	_, indexed := t.indexes[col]
	_, shardedOK := t.sharded[col]
	switch {
	case !indexed && !shardedOK:
		return Plan{UseIndex: false, EstRows: est, Why: "no index on column"}, nil
	case frac > batchScanBreakEven:
		return Plan{UseIndex: false, EstRows: est,
			Why: fmt.Sprintf("selectivity %.0f%% above batched scan break-even", 100*frac)}, nil
	default:
		return Plan{UseIndex: true, EstRows: est,
			Why: fmt.Sprintf("batched IN probe, selectivity %.1f%% below batched break-even", 100*frac)}, nil
	}
}

// SelectIn returns the RIDs of rows whose column equals any value in the
// IN-list, choosing the access path with PlanIn.  The index path drives the
// batched probe surface; the scan path streams the column once.  RIDs come
// back in probe order for index probes and in row order for scans (the set
// is identical either way); duplicate list values contribute rows once.
func (t *Table) SelectIn(col string, values []uint32) ([]uint32, Plan, error) {
	plan, err := t.PlanIn(col, values)
	if err != nil {
		return nil, Plan{}, err
	}
	if plan.UseIndex {
		if ix, ok := t.indexes[col]; ok {
			return ix.SelectIn(values), plan, nil
		}
		return t.sharded[col].SelectIn(values), plan, nil
	}
	want := make(map[uint32]struct{}, len(values))
	for _, v := range values {
		want[v] = struct{}{}
	}
	c := t.cols[col]
	var out []uint32
	for row, v := range c.raw {
		if _, hit := want[v]; hit {
			out = append(out, uint32(row))
		}
	}
	return out, plan, nil
}

// RangePred is one conjunct of a multi-column predicate: lo ≤ Col ≤ hi.
type RangePred struct {
	Col    string
	Lo, Hi uint32
}

// SelectWhere evaluates a conjunction of range predicates.  Each conjunct
// picks its own access path (PlanRange), most selective first, and the RID
// sets are merge-intersected — the standard multi-index AND.  The returned
// RIDs are ascending.
func (t *Table) SelectWhere(preds []RangePred) ([]uint32, []Plan, error) {
	if len(preds) == 0 {
		return nil, nil, fmt.Errorf("mmdb: SelectWhere needs at least one predicate")
	}
	plans := make([]Plan, len(preds))
	// Order conjuncts by estimated selectivity so the cheapest set drives
	// the intersection.
	order := make([]int, len(preds))
	for i := range order {
		order[i] = i
		p, err := t.PlanRange(preds[i].Col, preds[i].Lo, preds[i].Hi)
		if err != nil {
			return nil, nil, err
		}
		plans[i] = p
	}
	for a := 1; a < len(order); a++ {
		for b := a; b > 0 && plans[order[b]].EstRows < plans[order[b-1]].EstRows; b-- {
			order[b], order[b-1] = order[b-1], order[b]
		}
	}
	var acc []uint32
	for step, oi := range order {
		p := preds[oi]
		rids, _, err := t.SelectRange(p.Col, p.Lo, p.Hi)
		if err != nil {
			return nil, nil, err
		}
		sortu32.Sort(rids)
		if step == 0 {
			acc = rids
			continue
		}
		acc = intersectSorted(acc, rids)
		if len(acc) == 0 {
			break
		}
	}
	return acc, plans, nil
}

// intersectSorted merge-intersects two ascending RID slices.
func intersectSorted(a, b []uint32) []uint32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
