package mmdb

import (
	"context"
	"fmt"
	"sort"
	"time"

	"cssidx/internal/governor"
	"cssidx/internal/parallel"
	"cssidx/internal/qcache"
	"cssidx/internal/sortu32"
	"cssidx/internal/telemetry"
)

// abortEntry finalizes a query that died before execution started (the
// entry governance check failed): the abort is classified into the
// governor_* counters and the would-be trace root carries the annotation,
// so even a zero-work EXPLAIN ANALYZE says why it stopped.
func abortEntry(tr *telemetry.Trace, err error) error {
	governor.NoteAbort(err)
	tr.Root().Attr("aborted", err.Error())
	tr.Finish()
	return err
}

// This file adds the decision-support query layer on top of the storage:
// grouped aggregation over domain IDs (the classic dictionary-encoded OLAP
// aggregate) and access-path selection between an index probe and a
// sequential scan — the §2.2 observation that indexes "reduce overall
// computation time" only when selective, echoing the access-path selection
// of [SAC+79].

// GroupRow is one group of an aggregation: the group's raw value and the
// COUNT/SUM/MIN/MAX aggregates of the measure column within it.  It aliases
// the cache's row type so grouped-aggregation results are cached and
// replayed without conversion.
type GroupRow = qcache.AggRow

// GroupAggregate computes COUNT/SUM/MIN/MAX of measureCol grouped by
// groupCol over the given rows (nil rids = all rows).  Grouping runs on
// domain IDs: one array slot per distinct value, no hashing — the payoff of
// §2.1's ordered domain encoding.  Rows beyond the frozen encoding (the
// delta layer's appended tail) have no IDs yet and accumulate through a
// small map on raw values instead, merged in at the end.  Groups come back
// in value order.
//
// With a cache attached, the (groupCol, measureCol, source-RID) fingerprint
// is looked up first and the computed result admitted after.  All-rows
// aggregates (nil rids) survive absorbed appends — PatchAppend folds the
// batch's (group, measure) pairs into the cached rows; explicit-RID
// aggregates are retokened when the append cannot touch them.
func GroupAggregate(t *Table, groupCol, measureCol string, rids []uint32) ([]GroupRow, error) {
	start := telemetry.Now()
	rows, err := groupAggregate(t, groupCol, measureCol, rids, nil, nil)
	histAggNs.Since(start)
	return rows, err
}

// GroupAggregateTraced is GroupAggregate recording an EXPLAIN ANALYZE
// trace under tr's root span.  tr may be nil.
func GroupAggregateTraced(t *Table, groupCol, measureCol string, rids []uint32, tr *telemetry.Trace) ([]GroupRow, error) {
	start := telemetry.Now()
	rows, err := groupAggregate(t, groupCol, measureCol, rids, nil, tr.Root())
	histAggNs.Since(start)
	tr.Finish()
	return rows, err
}

// GroupAggregateCtx is GroupAggregate under governance: cancellation,
// deadline and budget are observed per accumulated row (stride-amortized),
// and on an attached admission controller a cache-missing aggregate enters
// as ClassAggregate — the first class shed under overload.  tr may be nil.
func GroupAggregateCtx(ctx context.Context, t *Table, groupCol, measureCol string, rids []uint32, tr *telemetry.Trace) ([]GroupRow, error) {
	start := telemetry.Now()
	ctl := governor.For(ctx)
	if err := ctl.Err(); err != nil {
		return nil, abortEntry(tr, err)
	}
	rows, err := groupAggregate(t, groupCol, measureCol, rids, ctl, tr.Root())
	histAggNs.Since(start)
	tr.Finish()
	if err != nil {
		governor.NoteAbort(err)
	}
	return rows, err
}

func groupAggregate(t *Table, groupCol, measureCol string, rids []uint32, ctl *governor.Ctl, sp *telemetry.Span) ([]GroupRow, error) {
	gc, ok := t.cols[groupCol]
	if !ok {
		return nil, fmt.Errorf("mmdb: no column %s in table %s", groupCol, t.name)
	}
	mc, ok := t.cols[measureCol]
	if !ok {
		return nil, fmt.Errorf("mmdb: no column %s in table %s", measureCol, t.name)
	}
	sp.Attr("table", t.name).Attr("group_col", groupCol).Attr("measure_col", measureCol)
	if rids == nil {
		sp.AttrInt("source_rows", t.rows).AttrBool("all_rows", true)
	} else {
		sp.AttrInt("source_rows", len(rids))
	}
	qc, tok := t.Cache(), t.token()
	var akey qcache.Key
	var cs *telemetry.Span
	if qc.Enabled() {
		cs = sp.Child("cache")
		akey = aggFP(t.name, groupCol, measureCol, rids)
		if rows, ok := qc.LookupAgg(akey, tok); ok {
			cs.Attr("outcome", "hit").AttrInt("groups", len(rows))
			cs.End()
			return rows, nil
		}
		cs.Attr("outcome", "miss")
		cs.End()
	}
	nGroups := gc.dom.Len()
	// Aggregates shed first: a cache-missing aggregate is the most
	// expensive work class, so under overload admission refuses it
	// outright rather than queueing it.
	release, aerr := t.admit(ctl, governor.ClassAggregate, 24*int64(nGroups))
	if aerr != nil {
		sp.Attr("aborted", aerr.Error())
		return nil, aerr
	}
	defer release()
	ex := sp.Child("execute")
	start := time.Now()
	// The accumulator arrays are the aggregate's dominant allocation:
	// charge them up front so an over-budget aggregate dies before the
	// scan, not after it.
	if err := ctl.Charge(24 * int64(nGroups)); err != nil {
		ex.Attr("aborted", err.Error())
		ex.End()
		return nil, err
	}
	counts := make([]int64, nGroups)
	sums := make([]uint64, nGroups)
	mins := make([]uint32, nGroups)
	maxs := make([]uint32, nGroups)
	var delta map[uint32]*GroupRow
	cp := ctl.Checkpoint()

	accumulate := func(row int) {
		v := mc.raw[row]
		if row >= t.baseRows {
			if delta == nil {
				delta = map[uint32]*GroupRow{}
			}
			val := gc.raw[row]
			g, ok := delta[val]
			if !ok {
				delta[val] = &GroupRow{Value: val, Count: 1, Sum: uint64(v), Min: v, Max: v}
				return
			}
			if v < g.Min {
				g.Min = v
			}
			if v > g.Max {
				g.Max = v
			}
			g.Count++
			g.Sum += uint64(v)
			return
		}
		id := gc.ids[row]
		if counts[id] == 0 {
			mins[id] = v
			maxs[id] = v
		} else {
			if v < mins[id] {
				mins[id] = v
			}
			if v > maxs[id] {
				maxs[id] = v
			}
		}
		counts[id]++
		sums[id] += uint64(v)
	}
	if rids == nil {
		for row := 0; row < t.rows; row++ {
			if err := cp.Tick(); err != nil {
				ex.Attr("aborted", err.Error())
				ex.End()
				return nil, err
			}
			accumulate(row)
		}
	} else {
		for _, r := range rids {
			if err := cp.Tick(); err != nil {
				ex.Attr("aborted", err.Error())
				ex.End()
				return nil, err
			}
			accumulate(int(r))
		}
	}
	cp.Charge(48 * int64(len(delta)))
	if err := cp.Flush(); err != nil {
		ex.Attr("aborted", err.Error())
		ex.End()
		return nil, err
	}

	out := make([]GroupRow, 0, nGroups+len(delta))
	for id := 0; id < nGroups; id++ {
		if counts[id] == 0 {
			continue
		}
		out = append(out, GroupRow{
			Value: gc.dom.Value(uint32(id)),
			Count: counts[id],
			Sum:   sums[id],
			Min:   mins[id],
			Max:   maxs[id],
		})
	}
	if len(delta) > 0 {
		for i := range out {
			if d, ok := delta[out[i].Value]; ok {
				if d.Min < out[i].Min {
					out[i].Min = d.Min
				}
				if d.Max > out[i].Max {
					out[i].Max = d.Max
				}
				out[i].Count += d.Count
				out[i].Sum += d.Sum
				delete(delta, out[i].Value)
			}
		}
		for _, d := range delta {
			out = append(out, *d)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	}
	ex.Attr("path", "domain-array").AttrInt("groups", len(out)).AttrInt("delta_rows", t.rows-t.baseRows)
	ex.End()
	if qc.Enabled() {
		ad := sp.Child("admit")
		src := len(rids)
		if rids == nil {
			src = t.rows
		}
		qc.InsertAgg(akey, tok, measureCol, rids == nil, out,
			aggRecomputeCost(time.Since(start), src, len(out)))
		ad.End()
	}
	return out, nil
}

// Plan describes the access path chosen for a range predicate.
type Plan struct {
	UseIndex bool
	EstRows  int    // estimated qualifying rows (uniform-within-domain assumption)
	Why      string // one-line explanation for EXPLAIN-style output
}

// scanBreakEven is the estimated selectivity above which a sequential scan
// beats probing + gathering through the index: in main memory a scan
// streams cache lines while index-ordered RID gathering hops randomly.
const scanBreakEven = 0.20

// batchScanBreakEven is the break-even for *batched* probe streams (IN-lists,
// join chunks): lockstep descents overlap the probes' cache misses and the
// directory's upper levels stay cache-resident across the batch, so the
// per-probe cost drops and the index stays ahead of a scan to markedly
// higher selectivity than a scalar probe would.
const batchScanBreakEven = 0.35

// PlanRange chooses between the column's index and a sequential scan for
// the predicate lo ≤ col ≤ hi.
func (t *Table) PlanRange(col string, lo, hi uint32) (Plan, error) {
	c, ok := t.cols[col]
	if !ok {
		return Plan{}, fmt.Errorf("mmdb: no column %s in table %s", col, t.name)
	}
	loID, hiID := c.dom.IDRange(lo, hi)
	return t.planRangeIDs(col, c, loID, hiID), nil
}

// planRangeIDs prices the access paths for a range predicate already
// normalized to the half-open domain-ID range [loID, hiID) — the shared
// core behind PlanRange and SelectWhere's batched bound resolution.
func (t *Table) planRangeIDs(col string, c *Column, loID, hiID uint32) Plan {
	frac := 0.0
	if c.dom.Len() > 0 {
		frac = float64(hiID-loID) / float64(c.dom.Len())
	}
	est := int(frac * float64(t.rows))
	// Ordered access comes from a non-hash SortedIndex or, failing that, a
	// sharded index (note that Table-level planning reads mutable table
	// state, so PlanRange/SelectRange themselves must not race AppendRows;
	// for queries concurrent with batch rebuilds go through the
	// ShardedIndex methods directly).
	ix, indexed := t.indexes[col]
	_, shardedOK := t.sharded[col]
	ordered := (indexed && ix.Kind().String() != "hash") || (!indexed && shardedOK)
	switch {
	case !indexed && !shardedOK:
		return Plan{UseIndex: false, EstRows: est, Why: "no index on column"}
	case !ordered:
		return Plan{UseIndex: false, EstRows: est, Why: "hash index has no ordered access"}
	case frac > scanBreakEven:
		return Plan{UseIndex: false, EstRows: est,
			Why: fmt.Sprintf("selectivity %.0f%% above scan break-even", 100*frac)}
	case !indexed:
		return Plan{UseIndex: true, EstRows: est,
			Why: fmt.Sprintf("sharded index, selectivity %.1f%% below scan break-even", 100*frac)}
	default:
		return Plan{UseIndex: true, EstRows: est,
			Why: fmt.Sprintf("selectivity %.1f%% below scan break-even", 100*frac)}
	}
}

// SelectRange returns the RIDs of rows with lo ≤ col ≤ hi, choosing the
// access path with PlanRange.  RIDs come back in row order for scans and in
// value order for index probes; callers needing a specific order should
// sort (the set is identical either way — but note a cached result keeps
// the order of the path that first computed it).
//
// With a cache attached, the normalized predicate is looked up first —
// including by containment, when a cached wider range on the column can be
// sliced — and the computed result is admitted after, stamped with the
// table generation.
func (t *Table) SelectRange(col string, lo, hi uint32) ([]uint32, Plan, error) {
	start := telemetry.Now()
	rids, plan, err := t.selectRange(nil, col, lo, hi, nil)
	histRangeNs.Since(start)
	return rids, plan, err
}

// SelectRangeTraced is SelectRange recording an EXPLAIN ANALYZE trace
// under tr's root span: plan choice, cache outcome, access path, shards
// touched, delta runs and per-stage timings.  tr may be nil.
func (t *Table) SelectRangeTraced(col string, lo, hi uint32, tr *telemetry.Trace) ([]uint32, Plan, error) {
	start := telemetry.Now()
	rids, plan, err := t.selectRange(nil, col, lo, hi, tr.Root())
	histRangeNs.Since(start)
	tr.Finish()
	return rids, plan, err
}

// SelectRangeCtx is SelectRange under governance: ctx's cancellation,
// deadline and byte budget (governor.WithBudget) are observed at stride
// boundaries inside scans and merges, and on an attached admission
// controller a cache-missing range enters as ClassSelect.  A cancelled
// query never fills the result cache; with tr attached the partial
// EXPLAIN ANALYZE tree is annotated where execution stopped.  tr may be
// nil.
func (t *Table) SelectRangeCtx(ctx context.Context, col string, lo, hi uint32, tr *telemetry.Trace) ([]uint32, Plan, error) {
	start := telemetry.Now()
	ctl := governor.For(ctx)
	if err := ctl.Err(); err != nil {
		return nil, Plan{}, abortEntry(tr, err)
	}
	rids, plan, err := t.selectRange(ctl, col, lo, hi, tr.Root())
	histRangeNs.Since(start)
	tr.Finish()
	if err != nil {
		governor.NoteAbort(err)
	}
	return rids, plan, err
}

func (t *Table) selectRange(ctl *governor.Ctl, col string, lo, hi uint32, sp *telemetry.Span) ([]uint32, Plan, error) {
	c, ok := t.cols[col]
	if !ok {
		return nil, Plan{}, fmt.Errorf("mmdb: no column %s in table %s", col, t.name)
	}
	sp.Attr("table", t.name).Attr("col", col).AttrInt("lo", int(lo)).AttrInt("hi", int(hi))
	if lo > hi {
		return nil, Plan{}, nil
	}
	ps := sp.Child("plan")
	loID, hiID := c.dom.IDRange(lo, hi)
	plan := t.planRangeIDs(col, c, loID, hiID)
	ps.AttrBool("use_index", plan.UseIndex).AttrInt("est_rows", plan.EstRows).Attr("why", plan.Why)
	ps.End()
	notePlan(plan)
	if plan.UseIndex {
		if ix, ok := t.indexes[col]; ok {
			rids, err := t.selectRangeIndexed(ctl, ix, col, lo, hi, plan, sp)
			return rids, plan, err
		}
		rids, err := t.sharded[col].selectRange(ctl, lo, hi, sp) // cached per frozen epoch inside
		return rids, plan, err
	}
	if loID >= hiID && t.rows == t.baseRows {
		return nil, plan, nil // no live value in [lo, hi]
	}
	qc, tok := t.Cache(), t.token()
	key := rangeFP(t.name, col, qcache.LayerTable, lo, hi)
	var cs *telemetry.Span
	if qc.Enabled() {
		cs = sp.Child("cache")
	}
	if rids, kind := qc.LookupRangeKind(key, tok); kind != qcache.HitMiss {
		cs.Attr("outcome", kind.String()).AttrInt("rows", len(rids))
		cs.End()
		return rids, plan, nil
	}
	cs.Attr("outcome", "miss")
	cs.End()
	release, aerr := t.admit(ctl, governor.ClassSelect, 4*int64(plan.EstRows))
	if aerr != nil {
		sp.Attr("aborted", aerr.Error())
		return nil, plan, aerr
	}
	defer release()
	ex := sp.Child("execute")
	start := time.Now()
	out, err := scanRange(c, lo, hi, ctl.Checkpoint())
	if err != nil {
		ex.Attr("aborted", err.Error())
		ex.End()
		return nil, plan, err
	}
	ex.Attr("path", "scan").AttrInt("rows", len(out))
	ex.End()
	// Scan results are in row order, not value order, so they enter as
	// exact-only entries (no key run, no containment slicing).
	var ad *telemetry.Span
	if qc.Enabled() {
		ad = sp.Child("admit")
	}
	qc.InsertRange(key, tok, nil, out, recomputeCost(time.Since(start), plan, t.rows))
	ad.End()
	return out, plan, nil
}

// selectRangeIndexed answers a raw closed range through the sorted index —
// base segment merged with the delta runs — consulting and filling the
// token-stamped cache.
func (t *Table) selectRangeIndexed(ctl *governor.Ctl, ix *SortedIndex, col string, lo, hi uint32, plan Plan, sp *telemetry.Span) ([]uint32, error) {
	qc, tok := t.Cache(), t.token()
	key := rangeFP(t.name, col, qcache.LayerTable, lo, hi)
	var cs *telemetry.Span
	if qc.Enabled() {
		cs = sp.Child("cache")
	}
	if rids, kind := qc.LookupRangeKind(key, tok); kind != qcache.HitMiss {
		cs.Attr("outcome", kind.String()).AttrInt("rows", len(rids))
		cs.End()
		return rids, nil
	}
	if rids, ok, err := tryStitchRange(qc, key, tok, plan.EstRows, t.rows, ix.rangeDirect, cs); ok || err != nil {
		cs.End()
		// The stitched entry is valid data; only the caller's budget can
		// still refuse the materialised copy.
		if err == nil {
			err = ctl.Charge(4 * int64(len(rids)))
			if err != nil {
				rids = nil
			}
		}
		return rids, err
	}
	cs.Attr("outcome", "miss")
	cs.End()
	release, aerr := t.admit(ctl, governor.ClassSelect, 4*int64(plan.EstRows))
	if aerr != nil {
		sp.Attr("aborted", aerr.Error())
		return nil, aerr
	}
	defer release()
	ex := sp.Child("execute")
	start := time.Now()
	// The merged raw key run rides along so any subrange of this result
	// can be answered by slicing it (containment reuse).
	out, keys, err := ix.rangeMerged(lo, hi, qc.Enabled())
	if err == nil {
		err = ctl.Charge(4 * int64(len(out)))
	}
	if err != nil {
		ex.Attr("aborted", err.Error())
		ex.End()
		return nil, err
	}
	ex.Attr("path", "sorted-index").AttrInt("delta_runs", len(ix.runs)).AttrInt("rows", len(out))
	ex.End()
	var ad *telemetry.Span
	if qc.Enabled() {
		ad = sp.Child("admit")
	}
	qc.InsertRange(key, tok, keys, out, recomputeCost(time.Since(start), plan, t.rows))
	ad.End()
	return out, nil
}

// stitchProbe answers one uncovered gap of a stitch plan with the (RIDs,
// raw keys) pair for the closed value range [lo, hi].
type stitchProbe func(lo, hi uint32) (rids, keys []uint32, err error)

// stitchAssemble materialises a stitch plan: cached segments and probed
// gaps concatenate in ascending value order.  The output slices are fresh —
// segment slices alias immutable cache memory and must not escape to
// callers that may sort or grow the result.
func stitchAssemble(sp *qcache.StitchPlan, probe stitchProbe) (rids, keys []uint32, err error) {
	rids = make([]uint32, 0, sp.CachedRows)
	keys = make([]uint32, 0, sp.CachedRows)
	si, gi := 0, 0
	for si < len(sp.Segments) || gi < len(sp.Gaps) {
		if gi >= len(sp.Gaps) || (si < len(sp.Segments) && sp.Segments[si].Lo < sp.Gaps[gi].Lo) {
			s := sp.Segments[si]
			rids = append(rids, s.RIDs...)
			keys = append(keys, s.Keys...)
			si++
			continue
		}
		g := sp.Gaps[gi]
		pr, pk, perr := probe(g.Lo, g.Hi)
		if perr != nil {
			return nil, nil, perr
		}
		rids = append(rids, pr...)
		keys = append(keys, pk...)
		gi++
	}
	return rids, keys, nil
}

// tryStitchRange attempts to answer a range fingerprint by stitching
// overlapping cached runs with gap probes, committing only when the cost
// model prefers the stitch over recomputing (stitchWorthwhile).  On commit
// the stitched run is admitted under the request's own key — admission
// supersedes the runs it covers, so overlapping dashboard windows converge
// to one covering run instead of accumulating fragments.
func tryStitchRange(qc *qcache.Cache, key qcache.Key, tok qcache.Token, estRows, tableRows int, probe stitchProbe, cs *telemetry.Span) ([]uint32, bool, error) {
	sp, ok := qc.StitchRange(key, tok)
	if !ok || !stitchWorthwhile(sp, key.Lo, key.Hi, estRows) {
		return nil, false, nil
	}
	rids, keys, err := stitchAssemble(sp, probe)
	if err != nil {
		return nil, false, err
	}
	cs.Attr("outcome", "stitched").AttrInt("gap_probes", len(sp.Gaps)).
		AttrInt("cached_rows", sp.CachedRows).AttrInt("rows", len(rids))
	qc.NoteStitch(key, len(sp.Gaps))
	qc.InsertRange(key, tok, keys, rids, estRecomputeNs(Plan{UseIndex: true, EstRows: len(rids)}, tableRows))
	return rids, true, nil
}

// scanRange is the sequential-scan access path: stream the raw column and
// collect matching row numbers, in row order.  cp (nil = ungoverned) is
// consulted per row at the amortized stride and charged 4 bytes per
// collected RID.
func scanRange(c *Column, lo, hi uint32, cp *governor.Checkpoint) ([]uint32, error) {
	var out []uint32
	for row, v := range c.raw {
		if err := cp.Tick(); err != nil {
			return nil, err
		}
		if v >= lo && v <= hi {
			out = append(out, uint32(row))
			cp.Charge(4)
		}
	}
	return out, cp.Flush()
}

// PlanIn chooses between the column's index and a sequential scan for the
// predicate col IN (values).  An IN-list is a probe *batch*, so the index
// side is costed with the batched break-even: batch amortisation keeps the
// index competitive to higher selectivity than a scalar probe.  Hash indexes
// qualify — an IN-list needs only equality probes, not ordered access.
func (t *Table) PlanIn(col string, values []uint32) (Plan, error) {
	c, ok := t.cols[col]
	if !ok {
		return Plan{}, fmt.Errorf("mmdb: no column %s in table %s", col, t.name)
	}
	distinct := dedupeValues(values)
	present := 0
	if len(distinct) > 0 {
		ids := make([]int32, len(distinct))
		c.dom.IDsBatch(distinct, ids)
		for _, id := range ids {
			if id >= 0 {
				present++
			}
		}
	}
	frac := 0.0
	if c.dom.Len() > 0 {
		frac = float64(present) / float64(c.dom.Len())
	}
	est := int(frac * float64(t.rows))
	_, indexed := t.indexes[col]
	_, shardedOK := t.sharded[col]
	switch {
	case !indexed && !shardedOK:
		return Plan{UseIndex: false, EstRows: est, Why: "no index on column"}, nil
	case frac > batchScanBreakEven:
		return Plan{UseIndex: false, EstRows: est,
			Why: fmt.Sprintf("selectivity %.0f%% above batched scan break-even", 100*frac)}, nil
	default:
		return Plan{UseIndex: true, EstRows: est,
			Why: fmt.Sprintf("batched IN probe, selectivity %.1f%% below batched break-even", 100*frac)}, nil
	}
}

// SelectIn returns the RIDs of rows whose column equals any value in the
// IN-list, choosing the access path with PlanIn.  The index path drives the
// batched probe surface; the scan path streams the column once.  RIDs come
// back in probe order for index probes and in row order for scans (the set
// is identical either way); duplicate list values contribute rows once.
//
// With a cache attached, the deduplicated list is fingerprinted (in
// first-occurrence order, so a hit replays the exact RID grouping) and
// results are stamped with the table generation; sharded-only columns
// cache inside ShardedIndex.SelectIn per frozen epoch instead.  Index-path
// misses then try the grouped entries of the same column: a subset list
// replays by concatenating cached groups, and a near-superset probes only
// the missing values (inFillWorthwhile) before splicing them in.
func (t *Table) SelectIn(col string, values []uint32) ([]uint32, Plan, error) {
	start := telemetry.Now()
	rids, plan, err := t.selectIn(nil, col, values, nil)
	histInNs.Since(start)
	return rids, plan, err
}

// SelectInTraced is SelectIn recording an EXPLAIN ANALYZE trace under tr's
// root span.  tr may be nil.
func (t *Table) SelectInTraced(col string, values []uint32, tr *telemetry.Trace) ([]uint32, Plan, error) {
	start := telemetry.Now()
	rids, plan, err := t.selectIn(nil, col, values, tr.Root())
	histInNs.Since(start)
	tr.Finish()
	return rids, plan, err
}

// SelectInCtx is SelectIn under governance; see SelectRangeCtx for the
// contract.  tr may be nil.
func (t *Table) SelectInCtx(ctx context.Context, col string, values []uint32, tr *telemetry.Trace) ([]uint32, Plan, error) {
	start := telemetry.Now()
	ctl := governor.For(ctx)
	if err := ctl.Err(); err != nil {
		return nil, Plan{}, abortEntry(tr, err)
	}
	rids, plan, err := t.selectIn(ctl, col, values, tr.Root())
	histInNs.Since(start)
	tr.Finish()
	if err != nil {
		governor.NoteAbort(err)
	}
	return rids, plan, err
}

func (t *Table) selectIn(ctl *governor.Ctl, col string, values []uint32, sp *telemetry.Span) ([]uint32, Plan, error) {
	plan, err := t.PlanIn(col, values)
	if err != nil {
		return nil, Plan{}, err
	}
	sp.Attr("table", t.name).Attr("col", col).AttrInt("values", len(values))
	ps := sp.Child("plan")
	ps.AttrBool("use_index", plan.UseIndex).AttrInt("est_rows", plan.EstRows).Attr("why", plan.Why)
	ps.End()
	notePlan(plan)
	if plan.UseIndex {
		if _, ok := t.indexes[col]; !ok {
			rids, err := t.sharded[col].selectIn(ctl, values, sp)
			return rids, plan, err
		}
	}
	qc, tok := t.Cache(), t.token()
	var key qcache.Key
	var distinct []uint32
	var cs *telemetry.Span
	if qc.Enabled() {
		cs = sp.Child("cache")
		distinct = dedupeValues(values)
		key = inFP(t.name, col, qcache.LayerTable, distinct)
		if rids, ok := qc.Lookup(key, tok); ok {
			cs.Attr("outcome", "hit").AttrInt("rows", len(rids))
			cs.End()
			return rids, plan, nil
		}
		// Grouped reuse is index-path only: cached groups replay in probe
		// order, which a scan-planned query must not inherit.
		if plan.UseIndex && len(distinct) > 0 {
			if r, ok := qc.LookupInReuse(key, tok, distinct); ok {
				if len(r.Missing) == 0 {
					// Not re-admitted: the source entry already answers any
					// repeat of this subset at the same price, so caching the
					// derived copy would only cost an insert per replay.
					out, _ := assembleInGroups(distinct, r.Groups, nil)
					cs.Attr("outcome", "subset-replay").AttrInt("rows", len(out))
					cs.End()
					return out, plan, nil
				}
				if inFillWorthwhile(len(r.Missing), len(distinct)) {
					ix := t.indexes[col]
					fills := make(map[uint32][]uint32, len(r.Missing))
					for _, v := range r.Missing {
						fills[v] = ix.SelectEqual(v)
					}
					out, goff := assembleInGroups(distinct, r.Groups, fills)
					cs.Attr("outcome", "superset-fill").AttrInt("missing_probes", len(r.Missing)).AttrInt("rows", len(out))
					cs.End()
					qc.NoteInFill(key, len(r.Missing))
					qc.InsertIn(key, tok, distinct, goff, out, estRecomputeNs(plan, t.rows))
					return out, plan, nil
				}
			}
		}
		cs.Attr("outcome", "miss")
		cs.End()
	}
	release, aerr := t.admit(ctl, governor.ClassSelect, 4*int64(plan.EstRows))
	if aerr != nil {
		sp.Attr("aborted", aerr.Error())
		return nil, plan, aerr
	}
	defer release()
	ex := sp.Child("execute")
	start := time.Now()
	var out, goff []uint32
	err = nil
	switch {
	case plan.UseIndex && qc.Enabled() && (parallel.Options{}).WorkersFor(len(distinct)) <= 1:
		// Lists small enough to stay single-threaded compute with group
		// offsets, the admission shape subset/superset reuse needs; larger
		// lists keep the parallel driver and enter ungrouped.
		out, goff, err = t.indexes[col].selectInGrouped(distinct, ctl.Checkpoint())
		ex.Attr("path", "index-grouped").AttrInt("workers", 1)
	case plan.UseIndex:
		out, err = t.indexes[col].selectInCtl(ctl, values)
		if ex != nil { // attr args must not run on the untraced path
			ex.Attr("path", "index-batch").AttrInt("workers", (parallel.Options{}).WorkersFor(len(values)))
		}
	default:
		want := make(map[uint32]struct{}, len(values))
		for _, v := range values {
			want[v] = struct{}{}
		}
		c := t.cols[col]
		cp := ctl.Checkpoint()
		for row, v := range c.raw {
			if err = cp.Tick(); err != nil {
				break
			}
			if _, hit := want[v]; hit {
				out = append(out, uint32(row))
				cp.Charge(4)
			}
		}
		if err == nil {
			err = cp.Flush()
		}
		ex.Attr("path", "scan")
	}
	if err != nil {
		ex.Attr("aborted", err.Error())
		ex.End()
		return nil, plan, err
	}
	ex.AttrInt("rows", len(out))
	ex.End()
	// The value list rides along so PatchAppend can test an absorbed batch
	// against the entry instead of dropping it.
	var ad *telemetry.Span
	if qc.Enabled() {
		ad = sp.Child("admit")
	}
	qc.InsertIn(key, tok, distinct, goff, out, recomputeCost(time.Since(start), plan, t.rows))
	ad.End()
	return out, plan, nil
}

// assembleInGroups concatenates cached groups and probed fills in the
// query's first-occurrence value order, recording the group offsets the
// assembled result is admitted with.  A nil Groups[i] takes its rows from
// fills.  The output is fresh — cached group slices are immutable.
func assembleInGroups(distinct []uint32, groups [][]uint32, fills map[uint32][]uint32) (out, goff []uint32) {
	goff = make([]uint32, 0, len(distinct)+1)
	for i, v := range distinct {
		goff = append(goff, uint32(len(out)))
		if g := groups[i]; g != nil {
			out = append(out, g...)
		} else {
			out = append(out, fills[v]...)
		}
	}
	goff = append(goff, uint32(len(out)))
	return out, goff
}

// RangePred is one conjunct of a multi-column predicate: lo ≤ Col ≤ hi.
type RangePred struct {
	Col    string
	Lo, Hi uint32
}

// SelectWhere evaluates a conjunction of range predicates.  Each conjunct
// picks its own access path (the PlanRange model), most selective first,
// and the RID sets are merge-intersected — the standard multi-index AND.
// The returned RIDs are ascending.
//
// The boundary probes are batched: all predicate bounds are translated to
// domain IDs with one LowerBoundBatch lockstep descent per distinct column
// (resolveBounds), and the index-path conjuncts resolve their sorted-array
// positions with one LowerBoundBatch per index — 2×N scalar descents
// collapse into a handful of lockstep groups whose cache misses overlap.
//
// With a cache attached, the whole conjunction is fingerprinted (hit =
// one lookup, zero probes) and each conjunct's RID run is cached
// individually, so two dashboards sharing a predicate share its work even
// when their conjunctions differ — including by containment when one
// dashboard's range covers the other's.
func (t *Table) SelectWhere(preds []RangePred) ([]uint32, []Plan, error) {
	start := telemetry.Now()
	rids, plans, err := t.selectWhere(nil, preds, nil)
	histWhereNs.Since(start)
	return rids, plans, err
}

// SelectWhereTraced is SelectWhere recording an EXPLAIN ANALYZE trace
// under tr's root span, with one child span per conjunct.  tr may be nil.
func (t *Table) SelectWhereTraced(preds []RangePred, tr *telemetry.Trace) ([]uint32, []Plan, error) {
	start := telemetry.Now()
	rids, plans, err := t.selectWhere(nil, preds, tr.Root())
	histWhereNs.Since(start)
	tr.Finish()
	return rids, plans, err
}

// SelectWhereCtx is SelectWhere under governance; see SelectRangeCtx for
// the contract.  Admission is acquired once for the whole conjunction —
// conjuncts probing sharded indexes ride the same grant.  tr may be nil.
func (t *Table) SelectWhereCtx(ctx context.Context, preds []RangePred, tr *telemetry.Trace) ([]uint32, []Plan, error) {
	start := telemetry.Now()
	ctl := governor.For(ctx)
	if err := ctl.Err(); err != nil {
		return nil, nil, abortEntry(tr, err)
	}
	rids, plans, err := t.selectWhere(ctl, preds, tr.Root())
	histWhereNs.Since(start)
	tr.Finish()
	if err != nil {
		governor.NoteAbort(err)
	}
	return rids, plans, err
}

func (t *Table) selectWhere(ctl *governor.Ctl, preds []RangePred, sp *telemetry.Span) ([]uint32, []Plan, error) {
	if len(preds) == 0 {
		return nil, nil, fmt.Errorf("mmdb: SelectWhere needs at least one predicate")
	}
	sp.Attr("table", t.name).AttrInt("conjuncts", len(preds))
	ps := sp.Child("plan")
	loIDs, hiIDs, err := t.resolveBounds(preds)
	if err != nil {
		return nil, nil, err
	}
	plans := make([]Plan, len(preds))
	indexed := 0
	for i, p := range preds {
		plans[i] = t.planRangeIDs(p.Col, t.cols[p.Col], loIDs[i], hiIDs[i])
		if plans[i].UseIndex {
			indexed++
		}
	}
	ps.AttrInt("index_conjuncts", indexed).AttrInt("scan_conjuncts", len(preds)-indexed)
	ps.End()
	qc, tok := t.Cache(), t.token()
	var wkey qcache.Key
	var cs *telemetry.Span
	if qc.Enabled() {
		cs = sp.Child("cache")
		wkey = whereFP(t.name, preds)
		if rids, ok := qc.Lookup(wkey, tok); ok {
			cs.Attr("outcome", "hit").AttrInt("rows", len(rids))
			cs.End()
			return rids, plans, nil
		}
		cs.Attr("outcome", "miss")
		cs.End()
	}
	estBytes := int64(0)
	for i := range plans {
		estBytes += 4 * int64(plans[i].EstRows)
	}
	// One grant covers the whole conjunction: conjuncts probing sharded
	// indexes below find the query already admitted and pass for free.
	release, aerr := t.admit(ctl, governor.ClassSelect, estBytes)
	if aerr != nil {
		sp.Attr("aborted", aerr.Error())
		return nil, nil, aerr
	}
	defer release()
	ex := sp.Child("execute")
	start := time.Now()

	// Resolve each conjunct's RID set: cached runs first, scans and
	// sharded probes inline, and the sorted-index conjuncts deferred so
	// each index answers all its boundary probes in one lockstep batch.
	// A conjunct with delta rows to consider never short-circuits on an
	// empty frozen ID range — the appended tail may hold matching values
	// the dictionary has never seen.  Per-conjunct results that complete
	// before an abort are valid data and stay cached; the conjunction
	// entry itself is only inserted on full completion.
	sets := make([][]uint32, len(preds))
	byIndex := map[*SortedIndex][]int{}
	conjSpans := make([]*telemetry.Span, len(preds))
	abortConj := func(cj *telemetry.Span, err error) ([]uint32, []Plan, error) {
		cj.Attr("aborted", err.Error()).End()
		ex.Attr("aborted", err.Error())
		ex.End()
		return nil, nil, err
	}
	for i, p := range preds {
		cj := ex.Child("conjunct")
		cj.Attr("col", p.Col).AttrInt("lo", int(p.Lo)).AttrInt("hi", int(p.Hi))
		conjSpans[i] = cj
		if err := ctl.Err(); err != nil {
			return abortConj(cj, err)
		}
		if p.Lo > p.Hi || (loIDs[i] >= hiIDs[i] && t.rows == t.baseRows) {
			cj.Attr("path", "empty").End()
			continue // empty conjunct: the intersection is empty
		}
		ckey := rangeFP(t.name, p.Col, qcache.LayerTable, p.Lo, p.Hi)
		if rids, kind := qc.LookupRangeKind(ckey, tok); kind != qcache.HitMiss {
			sets[i] = rids
			if cj != nil { // attr args must not run on the untraced path
				cj.Attr("path", "cache-"+kind.String()).AttrInt("rows", len(rids)).End()
			}
			continue
		}
		if plans[i].UseIndex {
			if ix, ok := t.indexes[p.Col]; ok {
				if rids, hit, err := tryStitchRange(qc, ckey, tok, plans[i].EstRows, t.rows, ix.rangeDirect, cj); err != nil {
					return nil, nil, err
				} else if hit {
					sets[i] = rids
					cj.Attr("path", "cache-stitched").End()
					continue
				}
				if len(ix.runs) == 0 {
					byIndex[ix] = append(byIndex[ix], i)
					continue // span ends after the batched resolution below
				}
				rids, keys, err := ix.rangeMerged(p.Lo, p.Hi, qc.Enabled())
				if err == nil {
					err = ctl.Charge(4 * int64(len(rids)))
				}
				if err != nil {
					return abortConj(cj, err)
				}
				sets[i] = rids
				cj.Attr("path", "sorted-index").AttrInt("delta_runs", len(ix.runs)).AttrInt("rows", len(rids)).End()
				qc.InsertRange(ckey, tok, keys, rids, estRecomputeNs(plans[i], t.rows))
				continue
			}
			rids, err := t.sharded[p.Col].selectRange(ctl, p.Lo, p.Hi, cj)
			if err != nil {
				return abortConj(cj, err)
			}
			sets[i] = rids
			cj.AttrInt("rows", len(rids)).End()
			continue
		}
		rids, err := scanRange(t.cols[p.Col], p.Lo, p.Hi, ctl.Checkpoint())
		if err != nil {
			return abortConj(cj, err)
		}
		sets[i] = rids
		cj.Attr("path", "scan").AttrInt("rows", len(sets[i])).End()
		qc.InsertRange(ckey, tok, nil, sets[i], estRecomputeNs(plans[i], t.rows))
	}
	for ix, list := range byIndex {
		probes := make([]uint32, 0, 2*len(list))
		for _, i := range list {
			probes = append(probes, loIDs[i], hiIDs[i])
		}
		out := make([]int32, len(probes))
		ix.bord.LowerBoundBatch(probes, out)
		for j, i := range list {
			first, last := out[2*j], out[2*j+1]
			if err := ctl.Charge(4 * int64(last-first)); err != nil {
				return abortConj(conjSpans[i], err)
			}
			rids := make([]uint32, last-first)
			copy(rids, ix.rids[first:last])
			sets[i] = rids
			conjSpans[i].Attr("path", "sorted-index-batched").AttrInt("rows", len(rids)).End()
			if qc.Enabled() {
				ckey := rangeFP(t.name, preds[i].Col, qcache.LayerTable, preds[i].Lo, preds[i].Hi)
				qc.InsertRange(ckey, tok, idsToRaw(ix.col.dom, ix.keys[first:last]), rids, estRecomputeNs(plans[i], t.rows))
			}
		}
	}

	// Order conjuncts by estimated selectivity so the cheapest set drives
	// the intersection.
	order := make([]int, len(preds))
	for i := range order {
		order[i] = i
	}
	for a := 1; a < len(order); a++ {
		for b := a; b > 0 && plans[order[b]].EstRows < plans[order[b-1]].EstRows; b-- {
			order[b], order[b-1] = order[b-1], order[b]
		}
	}
	is := ex.Child("intersect")
	var acc []uint32
	for step, oi := range order {
		if err := ctl.Err(); err != nil {
			is.Attr("aborted", err.Error()).End()
			ex.Attr("aborted", err.Error())
			ex.End()
			return nil, nil, err
		}
		rids := sets[oi]
		sortu32.Sort(rids)
		if step == 0 {
			acc = rids
			continue
		}
		acc = intersectSorted(acc, rids)
		if len(acc) == 0 {
			break
		}
	}
	is.AttrInt("rows", len(acc))
	is.End()
	ex.AttrInt("rows", len(acc))
	ex.End()
	if qc.Enabled() {
		ad := sp.Child("admit")
		cost := time.Since(start).Nanoseconds()
		est := int64(0)
		for i := range plans {
			est += estRecomputeNs(plans[i], t.rows)
		}
		if est > cost {
			cost = est
		}
		qc.Insert(wkey, tok, acc, cost)
		ad.End()
	}
	return acc, plans, nil
}

// resolveBounds translates every predicate's closed value bounds to
// normalized half-open domain-ID ranges, grouping the probes by column so
// each domain tree answers all its bounds in ONE LowerBoundBatch lockstep
// descent instead of 2×N scalar descents (the batched range-scan item).
func (t *Table) resolveBounds(preds []RangePred) (loIDs, hiIDs []uint32, err error) {
	loIDs = make([]uint32, len(preds))
	hiIDs = make([]uint32, len(preds))
	groups := map[string][]int{}
	var cols []string // deterministic resolution order
	for i, p := range preds {
		if _, ok := t.cols[p.Col]; !ok {
			return nil, nil, fmt.Errorf("mmdb: no column %s in table %s", p.Col, t.name)
		}
		if _, seen := groups[p.Col]; !seen {
			cols = append(cols, p.Col)
		}
		groups[p.Col] = append(groups[p.Col], i)
	}
	for _, col := range cols {
		list := groups[col]
		c := t.cols[col]
		probes := make([]uint32, 0, 2*len(list))
		for _, i := range list {
			// The closed upper bound becomes an exclusive lower-bound
			// probe at Hi+1; Hi = MaxUint32 cannot (it would wrap) and is
			// fixed up to the domain size below, mirroring IDRange.
			probes = append(probes, preds[i].Lo, preds[i].Hi+1)
		}
		out := make([]int32, len(probes))
		c.dom.LowerBoundBatch(probes, out)
		for j, i := range list {
			loID := uint32(out[2*j])
			hiID := uint32(out[2*j+1])
			if preds[i].Hi == ^uint32(0) {
				hiID = uint32(c.dom.Len())
			}
			if hiID < loID {
				hiID = loID
			}
			loIDs[i], hiIDs[i] = loID, hiID
		}
	}
	return loIDs, hiIDs, nil
}

// intersectSorted merge-intersects two ascending RID slices.
func intersectSorted(a, b []uint32) []uint32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
