package mmdb

// Tests for the batched probe paths: JoinBatch vs a nested-loop reference at
// several chunk sizes and index methods, SelectIn (sorted and sharded) vs
// first principles, and IN-list access-path selection.

import (
	"sort"
	"testing"

	"cssidx"
	"cssidx/internal/workload"
)

// referenceJoin computes the §2.2 join by definition: per outer row, scan the
// whole inner column.
func referenceJoin(outer, inner *Table, col string) [][2]uint32 {
	oc := outer.cols[col]
	ic := inner.cols[col]
	var pairs [][2]uint32
	for r, v := range oc.raw {
		for ir, iv := range ic.raw {
			if iv == v {
				pairs = append(pairs, [2]uint32{uint32(r), uint32(ir)})
			}
		}
	}
	return pairs
}

func joinTables(t *testing.T, n, outerRows int, seed int64) (*Table, *Table) {
	t.Helper()
	g := workload.New(seed)
	innerKeys := g.SortedWithDuplicates(n, 2)
	outerVals := append(g.Lookups(innerKeys, outerRows), g.Misses(innerKeys, outerRows/4)...)
	inner := NewTable("inner")
	if err := inner.AddColumn("k", innerKeys); err != nil {
		t.Fatal(err)
	}
	outer := NewTable("outer")
	if err := outer.AddColumn("k", outerVals); err != nil {
		t.Fatal(err)
	}
	return outer, inner
}

// TestJoinBatchMatchesReference checks every method and several chunk sizes
// produce the reference pair multiset in the reference order.
func TestJoinBatchMatchesReference(t *testing.T) {
	outer, inner := joinTables(t, 600, 400, 51)
	want := referenceJoin(outer, inner, "k")
	for _, kind := range []cssidx.Kind{
		cssidx.KindLevelCSS, cssidx.KindFullCSS, cssidx.KindBPlusTree, cssidx.KindHash, cssidx.KindBinarySearch,
	} {
		ix, err := inner.BuildIndex("k", kind, cssidx.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range []int{0, 1, 7, 64, 100000} {
			var got [][2]uint32
			count, err := JoinBatch(outer, "k", ix, batch, func(o, i uint32) {
				got = append(got, [2]uint32{o, i})
			})
			if err != nil {
				t.Fatal(err)
			}
			if count != len(want) || len(got) != len(want) {
				t.Fatalf("%s batch=%d: count=%d pairs=%d, want %d", kind, batch, count, len(got), len(want))
			}
			// The inner side of a pair is a RID; the reference enumerates inner
			// rows in row order while the index enumerates duplicates in sorted-
			// list order.  Compare per-outer-row RID sets.
			byOuterGot := map[uint32][]uint32{}
			byOuterWant := map[uint32][]uint32{}
			for _, p := range got {
				byOuterGot[p[0]] = append(byOuterGot[p[0]], p[1])
			}
			for _, p := range want {
				byOuterWant[p[0]] = append(byOuterWant[p[0]], p[1])
			}
			for o, w := range byOuterWant {
				gotRids := append([]uint32(nil), byOuterGot[o]...)
				sort.Slice(gotRids, func(a, b int) bool { return gotRids[a] < gotRids[b] })
				sort.Slice(w, func(a, b int) bool { return w[a] < w[b] })
				if len(gotRids) != len(w) {
					t.Fatalf("%s batch=%d: outer %d has %d matches, want %d", kind, batch, o, len(gotRids), len(w))
				}
				for i := range w {
					if gotRids[i] != w[i] {
						t.Fatalf("%s batch=%d: outer %d rid[%d]=%d, want %d", kind, batch, o, i, gotRids[i], w[i])
					}
				}
			}
		}
	}
}

// TestJoinBatchSizesAgree pins the batched schedules to the scalar (batch=1)
// schedule exactly — identical pair sequence, not just identical sets.
func TestJoinBatchSizesAgree(t *testing.T) {
	outer, inner := joinTables(t, 2000, 1500, 52)
	ix, err := inner.BuildIndex("k", cssidx.KindLevelCSS, cssidx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var scalar [][2]uint32
	if _, err := JoinBatch(outer, "k", ix, 1, func(o, i uint32) {
		scalar = append(scalar, [2]uint32{o, i})
	}); err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{8, 64, 512} {
		var got [][2]uint32
		if _, err := JoinBatch(outer, "k", ix, batch, func(o, i uint32) {
			got = append(got, [2]uint32{o, i})
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(scalar) {
			t.Fatalf("batch=%d: %d pairs, scalar %d", batch, len(got), len(scalar))
		}
		for i := range scalar {
			if got[i] != scalar[i] {
				t.Fatalf("batch=%d: pair[%d]=%v, scalar %v", batch, i, got[i], scalar[i])
			}
		}
	}
}

// TestSelectIn checks the batched IN-list against SelectEqual composition on
// both the sorted and the sharded index.
func TestSelectIn(t *testing.T) {
	tab := NewTable("t")
	vals := []uint32{50, 10, 30, 10, 99, 30, 30, 77}
	if err := tab.AddColumn("v", vals); err != nil {
		t.Fatal(err)
	}
	ix, err := tab.BuildIndex("v", cssidx.KindLevelCSS, cssidx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := tab.BuildShardedIndex("v", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	lists := [][]uint32{
		nil,
		{11},            // absent
		{10},            // present
		{30, 10, 30},    // duplicates in the list
		{99, 11, 50, 0}, // mixed
		{10, 30, 50, 77, 99},
	}
	for _, list := range lists {
		var want []uint32
		for _, v := range dedupeValues(list) {
			want = append(want, ix.SelectEqual(v)...)
		}
		for name, got := range map[string][]uint32{
			"sorted":  ix.SelectIn(list),
			"sharded": sh.SelectIn(list),
		} {
			if len(got) != len(want) {
				t.Fatalf("%s SelectIn(%v)=%v, want %v", name, list, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s SelectIn(%v)[%d]=%d, want %d", name, list, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPlanInBreakEven checks IN-list planning: small lists probe the index
// (batched break-even), huge lists scan, unindexed columns scan.
func TestPlanInBreakEven(t *testing.T) {
	g := workload.New(53)
	keys := g.SortedDistinct(1000)
	tab := NewTable("t")
	if err := tab.AddColumn("v", keys); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("plain", keys); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.BuildIndex("v", cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
		t.Fatal(err)
	}
	small, err := tab.PlanIn("v", keys[:10])
	if err != nil || !small.UseIndex {
		t.Fatalf("small IN-list should probe the index: %+v err=%v", small, err)
	}
	big, err := tab.PlanIn("v", keys[:900])
	if err != nil || big.UseIndex {
		t.Fatalf("90%% IN-list should scan: %+v err=%v", big, err)
	}
	// Between the scalar and the batched break-even the batch still probes.
	mid, err := tab.PlanIn("v", keys[:300])
	if err != nil || !mid.UseIndex {
		t.Fatalf("30%% IN-list should still probe under batch amortisation: %+v err=%v", mid, err)
	}
	none, err := tab.PlanIn("plain", keys[:10])
	if err != nil || none.UseIndex {
		t.Fatalf("unindexed column should scan: %+v err=%v", none, err)
	}
	// Table.SelectIn agrees between paths.
	ridsIdx, _, err := tab.SelectIn("v", keys[5:15])
	if err != nil {
		t.Fatal(err)
	}
	ridsScan, _, err := tab.SelectIn("plain", keys[5:15])
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ridsIdx, func(a, b int) bool { return ridsIdx[a] < ridsIdx[b] })
	sort.Slice(ridsScan, func(a, b int) bool { return ridsScan[a] < ridsScan[b] })
	if len(ridsIdx) != len(ridsScan) {
		t.Fatalf("paths disagree: %v vs %v", ridsIdx, ridsScan)
	}
	for i := range ridsIdx {
		if ridsIdx[i] != ridsScan[i] {
			t.Fatalf("paths disagree at %d: %v vs %v", i, ridsIdx, ridsScan)
		}
	}
}

// TestDomainIDsBatch checks the lockstep domain translation against ID.
func TestDomainIDsBatch(t *testing.T) {
	g := workload.New(54)
	keys := g.SortedWithDuplicates(3000, 3)
	tab := NewTable("t")
	if err := tab.AddColumn("v", keys); err != nil {
		t.Fatal(err)
	}
	dom := tab.cols["v"].dom
	probes := append(g.Lookups(keys, 500), g.Misses(keys, 300)...)
	ids := make([]int32, len(probes))
	dom.IDsBatch(probes, ids)
	for i, p := range probes {
		id, ok := dom.ID(p)
		want := int32(-1)
		if ok {
			want = int32(id)
		}
		if ids[i] != want {
			t.Fatalf("IDsBatch[%d]=%d, want %d (value %d)", i, ids[i], want, p)
		}
	}
}
