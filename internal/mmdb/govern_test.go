package mmdb

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"cssidx"
	"cssidx/internal/failfs"
	"cssidx/internal/governor"
	"cssidx/internal/wal"
)

// governedCtx returns a cancellable context that engages the governor
// (done channel non-nil) with a tight stride so cancellation windows are
// one row wide.
func governedCtx() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	return governor.WithStride(ctx, 1), cancel
}

// TestCtxSurfacesMatchLegacy proves the governed execution path is the
// same algorithm: every *Ctx surface under a live (never-aborting)
// governed context returns bit-identical results to its legacy twin.
func TestCtxSurfacesMatchLegacy(t *testing.T) {
	cached, plain, _ := cachePair(t, 3000, 71)
	ctx, cancel := governedCtx()
	defer cancel()

	want, wantPlan, err := plain.SelectRange("a", 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	got, gotPlan, err := cached.SelectRangeCtx(ctx, "a", 0, 1<<30, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotPlan != wantPlan {
		t.Fatalf("range plan: %+v vs %+v", gotPlan, wantPlan)
	}
	mustEqualU32(t, "SelectRangeCtx", got, want)

	cVals, _ := plain.Column("c")
	list := cVals.Domain().Values()
	wantIn, _, err := plain.SelectIn("c", list)
	if err != nil {
		t.Fatal(err)
	}
	gotIn, _, err := cached.SelectInCtx(ctx, "c", list, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualU32(t, "SelectInCtx", gotIn, wantIn)

	preds := []RangePred{{Col: "a", Lo: 0, Hi: 1 << 30}, {Col: "b", Lo: 1 << 27, Hi: 1 << 31}}
	wantW, _, err := plain.SelectWhere(preds)
	if err != nil {
		t.Fatal(err)
	}
	gotW, _, err := cached.SelectWhereCtx(ctx, preds, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualU32(t, "SelectWhereCtx", gotW, wantW)

	wantAgg, err := GroupAggregate(plain, "c", "a", nil)
	if err != nil {
		t.Fatal(err)
	}
	gotAgg, err := GroupAggregateCtx(ctx, cached, "c", "a", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotAgg) != len(wantAgg) {
		t.Fatalf("agg groups: %d vs %d", len(gotAgg), len(wantAgg))
	}
	for i := range wantAgg {
		if gotAgg[i] != wantAgg[i] {
			t.Fatalf("agg row %d: %+v vs %+v", i, gotAgg[i], wantAgg[i])
		}
	}

	shC, _ := cached.ShardedIndex("b")
	shP, _ := plain.ShardedIndex("b")
	wantSh, err := shP.SelectRange(1<<27, 1<<31)
	if err != nil {
		t.Fatal(err)
	}
	gotSh, err := shC.SelectRangeCtx(ctx, 1<<27, 1<<31)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualU32(t, "sharded SelectRangeCtx", gotSh, wantSh)
}

// TestPreCancelledTypedErrors proves an already-dead context aborts every
// surface with the precise typed error before touching the cache.
func TestPreCancelledTypedErrors(t *testing.T) {
	cached, _, _ := cachePair(t, 1000, 72)
	before := cached.CacheStats()

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel2()

	for name, ctx := range map[string]context.Context{
		"cancelled": dead, "deadline": expired,
	} {
		wantErr := context.Canceled
		if name == "deadline" {
			wantErr = context.DeadlineExceeded
		}
		if _, _, err := cached.SelectRangeCtx(ctx, "a", 0, math.MaxUint32, nil); !errors.Is(err, wantErr) {
			t.Fatalf("%s SelectRangeCtx: err = %v, want %v", name, err, wantErr)
		}
		if _, _, err := cached.SelectInCtx(ctx, "c", []uint32{1, 2}, nil); !errors.Is(err, wantErr) {
			t.Fatalf("%s SelectInCtx: err = %v, want %v", name, err, wantErr)
		}
		if _, _, err := cached.SelectWhereCtx(ctx, []RangePred{{Col: "a", Lo: 0, Hi: 9}}, nil); !errors.Is(err, wantErr) {
			t.Fatalf("%s SelectWhereCtx: err = %v, want %v", name, err, wantErr)
		}
		if _, err := GroupAggregateCtx(ctx, cached, "c", "a", nil, nil); !errors.Is(err, wantErr) {
			t.Fatalf("%s GroupAggregateCtx: err = %v, want %v", name, err, wantErr)
		}
		if err := cached.AppendRowsCtx(ctx, map[string][]uint32{"a": {1}, "b": {1}, "c": {1}}); !errors.Is(err, wantErr) {
			t.Fatalf("%s AppendRowsCtx: err = %v, want %v", name, err, wantErr)
		}
		sh, _ := cached.ShardedIndex("b")
		if _, err := sh.SelectRangeCtx(ctx, 0, 9); !errors.Is(err, wantErr) {
			t.Fatalf("%s sharded SelectRangeCtx: err = %v, want %v", name, err, wantErr)
		}
	}
	if after := cached.CacheStats(); after.Inserts != before.Inserts {
		t.Fatalf("pre-cancelled queries inserted cache entries: %+v -> %+v", before, after)
	}
	if rows := cached.Rows(); rows != 1000 {
		t.Fatalf("cancelled append changed row count: %d", rows)
	}
}

// TestBudgetAbortThenCleanRefill proves the no-poisoned-entry invariant
// for budget aborts: a query killed mid-fill by ErrBudgetExceeded leaves
// either no cache entry or a valid one, and the identical query re-run
// without governance returns the exact oracle result.
func TestBudgetAbortThenCleanRefill(t *testing.T) {
	cached, plain, _ := cachePair(t, 4000, 73)

	type q struct {
		name string
		run  func(ctx context.Context) error
		ver  func() error
	}
	verRange := func() error {
		want, _, _ := plain.SelectRange("a", 0, math.MaxUint32)
		got, _, err := cached.SelectRange("a", 0, math.MaxUint32)
		if err != nil {
			return err
		}
		mustEqualU32(t, "refill SelectRange", got, want)
		return nil
	}
	cVals, _ := plain.Column("c")
	list := cVals.Domain().Values()
	verIn := func() error {
		want, _, _ := plain.SelectIn("c", list)
		got, _, err := cached.SelectIn("c", list)
		if err != nil {
			return err
		}
		mustEqualU32(t, "refill SelectIn", got, want)
		return nil
	}
	preds := []RangePred{{Col: "a", Lo: 0, Hi: math.MaxUint32}, {Col: "b", Lo: 0, Hi: math.MaxUint32}}
	verWhere := func() error {
		want, _, _ := plain.SelectWhere(preds)
		got, _, err := cached.SelectWhere(preds)
		if err != nil {
			return err
		}
		mustEqualU32(t, "refill SelectWhere", got, want)
		return nil
	}
	verAgg := func() error {
		want, _ := GroupAggregate(plain, "c", "a", nil)
		got, err := GroupAggregate(cached, "c", "a", nil)
		if err != nil {
			return err
		}
		if len(got) != len(want) {
			t.Fatalf("refill agg groups: %d vs %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("refill agg row %d: %+v vs %+v", i, got[i], want[i])
			}
		}
		return nil
	}
	queries := []q{
		{"range", func(ctx context.Context) error {
			_, _, err := cached.SelectRangeCtx(ctx, "a", 0, math.MaxUint32, nil)
			return err
		}, verRange},
		{"in", func(ctx context.Context) error {
			_, _, err := cached.SelectInCtx(ctx, "c", list, nil)
			return err
		}, verIn},
		{"where", func(ctx context.Context) error {
			_, _, err := cached.SelectWhereCtx(ctx, preds, nil)
			return err
		}, verWhere},
		{"agg", func(ctx context.Context) error {
			_, err := GroupAggregateCtx(ctx, cached, "c", "a", nil, nil)
			return err
		}, verAgg},
	}
	for _, qu := range queries {
		ctx := governor.WithStride(governor.WithBudget(context.Background(), 64), 1)
		if err := qu.run(ctx); !errors.Is(err, governor.ErrBudgetExceeded) {
			t.Fatalf("%s under 64-byte budget: err = %v, want ErrBudgetExceeded", qu.name, err)
		}
		// The same query ungoverned must now compute (or serve a valid
		// partial-entry-free cache state) to the exact oracle result.
		if err := qu.ver(); err != nil {
			t.Fatalf("%s refill after budget abort: %v", qu.name, err)
		}
	}
}

// TestCancelMidFillCacheRace storms a cached table with governed queries
// cancelled at arbitrary points while identical ungoverned queries run
// concurrently and verify against a fixed oracle.  Run with -race: proves
// cancellation mid-cache-fill never publishes a torn entry and never
// corrupts a concurrent identical query.
func TestCancelMidFillCacheRace(t *testing.T) {
	cached, plain, _ := cachePair(t, 6000, 74)
	want, _, err := plain.SelectRange("a", 0, math.MaxUint32)
	if err != nil {
		t.Fatal(err)
	}
	cVals, _ := plain.Column("c")
	list := cVals.Domain().Values()
	wantIn, _, err := plain.SelectIn("c", list)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 60
	var wg sync.WaitGroup
	// Storm goroutines: governed queries cancelled mid-flight.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				ctx = governor.WithStride(ctx, 16)
				go func() { cancel() }() // races the query body
				var err error
				if (g+i)%2 == 0 {
					_, _, err = cached.SelectRangeCtx(ctx, "a", 0, math.MaxUint32, nil)
				} else {
					_, _, err = cached.SelectInCtx(ctx, "c", list, nil)
				}
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Errorf("storm goroutine %d: unexpected error %v", g, err)
				}
				cancel()
			}
		}(g)
	}
	// Verifier goroutines: identical ungoverned queries must always be
	// bit-identical to the oracle — whether they hit a cache entry a
	// governed twin published or compute fresh.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				got, _, err := cached.SelectRange("a", 0, math.MaxUint32)
				if err != nil {
					t.Error(err)
					return
				}
				if len(got) != len(want) {
					t.Errorf("verifier: range len %d, want %d", len(got), len(want))
					return
				}
				for j := range want {
					if got[j] != want[j] {
						t.Errorf("verifier: range [%d] = %d, want %d", j, got[j], want[j])
						return
					}
				}
				gotIn, _, err := cached.SelectIn("c", list)
				if err != nil {
					t.Error(err)
					return
				}
				if len(gotIn) != len(wantIn) {
					t.Errorf("verifier: in len %d, want %d", len(gotIn), len(wantIn))
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestAdmissionShedAndCacheHitUnderOverload proves the graceful-degradation
// ordering: with the engine saturated, a cache-missing aggregate is shed
// (ClassAggregate, shed first) while a query whose answer is already cached
// is still served (cache hits never enter admission).
func TestAdmissionShedAndCacheHitUnderOverload(t *testing.T) {
	cached, _, _ := cachePair(t, 2000, 75)
	gov := cached.EnableGovernor(governor.Options{MaxConcurrent: 1, MaxQueue: 0})

	// Warm the range entry ungoverned.
	want, _, err := cached.SelectRange("a", 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}

	// Saturate the gate.
	grant, err := gov.Acquire(context.Background(), governor.ClassSelect, 0)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := governedCtx()
	defer cancel()

	// Cache-missing aggregate: shed immediately.
	if _, aerr := GroupAggregateCtx(ctx, cached, "c", "a", nil, nil); !errors.Is(aerr, governor.ErrShed) {
		grant.Release()
		t.Fatalf("aggregate under overload: err = %v, want ErrShed", aerr)
	}
	// Cached range: served despite overload.
	got, _, err := cached.SelectRangeCtx(ctx, "a", 0, 1<<30, nil)
	if err != nil {
		grant.Release()
		t.Fatalf("cached range under overload: %v", err)
	}
	mustEqualU32(t, "cached range under overload", got, want)

	grant.Release()
	// Gate free again: the aggregate now runs.
	if _, err := GroupAggregateCtx(ctx, cached, "c", "a", nil, nil); err != nil {
		t.Fatalf("aggregate after release: %v", err)
	}
	if s := gov.Stats(); s.Running != 0 || s.Queued != 0 || s.BytesInFlight != 0 {
		t.Fatalf("grants leaked: %+v", s)
	}
}

// TestAppendRowsCtxAtomicity proves a cancelled governed append leaves the
// table untouched, and on the durable path never leaves a logged batch
// unapplied: the WAL and the live image stay in lockstep.
func TestAppendRowsCtxAtomicity(t *testing.T) {
	tab := NewTable("t")
	if err := tab.AddColumn("k", []uint32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tab.AppendRowsCtx(dead, map[string][]uint32{"k": {4}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled append: err = %v", err)
	}
	if tab.Rows() != 3 {
		t.Fatalf("cancelled append mutated table: %d rows", tab.Rows())
	}
	live, cancel2 := governedCtx()
	defer cancel2()
	if err := tab.AppendRowsCtx(live, map[string][]uint32{"k": {4}}); err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 4 {
		t.Fatalf("live append: %d rows, want 4", tab.Rows())
	}

	// Durable: a cancelled append must not reach the log.
	fsys := failfs.NewMem(99)
	d, err := OpenDurable(fsys, "db", "t", wal.Always())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AppendRows(map[string][]uint32{"k": {10, 20}}); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendRowsCtx(dead, map[string][]uint32{"k": {30}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled durable append: err = %v", err)
	}
	if err := d.AppendRowsCtx(live, map[string][]uint32{"k": {40}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery replays exactly the appends that returned nil.
	r, err := OpenDurable(fsys, "db", "t", wal.Always())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Rows() != 3 {
		t.Fatalf("recovered %d rows, want 3 (cancelled batch must be absent)", r.Rows())
	}
	col, _ := r.Column("k")
	recovered := make([]uint32, col.Len())
	for i := range recovered {
		recovered[i] = col.Value(i)
	}
	mustEqualU32(t, "recovered column", recovered, []uint32{10, 20, 40})
}

// TestJoinWithCtxGoverned checks the governed join: identical pair stream
// when live, typed abort when cancelled, budget abort on pair buffers.
func TestJoinWithCtxGoverned(t *testing.T) {
	inner, outer := buildJoinTables(t, 76, 4000, 3000)
	ix, err := inner.BuildIndex("k", cssidx.KindLevelCSS, cssidx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantN, want := collectJoin(t, outer, "k", ix, JoinOptions{})

	ctx, cancel := governedCtx()
	defer cancel()
	var got joinPairs
	gotN, err := JoinWithCtx(ctx, outer, "k", ix, JoinOptions{}, func(o, i uint32) {
		got.outer = append(got.outer, o)
		got.inner = append(got.inner, i)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotN != wantN {
		t.Fatalf("governed join: %d pairs, want %d", gotN, wantN)
	}
	mustEqualU32(t, "join outer RIDs", got.outer, want.outer)
	mustEqualU32(t, "join inner RIDs", got.inner, want.inner)

	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := JoinWithCtx(dead, outer, "k", ix, JoinOptions{}, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled join: err = %v", err)
	}
	tiny := governor.WithStride(governor.WithBudget(context.Background(), 32), 1)
	if _, err := JoinWithCtx(tiny, outer, "k", ix, JoinOptions{}, nil, nil); !errors.Is(err, governor.ErrBudgetExceeded) {
		t.Fatalf("budgeted join: err = %v, want ErrBudgetExceeded", err)
	}
}
