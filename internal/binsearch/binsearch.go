// Package binsearch implements search over a sorted array of 4-byte keys:
// the paper's zero-space baseline (§3.2) and the within-node search routines
// shared by the tree structures.
//
// Array binary search needs no space beyond the sorted array itself but has
// poor reference locality: when the array is much larger than the cache, the
// number of cache misses approaches the number of key comparisons (log₂ n).
//
// Following §6.2 of the paper, the hot routines are specialised: the loop
// uses shifts rather than division, small ranges fall back to a sequential
// equality scan ("better performance when there are less than 5 keys in the
// range"), and fixed-size node searches (8/16/32/64 slots) are fully
// unrolled, hard-coded binary searches.
package binsearch

// tailScanMax is the range size below which sequential scan beats binary
// halving (§6.2: "less than 5 keys").
const tailScanMax = 5

// Search returns the index of the leftmost occurrence of key in the sorted
// slice a, or -1 if absent.
func Search(a []uint32, key uint32) int {
	i := LowerBound(a, key)
	if i < len(a) && a[i] == key {
		return i
	}
	return -1
}

// LowerBound returns the smallest index i with a[i] >= key, or len(a) when
// every element is smaller.  The slice must be sorted ascending.  The loop
// halves with a shift (§4: "even if this calculation uses a shift rather
// than a division by two") and finishes with a sequential tail scan.
func LowerBound(a []uint32, key uint32) int {
	lo, hi := 0, len(a)
	for hi-lo > tailScanMax {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for lo < hi && a[lo] < key {
		lo++
	}
	return lo
}

// UpperBound returns the smallest index i with a[i] > key, or len(a).
func UpperBound(a []uint32, key uint32) int {
	lo, hi := 0, len(a)
	for hi-lo > tailScanMax {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for lo < hi && a[lo] <= key {
		lo++
	}
	return lo
}

// EqualRange returns the half-open index range [first,last) of entries equal
// to key; first==last means key is absent.  This is how duplicates are
// enumerated per §3.6 ("find the leftmost element of all the duplicates and
// sequentially scan towards right").
func EqualRange(a []uint32, key uint32) (first, last int) {
	first = LowerBound(a, key)
	last = first
	for last < len(a) && a[last] == key {
		last++
	}
	return first, last
}

// SearchGeneric is the non-specialised loop the paper measured against its
// hard-coded version (reported 20–45% slower); kept for the ablation bench.
func SearchGeneric(a []uint32, key uint32) int {
	lo, hi := 0, len(a)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch {
		case a[mid] < key:
			lo = mid + 1
		case a[mid] > key:
			hi = mid - 1
		default:
			// Walk left to the first duplicate.
			for mid > 0 && a[mid-1] == key {
				mid--
			}
			return mid
		}
	}
	return -1
}

// --- Hard-coded node searches -------------------------------------------
//
// The tree structures store m keys per node and need the leftmost slot whose
// key is ≥ the probe ("we keep checking the keys in the left part if it's
// greater than or equal to the searching key", §4.1.2).  For the node sizes
// used in the paper these are fully unrolled so a node visit costs no loop
// overhead.  All take a full window of exactly m slots.

// NodeLowerBound returns the leftmost index in a[:m] with a[i] >= key, or m.
// It routes through the package-level kernel dispatch (see nodesearch.go):
// the AVX2 vector kernel where the CPU has it, the word-parallel SWAR
// kernel otherwise, or whichever tier CSSIDX_NODESEARCH pinned.  Every tier
// answers bit-identically to NodeLowerBoundScalar on every sorted window.
func NodeLowerBound(a []uint32, m int, key uint32) int {
	return nodeLowerBoundDispatch(a, m, key)
}

// NodeLowerBoundScalar is NodeLowerBound through the original scalar
// (branchy) unrolled routines.  It is the differential-test oracle for the
// branch-free family and the ablation baseline the bench compares against;
// results are bit-identical to NodeLowerBound on every sorted window.
func NodeLowerBoundScalar(a []uint32, m int, key uint32) int {
	switch m {
	case 3:
		return nlb3(a, key)
	case 4:
		return nlb4(a, key)
	case 7:
		return nlb7(a, key)
	case 8:
		return nlb8(a, key)
	case 15:
		return nlb15(a, key)
	case 16:
		return nlb16(a, key)
	case 31:
		return nlb31(a, key)
	case 32:
		return nlb32(a, key)
	case 63:
		return nlb63(a, key)
	case 64:
		return nlb64(a, key)
	default:
		return NodeLowerBoundGeneric(a, m, key)
	}
}

// NodeLowerBoundGeneric is the loop fallback for arbitrary m.
func NodeLowerBoundGeneric(a []uint32, m int, key uint32) int {
	lo, hi := 0, m
	for hi-lo > tailScanMax {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for lo < hi && a[lo] < key {
		lo++
	}
	return lo
}

// nlb3 .. nlb64: hard-coded leftmost-≥ search over exactly m slots, the
// paper's "hardcoding all the if-else tests" (§6.2).  Each is a flat,
// call-free halving sequence — every step shrinks the candidate window by
// a fixed power of two, so the whole search is straight-line code the
// compiler keeps in registers.  The 2ᵗ−1 sizes (3, 7, 15, 31, 63) are the
// perfect-binary-tree searches of level CSS-tree nodes (§4.2): exactly t
// comparisons on every path.  The 2ᵗ sizes need t+1 (Figure 4's point that
// a full node costs one extra comparison on some paths).

func nlb3(a []uint32, key uint32) int {
	base := 0
	if a[1] < key {
		base = 2
	}
	if a[base] < key {
		base++
	}
	return base
}

func nlb7(a []uint32, key uint32) int {
	base := 0
	if a[3] < key {
		base = 4
	}
	if a[base+1] < key {
		base += 2
	}
	if a[base] < key {
		base++
	}
	return base
}

func nlb15(a []uint32, key uint32) int {
	base := 0
	if a[7] < key {
		base = 8
	}
	if a[base+3] < key {
		base += 4
	}
	if a[base+1] < key {
		base += 2
	}
	if a[base] < key {
		base++
	}
	return base
}

func nlb31(a []uint32, key uint32) int {
	base := 0
	if a[15] < key {
		base = 16
	}
	if a[base+7] < key {
		base += 8
	}
	if a[base+3] < key {
		base += 4
	}
	if a[base+1] < key {
		base += 2
	}
	if a[base] < key {
		base++
	}
	return base
}

func nlb63(a []uint32, key uint32) int {
	base := 0
	if a[31] < key {
		base = 32
	}
	if a[base+15] < key {
		base += 16
	}
	if a[base+7] < key {
		base += 8
	}
	if a[base+3] < key {
		base += 4
	}
	if a[base+1] < key {
		base += 2
	}
	if a[base] < key {
		base++
	}
	return base
}

func nlb4(a []uint32, key uint32) int {
	base := 0
	if a[1] < key {
		base = 2
	}
	if a[base] < key {
		base++
	}
	if a[base] < key {
		base++
	}
	return base
}

func nlb8(a []uint32, key uint32) int {
	base := 0
	if a[3] < key {
		base = 4
	}
	if a[base+1] < key {
		base += 2
	}
	if a[base] < key {
		base++
	}
	if a[base] < key {
		base++
	}
	return base
}

func nlb16(a []uint32, key uint32) int {
	base := 0
	if a[7] < key {
		base = 8
	}
	if a[base+3] < key {
		base += 4
	}
	if a[base+1] < key {
		base += 2
	}
	if a[base] < key {
		base++
	}
	if a[base] < key {
		base++
	}
	return base
}

func nlb32(a []uint32, key uint32) int {
	base := 0
	if a[15] < key {
		base = 16
	}
	if a[base+7] < key {
		base += 8
	}
	if a[base+3] < key {
		base += 4
	}
	if a[base+1] < key {
		base += 2
	}
	if a[base] < key {
		base++
	}
	if a[base] < key {
		base++
	}
	return base
}

func nlb64(a []uint32, key uint32) int {
	base := 0
	if a[31] < key {
		base = 32
	}
	if a[base+15] < key {
		base += 16
	}
	if a[base+7] < key {
		base += 8
	}
	if a[base+3] < key {
		base += 4
	}
	if a[base+1] < key {
		base += 2
	}
	if a[base] < key {
		base++
	}
	if a[base] < key {
		base++
	}
	return base
}

// --- Branch-free node searches -------------------------------------------
//
// The nlb* searches above halve with `if` steps whose outcome depends on the
// probe key, so a random probe stream mispredicts roughly every other step —
// and a pipeline flush costs more than the comparison it guards.  The bflb*
// family computes the same halving sequence arithmetically: ltu turns each
// comparison into a borrow bit (no flags-to-branch round trip), and the bit
// feeds straight into the index arithmetic, so an out-of-order core runs the
// whole node search as one dependency chain of cheap ALU ops with zero
// mispredictions.  This is also what keeps the lockstep batch kernels
// streaming: with no data-dependent branches between the probes of a group,
// the independent node loads of the whole group stay in flight together.
//
// Results are bit-identical to the scalar routines on every sorted window
// (binsearch's differential tests prove it exhaustively).

// ltu returns 1 when x < key and 0 otherwise, branch-free: widening both
// sides to uint64 makes the subtraction borrow into bit 63 exactly when
// x < key.
func ltu(x, key uint32) int {
	return int((uint64(x) - uint64(key)) >> 63)
}

// nodeLowerBoundBF is the branch-free halving loop for arbitrary m: the
// classic branchless lower bound — the candidate window [base, base+n]
// shrinks by conditional base advances that compile to conditional moves.
func nodeLowerBoundBF(a []uint32, m int, key uint32) int {
	base, n := 0, m
	for n > 1 {
		half := n >> 1
		base += half & -ltu(a[base+half-1], key)
		n -= half
	}
	if n == 1 {
		base += ltu(a[base], key)
	}
	return base
}

// bflb3 .. bflb64: branch-free forms of the hard-coded searches.  The 2ᵗ−1
// sizes are pure shift-and-add ladders; the 2ᵗ sizes end with the same two
// dependent single-step advances as their scalar twins (Figure 4's extra
// comparison), each a borrow-bit add.

func bflb3(a []uint32, key uint32) int {
	_ = a[2]
	b := ltu(a[1], key) << 1
	b += ltu(a[b], key)
	return b
}

func bflb7(a []uint32, key uint32) int {
	_ = a[6]
	b := ltu(a[3], key) << 2
	b += ltu(a[b+1], key) << 1
	b += ltu(a[b], key)
	return b
}

func bflb15(a []uint32, key uint32) int {
	_ = a[14]
	b := ltu(a[7], key) << 3
	b += ltu(a[b+3], key) << 2
	b += ltu(a[b+1], key) << 1
	b += ltu(a[b], key)
	return b
}

func bflb31(a []uint32, key uint32) int {
	_ = a[30]
	b := ltu(a[15], key) << 4
	b += ltu(a[b+7], key) << 3
	b += ltu(a[b+3], key) << 2
	b += ltu(a[b+1], key) << 1
	b += ltu(a[b], key)
	return b
}

func bflb63(a []uint32, key uint32) int {
	_ = a[62]
	b := ltu(a[31], key) << 5
	b += ltu(a[b+15], key) << 4
	b += ltu(a[b+7], key) << 3
	b += ltu(a[b+3], key) << 2
	b += ltu(a[b+1], key) << 1
	b += ltu(a[b], key)
	return b
}

func bflb4(a []uint32, key uint32) int {
	_ = a[3]
	b := ltu(a[1], key) << 1
	b += ltu(a[b], key)
	b += ltu(a[b], key)
	return b
}

func bflb8(a []uint32, key uint32) int {
	_ = a[7]
	b := ltu(a[3], key) << 2
	b += ltu(a[b+1], key) << 1
	b += ltu(a[b], key)
	b += ltu(a[b], key)
	return b
}

func bflb16(a []uint32, key uint32) int {
	_ = a[15]
	b := ltu(a[7], key) << 3
	b += ltu(a[b+3], key) << 2
	b += ltu(a[b+1], key) << 1
	b += ltu(a[b], key)
	b += ltu(a[b], key)
	return b
}

func bflb32(a []uint32, key uint32) int {
	_ = a[31]
	b := ltu(a[15], key) << 4
	b += ltu(a[b+7], key) << 3
	b += ltu(a[b+3], key) << 2
	b += ltu(a[b+1], key) << 1
	b += ltu(a[b], key)
	b += ltu(a[b], key)
	return b
}

func bflb64(a []uint32, key uint32) int {
	_ = a[63]
	b := ltu(a[31], key) << 5
	b += ltu(a[b+15], key) << 4
	b += ltu(a[b+7], key) << 3
	b += ltu(a[b+3], key) << 2
	b += ltu(a[b+1], key) << 1
	b += ltu(a[b], key)
	b += ltu(a[b], key)
	return b
}
