// Package binsearch implements search over a sorted array of 4-byte keys:
// the paper's zero-space baseline (§3.2) and the within-node search routines
// shared by the tree structures.
//
// Array binary search needs no space beyond the sorted array itself but has
// poor reference locality: when the array is much larger than the cache, the
// number of cache misses approaches the number of key comparisons (log₂ n).
//
// Following §6.2 of the paper, the hot routines are specialised: the loop
// uses shifts rather than division, small ranges fall back to a sequential
// equality scan ("better performance when there are less than 5 keys in the
// range"), and fixed-size node searches (8/16/32/64 slots) are fully
// unrolled, hard-coded binary searches.
package binsearch

// tailScanMax is the range size below which sequential scan beats binary
// halving (§6.2: "less than 5 keys").
const tailScanMax = 5

// Search returns the index of the leftmost occurrence of key in the sorted
// slice a, or -1 if absent.
func Search(a []uint32, key uint32) int {
	i := LowerBound(a, key)
	if i < len(a) && a[i] == key {
		return i
	}
	return -1
}

// LowerBound returns the smallest index i with a[i] >= key, or len(a) when
// every element is smaller.  The slice must be sorted ascending.  The loop
// halves with a shift (§4: "even if this calculation uses a shift rather
// than a division by two") and finishes with a sequential tail scan.
func LowerBound(a []uint32, key uint32) int {
	lo, hi := 0, len(a)
	for hi-lo > tailScanMax {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for lo < hi && a[lo] < key {
		lo++
	}
	return lo
}

// UpperBound returns the smallest index i with a[i] > key, or len(a).
func UpperBound(a []uint32, key uint32) int {
	lo, hi := 0, len(a)
	for hi-lo > tailScanMax {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for lo < hi && a[lo] <= key {
		lo++
	}
	return lo
}

// EqualRange returns the half-open index range [first,last) of entries equal
// to key; first==last means key is absent.  This is how duplicates are
// enumerated per §3.6 ("find the leftmost element of all the duplicates and
// sequentially scan towards right").
func EqualRange(a []uint32, key uint32) (first, last int) {
	first = LowerBound(a, key)
	last = first
	for last < len(a) && a[last] == key {
		last++
	}
	return first, last
}

// SearchGeneric is the non-specialised loop the paper measured against its
// hard-coded version (reported 20–45% slower); kept for the ablation bench.
func SearchGeneric(a []uint32, key uint32) int {
	lo, hi := 0, len(a)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch {
		case a[mid] < key:
			lo = mid + 1
		case a[mid] > key:
			hi = mid - 1
		default:
			// Walk left to the first duplicate.
			for mid > 0 && a[mid-1] == key {
				mid--
			}
			return mid
		}
	}
	return -1
}

// --- Hard-coded node searches -------------------------------------------
//
// The tree structures store m keys per node and need the leftmost slot whose
// key is ≥ the probe ("we keep checking the keys in the left part if it's
// greater than or equal to the searching key", §4.1.2).  For the node sizes
// used in the paper these are fully unrolled so a node visit costs no loop
// overhead.  All take a full window of exactly m slots.

// NodeLowerBound returns the leftmost index in a[:m] with a[i] >= key, or m.
// It dispatches to an unrolled routine when m matches a specialised size.
func NodeLowerBound(a []uint32, m int, key uint32) int {
	switch m {
	case 3:
		return nlb3(a, key)
	case 4:
		return nlb4(a, key)
	case 7:
		return nlb7(a, key)
	case 8:
		return nlb8(a, key)
	case 15:
		return nlb15(a, key)
	case 16:
		return nlb16(a, key)
	case 31:
		return nlb31(a, key)
	case 32:
		return nlb32(a, key)
	case 63:
		return nlb63(a, key)
	case 64:
		return nlb64(a, key)
	default:
		return NodeLowerBoundGeneric(a, m, key)
	}
}

// NodeLowerBoundGeneric is the loop fallback for arbitrary m.
func NodeLowerBoundGeneric(a []uint32, m int, key uint32) int {
	lo, hi := 0, m
	for hi-lo > tailScanMax {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for lo < hi && a[lo] < key {
		lo++
	}
	return lo
}

// nlb3 .. nlb64: hard-coded leftmost-≥ search over exactly m slots, the
// paper's "hardcoding all the if-else tests" (§6.2).  Each is a flat,
// call-free halving sequence — every step shrinks the candidate window by
// a fixed power of two, so the whole search is straight-line code the
// compiler keeps in registers.  The 2ᵗ−1 sizes (3, 7, 15, 31, 63) are the
// perfect-binary-tree searches of level CSS-tree nodes (§4.2): exactly t
// comparisons on every path.  The 2ᵗ sizes need t+1 (Figure 4's point that
// a full node costs one extra comparison on some paths).

func nlb3(a []uint32, key uint32) int {
	base := 0
	if a[1] < key {
		base = 2
	}
	if a[base] < key {
		base++
	}
	return base
}

func nlb7(a []uint32, key uint32) int {
	base := 0
	if a[3] < key {
		base = 4
	}
	if a[base+1] < key {
		base += 2
	}
	if a[base] < key {
		base++
	}
	return base
}

func nlb15(a []uint32, key uint32) int {
	base := 0
	if a[7] < key {
		base = 8
	}
	if a[base+3] < key {
		base += 4
	}
	if a[base+1] < key {
		base += 2
	}
	if a[base] < key {
		base++
	}
	return base
}

func nlb31(a []uint32, key uint32) int {
	base := 0
	if a[15] < key {
		base = 16
	}
	if a[base+7] < key {
		base += 8
	}
	if a[base+3] < key {
		base += 4
	}
	if a[base+1] < key {
		base += 2
	}
	if a[base] < key {
		base++
	}
	return base
}

func nlb63(a []uint32, key uint32) int {
	base := 0
	if a[31] < key {
		base = 32
	}
	if a[base+15] < key {
		base += 16
	}
	if a[base+7] < key {
		base += 8
	}
	if a[base+3] < key {
		base += 4
	}
	if a[base+1] < key {
		base += 2
	}
	if a[base] < key {
		base++
	}
	return base
}

func nlb4(a []uint32, key uint32) int {
	base := 0
	if a[1] < key {
		base = 2
	}
	if a[base] < key {
		base++
	}
	if a[base] < key {
		base++
	}
	return base
}

func nlb8(a []uint32, key uint32) int {
	base := 0
	if a[3] < key {
		base = 4
	}
	if a[base+1] < key {
		base += 2
	}
	if a[base] < key {
		base++
	}
	if a[base] < key {
		base++
	}
	return base
}

func nlb16(a []uint32, key uint32) int {
	base := 0
	if a[7] < key {
		base = 8
	}
	if a[base+3] < key {
		base += 4
	}
	if a[base+1] < key {
		base += 2
	}
	if a[base] < key {
		base++
	}
	if a[base] < key {
		base++
	}
	return base
}

func nlb32(a []uint32, key uint32) int {
	base := 0
	if a[15] < key {
		base = 16
	}
	if a[base+7] < key {
		base += 8
	}
	if a[base+3] < key {
		base += 4
	}
	if a[base+1] < key {
		base += 2
	}
	if a[base] < key {
		base++
	}
	if a[base] < key {
		base++
	}
	return base
}

func nlb64(a []uint32, key uint32) int {
	base := 0
	if a[31] < key {
		base = 32
	}
	if a[base+15] < key {
		base += 16
	}
	if a[base+7] < key {
		base += 8
	}
	if a[base+3] < key {
		base += 4
	}
	if a[base+1] < key {
		base += 2
	}
	if a[base] < key {
		base++
	}
	if a[base] < key {
		base++
	}
	return base
}
